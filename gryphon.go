// Package repro is a from-scratch Go implementation of "Scalably
// Supporting Durable Subscriptions in a Publish/Subscribe System" (Bhola,
// Zhao, Auerbach — DSN 2003): a content-based publish/subscribe broker
// overlay providing exactly-once delivery to durable subscribers while
// logging each event only once system-wide, at the publisher hosting
// broker.
//
// The root package is the public facade. A minimal deployment:
//
//	net := repro.NewInprocNetwork(0)
//	b, _ := repro.StartBroker(repro.BrokerConfig{
//		Name:       "node1",
//		DataDir:    "/tmp/node1",
//		Transport:  net,
//		ListenAddr: "node1",
//		HostedPubends: []repro.PubendConfig{{ID: 1}},
//		EnableSHB:  true,
//		AllPubends: []repro.PubendID{1},
//	})
//	defer b.Close()
//
//	pub, _ := repro.NewPublisher(net, "node1", "my-app")
//	sub, _ := repro.NewDurableSubscriber(repro.SubscriberOptions{
//		ID:     1,
//		Filter: `topic = "orders" and qty > 100`,
//	})
//	_ = sub.Connect(net, "node1")
//
//	_, _, _ = pub.Publish(repro.Event{
//		Attrs:   repro.Attributes{"topic": repro.String("orders"), "qty": repro.Int(500)},
//		Payload: []byte("BUY 500 XYZ"),
//	})
//	d := <-sub.Deliveries() // exactly-once, in timestamp order
//	_ = d
//
// Durable subscribers may Disconnect and Connect again at any time — also
// against a restarted broker — and receive every matching event published
// in between exactly once, resuming from their checkpoint token. See
// DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package repro

import (
	"io"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// Core identifier and time types.
type (
	// PubendID identifies a publishing endpoint (a persistent, ordered
	// event stream hosted by a publisher hosting broker).
	PubendID = vtime.PubendID
	// SubscriberID identifies a durable subscription system-wide.
	SubscriberID = vtime.SubscriberID
	// Timestamp is a point in a pubend's virtual time stream
	// (microseconds).
	Timestamp = vtime.Timestamp
	// CheckpointToken is the per-pubend vector of consumed timestamps a
	// durable subscriber resumes from.
	CheckpointToken = vtime.CheckpointToken
)

// Event and attribute types.
type (
	// Event is an application message: typed attributes (matched by
	// subscriptions) plus an opaque payload.
	Event = message.Event
	// Attributes is the typed attribute map of an event.
	Attributes = filter.Attributes
	// Value is one typed attribute value.
	Value = filter.Value
	// Delivery is one message on a subscriber's stream: an event, a
	// silence marker, or an explicit gap notification.
	Delivery = message.Delivery
	// Subscription is a parsed content filter.
	Subscription = filter.Subscription
)

// Delivery kinds (see Delivery.Kind).
const (
	// DeliverEvent carries an event matching the subscription; there
	// were no other matching events since the previous delivery.
	DeliverEvent = message.DeliverEvent
	// DeliverSilence guarantees no matching events occurred up to its
	// timestamp; it advances the checkpoint token.
	DeliverSilence = message.DeliverSilence
	// DeliverGap warns that matching events up to its timestamp may
	// have been discarded by an early-release policy.
	DeliverGap = message.DeliverGap
)

// Attribute value constructors.
var (
	// String builds a string attribute value.
	String = filter.String
	// Int builds an integer attribute value.
	Int = filter.Int
	// Float builds a floating-point attribute value.
	Float = filter.Float
	// Bool builds a boolean attribute value.
	Bool = filter.Bool
)

// ParseFilter compiles subscription source text, e.g.
// `topic = "orders" and price > 10.5 and exists(account)`.
func ParseFilter(src string) (*Subscription, error) { return filter.Parse(src) }

// Transport types. A Transport connects brokers and clients.
type (
	// Transport is the overlay connection factory.
	Transport = overlay.Transport
	// InprocNetwork connects components within one process.
	InprocNetwork = overlay.InprocNetwork
	// TCPTransport connects components over TCP.
	TCPTransport = overlay.TCPTransport
)

// NewInprocNetwork returns an in-process transport; latency, if positive,
// is added to every message hop (useful for modeling network links).
func NewInprocNetwork(latency time.Duration) *InprocNetwork {
	return overlay.NewInprocNetwork(latency)
}

// Broker configuration types.
type (
	// BrokerConfig describes one broker node; see the field docs in the
	// broker package.
	BrokerConfig = broker.Config
	// PubendConfig describes one hosted pubend.
	PubendConfig = broker.PubendConfig
	// Broker is a running overlay node.
	Broker = broker.Broker
	// ReleasePolicy decides when a pubend may discard (early-release)
	// unacknowledged events.
	ReleasePolicy = pubend.Policy
	// MaxRetain is the administratively bounded retention policy:
	// events older than Retain (virtual time) may be discarded even if
	// disconnected durable subscribers have not acknowledged them; such
	// subscribers receive explicit gap messages on reconnection.
	MaxRetain = pubend.MaxRetain
)

// StartBroker opens the broker's persistent state, joins the overlay, and
// starts serving. Close (clean) or Crash (failure simulation) stop it.
//
// Setting BrokerConfig.AdminAddr (e.g. "127.0.0.1:9090", or "127.0.0.1:0"
// for an ephemeral port reported by Broker.AdminAddr) additionally serves
// an admin HTTP endpoint with Prometheus /metrics, /healthz, /readyz, and
// /debug/pprof/. Leaving it empty starts no listener.
func StartBroker(cfg BrokerConfig) (*Broker, error) { return broker.New(cfg) }

// WriteMetrics writes every instrument in the process-wide telemetry
// registry to w in the Prometheus text exposition format — the same body
// the admin endpoint's /metrics serves. Useful for programs that want to
// snapshot metrics without running the HTTP server.
func WriteMetrics(w io.Writer) error { return telemetry.Default().WritePrometheus(w) }

// Client types.
type (
	// Publisher publishes events to a publisher hosting broker.
	Publisher = client.Publisher
	// DurableSubscriber is a durable subscriber client: it survives
	// disconnections (voluntary or not) with exactly-once delivery.
	DurableSubscriber = client.Subscriber
	// SubscriberOptions configures a durable subscriber.
	SubscriberOptions = client.SubscriberOptions
)

// NewPublisher connects a publisher to the broker at addr.
func NewPublisher(t Transport, addr, name string) (*Publisher, error) {
	return client.NewPublisher(t, addr, name)
}

// NewDurableSubscriber creates a durable subscriber handle. Call Connect
// to attach it to a subscriber hosting broker; the subscription persists
// across Disconnect/Connect cycles and broker restarts.
func NewDurableSubscriber(opts SubscriberOptions) (*DurableSubscriber, error) {
	return client.NewSubscriber(opts)
}
