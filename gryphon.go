// Package repro is a from-scratch Go implementation of "Scalably
// Supporting Durable Subscriptions in a Publish/Subscribe System" (Bhola,
// Zhao, Auerbach — DSN 2003): a content-based publish/subscribe broker
// overlay providing exactly-once delivery to durable subscribers while
// logging each event only once system-wide, at the publisher hosting
// broker.
//
// The root package is the public facade. Constructors are context-first
// and options-last. A minimal deployment:
//
//	ctx := context.Background()
//	net := repro.NewInprocNetwork(0)
//	b, _ := repro.StartBroker(context.Background(), ctx, repro.BrokerConfig{
//		Name:       "node1",
//		DataDir:    "/tmp/node1",
//		Transport:  net,
//		ListenAddr: "node1",
//		HostedPubends: []repro.PubendConfig{{ID: 1}},
//		EnableSHB:  true,
//		AllPubends: []repro.PubendID{1},
//	})
//	defer b.Close()
//
//	pub, _ := repro.NewPublisher(context.Background(), ctx, net, "node1", "my-app")
//	sub, _ := repro.NewDurableSubscriber(repro.SubscriberOptions{
//		ID:     1,
//		Filter: `topic = "orders" and qty > 100`,
//	})
//	_ = sub.Connect(ctx, net, "node1")
//
//	_, _, _ = pub.Publish(repro.Event{
//		Attrs:   repro.Attributes{"topic": repro.String("orders"), "qty": repro.Int(500)},
//		Payload: []byte("BUY 500 XYZ"),
//	})
//	d := <-sub.Deliveries() // exactly-once, in timestamp order
//	_ = d
//
// Durable subscribers may Disconnect and Connect again at any time — also
// against a restarted broker — and receive every matching event published
// in between exactly once, resuming from their checkpoint token. See
// DESIGN.md for the architecture and EXPERIMENTS.md for the paper
// reproduction results.
package repro

import (
	"context"
	"io"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/repair"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Core identifier and time types.
type (
	// PubendID identifies a publishing endpoint (a persistent, ordered
	// event stream hosted by a publisher hosting broker).
	PubendID = vtime.PubendID
	// SubscriberID identifies a durable subscription system-wide.
	SubscriberID = vtime.SubscriberID
	// Timestamp is a point in a pubend's virtual time stream
	// (microseconds).
	Timestamp = vtime.Timestamp
	// CheckpointToken is the per-pubend vector of consumed timestamps a
	// durable subscriber resumes from.
	CheckpointToken = vtime.CheckpointToken
)

// Event and attribute types.
type (
	// Event is an application message: typed attributes (matched by
	// subscriptions) plus an opaque payload.
	Event = message.Event
	// Attributes is the typed attribute map of an event.
	Attributes = filter.Attributes
	// Value is one typed attribute value.
	Value = filter.Value
	// Delivery is one message on a subscriber's stream: an event, a
	// silence marker, or an explicit gap notification.
	Delivery = message.Delivery
	// Subscription is a parsed content filter.
	Subscription = filter.Subscription
)

// Delivery kinds (see Delivery.Kind).
const (
	// DeliverEvent carries an event matching the subscription; there
	// were no other matching events since the previous delivery.
	DeliverEvent = message.DeliverEvent
	// DeliverSilence guarantees no matching events occurred up to its
	// timestamp; it advances the checkpoint token.
	DeliverSilence = message.DeliverSilence
	// DeliverGap warns that matching events up to its timestamp may
	// have been discarded by an early-release policy.
	DeliverGap = message.DeliverGap
)

// Attribute value constructors.
var (
	// String builds a string attribute value.
	String = filter.String
	// Int builds an integer attribute value.
	Int = filter.Int
	// Float builds a floating-point attribute value.
	Float = filter.Float
	// Bool builds a boolean attribute value.
	Bool = filter.Bool
)

// ParseFilter compiles subscription source text, e.g.
// `topic = "orders" and price > 10.5 and exists(account)`.
func ParseFilter(src string) (*Subscription, error) { return filter.Parse(src) }

// Transport types. A Transport connects brokers and clients.
type (
	// Transport is the overlay connection factory.
	Transport = overlay.Transport
	// InprocNetwork connects components within one process.
	InprocNetwork = overlay.InprocNetwork
	// TCPTransport connects components over TCP.
	TCPTransport = overlay.TCPTransport
)

// NewInprocNetwork returns an in-process transport; latency, if positive,
// is added to every message hop (useful for modeling network links).
func NewInprocNetwork(latency time.Duration) *InprocNetwork {
	return overlay.NewInprocNetwork(latency)
}

// Link supervision and fault injection. Every inter-broker link (and any
// client with AutoReconnect set) rides a supervisor that redials with
// capped exponential backoff after involuntary loss; the recovery
// protocol then replays the outage gap, preserving exactly-once delivery.
type (
	// LinkSupervisor maintains one self-healing overlay link: dial,
	// bring-up, watch, redial with capped exponential backoff + jitter.
	LinkSupervisor = overlay.Supervisor
	// SupervisorConfig configures a LinkSupervisor.
	SupervisorConfig = overlay.SupervisorConfig
	// LinkStatus is a point-in-time snapshot of a supervised link, as
	// returned by Broker.Health.
	LinkStatus = overlay.LinkStatus
	// LinkState is a supervised link's coarse state (up/backoff/down).
	LinkState = overlay.LinkState
	// FaultNetwork is a deterministic, seeded fault-injection decorator
	// around any Transport: it can sever live links on command or on a
	// send-count schedule, partition address sets, and delay traffic.
	// Intended for tests and experiments.
	FaultNetwork = faultnet.Network
)

// Supervised link states (see LinkStatus.State and Broker.Health).
const (
	// LinkDown: not connected, no attempt in flight.
	LinkDown = overlay.LinkDown
	// LinkBackoff: waiting out the backoff delay before redialing.
	LinkBackoff = overlay.LinkBackoff
	// LinkUp: link established and in service.
	LinkUp = overlay.LinkUp
)

// NewLinkSupervisor builds a supervisor for one dial target. Call Start
// (synchronous first attempt, fail-fast) or StartDeferred (background).
func NewLinkSupervisor(cfg SupervisorConfig) *LinkSupervisor {
	return overlay.NewSupervisor(cfg)
}

// NewFaultNetwork wraps a transport with deterministic fault injection;
// all scheduled-kill randomness derives from seed. Brokers and clients
// dialing through the returned network are subject to its faults; Listen
// passes through, so peers on the inner transport remain reachable.
func NewFaultNetwork(inner Transport, seed int64) *FaultNetwork {
	return faultnet.New(inner, seed)
}

// Broker configuration types.
type (
	// BrokerConfig describes one broker node; see the field docs in the
	// broker package.
	BrokerConfig = broker.Config
	// PubendConfig describes one hosted pubend.
	PubendConfig = broker.PubendConfig
	// Broker is a running overlay node.
	Broker = broker.Broker
	// ReleasePolicy decides when a pubend may discard (early-release)
	// unacknowledged events.
	ReleasePolicy = pubend.Policy
	// MaxRetain is the administratively bounded retention policy:
	// events older than Retain (virtual time) may be discarded even if
	// disconnected durable subscribers have not acknowledged them; such
	// subscribers receive explicit gap messages on reconnection.
	MaxRetain = pubend.MaxRetain
)

// StartBroker opens the broker's persistent state, joins the overlay, and
// starts serving; the initial upstream dial (and any admin bring-up) is
// bounded by ctx. Close (clean) or Crash (failure simulation) stop it;
// Broker.Shutdown drains in-flight publishes first.
//
// Setting BrokerConfig.AdminAddr (e.g. "127.0.0.1:9090", or "127.0.0.1:0"
// for an ephemeral port reported by Broker.AdminAddr) additionally serves
// an admin HTTP endpoint with Prometheus /metrics, /healthz, /readyz, and
// /debug/pprof/. Leaving it empty starts no listener.
//
// Dynamic topology: a running broker is not pinned to the tree it started
// in. Broker.SetUpstream re-parents it under a new parent make-before-break
// (the new link is dialed, resynced, and serving before the old parent is
// sent a deliberate Leave), Broker.DetachUpstream turns it into a root, and
// Broker.UpstreamAddr reports the current parent. The exactly-once contract
// holds across any sequence of these calls — the recovery protocol replays
// whatever the move left outstanding through the new path. See DESIGN.md
// §2.11 for the membership state machine.
//
// Self-healing topology: setting BrokerConfig.Parents (candidate parents
// in preference order) together with FailoverAfter arms automatic
// fail-over — when the upstream link stays down past the threshold the
// broker re-parents itself to the best live candidate, loop-free even
// when whole subtrees are orphaned together, and with PreferPrimary
// returns to the original parent when it recovers. Broker.Parents,
// Broker.TreeInfo, and Broker.RepairStats observe it; /healthz notes
// "failed over to X" while the substitute link is in use. See DESIGN.md
// §2.12 for the fail-over state machine.
func StartBroker(ctx context.Context, cfg BrokerConfig) (*Broker, error) {
	return broker.NewContext(ctx, cfg)
}

// StartBrokerContext is StartBroker.
//
// Deprecated: StartBroker is context-first now; call it directly.
func StartBrokerContext(ctx context.Context, cfg BrokerConfig) (*Broker, error) {
	return broker.NewContext(ctx, cfg)
}

// Self-healing fail-over types (see BrokerConfig.Parents and DESIGN.md
// §2.12). A broker with candidate parents and FailoverAfter set repairs
// its own position in the tree when its upstream dies: Broker.Parents
// reports the candidate states (also surfaced as pseudo-entries in
// Broker.Health — IsCandidateLink tells them apart from real links),
// Broker.TreeInfo the advertised tree position, and Broker.RepairStats
// the fail-over/fail-back counts and per-repair durations.
type (
	// TreeInfo is a broker's advertised tree position: root name, root
	// epoch, and depth below the root.
	TreeInfo = repair.TreeInfo
	// CandidateStatus is one candidate parent's probe state, as returned
	// by Broker.Parents.
	CandidateStatus = repair.CandidateStatus
	// RepairStats summarizes a broker's automatic repair history.
	RepairStats = repair.Stats
)

// IsCandidateLink reports whether a Broker.Health entry is a candidate
// parent probe (named "<broker>/candidate/<addr>") rather than a real
// overlay link.
func IsCandidateLink(st LinkStatus) bool { return broker.IsCandidateLink(st) }

// Declarative topology types: one spec surface shared by cmd/broker
// (flags), cmd/cluster (JSON file + timed mutations), and the experiment
// harness. TopologySpec.Parse/Marshal round-trip the versioned JSON file
// format; BrokerSpec.BrokerConfig materializes a BrokerConfig.
type (
	// TopologySpec is a whole broker tree: brokers in start order plus
	// optional timed mutations (add, kill, restart, reparent, detach).
	TopologySpec = topology.Spec
	// BrokerSpec declares one broker of a TopologySpec.
	BrokerSpec = topology.BrokerSpec
	// TopologyMutation is one timed change a cluster driver applies to a
	// running tree.
	TopologyMutation = topology.Mutation
	// BrokerTuning is the performance-knob subset of a BrokerSpec.
	BrokerTuning = topology.Tuning
)

// ParseTopology decodes and validates a versioned topology spec (the
// cmd/cluster file format). Unknown fields and versions are errors.
func ParseTopology(raw []byte) (*TopologySpec, error) { return topology.Parse(raw) }

// WriteMetrics writes every instrument in the process-wide telemetry
// registry to w in the Prometheus text exposition format — the same body
// the admin endpoint's /metrics serves. Useful for programs that want to
// snapshot metrics without running the HTTP server.
func WriteMetrics(w io.Writer) error { return telemetry.Default().WritePrometheus(w) }

// Client types.
type (
	// Publisher publishes events to a publisher hosting broker.
	Publisher = client.Publisher
	// DurableSubscriber is a durable subscriber client: it survives
	// disconnections (voluntary or not) with exactly-once delivery.
	DurableSubscriber = client.Subscriber
	// SubscriberOptions configures a durable subscriber. DialTimeout
	// bounds Connect's dial; AutoReconnect supervises the link and
	// re-subscribes from the checkpoint token after involuntary loss;
	// OnConnChange observes link transitions.
	SubscriberOptions = client.SubscriberOptions
	// PublisherOptions configures optional publisher behavior
	// (DialTimeout, AutoReconnect, OnConnChange).
	PublisherOptions = client.PublisherOptions
	// ConnState is a client link transition reported to OnConnChange.
	ConnState = client.ConnState
)

// Client connection states (see PublisherOptions.OnConnChange and
// SubscriberOptions.OnConnChange).
const (
	// ConnDown: the link was lost; an AutoReconnect client is redialing.
	ConnDown = client.ConnDown
	// ConnUp: the link is established (subscribers: subscribed).
	ConnUp = client.ConnUp
)

// PublisherOption is one functional option for NewPublisher.
type PublisherOption = client.PublisherOption

// Publisher options for NewPublisher (options-last surface).
var (
	// WithPublisherOptions overlays a whole PublisherOptions struct.
	WithPublisherOptions = client.WithOptions
	// WithDialTimeout bounds the connection attempt (and each supervised
	// reconnect).
	WithDialTimeout = client.WithDialTimeout
	// WithAutoReconnect keeps the publisher alive through link failures,
	// redialing with capped exponential backoff.
	WithAutoReconnect = client.WithAutoReconnect
	// WithConnChange observes every publisher link transition.
	WithConnChange = client.WithConnChange
)

// NewPublisher connects a publisher to the broker at addr; the initial
// dial is bounded by ctx. Behavior options (dial timeout, supervised
// auto-reconnect, connectivity callbacks) come last.
func NewPublisher(ctx context.Context, t Transport, addr, name string, opts ...PublisherOption) (*Publisher, error) {
	return client.NewPublisher(ctx, t, addr, name, opts...)
}

// NewPublisherWithOptions is NewPublisher with struct options.
//
// Deprecated: use NewPublisher with WithPublisherOptions (or the
// individual With... options).
func NewPublisherWithOptions(t Transport, addr, name string, opts PublisherOptions) (*Publisher, error) {
	return client.NewPublisherOpts(t, addr, name, opts)
}

// NewDurableSubscriber creates a durable subscriber handle. Call Connect
// to attach it to a subscriber hosting broker; the subscription persists
// across Disconnect/Connect cycles and broker restarts.
func NewDurableSubscriber(opts SubscriberOptions) (*DurableSubscriber, error) {
	return client.NewSubscriber(opts)
}
