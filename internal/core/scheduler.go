package core

import (
	"runtime"
)

// The catchup scheduler: each shard owns a pump goroutine that drains its
// catchup streams in weighted round-robin rounds. One round snapshots the
// shard's active (subscriber, pubend) streams and gives each a
// CatchupWeight-bounded delivery quantum, releasing the shard lock between
// streams' lock acquisitions so live fan-out (OnKnowledge) and subscriber
// entry points interleave — a deep Zipf-tail backlog cannot hold a shard
// for more than one quantum at a time.
//
// Drains are also run synchronously from Subscribe, OnCredit, Tick and
// DrainCatchups; sh.pumpMu serializes rounds so the two never interleave
// within a shard, and a returned "no progress" carries a happens-before
// edge over all prior rounds' deliveries.

// kickShard wakes a shard's pump goroutine (non-blocking; coalesces).
func kickShard(sh *subShard) {
	select {
	case sh.kick <- struct{}{}:
	default:
	}
}

// shardPump is the per-shard background drain loop.
func (s *SHB) shardPump(sh *subShard) {
	for range sh.kick {
		if s.closed.Load() {
			return
		}
		s.drainShard(sh)
	}
}

// DrainCatchups synchronously drains every shard's catchup streams until
// no further local progress is possible (remaining work, if any, awaits
// upstream nack responses, credits, or new knowledge). It reports whether
// any progress was made. Tests and experiments use it to reach quiescence
// deterministically.
func (s *SHB) DrainCatchups() bool {
	progressed := false
	for _, sh := range s.shards {
		if s.drainShard(sh) {
			progressed = true
		}
	}
	return progressed
}

// drainShard runs scheduler rounds for one shard until a round makes no
// progress or reports no more immediately-runnable work.
func (s *SHB) drainShard(sh *subShard) bool {
	if sh.nCatchup.Load() == 0 {
		return false
	}
	sh.pumpMu.Lock()
	defer sh.pumpMu.Unlock()
	progressed := false
	for {
		more, prog := s.pumpRound(sh)
		if prog {
			progressed = true
		}
		if !more || !prog {
			return progressed
		}
		// Yield between rounds: live-path callers contending for this
		// shard's lock get in before the next quantum.
		runtime.Gosched()
	}
}

// pumpRound runs one weighted round-robin round: every active catchup
// stream of the shard gets at most one CatchupWeight delivery quantum.
// Returns whether immediately-runnable work remains (a stream hit its
// quantum or has unread PFS coverage) and whether any progress was made.
func (s *SHB) pumpRound(sh *subShard) (more, progressed bool) {
	items := sh.items[:0]
	sh.mu.Lock()
	for _, sub := range sh.catchups {
		if !sub.connected {
			continue
		}
		for pub, cs := range sub.catchup {
			items = append(items, pumpItem{sub: sub, ps: s.pubends[pub], cs: cs})
		}
	}
	sh.mu.Unlock()
	if len(items) == 0 {
		return false, false
	}
	for i := range items {
		it := items[i]
		sh.mu.Lock()
		// Revalidate: the stream may have been dropped (Detach,
		// Unsubscribe) or replaced (reconnect) since the snapshot.
		if it.sub.connected && it.sub.catchup[it.ps.id] == it.cs {
			m, p := s.pumpCatchupBudget(sh, it.ps, it.cs)
			more = more || m
			progressed = progressed || p
		}
		sh.mu.Unlock()
	}
	for i := range items {
		items[i] = pumpItem{}
	}
	sh.items = items[:0]
	// Catchup bases moved; republish the shard's cache pins so the
	// pubend caches can evict behind them.
	s.syncShardPins(sh)
	sh.tRounds.Inc()
	return more, progressed
}
