package core

import (
	"sort"

	"repro/internal/message"
	"repro/internal/vtime"
)

// eventCache is the SHB-side event recovery cache: a bounded,
// timestamp-ordered store of events received from upstream. Its contents
// serve catchup streams without upstream traffic; absence of an event never
// affects correctness (it is re-requested with a nack), only recovery
// cost — exactly the cache role the paper describes in section 1.
// Guarded by the owning pubend's lock (ps.mu); the pin is published into
// it by the subscriber shards.
type eventCache struct {
	capacity int
	byTS     map[vtime.Timestamp]*message.Event
	order    []vtime.Timestamp // ascending insertion (timestamps arrive mostly ordered)
	// floor is the constream's delivery cursor: events at or below it
	// have been delivered and are evictable; events above it must stay
	// cached (the constream cannot skip them, while catchup streams can
	// always re-nack), so capacity is a soft cap above the floor.
	floor vtime.Timestamp
	// pin is the lowest base among active catchup streams: events above
	// it are about to be delivered by a catchup stream and must not be
	// evicted, or recovery responses would be dropped before delivery.
	// MaxTS when no catchup stream is active.
	pin vtime.Timestamp
}

func newEventCache(capacity int) *eventCache {
	return &eventCache{
		capacity: capacity,
		byTS:     make(map[vtime.Timestamp]*message.Event, capacity/4+1),
		pin:      vtime.MaxTS,
	}
}

// setPin updates the catchup pin level (MaxTS = nothing pinned).
func (c *eventCache) setPin(ts vtime.Timestamp) { c.pin = ts }

// setFloor marks everything at or below ts as delivered (evictable).
func (c *eventCache) setFloor(ts vtime.Timestamp) {
	if ts > c.floor {
		c.floor = ts
	}
}

// put inserts an event, evicting delivered entries beyond capacity. The
// cache retains the event's backing frame buffer while the event is
// resident (cache pin = retain, evict = release, DESIGN §2.13).
func (c *eventCache) put(ev *message.Event) {
	if _, ok := c.byTS[ev.Timestamp]; ok {
		return
	}
	ev.Retain()
	c.byTS[ev.Timestamp] = ev
	// Maintain ascending order; nack responses can arrive out of order.
	if n := len(c.order); n > 0 && ev.Timestamp < c.order[n-1] {
		i := sort.Search(n, func(i int) bool { return c.order[i] >= ev.Timestamp })
		c.order = append(c.order, 0)
		copy(c.order[i+1:], c.order[i:])
		c.order[i] = ev.Timestamp
	} else {
		c.order = append(c.order, ev.Timestamp)
	}
	for len(c.order) > c.capacity && c.order[0] <= c.floor && c.order[0] <= c.pin {
		if old, ok := c.byTS[c.order[0]]; ok {
			old.Release()
		}
		delete(c.byTS, c.order[0])
		c.order = c.order[1:]
	}
}

// get returns the cached event at ts.
func (c *eventCache) get(ts vtime.Timestamp) (*message.Event, bool) {
	ev, ok := c.byTS[ts]
	return ev, ok
}

// eventsIn returns cached events with timestamps in (from, to], ascending.
func (c *eventCache) eventsIn(from, to vtime.Timestamp) []*message.Event {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] > from })
	var out []*message.Event
	for ; i < len(c.order) && c.order[i] <= to; i++ {
		out = append(out, c.byTS[c.order[i]])
	}
	return out
}

// evictUpTo drops every event at or below ts (they are released and can
// never be requested again).
func (c *eventCache) evictUpTo(ts vtime.Timestamp) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] > ts })
	if i == 0 {
		return
	}
	for _, old := range c.order[:i] {
		if ev, ok := c.byTS[old]; ok {
			ev.Release()
		}
		delete(c.byTS, old)
	}
	c.order = append(c.order[:0], c.order[i:]...)
}

// len reports the number of cached events.
func (c *eventCache) len() int { return len(c.byTS) }
