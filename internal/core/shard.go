package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/message"
	"repro/internal/telemetry"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// subShard owns one partition of the subscriber population: the subscriber
// records themselves (their released/since/lastSent floors and catchup
// streams) plus the shard's catchup pump. Subscribers are assigned by
// id % len(shards), mirroring the broker's pubend-to-shard pinning one
// layer down: the broker shards the event loop by pubend, the engine
// shards subscriber state by subscriber.
//
// Lock order: sh.mu may be held while acquiring a pubend's ps.mu, never
// the reverse. A shard never holds another shard's lock.
type subShard struct {
	id int

	// mu guards subs and every field of the subscriber records it holds.
	mu   sync.Mutex
	subs map[vtime.SubscriberID]*subscriber
	// catchups indexes the subscribers holding at least one active catchup
	// stream, so scheduler rounds and pin recomputation touch only the
	// recovering population instead of scanning the whole shard.
	catchups map[vtime.SubscriberID]*subscriber
	// dirtySubs are the subscribers whose released(s,p) changed since the
	// last Tick commit; persistDirty writes and clears exactly these.
	dirtySubs map[vtime.SubscriberID]*subscriber
	// relDirty notes a release-floor change (ack, gap skip, unsubscribe)
	// pending the next publishShardFloors recomputation.
	relDirty bool

	// Cheap cross-shard reads for accessors and fan-out skip checks.
	nConnected atomic.Int64
	nCatchup   atomic.Int64

	// pumpMu serializes catchup drain rounds for this shard: the shard's
	// background pump goroutine and synchronous drains (Subscribe,
	// OnCredit, Tick, DrainCatchups) never run rounds concurrently, which
	// also gives callers a happens-before edge: once a drain observes no
	// remaining work, all prior rounds' deliveries are visible.
	pumpMu sync.Mutex
	// kick wakes the pump goroutine (buffered; non-blocking sends).
	kick chan struct{}

	// Scratch reused across pump rounds (spanBuf under mu, items under
	// pumpMu, relMins/pinMins under mu).
	spanBuf []tick.Span
	tsBuf   []vtime.Timestamp
	items   []pumpItem
	relMins []vtime.Timestamp
	pinMins []vtime.Timestamp

	// Per-shard instruments (PR 2 labeling convention: one instrument per
	// shard with a {shard="N"} label).
	tDelivered *telemetry.Counter
	tCatchup   *telemetry.Gauge
	tConnected *telemetry.Gauge
	tRounds    *telemetry.Counter
	tBudgetHit *telemetry.Counter
}

// pumpItem is one (subscriber, pubend) catchup stream snapshotted for a
// scheduler round.
type pumpItem struct {
	sub *subscriber
	ps  *shbPubend
	cs  *catchupStream
}

func newSubShard(id, pubends int) *subShard {
	label := fmt.Sprintf("{shard=\"%d\"}", id)
	reg := telemetry.Default()
	return &subShard{
		id:        id,
		subs:      make(map[vtime.SubscriberID]*subscriber),
		catchups:  make(map[vtime.SubscriberID]*subscriber),
		dirtySubs: make(map[vtime.SubscriberID]*subscriber),
		kick:      make(chan struct{}, 1),
		relMins:   make([]vtime.Timestamp, pubends),
		pinMins:   make([]vtime.Timestamp, pubends),
		tDelivered: reg.Counter("gryphon_shb_events_delivered_total"+label,
			"Event deliveries made by one SHB subscriber shard."),
		tCatchup: reg.Gauge("gryphon_shb_catchup_active"+label,
			"Active catchup streams owned by one SHB subscriber shard."),
		tConnected: reg.Gauge("gryphon_shb_connected"+label,
			"Connected subscribers hosted by one SHB subscriber shard."),
		tRounds: reg.Counter("gryphon_shb_sched_rounds_total"+label,
			"Catchup scheduler rounds run by one SHB subscriber shard."),
		tBudgetHit: reg.Counter("gryphon_shb_sched_budget_exhausted_total"+label,
			"Scheduler rounds cut short by the per-stream CatchupWeight quota."),
	}
}

// shardFor maps a subscriber to its shard.
func (s *SHB) shardFor(id vtime.SubscriberID) *subShard {
	return s.shards[uint64(id)%uint64(len(s.shards))]
}

// engineStats is the cross-shard counter block. Every field is atomic:
// deliveries happen under per-shard locks and constream bookkeeping under
// per-pubend locks, so no single lock guards a consistent snapshot.
type engineStats struct {
	eventsDelivered   atomic.Int64
	silencesDelivered atomic.Int64
	gapsDelivered     atomic.Int64
	pfsWrites         atomic.Int64
	pfsReads          atomic.Int64
	nacksSent         atomic.Int64
	nackTicksSent     atomic.Int64
	nackTicksWanted   atomic.Int64
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	switchovers       atomic.Int64
}

func (e *engineStats) snapshot() Stats {
	return Stats{
		EventsDelivered:   e.eventsDelivered.Load(),
		SilencesDelivered: e.silencesDelivered.Load(),
		GapsDelivered:     e.gapsDelivered.Load(),
		PFSWrites:         e.pfsWrites.Load(),
		PFSReads:          e.pfsReads.Load(),
		NacksSent:         e.nacksSent.Load(),
		NackTicksSent:     e.nackTicksSent.Load(),
		NackTicksWanted:   e.nackTicksWanted.Load(),
		CacheHits:         e.cacheHits.Load(),
		CacheMisses:       e.cacheMisses.Load(),
		Switchovers:       e.switchovers.Load(),
	}
}

// shardFan stages one pubend's constream deliveries for one shard: the
// events with at least one match in the shard, each with its run of matched
// subscriber ids in the arena. Filled under ps.mu during the constream
// advance, consumed under sh.mu during fan-out; safe because knowledge for
// one pubend is delivered by a single caller (the broker pins each pubend
// to one event-shard loop).
type shardFan struct {
	evs   []*message.Event
	n     []int32
	arena []vtime.SubscriberID
}

func (f *shardFan) reset() {
	f.evs = f.evs[:0]
	f.n = f.n[:0]
	f.arena = f.arena[:0]
}
