package core

import (
	"time"

	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// catchupStream is the per-(subscriber, pubend) stream that exists only
// while the subscriber is recovering events it missed (paper, section 4.1).
// Its knowledge comes from three sources: PFS batch reads (S/Q
// classification of the disconnection interval), the SHB event cache, and
// knowledge/nack responses from upstream filtered through the subscriber's
// subscription (figure 1's istream→filter→catchup-stream path). When its
// doubt horizon reaches latestDelivered(p) it is discarded and the
// subscriber switches to the consolidated stream.
type catchupStream struct {
	sub *subscriber
	pub vtime.PubendID

	know *tick.Stream    // base advances as deliveries are made
	cur  *tick.Curiosity // this stream's outstanding tick requests

	pfsReadUpTo vtime.Timestamp // PFS coverage extends to here
	started     time.Time       // for the catchup-duration metric (figure 5)
}

// feedCatchup applies one upstream knowledge message to a catchup stream,
// refiltering events through the subscriber's subscription: matching events
// become D ticks, non-matching ones S (the per-subscriber filter of
// figure 1).
func (s *SHB) feedCatchup(cs *catchupStream, know *message.Knowledge) {
	for _, r := range know.Ranges {
		cs.know.Apply(r)
		cs.cur.Satisfy(r.Start, r.End)
	}
	for _, ev := range know.Events {
		kind := tick.S
		if cs.sub.sub.Matches(ev.Attrs) {
			kind = tick.D
		}
		cs.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: kind})
		cs.cur.Satisfy(ev.Timestamp, ev.Timestamp)
	}
}

// pumpCatchups advances every active catchup stream of the pubend.
func (s *SHB) pumpCatchups(ps *shbPubend) {
	for _, sub := range s.subs {
		if cs := sub.catchup[ps.id]; cs != nil {
			s.pumpCatchup(ps, cs)
		}
	}
	s.flushNacks(ps)
	s.updateCachePin(ps)
}

// updateCachePin recomputes the cache's catchup pin: the lowest delivery
// cursor among this pubend's active catchup streams.
func (s *SHB) updateCachePin(ps *shbPubend) {
	pin := vtime.MaxTS
	for _, sub := range s.subs {
		if cs := sub.catchup[ps.id]; cs != nil && cs.know.Base() < pin {
			pin = cs.know.Base()
		}
	}
	ps.cache.setPin(pin)
}

// pumpCatchup makes all possible progress on one catchup stream:
//  1. extend PFS coverage toward latestDelivered,
//  2. resolve Q ranges from the event cache, istream knowledge, or by
//     nacking upstream (consolidated),
//  3. deliver in-order up to the doubt horizon, consuming credits,
//  4. switch over to the constream when caught up.
func (s *SHB) pumpCatchup(ps *shbPubend, cs *catchupStream) {
	sub := cs.sub
	if !sub.connected {
		return
	}
	// 1. Extend PFS coverage. Loop because a complete read may still be
	// behind latestDelivered if it was truncated by the buffer size.
	for cs.pfsReadUpTo < ps.latestDelivered {
		// The PFS only describes this subscriber from its registration
		// point: an interval before it (reconnect-anywhere, or a client
		// resuming with a rewound checkpoint) stays Q and is recovered
		// by retrieving and refiltering events — the paper's fallback
		// path for subscribers reconnecting to a different SHB.
		if since := sub.since[ps.id]; cs.pfsReadUpTo < since {
			cs.pfsReadUpTo = vtime.MinTS(since, ps.latestDelivered)
			continue
		}
		res, err := s.cfg.PFS.Read(ps.id, sub.id, cs.pfsReadUpTo, ps.latestDelivered, s.cfg.ReadBufferQ)
		if err != nil {
			break
		}
		s.stats.PFSReads++
		if res.LostUpTo > cs.pfsReadUpTo {
			// The interval was early-released: record loss; the
			// delivery phase emits an explicit gap message.
			cs.know.Apply(tick.Range{Start: cs.pfsReadUpTo + 1, End: res.LostUpTo, Kind: tick.L})
		}
		// Q spans stay Q; everything else in the covered range is S.
		prev := vtime.MaxOfTS(cs.pfsReadUpTo, res.LostUpTo)
		for _, sp := range res.QSpans {
			if sp.Start > prev+1 {
				cs.know.Apply(tick.Range{Start: prev + 1, End: sp.Start - 1, Kind: tick.S})
			}
			if sp.End > prev {
				prev = sp.End
			}
		}
		if res.KnownUpTo > prev {
			cs.know.Apply(tick.Range{Start: prev + 1, End: res.KnownUpTo, Kind: tick.S})
		}
		if res.KnownUpTo <= cs.pfsReadUpTo {
			break
		}
		cs.pfsReadUpTo = res.KnownUpTo
		if !res.Complete {
			// Consume this buffer before reading further (the
			// paper's read-buffer regime); the next pump continues.
			break
		}
	}

	// 2. Resolve Q ranges below the coverage horizon.
	ceil := vtime.MinTS(cs.pfsReadUpTo, ps.latestDelivered)
	for _, gap := range cs.know.QGaps(cs.know.Base(), ceil, 0) {
		s.resolveGap(ps, cs, gap)
	}

	// 3. Deliver in order up to the doubt horizon.
	s.deliverCatchup(ps, cs)

	// 4. Switchover: once everything up to latestDelivered(p) has been
	// delivered, the catchup stream is discarded and the subscriber
	// rejoins the constream (which delivers strictly after
	// latestDelivered from here on).
	if cs.know.Base() >= ps.latestDelivered {
		delete(sub.catchup, ps.id)
		s.stats.Switchovers++
		tSwitchovers.Inc()
		tCatchupActive.Dec()
		tCatchupSeconds.ObserveDuration(time.Since(cs.started))
		if s.cfg.OnCaughtUp != nil {
			s.cfg.OnCaughtUp(sub.id, ps.id, time.Since(cs.started))
		}
	}
}

// resolveGap fills one Q range of a catchup stream using local information
// where possible (istream knowledge, event cache + refilter) and
// consolidated upstream nacks for the remainder.
func (s *SHB) resolveGap(ps *shbPubend, cs *catchupStream, gap tick.Range) {
	sub := cs.sub
	// The istream only describes ticks above its base (everything below
	// was released locally and holds no information here).
	knownFloor := ps.know.Base()
	if gap.End > knownFloor {
		lo := vtime.MaxOfTS(gap.Start-1, knownFloor)
		for _, r := range ps.know.Ranges(lo, gap.End) {
			switch r.Kind {
			case tick.S, tick.L:
				cs.know.Apply(r)
				cs.cur.Satisfy(r.Start, r.End)
			case tick.D:
				// D runs contain one tick per event; resolve
				// each from the cache.
				for ts := r.Start; ts <= r.End; ts++ {
					s.resolveDTick(ps, cs, ts)
				}
			case tick.Q:
				s.nackForCatchup(ps, cs, tick.Span{Start: r.Start, End: r.End})
			}
		}
	}
	// The portion at or below the istream base must be recovered from
	// upstream: the cache may still hold events (recent nack responses),
	// but silence knowledge can only come from upstream.
	if gap.Start <= knownFloor {
		end := vtime.MinTS(gap.End, knownFloor)
		for _, ev := range ps.cache.eventsIn(gap.Start-1, end) {
			kind := tick.S
			if sub.sub.Matches(ev.Attrs) {
				kind = tick.D
			}
			cs.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: kind})
			cs.cur.Satisfy(ev.Timestamp, ev.Timestamp)
		}
		// Nack whatever is still Q in this portion (span-level; the
		// curiosity layers deduplicate).
		for _, q := range cs.know.QGaps(gap.Start-1, end, 0) {
			s.nackForCatchup(ps, cs, tick.Span{Start: q.Start, End: q.End})
		}
	}
}

// resolveDTick handles a tick the istream knows is D: deliver from cache
// after refiltering, or re-request if the cache evicted it.
func (s *SHB) resolveDTick(ps *shbPubend, cs *catchupStream, ts vtime.Timestamp) {
	if ev, ok := ps.cache.get(ts); ok {
		s.stats.CacheHits++
		tCacheHits.Inc()
		kind := tick.S
		if cs.sub.sub.Matches(ev.Attrs) {
			kind = tick.D
		}
		cs.know.Apply(tick.Range{Start: ts, End: ts, Kind: kind})
		cs.cur.Satisfy(ts, ts)
		return
	}
	s.stats.CacheMisses++
	tCacheMisses.Inc()
	s.nackForCatchup(ps, cs, tick.Span{Start: ts, End: ts})
}

// nackForCatchup records a catchup stream's interest in a span and feeds
// the fresh portion into the SHB-level consolidated curiosity.
func (s *SHB) nackForCatchup(ps *shbPubend, cs *catchupStream, sp tick.Span) {
	fresh := cs.cur.Add(sp.Start, sp.End)
	if len(fresh) == 0 {
		return
	}
	s.requestSpans(ps, fresh)
}

// deliverCatchup emits deliveries for ticks in (base, doubtHorizon]:
// events for D ticks (consuming credits), one gap message per L prefix,
// and advancing the base over S runs.
func (s *SHB) deliverCatchup(ps *shbPubend, cs *catchupStream) {
	sub := cs.sub
	for {
		base := cs.know.Base()
		// A loss prefix immediately above the base becomes a gap
		// message.
		if lh := cs.know.LossHorizon(); lh > base {
			s.cfg.Deliver(sub.id, message.Delivery{
				Kind:      message.DeliverGap,
				Pubend:    ps.id,
				Timestamp: lh,
			})
			sub.lastSent[ps.id] = lh
			s.stats.GapsDelivered++
			tGaps.Inc()
			cs.know.Advance(lh)
			s.setSubReleasedFloor(sub, ps, lh)
			continue
		}
		dh := cs.know.DoubtHorizon()
		limit := vtime.MinTS(dh, ps.latestDelivered)
		if limit <= base {
			return
		}
		dticks := cs.know.DTicks(base, limit)
		delivered := base
		outOfCredits := false
		for _, ts := range dticks {
			if sub.credits <= 0 {
				outOfCredits = true
				break
			}
			ev, ok := ps.cache.get(ts)
			if !ok {
				// Evicted between classification and delivery:
				// re-request the event and stall; delivery
				// resumes when it is re-cached.
				s.nackForCatchup(ps, cs, tick.Span{Start: ts, End: ts})
				outOfCredits = true
				break
			}
			s.deliverEvent(sub, ps.id, ev)
			sub.credits--
			delivered = ts
		}
		if outOfCredits {
			if delivered > base {
				cs.know.Advance(delivered)
			}
			return
		}
		// Every D tick in (base, limit] delivered; consume the
		// trailing silence run as well.
		cs.know.Advance(limit)
	}
}

// setSubReleasedFloor raises released(s,p) when a gap skips the subscriber
// past early-released ticks (it can never acknowledge them otherwise).
func (s *SHB) setSubReleasedFloor(sub *subscriber, ps *shbPubend, ts vtime.Timestamp) {
	if ts > sub.released[ps.id] {
		sub.released[ps.id] = ts
		s.dirty = true
		s.recomputeReleased(ps)
	}
}
