package core

import (
	"time"

	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// catchupStream is the per-(subscriber, pubend) stream that exists only
// while the subscriber is recovering events it missed (paper, section 4.1).
// Its knowledge comes from three sources: PFS batch reads (S/Q
// classification of the disconnection interval), the SHB event cache, and
// knowledge/nack responses from upstream filtered through the subscriber's
// subscription (figure 1's istream→filter→catchup-stream path). When its
// doubt horizon reaches latestDelivered(p) it is discarded and the
// subscriber switches to the consolidated stream.
//
// All fields are guarded by the owning subscriber's shard lock.
type catchupStream struct {
	sub *subscriber
	pub vtime.PubendID

	know *tick.Stream    // base advances as deliveries are made
	cur  *tick.Curiosity // this stream's outstanding tick requests

	pfsReadUpTo vtime.Timestamp // PFS coverage extends to here
	started     time.Time       // for the catchup-duration metric (figure 5)
}

// feedCatchup applies one upstream knowledge message to a catchup stream,
// refiltering events through the subscriber's subscription: matching events
// become D ticks, non-matching ones S (the per-subscriber filter of
// figure 1). Caller holds the subscriber's shard lock.
func feedCatchup(cs *catchupStream, know *message.Knowledge) {
	for _, r := range know.Ranges {
		cs.know.Apply(r)
		cs.cur.Satisfy(r.Start, r.End)
	}
	for _, ev := range know.Events {
		kind := tick.S
		if cs.sub.sub.Matches(ev.Attrs) {
			kind = tick.D
		}
		cs.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: kind})
		cs.cur.Satisfy(ev.Timestamp, ev.Timestamp)
	}
}

// pumpCatchupBudget runs one scheduler quantum for one catchup stream:
//  1. extend PFS coverage toward latestDelivered (no pubend lock held —
//     the PFS is internally synchronized and latestDelivered is read from
//     its atomic mirror),
//  2. resolve Q ranges from the event cache, istream knowledge, or by
//     nacking upstream (consolidated),
//  3. deliver in-order up to the doubt horizon, consuming credits, at most
//     CatchupWeight deliveries,
//  4. switch over to the constream when caught up.
//
// Caller holds sh.mu (the subscriber's shard). Returns whether
// immediately-runnable work remains and whether progress was made.
func (s *SHB) pumpCatchupBudget(sh *subShard, ps *shbPubend, cs *catchupStream) (more, progressed bool) {
	sub := cs.sub
	// 1. Extend PFS coverage. Loop because a complete read may still be
	// behind latestDelivered if it was truncated by the buffer size.
	ld := ps.ldTS()
	truncated := false
	for cs.pfsReadUpTo < ld {
		// The PFS only describes this subscriber from its registration
		// point: an interval before it (reconnect-anywhere, or a client
		// resuming with a rewound checkpoint) stays Q and is recovered
		// by retrieving and refiltering events — the paper's fallback
		// path for subscribers reconnecting to a different SHB.
		if since := sub.since[ps.id]; cs.pfsReadUpTo < since {
			cs.pfsReadUpTo = vtime.MinTS(since, ld)
			continue
		}
		res, err := s.cfg.PFS.ReadAppend(ps.id, sub.id, cs.pfsReadUpTo, ld, s.cfg.ReadBufferQ, sh.spanBuf[:0])
		if err != nil {
			break
		}
		s.stats.pfsReads.Add(1)
		if res.LostUpTo > cs.pfsReadUpTo {
			// The interval was early-released: record loss; the
			// delivery phase emits an explicit gap message.
			cs.know.Apply(tick.Range{Start: cs.pfsReadUpTo + 1, End: res.LostUpTo, Kind: tick.L})
		}
		// Q spans stay Q; everything else in the covered range is S.
		prev := vtime.MaxOfTS(cs.pfsReadUpTo, res.LostUpTo)
		for _, sp := range res.QSpans {
			if sp.Start > prev+1 {
				cs.know.Apply(tick.Range{Start: prev + 1, End: sp.Start - 1, Kind: tick.S})
			}
			if sp.End > prev {
				prev = sp.End
			}
		}
		if res.KnownUpTo > prev {
			cs.know.Apply(tick.Range{Start: prev + 1, End: res.KnownUpTo, Kind: tick.S})
		}
		// Reclaim the (possibly grown) span buffer for the next read.
		if cap(res.QSpans) > cap(sh.spanBuf) {
			sh.spanBuf = res.QSpans[:0]
		}
		if res.KnownUpTo <= cs.pfsReadUpTo {
			break
		}
		cs.pfsReadUpTo = res.KnownUpTo
		progressed = true
		if !res.Complete {
			// Consume this buffer before reading further (the
			// paper's read-buffer regime); the next round continues.
			truncated = true
			break
		}
	}

	ps.mu.lock()
	// 2. Resolve Q ranges below the coverage horizon.
	ceil := vtime.MinTS(cs.pfsReadUpTo, ps.latestDelivered)
	for _, gap := range cs.know.QGaps(cs.know.Base(), ceil, 0) {
		s.resolveGapLocked(ps, cs, gap)
	}

	// 3. Deliver in order up to the doubt horizon, within the quantum.
	exhausted := s.deliverCatchupLocked(sh, ps, cs, &progressed)

	// 4. Switchover: once everything up to latestDelivered(p) has been
	// delivered, the catchup stream is discarded and the subscriber
	// rejoins the constream (which delivers strictly after
	// latestDelivered from here on).
	done := cs.know.Base() >= ps.latestDelivered
	s.flushNacksLocked(ps)
	ps.mu.unlock()

	if done {
		delete(sub.catchup, ps.id)
		if len(sub.catchup) == 0 {
			delete(sh.catchups, sub.id)
		}
		sh.nCatchup.Add(-1)
		sh.tCatchup.Dec()
		tCatchupActive.Dec()
		s.stats.switchovers.Add(1)
		tSwitchovers.Inc()
		took := time.Since(cs.started)
		tCatchupSeconds.ObserveDuration(took)
		if s.cfg.OnCaughtUp != nil {
			s.cfg.OnCaughtUp(sub.id, ps.id, took)
		}
		return false, true
	}
	if exhausted {
		sh.tBudgetHit.Inc()
	}
	return exhausted || truncated, progressed
}

// resolveGapLocked fills one Q range of a catchup stream using local
// information where possible (istream knowledge, event cache + refilter)
// and consolidated upstream nacks for the remainder. Caller holds sh.mu
// and ps.mu.
func (s *SHB) resolveGapLocked(ps *shbPubend, cs *catchupStream, gap tick.Range) {
	sub := cs.sub
	// The istream only describes ticks above its base (everything below
	// was released locally and holds no information here).
	knownFloor := ps.know.Base()
	if gap.End > knownFloor {
		lo := vtime.MaxOfTS(gap.Start-1, knownFloor)
		for _, r := range ps.know.Ranges(lo, gap.End) {
			switch r.Kind {
			case tick.S, tick.L:
				cs.know.Apply(r)
				cs.cur.Satisfy(r.Start, r.End)
			case tick.D:
				// D runs contain one tick per event; resolve
				// each from the cache.
				for ts := r.Start; ts <= r.End; ts++ {
					s.resolveDTickLocked(ps, cs, ts)
				}
			case tick.Q:
				s.nackForCatchupLocked(ps, cs, tick.Span{Start: r.Start, End: r.End})
			}
		}
	}
	// The portion at or below the istream base must be recovered from
	// upstream: the cache may still hold events (recent nack responses),
	// but silence knowledge can only come from upstream.
	if gap.Start <= knownFloor {
		end := vtime.MinTS(gap.End, knownFloor)
		for _, ev := range ps.cache.eventsIn(gap.Start-1, end) {
			kind := tick.S
			if sub.sub.Matches(ev.Attrs) {
				kind = tick.D
			}
			cs.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: kind})
			cs.cur.Satisfy(ev.Timestamp, ev.Timestamp)
		}
		// Nack whatever is still Q in this portion (span-level; the
		// curiosity layers deduplicate).
		for _, q := range cs.know.QGaps(gap.Start-1, end, 0) {
			s.nackForCatchupLocked(ps, cs, tick.Span{Start: q.Start, End: q.End})
		}
	}
}

// resolveDTickLocked handles a tick the istream knows is D: deliver from
// cache after refiltering, or re-request if the cache evicted it. Caller
// holds sh.mu and ps.mu.
func (s *SHB) resolveDTickLocked(ps *shbPubend, cs *catchupStream, ts vtime.Timestamp) {
	if ev, ok := ps.cache.get(ts); ok {
		s.stats.cacheHits.Add(1)
		tCacheHits.Inc()
		kind := tick.S
		if cs.sub.sub.Matches(ev.Attrs) {
			kind = tick.D
		}
		cs.know.Apply(tick.Range{Start: ts, End: ts, Kind: kind})
		cs.cur.Satisfy(ts, ts)
		return
	}
	s.stats.cacheMisses.Add(1)
	tCacheMisses.Inc()
	s.nackForCatchupLocked(ps, cs, tick.Span{Start: ts, End: ts})
}

// nackForCatchupLocked records a catchup stream's interest in a span and
// feeds the fresh portion into the SHB-level consolidated curiosity.
// Caller holds sh.mu and ps.mu.
func (s *SHB) nackForCatchupLocked(ps *shbPubend, cs *catchupStream, sp tick.Span) {
	fresh := cs.cur.Add(sp.Start, sp.End)
	if len(fresh) == 0 {
		return
	}
	s.requestSpansLocked(ps, fresh)
}

// deliverCatchupLocked emits deliveries for ticks in (base, doubtHorizon]:
// events for D ticks (consuming credits), one gap message per L prefix,
// and advancing the base over S runs. At most CatchupWeight deliveries are
// made; it reports whether the quantum was exhausted with deliverable work
// plausibly remaining. Caller holds sh.mu and ps.mu.
func (s *SHB) deliverCatchupLocked(sh *subShard, ps *shbPubend, cs *catchupStream, progressed *bool) bool {
	sub := cs.sub
	budget := s.cfg.CatchupWeight
	delivered := 0
	for {
		if delivered >= budget {
			return true
		}
		base := cs.know.Base()
		// A loss prefix immediately above the base becomes a gap
		// message.
		if lh := cs.know.LossHorizon(); lh > base {
			s.cfg.Deliver(sub.id, message.Delivery{
				Kind:      message.DeliverGap,
				Pubend:    ps.id,
				Timestamp: lh,
			})
			sub.lastSent[ps.id] = lh
			s.stats.gapsDelivered.Add(1)
			tGaps.Inc()
			cs.know.Advance(lh)
			s.setSubReleasedFloorLocked(sh, sub, ps, lh)
			delivered++
			*progressed = true
			continue
		}
		dh := cs.know.DoubtHorizon()
		limit := vtime.MinTS(dh, ps.latestDelivered)
		if limit <= base {
			return false
		}
		sh.tsBuf = cs.know.DTicksAppend(sh.tsBuf[:0], base, limit)
		dticks := sh.tsBuf
		deliveredTo := base
		stalled := false
		for _, ts := range dticks {
			if delivered >= budget {
				if deliveredTo > base {
					cs.know.Advance(deliveredTo)
				}
				return true
			}
			if sub.credits <= 0 {
				stalled = true
				break
			}
			ev, ok := ps.cache.get(ts)
			if !ok {
				// Evicted between classification and delivery:
				// re-request the event and stall; delivery
				// resumes when it is re-cached.
				s.nackForCatchupLocked(ps, cs, tick.Span{Start: ts, End: ts})
				stalled = true
				break
			}
			s.deliverEvent(sh, sub, ps.id, ev)
			sub.credits--
			delivered++
			deliveredTo = ts
			*progressed = true
		}
		if stalled {
			if deliveredTo > base {
				cs.know.Advance(deliveredTo)
			}
			return false
		}
		// Every D tick in (base, limit] delivered; consume the
		// trailing silence run as well.
		cs.know.Advance(limit)
		*progressed = true
	}
}

// setSubReleasedFloorLocked raises released(s,p) when a gap skips the
// subscriber past early-released ticks (it can never acknowledge them
// otherwise). The pubend's released(p) picks the change up at the next
// Tick floor publication. Caller holds sh.mu.
func (s *SHB) setSubReleasedFloorLocked(sh *subShard, sub *subscriber, ps *shbPubend, ts vtime.Timestamp) {
	if ts > sub.released[ps.id] {
		sub.released[ps.id] = ts
		sh.dirtySubs[sub.id] = sub
		sh.relDirty = true
	}
}
