// Package core implements the subscriber hosting broker (SHB) engine of
// the paper (section 4): the istream accumulating knowledge from upstream,
// the single consolidated stream (constream) serving all connected
// non-catchup subscribers and the Persistent Filtering Subsystem, separate
// catchup streams for reconnecting subscribers, the catchup→non-catchup
// switchover, and the SHB side of the release protocol.
//
// The engine is callback-driven: the owning broker feeds it received
// messages (OnKnowledge, Subscribe, OnAck, ...) and drives housekeeping
// through Tick. All outputs (deliveries to clients, nacks and release
// vectors to upstream) leave through the callbacks in Config. Internally
// the engine is sharded: subscriber state is partitioned across
// Config.SubShards locks (each with its own catchup pump goroutine), and
// each pubend's constream state sits behind its own lock — see the
// concurrency contract below.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/filter"
	"repro/internal/matchidx"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/pfs"
	"repro/internal/telemetry"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Engine instruments (process-wide; see internal/telemetry). Per-shard
// gryphon_shb_* instruments live on each subShard.
var (
	tEventsDelivered = telemetry.Default().Counter("gryphon_core_events_delivered_total",
		"Event deliveries to durable subscribers (constream and catchup).")
	tSilences = telemetry.Default().Counter("gryphon_core_silences_delivered_total",
		"Silence deliveries advancing subscriber checkpoint tokens.")
	tGaps = telemetry.Default().Counter("gryphon_core_gaps_delivered_total",
		"Gap deliveries for early-released intervals.")
	tSwitchovers = telemetry.Default().Counter("gryphon_core_switchovers_total",
		"Catchup → non-catchup stream switchovers.")
	tCatchupActive = telemetry.Default().Gauge("gryphon_core_catchup_active",
		"Active (subscriber, pubend) catchup streams.")
	tCatchupSeconds = telemetry.Default().DurationHistogram("gryphon_core_catchup_seconds",
		"Catchup duration from reconnection to switchover (figure 5 metric).",
		telemetry.DefBuckets)
	tCacheHits = telemetry.Default().Counter("gryphon_core_cache_hits_total",
		"Event-cache hits while resolving catchup D ticks.")
	tCacheMisses = telemetry.Default().Counter("gryphon_core_cache_misses_total",
		"Event-cache misses forcing an upstream re-request.")
	tNackSpans = telemetry.Default().Counter("gryphon_core_nack_spans_total",
		"Consolidated nack spans sent upstream.")
)

// Metastore tables used by the SHB.
const (
	tableSubs     = "shb_subs"     // subID -> filter source
	tableReleased = "shb_released" // "<pub>/<sub>" -> released(s,p)
	tableSince    = "shb_since"    // "<pub>/<sub>" -> PFS coverage start
	tableLD       = "shb_ld"       // "<pub>" -> latestDelivered(p)
)

// maxSubShards bounds Config.SubShards; the fan-out path tracks pending
// shards in a 64-bit mask.
const maxSubShards = 64

// Config wires an SHB engine to its broker.
type Config struct {
	// Meta persists subscriptions, released(s,p) and latestDelivered(p)
	// (required).
	Meta *metastore.Store
	// PFS is the persistent filtering subsystem (required).
	PFS *pfs.PFS
	// Pubends is the set of pubends in the system, known from cluster
	// configuration (required, non-empty).
	Pubends []vtime.PubendID

	// SendNack forwards consolidated nacks upstream.
	SendNack func(pub vtime.PubendID, spans []tick.Span)
	// SendRelease forwards the release vector upstream.
	SendRelease func(pub vtime.PubendID, released, latestDelivered vtime.Timestamp)
	// Deliver enqueues one delivery on the subscriber's FIFO link.
	Deliver func(sub vtime.SubscriberID, d message.Delivery)
	// OnCaughtUp, if set, is invoked at every catchup→non-catchup
	// switchover with the catchup duration (figure 5's metric).
	OnCaughtUp func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration)

	// SilenceInterval is how far latestDelivered may run ahead of a
	// subscriber's last delivery before a silence message is sent so
	// its checkpoint token does not lag (virtual time units). Zero
	// means 250ms of virtual time.
	SilenceInterval vtime.Timestamp
	// ReadBufferQ is the PFS batch-read buffer size in Q spans (the
	// paper's experiments use 5000). Zero means 5000.
	ReadBufferQ int
	// EventCacheSize bounds the per-pubend event cache (the SHB-side
	// recovery cache). Zero means 65536 events; absence of a cached
	// event is always recoverable by nacking upstream.
	EventCacheSize int
	// MatchEngine selects the subscription matching strategy: "" or
	// "indexed" for the counting-based attribute index, "linear" for the
	// brute-force scan (see internal/matchidx).
	MatchEngine string
	// SubShards is the number of subscriber shards (each with its own
	// lock and catchup pump). Zero means min(GOMAXPROCS, 8); values are
	// clamped to [1, 64].
	SubShards int
	// CatchupWeight is the catchup scheduler's round-robin quantum: the
	// maximum number of deliveries one catchup stream makes per scheduler
	// round before the shard lock is released and the next stream runs.
	// Smaller values favor live-path latency under deep backlogs; larger
	// values favor catchup drain throughput. Zero means 256.
	CatchupWeight int
}

// SHB is the subscriber hosting broker engine.
//
// Concurrency contract. The engine is internally sharded; there is no
// whole-engine lock and entry points for different subscribers or
// pubends run concurrently:
//
//   - Subscriber state (the subscription records, released/since/lastSent
//     floors, credits, catchup streams) is partitioned across SubShards
//     shards by subscriber id. Calls touching one subscriber (Subscribe,
//     Detach, Unsubscribe, OnAck, OnCredit) are atomic with respect to
//     that subscriber's shard only.
//   - Per-pubend constream state (istream knowledge, event cache,
//     consolidated curiosity, latestDelivered, released vector) is guarded
//     by a per-pubend lock. OnKnowledge ingests and advances the constream
//     under it, then fans deliveries out to the shards from a snapshot.
//     Callers MUST serialize OnKnowledge per pubend (knowledge before the
//     nack answer that fills its gap); the broker does so by pinning each
//     pubend's traffic to one event-shard loop. Calls for different
//     pubends may run concurrently.
//   - Shard locks order before pubend locks; the engine never calls back
//     into itself.
//
// The configured callbacks (Deliver, SendNack, SendRelease, OnCaughtUp)
// are invoked while a shard and/or pubend lock is held — possibly from a
// shard's catchup pump goroutine, not only from the caller's goroutine.
// They must not block (a blocked callback stalls that shard or pubend,
// though no longer the whole engine) and must not re-enter the engine,
// which can self-deadlock. Deliveries for one subscriber are always made
// under its shard lock, so the per-subscriber FIFO contract survives
// concurrent shards. The broker's callbacks obey this by only doing
// non-blocking queue pushes (shard task queues, overlay sends).
type SHB struct {
	cfg     Config
	matcher *filter.Matcher

	pubends map[vtime.PubendID]*shbPubend // immutable after New
	pubList []*shbPubend                  // sorted by id, immutable after New
	shards  []*subShard                   // immutable after New

	stats        engineStats
	closed       atomic.Bool
	persistRetry atomic.Bool // a Tick commit failed; re-persist next Tick
}

// Stats exposes engine counters for the experiment harness. Snapshot them
// via SHB.Stats.
type Stats struct {
	EventsDelivered   int64 // event deliveries to subscribers
	SilencesDelivered int64
	GapsDelivered     int64
	PFSWrites         int64
	PFSReads          int64
	NacksSent         int64 // nack spans sent upstream (post-consolidation)
	NackTicksSent     int64 // total ticks covered by those spans
	NackTicksWanted   int64 // ticks requested by consumers pre-consolidation
	CacheHits         int64
	CacheMisses       int64
	Switchovers       int64 // catchup → non-catchup transitions
}

// shbPubend is the per-pubend state: istream knowledge, event cache,
// consolidated curiosity, and the constream cursor.
type shbPubend struct {
	id vtime.PubendID

	// mu guards every non-atomic field below. Lock order: a shard's mu
	// may be held when acquiring ps.mu, never the reverse; two pubend
	// locks are never nested.
	mu    chanMutex
	know  *tick.Stream    // istream knowledge (base advances with released)
	cur   *tick.Curiosity // consolidated upstream curiosity
	cache *eventCache

	attached        bool            // latestDelivered initialized
	latestDelivered vtime.Timestamp // constream cursor (persisted)
	released        vtime.Timestamp // min over subs, ≤ latestDelivered
	maxKnown        vtime.Timestamp // highest tick ever heard about

	lastSentRelease  vtime.Timestamp // dedupe for SendRelease
	lastSentLD       vtime.Timestamp
	pendingNackSpans []tick.Span // consolidated spans awaiting SendNack
	dirtyLD          bool        // latestDelivered pending a Tick commit

	// ld mirrors latestDelivered for lock-free reads on the catchup
	// pump's PFS phase.
	ld atomic.Int64
	// fanLD is the constream position whose deliveries have been handed
	// to every shard. Silence may only advance a subscriber's checkpoint
	// to fanLD: between the constream advance (under ps.mu) and the
	// per-shard fan-out, latestDelivered covers events no subscriber has
	// seen yet, and a silence at raw latestDelivered would release them.
	fanLD atomic.Int64

	// Per-shard aggregates, published by the shards under ps.mu:
	// relByShard[i] is shard i's min released(s,p) (MaxTS when the shard
	// hosts no subscriber), pinByShard[i] its min catchup-stream base
	// (MaxTS when none). released(p) and the cache pin derive from these.
	relByShard []vtime.Timestamp
	pinByShard []vtime.Timestamp

	// matchBuf is the reusable per-event match-result buffer for this
	// pubend's constream advance (guarded by mu; neither the PFS nor the
	// fan staging retains it).
	matchBuf []vtime.SubscriberID
	// dtickBuf is the reusable D-tick scratch for advanceConstream
	// (guarded by mu), so a steady-state knowledge batch allocates no
	// tick slice.
	dtickBuf []vtime.Timestamp
	// fan stages constream deliveries per shard; see shardFan.
	fan []shardFan
}

func (ps *shbPubend) ldTS() vtime.Timestamp {
	return vtime.Timestamp(ps.ld.Load())
}

// chanMutex is a mutex implemented over a channel (tiny footprint, and
// trivially extensible to TryLock). One instance guards each pubend.
type chanMutex chan struct{}

func newChanMutex() chanMutex { return make(chanMutex, 1) }

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// subscriber is one durable subscription hosted by this SHB. All fields
// are guarded by the owning shard's lock.
type subscriber struct {
	id        vtime.SubscriberID
	sub       *filter.Subscription
	connected bool
	credits   int64
	released  map[vtime.PubendID]vtime.Timestamp // released(s,p), persisted
	// since is the timestamp this SHB started logging PFS records for
	// the subscriber (its registration point); persisted. Catchup for
	// ticks before it must refilter retrieved events instead of trusting
	// the PFS (reconnect-anywhere, and clients resuming with a rewound
	// checkpoint token).
	since    map[vtime.PubendID]vtime.Timestamp
	lastSent map[vtime.PubendID]vtime.Timestamp // for silence generation
	catchup  map[vtime.PubendID]*catchupStream
}

// New creates (or recovers) an SHB engine. Subscriptions, released(s,p)
// and latestDelivered(p) are reloaded from the metastore; every recovered
// subscriber starts disconnected. Call Close to stop the shard pump
// goroutines.
func New(cfg Config) (*SHB, error) {
	if cfg.Meta == nil || cfg.PFS == nil {
		return nil, errors.New("core: Meta and PFS are required")
	}
	if len(cfg.Pubends) == 0 {
		return nil, errors.New("core: at least one pubend is required")
	}
	if cfg.SilenceInterval == 0 {
		cfg.SilenceInterval = 250 * vtime.TicksPerMilli
	}
	if cfg.ReadBufferQ == 0 {
		cfg.ReadBufferQ = 5000
	}
	if cfg.EventCacheSize == 0 {
		cfg.EventCacheSize = 65536
	}
	if cfg.SubShards == 0 {
		cfg.SubShards = runtime.GOMAXPROCS(0)
		if cfg.SubShards > 8 {
			cfg.SubShards = 8
		}
	}
	if cfg.SubShards < 1 {
		cfg.SubShards = 1
	}
	if cfg.SubShards > maxSubShards {
		cfg.SubShards = maxSubShards
	}
	if cfg.CatchupWeight <= 0 {
		cfg.CatchupWeight = 256
	}
	if cfg.SendNack == nil {
		cfg.SendNack = func(vtime.PubendID, []tick.Span) {}
	}
	if cfg.SendRelease == nil {
		cfg.SendRelease = func(vtime.PubendID, vtime.Timestamp, vtime.Timestamp) {}
	}
	if cfg.Deliver == nil {
		cfg.Deliver = func(vtime.SubscriberID, message.Delivery) {}
	}
	s := &SHB{
		cfg:     cfg,
		matcher: matchidx.MatcherFor(cfg.MatchEngine).InstrumentSite("shb"),
		pubends: make(map[vtime.PubendID]*shbPubend, len(cfg.Pubends)),
	}
	for i := 0; i < cfg.SubShards; i++ {
		s.shards = append(s.shards, newSubShard(i, len(cfg.Pubends)))
	}
	for _, pub := range cfg.Pubends {
		ps := &shbPubend{
			id:         pub,
			mu:         newChanMutex(),
			cur:        tick.NewCuriosity(),
			cache:      newEventCache(cfg.EventCacheSize),
			relByShard: make([]vtime.Timestamp, cfg.SubShards),
			pinByShard: make([]vtime.Timestamp, cfg.SubShards),
			fan:        make([]shardFan, cfg.SubShards),
		}
		for i := range ps.relByShard {
			ps.relByShard[i] = vtime.MaxTS
			ps.pinByShard[i] = vtime.MaxTS
		}
		if v, ok := cfg.Meta.GetUint64(tableLD, pubKey(pub)); ok {
			ps.latestDelivered = vtime.Timestamp(v)
			ps.attached = true
		}
		ps.know = tick.NewStream(ps.latestDelivered)
		ps.cache.setFloor(ps.latestDelivered)
		ps.released = ps.latestDelivered
		ps.maxKnown = ps.latestDelivered
		ps.ld.Store(int64(ps.latestDelivered))
		ps.fanLD.Store(int64(ps.latestDelivered))
		s.pubends[pub] = ps
		s.pubList = append(s.pubList, ps)
	}
	sort.Slice(s.pubList, func(i, j int) bool { return s.pubList[i].id < s.pubList[j].id })
	if err := s.recoverSubscribers(); err != nil {
		return nil, err
	}
	// released(p) must honor the persisted per-subscriber floors, which lag
	// the in-memory state by one persistence cycle. Recovering it from
	// latestDelivered alone would let the post-restart PFS chop discard the
	// loss boundary a resuming subscriber's catchup depends on, minting
	// spurious gap messages for ranges that were pure silence. Unlike the
	// steady-state recompute this may move released(p) BELOW
	// latestDelivered, so it is done directly (no locks needed: the pump
	// goroutines have not started).
	for _, ps := range s.pubList {
		rel := ps.latestDelivered
		for _, sh := range s.shards {
			min := vtime.MaxTS
			for _, sub := range sh.subs {
				if r := sub.released[ps.id]; r < min {
					min = r
				}
			}
			ps.relByShard[sh.id] = min
			if min < rel {
				rel = min
			}
		}
		ps.released = rel
	}
	for _, sh := range s.shards {
		go s.shardPump(sh)
	}
	return s, nil
}

// Close stops the shard pump goroutines. Idempotent; the engine must not
// be used after Close.
func (s *SHB) Close() {
	if s.closed.Swap(true) {
		return
	}
	for _, sh := range s.shards {
		kickShard(sh)
	}
}

func pubKey(pub vtime.PubendID) string { return strconv.FormatUint(uint64(pub), 10) }

func relKey(pub vtime.PubendID, sub vtime.SubscriberID) string {
	return strconv.FormatUint(uint64(pub), 10) + "/" + strconv.FormatUint(uint64(sub), 10)
}

// recoverSubscribers reloads durable subscriptions from the metastore.
func (s *SHB) recoverSubscribers() error {
	for _, key := range s.cfg.Meta.Keys(tableSubs) {
		id64, err := strconv.ParseUint(key, 10, 32)
		if err != nil {
			continue
		}
		src, ok := s.cfg.Meta.Get(tableSubs, key)
		if !ok {
			continue
		}
		subFilter, err := filter.Parse(string(src))
		if err != nil {
			return fmt.Errorf("core: recover subscription %s: %w", key, err)
		}
		id := vtime.SubscriberID(id64)
		sub := s.newSubscriber(id, subFilter)
		for pub := range s.pubends {
			if v, ok := s.cfg.Meta.GetUint64(tableReleased, relKey(pub, id)); ok {
				sub.released[pub] = vtime.Timestamp(v)
			}
			if v, ok := s.cfg.Meta.GetUint64(tableSince, relKey(pub, id)); ok {
				sub.since[pub] = vtime.Timestamp(v)
			}
		}
		s.shardFor(id).subs[id] = sub
		s.matcher.Add(id, subFilter)
	}
	return nil
}

func (s *SHB) newSubscriber(id vtime.SubscriberID, f *filter.Subscription) *subscriber {
	return &subscriber{
		id:       id,
		sub:      f,
		released: make(map[vtime.PubendID]vtime.Timestamp, len(s.pubends)),
		since:    make(map[vtime.PubendID]vtime.Timestamp, len(s.pubends)),
		lastSent: make(map[vtime.PubendID]vtime.Timestamp, len(s.pubends)),
		catchup:  make(map[vtime.PubendID]*catchupStream),
	}
}

// Stats returns a snapshot of the engine counters.
func (s *SHB) Stats() Stats { return s.stats.snapshot() }

// LatestDelivered reports the constream cursor for a pubend.
func (s *SHB) LatestDelivered(pub vtime.PubendID) vtime.Timestamp {
	if ps, ok := s.pubends[pub]; ok {
		return ps.ldTS()
	}
	return vtime.ZeroTS
}

// Released reports released(p): the highest timestamp all durable
// subscribers of this SHB have acknowledged (bounded by latestDelivered).
func (s *SHB) Released(pub vtime.PubendID) vtime.Timestamp {
	if ps, ok := s.pubends[pub]; ok {
		ps.mu.lock()
		defer ps.mu.unlock()
		return ps.released
	}
	return vtime.ZeroTS
}

// CatchupCount reports how many (subscriber, pubend) catchup streams are
// currently active.
func (s *SHB) CatchupCount() int {
	n := int64(0)
	for _, sh := range s.shards {
		n += sh.nCatchup.Load()
	}
	return int(n)
}

// SubShardCount reports the number of subscriber shards the engine runs.
func (s *SHB) SubShardCount() int { return len(s.shards) }

// ConnectedCount reports the number of connected subscribers.
func (s *SHB) ConnectedCount() int {
	n := int64(0)
	for _, sh := range s.shards {
		n += sh.nConnected.Load()
	}
	return int(n)
}

// OnKnowledge ingests a knowledge message from upstream: ranges and events
// accumulate into the istream, curiosity is satisfied, the constream
// advances under the pubend lock, and the resulting deliveries fan out to
// the subscriber shards. Catchup streams with fresh knowledge are fed and
// their shard pumps kicked; the heavy catchup work happens on the pump
// goroutines so this call's latency is the live-path latency.
//
// Calls for the same pubend must be serialized by the caller (the broker
// pins each pubend to one event-shard loop).
func (s *SHB) OnKnowledge(know *message.Knowledge) {
	ps, ok := s.pubends[know.Pubend]
	if !ok {
		return
	}
	ps.mu.lock()
	s.attach(ps, know)
	for _, r := range know.Ranges {
		ps.know.Apply(r)
		ps.cur.Satisfy(r.Start, r.End)
		if r.End > ps.maxKnown {
			ps.maxKnown = r.End
		}
	}
	for _, ev := range know.Events {
		ps.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: tick.D})
		ps.cache.put(ev)
		ps.cur.Satisfy(ev.Timestamp, ev.Timestamp)
		if ev.Timestamp > ps.maxKnown {
			ps.maxKnown = ev.Timestamp
		}
	}
	s.advanceConstream(ps)
	ldNow := ps.latestDelivered
	// Snapshot which shards hold catchup streams on this pubend; their
	// istream filters must see this knowledge (figure 1: nack responses
	// for ticks below the istream base flow through the per-subscriber
	// catchup knowledge streams, the istream itself discards them).
	var catchMask uint64
	for i, pin := range ps.pinByShard {
		if pin != vtime.MaxTS {
			catchMask |= 1 << uint(i)
		}
	}
	ps.mu.unlock()

	var kickMask uint64
	for i, sh := range s.shards {
		f := &ps.fan[i]
		hasCatch := catchMask&(1<<uint(i)) != 0
		if len(f.evs) == 0 && !hasCatch {
			continue
		}
		sh.mu.Lock()
		s.fanOutLocked(sh, ps, f)
		if hasCatch {
			for _, sub := range sh.subs {
				if cs := sub.catchup[ps.id]; cs != nil {
					feedCatchup(cs, know)
				}
			}
			kickMask |= 1 << uint(i)
		}
		sh.mu.Unlock()
	}
	// Every shard has now seen the deliveries up to ldNow; silence may
	// advance checkpoints this far.
	ps.fanLD.Store(int64(ldNow))
	for i, sh := range s.shards {
		if kickMask&(1<<uint(i)) != 0 {
			kickShard(sh)
		}
	}
}

// fanOutLocked replays one shard's staged constream deliveries (built by
// advanceConstream under ps.mu) into the shard. Caller holds sh.mu; ps.mu
// is NOT held — the stage is safe to read because OnKnowledge calls for
// one pubend are serialized by the caller.
func (s *SHB) fanOutLocked(sh *subShard, ps *shbPubend, f *shardFan) {
	base := 0
	for i, ev := range f.evs {
		n := int(f.n[i])
		for _, subID := range f.arena[base : base+n] {
			sub := sh.subs[subID]
			if sub == nil || !sub.connected || sub.catchup[ps.id] != nil {
				continue
			}
			// A subscriber can be ahead of a recovering constream, or
			// have subscribed after this event was staged with a floor
			// covering it. Never deliver at or below its floor.
			if ev.Timestamp <= sub.lastSent[ps.id] {
				continue
			}
			s.deliverEvent(sh, sub, ps.id, ev)
		}
		base += n
	}
	f.reset()
}

// attach initializes latestDelivered for a fresh SHB at the first received
// knowledge: a broker that joins the stream starts delivering from the
// current position rather than nacking all of history. Caller holds ps.mu.
func (s *SHB) attach(ps *shbPubend, know *message.Knowledge) {
	if ps.attached {
		return
	}
	start := vtime.MaxTS
	for _, r := range know.Ranges {
		if r.Start < start {
			start = r.Start
		}
	}
	for _, ev := range know.Events {
		if ev.Timestamp < start {
			start = ev.Timestamp
		}
	}
	if start == vtime.MaxTS {
		return
	}
	ps.attached = true
	ps.latestDelivered = start - 1
	ps.cache.setFloor(start - 1)
	ps.released = start - 1
	ps.know.Advance(start - 1)
	ps.ld.Store(int64(start - 1))
	ps.fanLD.Store(int64(start - 1))
	ps.dirtyLD = true
}

// advanceConstream processes ticks in (latestDelivered, doubtHorizon]: D
// ticks are matched once against every durable subscription, written to
// the PFS, and staged for delivery to the connected non-catchup
// subscribers that match (paper, section 4.1). Caller holds ps.mu; the
// staged fans are consumed by OnKnowledge's fan-out phase.
func (s *SHB) advanceConstream(ps *shbPubend) {
	dh := ps.know.DoubtHorizon()
	if dh <= ps.latestDelivered {
		return
	}
	// Gap-free by definition of the doubt horizon; walk D ticks in order.
	ps.dtickBuf = ps.know.DTicksAppend(ps.dtickBuf[:0], ps.latestDelivered, dh)
	dticks := ps.dtickBuf
	for _, ts := range dticks {
		ev, ok := ps.cache.get(ts)
		if !ok {
			// The cache evicted an undelivered event (pathological
			// sizing). Re-request it and stop advancing; knowledge
			// will come back around.
			s.stats.cacheMisses.Add(1)
			tCacheMisses.Inc()
			s.requestSpansLocked(ps, []tick.Span{{Start: ts, End: ts}})
			s.flushNacksLocked(ps)
			dh = ts - 1
			break
		}
		ps.matchBuf = s.matcher.MatchAppend(ps.matchBuf[:0], ev.Attrs)
		matched := ps.matchBuf
		// PFS first — delivery to the PFS must complete before the
		// tick is considered delivered. Skip timestamps the PFS
		// already has (constream replay after a crash).
		if len(matched) > 0 && ts > s.cfg.PFS.LastTimestamp(ps.id) {
			if err := s.cfg.PFS.Write(ps.id, ts, matched); err == nil {
				s.stats.pfsWrites.Add(1)
			}
		}
		// Stage matches into the per-shard fans; delivery happens under
		// each shard's lock after ps.mu is released.
		nShards := uint64(len(s.shards))
		for _, subID := range matched {
			f := &ps.fan[uint64(subID)%nShards]
			if len(f.evs) == 0 || f.evs[len(f.evs)-1] != ev {
				f.evs = append(f.evs, ev)
				f.n = append(f.n, 0)
			}
			f.n[len(f.n)-1]++
			f.arena = append(f.arena, subID)
		}
	}
	if dh > ps.latestDelivered {
		ps.latestDelivered = dh
		ps.ld.Store(int64(dh))
		ps.cache.setFloor(dh)
		ps.dirtyLD = true
	}
	s.recomputeReleasedLocked(ps)
}

// deliverEvent sends one event delivery and updates silence bookkeeping.
// Caller holds sh.mu (the subscriber's shard).
func (s *SHB) deliverEvent(sh *subShard, sub *subscriber, pub vtime.PubendID, ev *message.Event) {
	s.cfg.Deliver(sub.id, message.Delivery{
		Kind:      message.DeliverEvent,
		Pubend:    pub,
		Timestamp: ev.Timestamp,
		Event:     ev,
	})
	sub.lastSent[pub] = ev.Timestamp
	s.stats.eventsDelivered.Add(1)
	tEventsDelivered.Inc()
	sh.tDelivered.Inc()
}

// requestSpansLocked adds wanted spans to the consolidated curiosity; only
// the fresh (not already pending) parts are queued for upstream. Caller
// holds ps.mu.
func (s *SHB) requestSpansLocked(ps *shbPubend, spans []tick.Span) {
	for _, sp := range spans {
		s.stats.nackTicksWanted.Add(sp.Len())
		for _, fresh := range ps.cur.Add(sp.Start, sp.End) {
			ps.pendingNackSpans = append(ps.pendingNackSpans, fresh)
		}
	}
}

// flushNacksLocked sends queued consolidated nack spans upstream. Caller
// holds ps.mu.
func (s *SHB) flushNacksLocked(ps *shbPubend) {
	if len(ps.pendingNackSpans) == 0 {
		return
	}
	spans := ps.pendingNackSpans
	ps.pendingNackSpans = nil
	s.stats.nacksSent.Add(int64(len(spans)))
	tNackSpans.Add(int64(len(spans)))
	for _, sp := range spans {
		s.stats.nackTicksSent.Add(sp.Len())
	}
	s.cfg.SendNack(ps.id, spans)
}

// recomputeReleasedLocked recalculates released(p) =
// min(latestDelivered, min_i relByShard[i]) from the shard-published
// floors. Caller holds ps.mu.
func (s *SHB) recomputeReleasedLocked(ps *shbPubend) {
	rel := ps.latestDelivered
	for _, r := range ps.relByShard {
		if r < rel {
			rel = r
		}
	}
	if rel > ps.released {
		ps.released = rel
		ps.dirtyLD = true
		// Knowledge and cached events below released(p) can never be
		// needed again by any local subscriber.
		ps.know.Advance(rel)
		ps.cache.evictUpTo(rel)
	}
}

// publishShardFloors recomputes one shard's per-pubend min released(s,p)
// and publishes it into every pubend's release vector.
func (s *SHB) publishShardFloors(sh *subShard) {
	sh.mu.Lock()
	mins := sh.relMins
	for i := range mins {
		mins[i] = vtime.MaxTS
	}
	for _, sub := range sh.subs {
		for i, ps := range s.pubList {
			if r := sub.released[ps.id]; r < mins[i] {
				mins[i] = r
			}
		}
	}
	for i, ps := range s.pubList {
		ps.mu.lock()
		ps.relByShard[sh.id] = mins[i]
		s.recomputeReleasedLocked(ps)
		ps.mu.unlock()
	}
	sh.mu.Unlock()
}

// syncShardPins recomputes one shard's per-pubend min catchup base and
// publishes it into the pubends' cache pins, so the event cache keeps
// events any catchup stream may still need.
func (s *SHB) syncShardPins(sh *subShard) {
	sh.mu.Lock()
	mins := sh.pinMins
	for i := range mins {
		mins[i] = vtime.MaxTS
	}
	for _, sub := range sh.catchups {
		for i, ps := range s.pubList {
			if cs := sub.catchup[ps.id]; cs != nil {
				if b := cs.know.Base(); b < mins[i] {
					mins[i] = b
				}
			}
		}
	}
	for i, ps := range s.pubList {
		ps.mu.lock()
		ps.pinByShard[sh.id] = mins[i]
		pin := vtime.MaxTS
		for _, p := range ps.pinByShard {
			if p < pin {
				pin = p
			}
		}
		ps.cache.setPin(pin)
		ps.mu.unlock()
	}
	sh.mu.Unlock()
}

// PendingCuriosity snapshots the consolidated spans each pubend is still
// waiting on from upstream. A nack request in flight when the upstream
// link died is recorded here as pending, which makes requestSpans suppress
// any re-request — so after a reconnect the broker must re-issue these
// spans itself or the gap would never fill. Pubends with nothing pending
// are omitted.
func (s *SHB) PendingCuriosity() map[vtime.PubendID][]tick.Span {
	out := make(map[vtime.PubendID][]tick.Span)
	for pub, ps := range s.pubends {
		ps.mu.lock()
		if pending := ps.cur.Pending(); len(pending) > 0 {
			out[pub] = pending
		}
		ps.mu.unlock()
	}
	return out
}

// SubscriptionInfo identifies one durable subscription for upstream
// re-announcement.
type SubscriptionInfo struct {
	ID     vtime.SubscriberID
	Filter string // filter source, round-trippable through filter.Parse
}

// Subscriptions lists every durable subscription this engine hosts,
// connected or not. After an upstream reconnect the new link's matcher on
// the parent is empty until told otherwise; once any subscription is
// announced it starts D→S filtering, so the broker must re-announce all of
// them or pre-outage subscribers would silently stop matching.
func (s *SHB) Subscriptions() []SubscriptionInfo {
	var out []SubscriptionInfo
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, sub := range sh.subs {
			out = append(out, SubscriptionInfo{ID: id, Filter: sub.sub.String()})
		}
		sh.mu.Unlock()
	}
	return out
}
