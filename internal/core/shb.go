// Package stream implements the subscriber hosting broker (SHB) engine of
// the paper (section 4): the istream accumulating knowledge from upstream,
// the single consolidated stream (constream) serving all connected
// non-catchup subscribers and the Persistent Filtering Subsystem, separate
// catchup streams for reconnecting subscribers, the catchup→non-catchup
// switchover, and the SHB side of the release protocol.
//
// The engine is callback-driven and has no goroutines of its own: the
// owning broker feeds it received messages (OnKnowledge, Subscribe, OnAck,
// ...) and drives housekeeping through Tick. All outputs (deliveries to
// clients, nacks and release vectors to upstream) leave through the
// callbacks in Config. One mutex serializes the engine; the paper's SHB is
// likewise a single logical consumer per pubend stream.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/matchidx"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/pfs"
	"repro/internal/telemetry"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Engine instruments (process-wide; see internal/telemetry).
var (
	tEventsDelivered = telemetry.Default().Counter("gryphon_core_events_delivered_total",
		"Event deliveries to durable subscribers (constream and catchup).")
	tSilences = telemetry.Default().Counter("gryphon_core_silences_delivered_total",
		"Silence deliveries advancing subscriber checkpoint tokens.")
	tGaps = telemetry.Default().Counter("gryphon_core_gaps_delivered_total",
		"Gap deliveries for early-released intervals.")
	tSwitchovers = telemetry.Default().Counter("gryphon_core_switchovers_total",
		"Catchup → non-catchup stream switchovers.")
	tCatchupActive = telemetry.Default().Gauge("gryphon_core_catchup_active",
		"Active (subscriber, pubend) catchup streams.")
	tCatchupSeconds = telemetry.Default().DurationHistogram("gryphon_core_catchup_seconds",
		"Catchup duration from reconnection to switchover (figure 5 metric).",
		telemetry.DefBuckets)
	tCacheHits = telemetry.Default().Counter("gryphon_core_cache_hits_total",
		"Event-cache hits while resolving catchup D ticks.")
	tCacheMisses = telemetry.Default().Counter("gryphon_core_cache_misses_total",
		"Event-cache misses forcing an upstream re-request.")
	tNackSpans = telemetry.Default().Counter("gryphon_core_nack_spans_total",
		"Consolidated nack spans sent upstream.")
)

// Metastore tables used by the SHB.
const (
	tableSubs     = "shb_subs"     // subID -> filter source
	tableReleased = "shb_released" // "<pub>/<sub>" -> released(s,p)
	tableSince    = "shb_since"    // "<pub>/<sub>" -> PFS coverage start
	tableLD       = "shb_ld"       // "<pub>" -> latestDelivered(p)
)

// Config wires an SHB engine to its broker.
type Config struct {
	// Meta persists subscriptions, released(s,p) and latestDelivered(p)
	// (required).
	Meta *metastore.Store
	// PFS is the persistent filtering subsystem (required).
	PFS *pfs.PFS
	// Pubends is the set of pubends in the system, known from cluster
	// configuration (required, non-empty).
	Pubends []vtime.PubendID

	// SendNack forwards consolidated nacks upstream.
	SendNack func(pub vtime.PubendID, spans []tick.Span)
	// SendRelease forwards the release vector upstream.
	SendRelease func(pub vtime.PubendID, released, latestDelivered vtime.Timestamp)
	// Deliver enqueues one delivery on the subscriber's FIFO link.
	Deliver func(sub vtime.SubscriberID, d message.Delivery)
	// OnCaughtUp, if set, is invoked at every catchup→non-catchup
	// switchover with the catchup duration (figure 5's metric).
	OnCaughtUp func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration)

	// SilenceInterval is how far latestDelivered may run ahead of a
	// subscriber's last delivery before a silence message is sent so
	// its checkpoint token does not lag (virtual time units). Zero
	// means 250ms of virtual time.
	SilenceInterval vtime.Timestamp
	// ReadBufferQ is the PFS batch-read buffer size in Q spans (the
	// paper's experiments use 5000). Zero means 5000.
	ReadBufferQ int
	// EventCacheSize bounds the per-pubend event cache (the SHB-side
	// recovery cache). Zero means 65536 events; absence of a cached
	// event is always recoverable by nacking upstream.
	EventCacheSize int
	// MatchEngine selects the subscription matching strategy: "" or
	// "indexed" for the counting-based attribute index, "linear" for the
	// brute-force scan (see internal/matchidx).
	MatchEngine string
}

// SHB is the subscriber hosting broker engine.
type SHB struct {
	cfg     Config
	matcher *filter.Matcher

	// All fields below are guarded by mu.
	mu      chanMutex
	pubends map[vtime.PubendID]*shbPubend
	subs    map[vtime.SubscriberID]*subscriber
	dirty   bool // persistent state (released/LD) pending a Tick commit

	// matchBuf is the reusable per-event match-result buffer; the engine
	// is serialized by mu, and neither the PFS nor delivery retains the
	// slice, so one buffer serves every constream advance.
	matchBuf []vtime.SubscriberID

	// Statistics.
	stats Stats
}

// Stats exposes engine counters for the experiment harness. Snapshot them
// via SHB.Stats.
type Stats struct {
	EventsDelivered   int64 // event deliveries to subscribers
	SilencesDelivered int64
	GapsDelivered     int64
	PFSWrites         int64
	PFSReads          int64
	NacksSent         int64 // nack spans sent upstream (post-consolidation)
	NackTicksSent     int64 // total ticks covered by those spans
	NackTicksWanted   int64 // ticks requested by consumers pre-consolidation
	CacheHits         int64
	CacheMisses       int64
	Switchovers       int64 // catchup → non-catchup transitions
}

// chanMutex is a mutex implemented over a channel so the engine can also
// export TryLock-free simple locking with a tiny footprint.
//
// Concurrency contract. This single lock serializes the entire engine:
// every public entry point (OnKnowledge, OnAck, OnCredit, Subscribe,
// Detach, Unsubscribe, Tick, ChopPFS, the stats/cursor accessors)
// acquires it for its full duration, so callers may invoke the engine
// from any number of goroutines — the sharded broker calls it
// concurrently from event-shard loops, the control shard, and connection
// dispatch goroutines — and each call executes atomically against the
// others. Cross-call ordering is whatever the lock hand-off yields;
// callers needing a per-pubend order (knowledge before the nack answer
// that fills its gap, say) must sequence those calls themselves, which
// the broker does by pinning each pubend's traffic to one shard.
//
// The flip side: the configured callbacks (Deliver, SendNack,
// SendRelease, OnCaughtUp) are invoked WHILE the lock is held. They must
// not block — a blocked callback stalls every other engine caller — and
// must not re-enter the engine, which would self-deadlock (chanMutex is
// not reentrant). The broker's callbacks obey this by only doing
// non-blocking queue pushes (shard task queues, overlay sends).
type chanMutex chan struct{}

func newChanMutex() chanMutex { return make(chanMutex, 1) }

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// shbPubend is the per-pubend state: istream knowledge, event cache,
// consolidated curiosity, and the constream cursor.
type shbPubend struct {
	id    vtime.PubendID
	know  *tick.Stream    // istream knowledge (base advances with released)
	cur   *tick.Curiosity // consolidated upstream curiosity
	cache *eventCache

	attached        bool            // latestDelivered initialized
	latestDelivered vtime.Timestamp // constream cursor (persisted)
	released        vtime.Timestamp // min over subs, ≤ latestDelivered
	maxKnown        vtime.Timestamp // highest tick ever heard about

	lastSentRelease  vtime.Timestamp // dedupe for SendRelease
	lastSentLD       vtime.Timestamp
	pendingNackSpans []tick.Span // consolidated spans awaiting SendNack
}

// subscriber is one durable subscription hosted by this SHB.
type subscriber struct {
	id        vtime.SubscriberID
	sub       *filter.Subscription
	connected bool
	credits   int64
	released  map[vtime.PubendID]vtime.Timestamp // released(s,p), persisted
	// since is the timestamp this SHB started logging PFS records for
	// the subscriber (its registration point); persisted. Catchup for
	// ticks before it must refilter retrieved events instead of trusting
	// the PFS (reconnect-anywhere, and clients resuming with a rewound
	// checkpoint token).
	since    map[vtime.PubendID]vtime.Timestamp
	lastSent map[vtime.PubendID]vtime.Timestamp // for silence generation
	catchup  map[vtime.PubendID]*catchupStream
}

// New creates (or recovers) an SHB engine. Subscriptions, released(s,p)
// and latestDelivered(p) are reloaded from the metastore; every recovered
// subscriber starts disconnected.
func New(cfg Config) (*SHB, error) {
	if cfg.Meta == nil || cfg.PFS == nil {
		return nil, errors.New("core: Meta and PFS are required")
	}
	if len(cfg.Pubends) == 0 {
		return nil, errors.New("core: at least one pubend is required")
	}
	if cfg.SilenceInterval == 0 {
		cfg.SilenceInterval = 250 * vtime.TicksPerMilli
	}
	if cfg.ReadBufferQ == 0 {
		cfg.ReadBufferQ = 5000
	}
	if cfg.EventCacheSize == 0 {
		cfg.EventCacheSize = 65536
	}
	if cfg.SendNack == nil {
		cfg.SendNack = func(vtime.PubendID, []tick.Span) {}
	}
	if cfg.SendRelease == nil {
		cfg.SendRelease = func(vtime.PubendID, vtime.Timestamp, vtime.Timestamp) {}
	}
	if cfg.Deliver == nil {
		cfg.Deliver = func(vtime.SubscriberID, message.Delivery) {}
	}
	s := &SHB{
		cfg:     cfg,
		matcher: matchidx.MatcherFor(cfg.MatchEngine).InstrumentSite("shb"),
		mu:      newChanMutex(),
		pubends: make(map[vtime.PubendID]*shbPubend, len(cfg.Pubends)),
		subs:    make(map[vtime.SubscriberID]*subscriber),
	}
	for _, pub := range cfg.Pubends {
		ps := &shbPubend{
			id:    pub,
			cur:   tick.NewCuriosity(),
			cache: newEventCache(cfg.EventCacheSize),
		}
		if v, ok := cfg.Meta.GetUint64(tableLD, pubKey(pub)); ok {
			ps.latestDelivered = vtime.Timestamp(v)
			ps.attached = true
		}
		ps.know = tick.NewStream(ps.latestDelivered)
		ps.cache.setFloor(ps.latestDelivered)
		ps.released = ps.latestDelivered
		ps.maxKnown = ps.latestDelivered
		s.pubends[pub] = ps
	}
	if err := s.recoverSubscribers(); err != nil {
		return nil, err
	}
	// released(p) must honor the persisted per-subscriber floors, which lag
	// the in-memory state by one persistence cycle. Recovering it from
	// latestDelivered alone would let the post-restart PFS chop discard the
	// loss boundary a resuming subscriber's catchup depends on, minting
	// spurious gap messages for ranges that were pure silence.
	for _, ps := range s.pubends {
		rel := ps.latestDelivered
		for _, sub := range s.subs {
			if r := sub.released[ps.id]; r < rel {
				rel = r
			}
		}
		ps.released = rel
	}
	return s, nil
}

func pubKey(pub vtime.PubendID) string { return strconv.FormatUint(uint64(pub), 10) }

func relKey(pub vtime.PubendID, sub vtime.SubscriberID) string {
	return strconv.FormatUint(uint64(pub), 10) + "/" + strconv.FormatUint(uint64(sub), 10)
}

// recoverSubscribers reloads durable subscriptions from the metastore.
func (s *SHB) recoverSubscribers() error {
	for _, key := range s.cfg.Meta.Keys(tableSubs) {
		id64, err := strconv.ParseUint(key, 10, 32)
		if err != nil {
			continue
		}
		src, ok := s.cfg.Meta.Get(tableSubs, key)
		if !ok {
			continue
		}
		subFilter, err := filter.Parse(string(src))
		if err != nil {
			return fmt.Errorf("core: recover subscription %s: %w", key, err)
		}
		id := vtime.SubscriberID(id64)
		sub := s.newSubscriber(id, subFilter)
		for pub := range s.pubends {
			if v, ok := s.cfg.Meta.GetUint64(tableReleased, relKey(pub, id)); ok {
				sub.released[pub] = vtime.Timestamp(v)
			}
			if v, ok := s.cfg.Meta.GetUint64(tableSince, relKey(pub, id)); ok {
				sub.since[pub] = vtime.Timestamp(v)
			}
		}
		s.subs[id] = sub
		s.matcher.Add(id, subFilter)
	}
	s.recomputeReleasedAll()
	return nil
}

func (s *SHB) newSubscriber(id vtime.SubscriberID, f *filter.Subscription) *subscriber {
	return &subscriber{
		id:       id,
		sub:      f,
		released: make(map[vtime.PubendID]vtime.Timestamp, len(s.pubends)),
		since:    make(map[vtime.PubendID]vtime.Timestamp, len(s.pubends)),
		lastSent: make(map[vtime.PubendID]vtime.Timestamp, len(s.pubends)),
		catchup:  make(map[vtime.PubendID]*catchupStream),
	}
}

// Stats returns a snapshot of the engine counters.
func (s *SHB) Stats() Stats {
	s.mu.lock()
	defer s.mu.unlock()
	return s.stats
}

// LatestDelivered reports the constream cursor for a pubend.
func (s *SHB) LatestDelivered(pub vtime.PubendID) vtime.Timestamp {
	s.mu.lock()
	defer s.mu.unlock()
	if ps, ok := s.pubends[pub]; ok {
		return ps.latestDelivered
	}
	return vtime.ZeroTS
}

// Released reports released(p): the highest timestamp all durable
// subscribers of this SHB have acknowledged (bounded by latestDelivered).
func (s *SHB) Released(pub vtime.PubendID) vtime.Timestamp {
	s.mu.lock()
	defer s.mu.unlock()
	if ps, ok := s.pubends[pub]; ok {
		return ps.released
	}
	return vtime.ZeroTS
}

// CatchupCount reports how many (subscriber, pubend) catchup streams are
// currently active.
func (s *SHB) CatchupCount() int {
	s.mu.lock()
	defer s.mu.unlock()
	n := 0
	for _, sub := range s.subs {
		n += len(sub.catchup)
	}
	return n
}

// ConnectedCount reports the number of connected subscribers.
func (s *SHB) ConnectedCount() int {
	s.mu.lock()
	defer s.mu.unlock()
	n := 0
	for _, sub := range s.subs {
		if sub.connected {
			n++
		}
	}
	return n
}

// OnKnowledge ingests a knowledge message from upstream: ranges and events
// accumulate into the istream, curiosity is satisfied, the constream
// advances, and catchup streams are pumped against the refreshed cache.
func (s *SHB) OnKnowledge(know *message.Knowledge) {
	s.mu.lock()
	defer s.mu.unlock()
	ps, ok := s.pubends[know.Pubend]
	if !ok {
		return
	}
	s.attach(ps, know)
	for _, r := range know.Ranges {
		ps.know.Apply(r)
		ps.cur.Satisfy(r.Start, r.End)
		if r.End > ps.maxKnown {
			ps.maxKnown = r.End
		}
	}
	for _, ev := range know.Events {
		ps.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: tick.D})
		ps.cache.put(ev)
		ps.cur.Satisfy(ev.Timestamp, ev.Timestamp)
		if ev.Timestamp > ps.maxKnown {
			ps.maxKnown = ev.Timestamp
		}
	}
	// Figure 1: istream changes flow through per-subscriber filters into
	// the catchup knowledge streams (this also delivers nack responses
	// for ticks below the istream base, which the istream itself
	// discards).
	for _, sub := range s.subs {
		if cs := sub.catchup[ps.id]; cs != nil {
			s.feedCatchup(cs, know)
		}
	}
	s.advanceConstream(ps)
	s.pumpCatchups(ps)
}

// attach initializes latestDelivered for a fresh SHB at the first received
// knowledge: a broker that joins the stream starts delivering from the
// current position rather than nacking all of history.
func (s *SHB) attach(ps *shbPubend, know *message.Knowledge) {
	if ps.attached {
		return
	}
	start := vtime.MaxTS
	for _, r := range know.Ranges {
		if r.Start < start {
			start = r.Start
		}
	}
	for _, ev := range know.Events {
		if ev.Timestamp < start {
			start = ev.Timestamp
		}
	}
	if start == vtime.MaxTS {
		return
	}
	ps.attached = true
	ps.latestDelivered = start - 1
	ps.cache.setFloor(start - 1)
	ps.released = start - 1
	ps.know.Advance(start - 1)
	s.dirty = true
}

// advanceConstream processes ticks in (latestDelivered, doubtHorizon]: D
// ticks are matched once against every durable subscription, written to
// the PFS, and delivered to the connected non-catchup subscribers that
// match (paper, section 4.1).
func (s *SHB) advanceConstream(ps *shbPubend) {
	dh := ps.know.DoubtHorizon()
	if dh <= ps.latestDelivered {
		return
	}
	// Gap-free by definition of the doubt horizon; walk D ticks in order.
	dticks := ps.know.DTicks(ps.latestDelivered, dh)
	for _, ts := range dticks {
		ev, ok := ps.cache.get(ts)
		if !ok {
			// The cache evicted an undelivered event (pathological
			// sizing). Re-request it and stop advancing; knowledge
			// will come back around.
			s.stats.CacheMisses++
			tCacheMisses.Inc()
			s.requestSpans(ps, []tick.Span{{Start: ts, End: ts}})
			s.flushNacks(ps)
			dh = ts - 1
			break
		}
		s.matchBuf = s.matcher.MatchAppend(s.matchBuf[:0], ev.Attrs)
		matched := s.matchBuf
		// PFS first — delivery to the PFS must complete before the
		// tick is considered delivered. Skip timestamps the PFS
		// already has (constream replay after a crash).
		if len(matched) > 0 && ts > s.cfg.PFS.LastTimestamp(ps.id) {
			if err := s.cfg.PFS.Write(ps.id, ts, matched); err == nil {
				s.stats.PFSWrites++
			}
		}
		for _, subID := range matched {
			sub := s.subs[subID]
			if sub == nil || !sub.connected || sub.catchup[ps.id] != nil {
				continue
			}
			// A subscriber can be ahead of a recovering constream:
			// after an SHB crash the constream replays from the
			// persisted latestDelivered, while a reconnecting
			// subscriber's checkpoint may already cover part of the
			// replay. Never deliver at or below its floor.
			if ev.Timestamp <= sub.lastSent[ps.id] {
				continue
			}
			s.deliverEvent(sub, ps.id, ev)
		}
	}
	if dh > ps.latestDelivered {
		ps.latestDelivered = dh
		ps.cache.setFloor(dh)
		s.dirty = true
	}
	s.recomputeReleased(ps)
}

// deliverEvent sends one event delivery and updates silence bookkeeping.
func (s *SHB) deliverEvent(sub *subscriber, pub vtime.PubendID, ev *message.Event) {
	s.cfg.Deliver(sub.id, message.Delivery{
		Kind:      message.DeliverEvent,
		Pubend:    pub,
		Timestamp: ev.Timestamp,
		Event:     ev,
	})
	sub.lastSent[pub] = ev.Timestamp
	s.stats.EventsDelivered++
	tEventsDelivered.Inc()
}

// requestSpans adds wanted spans to the consolidated curiosity; only the
// fresh (not already pending) parts are queued for upstream.
func (s *SHB) requestSpans(ps *shbPubend, spans []tick.Span) {
	for _, sp := range spans {
		s.stats.NackTicksWanted += sp.Len()
		for _, fresh := range ps.cur.Add(sp.Start, sp.End) {
			ps.pendingNackSpans = append(ps.pendingNackSpans, fresh)
		}
	}
}

// flushNacks sends queued consolidated nack spans upstream.
func (s *SHB) flushNacks(ps *shbPubend) {
	if len(ps.pendingNackSpans) == 0 {
		return
	}
	spans := ps.pendingNackSpans
	ps.pendingNackSpans = nil
	s.stats.NacksSent += int64(len(spans))
	tNackSpans.Add(int64(len(spans)))
	for _, sp := range spans {
		s.stats.NackTicksSent += sp.Len()
	}
	s.cfg.SendNack(ps.id, spans)
}

// recomputeReleased recalculates released(p) =
// min(latestDelivered, min_s released(s,p)).
func (s *SHB) recomputeReleased(ps *shbPubend) {
	rel := ps.latestDelivered
	for _, sub := range s.subs {
		if r := sub.released[ps.id]; r < rel {
			rel = r
		}
	}
	if rel > ps.released {
		ps.released = rel
		s.dirty = true
		// Knowledge and cached events below released(p) can never be
		// needed again by any local subscriber.
		ps.know.Advance(rel)
		ps.cache.evictUpTo(rel)
	}
}

func (s *SHB) recomputeReleasedAll() {
	for _, ps := range s.pubends {
		s.recomputeReleased(ps)
	}
}

// PendingCuriosity snapshots the consolidated spans each pubend is still
// waiting on from upstream. A nack request in flight when the upstream
// link died is recorded here as pending, which makes requestSpans suppress
// any re-request — so after a reconnect the broker must re-issue these
// spans itself or the gap would never fill. Pubends with nothing pending
// are omitted.
func (s *SHB) PendingCuriosity() map[vtime.PubendID][]tick.Span {
	s.mu.lock()
	defer s.mu.unlock()
	out := make(map[vtime.PubendID][]tick.Span)
	for pub, ps := range s.pubends {
		if pending := ps.cur.Pending(); len(pending) > 0 {
			out[pub] = pending
		}
	}
	return out
}

// SubscriptionInfo identifies one durable subscription for upstream
// re-announcement.
type SubscriptionInfo struct {
	ID     vtime.SubscriberID
	Filter string // filter source, round-trippable through filter.Parse
}

// Subscriptions lists every durable subscription this engine hosts,
// connected or not. After an upstream reconnect the new link's matcher on
// the parent is empty until told otherwise; once any subscription is
// announced it starts D→S filtering, so the broker must re-announce all of
// them or pre-outage subscribers would silently stop matching.
func (s *SHB) Subscriptions() []SubscriptionInfo {
	s.mu.lock()
	defer s.mu.unlock()
	out := make([]SubscriptionInfo, 0, len(s.subs))
	for id, sub := range s.subs {
		out = append(out, SubscriptionInfo{ID: id, Filter: sub.sub.String()})
	}
	return out
}
