package core

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/pfs"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// benchRig is a minimal engine harness with a synthetic upstream: events
// are fed directly as knowledge messages, so these benchmarks measure pure
// SHB processing cost (the resource argument of the paper's result 3).
type benchRig struct {
	shb    *SHB
	nextTS vtime.Timestamp
}

func newBenchRig(b testing.TB, subs int, silence vtime.Timestamp) *benchRig {
	b.Helper()
	f := openBenchFixture(b, b.TempDir(), silence)
	for i := 0; i < subs; i++ {
		_, err := f.Subscribe(&message.Subscribe{
			Subscriber: vtime.SubscriberID(i + 1),
			Filter:     `group = "g0"`,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return &benchRig{shb: f, nextTS: 0}
}

// feed ingests n matching events as one knowledge batch.
func (r *benchRig) feed(n int) {
	know := &message.Knowledge{Pubend: 1}
	for i := 0; i < n; i++ {
		r.nextTS++
		know.Events = append(know.Events, &message.Event{
			Pubend:    1,
			Timestamp: r.nextTS,
			Attrs:     filter.Attributes{"group": filter.String("g0")},
			Payload:   benchPayload,
		})
	}
	r.shb.OnKnowledge(know)
}

var benchPayload = make([]byte, 250)

// BenchmarkConstreamDelivery measures per-event SHB cost with N connected
// non-catchup subscribers sharing the consolidated stream: one match + one
// PFS write per event regardless of N, plus N FIFO enqueues.
func BenchmarkConstreamDelivery(b *testing.B) {
	for _, subs := range []int{1, 10, 40} {
		b.Run(fmt.Sprintf("subs_%d", subs), func(b *testing.B) {
			r := newBenchRig(b, subs, 0)
			b.ResetTimer()
			const batch = 64
			for n := 0; n < b.N; n += batch {
				r.feed(batch)
			}
			b.ReportMetric(float64(r.shb.Stats().EventsDelivered)/float64(b.N), "deliveries/event")
		})
	}
}

// BenchmarkCatchupStreamsDelivery measures the same workload when every
// subscriber runs its own catchup stream (all reconnected behind
// latestDelivered): per-subscriber refiltering, knowledge streams, and PFS
// reads — the separate-stream cost the consolidated stream exists to avoid
// (paper: SHB rate halves when all subscribers are in catchup).
//
// The work is organized in fixed-size episodes (detach all → ingest a
// backlog → reconnect all and catch up) so per-event cost is comparable to
// BenchmarkConstreamDelivery regardless of b.N.
func BenchmarkCatchupStreamsDelivery(b *testing.B) {
	for _, subs := range []int{1, 10, 40} {
		b.Run(fmt.Sprintf("subs_%d", subs), func(b *testing.B) {
			r := newBenchRig(b, subs, 0)
			const backlog = 512
			for done := 0; done < b.N; done += backlog {
				b.StopTimer()
				ct := vtime.NewCheckpointToken()
				ct.Set(1, r.nextTS)
				for i := 0; i < subs; i++ {
					r.shb.OnAck(vtime.SubscriberID(i+1), ct)
					r.shb.Detach(vtime.SubscriberID(i + 1))
				}
				r.feed(backlog)
				b.StartTimer()
				for i := 0; i < subs; i++ {
					if _, err := r.shb.Subscribe(&message.Subscribe{
						Subscriber: vtime.SubscriberID(i + 1),
						Filter:     `group = "g0"`,
						CT:         ct.Clone(),
						Resume:     true,
					}); err != nil {
						b.Fatal(err)
					}
				}
				for round := 0; r.shb.CatchupCount() > 0; round++ {
					if round > 1<<16 {
						b.Fatalf("%d catchup streams stuck", r.shb.CatchupCount())
					}
					if err := r.shb.Tick(time.Now()); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// openBenchFixture builds an engine over temp stores.
func openBenchFixture(b testing.TB, dir string, silence vtime.Timestamp) *SHB {
	b.Helper()
	vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
	if err != nil {
		b.Fatal(err)
	}
	meta, err := metastore.Open(filepath.Join(dir, "meta.wal"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		vol.Close()  //nolint:errcheck
		meta.Close() //nolint:errcheck
	})
	p, err := pfs.New(pfs.Options{Volume: vol, Meta: meta, SyncEvery: 200})
	if err != nil {
		b.Fatal(err)
	}
	shb, err := New(Config{
		Meta:            meta,
		PFS:             p,
		Pubends:         []vtime.PubendID{1},
		SilenceInterval: silence,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(shb.Close)
	return shb
}

// BenchmarkTickStreamApply exercises the knowledge stream's hot mutation
// path: alternating D ticks and S runs arriving in order.
func BenchmarkTickStreamApply(b *testing.B) {
	s := tick.NewStream(0)
	b.ReportAllocs()
	b.ResetTimer()
	ts := vtime.Timestamp(0)
	for i := 0; i < b.N; i++ {
		s.Apply(tick.Range{Start: ts + 1, End: ts + 999, Kind: tick.S})
		s.Apply(tick.Range{Start: ts + 1000, End: ts + 1000, Kind: tick.D})
		ts += 1000
		if i%4096 == 0 {
			s.Advance(ts - 1000)
		}
	}
}
