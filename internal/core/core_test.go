package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/pfs"
	"repro/internal/pubend"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// rig wires a real pubend to an SHB engine through queues, standing in for
// the broker overlay. Callbacks enqueue; pump() moves messages, modelling
// the asynchronous links of the real system.
type rig struct {
	t     *testing.T
	dir   string
	pe    *pubend.Pubend
	peVol *logvol.Volume

	shb     *SHB
	shbVol  *logvol.Volume
	shbMeta *metastore.Store

	pendingNacks [][]tick.Span
	nackPubs     []vtime.PubendID
	releases     []message.Release

	clients map[vtime.SubscriberID]*clientModel
}

// clientModel mimics a durable subscriber client: it tracks its checkpoint
// token from deliveries and asserts the exactly-once, in-order contract.
type clientModel struct {
	t          *testing.T
	id         vtime.SubscriberID
	ct         *vtime.CheckpointToken
	events     []*message.Event
	gaps       []message.Delivery
	silences   int
	duplicates int
}

func (c *clientModel) onDeliver(d message.Delivery) {
	prev := c.ct.Get(d.Pubend)
	switch d.Kind {
	case message.DeliverEvent:
		if d.Timestamp <= prev {
			c.duplicates++
			c.t.Errorf("sub %v: duplicate/regressed event ts %d after %d", c.id, d.Timestamp, prev)
			return
		}
		c.events = append(c.events, d.Event)
		c.ct.Set(d.Pubend, d.Timestamp)
	case message.DeliverSilence:
		if d.Timestamp < prev {
			c.t.Errorf("sub %v: silence regressed to %d from %d", c.id, d.Timestamp, prev)
		}
		c.silences++
		c.ct.Set(d.Pubend, d.Timestamp)
	case message.DeliverGap:
		c.gaps = append(c.gaps, d)
		c.ct.Set(d.Pubend, d.Timestamp)
	}
}

func newRig(t *testing.T, pol pubend.Policy, pubs ...vtime.PubendID) *rig {
	t.Helper()
	if len(pubs) == 0 {
		pubs = []vtime.PubendID{1}
	}
	dir := t.TempDir()
	r := &rig{t: t, dir: dir, clients: make(map[vtime.SubscriberID]*clientModel)}

	var err error
	r.peVol, err = logvol.Open(filepath.Join(dir, "pe.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.peVol.Close() }) //nolint:errcheck
	r.pe, err = pubend.New(pubend.Options{ID: pubs[0], Volume: r.peVol, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	r.openSHB(pubs)
	return r
}

func (r *rig) openSHB(pubs []vtime.PubendID) {
	r.t.Helper()
	var err error
	r.shbVol, err = logvol.Open(filepath.Join(r.dir, "shb.log"), logvol.Options{})
	if err != nil {
		r.t.Fatal(err)
	}
	r.shbMeta, err = metastore.Open(filepath.Join(r.dir, "shb.meta"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		r.t.Fatal(err)
	}
	p, err := pfs.New(pfs.Options{Volume: r.shbVol, Meta: r.shbMeta, SyncEvery: 200})
	if err != nil {
		r.t.Fatal(err)
	}
	r.shb, err = New(Config{
		Meta:    r.shbMeta,
		PFS:     p,
		Pubends: pubs,
		SendNack: func(pub vtime.PubendID, spans []tick.Span) {
			r.nackPubs = append(r.nackPubs, pub)
			r.pendingNacks = append(r.pendingNacks, spans)
		},
		SendRelease: func(pub vtime.PubendID, rel, ld vtime.Timestamp) {
			r.releases = append(r.releases, message.Release{Pubend: pub, Released: rel, LatestDelivered: ld})
		},
		Deliver: func(sub vtime.SubscriberID, d message.Delivery) {
			if c, ok := r.clients[sub]; ok {
				c.onDeliver(d)
			}
		},
	})
	if err != nil {
		r.t.Fatal(err)
	}
	shb := r.shb
	r.t.Cleanup(shb.Close)
}

// crashSHB simulates an SHB crash: volatile state is dropped; the metastore
// and PFS volume are closed and reopened.
func (r *rig) crashSHB(pubs []vtime.PubendID) {
	r.shb.Close()
	r.shbVol.Close()  //nolint:errcheck
	r.shbMeta.Close() //nolint:errcheck
	r.pendingNacks, r.nackPubs = nil, nil
	r.openSHB(pubs)
}

// publish publishes one event with the given topic.
func (r *rig) publish(topic string) *message.Event {
	r.t.Helper()
	ev, err := r.pe.Publish(message.Event{
		Attrs:   filter.Attributes{"topic": filter.String(topic)},
		Payload: []byte("payload-" + topic),
	})
	if err != nil {
		r.t.Fatal(err)
	}
	return ev
}

// drain pushes accumulated pubend knowledge to the SHB, then settles the
// catchup pumps so all resulting deliveries are visible on return.
func (r *rig) drain() {
	if know, _ := r.pe.Drain(); know != nil {
		r.shb.OnKnowledge(know)
	}
	r.shb.DrainCatchups()
}

// pump serves all pending nacks from the pubend until quiescent. Each
// DrainCatchups call completes synchronously (and serializes with the
// background shard pumps), so once it reports no progress and no nacks are
// pending, the engine is quiescent and the rig's state is safe to read.
func (r *rig) pump() {
	for i := 0; i < 100; i++ {
		r.shb.DrainCatchups()
		if len(r.pendingNacks) == 0 {
			return
		}
		spans := r.pendingNacks[0]
		r.pendingNacks = r.pendingNacks[1:]
		r.nackPubs = r.nackPubs[1:]
		know, err := r.pe.ServeNack(spans)
		if err != nil {
			r.t.Fatal(err)
		}
		r.shb.OnKnowledge(know)
	}
	r.t.Fatal("pump did not quiesce")
}

// connect subscribes a client (first connect).
func (r *rig) connect(id vtime.SubscriberID, filterSrc string) *clientModel {
	r.t.Helper()
	c := &clientModel{t: r.t, id: id, ct: vtime.NewCheckpointToken()}
	r.clients[id] = c
	ct, err := r.shb.Subscribe(&message.Subscribe{Subscriber: id, Filter: filterSrc})
	if err != nil {
		r.t.Fatal(err)
	}
	c.ct = ct.Clone()
	return c
}

// reconnect resumes a client with its tracked checkpoint token.
func (r *rig) reconnect(c *clientModel, filterSrc string) {
	r.t.Helper()
	r.clients[c.id] = c
	_, err := r.shb.Subscribe(&message.Subscribe{
		Subscriber: c.id,
		Filter:     filterSrc,
		CT:         c.ct.Clone(),
		Resume:     true,
	})
	if err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) tick() {
	r.t.Helper()
	if err := r.shb.Tick(time.Now()); err != nil {
		r.t.Fatal(err)
	}
	r.pump()
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without stores should fail")
	}
}

func TestConnectedDeliveryInOrder(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "a"`)
	var want []vtime.Timestamp
	for i := 0; i < 20; i++ {
		ev := r.publish("a")
		want = append(want, ev.Timestamp)
		r.publish("b") // not matching
	}
	r.drain()
	if len(c.events) != 20 {
		t.Fatalf("delivered %d events, want 20", len(c.events))
	}
	for i, ev := range c.events {
		if ev.Timestamp != want[i] {
			t.Fatalf("event %d ts %d, want %d", i, ev.Timestamp, want[i])
		}
	}
	// PFS logged each matched timestamp once (20 for "a" + 20 for... no
	// subscriber matches "b", so those are not logged).
	if got := r.shb.Stats().PFSWrites; got != 20 {
		t.Errorf("PFSWrites = %d, want 20", got)
	}
	if got := r.shb.ConnectedCount(); got != 1 {
		t.Errorf("ConnectedCount = %d", got)
	}
}

func TestSilenceAdvancesCT(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "never"`)
	r.publish("a")
	r.drain()
	before := c.ct.Get(1)
	// Wait for virtual time to pass the silence interval (250ms) — use a
	// tiny interval instead by publishing then ticking after real delay.
	time.Sleep(2 * time.Millisecond)
	r.publish("a")
	r.drain()
	// Force silence: the interval is 250 virtual ms; simulate by direct
	// stats check after enough virtual time. Rather than sleeping 250ms,
	// reconfigure via a second rig would be cleaner; here we just sleep
	// a bit more than the interval once.
	time.Sleep(260 * time.Millisecond)
	r.publish("a")
	r.drain()
	r.tick()
	if c.silences == 0 {
		t.Fatal("no silence delivered after interval")
	}
	if c.ct.Get(1) <= before {
		t.Error("silence did not advance CT")
	}
}

func TestCatchupAfterDisconnect(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "a"`)
	for i := 0; i < 5; i++ {
		r.publish("a")
	}
	r.drain()
	if len(c.events) != 5 {
		t.Fatalf("pre-disconnect: %d events", len(c.events))
	}
	r.shb.OnAck(1, c.ct)
	r.shb.Detach(1)

	// Publish while disconnected; the constream keeps consuming and the
	// PFS keeps logging.
	var missed []vtime.Timestamp
	for i := 0; i < 30; i++ {
		ev := r.publish("a")
		missed = append(missed, ev.Timestamp)
		r.publish("b")
	}
	r.drain()
	if got := r.shb.CatchupCount(); got != 0 {
		t.Fatalf("catchup streams while disconnected: %d", got)
	}

	// Reconnect: a catchup stream forms and recovers exactly the missed
	// events in order, then switches over.
	r.reconnect(c, `topic = "a"`)
	r.pump()
	r.tick()
	if len(c.events) != 35 {
		t.Fatalf("after catchup: %d events, want 35", len(c.events))
	}
	for i, ts := range missed {
		if c.events[5+i].Timestamp != ts {
			t.Fatalf("catchup event %d ts %d, want %d", i, c.events[5+i].Timestamp, ts)
		}
	}
	if got := r.shb.CatchupCount(); got != 0 {
		t.Errorf("catchup stream not discarded after switchover: %d", got)
	}
	if got := r.shb.Stats().Switchovers; got == 0 {
		t.Error("no switchover recorded")
	}
	if len(c.gaps) != 0 {
		t.Errorf("unexpected gaps: %v", c.gaps)
	}
	// Live delivery continues via the constream.
	ev := r.publish("a")
	r.drain()
	if c.events[len(c.events)-1].Timestamp != ev.Timestamp {
		t.Error("post-switchover event not delivered")
	}
}

func TestCatchupUsesPFSNotRefiltering(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "rare"`)
	r.shb.OnAck(1, c.ct)
	r.shb.Detach(1)
	// 200 events, none matching: the PFS has no records for this sub, so
	// catchup must complete without requesting any event bodies beyond
	// the unknown tail.
	for i := 0; i < 200; i++ {
		r.publish("common")
	}
	r.drain()
	before := r.shb.Stats()
	r.reconnect(c, `topic = "rare"`)
	r.pump()
	after := r.shb.Stats()
	if len(c.events) != 0 {
		t.Fatalf("delivered %d events, want 0", len(c.events))
	}
	if got := r.shb.CatchupCount(); got != 0 {
		t.Fatalf("catchup did not complete: %d streams", got)
	}
	// No event retrieval should have happened: PFS said everything is S.
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("catchup of non-matching interval requested events: %d misses",
			after.CacheMisses-before.CacheMisses)
	}
	if after.PFSReads == before.PFSReads {
		t.Error("catchup did not read the PFS")
	}
}

func TestExactlyOnceAcrossManyReconnects(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "a"`)
	var published []vtime.Timestamp
	for round := 0; round < 10; round++ {
		// Connected phase.
		for i := 0; i < 10; i++ {
			ev := r.publish("a")
			published = append(published, ev.Timestamp)
			r.publish("x")
		}
		r.drain()
		r.shb.OnAck(1, c.ct)
		r.shb.Detach(1)
		// Disconnected phase.
		for i := 0; i < 10; i++ {
			ev := r.publish("a")
			published = append(published, ev.Timestamp)
		}
		r.drain()
		r.reconnect(c, `topic = "a"`)
		r.pump()
		r.tick()
	}
	if len(c.events) != len(published) {
		t.Fatalf("delivered %d events, want %d", len(c.events), len(published))
	}
	for i := range published {
		if c.events[i].Timestamp != published[i] {
			t.Fatalf("event %d ts %d, want %d", i, c.events[i].Timestamp, published[i])
		}
	}
	if c.duplicates != 0 {
		t.Errorf("%d duplicates", c.duplicates)
	}
}

func TestReleaseProtocol(t *testing.T) {
	r := newRig(t, nil)
	c1 := r.connect(1, `topic = "a"`)
	c2 := r.connect(2, `topic = "a"`)
	for i := 0; i < 10; i++ {
		r.publish("a")
	}
	r.drain()
	// Only c1 acks: released(p) stays at the pre-publish position (c2
	// holds it back).
	r.shb.OnAck(1, c1.ct)
	r.tick()
	relBefore := r.shb.Released(1)
	if relBefore >= c1.ct.Get(1) {
		t.Fatalf("released advanced past unacked subscriber: %d", relBefore)
	}
	// c2 acks: released(p) = min over subs = full.
	r.shb.OnAck(2, c2.ct)
	r.tick()
	rel := r.shb.Released(1)
	if rel != vtime.MinTS(c1.ct.Get(1), c2.ct.Get(1)) {
		t.Fatalf("released = %d, want %d", rel, vtime.MinTS(c1.ct.Get(1), c2.ct.Get(1)))
	}
	if rel > r.shb.LatestDelivered(1) {
		t.Error("released passed latestDelivered")
	}
	// Release vectors were emitted upstream.
	if len(r.releases) == 0 {
		t.Fatal("no release vectors sent")
	}
	last := r.releases[len(r.releases)-1]
	if last.Released != rel || last.LatestDelivered != r.shb.LatestDelivered(1) {
		t.Errorf("release vector %+v inconsistent with engine state", last)
	}
	// Feeding it to the pubend reclaims storage.
	if _, err := r.pe.UpdateRelease(last.Released, last.LatestDelivered); err != nil {
		t.Fatal(err)
	}
	if got := r.pe.EventCount(); got != 0 {
		t.Errorf("pubend retained %d events after full release", got)
	}
}

func TestEarlyReleaseGap(t *testing.T) {
	// maxRetain of 50 virtual ms.
	r := newRig(t, pubend.MaxRetain{Retain: 50 * vtime.TicksPerMilli})
	c := r.connect(1, `topic = "a"`)
	cLive := r.connect(2, `topic = "a"`)
	r.shb.OnAck(1, c.ct)
	r.shb.Detach(1)

	// Publish while sub 1 is disconnected; sub 2 stays connected and
	// acks, so latestDelivered advances but released is held by sub 1.
	var missed []vtime.Timestamp
	for i := 0; i < 20; i++ {
		ev := r.publish("a")
		missed = append(missed, ev.Timestamp)
	}
	r.drain()
	r.shb.OnAck(2, cLive.ct)
	r.tick()

	// Let the retention interval expire, then run the pubend's release
	// policy: ticks older than maxRetain convert to L.
	time.Sleep(60 * time.Millisecond)
	last := r.releases[len(r.releases)-1]
	loss, err := r.pe.UpdateRelease(last.Released, last.LatestDelivered)
	if err != nil {
		t.Fatal(err)
	}
	if loss < missed[len(missed)-1] {
		t.Fatalf("early release did not engage: loss=%d want >= %d", loss, missed[len(missed)-1])
	}
	// The SHB also discards its PFS records below the loss horizon once
	// upstream announces it; simulate the announcement by chopping at
	// the SHB too (the broker layer forwards L knowledge + PFS chop).
	if err := r.shb.cfg.PFS.Chop(1, loss); err != nil {
		t.Fatal(err)
	}

	// Sub 1 reconnects far behind: it must receive an explicit gap, then
	// live events, with no silent loss.
	r.reconnect(c, `topic = "a"`)
	r.pump()
	r.tick()
	if len(c.gaps) == 0 {
		t.Fatal("no gap message delivered after early release")
	}
	if got := r.shb.CatchupCount(); got != 0 {
		t.Fatalf("catchup did not complete after gap: %d", got)
	}
	// New events flow normally after the gap.
	ev := r.publish("a")
	r.drain()
	if len(c.events) == 0 || c.events[len(c.events)-1].Timestamp != ev.Timestamp {
		t.Error("no live delivery after gap")
	}
	if c.duplicates != 0 {
		t.Errorf("%d duplicates", c.duplicates)
	}
}

func TestSHBCrashRecovery(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "a"`)
	for i := 0; i < 10; i++ {
		r.publish("a")
	}
	r.drain()
	r.shb.OnAck(1, c.ct)
	r.tick() // persist latestDelivered and released

	// Crash. Events published during the outage accumulate upstream.
	var missed []vtime.Timestamp
	for i := 0; i < 15; i++ {
		ev := r.publish("a")
		missed = append(missed, ev.Timestamp)
	}
	r.crashSHB([]vtime.PubendID{1})

	// The recovered engine remembers the subscription and its release
	// state, with every subscriber disconnected.
	if got := r.shb.ConnectedCount(); got != 0 {
		t.Fatalf("recovered engine has %d connected subs", got)
	}
	ldBefore := r.shb.LatestDelivered(1)
	if ldBefore == 0 {
		t.Fatal("latestDelivered not recovered")
	}

	// Fresh knowledge arrives: the constream finds a Q gap behind it and
	// nacks (figure 7's steep recovery slope).
	r.publish("a")
	r.drain()
	r.tick()
	if r.shb.LatestDelivered(1) <= ldBefore {
		t.Fatal("constream did not recover past the crash point")
	}

	// The subscriber reconnects with its pre-crash CT and receives the
	// missed events exactly once.
	r.reconnect(c, `topic = "a"`)
	r.pump()
	r.tick()
	got := map[vtime.Timestamp]bool{}
	for _, ev := range c.events {
		got[ev.Timestamp] = true
	}
	for _, ts := range missed {
		if !got[ts] {
			t.Errorf("missed event %d not recovered after SHB crash", ts)
		}
	}
	if c.duplicates != 0 {
		t.Errorf("%d duplicates after crash recovery", c.duplicates)
	}
}

func TestFlowControlCredits(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "a"`)
	r.shb.OnAck(1, c.ct)
	r.shb.Detach(1)
	for i := 0; i < 50; i++ {
		r.publish("a")
	}
	r.drain()
	// Reconnect with only 10 credits.
	r.clients[1] = c
	if _, err := r.shb.Subscribe(&message.Subscribe{
		Subscriber: 1, Filter: `topic = "a"`, CT: c.ct.Clone(), Resume: true, Credits: 10,
	}); err != nil {
		t.Fatal(err)
	}
	r.pump()
	if len(c.events) != 10 {
		t.Fatalf("delivered %d events with 10 credits", len(c.events))
	}
	// Granting more credits resumes delivery.
	r.shb.OnCredit(1, 15)
	r.pump()
	if len(c.events) != 25 {
		t.Fatalf("delivered %d events after +15 credits", len(c.events))
	}
	r.shb.OnCredit(1, 1000)
	r.pump()
	r.tick()
	if len(c.events) != 50 {
		t.Fatalf("delivered %d events after unlimited credits", len(c.events))
	}
	if got := r.shb.CatchupCount(); got != 0 {
		t.Errorf("catchup not finished: %d", got)
	}
}

func TestNackConsolidationAcrossSubscribers(t *testing.T) {
	r := newRig(t, nil)
	// Two subscribers with identical filters disconnect over the same
	// interval; catching both up must not double the upstream traffic.
	c1 := r.connect(1, `topic = "a"`)
	c2 := r.connect(2, `topic = "a"`)
	r.shb.OnAck(1, c1.ct)
	r.shb.OnAck(2, c2.ct)
	r.shb.Detach(1)
	r.shb.Detach(2)
	for i := 0; i < 40; i++ {
		r.publish("a")
	}
	r.drain()
	r.tick() // persist latestDelivered before the crash

	// Crash the SHB: the event cache is volatile, so both catchup
	// streams must recover the same 40 events from upstream.
	r.crashSHB([]vtime.PubendID{1})
	r.reconnect(c1, `topic = "a"`)
	r.reconnect(c2, `topic = "a"`)
	r.pump()
	r.tick()
	st := r.shb.Stats()
	if st.NackTicksWanted == 0 {
		t.Fatal("no upstream requests recorded")
	}
	if st.NackTicksSent*2 > st.NackTicksWanted+1 {
		t.Errorf("consolidation ineffective: sent %d of %d wanted ticks",
			st.NackTicksSent, st.NackTicksWanted)
	}
	if len(c1.events) != 40 || len(c2.events) != 40 {
		t.Fatalf("delivered %d/%d events, want 40/40", len(c1.events), len(c2.events))
	}
}

func TestUnsubscribeReleasesBacklog(t *testing.T) {
	r := newRig(t, nil)
	c1 := r.connect(1, `topic = "a"`)
	r.connect(2, `topic = "a"`)
	r.shb.Detach(2) // never acks: holds released(p)
	for i := 0; i < 10; i++ {
		r.publish("a")
	}
	r.drain()
	r.shb.OnAck(1, c1.ct)
	r.tick()
	held := r.shb.Released(1)
	if held >= c1.ct.Get(1) {
		t.Fatalf("released %d not held back by dead subscriber", held)
	}
	if err := r.shb.Unsubscribe(2); err != nil {
		t.Fatal(err)
	}
	r.tick()
	if got := r.shb.Released(1); got != c1.ct.Get(1) {
		t.Errorf("released = %d after unsubscribe, want %d", got, c1.ct.Get(1))
	}
}

func TestSubscribeErrors(t *testing.T) {
	r := newRig(t, nil)
	r.connect(1, `topic = "a"`)
	if _, err := r.shb.Subscribe(&message.Subscribe{Subscriber: 1, Filter: `topic = "a"`}); err == nil {
		t.Error("double connect accepted")
	}
	if _, err := r.shb.Subscribe(&message.Subscribe{Subscriber: 9, Filter: `topic = `}); err == nil {
		t.Error("bad filter accepted")
	}
	r.shb.Detach(1)
	if _, err := r.shb.Subscribe(&message.Subscribe{Subscriber: 1, Filter: `topic = "a"`}); err == nil {
		t.Error("re-connect of existing subscription without Resume accepted")
	}
}

func TestDetachUnknownAndAckUnknown(t *testing.T) {
	r := newRig(t, nil)
	r.shb.Detach(42)                              // no-op
	r.shb.OnAck(42, vtime.NewCheckpointToken())   // no-op
	r.shb.OnCredit(42, 5)                         // no-op
	if err := r.shb.Unsubscribe(42); err != nil { // no-op
		t.Fatal(err)
	}
}

func TestChopPFS(t *testing.T) {
	r := newRig(t, nil)
	c := r.connect(1, `topic = "a"`)
	for i := 0; i < 20; i++ {
		r.publish("a")
	}
	r.drain()
	r.shb.OnAck(1, c.ct)
	r.tick()
	before := r.shb.cfg.PFS.RecordCount(1)
	if before != 20 {
		t.Fatalf("PFS records = %d", before)
	}
	if err := r.shb.ChopPFS(); err != nil {
		t.Fatal(err)
	}
	if got := r.shb.cfg.PFS.RecordCount(1); got != 0 {
		t.Errorf("PFS records after chop = %d", got)
	}
}

func TestMultiplePubendsIndependentStreams(t *testing.T) {
	// One pubend process in the rig; emulate a second pubend by feeding
	// synthetic knowledge directly.
	r := newRig(t, nil, 1, 2)
	c := r.connect(1, `topic = "a"`)
	ev := r.publish("a")
	r.drain()
	// Pubend 2 speaks directly.
	ev2 := &message.Event{
		Pubend: 2, Timestamp: 500,
		Attrs:   filter.Attributes{"topic": filter.String("a")},
		Payload: []byte("x"),
	}
	r.shb.OnKnowledge(&message.Knowledge{
		Pubend: 2,
		Ranges: []tick.Range{{Start: 1, End: 499, Kind: tick.S}},
		Events: []*message.Event{ev2},
	})
	if len(c.events) != 2 {
		t.Fatalf("delivered %d events, want 2", len(c.events))
	}
	if c.ct.Get(1) != ev.Timestamp || c.ct.Get(2) != 500 {
		t.Errorf("CT = %v", c.ct)
	}
	if r.shb.LatestDelivered(2) != 500 {
		t.Errorf("pubend 2 latestDelivered = %d", r.shb.LatestDelivered(2))
	}
}

func TestAttachSkipsHistory(t *testing.T) {
	r := newRig(t, nil, 7)
	// First knowledge for pubend 7 starts mid-stream at ts 1000: a fresh
	// SHB attaches there instead of nacking all prior history.
	r.shb.OnKnowledge(&message.Knowledge{
		Pubend: 7,
		Ranges: []tick.Range{{Start: 1000, End: 1100, Kind: tick.S}},
	})
	if got := r.shb.LatestDelivered(7); got != 1100 {
		t.Errorf("latestDelivered after attach = %d, want 1100", got)
	}
	r.tick()
	if len(r.pendingNacks) != 0 {
		t.Errorf("fresh SHB nacked history: %v", r.pendingNacks)
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := newRig(t, nil)
	r.connect(1, `topic = "a"`)
	for i := 0; i < 5; i++ {
		r.publish("a")
	}
	r.drain()
	st := r.shb.Stats()
	if st.EventsDelivered != 5 || st.PFSWrites != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// Sanity: cache behaves (unit-level).
func TestEventCache(t *testing.T) {
	c := newEventCache(3)
	mk := func(ts vtime.Timestamp) *message.Event {
		return &message.Event{Pubend: 1, Timestamp: ts}
	}
	c.put(mk(10))
	c.put(mk(30))
	c.put(mk(20)) // out of order insert
	if c.len() != 3 {
		t.Fatalf("len = %d", c.len())
	}
	evs := c.eventsIn(10, 30)
	if len(evs) != 2 || evs[0].Timestamp != 20 || evs[1].Timestamp != 30 {
		t.Errorf("eventsIn(10,30] = %v", evs)
	}
	c.put(mk(40)) // over capacity but nothing delivered: soft cap holds all
	if _, ok := c.get(10); !ok {
		t.Error("undelivered event evicted")
	}
	c.setFloor(25) // 10 and 20 delivered
	c.put(mk(50))  // now eviction can proceed from the floor
	if _, ok := c.get(10); ok {
		t.Error("capacity eviction failed")
	}
	c.put(mk(40)) // duplicate: no-op
	if c.len() != 3 {
		t.Errorf("duplicate put changed len: %d", c.len())
	}
	c.evictUpTo(30)
	if c.len() != 2 {
		t.Errorf("evictUpTo left %d", c.len())
	}
	if _, ok := c.get(40); !ok {
		t.Error("evictUpTo removed live entry")
	}
	c.evictUpTo(5) // below everything: no-op
	if c.len() != 2 {
		t.Error("no-op evict changed cache")
	}
}

// TestConcurrentChurnStress hammers the sharded engine from every entry
// point at once — live knowledge fan-out, detach/resume churn workers,
// continuous acks, periodic Ticks, and the background shard pumps — and
// then asserts the exactly-once contract held for every subscriber. Its
// main job is running under -race (the CI pipeline runs this package with
// the detector on); the final per-subscriber accounting also catches
// lost or duplicated deliveries at full concurrency.
func TestConcurrentChurnStress(t *testing.T) {
	const (
		nSubs    = 64
		nEvents  = 3000
		nWorkers = 4
		opsPer   = 25
		batch    = 32
	)
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := metastore.Open(filepath.Join(dir, "meta.wal"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		vol.Close()  //nolint:errcheck
		meta.Close() //nolint:errcheck
	})
	p, err := pfs.New(pfs.Options{Volume: vol, Meta: meta, SyncEvery: 200})
	if err != nil {
		t.Fatal(err)
	}

	// Per-subscriber model, locked independently of the engine: Deliver
	// runs under the shard lock, so the model lock must never be held
	// while calling back into the engine.
	type subModel struct {
		mu   sync.Mutex
		seen vtime.Timestamp
		got  int
		bad  int
		gaps int
	}
	// One extra subscriber per worker churns through Unsubscribe + fresh
	// re-Subscribe instead of detach/resume; a fresh connect starts at
	// latestDelivered, so these are checked for ordering violations only,
	// not for full delivery counts.
	models := make([]*subModel, nSubs+nWorkers+1)
	for i := range models {
		models[i] = &subModel{}
	}
	var nackMu sync.Mutex
	var pending []tick.Span

	shb, err := New(Config{
		Meta:          meta,
		PFS:           p,
		Pubends:       []vtime.PubendID{1},
		SubShards:     4,
		CatchupWeight: 32,
		SendNack: func(_ vtime.PubendID, spans []tick.Span) {
			nackMu.Lock()
			pending = append(pending, spans...)
			nackMu.Unlock()
		},
		Deliver: func(sub vtime.SubscriberID, d message.Delivery) {
			m := models[sub]
			m.mu.Lock()
			defer m.mu.Unlock()
			switch d.Kind {
			case message.DeliverEvent:
				if d.Timestamp <= m.seen {
					m.bad++
					return
				}
				m.got++
				m.seen = d.Timestamp
			case message.DeliverSilence:
				if d.Timestamp > m.seen {
					m.seen = d.Timestamp
				}
			case message.DeliverGap:
				m.gaps++
				if d.Timestamp > m.seen {
					m.seen = d.Timestamp
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shb.Close)

	events := make([]*message.Event, nEvents)
	for i := range events {
		events[i] = &message.Event{
			Pubend:    1,
			Timestamp: vtime.Timestamp(i + 1),
			Attrs:     filter.Attributes{"topic": filter.String("a")},
			Payload:   []byte("x"),
		}
	}
	for id := 1; id <= nSubs; id++ {
		if _, err := shb.Subscribe(&message.Subscribe{
			Subscriber: vtime.SubscriberID(id), Filter: `topic = "a"`,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// serve replays pending nack spans as knowledge. Only the feeder
	// goroutine (and the final sequential drain) call it: knowledge for
	// one pubend must come from a single caller.
	serve := func() {
		nackMu.Lock()
		spans := pending
		pending = nil
		nackMu.Unlock()
		for _, sp := range spans {
			if sp.End > nEvents {
				sp.End = nEvents
			}
			if sp.Start < 1 {
				sp.Start = 1
			}
			if sp.Start > sp.End {
				continue
			}
			shb.OnKnowledge(&message.Knowledge{Pubend: 1, Events: events[sp.Start-1 : sp.End]})
		}
	}

	stop := make(chan struct{})
	var helpers, workers sync.WaitGroup

	helpers.Add(1)
	go func() { // ticker: single Tick caller during the live phase
		defer helpers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := shb.Tick(time.Now()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	helpers.Add(1)
	go func() { // acker: continuously acknowledge everything seen
		defer helpers.Done()
		ct := vtime.NewCheckpointToken()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for id := 1; id <= nSubs; id++ {
				m := models[id]
				m.mu.Lock()
				seen := m.seen
				m.mu.Unlock()
				ct.ForceSet(1, seen)
				shb.OnAck(vtime.SubscriberID(id), ct)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Churn workers own disjoint subscriber ranges, so detach/resume pairs
	// for one subscriber are sequenced.
	per := nSubs / nWorkers
	for w := 0; w < nWorkers; w++ {
		lo, hi := w*per+1, (w+1)*per
		workers.Add(1)
		xid := vtime.SubscriberID(nSubs + w + 1)
		go func(lo, hi int, xid vtime.SubscriberID) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(lo)))
			for op := 0; op < opsPer; op++ {
				if op%5 == 0 {
					// Unsubscribe churn: drop the durable subscription
					// entirely, then re-register from scratch.
					if err := shb.Unsubscribe(xid); err != nil {
						t.Error(err)
						return
					}
					tok, err := shb.Subscribe(&message.Subscribe{
						Subscriber: xid, Filter: `topic = "a"`,
					})
					if err != nil {
						t.Error(err)
						return
					}
					m := models[xid]
					m.mu.Lock()
					if start := tok.Get(1); start > m.seen {
						m.seen = start
					}
					m.mu.Unlock()
				}
				id := vtime.SubscriberID(lo + rng.Intn(hi-lo+1))
				shb.Detach(id)
				m := models[id]
				m.mu.Lock()
				seen := m.seen
				m.mu.Unlock()
				ct := vtime.NewCheckpointToken()
				ct.ForceSet(1, seen)
				if _, err := shb.Subscribe(&message.Subscribe{
					Subscriber: id, Filter: `topic = "a"`, CT: ct, Resume: true,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(lo, hi, xid)
	}

	// Live feed, concurrent with everything above.
	for i := 0; i < nEvents; i += batch {
		end := i + batch
		if end > nEvents {
			end = nEvents
		}
		shb.OnKnowledge(&message.Knowledge{Pubend: 1, Events: events[i:end]})
		serve()
	}
	workers.Wait()
	close(stop)
	helpers.Wait()
	if t.Failed() {
		return
	}

	// Drain sequentially to quiescence.
	for i := 0; ; i++ {
		serve()
		if err := shb.Tick(time.Now()); err != nil {
			t.Fatal(err)
		}
		shb.DrainCatchups()
		nackMu.Lock()
		n := len(pending)
		nackMu.Unlock()
		if shb.CatchupCount() == 0 && n == 0 {
			break
		}
		if i > 1<<16 {
			t.Fatalf("did not quiesce: %d catchups, %d pending nack spans", shb.CatchupCount(), n)
		}
	}
	for id := 1; id <= nSubs+nWorkers; id++ {
		m := models[id]
		if m.bad != 0 {
			t.Errorf("sub %d: %d duplicate/regressed deliveries", id, m.bad)
		}
		if m.gaps != 0 {
			t.Errorf("sub %d: %d gap deliveries (nothing was early-released)", id, m.gaps)
		}
		if id <= nSubs && m.got != nEvents {
			t.Errorf("sub %d: delivered %d events, want %d", id, m.got, nEvents)
		}
	}
}

// TestDeliveryPathAllocsGate is the allocation regression gate for the
// steady-state constream delivery path: match, PFS write, cache admit, and
// fan-out to 40 connected subscribers. The pooled PFS/logvol buffers and
// the amortized fan/scratch slices keep the per-event count well under one;
// the bound leaves ~3x headroom over the measured value so it trips on a
// regression (an unpooled buffer, a per-delivery allocation) and not on
// noise.
func TestDeliveryPathAllocsGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	const (
		subs  = 40
		batch = 64
		runs  = 30
	)
	r := newBenchRig(t, subs, 0)
	// Warm up: grow the fan arenas, knowledge-stream scratch, cache, and
	// group-commit machinery to steady state.
	for i := 0; i < 50; i++ {
		r.feed(batch)
	}
	// Pre-generate the measured batches (AllocsPerRun adds one warm-up
	// call before the counted runs).
	knows := make([]*message.Knowledge, runs+1)
	for i := range knows {
		know := &message.Knowledge{Pubend: 1}
		for j := 0; j < batch; j++ {
			r.nextTS++
			know.Events = append(know.Events, &message.Event{
				Pubend:    1,
				Timestamp: r.nextTS,
				Attrs:     filter.Attributes{"group": filter.String("g0")},
				Payload:   benchPayload,
			})
		}
		knows[i] = know
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		r.shb.OnKnowledge(knows[i])
		i++
	})
	perEvent := avg / batch
	t.Logf("delivery path: %.3f allocs/event (%d subscribers, batch %d)", perEvent, subs, batch)
	// Measured ~0.02 allocs/event with the ref-counted buffer layer, delta
	// checkpointing, and the zero-alloc metastore apply; any real
	// regression (an unpooled buffer, a per-delivery allocation, a
	// checkpoint map copy) adds at least an order of magnitude.
	const maxAllocsPerEvent = 0.05
	if perEvent > maxAllocsPerEvent {
		t.Errorf("delivery path allocates %.3f/event, gate is %.2f", perEvent, maxAllocsPerEvent)
	}
}

func ExampleSHB() {
	// The SHB engine is normally embedded in a broker; see the broker
	// package for full wiring.
	fmt.Println("see package broker")
	// Output: see package broker
}
