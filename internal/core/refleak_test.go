package core

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/pfs"
	"repro/internal/vtime"
)

// openLeakFixture builds an engine whose Deliver callback behaves like the
// broker's wire path: wrap each delivery in a pooled envelope (retaining
// the event's frame buffer) and release it once "written".
func openLeakFixture(t testing.TB, subs int) *SHB {
	t.Helper()
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := metastore.Open(filepath.Join(dir, "meta.wal"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		vol.Close()  //nolint:errcheck
		meta.Close() //nolint:errcheck
	})
	p, err := pfs.New(pfs.Options{Volume: vol, Meta: meta, SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	shb, err := New(Config{
		Meta:    meta,
		PFS:     p,
		Pubends: []vtime.PubendID{1},
		Deliver: func(sub vtime.SubscriberID, d message.Delivery) {
			dm := message.GetDeliver(sub, d)
			if rel, ok := any(dm).(message.Releasable); ok {
				rel.ReleaseRefs()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shb.Close)
	for i := 0; i < subs; i++ {
		if _, err := shb.Subscribe(&message.Subscribe{
			Subscriber: vtime.SubscriberID(i + 1),
			Filter:     `group = "g0"`,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return shb
}

// feedShared encodes n matching events as one knowledge frame and ingests
// it the way broker ingress does: read into a pooled Ref, decode once with
// payloads aliasing the frame, hand to the engine, release the reader's
// base reference.
func feedShared(t testing.TB, shb *SHB, next *vtime.Timestamp, n int) {
	t.Helper()
	know := &message.Knowledge{Pubend: 1}
	for i := 0; i < n; i++ {
		*next++
		know.Events = append(know.Events, &message.Event{
			Pubend:    1,
			Timestamp: *next,
			Attrs:     filter.Attributes{"group": filter.String("g0")},
			Payload:   benchPayload,
		})
	}
	enc, err := message.Encode(nil, know)
	if err != nil {
		t.Fatal(err)
	}
	ref := message.AcquireRef(len(enc))
	copy(ref.Bytes(), enc)
	m, err := message.DecodeShared(ref)
	if err != nil {
		t.Fatal(err)
	}
	shb.OnKnowledge(m.(*message.Knowledge))
	ref.Release()
}

// drainRefs acks everything for every subscriber and ticks until the
// release floor catches up and the event cache lets go of its pins.
func drainRefs(t testing.TB, shb *SHB, subs int, upTo vtime.Timestamp) {
	t.Helper()
	ct := vtime.NewCheckpointToken()
	ct.Set(1, upTo)
	for i := 0; i < subs; i++ {
		shb.OnAck(vtime.SubscriberID(i+1), ct)
	}
	for round := 0; shb.CatchupCount() > 0; round++ {
		if round > 1<<16 {
			t.Fatalf("%d catchup streams stuck during drain", shb.CatchupCount())
		}
		if err := shb.Tick(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// A few extra ticks let shard floors publish and the release vector
	// converge to upTo (floor publication is itself tick-driven).
	for i := 0; i < 4; i++ {
		if err := shb.Tick(time.Now()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRefLeakDrain is the leak detector for the ref-counted buffer layer:
// run the live delivery path end to end with strict accounting on — frame
// decode, cache admit, fan-out envelopes, writer release, ack-driven cache
// eviction — and assert every acquired frame buffer was fully released.
func TestRefLeakDrain(t *testing.T) {
	message.SetRefAccounting(true)
	defer message.SetRefAccounting(false)
	start := message.OutstandingRefs()
	const subs = 8
	shb := openLeakFixture(t, subs)
	var next vtime.Timestamp
	for i := 0; i < 20; i++ {
		feedShared(t, shb, &next, 64)
	}
	drainRefs(t, shb, subs, next)
	if got := message.OutstandingRefs() - start; got != 0 {
		t.Fatalf("%d frame buffers still referenced after drain, want 0", got)
	}
}

// TestRefConcurrentDeliveryFuzz races every holder of a frame buffer the
// system has — live fan-out writers, cache admit/evict, catchup streams
// re-reading pinned events, and PFS chop — against concurrent retain/
// release. Under -race this is the memory-model check for the whole
// ownership contract; under accounting it doubles as a leak/double-free
// check after the storm drains.
func TestRefConcurrentDeliveryFuzz(t *testing.T) {
	message.SetRefAccounting(true)
	defer message.SetRefAccounting(false)
	start := message.OutstandingRefs()
	const subs = 6
	shb := openLeakFixture(t, subs)

	var (
		mu   sync.Mutex
		next vtime.Timestamp
	)
	feed := func(n int) vtime.Timestamp {
		mu.Lock()
		defer mu.Unlock()
		feedShared(t, shb, &next, n)
		return next
	}

	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	var wg sync.WaitGroup
	// Feeder: live knowledge batches with shared frame buffers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			feed(32)
		}
	}()
	// Acker: advances the release floor, driving cache eviction and the
	// PFS chop while the feeder is still admitting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			mu.Lock()
			upTo := next
			mu.Unlock()
			ct := vtime.NewCheckpointToken()
			ct.Set(1, upTo)
			for s := 0; s < subs-1; s++ {
				shb.OnAck(vtime.SubscriberID(s+1), ct)
			}
			_ = shb.Tick(time.Now())
		}
	}()
	// Churner: detaches and resubscribes the last subscriber so catchup
	// streams repeatedly pin and re-read cached events mid-storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/3; i++ {
			mu.Lock()
			upTo := next
			mu.Unlock()
			ct := vtime.NewCheckpointToken()
			ct.Set(1, upTo)
			shb.OnAck(vtime.SubscriberID(subs), ct)
			shb.Detach(vtime.SubscriberID(subs))
			feed(16)
			if _, err := shb.Subscribe(&message.Subscribe{
				Subscriber: vtime.SubscriberID(subs),
				Filter:     `group = "g0"`,
				CT:         ct,
				Resume:     true,
			}); err != nil {
				t.Error(err)
				return
			}
			for shb.CatchupCount() > 0 {
				if err := shb.Tick(time.Now()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	mu.Lock()
	upTo := next
	mu.Unlock()
	drainRefs(t, shb, subs, upTo)
	if got := message.OutstandingRefs() - start; got != 0 {
		t.Fatalf("%d frame buffers still referenced after fuzz drain, want 0", got)
	}
}
