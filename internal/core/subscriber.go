package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Subscribe attaches a durable subscriber. For a first connect
// (req.Resume == false) the subscriber is given CT(s,p) =
// latestDelivered(p) for every pubend and starts in non-catchup mode
// (paper, section 4.1). On a resume, a catchup stream is created for every
// pubend whose checkpoint lies behind latestDelivered.
//
// A resume for a subscriber this SHB has never hosted is the paper's
// "reconnect-anywhere" case (section 1, feature 5): the subscription is
// registered here, and the interval before registration — which this SHB's
// PFS knows nothing about — is recovered by retrieving events from the
// caches/PHB and refiltering them.
//
// The returned token is the subscriber's starting checkpoint (its own CT
// on resume). Subscribing an already-connected subscriber ID fails.
func (s *SHB) Subscribe(req *message.Subscribe) (*vtime.CheckpointToken, error) {
	subFilter, err := filter.Parse(req.Filter)
	if err != nil {
		return nil, fmt.Errorf("core: subscribe %v: %w", req.Subscriber, err)
	}
	s.mu.lock()
	defer s.mu.unlock()

	sub := s.subs[req.Subscriber]
	if sub != nil && sub.connected {
		return nil, fmt.Errorf("core: subscriber %v already connected", req.Subscriber)
	}
	ct := vtime.NewCheckpointToken()
	if sub == nil {
		// First connect at this SHB: persist the subscription. A plain
		// first connect starts at the consolidated stream's position; a
		// reconnect-anywhere resume starts at the presented checkpoint.
		sub = s.newSubscriber(req.Subscriber, subFilter)
		tx := s.cfg.Meta.Begin()
		tx.Put(tableSubs, strconv.FormatUint(uint64(req.Subscriber), 10), []byte(req.Filter))
		for pub, ps := range s.pubends {
			start := ps.latestDelivered
			if req.Resume {
				start = req.CT.Get(pub)
			}
			sub.released[pub] = start
			// The PFS only describes this subscriber from here on;
			// everything earlier must be refiltered during catchup.
			sub.since[pub] = ps.latestDelivered
			ct.ForceSet(pub, start)
			tx.PutUint64(tableReleased, relKey(pub, req.Subscriber), uint64(start))
			tx.PutUint64(tableSince, relKey(pub, req.Subscriber), uint64(ps.latestDelivered))
		}
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("core: persist subscription: %w", err)
		}
		s.subs[req.Subscriber] = sub
		s.matcher.Add(req.Subscriber, subFilter)
	} else {
		// Resume. The subscriber may present an older CT than it has
		// acknowledged (it lost its own state): honor it; gaps may
		// result where storage was already released.
		if !req.Resume {
			return nil, fmt.Errorf("core: subscriber %v already exists; reconnect with Resume", req.Subscriber)
		}
		for pub := range s.pubends {
			ct.ForceSet(pub, req.CT.Get(pub))
		}
	}
	sub.connected = true
	sub.credits = int64(req.Credits)
	if sub.credits == 0 {
		sub.credits = 1 << 30 // unlimited unless the client flow-controls
	}
	for pub, ps := range s.pubends {
		start := ct.Get(pub)
		sub.lastSent[pub] = start
		if start >= ps.latestDelivered {
			continue // non-catchup from the start
		}
		cs := &catchupStream{
			sub:     sub,
			pub:     pub,
			know:    tick.NewStream(start),
			cur:     tick.NewCuriosity(),
			started: time.Now(),
		}
		cs.pfsReadUpTo = start
		sub.catchup[pub] = cs
		tCatchupActive.Inc()
	}
	// Make immediate progress on all new catchup streams. The cache pin
	// must drop to the catchup base before any recovery responses arrive,
	// or they could be evicted before delivery.
	for pub := range sub.catchup {
		ps := s.pubends[pub]
		s.updateCachePin(ps)
		if cs := sub.catchup[pub]; cs != nil {
			s.pumpCatchup(ps, cs)
		}
		s.flushNacks(ps)
		s.updateCachePin(ps)
	}
	return ct, nil
}

// Detach disconnects a subscriber (orderly or crash — the paper treats
// both identically: catchup(s,p) becomes true the instant the subscriber
// disconnects). The durable subscription itself persists.
func (s *SHB) Detach(subID vtime.SubscriberID) {
	s.mu.lock()
	defer s.mu.unlock()
	sub := s.subs[subID]
	if sub == nil {
		return
	}
	sub.connected = false
	// Catchup streams are discarded; reconnection builds fresh ones from
	// the presented checkpoint token.
	tCatchupActive.Add(int64(-len(sub.catchup)))
	sub.catchup = make(map[vtime.PubendID]*catchupStream)
}

// Unsubscribe permanently removes a durable subscription, releasing the
// storage its unacknowledged backlog was holding.
func (s *SHB) Unsubscribe(subID vtime.SubscriberID) error {
	s.mu.lock()
	defer s.mu.unlock()
	sub := s.subs[subID]
	if sub == nil {
		return nil
	}
	tCatchupActive.Add(int64(-len(sub.catchup)))
	delete(s.subs, subID)
	s.matcher.Remove(subID)
	tx := s.cfg.Meta.Begin()
	tx.Delete(tableSubs, strconv.FormatUint(uint64(subID), 10))
	for pub := range s.pubends {
		tx.Delete(tableReleased, relKey(pub, subID))
		tx.Delete(tableSince, relKey(pub, subID))
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("core: unsubscribe: %w", err)
	}
	s.recomputeReleasedAll()
	return nil
}

// OnAck records a subscriber's checkpoint token: everything at or below
// CT[p] is acknowledged and may be released. Persistence is batched into
// the next Tick (the paper updates released(s) in DB2 every 250 ms).
func (s *SHB) OnAck(subID vtime.SubscriberID, ct *vtime.CheckpointToken) {
	s.mu.lock()
	defer s.mu.unlock()
	sub := s.subs[subID]
	if sub == nil {
		return
	}
	for pub, ps := range s.pubends {
		ack := ct.Get(pub)
		if ack > sub.released[pub] {
			sub.released[pub] = ack
			s.dirty = true
		}
		_ = ps
	}
	s.recomputeReleasedAll()
}

// OnCredit grants flow-control credits and resumes stalled catchup
// deliveries.
func (s *SHB) OnCredit(subID vtime.SubscriberID, credits uint32) {
	s.mu.lock()
	defer s.mu.unlock()
	sub := s.subs[subID]
	if sub == nil {
		return
	}
	sub.credits += int64(credits)
	for pub, cs := range sub.catchup {
		ps := s.pubends[pub]
		s.pumpCatchup(ps, cs)
		s.flushNacks(ps)
	}
}

// Tick performs periodic housekeeping: nack doubt-horizon stalls, send
// silence messages, persist dirty release state, and emit release vectors
// upstream. The broker calls it on its housekeeping interval (the paper's
// released updates run every 250 ms).
func (s *SHB) Tick(now time.Time) error {
	s.mu.lock()
	defer s.mu.unlock()

	for _, ps := range s.pubends {
		// Re-request anything blocking the constream.
		if ps.maxKnown > ps.latestDelivered {
			gaps := ps.know.QGaps(ps.latestDelivered, ps.maxKnown, 0)
			if len(gaps) > 0 {
				spans := make([]tick.Span, len(gaps))
				for i, g := range gaps {
					spans[i] = tick.Span{Start: g.Start, End: g.End}
				}
				s.requestSpans(ps, spans)
			}
		}
		s.pumpCatchups(ps) // also flushes nacks
		s.sendSilence(ps)
	}
	if err := s.persistDirty(); err != nil {
		return err
	}
	s.sendReleaseVectors()
	return nil
}

// sendSilence delivers a silence message to connected non-catchup
// subscribers whose last delivery lags latestDelivered by more than the
// silence interval, so their checkpoint tokens keep advancing.
func (s *SHB) sendSilence(ps *shbPubend) {
	for _, sub := range s.subs {
		if !sub.connected || sub.catchup[ps.id] != nil {
			continue
		}
		if ps.latestDelivered-sub.lastSent[ps.id] <= s.cfg.SilenceInterval {
			continue
		}
		s.cfg.Deliver(sub.id, message.Delivery{
			Kind:      message.DeliverSilence,
			Pubend:    ps.id,
			Timestamp: ps.latestDelivered,
		})
		sub.lastSent[ps.id] = ps.latestDelivered
		s.stats.SilencesDelivered++
		tSilences.Inc()
	}
}

// persistDirty writes latestDelivered and released(s,p) to the metastore
// in one batched transaction.
func (s *SHB) persistDirty() error {
	if !s.dirty {
		return nil
	}
	tx := s.cfg.Meta.Begin()
	pubs := make([]vtime.PubendID, 0, len(s.pubends))
	for pub := range s.pubends {
		pubs = append(pubs, pub)
	}
	sort.Slice(pubs, func(i, j int) bool { return pubs[i] < pubs[j] })
	for _, pub := range pubs {
		ps := s.pubends[pub]
		if !ps.attached {
			continue
		}
		tx.PutUint64(tableLD, pubKey(pub), uint64(ps.latestDelivered))
		for _, sub := range s.subs {
			tx.PutUint64(tableReleased, relKey(pub, sub.id), uint64(sub.released[pub]))
		}
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("core: persist: %w", err)
	}
	s.dirty = false
	return nil
}

// sendReleaseVectors emits (released, latestDelivered) upstream for every
// pubend whose vector changed since the last send.
func (s *SHB) sendReleaseVectors() {
	for _, ps := range s.pubends {
		if !ps.attached {
			continue
		}
		if ps.released == ps.lastSentRelease && ps.latestDelivered == ps.lastSentLD {
			continue
		}
		ps.lastSentRelease = ps.released
		ps.lastSentLD = ps.latestDelivered
		s.cfg.SendRelease(ps.id, ps.released, ps.latestDelivered)
	}
}

// ChopPFS discards PFS records below released(p) for every pubend; brokers
// call it occasionally to reclaim SHB storage.
func (s *SHB) ChopPFS() error {
	s.mu.lock()
	pubs := make([]vtime.PubendID, 0, len(s.pubends))
	rels := make([]vtime.Timestamp, 0, len(s.pubends))
	for pub, ps := range s.pubends {
		pubs = append(pubs, pub)
		rels = append(rels, ps.released)
	}
	s.mu.unlock()
	for i, pub := range pubs {
		if err := s.cfg.PFS.Chop(pub, rels[i]); err != nil {
			return err
		}
	}
	return nil
}
