package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Subscribe attaches a durable subscriber. For a first connect
// (req.Resume == false) the subscriber is given CT(s,p) =
// latestDelivered(p) for every pubend and starts in non-catchup mode
// (paper, section 4.1). On a resume, a catchup stream is created for every
// pubend whose checkpoint lies behind latestDelivered.
//
// A resume for a subscriber this SHB has never hosted is the paper's
// "reconnect-anywhere" case (section 1, feature 5): the subscription is
// registered here, and the interval before registration — which this SHB's
// PFS knows nothing about — is recovered by retrieving events from the
// caches/PHB and refiltering them.
//
// The returned token is the subscriber's starting checkpoint (its own CT
// on resume). Subscribing an already-connected subscriber ID fails.
func (s *SHB) Subscribe(req *message.Subscribe) (*vtime.CheckpointToken, error) {
	subFilter, err := filter.Parse(req.Filter)
	if err != nil {
		return nil, fmt.Errorf("core: subscribe %v: %w", req.Subscriber, err)
	}
	sh := s.shardFor(req.Subscriber)
	sh.mu.Lock()

	sub := sh.subs[req.Subscriber]
	if sub != nil && sub.connected {
		sh.mu.Unlock()
		return nil, fmt.Errorf("core: subscriber %v already connected", req.Subscriber)
	}
	ct := vtime.NewCheckpointToken()
	if sub == nil {
		// First connect at this SHB: persist the subscription. A plain
		// first connect starts at the consolidated stream's position; a
		// reconnect-anywhere resume starts at the presented checkpoint.
		//
		// The matcher learns the subscription before the since floors
		// are read: since(s,p) claims the PFS describes the subscriber
		// from there on, so every constream advance past it must have
		// matched with the subscriber present. Fan-out for any such
		// advance blocks on sh.mu until the record below is visible.
		sub = s.newSubscriber(req.Subscriber, subFilter)
		s.matcher.Add(req.Subscriber, subFilter)
		tx := s.cfg.Meta.Begin()
		tx.Put(tableSubs, strconv.FormatUint(uint64(req.Subscriber), 10), []byte(req.Filter))
		for _, ps := range s.pubList {
			ps.mu.lock()
			ld := ps.latestDelivered
			start := ld
			if req.Resume {
				start = req.CT.Get(ps.id)
			}
			sub.released[ps.id] = start
			// The PFS only describes this subscriber from here on;
			// everything earlier must be refiltered during catchup.
			sub.since[ps.id] = ld
			// A floor below the shard's current minimum must reach
			// the release vector before the next Tick, or released(p)
			// could advance past storage this backlog still needs.
			if start < ps.relByShard[sh.id] {
				ps.relByShard[sh.id] = start
			}
			ps.mu.unlock()
			ct.ForceSet(ps.id, start)
			tx.PutUint64(tableReleased, relKey(ps.id, req.Subscriber), uint64(start))
			tx.PutUint64(tableSince, relKey(ps.id, req.Subscriber), uint64(ld))
		}
		if err := tx.Commit(); err != nil {
			s.matcher.Remove(req.Subscriber)
			sh.mu.Unlock()
			return nil, fmt.Errorf("core: persist subscription: %w", err)
		}
		sh.subs[req.Subscriber] = sub
	} else {
		// Resume. The subscriber may present an older CT than it has
		// acknowledged (it lost its own state): honor it; gaps may
		// result where storage was already released.
		if !req.Resume {
			sh.mu.Unlock()
			return nil, fmt.Errorf("core: subscriber %v already exists; reconnect with Resume", req.Subscriber)
		}
		for _, ps := range s.pubList {
			ct.ForceSet(ps.id, req.CT.Get(ps.id))
		}
	}
	sub.connected = true
	sh.nConnected.Add(1)
	sh.tConnected.Inc()
	sub.credits = int64(req.Credits)
	if sub.credits == 0 {
		sub.credits = 1 << 30 // unlimited unless the client flow-controls
	}
	newCatchup := false
	for _, ps := range s.pubList {
		start := ct.Get(ps.id)
		sub.lastSent[ps.id] = start
		// The catchup decision is made against latestDelivered under
		// ps.mu while sh.mu is held: it is atomic with respect to the
		// constream advance, so an event is either covered by the
		// catchup stream created here or fanned out to the now-visible
		// subscriber — never neither.
		ps.mu.lock()
		if start >= ps.latestDelivered {
			ps.mu.unlock()
			continue // non-catchup from the start
		}
		cs := &catchupStream{
			sub:     sub,
			pub:     ps.id,
			know:    tick.NewStream(start),
			cur:     tick.NewCuriosity(),
			started: time.Now(),
		}
		cs.pfsReadUpTo = start
		sub.catchup[ps.id] = cs
		// The cache pin must drop to the catchup base before any
		// recovery responses arrive, or they could be evicted before
		// delivery.
		if start < ps.pinByShard[sh.id] {
			ps.pinByShard[sh.id] = start
			pin := vtime.MaxTS
			for _, p := range ps.pinByShard {
				if p < pin {
					pin = p
				}
			}
			ps.cache.setPin(pin)
		}
		ps.mu.unlock()
		sh.nCatchup.Add(1)
		sh.tCatchup.Inc()
		tCatchupActive.Inc()
		newCatchup = true
	}
	if newCatchup {
		sh.catchups[sub.id] = sub
	}
	sh.mu.Unlock()
	if newCatchup {
		// Make immediate progress on the new catchup streams so callers
		// observe a deterministic amount of recovery (bounded by credits
		// and the available local knowledge).
		s.drainShard(sh)
	}
	return ct, nil
}

// Detach disconnects a subscriber (orderly or crash — the paper treats
// both identically: catchup(s,p) becomes true the instant the subscriber
// disconnects). The durable subscription itself persists.
func (s *SHB) Detach(subID vtime.SubscriberID) {
	sh := s.shardFor(subID)
	sh.mu.Lock()
	sub := sh.subs[subID]
	if sub == nil {
		sh.mu.Unlock()
		return
	}
	if sub.connected {
		sh.nConnected.Add(-1)
		sh.tConnected.Dec()
	}
	sub.connected = false
	// Catchup streams are discarded; reconnection builds fresh ones from
	// the presented checkpoint token.
	n := len(sub.catchup)
	tCatchupActive.Add(int64(-n))
	sh.nCatchup.Add(int64(-n))
	sh.tCatchup.Add(int64(-n))
	sub.catchup = make(map[vtime.PubendID]*catchupStream)
	delete(sh.catchups, subID)
	sh.mu.Unlock()
	if n > 0 {
		s.syncShardPins(sh)
	}
}

// Unsubscribe permanently removes a durable subscription, releasing the
// storage its unacknowledged backlog was holding.
func (s *SHB) Unsubscribe(subID vtime.SubscriberID) error {
	sh := s.shardFor(subID)
	sh.mu.Lock()
	sub := sh.subs[subID]
	if sub == nil {
		sh.mu.Unlock()
		return nil
	}
	if sub.connected {
		sh.nConnected.Add(-1)
		sh.tConnected.Dec()
	}
	n := len(sub.catchup)
	tCatchupActive.Add(int64(-n))
	sh.nCatchup.Add(int64(-n))
	sh.tCatchup.Add(int64(-n))
	delete(sh.subs, subID)
	delete(sh.catchups, subID)
	delete(sh.dirtySubs, subID)
	// The departed backlog may have been holding the shard floor down.
	sh.relDirty = true
	s.matcher.Remove(subID)
	tx := s.cfg.Meta.Begin()
	tx.Delete(tableSubs, strconv.FormatUint(uint64(subID), 10))
	for _, ps := range s.pubList {
		tx.Delete(tableReleased, relKey(ps.id, subID))
		tx.Delete(tableSince, relKey(ps.id, subID))
	}
	err := tx.Commit()
	sh.mu.Unlock()
	// The departed backlog may have been the release floor; republish.
	s.publishShardFloors(sh)
	s.syncShardPins(sh)
	if err != nil {
		return fmt.Errorf("core: unsubscribe: %w", err)
	}
	return nil
}

// OnAck records a subscriber's checkpoint token: everything at or below
// CT[p] is acknowledged and may be released. Persistence and released(p)
// aggregation are batched into the next Tick (the paper updates
// released(s) in DB2 every 250 ms).
func (s *SHB) OnAck(subID vtime.SubscriberID, ct *vtime.CheckpointToken) {
	sh := s.shardFor(subID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sub := sh.subs[subID]
	if sub == nil {
		return
	}
	for _, ps := range s.pubList {
		ack := ct.Get(ps.id)
		if ack > sub.released[ps.id] {
			sub.released[ps.id] = ack
			sh.dirtySubs[sub.id] = sub
			sh.relDirty = true
		}
	}
}

// OnCredit grants flow-control credits and resumes stalled catchup
// deliveries.
func (s *SHB) OnCredit(subID vtime.SubscriberID, credits uint32) {
	sh := s.shardFor(subID)
	sh.mu.Lock()
	sub := sh.subs[subID]
	if sub == nil {
		sh.mu.Unlock()
		return
	}
	sub.credits += int64(credits)
	stalled := len(sub.catchup) > 0
	sh.mu.Unlock()
	if stalled {
		s.drainShard(sh)
	}
}

// Tick performs periodic housekeeping: nack doubt-horizon stalls, drain
// catchup streams, send silence messages, publish per-shard release
// floors, persist dirty release state, and emit release vectors upstream.
// The broker calls it on its housekeeping interval (the paper's released
// updates run every 250 ms).
func (s *SHB) Tick(now time.Time) error {
	for _, ps := range s.pubList {
		// Re-request anything blocking the constream.
		ps.mu.lock()
		if ps.maxKnown > ps.latestDelivered {
			gaps := ps.know.QGaps(ps.latestDelivered, ps.maxKnown, 0)
			if len(gaps) > 0 {
				spans := make([]tick.Span, len(gaps))
				for i, g := range gaps {
					spans[i] = tick.Span{Start: g.Start, End: g.End}
				}
				s.requestSpansLocked(ps, spans)
			}
		}
		s.flushNacksLocked(ps)
		ps.mu.unlock()
	}
	for _, sh := range s.shards {
		s.drainShard(sh)
		s.silenceShard(sh)
		// Floors only move when some released(s,p) changed or a backlog
		// departed; skip the O(subscribers) recomputation otherwise.
		// released(p) still tracks latestDelivered through the constream
		// advance's own recompute.
		sh.mu.Lock()
		dirty := sh.relDirty
		sh.relDirty = false
		sh.mu.Unlock()
		if dirty {
			s.publishShardFloors(sh)
		}
	}
	if err := s.persistDirty(); err != nil {
		return err
	}
	s.sendReleaseVectors()
	return nil
}

// silenceShard delivers a silence message to the shard's connected
// non-catchup subscribers whose last delivery lags the constream by more
// than the silence interval, so their checkpoint tokens keep advancing.
// Silence advances only to fanLD — the position every shard has seen
// deliveries up to — never to a latestDelivered whose fan-out is still in
// flight, which would release events the subscriber has not received.
func (s *SHB) silenceShard(sh *subShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, ps := range s.pubList {
		fanLD := vtime.Timestamp(ps.fanLD.Load())
		for _, sub := range sh.subs {
			if !sub.connected || sub.catchup[ps.id] != nil {
				continue
			}
			if fanLD-sub.lastSent[ps.id] <= s.cfg.SilenceInterval {
				continue
			}
			s.cfg.Deliver(sub.id, message.Delivery{
				Kind:      message.DeliverSilence,
				Pubend:    ps.id,
				Timestamp: fanLD,
			})
			sub.lastSent[ps.id] = fanLD
			s.stats.silencesDelivered.Add(1)
			tSilences.Inc()
		}
	}
}

// persistDirty writes latestDelivered and released(s,p) to the metastore
// in one batched transaction. Only subscribers whose release state changed
// since the last commit are written; dirty sets are cleared at snapshot
// time, and a failed commit schedules a full re-persist on the next Tick
// (the conservative fallback — the cleared per-subscriber dirty marks are
// gone, so everything is rewritten).
func (s *SHB) persistDirty() error {
	full := s.persistRetry.Swap(false)
	dirty := full
	tx := s.cfg.Meta.Begin()
	for _, ps := range s.pubList {
		ps.mu.lock()
		if ps.dirtyLD {
			dirty = true
			ps.dirtyLD = false
		}
		if ps.attached {
			tx.PutUint64(tableLD, pubKey(ps.id), uint64(ps.latestDelivered))
		}
		ps.mu.unlock()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		subs := sh.dirtySubs
		if full {
			subs = sh.subs
		}
		if len(sh.dirtySubs) > 0 {
			dirty = true
		}
		for _, sub := range subs {
			for _, ps := range s.pubList {
				tx.PutUint64(tableReleased, relKey(ps.id, sub.id), uint64(sub.released[ps.id]))
			}
		}
		clear(sh.dirtySubs)
		sh.mu.Unlock()
	}
	if !dirty {
		return nil
	}
	if err := tx.Commit(); err != nil {
		s.persistRetry.Store(true)
		return fmt.Errorf("core: persist: %w", err)
	}
	return nil
}

// sendReleaseVectors emits (released, latestDelivered) upstream for every
// pubend whose vector changed since the last send.
func (s *SHB) sendReleaseVectors() {
	for _, ps := range s.pubList {
		ps.mu.lock()
		if !ps.attached ||
			(ps.released == ps.lastSentRelease && ps.latestDelivered == ps.lastSentLD) {
			ps.mu.unlock()
			continue
		}
		ps.lastSentRelease = ps.released
		ps.lastSentLD = ps.latestDelivered
		rel, ld := ps.released, ps.latestDelivered
		s.cfg.SendRelease(ps.id, rel, ld)
		ps.mu.unlock()
	}
}

// ChopPFS discards PFS records below released(p) for every pubend; brokers
// call it occasionally to reclaim SHB storage.
func (s *SHB) ChopPFS() error {
	for _, ps := range s.pubList {
		ps.mu.lock()
		rel := ps.released
		ps.mu.unlock()
		if err := s.cfg.PFS.Chop(ps.id, rel); err != nil {
			return err
		}
	}
	return nil
}
