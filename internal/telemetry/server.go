package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Check is one component health probe: nil means healthy. Checks must be
// fast (they run inline in /healthz requests) and safe for concurrent use.
type Check func() error

// Note is an informational health annotation: a non-empty string is
// printed on /healthz and /readyz without affecting the status code
// (e.g. "failed over to mid2" while the substitute link is healthy).
// Same contract as Check: fast and safe for concurrent use.
type Note func() string

// Server is the admin HTTP endpoint of a broker: /metrics (Prometheus
// text format), /healthz (liveness over registered checks), /readyz
// (readiness gate plus the same checks), and /debug/pprof/*.
//
// The listener is bound synchronously in NewServer so Addr is valid
// immediately — tests bind "127.0.0.1:0" and read the actual port back
// instead of racing for a fixed one.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	checks map[string]Check
	notes  map[string]Note
	ready  atomic.Bool

	closeOnce sync.Once
	closeErr  error
}

// NewServer binds addr and starts serving the admin endpoint over reg
// (nil means the default registry).
func NewServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		reg:    reg,
		ln:     ln,
		checks: make(map[string]Check),
		notes:  make(map[string]Note),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns non-nil on Close
	return s, nil
}

// Addr reports the actual listen address (resolving ":0" binds).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// RegisterHealth adds (or replaces) a named component health check.
func (s *Server) RegisterHealth(name string, c Check) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks[name] = c
}

// UnregisterHealth removes a named check.
func (s *Server) UnregisterHealth(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.checks, name)
}

// RegisterNote adds (or replaces) a named informational annotation; it is
// printed on /healthz and /readyz when non-empty but never changes the
// status code.
func (s *Server) RegisterNote(name string, n Note) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notes[name] = n
}

// SetReady flips the readiness gate; a broker marks itself ready once its
// startup (state recovery, upstream connect, listener bind) completes.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Close stops the admin server and releases its port.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.srv.Close()
	})
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck,gosec // client disconnect mid-write
}

// runChecks evaluates every registered check and reports failures in name
// order.
func (s *Server) runChecks() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.checks))
	checks := make([]Check, 0, len(s.checks))
	for name, c := range s.checks {
		names = append(names, name)
		checks = append(checks, c)
	}
	s.mu.Unlock()
	var failures []string
	for i, c := range checks {
		if err := c(); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", names[i], err))
		}
	}
	sort.Strings(failures)
	return failures
}

// runNotes evaluates every registered note and reports the non-empty
// ones in name order.
func (s *Server) runNotes() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.notes))
	notes := make([]Note, 0, len(s.notes))
	for name, n := range s.notes {
		names = append(names, name)
		notes = append(notes, n)
	}
	s.mu.Unlock()
	var out []string
	for i, n := range notes {
		if msg := n(); msg != "" {
			out = append(out, fmt.Sprintf("note: %s: %s", names[i], msg))
		}
	}
	sort.Strings(out)
	return out
}

func writeHealth(w http.ResponseWriter, failures, notes []string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(failures) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, f := range failures {
			fmt.Fprintln(w, f) //nolint:errcheck,gosec // client disconnect
		}
	} else {
		fmt.Fprintln(w, "ok") //nolint:errcheck,gosec // client disconnect
	}
	for _, n := range notes {
		fmt.Fprintln(w, n) //nolint:errcheck,gosec // client disconnect
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeHealth(w, s.runChecks(), s.runNotes())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	failures := s.runChecks()
	if !s.ready.Load() {
		failures = append([]string{"ready: startup not complete"}, failures...)
	}
	writeHealth(w, failures, s.runNotes())
}
