package telemetry

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, reg *Registry) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck
	return s
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gryphon_server_test_total", "help").Add(3)
	s := newTestServer(t, reg)

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus 0.0.4", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	samples := parsePrometheus(t, string(body))
	if got := samples["gryphon_server_test_total"]; len(got) != 1 || got[0].value != 3 {
		t.Fatalf("scraped sample = %+v, want single 3", got)
	}
}

func TestServerHealthz(t *testing.T) {
	s := newTestServer(t, NewRegistry())
	if code, body := get(t, s, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy /healthz = %d %q, want 200 ok", code, body)
	}

	s.RegisterHealth("disk", func() error { return errors.New("volume closed") })
	s.RegisterHealth("db", func() error { return nil })
	code, body := get(t, s, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failing /healthz code = %d, want 503", code)
	}
	if !strings.Contains(body, "disk: volume closed") {
		t.Fatalf("failing /healthz body = %q, want disk failure named", body)
	}
	if strings.Contains(body, "db") {
		t.Fatalf("failing /healthz body = %q, healthy check should not appear", body)
	}

	s.UnregisterHealth("disk")
	if code, _ := get(t, s, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after unregister = %d, want 200", code)
	}
}

func TestServerReadyz(t *testing.T) {
	s := newTestServer(t, NewRegistry())
	code, body := get(t, s, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "startup not complete") {
		t.Fatalf("pre-ready /readyz = %d %q, want 503 with startup gate", code, body)
	}
	s.SetReady(true)
	if code, _ := get(t, s, "/readyz"); code != http.StatusOK {
		t.Fatalf("post-ready /readyz = %d, want 200", code)
	}
	s.SetReady(false)
	if code, _ := get(t, s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("un-readied /readyz = %d, want 503", code)
	}
}

func TestServerPprof(t *testing.T) {
	s := newTestServer(t, NewRegistry())
	code, body := get(t, s, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, want 200 with profile index", code)
	}
	if code, _ := get(t, s, "/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("goroutine profile = %d, want 200", code)
	}
	if code, _ := get(t, s, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("cmdline = %d, want 200", code)
	}
}

func TestServerEphemeralPortAndClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr := s.Addr()
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr = %q, want resolved ephemeral port", addr)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Port is released: a fresh connection must fail (with a small retry
	// window for the kernel to tear the listener down).
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server still serving after Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerNotes(t *testing.T) {
	s := newTestServer(t, NewRegistry())
	msg := ""
	s.RegisterNote("upstream", func() string { return msg })

	// Empty notes are suppressed entirely.
	if code, body := get(t, s, "/healthz"); code != http.StatusOK || strings.Contains(body, "note:") {
		t.Fatalf("/healthz with empty note = %d %q, want plain ok", code, body)
	}

	// A non-empty note rides along without changing the status code.
	msg = "failed over to mid2 (primary mid1)"
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz with note = %d, want 200 (notes are informational)", code)
	}
	if !strings.Contains(body, "note: upstream: failed over to mid2") {
		t.Fatalf("/healthz body = %q, want the note printed", body)
	}

	// Notes also appear alongside failures.
	s.RegisterHealth("disk", func() error { return errors.New("gone") })
	code, body = get(t, s, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "note: upstream:") {
		t.Fatalf("failing /healthz = %d %q, want 503 with the note still printed", code, body)
	}

	// And on /readyz.
	s.UnregisterHealth("disk")
	s.SetReady(true)
	if code, body := get(t, s, "/readyz"); code != http.StatusOK || !strings.Contains(body, "note: upstream:") {
		t.Fatalf("/readyz = %d %q, want 200 with note", code, body)
	}
}
