package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	if again := r.Counter("test_total", "other help"); again != c {
		t.Fatalf("second Counter call returned a different instrument")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5126 {
		t.Fatalf("Sum = %v, want 5126", got)
	}
	// Cumulative: le=10 covers {5,10}, le=100 adds {11,100}, le=1000 adds
	// nothing, +Inf adds {5000}.
	want := []int64{2, 4, 4, 5}
	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

func TestDurationHistogramScale(t *testing.T) {
	r := NewRegistry()
	h := r.DurationHistogram("test_seconds", "help", []time.Duration{time.Millisecond})
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Sum(); got != 0.5 {
		t.Fatalf("Sum = %v, want 0.5 (seconds)", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_name", "help")
	defer func() {
		if recover() == nil {
			t.Fatalf("Gauge on a counter name did not panic")
		}
	}()
	r.Gauge("test_name", "help")
}

func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 16)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("shared_total", "help")
			c.Inc()
			counters[i] = c
		}(i)
	}
	wg.Wait()
	for _, c := range counters[1:] {
		if c != counters[0] {
			t.Fatalf("concurrent registration returned distinct instruments")
		}
	}
	if got := counters[0].Load(); got != 16 {
		t.Fatalf("Load = %d, want 16", got)
	}
}

// promMetric is one parsed sample from the exposition text.
type promMetric struct {
	labels map[string]string
	value  float64
}

// parsePrometheus is a strict parser for the text exposition format subset
// the registry emits. It fails the test on any malformed line, TYPE/HELP
// ordering violation, or sample without a preceding TYPE.
func parsePrometheus(t *testing.T, text string) map[string][]promMetric {
	t.Helper()
	types := make(map[string]string)
	samples := make(map[string][]promMetric)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q in %q", parts[1], line)
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		// Sample: name[{labels}] value
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		value, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := line[:sp]
		labels := make(map[string]string)
		if i := strings.Index(name, "{"); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			for _, pair := range strings.Split(name[i+1:len(name)-1], ",") {
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
				val, err := strconv.Unquote(kv[1])
				if err != nil {
					t.Fatalf("unquoted label value %q in %q", kv[1], line)
				}
				labels[kv[0]] = val
			}
			name = name[:i]
		}
		// Every sample must belong to a declared family: the name itself,
		// or its _bucket/_sum/_count series for histograms.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		samples[name] = append(samples[name], promMetric{labels: labels, value: value})
	}
	return samples
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gryphon_test_events_total", "Events observed.")
	c.Add(7)
	g := r.Gauge("gryphon_test_depth", "Queue depth.")
	g.Set(-2)
	h := r.DurationHistogram("gryphon_test_latency_seconds", "Latency.",
		[]time.Duration{5 * time.Millisecond, 2500 * time.Millisecond})
	h.ObserveDuration(1 * time.Millisecond)
	h.ObserveDuration(1 * time.Second)
	h.ObserveDuration(10 * time.Second)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	samples := parsePrometheus(t, text)

	if got := samples["gryphon_test_events_total"]; len(got) != 1 || got[0].value != 7 {
		t.Fatalf("counter sample = %+v, want single 7", got)
	}
	if got := samples["gryphon_test_depth"]; len(got) != 1 || got[0].value != -2 {
		t.Fatalf("gauge sample = %+v, want single -2", got)
	}
	buckets := samples["gryphon_test_latency_seconds_bucket"]
	if len(buckets) != 3 {
		t.Fatalf("bucket samples = %+v, want 3 (two bounds + +Inf)", buckets)
	}
	wantBuckets := map[string]float64{"0.005": 1, "2.5": 2, "+Inf": 3}
	for _, b := range buckets {
		le := b.labels["le"]
		want, ok := wantBuckets[le]
		if !ok {
			t.Fatalf("unexpected bucket le=%q", le)
		}
		if b.value != want {
			t.Fatalf("bucket le=%q = %v, want %v", le, b.value, want)
		}
	}
	if got := samples["gryphon_test_latency_seconds_count"]; len(got) != 1 || got[0].value != 3 {
		t.Fatalf("histogram count = %+v, want 3", got)
	}
	if got := samples["gryphon_test_latency_seconds_sum"]; len(got) != 1 || got[0].value != 11.001 {
		t.Fatalf("histogram sum = %+v, want 11.001", got)
	}

	// Output must be sorted by name for stable scrapes.
	var names []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			names = append(names, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("TYPE families not sorted: %v", names)
		}
	}
}

func TestDefaultRegistryIsProcessWide(t *testing.T) {
	name := fmt.Sprintf("gryphon_test_default_%d_total", time.Now().UnixNano())
	a := Default().Counter(name, "help")
	b := Default().Counter(name, "help")
	if a != b {
		t.Fatalf("Default() returned registries with distinct instruments")
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{
		0.005: "0.005",
		1:     "1",
		2.5:   "2.5",
		10:    "10",
	}
	for in, want := range cases {
		if got := formatBound(in); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusLabeledFamilies: instruments registered with an
// inline label set (`name{key="value"}`) — the per-shard broker metrics —
// render as one metric family: HELP/TYPE once, one sample per series,
// histogram suffixes folding the series labels in with le.
func TestWritePrometheusLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		g := r.Gauge(fmt.Sprintf("gryphon_test_shard_depth{shard=\"%d\"}", i),
			"Tasks queued per shard.")
		g.Set(int64(10 + i))
	}
	h := r.Histogram("gryphon_test_batch{link=\"a\"}", "Batch sizes.", []int64{1, 8})
	h.Observe(1)
	h.Observe(5)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	samples := parsePrometheus(t, text)

	depth := samples["gryphon_test_shard_depth"]
	if len(depth) != 3 {
		t.Fatalf("labeled gauge series = %+v, want 3", depth)
	}
	seen := map[string]float64{}
	for _, s := range depth {
		seen[s.labels["shard"]] = s.value
	}
	for i := 0; i < 3; i++ {
		if seen[fmt.Sprint(i)] != float64(10+i) {
			t.Fatalf("shard %d depth = %v, want %d", i, seen[fmt.Sprint(i)], 10+i)
		}
	}
	if n := strings.Count(text, "# TYPE gryphon_test_shard_depth "); n != 1 {
		t.Fatalf("TYPE emitted %d times for labeled family, want 1", n)
	}
	if n := strings.Count(text, "# HELP gryphon_test_shard_depth "); n != 1 {
		t.Fatalf("HELP emitted %d times for labeled family, want 1", n)
	}

	buckets := samples["gryphon_test_batch_bucket"]
	if len(buckets) != 3 {
		t.Fatalf("labeled histogram buckets = %+v, want 3", buckets)
	}
	for _, b := range buckets {
		if b.labels["link"] != "a" {
			t.Fatalf("bucket lost series label: %+v", b)
		}
	}
	if got := samples["gryphon_test_batch_count"]; len(got) != 1 ||
		got[0].value != 2 || got[0].labels["link"] != "a" {
		t.Fatalf("labeled histogram count = %+v", got)
	}
}
