package telemetry

import (
	"testing"
	"time"
)

// The acceptance bar for hot-path instrumentation is <50 ns per record on
// commodity hardware; these benchmarks are run in CI as a smoke test
// (-benchtime=1x) and locally for the real numbers.

func BenchmarkTelemetryCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryGauge(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkTelemetryHistogram(b *testing.B) {
	h := NewRegistry().DurationHistogram("bench_seconds", "help", FastBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%1000) * int64(time.Microsecond))
	}
}

func BenchmarkTelemetryCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_par_total", "help")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
