// Package telemetry is the runtime observability subsystem of the broker
// stack: a registry of named instruments (atomic counters, gauges, and
// fixed-bucket histograms) with lock-free record paths, exposed over an
// admin HTTP endpoint in Prometheus text exposition format together with
// health/readiness checks and net/http/pprof profiles (see server.go).
//
// Unlike internal/metrics — the harness-driven experiment recorder that
// regenerates the paper's figures after a run — telemetry instruments are
// live: they are sampled while a broker serves traffic, and they are cheap
// enough (single uncontended atomic add, well under 50ns; see
// BenchmarkTelemetryCounter) to sit on every hot path of the stack:
// routing, constream/catchup delivery, PFS writes and reads, log-volume
// appends and fsyncs, metastore commits, overlay links, and JMS acks.
//
// Instruments are registered once (typically in a package-level var block)
// and recorded through a pointer, so the hot path never touches the
// registry map or any lock. Registration itself is concurrency-safe and
// idempotent: asking for an existing name returns the existing instrument;
// asking for an existing name with a different instrument kind panics
// (a programming error worth failing loudly on).
//
// The package is stdlib-only by design.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing instrument. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotone; the
// counter does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations. The
// record path is lock-free: a short linear scan over the (small, fixed)
// bucket bounds followed by three uncontended atomic adds. Bounds are
// upper bounds, ascending; observations above the last bound land in the
// implicit +Inf bucket.
//
// The display scale divides raw observed values for exposition, so a
// histogram can observe integer nanoseconds internally while exporting
// seconds (the Prometheus base unit for time).
type Histogram struct {
	bounds []int64        // ascending upper bounds (raw units)
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // raw units
	scale  float64      // raw units per display unit (e.g. 1e9 ns/s)
}

func newHistogram(bounds []int64, scale float64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	if scale <= 0 {
		scale = 1
	}
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		scale:  scale,
	}
}

// Observe records one raw-unit observation.
func (h *Histogram) Observe(v int64) {
	i := 0
	// Linear scan: bucket counts are small (≤ ~20) and observations skew
	// toward the low buckets, so this beats binary search in practice and
	// keeps the path branch-predictable.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration into a histogram created with
// DurationHistogram (raw unit: nanoseconds).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the sum of observations in display units.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / h.scale }

// snapshot returns cumulative bucket counts aligned with bounds plus +Inf.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Instrument kinds, for registry bookkeeping.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered instrument.
type entry struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; instrument
// record paths never touch the registry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// defaultRegistry is the process-wide registry every package-level
// instrument lives in; the admin server exposes it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// lookup returns the entry for name after checking its kind, or nil when
// absent. Callers hold r.mu.
func (r *Registry) lookup(name string, k kind) *entry {
	e, ok := r.entries[name]
	if !ok {
		return nil
	}
	if e.kind != k {
		panic(fmt.Sprintf("telemetry: instrument %q registered as %s, requested as %s",
			name, e.kind, k))
	}
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounter); e != nil {
		return e.c
	}
	c := &Counter{}
	r.entries[name] = &entry{name: name, help: help, kind: kindCounter, c: c}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindGauge); e != nil {
		return e.g
	}
	g := &Gauge{}
	r.entries[name] = &entry{name: name, help: help, kind: kindGauge, g: g}
	return g
}

// Histogram returns the named value histogram with the given raw upper
// bounds, creating it on first use (bounds are ignored when it exists).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	return r.histogram(name, help, bounds, 1)
}

// DurationHistogram returns the named latency histogram. Durations are
// recorded in nanoseconds and exposed in seconds; by convention the name
// should end in "_seconds".
func (r *Registry) DurationHistogram(name, help string, bounds []time.Duration) *Histogram {
	raw := make([]int64, len(bounds))
	for i, d := range bounds {
		raw[i] = int64(d)
	}
	return r.histogram(name, help, raw, 1e9)
}

func (r *Registry) histogram(name, help string, bounds []int64, scale float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindHistogram); e != nil {
		return e.h
	}
	h := newHistogram(bounds, scale)
	r.entries[name] = &entry{name: name, help: help, kind: kindHistogram, h: h}
	return h
}

// sortedEntries snapshots the registered entries in name order.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// splitLabels divides an instrument name into its metric family and an
// optional label set: a name like `depth{shard="0"}` belongs to family
// "depth" with labels `shard="0"`. Labeled instruments are how this
// registry models Prometheus label dimensions without a label API: each
// labeled series is its own instrument, and rendering groups them into
// one family.
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Instruments whose names carry a
// label set (`name{key="value"}`) are grouped into one metric family:
// HELP and TYPE are emitted once per family (sortedEntries keeps a
// family's series adjacent), and each series renders with its labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, e := range r.sortedEntries() {
		family, labels := splitLabels(e.name)
		if family != lastFamily {
			lastFamily = family
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, e.kind); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Load())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.g.Load())
		case kindHistogram:
			err = writeHistogram(w, family, labels, e.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, family, labels string, h *Histogram) error {
	// Suffixes attach to the family, with the series labels folded into
	// the brace set (`f_bucket{shard="0",le="1"}`).
	withLabels := func(suffix, extra string) string {
		all := labels
		if extra != "" {
			if all != "" {
				all += ","
			}
			all += extra
		}
		if all == "" {
			return family + suffix
		}
		return family + suffix + "{" + all + "}"
	}
	cum := h.snapshot()
	for i, bound := range h.bounds {
		le := formatBound(float64(bound) / h.scale)
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabels("_bucket", fmt.Sprintf("le=%q", le)), cum[i]); err != nil {
			return err
		}
	}
	total := cum[len(cum)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", withLabels("_bucket", `le="+Inf"`), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", withLabels("_sum", ""), formatBound(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", withLabels("_count", ""), total)
	return err
}

// formatBound renders a float without trailing-zero noise ("0.005", "1",
// "2.5") the way Prometheus clients conventionally do.
func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DefBuckets are general-purpose latency bounds (Prometheus defaults):
// 5ms … 10s.
var DefBuckets = []time.Duration{
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, 1 * time.Second, 2500 * time.Millisecond,
	5 * time.Second, 10 * time.Second,
}

// FastBuckets are microsecond-scale bounds for in-process hot paths
// (metastore commits, PFS syncs): 10µs … 1s.
var FastBuckets = []time.Duration{
	10 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
	500 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
	500 * time.Millisecond, 1 * time.Second,
}

// SizeBuckets are exponential count/size bounds for batch sizes and walk
// lengths: 1 … 65536.
var SizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}
