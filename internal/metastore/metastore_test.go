package metastore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestStore(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := openTestStore(t, Options{Sync: SyncNone})
	if err := s.Begin().Put("t", "k", []byte("v1")).Commit(); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("t", "k")
	if !ok || string(got) != "v1" {
		t.Fatalf("Get = %q/%v", got, ok)
	}
	// Returned value is a copy.
	got[0] = 'X'
	if again, _ := s.Get("t", "k"); string(again) != "v1" {
		t.Error("Get aliased internal state")
	}
	if err := s.Begin().Delete("t", "k").Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("t", "k"); ok {
		t.Error("deleted key still present")
	}
	if _, ok := s.Get("missing-table", "k"); ok {
		t.Error("missing table returned a value")
	}
}

func TestUint64Helpers(t *testing.T) {
	s, _ := openTestStore(t, Options{Sync: SyncNone})
	if err := s.Begin().PutUint64("t", "n", 12345).Commit(); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetUint64("t", "n")
	if !ok || got != 12345 {
		t.Errorf("GetUint64 = %d/%v", got, ok)
	}
	if _, ok := s.GetUint64("t", "missing"); ok {
		t.Error("missing key returned a value")
	}
	// Wrong width value.
	s.Begin().Put("t", "short", []byte{1}).Commit() //nolint:errcheck
	if _, ok := s.GetUint64("t", "short"); ok {
		t.Error("short value decoded as uint64")
	}
}

func TestTransactionAtomicity(t *testing.T) {
	s, _ := openTestStore(t, Options{Sync: SyncNone})
	tx := s.Begin().
		Put("a", "k1", []byte("1")).
		Put("b", "k2", []byte("2")).
		Delete("a", "never-existed")
	if tx.Len() != 3 {
		t.Errorf("Len = %d", tx.Len())
	}
	// Nothing visible before commit.
	if _, ok := s.Get("a", "k1"); ok {
		t.Fatal("staged write visible before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a", "k1"); !ok {
		t.Error("k1 missing after commit")
	}
	if _, ok := s.Get("b", "k2"); !ok {
		t.Error("k2 missing after commit")
	}
	// Empty transaction is a no-op and doesn't count as a commit.
	before := s.Commits()
	if err := s.Begin().Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Commits() != before {
		t.Error("empty commit counted")
	}
}

func TestKeys(t *testing.T) {
	s, _ := openTestStore(t, Options{Sync: SyncNone})
	s.Begin().Put("t", "b", nil).Put("t", "a", nil).Put("t", "c", nil).Commit() //nolint:errcheck
	keys := s.Keys("t")
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("Keys = %v", keys)
	}
	if got := s.Keys("none"); len(got) != 0 {
		t.Errorf("Keys of missing table = %v", got)
	}
}

func TestRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := s.Begin().PutUint64("t", key, uint64(i*i)).Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.Begin().Delete("t", "k10").Commit() //nolint:errcheck
	s.Close()                             //nolint:errcheck

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	defer s2.Close() //nolint:errcheck
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		got, ok := s2.GetUint64("t", key)
		if i == 10 {
			if ok {
				t.Error("deleted key survived recovery")
			}
			continue
		}
		if !ok || got != uint64(i*i) {
			t.Errorf("recovered %s = %d/%v, want %d", key, got, ok, i*i)
		}
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, _ := Open(path, Options{})                        //nolint:errcheck
	s.Begin().Put("t", "good", []byte("yes")).Commit()   //nolint:errcheck
	s.Begin().Put("t", "torn", []byte("maybe")).Commit() //nolint:errcheck
	s.Close()                                            //nolint:errcheck

	info, _ := os.Stat(path) //nolint:errcheck
	if err := os.Truncate(path, info.Size()-2); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("re-open torn: %v", err)
	}
	defer s2.Close() //nolint:errcheck
	if _, ok := s2.Get("t", "good"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := s2.Get("t", "torn"); ok {
		t.Error("torn record survived")
	}
	// Store is writable after tail truncation.
	if err := s2.Begin().Put("t", "new", []byte("x")).Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCompactsAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.wal")
	s, _ := Open(path, Options{Sync: SyncNone}) //nolint:errcheck
	// Overwrite the same keys many times to bloat the WAL.
	for i := 0; i < 200; i++ {
		s.Begin().PutUint64("t", "hot", uint64(i)).Commit() //nolint:errcheck
	}
	infoBefore, _ := os.Stat(path) //nolint:errcheck
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	infoAfter, _ := os.Stat(path) //nolint:errcheck
	if infoAfter.Size() >= infoBefore.Size() {
		t.Errorf("checkpoint did not shrink WAL: %d -> %d", infoBefore.Size(), infoAfter.Size())
	}
	if got, _ := s.GetUint64("t", "hot"); got != 199 {
		t.Errorf("hot = %d after checkpoint", got)
	}
	// Writes continue and survive recovery.
	s.Begin().PutUint64("t", "hot", 500).Commit() //nolint:errcheck
	s.Close()                                     //nolint:errcheck
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	if got, _ := s2.GetUint64("t", "hot"); got != 500 {
		t.Errorf("hot = %d after checkpoint+recovery", got)
	}
}

func TestClosedStore(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := s.Begin().Put("t", "k", nil).Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("commit on closed = %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("checkpoint on closed = %v", err)
	}
}

func TestCommitLatencySimulation(t *testing.T) {
	s, _ := openTestStore(t, Options{Sync: SyncNone, CommitLatency: 5 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 4; i++ {
		s.Begin().PutUint64("t", "k", uint64(i)).Commit() //nolint:errcheck
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("4 commits with 5ms latency took %v", elapsed)
	}
}

func TestConcurrentCommits(t *testing.T) {
	s, path := openTestStore(t, Options{Sync: SyncGroup})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Begin().PutUint64("t", key, uint64(i)).Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Commits(); got != workers*per {
		t.Errorf("Commits = %d, want %d", got, workers*per)
	}
	s.Close() //nolint:errcheck
	// Everything durable.
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	if got := len(s2.Keys("t")); got != workers*per {
		t.Errorf("recovered %d keys, want %d", got, workers*per)
	}
}

// Randomized model check: the store agrees with an in-memory map across
// commits, checkpoints, and recoveries.
func TestRandomizedModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	path := filepath.Join(t.TempDir(), "meta.wal")
	model := map[string]string{}
	s, err := Open(path, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 500; step++ {
		switch rng.Intn(20) {
		case 0: // recovery cycle
			s.Close() //nolint:errcheck
			s, err = Open(path, Options{Sync: SyncNone})
			if err != nil {
				t.Fatalf("step %d re-open: %v", step, err)
			}
		case 1:
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
		default:
			key := fmt.Sprintf("k%d", rng.Intn(30))
			if rng.Intn(4) == 0 {
				s.Begin().Delete("t", key).Commit() //nolint:errcheck
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d", rng.Int())
				s.Begin().Put("t", key, []byte(val)).Commit() //nolint:errcheck
				model[key] = val
			}
		}
	}
	for key, want := range model {
		got, ok := s.Get("t", key)
		if !ok || string(got) != want {
			t.Errorf("final %s = %q/%v, want %q", key, got, ok, want)
		}
	}
	if got := len(s.Keys("t")); got != len(model) {
		t.Errorf("key count %d, want %d", got, len(model))
	}
	s.Close() //nolint:errcheck
}
