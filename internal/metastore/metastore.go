// Package metastore implements the durable table store the SHB keeps its
// control state in: latestDelivered(p), released(s,p), the PFS
// lastIndex/lastTimestamp metadata, and — for JMS subscribers — the
// server-side checkpoint tokens CT(s).
//
// The paper stores these in DB2 tables accessed over a shared-memory JDBC
// driver (section 5). This package substitutes a write-ahead-logged
// key/value store with the two properties the evaluation depends on:
//
//   - transactional batched commits: many updates commit as one unit with a
//     single synchronization point, which is what the JMS auto-acknowledge
//     experiment (section 5.2) exploits by batching CT updates across
//     requests;
//   - a configurable per-commit cost (fsync and/or simulated latency) so
//     the DB2-with-battery-backed-write-cache regime can be modeled.
//
// Group commit is automatic: concurrent committers that arrive while a
// flush is in flight share the next fsync.
package metastore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/logvol"
	"repro/internal/telemetry"
)

// Store instruments (process-wide; see internal/telemetry).
var (
	tCommits = telemetry.Default().Counter("gryphon_metastore_commits_total",
		"Metastore transactions committed.")
	tCommitSeconds = telemetry.Default().DurationHistogram("gryphon_metastore_commit_seconds",
		"Metastore commit latency (WAL write, group fsync, modeled DB latency).",
		telemetry.FastBuckets)
	tCommitOps = telemetry.Default().Histogram("gryphon_metastore_commit_ops",
		"Operations batched per metastore commit.", telemetry.SizeBuckets)
)

// SyncMode controls commit durability.
type SyncMode uint8

// Sync modes.
const (
	// SyncGroup fsyncs the WAL on commit, coalescing concurrent commits
	// into one fsync (group commit). The default.
	SyncGroup SyncMode = iota + 1
	// SyncNone treats OS buffer writes as stable; models the paper's
	// battery-backed disk write cache (section 5.2).
	SyncNone
)

// Options configures a store.
type Options struct {
	// Sync selects commit durability; zero value means SyncGroup.
	Sync SyncMode
	// CommitLatency, if positive, is added to every commit after the
	// write completes; it models the round-trip and server cost of the
	// paper's DB2 commits so commit-bound experiments (JMS auto-ack)
	// show the right shape even on fast local disks.
	CommitLatency time.Duration
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("metastore: closed")

// Store is a durable, transactional key/value store organized into named
// tables. All methods are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	tables  map[string]map[string][]byte
	wal     *os.File
	path    string
	opts    Options
	closed  bool
	commits int64

	// Group commit rides the shared fsync gate from internal/logvol:
	// committers that arrive while a flush is in flight wait for it and
	// usually find their commit already covered. gen counts WAL swaps
	// (Checkpoint) so a flush racing a swap knows its descriptor is stale.
	gate    logvol.Gate
	written int64 // commits written to the WAL (under mu)
	gen     int
}

// Open opens or creates the store rooted at path (a single WAL file).
func Open(path string, opts Options) (*Store, error) {
	if opts.Sync == 0 {
		opts.Sync = SyncGroup
	}
	wal, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metastore open: %w", err)
	}
	s := &Store{
		tables: make(map[string]map[string][]byte),
		wal:    wal,
		path:   path,
		opts:   opts,
	}
	if err := s.replay(); err != nil {
		wal.Close() //nolint:errcheck,gosec // best-effort cleanup
		return nil, err
	}
	return s, nil
}

// replay reloads state from the WAL, truncating a torn tail.
func (s *Store) replay() error {
	info, err := s.wal.Stat()
	if err != nil {
		return fmt.Errorf("metastore replay: %w", err)
	}
	fileSize := info.Size()
	var off int64
	hdr := make([]byte, 8)
	for off+8 <= fileSize {
		if _, err := s.wal.ReadAt(hdr, off); err != nil {
			break
		}
		plen := int64(binary.BigEndian.Uint32(hdr))
		wantCRC := binary.BigEndian.Uint32(hdr[4:])
		if off+8+plen > fileSize || plen > 1<<30 {
			break
		}
		payload := make([]byte, plen)
		if _, err := s.wal.ReadAt(payload, off+8); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		s.applyRecord(payload)
		off += 8 + plen
	}
	if off < fileSize {
		if err := s.wal.Truncate(off); err != nil {
			return fmt.Errorf("metastore replay truncate: %w", err)
		}
	}
	if _, err := s.wal.Seek(off, 0); err != nil {
		return fmt.Errorf("metastore replay seek: %w", err)
	}
	return nil
}

// applyRecord applies one committed transaction's ops to the in-memory
// tables. The steady-state overwrite path (existing table, existing key,
// same-length value) allocates nothing: table and key lookups use the
// compiler's zero-copy map access on string(bytes) conversions, and the
// stored value slice is overwritten in place (Get hands out copies, so no
// caller can alias it).
func (s *Store) applyRecord(payload []byte) {
	off := 0
	readBytes := func() ([]byte, bool) {
		if off+2 > len(payload) {
			return nil, false
		}
		n := int(binary.BigEndian.Uint16(payload[off:]))
		off += 2
		if off+n > len(payload) {
			return nil, false
		}
		b := payload[off : off+n]
		off += n
		return b, true
	}
	for off < len(payload) {
		op := payload[off]
		off++
		table, ok := readBytes()
		if !ok {
			return
		}
		key, ok := readBytes()
		if !ok {
			return
		}
		switch op {
		case opPut:
			if off+4 > len(payload) {
				return
			}
			n := int(binary.BigEndian.Uint32(payload[off:]))
			off += 4
			if off+n > len(payload) {
				return
			}
			val := payload[off : off+n]
			off += n
			t := s.tables[string(table)]
			if t == nil {
				t = make(map[string][]byte)
				s.tables[string(table)] = t
			}
			if old, exists := t[string(key)]; exists && len(old) == n {
				copy(old, val)
			} else {
				cp := make([]byte, n)
				copy(cp, val)
				t[string(key)] = cp
			}
		case opDelete:
			if t := s.tables[string(table)]; t != nil {
				delete(t, string(key))
			}
		default:
			return
		}
	}
}

const (
	opPut    = byte(1)
	opDelete = byte(2)
)

// Get returns the value stored under (table, key). The returned slice is a
// copy.
func (s *Store) Get(table, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[table]
	if t == nil {
		return nil, false
	}
	v, ok := t[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// GetUint64 reads a value written by Tx.PutUint64.
func (s *Store) GetUint64(table, key string) (uint64, bool) {
	v, ok := s.Get(table, key)
	if !ok || len(v) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(v), true
}

// Keys returns all keys in the table, sorted.
func (s *Store) Keys(table string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.tables[table]
	out := make([]string, 0, len(t))
	for k := range t {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Ping reports whether the store is open and serviceable; admin health
// checks call it.
func (s *Store) Ping() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// Commits reports the number of transactions committed since open; the JMS
// experiment uses it to show the database commit rate is the bottleneck.
func (s *Store) Commits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commits
}

// Tx is a write transaction. Build it up with Put/Delete and apply it with
// Commit; transactions are atomic and, under SyncGroup, durable once
// Commit returns.
type Tx struct {
	store *Store
	ops   []byte
	count int
}

// txPool recycles transaction shells and their op buffers: the hot
// checkpoint paths commit small transactions at a steady cadence, and the
// shell + ops growth were the last per-commit allocations.
var txPool = sync.Pool{New: func() any { return new(Tx) }}

// Begin starts a new write transaction. The transaction is recycled by
// Commit; it must not be used again afterwards.
func (s *Store) Begin() *Tx {
	tx := txPool.Get().(*Tx)
	tx.store = s
	return tx
}

func (tx *Tx) appendStr(v string) {
	tx.ops = binary.BigEndian.AppendUint16(tx.ops, uint16(len(v)))
	tx.ops = append(tx.ops, v...)
}

// Put stages a write of (table, key) = val.
func (tx *Tx) Put(table, key string, val []byte) *Tx {
	tx.ops = append(tx.ops, opPut)
	tx.appendStr(table)
	tx.appendStr(key)
	tx.ops = binary.BigEndian.AppendUint32(tx.ops, uint32(len(val)))
	tx.ops = append(tx.ops, val...)
	tx.count++
	return tx
}

// PutUint64 stages a write of an 8-byte big-endian integer.
func (tx *Tx) PutUint64(table, key string, val uint64) *Tx {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], val)
	return tx.Put(table, key, buf[:])
}

// Delete stages a delete of (table, key).
func (tx *Tx) Delete(table, key string) *Tx {
	tx.ops = append(tx.ops, opDelete)
	tx.appendStr(table)
	tx.appendStr(key)
	tx.count++
	return tx
}

// Len reports the number of staged operations.
func (tx *Tx) Len() int { return tx.count }

// recycle returns the transaction shell to the pool, dropping buffers
// that grew past a burst size.
func (tx *Tx) recycle() {
	if cap(tx.ops) > 1<<20 {
		tx.ops = nil
	}
	tx.ops = tx.ops[:0]
	tx.count = 0
	tx.store = nil
	txPool.Put(tx)
}

// recPool recycles the framed WAL record built per commit.
var recPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// Commit atomically applies and persists the transaction. An empty
// transaction commits trivially without touching the WAL. Commit consumes
// the transaction (success or failure); it must not be reused.
func (tx *Tx) Commit() error {
	s := tx.store
	if tx.count == 0 {
		tx.recycle()
		return nil
	}
	commitStart := time.Now()
	recp := recPool.Get().(*[]byte)
	rec := (*recp)[:0]
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(tx.ops)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(tx.ops))
	rec = append(rec, tx.ops...)
	putRec := func() {
		if cap(rec) <= 1<<20 {
			*recp = rec[:0]
			recPool.Put(recp)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		putRec()
		tx.recycle()
		return ErrClosed
	}
	if _, err := s.wal.Write(rec); err != nil {
		s.mu.Unlock()
		putRec()
		tx.recycle()
		return fmt.Errorf("metastore commit write: %w", err)
	}
	s.applyRecord(tx.ops)
	s.commits++
	s.written++
	mySeq := s.written
	s.mu.Unlock()
	putRec()
	count := tx.count
	tx.recycle() // tx may be re-acquired by another goroutine from here on

	if s.opts.Sync == SyncGroup {
		if _, err := s.gate.Sync(mySeq, s.topSeq, s.fsyncWAL); err != nil {
			return err
		}
	}
	if s.opts.CommitLatency > 0 {
		time.Sleep(s.opts.CommitLatency)
	}
	tCommits.Inc()
	tCommitOps.Observe(int64(count))
	tCommitSeconds.ObserveDuration(time.Since(commitStart))
	return nil
}

// topSeq reports the highest WAL-written commit sequence (gate "top"
// callback; the flush that follows covers everything up to it).
func (s *Store) topSeq() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.written
}

// fsyncWAL performs one WAL fsync for the gate. The descriptor and
// generation are captured under the lock but the fsync runs unlocked so
// commits keep flowing; if Checkpoint swapped the WAL mid-flight, the swap
// already synced the replacement file, so a stale-generation error is not
// a durability failure.
func (s *Store) fsyncWAL() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	wal, gen := s.wal, s.gen
	s.mu.RUnlock()

	if err := wal.Sync(); err != nil {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.closed {
			return ErrClosed
		}
		if s.gen != gen {
			return nil
		}
		return fmt.Errorf("metastore fsync: %w", err)
	}
	return nil
}

// Checkpoint compacts the WAL to a snapshot of current state. Safe to call
// at any time; concurrent commits are blocked for the duration.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmpPath := s.path + ".ckpt"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("metastore checkpoint: %w", err)
	}
	defer os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup

	// Serialize the whole state as one transaction record.
	var ops []byte
	appendStr := func(v string) {
		ops = binary.BigEndian.AppendUint16(ops, uint16(len(v)))
		ops = append(ops, v...)
	}
	tableNames := make([]string, 0, len(s.tables))
	for name := range s.tables {
		tableNames = append(tableNames, name)
	}
	sort.Strings(tableNames)
	for _, name := range tableNames {
		keys := make([]string, 0, len(s.tables[name]))
		for k := range s.tables[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := s.tables[name][k]
			ops = append(ops, opPut)
			appendStr(name)
			appendStr(k)
			ops = binary.BigEndian.AppendUint32(ops, uint32(len(v)))
			ops = append(ops, v...)
		}
	}
	rec := make([]byte, 0, 8+len(ops))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(ops)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(ops))
	rec = append(rec, ops...)
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close() //nolint:errcheck,gosec // best-effort cleanup
		return fmt.Errorf("metastore checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nolint:errcheck,gosec // best-effort cleanup
		return fmt.Errorf("metastore checkpoint sync: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close() //nolint:errcheck,gosec // best-effort cleanup
		return fmt.Errorf("metastore checkpoint rename: %w", err)
	}
	old := s.wal
	s.wal = tmp
	old.Close() //nolint:errcheck,gosec // replaced file
	// The snapshot was fully synced above: bump the generation so an
	// in-flight gate fsync of the old descriptor knows it is stale, and
	// mark every written commit as covered.
	s.gen++
	s.gate.Cover(s.written)
	if _, err := s.wal.Seek(0, 2); err != nil {
		return fmt.Errorf("metastore checkpoint seek: %w", err)
	}
	return nil
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close() //nolint:errcheck,gosec // already failing
		return fmt.Errorf("metastore close sync: %w", err)
	}
	return s.wal.Close()
}
