// Package metrics provides the lightweight counters, time series, and
// latency histograms the experiment harness uses to regenerate the paper's
// figures. It has no background goroutines; samplers are driven explicitly
// by the harness loop.
//
// Counters and histograms can be bridged to the live telemetry registry
// (internal/telemetry) so a quantity recorded for a benchrunner CSV and
// the same quantity scraped from /metrics share one storage location and
// can never disagree: BoundCounter returns a Counter whose value IS a
// telemetry counter, and Histogram.Mirror forwards every observation into
// a telemetry histogram alongside the local sample buffer.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// a standalone counter; BoundCounter returns one backed by a telemetry
// instrument.
type Counter struct {
	v atomic.Int64
	t *telemetry.Counter // when set, the single storage location
}

// BoundCounter returns a Counter that reads and writes through the named
// counter in the default telemetry registry, so harness CSVs and /metrics
// report the same number.
func BoundCounter(name, help string) *Counter {
	return &Counter{t: telemetry.Default().Counter(name, help)}
}

// Inc adds one.
func (c *Counter) Inc() {
	if c.t != nil {
		c.t.Inc()
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c.t != nil {
		c.t.Add(n)
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c.t != nil {
		return c.t.Load()
	}
	return c.v.Load()
}

// Gauge is an atomically readable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Point is one sample of a time series: T seconds since the series start,
// V the sampled value.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series. It is safe for concurrent use.
type Series struct {
	mu     sync.Mutex
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{name: name}
}

// Name reports the series name.
func (s *Series) Name() string { return s.name }

// Append adds a sample.
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = append(s.points, Point{T: t, V: v})
}

// Points returns a copy of the samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len reports the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Mean returns the average sample value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// WriteCSV writes "t,<name>" rows to w.
func (s *Series) WriteCSV(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(w, "t_seconds,%s\n", s.name); err != nil {
		return err
	}
	for _, p := range s.points {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f\n", p.T, p.V); err != nil {
			return err
		}
	}
	return nil
}

// RateSampler converts a counter into a rate series: each call to Sample
// appends (now, delta/elapsed) to the series.
type RateSampler struct {
	counter *Counter
	series  *Series
	start   time.Time
	mu      sync.Mutex
	lastT   time.Time
	lastV   int64
}

// NewRateSampler returns a sampler of c into a new series with the given
// name, anchored at start.
func NewRateSampler(name string, c *Counter, start time.Time) *RateSampler {
	return &RateSampler{
		counter: c,
		series:  NewSeries(name),
		start:   start,
		lastT:   start,
	}
}

// Sample records the rate since the previous sample.
func (r *RateSampler) Sample(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.counter.Load()
	dt := now.Sub(r.lastT).Seconds()
	if dt <= 0 {
		return
	}
	rate := float64(v-r.lastV) / dt
	r.series.Append(now.Sub(r.start).Seconds(), rate)
	r.lastT, r.lastV = now, v
}

// Series returns the underlying rate series.
func (r *RateSampler) Series() *Series { return r.series }

// GaugeSampler samples an arbitrary value function into a series.
type GaugeSampler struct {
	fn     func() float64
	series *Series
	start  time.Time
}

// NewGaugeSampler returns a sampler of fn anchored at start.
func NewGaugeSampler(name string, fn func() float64, start time.Time) *GaugeSampler {
	return &GaugeSampler{fn: fn, series: NewSeries(name), start: start}
}

// Sample appends the current value.
func (g *GaugeSampler) Sample(now time.Time) {
	g.series.Append(now.Sub(g.start).Seconds(), g.fn())
}

// Series returns the underlying series.
func (g *GaugeSampler) Series() *Series { return g.series }

// Histogram accumulates durations and reports order statistics. It is safe
// for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	mirror  *telemetry.Histogram
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Mirror forwards every subsequent observation into the named duration
// histogram in the default telemetry registry (bucketed for /metrics) in
// addition to the local sample buffer (exact quantiles for CSVs). It
// returns h for chaining.
func (h *Histogram) Mirror(name, help string, buckets []time.Duration) *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mirror = telemetry.Default().DurationHistogram(name, help, buckets)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	if h.mirror != nil {
		h.mirror.ObserveDuration(d)
	}
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean reports the average duration, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range h.samples {
		sum += d
	}
	return sum / time.Duration(len(h.samples))
}

// Quantile reports the q-quantile (0 <= q <= 1), or 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(q * float64(len(h.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// Stddev reports the standard deviation of observations.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	var sum time.Duration
	for _, d := range h.samples {
		sum += d
	}
	mean := float64(sum) / float64(n)
	var ss float64
	for _, d := range h.samples {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(sqrt(ss / float64(n-1)))
}

// sqrt is Newton's method on float64, avoiding a math import for one call.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
