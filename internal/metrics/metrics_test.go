package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1010 {
		t.Errorf("Counter = %d, want %d", got, 8*1010)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Errorf("Gauge = %d", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("x")
	if s.Name() != "x" || s.Mean() != 0 {
		t.Error("empty series basics broken")
	}
	s.Append(0, 10)
	s.Append(1, 20)
	s.Append(2, 30)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 20 {
		t.Errorf("Mean = %v", got)
	}
	pts := s.Points()
	pts[0].V = 999 // copy, not alias
	if s.Points()[0].V != 10 {
		t.Error("Points aliased internal state")
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 || lines[0] != "t_seconds,x" {
		t.Errorf("CSV = %q", sb.String())
	}
}

func TestRateSampler(t *testing.T) {
	var c Counter
	start := time.Now()
	r := NewRateSampler("rate", &c, start)
	c.Add(100)
	r.Sample(start.Add(time.Second))
	c.Add(50)
	r.Sample(start.Add(2 * time.Second))
	r.Sample(start.Add(2 * time.Second)) // zero dt: dropped
	pts := r.Series().Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if math.Abs(pts[0].V-100) > 1e-6 || math.Abs(pts[1].V-50) > 1e-6 {
		t.Errorf("rates = %v", pts)
	}
}

func TestGaugeSampler(t *testing.T) {
	v := 1.5
	start := time.Now()
	g := NewGaugeSampler("g", func() float64 { return v }, start)
	g.Sample(start.Add(time.Second))
	v = 2.5
	g.Sample(start.Add(2 * time.Second))
	pts := g.Series().Points()
	if len(pts) != 2 || pts[0].V != 1.5 || pts[1].V != 2.5 {
		t.Errorf("gauge samples = %v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Error("empty histogram basics broken")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v", got)
	}
	med := h.Quantile(0.5)
	if med < 49*time.Millisecond || med > 52*time.Millisecond {
		t.Errorf("median = %v", med)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	// Stddev of 1..100 ms is ~29.0 ms.
	sd := h.Stddev()
	if sd < 28*time.Millisecond || sd > 30*time.Millisecond {
		t.Errorf("Stddev = %v", sd)
	}
	// Observing after a quantile read keeps working.
	h.Observe(200 * time.Millisecond)
	if got := h.Max(); got != 200*time.Millisecond {
		t.Errorf("Max after new observation = %v", got)
	}
}

func TestSqrt(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 1e12} {
		got := sqrt(x)
		want := math.Sqrt(x)
		if math.Abs(got-want) > 1e-6*(want+1) {
			t.Errorf("sqrt(%v) = %v, want %v", x, got, want)
		}
	}
}
