// Package pubend implements publishing endpoints: the persistent, ordered,
// timestamp-indexed event streams maintained by publisher hosting brokers
// (paper, sections 2 and 3).
//
// A pubend is the single place in the whole system where an event is
// persistently logged ("only once event logging"). It assigns strictly
// increasing timestamps, serves recovery nacks from its log, and runs the
// event retention and release protocol: converting an increasing prefix of
// its stream to L (lost) once every durable subscriber has acknowledged it
// — or earlier, under an administratively configured early-release policy.
package pubend

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// The pubend persists a horizon record alongside its event log: the clock
// lease (an upper bound on every virtual timestamp it has stamped or
// asserted silence for) and the release-protocol floors. Without it, a
// pubend whose log has been fully released and chopped — the steady state
// of a healthy system — would recover with a zero clock and stamp new
// events in the past, below the silence horizon it had already asserted;
// downstream exactly-once cursors then discard those events forever, with
// no gap and no nack. Virtual time is never exposed beyond the persisted
// lease, so recovery restoring the clock to the lease can only move it
// forward past everything the previous incarnation promised.
const (
	// leaseWindow is how far past current virtual time each horizon
	// record extends the stamping lease. It bounds both the virtual time
	// skipped by a crash-restart and the horizon write rate (one write
	// per leaseMargin of virtual time under steady load).
	leaseWindow = vtime.Timestamp(2 * time.Second / time.Microsecond)
	leaseMargin = leaseWindow / 2

	horizonRecLen = 32 // lease, loss, released, latestDelivered — 8 bytes each
)

// Policy is an early-release policy: it decides how far the loss horizon
// may advance beyond the fully-acknowledged prefix (paper, section 3).
type Policy interface {
	// LossHorizon returns the highest timestamp that may be converted
	// to L, given the release protocol's aggregated minima: released
	// (Tr), latestDelivered (Td), and the current pubend time (T).
	// Implementations must never return less than released, and must
	// never return more than latestDelivered (so connected non-catchup
	// subscribers never see gaps).
	LossHorizon(released, latestDelivered, now vtime.Timestamp) vtime.Timestamp
}

// RetainUntilReleased is the default policy: no early release; storage is
// reclaimed only once every durable subscriber has acknowledged it.
type RetainUntilReleased struct{}

// LossHorizon implements Policy.
func (RetainUntilReleased) LossHorizon(released, _, _ vtime.Timestamp) vtime.Timestamp {
	return released
}

// MaxRetain is the paper's example PHB-controlled policy: a tick t becomes
// L when t <= Tr, or when t <= Td and T - t > maxRetain. Disconnected
// subscribers whose checkpoint falls more than maxRetain behind risk gap
// messages.
type MaxRetain struct {
	// Retain is the maximum retention interval in virtual time.
	Retain vtime.Timestamp
}

// LossHorizon implements Policy.
func (p MaxRetain) LossHorizon(released, latestDelivered, now vtime.Timestamp) vtime.Timestamp {
	early := now - p.Retain - 1 // highest t with now - t > Retain
	if early > latestDelivered {
		early = latestDelivered
	}
	return vtime.MaxOfTS(released, early)
}

// Options configures a pubend.
type Options struct {
	// ID is the system-wide pubend identifier (required, nonzero).
	ID vtime.PubendID
	// Volume stores the persistent event log (required).
	Volume *logvol.Volume
	// Clock supplies virtual time; nil means a new real-time clock.
	Clock *vtime.Clock
	// Policy is the early-release policy; nil means RetainUntilReleased.
	Policy Policy
	// SyncEveryPublish fsyncs the log on every publish when true. The
	// paper's PHB logs each event before delivery (its 44 ms of the
	// 50 ms end-to-end latency); group-committed configurations leave
	// this false and rely on LogLatency or explicit syncs.
	SyncEveryPublish bool
	// LogLatency, when positive, is added to every publish to model the
	// paper's forced-log disk latency without depending on local disk
	// speed. Used by the end-to-end latency experiment (E1).
	LogLatency time.Duration
}

// Pubend is one publishing endpoint. All methods are safe for concurrent
// use.
type Pubend struct {
	id     vtime.PubendID
	clock  *vtime.Clock
	policy Policy
	opts   Options

	mu      sync.Mutex
	stream  *logvol.Stream
	horizon *logvol.Stream               // persisted clock lease + release floors
	index   []entry                      // (ts, log index) in ascending ts order, above loss
	pending map[vtime.Timestamp]struct{} // publishes still being logged
	lease   vtime.Timestamp              // persisted bound on exposed virtual time
	loss    vtime.Timestamp              // L prefix: everything <= loss is lost
	emitted vtime.Timestamp              // knowledge published downstream up to here

	// Release protocol state: aggregated minima from downstream.
	released        vtime.Timestamp // Tr(p)
	latestDelivered vtime.Timestamp // Td(p)
}

type entry struct {
	ts  vtime.Timestamp
	idx logvol.Index
}

// New opens (and recovers) a pubend.
func New(opts Options) (*Pubend, error) {
	if opts.ID == 0 {
		return nil, errors.New("pubend: ID is required")
	}
	if opts.Volume == nil {
		return nil, errors.New("pubend: Volume is required")
	}
	if opts.Clock == nil {
		opts.Clock = vtime.NewClock()
	}
	if opts.Policy == nil {
		opts.Policy = RetainUntilReleased{}
	}
	stream, err := opts.Volume.Stream("pubend/" + strconv.FormatUint(uint64(opts.ID), 10))
	if err != nil {
		return nil, fmt.Errorf("pubend log: %w", err)
	}
	horizon, err := opts.Volume.Stream("pubend/" + strconv.FormatUint(uint64(opts.ID), 10) + "/horizon")
	if err != nil {
		return nil, fmt.Errorf("pubend horizon log: %w", err)
	}
	p := &Pubend{
		id:      opts.ID,
		clock:   opts.Clock,
		policy:  opts.Policy,
		opts:    opts,
		stream:  stream,
		horizon: horizon,
	}
	if err := p.recover(); err != nil {
		return nil, err
	}
	return p, nil
}

// recover rebuilds the in-memory timestamp index from the log and restores
// the clock lease and release floors from the last horizon record.
func (p *Pubend) recover() error {
	if last := p.horizon.LastIndex(); last != logvol.NilIndex {
		payload, err := p.horizon.Read(last)
		if err != nil {
			return fmt.Errorf("pubend horizon recover: %w", err)
		}
		if len(payload) >= horizonRecLen {
			p.lease = vtime.Timestamp(binary.BigEndian.Uint64(payload))
			p.loss = vtime.Timestamp(binary.BigEndian.Uint64(payload[8:]))
			p.released = vtime.Timestamp(binary.BigEndian.Uint64(payload[16:]))
			p.latestDelivered = vtime.Timestamp(binary.BigEndian.Uint64(payload[24:]))
		}
	}
	var scanErr error
	err := p.stream.ForEach(func(idx logvol.Index, payload []byte) bool {
		ev, _, derr := message.DecodeEvent(payload)
		if derr != nil {
			scanErr = derr
			return false
		}
		p.index = append(p.index, entry{ts: ev.Timestamp, idx: idx})
		return true
	})
	if err != nil {
		return fmt.Errorf("pubend recover: %w", err)
	}
	if scanErr != nil {
		return fmt.Errorf("pubend recover: %w", scanErr)
	}
	sort.Slice(p.index, func(i, j int) bool { return p.index[i].ts < p.index[j].ts })
	// A crash between the horizon write and the chop it announced leaves
	// events at or below the persisted loss horizon in the log; finish
	// the chop now so they stay invisible.
	if cut := sort.Search(len(p.index), func(i int) bool { return p.index[i].ts > p.loss }); cut > 0 {
		if cerr := p.stream.Chop(p.index[cut-1].idx); cerr != nil {
			return fmt.Errorf("pubend recover chop: %w", cerr)
		}
		p.index = append(p.index[:0], p.index[cut:]...)
	}
	var lastTS vtime.Timestamp
	if n := len(p.index); n > 0 {
		lastTS = p.index[n-1].ts
		p.emitted = lastTS
		if p.stream.FirstLiveIndex() > 1 && p.horizon.LastIndex() == logvol.NilIndex {
			// The log was chopped by a build that did not persist
			// horizon records, so adopt the conservative bound
			// "everything before the first live event": ticks below
			// it may have been lost.
			p.released = p.index[0].ts - 1
			p.loss = p.released
			p.latestDelivered = p.released
		}
	}
	if p.loss > p.emitted {
		p.emitted = p.loss
	}
	// Restore virtual time above every timestamp the previous incarnation
	// may have exposed: logged events and the persisted lease, which
	// bounds all silence assertions.
	p.clock.Restore(vtime.MaxOfTS(lastTS, p.lease))
	return nil
}

// persistHorizonLocked writes a horizon record extending the clock lease
// to newLease and recording the current release floors. Caller holds p.mu.
func (p *Pubend) persistHorizonLocked(newLease vtime.Timestamp) error {
	if newLease < p.lease {
		newLease = p.lease
	}
	var buf [horizonRecLen]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(newLease))
	binary.BigEndian.PutUint64(buf[8:], uint64(p.loss))
	binary.BigEndian.PutUint64(buf[16:], uint64(p.released))
	binary.BigEndian.PutUint64(buf[24:], uint64(p.latestDelivered))
	idx, err := p.horizon.Append(buf[:])
	if err != nil {
		return fmt.Errorf("pubend horizon: %w", err)
	}
	p.lease = newLease
	if idx > 1 {
		// Only the latest record matters; reclaim the rest.
		p.horizon.Chop(idx - 1) //nolint:errcheck,gosec // space reclaim only; the record above is durable
	}
	return nil
}

// ID reports the pubend identifier.
func (p *Pubend) ID() vtime.PubendID { return p.id }

// Now reports the pubend's current virtual time T(p).
func (p *Pubend) Now() vtime.Timestamp { return p.clock.Now() }

// PublishResult is the completion handle of one asynchronous publish. It
// resolves once the event is durably logged (per the volume's sync policy)
// and indexed, or with the publish error.
type PublishResult struct {
	done chan struct{}

	mu       sync.Mutex
	ev       *message.Event
	err      error
	complete bool
	cb       func(*message.Event, error)
}

// Done returns a channel closed when the publish resolves.
func (r *PublishResult) Done() <-chan struct{} { return r.done }

// Wait blocks until the publish resolves and returns the stamped event or
// the error.
func (r *PublishResult) Wait() (*message.Event, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ev, r.err
}

// OnDone registers fn to run when the publish resolves (immediately, on
// the caller's goroutine, if it already has). The callback runs off the
// volume's commit loop, so it may acquire broker or pubend locks; it must
// not block indefinitely. Only one callback may be registered.
func (r *PublishResult) OnDone(fn func(*message.Event, error)) {
	r.mu.Lock()
	if r.complete {
		ev, err := r.ev, r.err
		r.mu.Unlock()
		fn(ev, err)
		return
	}
	r.cb = fn
	r.mu.Unlock()
}

func (r *PublishResult) resolve(ev *message.Event, err error) {
	r.mu.Lock()
	r.ev, r.err = ev, err
	r.complete = true
	cb := r.cb
	r.cb = nil
	close(r.done)
	r.mu.Unlock()
	if cb != nil {
		cb(ev, err)
	}
}

// Publish logs the event and assigns its timestamp; the returned event (a
// stamped copy) is durable when Publish returns (subject to the sync
// policy).
func (p *Pubend) Publish(attrs message.Event) (*message.Event, error) {
	return p.PublishAsync(attrs).Wait()
}

// PublishAsync stamps and logs the event without blocking on durability.
// On a SyncGroup volume the append rides the volume's group-commit batch
// and the result resolves once the covering fsync returns — so concurrent
// publishers share fsyncs instead of serializing behind them, and callers
// (the broker's publish path) can pipeline acks. On other policies it
// degrades to the synchronous publish and returns an already-resolved
// result.
func (p *Pubend) PublishAsync(attrs message.Event) *PublishResult {
	res := &PublishResult{done: make(chan struct{})}
	ev := &message.Event{
		Pubend:  p.id,
		Attrs:   attrs.Attrs,
		Payload: attrs.Payload,
	}
	p.mu.Lock()
	ev.Timestamp = p.clock.Next()
	if ev.Timestamp+leaseMargin > p.lease {
		// The horizon append below is durable-on-return on SyncGroup
		// volumes (it rides a commit batch), so the lease invariant holds
		// unchanged: no timestamp is exposed beyond a persisted lease.
		// The wait under p.mu is safe — commit completions never need
		// p.mu; callbacks that do run on the committer's dispatcher.
		if err := p.persistHorizonLocked(ev.Timestamp + leaseWindow); err != nil && ev.Timestamp > p.lease {
			// Never stamp beyond the persisted lease: a crash-restart
			// would reuse the timestamp range.
			p.mu.Unlock()
			res.resolve(nil, err)
			return res
		}
	}
	// Mark the tick in-flight so Drain does not emit knowledge past an
	// event that is still being forced to disk: the paper's PHB delivers
	// an event downstream only after it is logged.
	if p.pending == nil {
		p.pending = make(map[vtime.Timestamp]struct{})
	}
	p.pending[ev.Timestamp] = struct{}{}
	grouped := p.opts.Volume.Policy() == logvol.SyncGroup && p.opts.LogLatency == 0
	bufp := message.GetEncodeBuffer()
	payload := message.AppendEvent((*bufp)[:0], ev)
	*bufp = payload
	p.mu.Unlock()

	if grouped {
		// The payload buffer stays pooled-out until the commit batch
		// resolves; the completion callback recycles it.
		t := p.stream.AppendAsync(payload)
		t.OnDone(func(idx logvol.Index, err error) {
			message.PutEncodeBuffer(bufp)
			if err != nil {
				err = fmt.Errorf("pubend publish: %w", err)
			}
			p.finishPublish(res, ev, idx, err)
		})
		return res
	}

	idx, err := p.stream.Append(payload)
	message.PutEncodeBuffer(bufp)
	if err != nil {
		err = fmt.Errorf("pubend publish: %w", err)
	}
	if err == nil && p.opts.SyncEveryPublish {
		if serr := p.opts.Volume.Sync(); serr != nil {
			err = fmt.Errorf("pubend publish sync: %w", serr)
		}
	}
	if err == nil && p.opts.LogLatency > 0 {
		time.Sleep(p.opts.LogLatency)
	}
	p.finishPublish(res, ev, idx, err)
	return res
}

// finishPublish clears the in-flight mark, indexes the logged event, and
// resolves the result. It runs on the publisher's goroutine (synchronous
// paths) or the volume committer's dispatcher (group path).
func (p *Pubend) finishPublish(res *PublishResult, ev *message.Event, idx logvol.Index, err error) {
	p.mu.Lock()
	delete(p.pending, ev.Timestamp)
	if err != nil {
		p.mu.Unlock()
		res.resolve(nil, err)
		return
	}
	// Concurrent publishes may complete out of timestamp order; keep the
	// index sorted.
	i := sort.Search(len(p.index), func(i int) bool { return p.index[i].ts > ev.Timestamp })
	p.index = append(p.index, entry{})
	copy(p.index[i+1:], p.index[i:])
	p.index[i] = entry{ts: ev.Timestamp, idx: idx}
	p.mu.Unlock()
	res.resolve(ev, nil)
}

// Drain returns the knowledge accumulated since the last Drain: S/L ranges
// and D events covering (prevEmitted, now]. The broker calls it
// periodically to push knowledge downstream. After Drain, no event will
// ever be assigned a timestamp at or below the drained horizon.
func (p *Pubend) Drain() (*message.Knowledge, vtime.Timestamp) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	// Never drain past an in-flight publish: its tick must still be
	// emitted as D once logging completes.
	for ts := range p.pending {
		if ts-1 < now {
			now = ts - 1
		}
	}
	if now+leaseMargin > p.lease {
		if err := p.persistHorizonLocked(now + leaseWindow); err != nil && now > p.lease {
			// Never assert silence beyond the persisted lease: a
			// crash-restart could stamp events inside the range.
			now = p.lease
		}
	}
	if now <= p.emitted {
		return nil, p.emitted
	}
	from := p.emitted
	// Pin the clock so no later publish lands inside the drained range.
	p.clock.Restore(now)
	p.emitted = now
	know := &message.Knowledge{Pubend: p.id}
	p.fillKnowledgeLocked(know, from, now)
	return know, now
}

// ServeNack builds the knowledge response for the requested spans,
// clamping to what this pubend has ever emitted. Spans at or below the
// loss horizon come back as L ranges.
func (p *Pubend) ServeNack(spans []tick.Span) (*message.Knowledge, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	know := &message.Knowledge{Pubend: p.id}
	for _, sp := range spans {
		if sp.Empty() {
			continue
		}
		end := vtime.MinTS(sp.End, p.emitted)
		if end < sp.Start {
			continue
		}
		p.fillKnowledgeLocked(know, sp.Start-1, end)
	}
	return know, nil
}

// fillKnowledgeLocked appends ranges/events covering (from, to] to know.
// Caller holds p.mu.
func (p *Pubend) fillKnowledgeLocked(know *message.Knowledge, from, to vtime.Timestamp) {
	cur := from
	if p.loss > cur {
		lend := vtime.MinTS(p.loss, to)
		know.Ranges = append(know.Ranges, tick.Range{Start: cur + 1, End: lend, Kind: tick.L})
		cur = lend
	}
	if cur >= to {
		return
	}
	// Locate events in (cur, to].
	i := sort.Search(len(p.index), func(i int) bool { return p.index[i].ts > cur })
	for cur < to {
		if i >= len(p.index) || p.index[i].ts > to {
			know.Ranges = append(know.Ranges, tick.Range{Start: cur + 1, End: to, Kind: tick.S})
			return
		}
		e := p.index[i]
		if e.ts > cur+1 {
			know.Ranges = append(know.Ranges, tick.Range{Start: cur + 1, End: e.ts - 1, Kind: tick.S})
		}
		ev, err := p.readEventLocked(e)
		if err == nil {
			know.Events = append(know.Events, ev)
		} else {
			// The event was chopped concurrently; it is covered by
			// the loss prefix on the next drain. Mark the tick L.
			know.Ranges = append(know.Ranges, tick.Range{Start: e.ts, End: e.ts, Kind: tick.L})
		}
		cur = e.ts
		i++
	}
}

func (p *Pubend) readEventLocked(e entry) (*message.Event, error) {
	payload, err := p.stream.Read(e.idx)
	if err != nil {
		return nil, err
	}
	ev, _, err := message.DecodeEvent(payload)
	if err != nil {
		return nil, err
	}
	return ev, nil
}

// ReadEvent returns the logged event at the exact timestamp, if present.
func (p *Pubend) ReadEvent(ts vtime.Timestamp) (*message.Event, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := sort.Search(len(p.index), func(i int) bool { return p.index[i].ts >= ts })
	if i >= len(p.index) || p.index[i].ts != ts {
		return nil, fmt.Errorf("pubend: no event at %d: %w", ts, logvol.ErrNotFound)
	}
	return p.readEventLocked(p.index[i])
}

// UpdateRelease feeds the release protocol's aggregated minima (from the
// root of the knowledge tree) into the pubend and applies the early-release
// policy, converting a prefix of the stream to L and reclaiming log
// storage. It returns the new loss horizon.
func (p *Pubend) UpdateRelease(released, latestDelivered vtime.Timestamp) (vtime.Timestamp, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if released > p.released {
		p.released = released
	}
	if latestDelivered > p.latestDelivered {
		p.latestDelivered = latestDelivered
	}
	horizon := p.policy.LossHorizon(p.released, p.latestDelivered, p.clock.Now())
	// Invariant guards: never lose beyond what non-catchup subscribers
	// were delivered, never rewind.
	if horizon > p.latestDelivered {
		horizon = p.latestDelivered
	}
	if horizon <= p.loss {
		return p.loss, nil
	}
	p.loss = horizon
	// Persist the new loss horizon before chopping: recovery must never
	// see a chopped log with a stale loss floor, or a fully released
	// (hence fully chopped) pubend would restart with a zero clock.
	if err := p.persistHorizonLocked(p.lease); err != nil {
		return p.loss, err
	}
	// Chop the log below the horizon.
	cut := sort.Search(len(p.index), func(i int) bool { return p.index[i].ts > horizon })
	if cut > 0 {
		chopIdx := p.index[cut-1].idx
		if err := p.stream.Chop(chopIdx); err != nil {
			return p.loss, fmt.Errorf("pubend chop: %w", err)
		}
		p.index = append(p.index[:0], p.index[cut:]...)
	}
	return p.loss, nil
}

// LossHorizon reports the end of the L prefix.
func (p *Pubend) LossHorizon() vtime.Timestamp {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loss
}

// Released reports the aggregated released timestamp Tr(p).
func (p *Pubend) Released() vtime.Timestamp {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.released
}

// Emitted reports the horizon up to which knowledge has been drained.
func (p *Pubend) Emitted() vtime.Timestamp {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.emitted
}

// EventCount reports the number of retained (unreleased) events.
func (p *Pubend) EventCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.index)
}
