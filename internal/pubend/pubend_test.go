package pubend

import (
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

func newTestPubend(t *testing.T, opts Options) (*Pubend, *logvol.Volume, string) {
	t.Helper()
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vol.Close() }) //nolint:errcheck
	opts.Volume = vol
	if opts.ID == 0 {
		opts.ID = 1
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, vol, dir
}

func testEvent(payload string) message.Event {
	return message.Event{
		Attrs:   filter.Attributes{"topic": filter.String("t")},
		Payload: []byte(payload),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New without ID/Volume should fail")
	}
}

func TestPublishAssignsIncreasingTimestamps(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{})
	prev := vtime.ZeroTS
	for i := 0; i < 100; i++ {
		ev, err := p.Publish(testEvent("x"))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Timestamp <= prev {
			t.Fatalf("timestamps not increasing: %d after %d", ev.Timestamp, prev)
		}
		if ev.Pubend != 1 {
			t.Fatalf("pubend id = %v", ev.Pubend)
		}
		prev = ev.Timestamp
	}
	if p.EventCount() != 100 {
		t.Errorf("EventCount = %d", p.EventCount())
	}
}

func TestReadEvent(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{})
	ev, _ := p.Publish(testEvent("hello")) //nolint:errcheck
	got, err := p.ReadEvent(ev.Timestamp)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hello" || got.Timestamp != ev.Timestamp {
		t.Errorf("ReadEvent = %+v", got)
	}
	if _, err := p.ReadEvent(ev.Timestamp + 1); err == nil {
		t.Error("ReadEvent of missing timestamp succeeded")
	}
}

// knowledgeCovers checks that knowledge tiles (from, to] with no overlap,
// in order, counting D ticks.
func knowledgeCovers(t *testing.T, know *message.Knowledge, from, to vtime.Timestamp) int {
	t.Helper()
	evByTS := map[vtime.Timestamp]bool{}
	for _, ev := range know.Events {
		evByTS[ev.Timestamp] = true
	}
	covered := map[vtime.Timestamp]bool{}
	for _, r := range know.Ranges {
		for ts := r.Start; ts <= r.End; ts++ {
			if covered[ts] {
				t.Fatalf("tick %d covered twice", ts)
			}
			covered[ts] = true
		}
	}
	for ts := range evByTS {
		if covered[ts] {
			t.Fatalf("event tick %d also in a range", ts)
		}
		covered[ts] = true
	}
	for ts := from + 1; ts <= to; ts++ {
		if !covered[ts] {
			t.Fatalf("tick %d not covered", ts)
		}
	}
	return len(know.Events)
}

func TestDrainProducesCompleteKnowledge(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{})
	var published []vtime.Timestamp
	for i := 0; i < 10; i++ {
		ev, err := p.Publish(testEvent("e"))
		if err != nil {
			t.Fatal(err)
		}
		published = append(published, ev.Timestamp)
	}
	know, upTo := p.Drain()
	if know == nil {
		t.Fatal("Drain returned nil knowledge")
	}
	if upTo < published[len(published)-1] {
		t.Fatalf("drain horizon %d below last event %d", upTo, published[9])
	}
	n := knowledgeCovers(t, know, 0, upTo)
	if n != 10 {
		t.Errorf("drained %d events, want 10", n)
	}
	// Second drain continues from the horizon.
	time.Sleep(time.Millisecond)
	know2, upTo2 := p.Drain()
	if upTo2 <= upTo {
		t.Fatalf("second drain horizon %d did not advance past %d", upTo2, upTo)
	}
	if know2 == nil || len(know2.Events) != 0 {
		t.Errorf("second drain should be pure silence: %+v", know2)
	}
	knowledgeCovers(t, know2, upTo, upTo2)
	// Publishing after a drain always lands above the drained horizon.
	ev, _ := p.Publish(testEvent("late")) //nolint:errcheck
	if ev.Timestamp <= upTo2 {
		t.Errorf("late publish at %d inside drained horizon %d", ev.Timestamp, upTo2)
	}
}

func TestServeNack(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{})
	var tss []vtime.Timestamp
	for i := 0; i < 5; i++ {
		ev, _ := p.Publish(testEvent("e")) //nolint:errcheck
		tss = append(tss, ev.Timestamp)
	}
	_, upTo := p.Drain()
	// Nack the whole range: everything comes back.
	know, err := p.ServeNack([]tick.Span{{Start: 1, End: upTo}})
	if err != nil {
		t.Fatal(err)
	}
	if got := knowledgeCovers(t, know, 0, upTo); got != 5 {
		t.Errorf("nack returned %d events, want 5", got)
	}
	// Nack a sub-range containing only event 3.
	know, err = p.ServeNack([]tick.Span{{Start: tss[2], End: tss[2]}})
	if err != nil {
		t.Fatal(err)
	}
	if len(know.Events) != 1 || know.Events[0].Timestamp != tss[2] {
		t.Errorf("targeted nack = %+v", know.Events)
	}
	// Nack beyond the emitted horizon is clamped.
	know, err = p.ServeNack([]tick.Span{{Start: upTo + 1000, End: upTo + 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(know.Events) != 0 && len(know.Ranges) != 0 {
		t.Errorf("over-horizon nack returned knowledge: %+v", know)
	}
}

func TestReleaseProtocolDefaultPolicy(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{})
	var tss []vtime.Timestamp
	for i := 0; i < 10; i++ {
		ev, _ := p.Publish(testEvent("e")) //nolint:errcheck
		tss = append(tss, ev.Timestamp)
	}
	p.Drain()
	// Release up to the 5th event; latestDelivered further along.
	loss, err := p.UpdateRelease(tss[4], tss[8])
	if err != nil {
		t.Fatal(err)
	}
	if loss != tss[4] {
		t.Errorf("loss horizon = %d, want %d", loss, tss[4])
	}
	if p.EventCount() != 5 {
		t.Errorf("EventCount after release = %d, want 5", p.EventCount())
	}
	// Released events are gone; later events remain.
	if _, err := p.ReadEvent(tss[2]); err == nil {
		t.Error("released event still readable")
	}
	if _, err := p.ReadEvent(tss[7]); err != nil {
		t.Errorf("retained event unreadable: %v", err)
	}
	// Nack below the loss horizon returns an L range.
	know, err := p.ServeNack([]tick.Span{{Start: tss[0], End: tss[2]}})
	if err != nil {
		t.Fatal(err)
	}
	foundL := false
	for _, r := range know.Ranges {
		if r.Kind == tick.L && r.Contains(tss[1]) {
			foundL = true
		}
	}
	if !foundL {
		t.Errorf("nack below loss horizon did not return L: %+v", know.Ranges)
	}
	// Rewinding release minima is ignored.
	loss2, _ := p.UpdateRelease(tss[1], tss[2]) //nolint:errcheck
	if loss2 != loss {
		t.Errorf("release rewound loss horizon: %d -> %d", loss, loss2)
	}
}

func TestMaxRetainPolicy(t *testing.T) {
	pol := MaxRetain{Retain: 100}
	// Nothing released, everything delivered, time way past.
	got := pol.LossHorizon(0, 1000, 2000)
	if got != 1000 {
		t.Errorf("LossHorizon clamped wrong: %d, want 1000 (Td)", got)
	}
	// Within retention: only the released prefix.
	got = pol.LossHorizon(50, 1000, 1050)
	if got != 949 {
		t.Errorf("LossHorizon = %d, want 949 (T - retain - 1)", got)
	}
	// released dominates when ahead of the early-release bound.
	got = pol.LossHorizon(980, 1000, 1050)
	if got != 980 {
		t.Errorf("LossHorizon = %d, want 980", got)
	}
}

func TestEarlyReleaseNeverPassesLatestDelivered(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{Policy: MaxRetain{Retain: 1}})
	var tss []vtime.Timestamp
	for i := 0; i < 10; i++ {
		ev, _ := p.Publish(testEvent("e")) //nolint:errcheck
		tss = append(tss, ev.Timestamp)
	}
	p.Drain()
	time.Sleep(2 * time.Millisecond) // let T(p) race far beyond retain
	loss, err := p.UpdateRelease(0, tss[3])
	if err != nil {
		t.Fatal(err)
	}
	if loss > tss[3] {
		t.Fatalf("early release passed latestDelivered: loss=%d Td=%d", loss, tss[3])
	}
	if loss != tss[3] {
		t.Errorf("loss = %d, want Td %d (retain long expired)", loss, tss[3])
	}
	// Events above Td retained.
	if _, err := p.ReadEvent(tss[5]); err != nil {
		t.Errorf("event above Td lost: %v", err)
	}
}

func TestRecoveryRestoresLogAndClock(t *testing.T) {
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{ID: 1, Volume: vol})
	if err != nil {
		t.Fatal(err)
	}
	var tss []vtime.Timestamp
	for i := 0; i < 20; i++ {
		ev, _ := p.Publish(testEvent("e")) //nolint:errcheck
		tss = append(tss, ev.Timestamp)
	}
	vol.Close() //nolint:errcheck

	vol2, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close() //nolint:errcheck
	p2, err := New(Options{ID: 1, Volume: vol2})
	if err != nil {
		t.Fatal(err)
	}
	if p2.EventCount() != 20 {
		t.Fatalf("recovered EventCount = %d", p2.EventCount())
	}
	got, err := p2.ReadEvent(tss[10])
	if err != nil || string(got.Payload) != "e" {
		t.Errorf("recovered ReadEvent: %v", err)
	}
	// Fresh recovery without chops: no false loss.
	if p2.LossHorizon() != 0 {
		t.Errorf("fresh recovery invented loss horizon %d", p2.LossHorizon())
	}
	// New publishes stay above every recovered timestamp.
	ev, _ := p2.Publish(testEvent("post")) //nolint:errcheck
	if ev.Timestamp <= tss[19] {
		t.Errorf("post-recovery timestamp %d <= %d", ev.Timestamp, tss[19])
	}
}

func TestRecoveryAfterChopMarksLoss(t *testing.T) {
	dir := t.TempDir()
	vol, _ := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{}) //nolint:errcheck
	p, _ := New(Options{ID: 1, Volume: vol})                                  //nolint:errcheck
	var tss []vtime.Timestamp
	for i := 0; i < 10; i++ {
		ev, _ := p.Publish(testEvent("e")) //nolint:errcheck
		tss = append(tss, ev.Timestamp)
	}
	p.Drain()
	p.UpdateRelease(tss[4], tss[9]) //nolint:errcheck
	vol.Close()                     //nolint:errcheck

	vol2, _ := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{}) //nolint:errcheck
	defer vol2.Close()                                                         //nolint:errcheck
	p2, err := New(Options{ID: 1, Volume: vol2})
	if err != nil {
		t.Fatal(err)
	}
	if p2.LossHorizon() < tss[4] {
		t.Errorf("recovered loss horizon %d below chop %d", p2.LossHorizon(), tss[4])
	}
	if p2.EventCount() != 5 {
		t.Errorf("recovered EventCount = %d, want 5", p2.EventCount())
	}
}

func TestLogLatencySimulation(t *testing.T) {
	p, _, _ := newTestPubend(t, Options{LogLatency: 3 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 3; i++ {
		p.Publish(testEvent("x")) //nolint:errcheck
	}
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Errorf("3 publishes with 3ms log latency took %v", elapsed)
	}
}

// Property: for any publish/drain/release schedule, the union of all
// drained knowledge plus nack responses tiles virtual time exactly — every
// tick is covered once, D ticks carry exactly the published events above
// the loss horizon, and nothing below the loss horizon is served as data.
func TestDrainAndNackCoverageQuick(t *testing.T) {
	f := func(schedule []uint8) bool {
		dir := t.TempDir()
		vol, err := logvol.Open(filepath.Join(dir, "e.log"), logvol.Options{})
		if err != nil {
			return false
		}
		defer vol.Close() //nolint:errcheck
		p, err := New(Options{ID: 1, Volume: vol})
		if err != nil {
			return false
		}
		published := map[vtime.Timestamp]bool{}
		covered := map[vtime.Timestamp]tick.Kind{}
		apply := func(k *message.Knowledge) bool {
			if k == nil {
				return true
			}
			for _, r := range k.Ranges {
				for ts := r.Start; ts <= r.End; ts++ {
					prev, seen := covered[ts]
					if seen && prev != r.Kind && prev != tick.L && r.Kind != tick.L {
						return false // contradictory knowledge
					}
					if !seen || r.Kind == tick.L {
						covered[ts] = r.Kind
					}
				}
			}
			for _, ev := range k.Events {
				if !published[ev.Timestamp] {
					return false // served an event never published
				}
				if prev, seen := covered[ev.Timestamp]; seen && prev == tick.S {
					return false // S then D contradiction
				}
				covered[ev.Timestamp] = tick.D
			}
			return true
		}
		for _, op := range schedule {
			switch op % 4 {
			case 0, 1:
				ev, err := p.Publish(message.Event{Payload: []byte{op}})
				if err != nil {
					return false
				}
				published[ev.Timestamp] = true
			case 2:
				know, _ := p.Drain()
				if !apply(know) {
					return false
				}
			case 3:
				// Release everything drained so far and re-request
				// a window that straddles the loss horizon.
				know, err := p.ServeNack([]tick.Span{{Start: 1, End: p.Emitted()}})
				if err != nil || !apply(know) {
					return false
				}
			}
		}
		// Final drain then full re-request: coverage must include every
		// published event above the loss horizon as D.
		know, upTo := p.Drain()
		if !apply(know) {
			return false
		}
		know, err = p.ServeNack([]tick.Span{{Start: 1, End: upTo}})
		if err != nil || !apply(know) {
			return false
		}
		loss := p.LossHorizon()
		for ts := range published {
			if ts <= loss {
				continue
			}
			if covered[ts] != tick.D {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A fully released pubend chops its whole log — the steady state of a
// healthy system. Recovery must still restore virtual time above the
// pre-crash horizon: new events stamped in the past would be silently
// discarded by downstream exactly-once cursors (no gap, no nack).
func TestRecoveryAfterFullChopKeepsClockMonotone(t *testing.T) {
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{ID: 1, Volume: vol})
	if err != nil {
		t.Fatal(err)
	}
	var last vtime.Timestamp
	for i := 0; i < 10; i++ {
		ev, perr := p.Publish(testEvent("e"))
		if perr != nil {
			t.Fatal(perr)
		}
		last = ev.Timestamp
	}
	p.Drain()
	if _, err := p.UpdateRelease(last, last); err != nil {
		t.Fatal(err)
	}
	if p.EventCount() != 0 {
		t.Fatalf("EventCount after full release = %d, want 0", p.EventCount())
	}
	horizon := p.Now()
	vol.Close() //nolint:errcheck

	vol2, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close() //nolint:errcheck
	// A fresh default clock restarts at zero; recovery must lift it.
	p2, err := New(Options{ID: 1, Volume: vol2})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p2.Publish(testEvent("post"))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Timestamp <= horizon {
		t.Fatalf("post-recovery timestamp %d not above pre-crash horizon %d", ev.Timestamp, horizon)
	}
	if p2.LossHorizon() < last {
		t.Errorf("recovered loss horizon %d below released prefix %d", p2.LossHorizon(), last)
	}
	if p2.Released() < last {
		t.Errorf("recovered released %d below persisted floor %d", p2.Released(), last)
	}
}

// Drain documents that no event will ever be stamped at or below the
// drained horizon; that promise must hold across a crash-restart even
// when the log holds no events at all (pure silence).
func TestRecoveryKeepsDrainedSilenceHorizon(t *testing.T) {
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{ID: 1, Volume: vol})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // let virtual time advance past zero
	_, drained := p.Drain()
	if drained == 0 {
		t.Fatal("Drain did not advance")
	}
	vol.Close() //nolint:errcheck

	vol2, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close() //nolint:errcheck
	p2, err := New(Options{ID: 1, Volume: vol2})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := p2.Publish(testEvent("post"))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Timestamp <= drained {
		t.Fatalf("post-recovery timestamp %d at or below drained silence horizon %d", ev.Timestamp, drained)
	}
}

// A crash after the horizon record is written but before the announced
// chop lands must not resurrect the released prefix.
func TestRecoveryFinishesAnnouncedChop(t *testing.T) {
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Options{ID: 1, Volume: vol})
	if err != nil {
		t.Fatal(err)
	}
	var tss []vtime.Timestamp
	for i := 0; i < 6; i++ {
		ev, perr := p.Publish(testEvent("e"))
		if perr != nil {
			t.Fatal(perr)
		}
		tss = append(tss, ev.Timestamp)
	}
	p.Drain()
	// Write the horizon record by hand, simulating a crash between it
	// and the chop it announces.
	p.mu.Lock()
	p.loss = tss[3]
	err = p.persistHorizonLocked(p.lease)
	p.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	vol.Close() //nolint:errcheck

	vol2, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close() //nolint:errcheck
	p2, err := New(Options{ID: 1, Volume: vol2})
	if err != nil {
		t.Fatal(err)
	}
	if p2.EventCount() != 2 {
		t.Fatalf("recovered EventCount = %d, want 2 (chop finished)", p2.EventCount())
	}
	if p2.LossHorizon() != tss[3] {
		t.Errorf("recovered loss horizon %d, want %d", p2.LossHorizon(), tss[3])
	}
	if _, err := p2.ReadEvent(tss[1]); err == nil {
		t.Error("chopped event still readable after recovery")
	}
}
