package pubend

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/vtime"
)

func newGroupPubend(t *testing.T, opts Options) (*Pubend, *logvol.Volume, string) {
	t.Helper()
	dir := t.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{Sync: logvol.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vol.Close() }) //nolint:errcheck
	opts.Volume = vol
	if opts.ID == 0 {
		opts.ID = 1
	}
	opts.SyncEveryPublish = true
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, vol, dir
}

// TestPublishAsyncGroupCommit drives concurrent async publishes through a
// SyncGroup volume: every result must resolve with a unique timestamp, the
// index must come out sorted, and the fsync count must be amortized well
// below the publish count.
func TestPublishAsyncGroupCommit(t *testing.T) {
	p, vol, _ := newGroupPubend(t, Options{})

	const publishers, perPublisher = 8, 25
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		got []vtime.Timestamp
	)
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				ev, err := p.PublishAsync(testEvent(fmt.Sprintf("p%d-%d", w, i))).Wait()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				got = append(got, ev.Timestamp)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	total := publishers * perPublisher
	if len(got) != total {
		t.Fatalf("resolved %d publishes, want %d", len(got), total)
	}
	seen := make(map[vtime.Timestamp]bool, total)
	for _, ts := range got {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		seen[ts] = true
	}
	if p.EventCount() != total {
		t.Fatalf("EventCount = %d, want %d", p.EventCount(), total)
	}
	if syncs := vol.Syncs(); syncs >= int64(total) {
		t.Fatalf("group publish issued %d fsyncs for %d publishes; expected amortization", syncs, total)
	}
	// Every acked event must be readable back in timestamp order.
	for ts := range seen {
		if _, err := p.ReadEvent(ts); err != nil {
			t.Fatalf("acked event %d unreadable: %v", ts, err)
		}
	}
}

// TestPublishAsyncDurableAcrossReopen checks the ack-after-fsync contract
// end to end: once Wait returns, the event survives a volume close/reopen.
func TestPublishAsyncDurableAcrossReopen(t *testing.T) {
	p, vol, dir := newGroupPubend(t, Options{})

	const n = 40
	results := make([]*PublishResult, 0, n)
	for i := 0; i < n; i++ {
		results = append(results, p.PublishAsync(testEvent(fmt.Sprintf("ev-%d", i))))
	}
	for _, r := range results {
		if _, err := r.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := vol.Close(); err != nil {
		t.Fatal(err)
	}

	vol2, err := logvol.Open(filepath.Join(dir, "events.log"), logvol.Options{Sync: logvol.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer vol2.Close() //nolint:errcheck
	p2, err := New(Options{ID: 1, Volume: vol2})
	if err != nil {
		t.Fatal(err)
	}
	if p2.EventCount() != n {
		t.Fatalf("recovered %d events, want %d (acked publish lost)", p2.EventCount(), n)
	}
}

// TestPublishAsyncOnDone checks callback delivery and that Drain never
// emits knowledge past a publish that has not resolved.
func TestPublishAsyncOnDone(t *testing.T) {
	p, _, _ := newGroupPubend(t, Options{})

	done := make(chan *message.Event, 1)
	res := p.PublishAsync(testEvent("cb"))
	res.OnDone(func(ev *message.Event, err error) {
		if err != nil {
			t.Errorf("OnDone error: %v", err)
		}
		done <- ev
	})
	var ev *message.Event
	select {
	case ev = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone never fired")
	}
	if ev == nil || ev.Timestamp == 0 {
		t.Fatalf("OnDone event = %+v", ev)
	}
	// Registered after completion: runs inline.
	fired := false
	res.OnDone(func(*message.Event, error) { fired = true })
	if !fired {
		t.Fatal("OnDone after completion did not run inline")
	}

	// The resolved publish must be drainable as a D event.
	know, _ := p.Drain()
	if know == nil || len(know.Events) != 1 || know.Events[0].Timestamp != ev.Timestamp {
		t.Fatalf("Drain after resolved publish = %+v", know)
	}
}
