package broker

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// downMatcherLens reads the per-downstream-link matcher sizes through the
// control shard (which owns the link set).
func downMatcherLens(t *testing.T, b *Broker) []int {
	t.Helper()
	ch := make(chan []int, 1)
	if !b.control().push(func() {
		var lens []int
		for _, link := range b.downs {
			lens = append(lens, link.matcher.Len())
		}
		ch <- lens
	}) {
		t.Fatal("control shard closed")
	}
	return <-ch
}

// waitDownMatcher polls until the broker has exactly one downstream link
// whose matcher holds want subscriptions.
func waitDownMatcher(t *testing.T, b *Broker, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last []int
	for time.Now().Before(deadline) {
		last = downMatcherLens(t, b)
		if len(last) == 1 && last[0] == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: downstream matcher sizes %v, want [%d]", last, want)
}

// TestCoveringShrinksUpstreamAnnouncements is the covering acceptance test:
// an intermediate broker hosting three subscriptions where one covers the
// other two announces only the cover upstream (strictly smaller than the
// union of downstream subscriptions), covered subscribers still receive
// their events, and unsubscribing the cover re-expands the announcement set
// without losing a single event.
func TestCoveringShrinksUpstreamAnnouncements(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	top := startBroker(t, netw, Config{
		Name: "top", DataDir: filepath.Join(t.TempDir(), "top"), ListenAddr: "top",
	}, 1, nil)
	startBroker(t, netw, Config{
		Name: "mid", DataDir: filepath.Join(t.TempDir(), "mid"), ListenAddr: "mid",
		UpstreamAddr: "top", EnableSHB: true,
	}, 0, nil)

	p, err := client.NewPublisher(context.Background(), netw, "top", "cpub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	newSub := func(id vtime.SubscriberID, f string) *client.Subscriber {
		s, err := client.NewSubscriber(client.SubscriberOptions{
			ID: id, Filter: f, AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Connect(context.Background(), netw, "mid"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Disconnect() }) //nolint:errcheck
		return s
	}

	cover := newSub(11, `prefix(topic, "t")`)
	s1 := newSub(12, `topic = "t1"`)
	s2 := newSub(13, `topic = "t2"`)

	// The union of downstream subscriptions is 3, but the cover subsumes
	// both specific filters: top must see exactly 1 announcement.
	waitDownMatcher(t, top, 1)

	// Covered subscribers still receive their events through the cover.
	w1 := pub(t, p, "t1", 5)
	w2 := pub(t, p, "t2", 5)
	wc := append(append([]stamp{}, w1...), w2...)
	assertTimestamps(t, collectEvents(t, s1, 5), w1)
	assertTimestamps(t, collectEvents(t, s2, 5), w2)
	assertTimestamps(t, collectEvents(t, cover, 10), wc)

	// Unsubscribing the cover promotes the two covered subscriptions:
	// the announcement set re-expands to 2, and no event is lost across
	// the transition.
	if err := cover.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	waitDownMatcher(t, top, 2)

	w1 = pub(t, p, "t1", 5)
	w2 = pub(t, p, "t2", 5)
	assertTimestamps(t, collectEvents(t, s1, 5), w1)
	assertTimestamps(t, collectEvents(t, s2, 5), w2)
}
