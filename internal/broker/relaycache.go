package broker

import (
	"sort"

	"repro/internal/message"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// relayCache is an intermediate broker's per-pubend knowledge cache: a
// knowledge stream plus a bounded event store. It answers downstream nacks
// for ticks it knows about, so recovery traffic rarely reaches the pubend
// (paper, section 1: "scalability of event recovery is achieved by caching
// events at intermediate brokers"). Absence of an entry never affects
// correctness — the remainder of a nack is forwarded upstream.
type relayCache struct {
	know     *tick.Stream
	cur      *tick.Curiosity // consolidation of upstream nacks
	capacity int
	byTS     map[vtime.Timestamp]*message.Event
	order    []vtime.Timestamp
	// loss is the genuine L horizon announced by upstream. The knowledge
	// stream's base also advances as released knowledge is evicted, but
	// "evicted here" must not be served as "lost": below the base and
	// above loss the cache simply has no information.
	loss vtime.Timestamp
}

func newRelayCache(capacity int) *relayCache {
	return &relayCache{
		know:     tick.NewStream(0),
		cur:      tick.NewCuriosity(),
		capacity: capacity,
		byTS:     make(map[vtime.Timestamp]*message.Event),
	}
}

// apply folds a knowledge message into the cache.
func (c *relayCache) apply(know *message.Knowledge) {
	for _, r := range know.Ranges {
		c.know.Apply(r)
		c.cur.Satisfy(r.Start, r.End)
		if r.Kind == tick.L && r.End > c.loss {
			c.loss = r.End
		}
	}
	for _, ev := range know.Events {
		c.know.Apply(tick.Range{Start: ev.Timestamp, End: ev.Timestamp, Kind: tick.D})
		c.cur.Satisfy(ev.Timestamp, ev.Timestamp)
		c.put(ev)
	}
}

// put stores one event, retaining its backing frame buffer while the
// entry is resident (relay pin = retain, evict = release, DESIGN §2.13).
func (c *relayCache) put(ev *message.Event) {
	if _, ok := c.byTS[ev.Timestamp]; ok {
		return
	}
	ev.Retain()
	c.byTS[ev.Timestamp] = ev
	if n := len(c.order); n > 0 && ev.Timestamp < c.order[n-1] {
		i := sort.Search(n, func(i int) bool { return c.order[i] >= ev.Timestamp })
		c.order = append(c.order, 0)
		copy(c.order[i+1:], c.order[i:])
		c.order[i] = ev.Timestamp
	} else {
		c.order = append(c.order, ev.Timestamp)
	}
	for len(c.order) > c.capacity {
		if old, ok := c.byTS[c.order[0]]; ok {
			old.Release()
		}
		delete(c.byTS, c.order[0])
		c.order = c.order[1:]
	}
}

// serve answers a nack from the cache. It returns the knowledge this node
// can supply (nil when nothing) and the spans that must be fetched from
// upstream: ticks that are Q here, plus D ticks whose events were evicted.
func (c *relayCache) serve(pub vtime.PubendID, spans []tick.Span) (*message.Knowledge, []tick.Span) {
	var reply *message.Knowledge
	var missing []tick.Span
	addMissing := func(start, end vtime.Timestamp) {
		if n := len(missing); n > 0 && missing[n-1].End+1 >= start {
			if end > missing[n-1].End {
				missing[n-1].End = end
			}
			return
		}
		missing = append(missing, tick.Span{Start: start, End: end})
	}
	ensureReply := func() *message.Knowledge {
		if reply == nil {
			reply = &message.Knowledge{Pubend: pub}
		}
		return reply
	}
	floor := c.know.Base()
	for _, sp := range spans {
		if sp.Empty() {
			continue
		}
		// Below the genuine loss horizon: answer L.
		if sp.Start <= c.loss {
			end := vtime.MinTS(sp.End, c.loss)
			k := ensureReply()
			k.Ranges = append(k.Ranges, tick.Range{Start: sp.Start, End: end, Kind: tick.L})
			sp.Start = end + 1
			if sp.Empty() {
				continue
			}
		}
		// Between loss and the eviction floor the cache has no
		// information (the knowledge was released locally, not lost):
		// forward upstream.
		if sp.Start <= floor {
			end := vtime.MinTS(sp.End, floor)
			addMissing(sp.Start, end)
			sp.Start = end + 1
			if sp.Empty() {
				continue
			}
		}
		for _, r := range c.know.Ranges(sp.Start-1, sp.End) {
			switch r.Kind {
			case tick.S, tick.L:
				k := ensureReply()
				k.Ranges = append(k.Ranges, r)
			case tick.D:
				for ts := r.Start; ts <= r.End; ts++ {
					if ev, ok := c.byTS[ts]; ok {
						k := ensureReply()
						k.Events = append(k.Events, ev)
					} else {
						addMissing(ts, ts)
					}
				}
			case tick.Q:
				addMissing(r.Start, r.End)
			}
		}
	}
	return reply, missing
}

// evictUpTo drops knowledge and events at or below ts (released: nothing
// below can be requested again).
func (c *relayCache) evictUpTo(ts vtime.Timestamp) {
	if ts == vtime.MaxTS {
		return
	}
	c.know.Advance(ts)
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] > ts })
	if i == 0 {
		return
	}
	for _, old := range c.order[:i] {
		if ev, ok := c.byTS[old]; ok {
			ev.Release()
		}
		delete(c.byTS, old)
	}
	c.order = append(c.order[:0], c.order[i:]...)
}

// len reports cached event count.
func (c *relayCache) len() int { return len(c.byTS) }
