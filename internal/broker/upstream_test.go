package broker

import (
	"context"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// startSHBThrough starts an SHB whose upstream link dials through the
// given (typically fault-injecting) transport. Clients keep using the
// inner network: faultnet listens pass through, so the SHB stays
// reachable even while its upstream is partitioned.
func startSHBThrough(t *testing.T, tr overlay.Transport, name, upstream, adminAddr string) *Broker {
	t.Helper()
	b, err := New(Config{
		Name:         name,
		DataDir:      filepath.Join(t.TempDir(), name),
		Transport:    tr,
		ListenAddr:   name,
		UpstreamAddr: upstream,
		DialTimeout:  500 * time.Millisecond,
		EnableSHB:    true,
		AllPubends:   []vtime.PubendID{1},
		TickInterval: testTick,
		AdminAddr:    adminAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() }) //nolint:errcheck
	return b
}

// waitLink polls a broker's (single) supervised link until cond holds.
func waitLink(t *testing.T, b *Broker, what string, cond func(overlay.LinkStatus) bool) overlay.LinkStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		hs := b.Health()
		if len(hs) == 1 && cond(hs[0]) {
			return hs[0]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s: %+v", what, b.Health())
	return overlay.LinkStatus{}
}

func TestUpstreamSeverHealsAndReplaysGap(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fn := faultnet.New(netw, 7)
	startBroker(t, netw, Config{
		Name:       "uphb",
		DataDir:    filepath.Join(t.TempDir(), "uphb"),
		ListenAddr: "uphb",
	}, 1, nil)
	shb := startSHBThrough(t, fn, "ushb", "uphb", "")

	if st := waitLink(t, shb, "initial link up", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	}); st.Reconnects != 0 {
		t.Fatalf("fresh link already counts reconnects: %+v", st)
	}

	p, err := client.NewPublisher(context.Background(), netw, "uphb", "upub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 901, Filter: `topic = "u"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "ushb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "u", 10)
	got := collectEvents(t, sub, 10)

	// Cut the SHB→PHB link and publish into the outage: the PHB logs the
	// events, the SHB cannot hear about them yet.
	fn.Partition("uphb")
	waitLink(t, shb, "link down after partition", func(s overlay.LinkStatus) bool {
		return s.State != overlay.LinkUp
	})
	want = append(want, pub(t, p, "u", 15)...)

	// Heal: the supervisor redials, the broker resyncs (subscription
	// re-announce + pending-curiosity re-nacks), and the knowledge/NACK
	// path replays the gap from the PHB's log.
	fn.Heal()
	st := waitLink(t, shb, "link healed", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})
	if st.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1: %+v", st.Reconnects, st)
	}
	got = append(got, collectEvents(t, sub, 15)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across sever: gaps=%d violations=%d", gaps, violations)
	}
	if fn.Kills() == 0 {
		t.Fatal("fault injector recorded no kills")
	}
}

// waitState expects the next OnConnChange transition within a deadline.
func waitState(t *testing.T, who string, ch <-chan client.ConnState, want client.ConnState) {
	t.Helper()
	select {
	case got := <-ch:
		if got != want {
			t.Fatalf("%s: conn state = %v, want %v", who, got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: timeout waiting for conn state %v", who, want)
	}
}

func TestClientsAutoReconnectAcrossBrokerRestart(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	dir := filepath.Join(t.TempDir(), "rb")
	cfg := Config{
		Name:          "rb",
		DataDir:       dir,
		Transport:     netw,
		ListenAddr:    "rb",
		EnableSHB:     true,
		HostedPubends: []PubendConfig{{ID: 1}},
		AllPubends:    []vtime.PubendID{1},
		TickInterval:  testTick,
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pubStates := make(chan client.ConnState, 16)
	p, err := client.NewPublisherOpts(netw, "rb", "rpub", client.PublisherOptions{
		DialTimeout:   500 * time.Millisecond,
		AutoReconnect: true,
		OnConnChange:  func(st client.ConnState) { pubStates <- st },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	waitState(t, "publisher", pubStates, client.ConnUp)

	subStates := make(chan client.ConnState, 16)
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID:            902,
		Filter:        `topic = "r"`,
		AckInterval:   10 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		AutoReconnect: true,
		OnConnChange:  func(st client.ConnState) { subStates <- st },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "rb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	waitState(t, "subscriber", subStates, client.ConnUp)

	want := pub(t, p, "r", 10)
	got := collectEvents(t, sub, 10)

	// Hard-crash the broker: both client links die involuntarily and the
	// supervisors start redialing a dead address.
	b.Crash()
	waitState(t, "publisher", pubStates, client.ConnDown)
	waitState(t, "subscriber", subStates, client.ConnDown)

	// Restart from the same persistent state: the clients re-attach on
	// their own — the subscriber resumes from its checkpoint token.
	b2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() }) //nolint:errcheck
	waitState(t, "publisher", pubStates, client.ConnUp)
	waitState(t, "subscriber", subStates, client.ConnUp)
	if !sub.Connected() {
		t.Fatal("subscriber not connected after reconnect")
	}

	want = append(want, pub(t, p, "r", 15)...)
	got = append(got, collectEvents(t, sub, 15)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across restart: gaps=%d violations=%d", gaps, violations)
	}
}

// The steady state of a healthy system: every event acknowledged, the
// pubend log fully released and chopped. Restarting the PHB from that
// state must not lose subsequent events — its virtual clock has to
// recover above the silence horizon it asserted before the crash, or the
// SHB's exactly-once cursor silently drops everything it publishes next.
func TestPHBRestartAfterFullReleaseKeepsDelivering(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	phbCfg := Config{
		Name:          "frphb",
		DataDir:       filepath.Join(t.TempDir(), "frphb"),
		Transport:     netw,
		ListenAddr:    "frphb",
		HostedPubends: []PubendConfig{{ID: 1}},
		TickInterval:  testTick,
	}
	phb, err := New(phbCfg)
	if err != nil {
		t.Fatal(err)
	}
	shb := startSHBThrough(t, netw, "frshb", "frphb", "")

	p, err := client.NewPublisher(context.Background(), netw, "frphb", "frpub")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 905, Filter: `topic = "fr"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "frshb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "fr", 10)
	got := collectEvents(t, sub, 10)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Wait for the release protocol to reclaim the whole log: acks raise
	// released(s,p) at the SHB, the release vector reaches the PHB, and
	// the chop drops every logged event.
	deadline := time.Now().Add(10 * time.Second)
	for phb.Pubend(1).EventCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pubend log never fully released: %d events retained", phb.Pubend(1).EventCount())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Let silence ticks advance the SHB's exactly-once cursor well past
	// the wall time a restart + supervised redial takes. Without this the
	// test cannot catch a clock regression: a pubend reborn at virtual
	// time zero would overtake a small cursor during the reconnect
	// backoff, and the stale stamps would never be exercised.
	time.Sleep(1500 * time.Millisecond)

	if err := phb.Close(); err != nil {
		t.Fatal(err)
	}
	waitLink(t, shb, "link down after phb stop", func(s overlay.LinkStatus) bool {
		return s.State != overlay.LinkUp
	})
	phb2, err := New(phbCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { phb2.Close() }) //nolint:errcheck
	waitLink(t, shb, "link healed after phb restart", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})

	p2, err := client.NewPublisher(context.Background(), netw, "frphb", "frpub2")
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close() //nolint:errcheck
	want = append(want, pub(t, p2, "fr", 15)...)
	got = append(got, collectEvents(t, sub, 15)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across PHB restart: gaps=%d violations=%d", gaps, violations)
	}
}

func TestHealthzReflectsUpstreamLink(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fn := faultnet.New(netw, 3)
	startBroker(t, netw, Config{
		Name:       "hphb",
		DataDir:    filepath.Join(t.TempDir(), "hphb"),
		ListenAddr: "hphb",
	}, 1, nil)
	shb := startSHBThrough(t, fn, "hshb", "hphb", "127.0.0.1:0")

	if code, body := adminGet(t, shb, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz with live upstream = %d %q, want 200", code, body)
	}

	fn.Partition("hphb")
	waitLink(t, shb, "link down", func(s overlay.LinkStatus) bool {
		return s.State != overlay.LinkUp
	})
	code, body := adminGet(t, shb, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with severed upstream = %d %q, want 503", code, body)
	}
	if !strings.Contains(body, "upstream") {
		t.Fatalf("/healthz body %q does not name the upstream link", body)
	}

	fn.Heal()
	waitLink(t, shb, "link healed", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})
	if code, body := adminGet(t, shb, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after heal = %d %q, want 200", code, body)
	}
}
