package broker

import (
	"time"

	"repro/internal/filter"
	"repro/internal/matchidx"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// tickShard runs one housekeeping round on one shard's loop: drain the
// shard's hosted pubends, aggregate and propagate its release vectors,
// and — on the control shard — run the SHB engine's housekeeping and
// occasionally reclaim PFS storage.
func (b *Broker) tickShard(sh *shard) {
	sh.tickN++
	// Drain hosted pubends and push fresh knowledge down the tree.
	for _, id := range sh.hosted {
		pe := b.pubends[id]
		know, _ := pe.Drain()
		if know != nil {
			b.spreadKnowledge(know)
		}
	}
	if sh == b.control() && b.shb != nil {
		//nolint:errcheck,gosec // persistence errors surface in tests
		// via lost state; the engine remains consistent in memory.
		b.shb.Tick(time.Now())
		if sh.tickN%256 == 0 {
			b.shb.ChopPFS() //nolint:errcheck,gosec // storage reclamation is best-effort
		}
	}
	b.propagateReleases(sh)
}

// fromUpstream handles a message arriving on the parent link. It runs on
// the upstream connection's dispatch goroutine and hops onto the
// pubend's shard; same-pubend messages land on one queue in receive
// order, so per-pubend FIFO survives the fan-out. sup is the supervisor
// the link belongs to: a retired link's stragglers must not update
// position state meant for the current parent.
func (b *Broker) fromUpstream(sup *overlay.Supervisor, m message.Message) {
	switch v := m.(type) {
	case *message.Knowledge:
		sh := b.shardFor(v.Pubend)
		// The shard hop outlives this dispatch call, and with it the
		// reader's base reference on the frame buffer the events alias:
		// retain across the hop, release once the shard has routed the
		// batch (every consumer that keeps an event — relay cache, SHB
		// cache, queued downstream writes — takes its own reference
		// inside).
		v.RetainRefs()
		sh.push(func() {
			if cache := b.relay(sh, v.Pubend); cache != nil {
				cache.apply(v)
			}
			b.spreadKnowledge(v)
			v.ReleaseRefs()
		})
	case *message.Hello:
		// The parent's tree-position advertisement (reply to our Hello,
		// or a cascade after the parent's own position changed).
		if b.upSup.Load() == sup || b.pendingSup.Load() == sup {
			b.learnTreeInfo(v)
		}
	default:
		// Upstream sends only knowledge and Hello in this protocol.
	}
}

// fromBelow handles a message from a downstream broker or client. It runs
// on the connection's dispatch goroutine: cheap thread-safe operations
// (publishes, engine acks/credits) are handled inline, per-pubend traffic
// hops onto the pubend's shard, and link/subscription lifecycle hops onto
// the control shard.
func (b *Broker) fromBelow(link *downLink, m message.Message) {
	switch v := m.(type) {
	case *message.Publish:
		// Hot path: pubends are thread-safe; handle on the conn
		// goroutine so publisher throughput is not serialized behind
		// routing work.
		b.handlePublish(link, v)
	case *message.Hello:
		// The aggregation key must be settled before any Release from
		// this link is routed. Both arrive on this dispatch goroutine in
		// FIFO order, so assigning it here (not on the control shard)
		// makes later by-value captures of link.key race-free.
		if v.Role == message.RoleBroker && v.Name != "" {
			// Key release aggregation by broker name so a restarted
			// broker replaces its own stale entry instead of pinning
			// the aggregate forever.
			link.key = "broker:" + v.Name
		}
		if v.Role == message.RoleBroker || v.Role == message.RoleProbe {
			// Reply with our tree position: the repair policy's adoption
			// eligibility rides the handshake. A probe gets the reply and
			// nothing else — it is never registered as a downstream link.
			link.conn.Send(b.treeHello()) //nolint:errcheck,gosec // dead links drop via OnClose
		}
		if v.Role == message.RoleBroker {
			b.control().push(func() { b.registerDown(link) })
			// Fan the release floor out to every shard for its own
			// hosted pubends (shard-local relAgg state).
			key := link.key
			for _, sh := range b.shards {
				sh := sh
				sh.push(func() { b.initLinkFloor(sh, key) })
			}
		}
	case *message.Nack:
		sh := b.shardFor(v.Pubend)
		sh.push(func() { b.routeNack(sh, link, v.Pubend, v.Spans) })
	case *message.Release:
		sh := b.shardFor(v.Pubend)
		key := link.key
		sh.push(func() { b.storeRelease(sh, key, v.Pubend, v.Released, v.LatestDelivered) })
	case *message.Ack:
		// The engine is internally serialized; no routing state is
		// touched, so stay on the conn goroutine.
		if b.shb != nil {
			b.shb.OnAck(v.Subscriber, v.CT)
		}
	case *message.Credit:
		if b.shb != nil {
			b.shb.OnCredit(v.Subscriber, v.Credits)
		}
	case *message.Leave:
		b.control().push(func() { b.handleLeave(link) })
	default:
		b.control().push(func() { b.fromBelowControl(link, m) })
	}
}

// registerDown adds a classified broker link to the downstream fan-out
// set. Runs on the control shard.
func (b *Broker) registerDown(link *downLink) {
	link.isDown = true
	b.downs[link.conn] = link
	b.publishDowns()
}

// publishDowns republishes the downstream-link snapshot read by event
// shards in spreadKnowledge. Runs on the control shard.
func (b *Broker) publishDowns() {
	snap := make([]*downLink, 0, len(b.downs))
	for _, link := range b.downs {
		snap = append(snap, link)
	}
	b.downsSnap.Store(&snap)
}

// fromBelowControl is the control-shard portion of fromBelow: link and
// subscription lifecycle.
func (b *Broker) fromBelowControl(link *downLink, m message.Message) {
	switch v := m.(type) {
	case *message.SubUpdate:
		b.handleSubUpdate(link, v)
	case *message.Subscribe:
		b.handleSubscribe(link, v)
	case *message.Detach:
		b.detachSubscriber(v.Subscriber)
	case *message.Unsubscribe:
		b.unsubscribe(v.Subscriber)
	}
}

// unsubscribe permanently removes a durable subscription and withdraws it
// from the upstream filtering matchers (re-expanding any subscriptions it
// was covering). Runs on the control shard.
func (b *Broker) unsubscribe(id vtime.SubscriberID) {
	b.clients.Delete(id)
	if b.shb != nil {
		b.shb.Unsubscribe(id) //nolint:errcheck,gosec // best-effort; engine stays consistent
	}
	b.coverRemoveAll(id)
}

// coverSrcLocal is the announcement source of this broker's own SHB
// durables in coverSrc (downstream announcements use the link key).
const coverSrcLocal = "local"

// coverAdd registers an upstream-facing subscription with the covering set
// under the given announcement source and sends the resulting announcement
// changes. Re-adding from a second source (the same subscription arriving
// via a re-parented path) only extends the source set — CoverSet.Add is a
// no-op for an identical filter. Runs on the control shard.
func (b *Broker) coverAdd(id vtime.SubscriberID, sub *filter.Subscription, source string) {
	set := b.coverSrc[id]
	if set == nil {
		set = make(map[string]struct{})
		b.coverSrc[id] = set
	}
	set[source] = struct{}{}
	for _, op := range b.upCover.Add(id, sub) {
		b.sendCoverOp(op)
	}
}

// coverRemove drops one announcement source for a subscription, withdrawing
// it from the covering set only when no source is left: during a re-parent
// the departing path's (grace-delayed) withdrawal must not tear down a
// cover the new path has re-announced. Withdrawal ops promote formerly
// covered subscriptions before the removal, so the upstream matcher never
// has an uncovered window. Runs on the control shard.
func (b *Broker) coverRemove(id vtime.SubscriberID, source string) {
	set := b.coverSrc[id]
	if set == nil {
		return
	}
	delete(set, source)
	if len(set) > 0 {
		return
	}
	b.coverRemoveAll(id)
}

// coverRemoveAll withdraws a subscription regardless of remaining sources
// (permanent unsubscribe). Runs on the control shard.
func (b *Broker) coverRemoveAll(id vtime.SubscriberID) {
	delete(b.coverSrc, id)
	for _, op := range b.upCover.Remove(id) {
		b.sendCoverOp(op)
	}
}

func (b *Broker) sendCoverOp(op matchidx.CoverOp) {
	b.upSend(&message.SubUpdate{Subscriber: op.ID, Filter: op.Filter, Remove: op.Remove})
}

// spreadKnowledge fans knowledge out to the local SHB and every downstream
// broker link, filtering events per link through its subscription matcher
// (the intermediate-broker filtering of section 1: a D tick that matches
// nothing below a link is sent as S). Runs on event shards; the
// downstream set is the control shard's atomic snapshot, and matchers and
// conn sends are thread-safe.
func (b *Broker) spreadKnowledge(know *message.Knowledge) {
	if b.shb != nil {
		b.shb.OnKnowledge(know)
	}
	for _, link := range *b.downsSnap.Load() {
		filtered := b.filterKnowledge(know, link.matcher)
		// One reference per enqueued send (filterKnowledge may hand the
		// same *Knowledge to several links); the link's wire writer
		// releases after framing. In-process links never release — their
		// receiver owns the message and the reference falls to the GC.
		filtered.RetainRefs()
		link.conn.Send(filtered) //nolint:errcheck,gosec // dead links drop via OnClose
	}
}

// filterKnowledge converts events that match nothing in the matcher into S
// ranges, preserving complete tick coverage. A matcher with no
// subscriptions passes everything through: a link whose subscriptions are
// unknown must not lose data.
func (b *Broker) filterKnowledge(know *message.Knowledge, m *filter.Matcher) *message.Knowledge {
	if m.Len() == 0 {
		b.eventsForwarded.Add(int64(len(know.Events)))
		tForwarded.Add(int64(len(know.Events)))
		return know
	}
	out := &message.Knowledge{Pubend: know.Pubend, Ranges: know.Ranges}
	for _, ev := range know.Events {
		if m.MatchesAny(ev.Attrs) {
			out.Events = append(out.Events, ev)
			continue
		}
		out.Ranges = append(out.Ranges, tick.Range{
			Start: ev.Timestamp, End: ev.Timestamp, Kind: tick.S,
		})
	}
	b.eventsForwarded.Add(int64(len(out.Events)))
	b.eventsFiltered.Add(int64(len(know.Events) - len(out.Events)))
	tForwarded.Add(int64(len(out.Events)))
	tFiltered.Add(int64(len(know.Events) - len(out.Events)))
	return out
}

// routeNack answers a nack (from a downstream link, or nil for the local
// SHB) with whatever this broker knows — hosted pubend log, or relay
// cache — and consolidates the remainder upstream. Runs on pub's shard.
func (b *Broker) routeNack(sh *shard, link *downLink, pub vtime.PubendID, spans []tick.Span) {
	tNacksRouted.Inc()
	// Hosted pubend: authoritative answer.
	if pe, ok := b.pubends[pub]; ok {
		know, err := pe.ServeNack(spans)
		if err != nil || know == nil {
			return
		}
		b.replyKnowledge(link, know)
		return
	}
	cache := b.relay(sh, pub)
	reply, missing := cache.serve(pub, spans)
	if reply != nil {
		b.replyKnowledge(link, reply)
	}
	if len(missing) == 0 {
		return
	}
	// Consolidate: only spans not already pending go upstream.
	var fresh []tick.Span
	for _, sp := range missing {
		fresh = append(fresh, cache.cur.Add(sp.Start, sp.End)...)
	}
	if len(fresh) > 0 {
		b.upSend(&message.Nack{Pubend: pub, Spans: fresh})
	}
}

// replyKnowledge sends recovered knowledge to the requester (or the local
// SHB when the request came from it).
func (b *Broker) replyKnowledge(link *downLink, know *message.Knowledge) {
	if link == nil {
		if b.shb != nil {
			b.shb.OnKnowledge(know)
		}
		return
	}
	filtered := b.filterKnowledge(know, link.matcher)
	filtered.RetainRefs()
	link.conn.Send(filtered) //nolint:errcheck,gosec // dead links drop via OnClose
}

// initLinkFloor seeds a zero release vector for a newly connected broker
// link on this shard's hosted pubends: until the link reports, nothing
// may be released — otherwise a subtree that crashes before its first
// report would silently lose its subscribers' retention guarantees.
// Runs on sh's loop. Seeding never overwrites an existing entry, so its
// ordering against a concurrent storeRelease for the same link (routed
// independently to this shard) is immaterial.
func (b *Broker) initLinkFloor(sh *shard, key string) {
	for _, pub := range sh.hosted {
		per := sh.relAgg[pub]
		if per == nil {
			per = make(map[string]relState)
			sh.relAgg[pub] = per
		}
		if _, exists := per[key]; !exists {
			per[key] = relState{valid: true} // released=0, latestDelivered=0
		}
	}
}

// storeRelease records one source's release vector; propagation happens on
// the next tick. Runs on pub's shard.
func (b *Broker) storeRelease(sh *shard, source string, pub vtime.PubendID, rel, ld vtime.Timestamp) {
	per := sh.relAgg[pub]
	if per == nil {
		per = make(map[string]relState)
		sh.relAgg[pub] = per
	}
	cur := per[source]
	if rel > cur.released {
		cur.released = rel
	}
	if ld > cur.latestDelivered {
		cur.latestDelivered = ld
	}
	cur.valid = true
	per[source] = cur
}

// aggregateRelease computes the minimum release vector over a pubend's
// valid sources; ok is false when no source has reported.
func aggregateRelease(per map[string]relState) (rel, ld vtime.Timestamp, ok bool) {
	rel, ld = vtime.MaxTS, vtime.MaxTS
	n := 0
	for _, st := range per {
		if !st.valid {
			continue
		}
		n++
		if st.released < rel {
			rel = st.released
		}
		if st.latestDelivered < ld {
			ld = st.latestDelivered
		}
	}
	return rel, ld, n > 0
}

// propagateReleases aggregates this shard's release vectors over all
// reporting sources and feeds them to the hosted pubend (root) or the
// upstream link. Runs on sh's loop.
func (b *Broker) propagateReleases(sh *shard) {
	for pub, per := range sh.relAgg {
		rel, ld, ok := aggregateRelease(per)
		if !ok {
			continue
		}
		if pe, ok := b.pubends[pub]; ok {
			pe.UpdateRelease(rel, ld) //nolint:errcheck,gosec // retention errors do not affect delivery
			// Announce the resulting loss horizon so SHBs can chop
			// their PFS records below it (early-release policies).
			continue
		}
		b.upSend(&message.Release{
			Pubend:          pub,
			Released:        rel,
			LatestDelivered: ld,
		})
		// Advance the relay cache floor: nothing below the aggregate
		// released can be requested again from below.
		if cache := sh.caches[pub]; cache != nil {
			cache.evictUpTo(rel)
		}
	}
}

// handleSubUpdate registers/unregisters a downstream subscription for link
// filtering and propagates it toward the PHBs through the covering set, so
// only subscriptions not already subsumed by an announced cover travel
// upstream. Runs on the control shard.
func (b *Broker) handleSubUpdate(link *downLink, su *message.SubUpdate) {
	if su.Remove {
		link.matcher.Remove(su.Subscriber)
		delete(link.subs, su.Subscriber)
		b.coverRemove(su.Subscriber, link.key)
		return
	}
	sub, err := filter.Parse(su.Filter)
	if err != nil {
		// Unparseable filters can't be indexed or covered; forward
		// verbatim (the old behavior) so upstream at least sees them.
		b.upSend(su)
		return
	}
	link.matcher.Add(su.Subscriber, sub)
	link.subs[su.Subscriber] = struct{}{}
	b.coverAdd(su.Subscriber, sub, link.key)
}

// handleLeave processes a child's deliberate departure (detach or
// re-parent). Unlike a crash — where covers and release floors are
// retained so the returning subtree's recovery stays correct — a Leave
// means the child is gone from this link for good, so its soft state is
// purged after LeaveGrace: the covers it announced (by source, so a path
// still announcing the same subscription keeps the cover) and its release
// floors (so a departed subtree stops pinning hosted-pubend retention).
// The grace delay gives the re-parented child's new path time to announce
// replacement covers and report replacement floors at common ancestors;
// resyncUpstream sends both eagerly, so the default grace is generous.
// Runs on the control shard.
func (b *Broker) handleLeave(link *downLink) {
	if _, ok := b.links[link.conn]; !ok {
		return // already dropped (close raced the Leave) or duplicate
	}
	delete(b.links, link.conn)
	if _, wasDown := b.downs[link.conn]; wasDown {
		delete(b.downs, link.conn)
		b.publishDowns()
	}
	subs := make([]vtime.SubscriberID, 0, len(link.subs))
	for id := range link.subs {
		subs = append(subs, id)
	}
	key := link.key
	time.AfterFunc(b.cfg.LeaveGrace, func() {
		b.control().push(func() {
			for _, id := range subs {
				b.coverRemove(id, key)
			}
		})
		for _, sh := range b.shards {
			sh := sh
			sh.push(func() {
				for _, per := range sh.relAgg {
					delete(per, key)
				}
			})
		}
	})
}

// dropLink removes a dead connection: downstream links leave the fanout
// set; subscriber clients are detached. Covers and release floors are
// deliberately retained — a crashed subtree reconnects with the same
// aggregation key and its announced state must still be in force when it
// does (only a Leave purges; see handleLeave). Runs on the control shard.
func (b *Broker) dropLink(link *downLink) {
	if _, ok := b.links[link.conn]; !ok {
		return // already removed by a Leave
	}
	delete(b.links, link.conn)
	if _, wasDown := b.downs[link.conn]; wasDown {
		delete(b.downs, link.conn)
		b.publishDowns()
	}
	var gone []vtime.SubscriberID
	b.clients.Range(func(k, v any) bool {
		if v == link.conn {
			if id, ok := k.(vtime.SubscriberID); ok {
				gone = append(gone, id)
			}
		}
		return true
	})
	for _, id := range gone {
		b.detachSubscriber(id)
	}
}

func (b *Broker) detachSubscriber(id vtime.SubscriberID) {
	b.clients.Delete(id)
	if b.shb != nil {
		b.shb.Detach(id)
	}
}

// relay returns (creating on demand) the shard-local relay cache for a
// non-hosted pubend. Runs on pub's shard.
func (b *Broker) relay(sh *shard, pub vtime.PubendID) *relayCache {
	if _, hosted := b.pubends[pub]; hosted {
		return nil
	}
	cache := sh.caches[pub]
	if cache == nil {
		cache = newRelayCache(b.cfg.RelayCacheSize)
		sh.caches[pub] = cache
	}
	return cache
}
