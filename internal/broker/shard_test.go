package broker

import (
	"context"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// TestShardCountConfig: Shards defaults to GOMAXPROCS, is clamped to ≥1,
// and pins every hosted pubend to exactly one shard.
func TestShardCountConfig(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	def := startBroker(t, netw, Config{
		Name: "def", DataDir: filepath.Join(t.TempDir(), "def"), ListenAddr: "def",
	}, 1, nil)
	if got := def.Shards(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default Shards() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}

	four := startBroker(t, netw, Config{
		Name: "four", DataDir: filepath.Join(t.TempDir(), "four"),
		ListenAddr: "four", Shards: 4,
	}, 6, nil)
	if got := four.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	seen := map[vtime.PubendID]int{}
	for _, sh := range four.shards {
		for _, pub := range sh.hosted {
			seen[pub]++
			if four.shardFor(pub) != sh {
				t.Errorf("pubend %d hosted on shard %d but shardFor routes elsewhere", pub, sh.id)
			}
		}
	}
	for i := 1; i <= 6; i++ {
		if seen[vtime.PubendID(i)] != 1 {
			t.Errorf("pubend %d pinned to %d shards, want exactly 1", i, seen[vtime.PubendID(i)])
		}
	}
}

// TestCrossShardSwitchoverAndRelease is the §2.2 exactly-once check under
// shard concurrency: one pubend's subscriber goes through the full
// constream → catchup → switchover cycle and its release aggregation
// drains the PHB, while publishers keep events for three OTHER pubends
// flowing on their own shards the whole time. Cross-shard interleaving
// must not perturb per-pubend order, lose or duplicate an event, or stall
// retention. Run with -race to also exercise the shard-ownership rules.
func TestCrossShardSwitchoverAndRelease(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	dir := t.TempDir()
	pubendIDs := []vtime.PubendID{1, 2, 3, 4}
	phb := startBroker(t, netw, Config{
		Name: "phb", DataDir: filepath.Join(dir, "phb"),
		ListenAddr: "phb", Shards: 4,
	}, 4, nil)
	shb := startBroker(t, netw, Config{
		Name: "shb", DataDir: filepath.Join(dir, "shb"),
		ListenAddr: "shb", UpstreamAddr: "phb",
		EnableSHB: true, AllPubends: pubendIDs, Shards: 4,
	}, 0, nil)

	p, err := client.NewPublisher(context.Background(), netw, "phb", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	// Background load: pubends 2-4 (distinct shards from pubend 1) carry
	// continuous traffic for a second durable subscriber for the entire
	// switchover cycle.
	bgSub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 2, Filter: `topic = "bg"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bgSub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	defer bgSub.Disconnect() //nolint:errcheck
	go func() {
		for range bgSub.Deliveries() {
		}
	}()

	stopBG := make(chan struct{})
	var bgWG sync.WaitGroup
	var bgMu sync.Mutex
	bgPublished := 0
	for _, target := range pubendIDs[1:] {
		target := target
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			bp, err := client.NewPublisher(context.Background(), netw, "phb", "bgpub")
			if err != nil {
				t.Error(err)
				return
			}
			defer bp.Close() //nolint:errcheck
			for {
				select {
				case <-stopBG:
					return
				default:
				}
				if _, err := bp.PublishTo(target, message.Event{
					Attrs:   filter.Attributes{"topic": filter.String("bg")},
					Payload: []byte("x"),
				}); err != nil {
					return
				}
				bgMu.Lock()
				bgPublished++
				bgMu.Unlock()
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	defer func() {
		close(stopBG)
		bgWG.Wait()
	}()

	// Foreground subscriber on pubend 1.
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}

	pubTo := func(n int) []stamp {
		t.Helper()
		var out []stamp
		for i := 0; i < n; i++ {
			ts, err := p.PublishTo(1, message.Event{
				Attrs:   filter.Attributes{"topic": filter.String("a")},
				Payload: []byte("a"),
			})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, stamp{pub: 1, ts: ts})
		}
		return out
	}

	// Phase 1: live constream delivery.
	phase1 := pubTo(15)
	assertTimestamps(t, collectEvents(t, sub, 15), phase1)
	if err := sub.Ack(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(4 * testTick)

	// Phase 2: disconnect, publish a backlog, resume → the engine serves
	// a catchup stream and switches over to the constream, while the
	// other shards keep streaming background events.
	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}
	phase2 := pubTo(40)
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	assertTimestamps(t, collectEvents(t, sub, 40), phase2)
	if err := sub.Ack(); err != nil {
		t.Fatal(err)
	}

	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Errorf("pubend-1 subscriber: gaps=%d violations=%d with cross-shard traffic", gaps, violations)
	}
	if got := shb.SHBStats().Switchovers; got < 1 {
		t.Errorf("switchovers = %d, want ≥ 1 (catchup stream never handed over)", got)
	}

	// Release aggregation on pubend 1's shard must drain the PHB while
	// the other shards stay busy.
	pe := phb.Pubend(1)
	deadline := time.Now().Add(10 * time.Second)
	for pe.EventCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pubend 1 retains %d events after full ack", pe.EventCount())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The background pubends actually carried concurrent traffic.
	bgMu.Lock()
	bg := bgPublished
	bgMu.Unlock()
	if bg == 0 {
		t.Error("background publishers made no progress")
	}
}
