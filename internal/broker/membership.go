package broker

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/message"
	"repro/internal/overlay"
)

// Runtime membership: a live broker can change its position in the tree.
// SetUpstream re-parents it under a new parent, DetachUpstream turns it
// into a root. Both follow make-before-break: the new link must be fully
// up — Hello sent, dispatch started, covers and pending curiosity resynced
// (resyncUpstream) — before the old parent is told to forget this subtree
// via a deliberate Leave. Until that handover the old path keeps flowing,
// so no knowledge window opens; afterwards the knowledge/NACK protocol
// re-requests anything that raced the switch, and the constream cursor at
// each SHB deduplicates anything that arrives twice. See DESIGN §2.11.

// errStaleSupervisor aborts a retired supervisor's bring-up: its reconnect
// raced a re-parent and must not resynchronize state onto the abandoned
// path (the supervisor closes the conn and backs off until stopped).
var errStaleSupervisor = errors.New("broker: stale upstream supervisor")

// SetUpstream re-parents the live broker under the broker at addr. The new
// supervised link is established and resynchronized under ctx before the
// old parent (if any) is sent a Leave and torn down; on error the broker
// keeps its current parent. Re-parenting to the current parent's address
// with a healthy link is a no-op. Safe for concurrent use; serialized with
// DetachUpstream and shutdown.
func (b *Broker) SetUpstream(ctx context.Context, addr string) error {
	if addr == "" {
		return errors.New("broker: SetUpstream: empty address (use DetachUpstream)")
	}
	b.memberMu.Lock()
	defer b.memberMu.Unlock()
	if b.closed.Load() {
		return fmt.Errorf("broker %s: closed", b.cfg.Name)
	}
	if err := b.setUpstreamLocked(ctx, addr); err != nil {
		return err
	}
	// An operator re-parent moves the fail-over preference with it; a
	// repair-driven one (failoverTo) deliberately does not.
	if b.repairMon != nil {
		b.repairMon.SetPrimary(addr)
	}
	return nil
}

// setUpstreamLocked is the make-before-break switch shared by the
// operator path (SetUpstream) and the repair path (failoverTo). Callers
// hold memberMu and have checked closed.
func (b *Broker) setUpstreamLocked(ctx context.Context, addr string) error {
	old := b.upSup.Load()
	if old != nil && old.Addr() == addr && old.Status().State == overlay.LinkUp {
		return nil
	}
	sup := b.newUpstreamSup(addr)
	// Publish the candidate so its OnUp passes the generation guard while
	// the old supervisor is still installed (make-before-break).
	b.pendingSup.Store(sup)
	if err := sup.StartContext(ctx); err != nil {
		b.pendingSup.Store(nil)
		return fmt.Errorf("broker %s: set upstream %s: %w", b.cfg.Name, addr, err)
	}
	b.upSup.Store(sup)
	b.pendingSup.Store(nil)
	b.retireUpstream(old)
	return nil
}

// DetachUpstream makes the broker a root: the upstream link (if any) is
// sent a Leave and torn down. The subtree below keeps operating; hosted
// pubends and the SHB are unaffected. Safe for concurrent use.
func (b *Broker) DetachUpstream() {
	b.memberMu.Lock()
	defer b.memberMu.Unlock()
	b.retireUpstream(b.upSup.Swap(nil))
	if b.repairMon != nil {
		b.repairMon.SetPrimary("")
	}
	// Mint a fresh root epoch so positions learned under the old parent
	// are recognizably stale (see repair.Adoptable).
	b.becomeRoot()
}

// retireUpstream tells the old parent this departure is deliberate — so it
// may purge this subtree's covers and release floors after its grace
// period instead of retaining them for a crash-reconnect — then stops the
// supervisor. Sent on the link's conn directly: the supervisor is being
// retired, and a failed send just means the old parent treats us as
// crashed (safe: crash retains state). Callers hold memberMu.
func (b *Broker) retireUpstream(old *overlay.Supervisor) {
	if old == nil {
		return
	}
	if c := old.Conn(); c != nil {
		c.Send(&message.Leave{Name: b.cfg.Name}) //nolint:errcheck,gosec // crash semantics are the safe fallback
	}
	old.Stop()
}

// UpstreamAddr reports the current parent's dial address ("" for a root).
func (b *Broker) UpstreamAddr() string {
	if sup := b.upSup.Load(); sup != nil {
		return sup.Addr()
	}
	return ""
}
