package broker

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// startRelayFO starts a relay with automatic fail-over armed.
func startRelayFO(t *testing.T, tr overlay.Transport, name, upstream string, parents []string, cfg Config) *Broker {
	t.Helper()
	cfg.Name = name
	cfg.Transport = tr
	cfg.ListenAddr = name
	cfg.UpstreamAddr = upstream
	cfg.Parents = parents
	cfg.TickInterval = testTick
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.FailoverAfter == 0 {
		cfg.FailoverAfter = 40 * time.Millisecond
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() }) //nolint:errcheck
	return b
}

// startSHBFO starts an SHB with automatic fail-over armed.
func startSHBFO(t *testing.T, tr overlay.Transport, name, upstream string, parents []string, cfg Config) *Broker {
	t.Helper()
	cfg.DataDir = filepath.Join(t.TempDir(), name)
	cfg.EnableSHB = true
	cfg.AllPubends = []vtime.PubendID{1}
	return startRelayFO(t, tr, name, upstream, parents, cfg)
}

func waitUpstream(t *testing.T, b *Broker, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b.UpstreamAddr() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("broker %s: upstream = %q, want %q (tree=%+v)", b.Name(), b.UpstreamAddr(), want, b.TreeInfo())
}

func waitTreeDepth(t *testing.T, b *Broker, want uint32) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ti := b.TreeInfo(); ti.Known && ti.Depth == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("broker %s: tree = %+v, want depth %d", b.Name(), b.TreeInfo(), want)
}

// The basic promise: when the SHB's parent dies and stays dead, the SHB
// adopts its candidate parent on its own — no operator SetUpstream — and
// the exactly-once delivery contract carries across the repair.
func TestAutomaticFailover(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name:       "fophb",
		DataDir:    filepath.Join(t.TempDir(), "fophb"),
		ListenAddr: "fophb",
	}, 1, nil)
	mid1 := startRelayThrough(t, netw, "fomid1", "fophb")
	startRelayThrough(t, netw, "fomid2", "fophb")
	shb := startSHBFO(t, netw, "foshb", "fomid1", []string{"fomid2"}, Config{})

	p, err := client.NewPublisher(context.Background(), netw, "fophb", "fopub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 9101, Filter: `topic = "fo"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "foshb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "fo", 20)
	got := collectEvents(t, sub, 20)
	waitTreeDepth(t, shb, 2) // position learned through mid1

	mid1.Crash()
	// Publish into the outage: the PHB keeps logging; the repaired path
	// must replay the gap.
	want = append(want, pub(t, p, "fo", 50)...)
	waitUpstream(t, shb, "fomid2")
	want = append(want, pub(t, p, "fo", 30)...)
	got = append(got, collectEvents(t, sub, 80)...)

	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across failover: gaps=%d violations=%d", gaps, violations)
	}
	st := shb.RepairStats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if len(st.Repairs) != 1 || st.Repairs[0] <= 0 {
		t.Fatalf("repairs = %v, want one positive time-to-repair", st.Repairs)
	}
	// The candidate pseudo-entries ride along in Health, distinguishable
	// from real links.
	var real, cand int
	for _, h := range shb.Health() {
		if IsCandidateLink(h) {
			cand++
		} else {
			real++
		}
	}
	if real != 1 || cand != 1 {
		t.Fatalf("health = %+v, want 1 real + 1 candidate entry", shb.Health())
	}
}

// PreferPrimary: after the dead primary returns, the broker goes home on
// its own (post holddown), and the operator-intended primary never moved.
func TestFailbackToPrimary(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name:       "fbphb",
		DataDir:    filepath.Join(t.TempDir(), "fbphb"),
		ListenAddr: "fbphb",
	}, 1, nil)
	mid1 := startRelayThrough(t, netw, "fbmid1", "fbphb")
	startRelayThrough(t, netw, "fbmid2", "fbphb")
	shb := startSHBFO(t, netw, "fbshb", "fbmid1", []string{"fbmid2"}, Config{
		FailoverAfter:    30 * time.Millisecond,
		FailoverHolddown: 60 * time.Millisecond,
		PreferPrimary:    true,
	})

	p, err := client.NewPublisher(context.Background(), netw, "fbphb", "fbpub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 9102, Filter: `topic = "fb"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "fbshb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "fb", 10)
	got := collectEvents(t, sub, 10)
	waitTreeDepth(t, shb, 2)

	mid1.Crash()
	waitUpstream(t, shb, "fbmid2")
	want = append(want, pub(t, p, "fb", 30)...)
	got = append(got, collectEvents(t, sub, 30)...)

	// The primary returns; the broker must find its way home.
	mid1b, err := New(Config{
		Name:         "fbmid1",
		Transport:    netw,
		ListenAddr:   "fbmid1",
		UpstreamAddr: "fbphb",
		DialTimeout:  500 * time.Millisecond,
		TickInterval: testTick,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mid1b.Close() //nolint:errcheck
	waitUpstream(t, shb, "fbmid1")

	want = append(want, pub(t, p, "fb", 30)...)
	got = append(got, collectEvents(t, sub, 30)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across failback: gaps=%d violations=%d", gaps, violations)
	}
	st := shb.RepairStats()
	if st.Failovers < 1 || st.Failbacks < 1 {
		t.Fatalf("stats = %+v, want >=1 failover and >=1 failback", st)
	}
}

// Loop-freedom when a whole subtree is orphaned together: in the chain
// phb → a → b → c, broker b lists its own descendant c FIRST among its
// candidates. When a dies, b must skip c (c's advertised position — same
// root and epoch, greater depth — proves it hangs below b) and adopt phb.
func TestOrphanedSubtreeAvoidsOwnDescendant(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name:       "lfphb",
		DataDir:    filepath.Join(t.TempDir(), "lfphb"),
		ListenAddr: "lfphb",
	}, 1, nil)
	a := startRelayThrough(t, netw, "lfa", "lfphb")
	b := startRelayFO(t, netw, "lfb", "lfa", []string{"lfc", "lfphb"}, Config{})
	c := startSHBFO(t, netw, "lfc", "lfb", nil, Config{})

	// Wait for positions to flood down the chain before the kill, so b
	// and c genuinely carry the "orphaned together" info.
	waitTreeDepth(t, b, 2)
	waitTreeDepth(t, c, 3)

	p, err := client.NewPublisher(context.Background(), netw, "lfphb", "lfpub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 9103, Filter: `topic = "lf"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "lfc"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	want := pub(t, p, "lf", 10)
	got := collectEvents(t, sub, 10)

	a.Crash()
	want = append(want, pub(t, p, "lf", 40)...)
	waitUpstream(t, b, "lfphb")
	waitTreeDepth(t, b, 1)
	waitTreeDepth(t, c, 2)

	got = append(got, collectEvents(t, sub, 40)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across subtree repair: gaps=%d violations=%d", gaps, violations)
	}
	if st := b.RepairStats(); st.Failovers != 1 {
		t.Fatalf("b failovers = %d, want exactly 1 (no c adoption attempt should have counted)", st.Failovers)
	}
	if c.UpstreamAddr() != "lfb" {
		t.Fatalf("c moved to %q; its live link to b should have held", c.UpstreamAddr())
	}
}

// A blinking primary link must not thrash the tree: the holddown bounds
// how often repair-driven re-parents (fail-over or fail-back) may fire.
func TestFailoverFlapDamping(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fn := faultnet.New(netw, 41)
	startBroker(t, netw, Config{
		Name:       "flphb",
		DataDir:    filepath.Join(t.TempDir(), "flphb"),
		ListenAddr: "flphb",
	}, 1, nil)
	startRelayThrough(t, netw, "flmid1", "flphb")
	startRelayThrough(t, netw, "flmid2", "flphb")
	// Every link the SHB dials to mid1 dies after a handful of sends —
	// the primary "blinks" for the whole test.
	fn.SeverAfterSends("flmid1", 4, 8)
	holddown := 150 * time.Millisecond
	shb := startSHBFO(t, fn, "flshb", "flmid1", []string{"flmid2"}, Config{
		FailoverAfter:    15 * time.Millisecond,
		FailoverHolddown: holddown,
		PreferPrimary:    true,
	})

	p, err := client.NewPublisher(context.Background(), netw, "flphb", "flpub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 9104, Filter: `topic = "fl"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "flshb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	began := time.Now()
	var want []stamp
	for time.Since(began) < 600*time.Millisecond {
		want = append(want, pub(t, p, "fl", 5)...)
		time.Sleep(10 * time.Millisecond)
	}
	elapsed := time.Since(began)
	st := shb.RepairStats()
	switches := st.Failovers + st.Failbacks
	// Each repair-driven move (either direction) is spaced by at least
	// the holddown; +2 covers moves straddling the window edges.
	if limit := uint64(elapsed/holddown) + 2; switches > limit {
		t.Fatalf("flap damping failed: %d switches in %v (holddown %v, limit %d)", switches, elapsed, holddown, limit)
	}
	// And the subscriber still gets everything exactly once.
	got := collectEvents(t, sub, len(want))
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken under flapping: gaps=%d violations=%d", gaps, violations)
	}
}

// A deliberate Leave purges the departed child's covers after LeaveGrace;
// a crash retains them (the returning subtree's recovery depends on it).
func TestLeaveGraceExpiry(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	grace := 50 * time.Millisecond
	parent := startBroker(t, netw, Config{
		Name:       "lgphb",
		DataDir:    filepath.Join(t.TempDir(), "lgphb"),
		ListenAddr: "lgphb",
		LeaveGrace: grace,
	}, 1, nil)

	attach := func(name string, id vtime.SubscriberID) (*Broker, *client.Subscriber) {
		shb := startSHBThrough(t, netw, name, "lgphb", "")
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID: id, Filter: `topic = "lg"`, AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.Connect(context.Background(), netw, name); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sub.Disconnect() }) //nolint:errcheck
		return shb, sub
	}
	waitCovers := func(what string, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if members, _ := parent.CoverStats(); members == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		members, _ := parent.CoverStats()
		t.Fatalf("%s: parent covers = %d, want %d", what, members, want)
	}

	leaver, leaverSub := attach("lgleave", 9201)
	waitCovers("after leaver subscribe", 1)

	crasher, _ := attach("lgcrash", 9202)
	waitCovers("after crasher subscribe", 2)

	// Deliberate departure: Leave purges the leaver's cover after grace.
	leaverSub.Disconnect() //nolint:errcheck
	leaver.DetachUpstream()
	waitCovers("after deliberate leave + grace", 1)

	// Crash: the cover must survive well past the same grace period.
	crasher.Crash()
	time.Sleep(4 * grace)
	if members, _ := parent.CoverStats(); members != 1 {
		t.Fatalf("crash purged covers: members = %d, want 1 (crash retains state)", members)
	}
}
