package broker

import (
	"context"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/overlay"
)

// adminGet fetches an admin endpoint path from a broker.
func adminGet(t *testing.T, b *Broker, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + b.AdminAddr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts an unlabeled sample value from exposition text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in exposition output", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

func TestAdminEndpoint(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	b := startBroker(t, netw, Config{
		Name:       "badmin",
		DataDir:    filepath.Join(t.TempDir(), "badmin"),
		ListenAddr: "badmin",
		EnableSHB:  true,
		AdminAddr:  "127.0.0.1:0",
	}, 1, nil)
	if b.AdminAddr() == "" || strings.HasSuffix(b.AdminAddr(), ":0") {
		t.Fatalf("AdminAddr = %q, want resolved ephemeral address", b.AdminAddr())
	}

	// A started broker is live and ready.
	if code, body := adminGet(t, b, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d %q, want 200", code, body)
	}
	if code, body := adminGet(t, b, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d %q, want 200", code, body)
	}
	if code, _ := adminGet(t, b, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d, want 200", code)
	}

	// Drive traffic and watch it in /metrics.
	p, err := client.NewPublisher(context.Background(), netw, "badmin", "adm-pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 801, Filter: `topic = "adm"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "badmin"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	stamps := pub(t, p, "adm", 5)
	collectEvents(t, sub, len(stamps))

	_, text := adminGet(t, b, "/metrics")
	if !strings.Contains(text, "# TYPE gryphon_broker_publishes_total counter") {
		t.Fatalf("/metrics missing publishes TYPE line:\n%.500s", text)
	}
	if got := metricValue(t, text, "gryphon_broker_publishes_total"); got < 5 {
		t.Fatalf("gryphon_broker_publishes_total = %v, want >= 5", got)
	}
	if got := metricValue(t, text, "gryphon_core_events_delivered_total"); got < 5 {
		t.Fatalf("gryphon_core_events_delivered_total = %v, want >= 5", got)
	}
	if got := metricValue(t, text, "gryphon_logvol_appends_total"); got < 5 {
		t.Fatalf("gryphon_logvol_appends_total = %v, want >= 5", got)
	}
	if got := metricValue(t, text, "gryphon_broker_publish_seconds_count"); got < 5 {
		t.Fatalf("publish latency histogram count = %v, want >= 5", got)
	}
}

func TestAdminEndpointDisabledByDefault(t *testing.T) {
	_, b := net1(t, 1)
	if addr := b.AdminAddr(); addr != "" {
		t.Fatalf("AdminAddr = %q, want empty when not configured", addr)
	}
}

func TestAdminEndpointClosesWithBroker(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	cfg := Config{
		Name:         "badmin2",
		DataDir:      filepath.Join(t.TempDir(), "badmin2"),
		Transport:    netw,
		ListenAddr:   "badmin2",
		TickInterval: testTick,
		AdminAddr:    "127.0.0.1:0",
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := b.AdminAddr()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatalf("admin endpoint still serving after broker Close")
	}
}
