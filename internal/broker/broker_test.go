package broker

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/vtime"
)

const testTick = 2 * time.Millisecond

// net1 builds a single-broker topology (PHB+SHB in one), the paper's
// "1 broker" configuration.
func net1(t *testing.T, pubs int) (*overlay.InprocNetwork, *Broker) {
	t.Helper()
	netw := overlay.NewInprocNetwork(0)
	b := startBroker(t, netw, Config{
		Name:       "b1",
		DataDir:    filepath.Join(t.TempDir(), "b1"),
		ListenAddr: "b1",
		EnableSHB:  true,
	}, pubs, nil)
	return netw, b
}

// startBroker fills in common fields and starts a broker hosting `pubs`
// pubends when pubs > 0.
func startBroker(t *testing.T, netw *overlay.InprocNetwork, cfg Config, pubs int, pol pubend.Policy) *Broker {
	t.Helper()
	cfg.Transport = netw
	cfg.TickInterval = testTick
	var all []vtime.PubendID
	for i := 1; i <= maxInt(pubs, 1); i++ {
		all = append(all, vtime.PubendID(i))
	}
	if pubs > 0 {
		for i := 1; i <= pubs; i++ {
			cfg.HostedPubends = append(cfg.HostedPubends, PubendConfig{
				ID:     vtime.PubendID(i),
				Policy: pol,
			})
		}
	}
	if cfg.EnableSHB && cfg.AllPubends == nil {
		cfg.AllPubends = all
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() }) //nolint:errcheck
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// stamp is a published event's identity.
type stamp struct {
	pub vtime.PubendID
	ts  vtime.Timestamp
}

// pub publishes n events with the given topic, returning their stamps in
// publish order.
func pub(t *testing.T, p *client.Publisher, topic string, n int) []stamp {
	t.Helper()
	var out []stamp
	for i := 0; i < n; i++ {
		pe, ts, err := p.Publish(message.Event{
			Attrs:   filter.Attributes{"topic": filter.String(topic)},
			Payload: []byte(fmt.Sprintf("%s-%d", topic, i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, stamp{pub: pe, ts: ts})
	}
	return out
}

// collectEvents drains n event deliveries from a subscriber with a
// deadline.
func collectEvents(t *testing.T, s *client.Subscriber, n int) []*message.Event {
	t.Helper()
	var out []*message.Event
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case d := <-s.Deliveries():
			if d.Kind == message.DeliverEvent {
				out = append(out, d.Event)
			}
		case <-deadline:
			t.Fatalf("timeout: collected %d of %d events", len(out), n)
		}
	}
	return out
}

// assertTimestamps checks that, per pubend, the delivered events are
// exactly the published ones in timestamp order — the delivery contract.
// Global interleaving across pubends is unordered by design.
func assertTimestamps(t *testing.T, evs []*message.Event, want []stamp) {
	t.Helper()
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	wantByPub := map[vtime.PubendID][]vtime.Timestamp{}
	for _, st := range want {
		wantByPub[st.pub] = append(wantByPub[st.pub], st.ts)
	}
	gotByPub := map[vtime.PubendID][]vtime.Timestamp{}
	for _, ev := range evs {
		gotByPub[ev.Pubend] = append(gotByPub[ev.Pubend], ev.Timestamp)
	}
	for pe, wantTS := range wantByPub {
		gotTS := gotByPub[pe]
		if len(gotTS) != len(wantTS) {
			t.Fatalf("pubend %v: got %d events, want %d", pe, len(gotTS), len(wantTS))
		}
		for i := range wantTS {
			if gotTS[i] != wantTS[i] {
				t.Fatalf("pubend %v event %d: ts %d, want %d", pe, i, gotTS[i], wantTS[i])
			}
		}
	}
}

func TestSingleBrokerPubSub(t *testing.T) {
	netw, _ := net1(t, 1)
	p, err := client.NewPublisher(context.Background(), netw, "b1", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "a", 25)
	pub(t, p, "b", 10) // non-matching
	got := collectEvents(t, sub, 25)
	assertTimestamps(t, got, want)
	if _, _, _, violations := sub.Stats(); violations != 0 {
		t.Errorf("ordering violations: %d", violations)
	}
}

func TestTwoBrokerDisconnectReconnect(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name: "phb", DataDir: filepath.Join(t.TempDir(), "phb"), ListenAddr: "phb",
	}, 2, nil)
	startBroker(t, netw, Config{
		Name: "shb", DataDir: filepath.Join(t.TempDir(), "shb"), ListenAddr: "shb",
		UpstreamAddr: "phb", EnableSHB: true,
		AllPubends: []vtime.PubendID{1, 2},
	}, 0, nil)

	p, err := client.NewPublisher(context.Background(), netw, "phb", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}

	phase1 := pub(t, p, "a", 10)
	got := collectEvents(t, sub, 10)
	assertTimestamps(t, got, phase1)

	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}
	phase2 := pub(t, p, "a", 20)
	time.Sleep(20 * time.Millisecond) // let the SHB consume while sub is away

	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	got = collectEvents(t, sub, 20)
	assertTimestamps(t, got, phase2)
	events, _, gaps, violations := sub.Stats()
	if events != 30 || gaps != 0 || violations != 0 {
		t.Errorf("stats: events=%d gaps=%d violations=%d", events, gaps, violations)
	}
}

func TestFiveBrokerChainLatencyPath(t *testing.T) {
	// PHB -> i1 -> i2 -> i3 -> SHB: the paper's 5-hop latency topology.
	netw := overlay.NewInprocNetwork(0)
	dir := t.TempDir()
	startBroker(t, netw, Config{
		Name: "phb", DataDir: filepath.Join(dir, "phb"), ListenAddr: "phb",
	}, 1, nil)
	for i, name := range []string{"i1", "i2", "i3"} {
		up := "phb"
		if i > 0 {
			up = fmt.Sprintf("i%d", i)
		}
		startBroker(t, netw, Config{
			Name: name, ListenAddr: name, UpstreamAddr: up,
		}, 0, nil)
	}
	startBroker(t, netw, Config{
		Name: "shb", DataDir: filepath.Join(dir, "shb"), ListenAddr: "shb",
		UpstreamAddr: "i3", EnableSHB: true, AllPubends: []vtime.PubendID{1},
	}, 0, nil)

	p, err := client.NewPublisher(context.Background(), netw, "phb", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "a", 15)
	got := collectEvents(t, sub, 15)
	assertTimestamps(t, got, want)

	// Disconnect/reconnect across the chain: nacks must be served from
	// the intermediate relay caches or the pubend.
	sub.Disconnect() //nolint:errcheck
	missed := pub(t, p, "a", 25)
	time.Sleep(20 * time.Millisecond)
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	got = collectEvents(t, sub, 25)
	assertTimestamps(t, got, missed)
}

func TestFanoutTwoSHBs(t *testing.T) {
	// phb -> mid -> {shb1, shb2}: the paper's 2-SHB scalability shape.
	netw := overlay.NewInprocNetwork(0)
	dir := t.TempDir()
	startBroker(t, netw, Config{
		Name: "phb", DataDir: filepath.Join(dir, "phb"), ListenAddr: "phb",
	}, 1, nil)
	startBroker(t, netw, Config{Name: "mid", ListenAddr: "mid", UpstreamAddr: "phb"}, 0, nil)
	for _, name := range []string{"shb1", "shb2"} {
		startBroker(t, netw, Config{
			Name: name, DataDir: filepath.Join(dir, name), ListenAddr: name,
			UpstreamAddr: "mid", EnableSHB: true, AllPubends: []vtime.PubendID{1},
		}, 0, nil)
	}
	p, err := client.NewPublisher(context.Background(), netw, "phb", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	var subs []*client.Subscriber
	for i, shb := range []string{"shb1", "shb1", "shb2", "shb2"} {
		topic := []string{"a", "b"}[i%2]
		s, err := client.NewSubscriber(client.SubscriberOptions{
			ID:     vtime.SubscriberID(i + 1),
			Filter: `topic = "` + topic + `"`, AckInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Connect(context.Background(), netw, shb); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	defer func() {
		for _, s := range subs {
			s.Disconnect() //nolint:errcheck
		}
	}()

	wantA := pub(t, p, "a", 12)
	wantB := pub(t, p, "b", 12)
	assertTimestamps(t, collectEvents(t, subs[0], 12), wantA)
	assertTimestamps(t, collectEvents(t, subs[2], 12), wantA)
	assertTimestamps(t, collectEvents(t, subs[1], 12), wantB)
	assertTimestamps(t, collectEvents(t, subs[3], 12), wantB)
}

func TestSHBCrashRecoveryEndToEnd(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	dir := t.TempDir()
	shbDir := filepath.Join(dir, "shb")
	startBroker(t, netw, Config{
		Name: "phb", DataDir: filepath.Join(dir, "phb"), ListenAddr: "phb",
	}, 1, nil)
	shbCfg := Config{
		Name: "shb", DataDir: shbDir, ListenAddr: "shb",
		UpstreamAddr: "phb", EnableSHB: true, AllPubends: []vtime.PubendID{1},
		Transport: netw, TickInterval: testTick,
	}
	shb, err := New(shbCfg)
	if err != nil {
		t.Fatal(err)
	}

	p, err := client.NewPublisher(context.Background(), netw, "phb", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}

	phase1 := pub(t, p, "a", 10)
	assertTimestamps(t, collectEvents(t, sub, 10), phase1)
	if err := sub.Ack(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(4 * testTick) // let the ack land and persist

	// Crash the SHB: the subscriber's connection dies with it.
	shb.Crash()
	phase2 := pub(t, p, "a", 20)

	// Restart from the same data directory and reconnect the subscriber.
	shb2, err := New(shbCfg)
	if err != nil {
		t.Fatalf("SHB restart: %v", err)
	}
	defer shb2.Close() //nolint:errcheck
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sub.Connect(context.Background(), netw, "shb"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("could not reconnect after SHB restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer sub.Disconnect() //nolint:errcheck

	got := collectEvents(t, sub, 20)
	gotSet := map[stamp]bool{}
	for _, ev := range got {
		gotSet[stamp{pub: ev.Pubend, ts: ev.Timestamp}] = true
	}
	for _, st := range phase2 {
		if !gotSet[st] {
			t.Errorf("event %v lost across SHB crash", st)
		}
	}
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Errorf("gaps=%d violations=%d after crash recovery", gaps, violations)
	}
}

func TestReleaseReachesPubend(t *testing.T) {
	netw, b := net1(t, 1)
	p, err := client.NewPublisher(context.Background(), netw, "b1", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	pub(t, p, "a", 30)
	collectEvents(t, sub, 30)
	if err := sub.Ack(); err != nil {
		t.Fatal(err)
	}
	pe := b.Pubend(1)
	deadline := time.Now().Add(5 * time.Second)
	for pe.EventCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pubend retains %d events after full ack", pe.EventCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if b.Released(1) == 0 {
		t.Error("SHB released(p) never advanced")
	}
}

func TestEarlyReleaseGapEndToEnd(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	dir := t.TempDir()
	// 30ms virtual retention. The tiny SHB event cache forces the
	// lagging subscriber's catchup to fetch from the pubend, which has
	// already early-released the backlog and answers with L — without
	// it the SHB's own cache would (correctly) serve the events and no
	// gap would be needed.
	pol := pubend.MaxRetain{Retain: 30 * vtime.TicksPerMilli}
	startBroker(t, netw, Config{
		Name: "b1", DataDir: filepath.Join(dir, "b1"), ListenAddr: "b1", EnableSHB: true,
		EventCacheSize: 4,
	}, 1, pol)

	p, err := client.NewPublisher(context.Background(), netw, "b1", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	// Keep one live subscriber so latestDelivered advances.
	live, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 2, Filter: `topic = "a"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	defer live.Disconnect() //nolint:errcheck

	lagging, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lagging.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	if err := lagging.Disconnect(); err != nil {
		t.Fatal(err)
	}

	pub(t, p, "a", 20)
	collectEvents(t, live, 20)
	if err := live.Ack(); err != nil {
		t.Fatal(err)
	}
	// Wait past the retention window so the lagging subscriber's backlog
	// is early-released.
	time.Sleep(80 * time.Millisecond)
	pub(t, p, "a", 1) // advance T(p) and trigger policy evaluation
	time.Sleep(20 * time.Millisecond)

	if err := lagging.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	defer lagging.Disconnect() //nolint:errcheck
	deadline := time.After(5 * time.Second)
	sawGap := false
	for !sawGap {
		select {
		case d := <-lagging.Deliveries():
			if d.Kind == message.DeliverGap {
				sawGap = true
			}
		case <-deadline:
			_, _, gaps, _ := lagging.Stats()
			t.Fatalf("no gap delivered to lagging subscriber (gaps=%d)", gaps)
		}
	}
	if _, _, _, violations := lagging.Stats(); violations != 0 {
		t.Errorf("violations: %d", violations)
	}
}

func TestPublishToNonPHBRejected(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name: "shb-only", DataDir: filepath.Join(t.TempDir(), "s"), ListenAddr: "s",
		EnableSHB: true, AllPubends: []vtime.PubendID{1},
	}, 0, nil)
	p, err := client.NewPublisher(context.Background(), netw, "s", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	if _, _, err := p.Publish(message.Event{Attrs: filter.Attributes{"x": filter.Int(1)}}); err == nil {
		t.Error("publish to non-PHB succeeded")
	}
}

func TestSubscribeToNonSHBRejected(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name: "phb-only", DataDir: filepath.Join(t.TempDir(), "p"), ListenAddr: "p",
	}, 1, nil)
	sub, err := client.NewSubscriber(client.SubscriberOptions{ID: 1, Filter: `true`})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "p"); err == nil {
		t.Error("subscribe to non-SHB succeeded")
		sub.Disconnect() //nolint:errcheck
	}
}

func TestBrokerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without transport succeeded")
	}
	netw := overlay.NewInprocNetwork(0)
	if _, err := New(Config{Transport: netw, EnableSHB: true, ListenAddr: "x"}); err == nil {
		t.Error("SHB without DataDir succeeded")
	}
	if _, err := New(Config{
		Transport: netw, EnableSHB: true, DataDir: t.TempDir(), ListenAddr: "y",
	}); err == nil {
		t.Error("SHB without AllPubends succeeded")
	}
}

func TestBrokerDoubleCloseAndCrash(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	b := startBroker(t, netw, Config{
		Name: "b", DataDir: filepath.Join(t.TempDir(), "b"), ListenAddr: "b", EnableSHB: true,
	}, 1, nil)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	b.Crash() // after close: no-op
}

func TestClientCTPersistence(t *testing.T) {
	netw, _ := net1(t, 1)
	ctPath := filepath.Join(t.TempDir(), "sub.ct")
	p, err := client.NewPublisher(context.Background(), netw, "b1", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, CTPath: ctPath, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	want := pub(t, p, "a", 10)
	collectEvents(t, sub, 10)
	if err := sub.Disconnect(); err != nil { // persists the CT
		t.Fatal(err)
	}

	missed := pub(t, p, "a", 5)
	_ = want

	// A brand-new Subscriber object (simulating a client process
	// restart) resumes from the persisted token: no duplicates.
	sub2, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, CTPath: ctPath, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub2.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	defer sub2.Disconnect() //nolint:errcheck
	got := collectEvents(t, sub2, 5)
	assertTimestamps(t, got, missed)
}

func TestReconnectAnywhere(t *testing.T) {
	// The paper's section 1, feature 5: a durable subscriber reconnects
	// to a DIFFERENT SHB. The new SHB has no PFS history for it, so the
	// missed interval is recovered by retrieving events from the
	// caches/PHB and refiltering them.
	netw := overlay.NewInprocNetwork(0)
	dir := t.TempDir()
	startBroker(t, netw, Config{
		Name: "phb", DataDir: filepath.Join(dir, "phb"), ListenAddr: "phb",
	}, 1, nil)
	for _, name := range []string{"shbA", "shbB"} {
		startBroker(t, netw, Config{
			Name: name, DataDir: filepath.Join(dir, name), ListenAddr: name,
			UpstreamAddr: "phb", EnableSHB: true, AllPubends: []vtime.PubendID{1},
		}, 0, nil)
	}
	p, err := client.NewPublisher(context.Background(), netw, "phb", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shbA"); err != nil {
		t.Fatal(err)
	}
	phase1 := pub(t, p, "a", 10)
	assertTimestamps(t, collectEvents(t, sub, 10), phase1)
	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}

	// Published while away; non-matching events interleaved so the
	// refiltering path is exercised (the new SHB must NOT deliver them).
	var missed []stamp
	for i := 0; i < 15; i++ {
		missed = append(missed, pub(t, p, "a", 1)...)
		pub(t, p, "zzz", 1)
	}
	time.Sleep(30 * time.Millisecond)

	// Reconnect at shbB, which has never seen this subscriber.
	if err := sub.Connect(context.Background(), netw, "shbB"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	got := collectEvents(t, sub, 15)
	assertTimestamps(t, got, missed)
	events, _, gaps, violations := sub.Stats()
	if events != 25 || gaps != 0 || violations != 0 {
		t.Errorf("stats: events=%d gaps=%d violations=%d", events, gaps, violations)
	}
	// Live delivery continues at the new SHB.
	live := pub(t, p, "a", 3)
	assertTimestamps(t, collectEvents(t, sub, 3), live)
}

func TestUnsubscribeEndToEnd(t *testing.T) {
	netw, b := net1(t, 1)
	p, err := client.NewPublisher(context.Background(), netw, "b1", "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck

	// A consumer that acks, and a hoarder that unsubscribes.
	consumer, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `topic = "a"`, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	defer consumer.Disconnect() //nolint:errcheck
	hoarder, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 2, Filter: `topic = "a"`, AckInterval: time.Hour, // never acks
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hoarder.Connect(context.Background(), netw, "b1"); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range hoarder.Deliveries() { //nolint:revive // drain
		}
	}()

	pub(t, p, "a", 20)
	collectEvents(t, consumer, 20)
	if err := consumer.Ack(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	pe := b.Pubend(1)
	if pe.EventCount() == 0 {
		t.Fatal("hoarder did not hold the backlog")
	}
	// Unsubscribing the hoarder releases everything.
	if err := hoarder.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pe.EventCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pubend retains %d events after unsubscribe", pe.EventCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
