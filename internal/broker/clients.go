package broker

import (
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/pubend"
	"repro/internal/vtime"
)

// handlePublish logs one published event at a hosted pubend and
// acknowledges the publisher. It runs on the publisher connection's
// dispatch goroutine — pubends are thread-safe and this keeps the paper's
// "event is logged once, at the PHB, before anything else happens" on the
// shortest path. The publish is pipelined: the ack is sent from the
// completion callback once the event is durably logged, so on a
// group-commit volume the connection goroutine is free to start logging
// the next publish while this one's fsync is in flight. Acks may therefore
// complete out of order; the client matches them by token.
func (b *Broker) handlePublish(link *downLink, pub *message.Publish) {
	pe := b.pickPubend(pub.PubendHint)
	if pe == nil {
		//nolint:errcheck,gosec // reply failure == dead link, handled via OnClose
		link.conn.Send(&message.PublishAck{Token: pub.Token})
		return
	}
	pubStart := time.Now()
	token := pub.Token
	conn := link.conn
	b.pubInflight.Add(1)
	res := pe.PublishAsync(message.Event{Attrs: pub.Attrs, Payload: pub.Payload})
	res.OnDone(func(ev *message.Event, err error) {
		// Runs on the volume committer's dispatcher (group commit) or
		// inline (synchronous policies). conn.Send only enqueues, so the
		// callback never blocks the commit pipeline.
		b.pubInflight.Add(-1)
		ack := &message.PublishAck{Token: token}
		if err == nil {
			ack.Pubend = ev.Pubend
			ack.Timestamp = ev.Timestamp
			tPublishes.Inc()
			tPublishSeconds.ObserveDuration(time.Since(pubStart))
		}
		conn.Send(ack) //nolint:errcheck,gosec // reply failure == dead link
	})
}

// pickPubend selects the hosted pubend for a publish: the hint when it is
// hosted here, round-robin otherwise (the paper assigns events to pubends
// "based on some criteria such as the identity of the publisher").
func (b *Broker) pickPubend(hint vtime.PubendID) *pubend.Pubend {
	if pe, ok := b.pubends[hint]; ok {
		return pe
	}
	if len(b.hostedIDs) == 0 {
		return nil
	}
	i := b.pubRR.Add(1) % uint64(len(b.hostedIDs))
	return b.pubends[b.hostedIDs[i]]
}

// handleSubscribe attaches a durable subscriber to the local SHB engine and
// propagates its subscription toward the PHBs for link filtering.
func (b *Broker) handleSubscribe(link *downLink, req *message.Subscribe) {
	if b.shb == nil {
		//nolint:errcheck,gosec // reply failure == dead link
		link.conn.Send(&message.SubscribeAck{
			Subscriber: req.Subscriber,
			CT:         vtime.NewCheckpointToken(),
			Err:        "broker does not host subscribers",
		})
		return
	}
	// Register the delivery route before Subscribe: the engine pumps
	// catchup deliveries synchronously inside it. Those deliveries reach
	// the client ahead of the SubscribeAck, which is safe — on a resume
	// the client's checkpoint token absorbs them either way.
	b.clients.Store(req.Subscriber, link.conn)
	ct, err := b.shb.Subscribe(req)
	if err != nil {
		b.clients.Delete(req.Subscriber)
		//nolint:errcheck,gosec // reply failure == dead link
		link.conn.Send(&message.SubscribeAck{
			Subscriber: req.Subscriber,
			CT:         vtime.NewCheckpointToken(),
			Err:        err.Error(),
		})
		return
	}
	//nolint:errcheck,gosec // reply failure == dead link
	link.conn.Send(&message.SubscribeAck{Subscriber: req.Subscriber, CT: ct})
	// Propagate toward the PHBs through the covering set: if an announced
	// cover subsumes this filter, nothing travels upstream. Subscribe
	// succeeded, so the filter is known to parse.
	if sub, err := filter.Parse(req.Filter); err == nil {
		b.coverAdd(req.Subscriber, sub, coverSrcLocal)
	} else {
		b.upSend(&message.SubUpdate{Subscriber: req.Subscriber, Filter: req.Filter})
	}
}
