// Package broker implements the overlay broker node. A broker can play any
// combination of the three roles of the paper:
//
//   - publisher hosting broker (PHB): hosts pubends, logs each published
//     event exactly once, serves recovery nacks from its log, and runs the
//     event retention and release protocol;
//   - intermediate broker: caches knowledge flowing down the tree, filters
//     events per downstream link (D→S when nothing below the link
//     matches), consolidates nacks flowing up, and aggregates release
//     vectors;
//   - subscriber hosting broker (SHB): hosts durable subscribers through
//     the core engine (consolidated stream, catchup streams, PFS).
//
// Brokers form a tree rooted at the PHB (the knowledge graph of section 3).
//
// Concurrency model: the broker runs Config.Shards event-loop goroutines.
// Every pubend maps to one shard (pubend id mod shard count), and all work
// for that pubend — knowledge relay, nack routing, release aggregation,
// tick draining — always runs on its shard, so per-pubend processing stays
// strictly FIFO while distinct pubends proceed in parallel. Shard 0
// doubles as the control shard: link lifecycle and subscription changes
// run there and fan out to the event shards through an atomic snapshot of
// the downstream-link set (with Shards=1 everything lands on shard 0,
// reproducing the original single-loop broker). Thread-safe components
// (pubends, the core engine, the client registry, link sends, per-link
// matchers) are called directly from whichever goroutine holds the
// message; see DESIGN.md "Broker concurrency model" for the ownership
// rules.
package broker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/matchidx"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/overlay"
	"repro/internal/pfs"
	"repro/internal/pubend"
	"repro/internal/repair"
	"repro/internal/ringq"
	"repro/internal/telemetry"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Routing instruments (process-wide; see internal/telemetry).
var (
	tPublishes = telemetry.Default().Counter("gryphon_broker_publishes_total",
		"Events accepted by hosted pubends.")
	tPublishSeconds = telemetry.Default().DurationHistogram("gryphon_broker_publish_seconds",
		"PHB publish latency including the forced log write.", telemetry.FastBuckets)
	tForwarded = telemetry.Default().Counter("gryphon_broker_events_forwarded_total",
		"Events forwarded as data on downstream links.")
	tFiltered = telemetry.Default().Counter("gryphon_broker_events_filtered_total",
		"Events downgraded to silence by per-link subscription filtering.")
	tNacksRouted = telemetry.Default().Counter("gryphon_broker_nacks_routed_total",
		"Nack requests answered or consolidated by this process.")
	tAllocsPerEvent = telemetry.Default().Gauge("gryphon_broker_allocs_per_event_milli",
		"Heap allocations per delivered event over the last sampling window, "+
			"in thousandths (ReadMemStats sampled every allocSampleTicks ticks). "+
			"The live-side companion of the TestDeliveryPathAllocsGate bound.")
)

// allocSampleTicks is how many housekeeping ticks elapse between
// ReadMemStats samples for the allocs-per-event gauge; ReadMemStats
// stops the world, so it is kept well off the delivery path.
const allocSampleTicks = 64

// PubendConfig configures one pubend hosted by a broker.
type PubendConfig struct {
	// ID is the system-wide pubend identifier.
	ID vtime.PubendID
	// Policy is the early-release policy (nil: retain until released).
	Policy pubend.Policy
	// SyncEveryPublish forces an fsync per published event.
	SyncEveryPublish bool
	// LogLatency models the forced-log latency of the paper's PHB disk
	// (44 ms of its 50 ms end-to-end latency) without depending on the
	// local disk.
	LogLatency time.Duration
}

// Config describes one broker.
type Config struct {
	// Name identifies the broker in logs and handshakes.
	Name string
	// DataDir holds the broker's persistent state (event logs, PFS,
	// metastore). Required when the broker hosts pubends or subscribers.
	DataDir string
	// Transport connects this broker to the overlay (required).
	Transport overlay.Transport
	// ListenAddr accepts downstream brokers and clients ("" = no
	// listener; such a broker can still act as a pure client of its
	// upstream, which is not useful — normally set).
	ListenAddr string
	// UpstreamAddr is the parent broker in the tree ("" = root).
	UpstreamAddr string
	// DialTimeout bounds each upstream connection attempt (the first one
	// and every supervised reconnect). Zero means no timeout, matching the
	// old Dial behavior.
	DialTimeout time.Duration
	// LeaveGrace is how long a parent retains a departed child's soft
	// state (announced covers, release floors) after a deliberate Leave
	// before purging it. The delay lets in-flight traffic on the child's
	// new path establish replacement state first (a crashed child's state
	// is never purged — only Leave triggers this). Zero means 250ms;
	// negative means purge immediately (tests).
	LeaveGrace time.Duration
	// Parents is the ordered candidate-parent address list for automatic
	// fail-over: when the upstream link stays down past FailoverAfter the
	// broker re-parents itself to the first live, loop-safe candidate
	// (see internal/repair). Empty disables automatic fail-over.
	Parents []string
	// FailoverAfter is how long the upstream link must stay down before
	// automatic fail-over triggers. Zero disables automatic fail-over
	// even when Parents is set.
	FailoverAfter time.Duration
	// FailoverHolddown is the minimum spacing between repair-driven
	// re-parents, damping flaps on a blinking link (0 = 4×FailoverAfter).
	FailoverHolddown time.Duration
	// PreferPrimary re-adopts the operator-intended parent once it is
	// reachable and loop-safe again.
	PreferPrimary bool
	// FailoverSeed seeds the fail-over jitter so sibling schedules
	// decorrelate deterministically (0 = hash of Name).
	FailoverSeed int64
	// HostedPubends are the pubends this broker hosts (PHB role).
	HostedPubends []PubendConfig
	// AllPubends is the system-wide pubend set (required when EnableSHB).
	AllPubends []vtime.PubendID
	// EnableSHB turns on the subscriber hosting role.
	EnableSHB bool

	// TickInterval drives draining, housekeeping and release
	// aggregation. Zero means 5ms.
	TickInterval time.Duration
	// SilenceInterval, ReadBufferQ, EventCacheSize configure the core
	// engine (zero values = engine defaults).
	SilenceInterval vtime.Timestamp
	ReadBufferQ     int
	EventCacheSize  int
	// PFSSyncEvery syncs the PFS every N writes (0 = engine default 200).
	PFSSyncEvery int
	// PFSImpreciseBucket enables the PFS imprecise mode (0 = precise).
	PFSImpreciseBucket vtime.Timestamp
	// RelayCacheSize bounds the intermediate per-pubend event cache
	// (0 = 65536).
	RelayCacheSize int
	// MatchEngine selects the subscription matching strategy for the SHB
	// engine and the per-link D→S filters: "" or "indexed" for the
	// counting-based attribute index (internal/matchidx), "linear" for
	// the brute-force scan (the test oracle / escape hatch).
	MatchEngine string
	// SubShards partitions the SHB's subscriber set into N independently
	// locked shards, each with its own catchup pump (0 = engine default:
	// min(GOMAXPROCS, 8)). 1 reproduces the original single-lock engine.
	SubShards int
	// CatchupWeight is the catchup scheduler's delivery quantum: how many
	// catchup events one stream may deliver per scheduling round before
	// yielding the shard to live traffic (0 = engine default 256).
	CatchupWeight int
	// MetaCommitLatency models the per-commit cost of the SHB database
	// (section 5.2); 0 = none.
	MetaCommitLatency time.Duration
	// OnCaughtUp is forwarded to the core engine (figure 5 metric).
	OnCaughtUp func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration)

	// Shards is the number of event-loop shards. Each pubend is pinned
	// to one shard (pubend id mod Shards) and all its work runs there;
	// shard 0 additionally serves as the control shard for link
	// lifecycle and subscription changes. 0 means GOMAXPROCS; 1
	// reproduces the original fully serialized single-loop broker.
	Shards int

	// PubendSync selects the durability policy of the pubend event log.
	// logvol.SyncGroup runs the volume's group-commit pipeline: every
	// publish is durable before its ack, but concurrent publishers share
	// fsyncs (batched writes, one fsync per batch). Zero means
	// logvol.SyncExplicit — the historical default, where durability per
	// publish is governed by each pubend's SyncEveryPublish flag.
	PubendSync logvol.SyncPolicy
	// GroupCommitMaxBytes caps the payload bytes per group-commit batch
	// when PubendSync is SyncGroup (0 = 1 MiB).
	GroupCommitMaxBytes int
	// GroupCommitMaxDelay makes the commit loop linger up to this long
	// to let concurrent publishers join a batch when PubendSync is
	// SyncGroup (0 = no linger; the fsync in flight is the batching
	// window).
	GroupCommitMaxDelay time.Duration

	// AdminAddr, when non-empty, binds the admin HTTP endpoint there:
	// /metrics (Prometheus text format over the process-wide telemetry
	// registry), /healthz, /readyz, and /debug/pprof/. Use
	// "127.0.0.1:0" to bind an ephemeral port and read it back through
	// Broker.AdminAddr. Empty means no admin listener and no behavior
	// change.
	AdminAddr string
}

// Broker is one overlay node.
type Broker struct {
	cfg Config

	shards   []*shard // shards[0] doubles as the control shard
	tickStop chan struct{}
	tickDone chan struct{}
	closed   atomic.Bool

	listener io.Closer
	admin    *telemetry.Server

	// upSup is the current upstream link supervisor (nil at the root or
	// after DetachUpstream). It is an atomic pointer because runtime
	// re-parenting (SetUpstream) replaces it while event shards read it
	// through upSend. pendingSup holds a candidate supervisor during the
	// make-before-break window of SetUpstream so its bring-up passes the
	// generation guard in upstreamUp; memberMu serializes membership
	// changes (SetUpstream, DetachUpstream, shutdown).
	upSup      atomic.Pointer[overlay.Supervisor]
	pendingSup atomic.Pointer[overlay.Supervisor]
	memberMu   sync.Mutex

	// tree is the broker's advertised position in the overlay (read by
	// Hello replies, probes, and the repair monitor); treeMu serializes
	// updates and guards epochHigh, the highest root epoch ever seen
	// (becomeRoot mints past it). See internal/repair and DESIGN §2.12.
	tree      atomic.Pointer[repair.TreeInfo]
	treeMu    sync.Mutex
	epochHigh uint64

	// repairMon, when non-nil, watches the upstream link and drives
	// automatic fail-over/fail-back (Config.Parents + FailoverAfter).
	// Assigned before any goroutine starts; stopped first in shutdown.
	repairMon *repair.Monitor

	// pubInflight counts publishes accepted but not yet durably logged
	// (acked); Shutdown drains it before closing volumes.
	pubInflight atomic.Int64

	// Control-shard-owned routing state (no mutex: only the control
	// shard's loop touches it).
	links map[overlay.Conn]*downLink // every accepted connection
	downs map[overlay.Conn]*downLink // the downstream-broker subset

	// upCover maintains the minimal covering subset of everything this
	// broker would announce upstream (local SHB subscriptions plus every
	// downstream broker's announcements): only covers are sent, so
	// upstream routing tables shrink with fan-in instead of growing.
	// Control-shard-owned, like the rest of the subscription lifecycle;
	// seeded from recovered SHB subscriptions before the first connect.
	upCover *matchidx.CoverSet

	// coverSrc refcounts each tracked subscription by announcement source
	// ("local" for SHB durables, the downstream link's aggregation key
	// otherwise). During a re-parent the same subscription is briefly
	// announced via both the old and the new path of a common ancestor;
	// the cover is withdrawn only when its source set empties, so the old
	// path's delayed withdrawal cannot tear down a cover the new path
	// still needs. Control-shard-owned.
	coverSrc map[vtime.SubscriberID]map[string]struct{}

	// downsSnap is the event shards' read-only view of the downstream
	// fanout set; the control shard republishes it after every downs
	// mutation. Never nil.
	downsSnap atomic.Pointer[[]*downLink]

	// clients is read by engine callbacks (Deliver) and conn dispatch
	// goroutines, written by the control shard.
	clients sync.Map // vtime.SubscriberID -> overlay.Conn

	pubends map[vtime.PubendID]*pubend.Pubend
	peVol   *logvol.Volume
	shb     *core.SHB
	shbVol  *logvol.Volume
	meta    *metastore.Store

	// Relay statistics: events forwarded as D vs downgraded to S by
	// per-link subscription filtering (the bandwidth saving of
	// intermediate filtering, section 1).
	eventsForwarded atomic.Int64
	eventsFiltered  atomic.Int64

	// pubRR round-robins publishes without a pubend hint.
	pubRR atomic.Uint64
	// linkSeq uniquifies aggregation source keys for accepted links
	// (transport remote addresses are not guaranteed unique).
	linkSeq atomic.Uint64
	// hostedIDs caches the hosted pubend IDs in config order.
	hostedIDs []vtime.PubendID
}

// relState is one source's contribution to release aggregation.
type relState struct {
	released        vtime.Timestamp
	latestDelivered vtime.Timestamp
	valid           bool
}

// downLink is a downstream broker connection with its subscription matcher
// (for D→S filtering) — or a client connection before classification.
type downLink struct {
	conn    overlay.Conn
	matcher *filter.Matcher
	key     string // aggregation source key
	isDown  bool   // classified as downstream broker

	// subs is the set of subscriptions announced over this link (the
	// withdrawal set for a deliberate Leave). Control-shard-owned.
	subs map[vtime.SubscriberID]struct{}
}

// taskQueue is an unbounded queue of loop tasks over a ring buffer (the
// former slice-shift queue retained a burst's backing array forever; the
// ring nils drained slots and shrinks back). Close does not drop queued
// tasks: pop keeps draining them, returning false only once the queue is
// both closed and empty.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  ringq.Ring[func()]
	closed bool
	depth  *telemetry.Gauge // optional occupancy mirror, updated under mu
}

func newTaskQueue(depth *telemetry.Gauge) *taskQueue {
	q := &taskQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues fn, reporting false when the queue is already closed and
// the task was dropped.
func (q *taskQueue) push(fn func()) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items.Push(fn)
	if q.depth != nil {
		q.depth.Inc()
	}
	q.cond.Signal()
	return true
}

func (q *taskQueue) pop() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	fn, ok := q.items.Pop()
	if ok && q.depth != nil {
		q.depth.Dec()
	}
	return fn, ok
}

func (q *taskQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// shard is one broker event loop: a task queue, the goroutine draining
// it, and the routing state owned by that goroutine alone. Pubend →
// shard assignment is static (pubend id mod shard count), so knowledge,
// nacks, release aggregation and tick draining for one pubend are always
// serialized on its shard while other pubends run in parallel.
type shard struct {
	id     int
	tasks  *taskQueue
	done   chan struct{}
	hosted []vtime.PubendID // hosted pubends assigned to this shard

	// Shard-loop-owned state (no mutex: only this shard's loop).
	caches map[vtime.PubendID]*relayCache
	relAgg map[vtime.PubendID]map[string]relState // per source key
	tickN  int64

	// Per-shard instruments (labeled by shard index; process-wide, so
	// co-located brokers with equal shard counts aggregate).
	ran  *telemetry.Counter
	busy *telemetry.Counter
}

func newShard(id int) *shard {
	label := fmt.Sprintf("{shard=\"%d\"}", id)
	depth := telemetry.Default().Gauge(
		"gryphon_broker_shard_queue_depth"+label,
		"Tasks queued per broker event-loop shard.")
	return &shard{
		id:     id,
		tasks:  newTaskQueue(depth),
		done:   make(chan struct{}),
		caches: make(map[vtime.PubendID]*relayCache),
		relAgg: make(map[vtime.PubendID]map[string]relState),
		ran: telemetry.Default().Counter(
			"gryphon_broker_shard_tasks_total"+label,
			"Tasks executed per broker event-loop shard."),
		busy: telemetry.Default().Counter(
			"gryphon_broker_shard_busy_nanos_total"+label,
			"Nanoseconds spent executing tasks per broker event-loop shard (occupancy)."),
	}
}

// push enqueues fn on this shard.
func (s *shard) push(fn func()) bool { return s.tasks.push(fn) }

// loop drains the shard until its queue closes and empties.
func (s *shard) loop() {
	defer close(s.done)
	for {
		fn, ok := s.tasks.pop()
		if !ok {
			return
		}
		start := time.Now()
		fn()
		s.busy.Add(int64(time.Since(start)))
		s.ran.Inc()
	}
}

// control returns the control shard (link lifecycle, subscriptions).
func (b *Broker) control() *shard { return b.shards[0] }

// shardFor returns the shard owning a pubend's work.
func (b *Broker) shardFor(pub vtime.PubendID) *shard {
	return b.shards[int(uint32(pub))%len(b.shards)]
}

// New creates and starts a broker: opens persistent state, connects to its
// upstream, starts listening, and begins ticking.
func New(cfg Config) (*Broker, error) { return NewContext(context.Background(), cfg) }

// NewContext is New with the initial upstream dial bounded by ctx (in
// addition to Config.DialTimeout, whichever is tighter). Supervised
// reconnects after startup are governed by DialTimeout alone.
func NewContext(ctx context.Context, cfg Config) (*Broker, error) {
	if cfg.Transport == nil {
		return nil, errors.New("broker: Transport is required")
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 5 * time.Millisecond
	}
	if cfg.RelayCacheSize == 0 {
		cfg.RelayCacheSize = 65536
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.LeaveGrace == 0 {
		cfg.LeaveGrace = 250 * time.Millisecond
	}
	b := &Broker{
		cfg:      cfg,
		tickStop: make(chan struct{}),
		tickDone: make(chan struct{}),
		links:    make(map[overlay.Conn]*downLink),
		downs:    make(map[overlay.Conn]*downLink),
		upCover:  matchidx.NewCoverSet(),
		coverSrc: make(map[vtime.SubscriberID]map[string]struct{}),
		pubends:  make(map[vtime.PubendID]*pubend.Pubend),
	}
	b.downsSnap.Store(&[]*downLink{})
	// Seed the advertised tree position: a root knows it is one (epoch 1);
	// a broker with an upstream learns its position from the parent's
	// Hello reply (learnTreeInfo).
	if cfg.UpstreamAddr == "" {
		b.epochHigh = 1
		b.tree.Store(&repair.TreeInfo{Known: true, Root: cfg.Name, Epoch: 1})
	} else {
		b.tree.Store(&repair.TreeInfo{})
	}
	for i := 0; i < cfg.Shards; i++ {
		b.shards = append(b.shards, newShard(i))
	}
	if err := b.openState(); err != nil {
		return nil, err
	}
	// Seed the covering set from recovered durable subscriptions so the
	// first upstream resync announces the minimal cover, not the full
	// population. No shard is running yet, so touching upCover directly
	// is safe; emitted ops are discarded (there is no upstream link yet —
	// resyncUpstream replays Announced() instead).
	if b.shb != nil {
		for _, si := range b.shb.Subscriptions() {
			if sub, err := filter.Parse(si.Filter); err == nil {
				b.upCover.Add(si.ID, sub)
				b.coverSrc[si.ID] = map[string]struct{}{coverSrcLocal: {}}
			}
		}
	}
	// Pin each hosted pubend to its shard (the assignment is static for
	// the broker's lifetime; everything keys off pubend id mod shards).
	for _, id := range b.hostedIDs {
		sh := b.shardFor(id)
		sh.hosted = append(sh.hosted, id)
	}
	if err := b.connect(ctx); err != nil {
		b.closeState()
		return nil, err
	}
	// Build (but don't start) the repair monitor before the admin endpoint
	// goes live: its health note reads b.repairMon, so the field must be
	// settled before any concurrent reader exists.
	if cfg.FailoverAfter > 0 && len(cfg.Parents) > 0 {
		b.repairMon = repair.NewMonitor(repair.Config{
			Node:          repairNode{b},
			Primary:       cfg.UpstreamAddr,
			Candidates:    cfg.Parents,
			FailoverAfter: cfg.FailoverAfter,
			Holddown:      cfg.FailoverHolddown,
			PreferPrimary: cfg.PreferPrimary,
			Seed:          cfg.FailoverSeed,
		})
	}
	if err := b.startAdmin(); err != nil {
		if b.listener != nil {
			b.listener.Close() //nolint:errcheck,gosec // failed-start cleanup
		}
		if sup := b.upSup.Swap(nil); sup != nil {
			sup.Stop()
		}
		b.closeState()
		return nil, err
	}
	for _, sh := range b.shards {
		go sh.loop()
	}
	go b.tickLoop()
	if b.repairMon != nil {
		b.repairMon.Start()
	}
	if b.admin != nil {
		b.admin.SetReady(true)
	}
	return b, nil
}

// startAdmin binds the admin endpoint when AdminAddr is configured and
// registers this broker's component health checks.
func (b *Broker) startAdmin() error {
	if b.cfg.AdminAddr == "" {
		return nil
	}
	srv, err := telemetry.NewServer(b.cfg.AdminAddr, telemetry.Default())
	if err != nil {
		return fmt.Errorf("broker %s: admin: %w", b.cfg.Name, err)
	}
	b.admin = srv
	prefix := "broker/" + b.cfg.Name
	srv.RegisterHealth(prefix, func() error {
		if b.closed.Load() {
			return errors.New("broker closed")
		}
		return nil
	})
	if b.peVol != nil {
		srv.RegisterHealth(prefix+"/pubend-log", b.peVol.Ping)
	}
	if b.shbVol != nil {
		srv.RegisterHealth(prefix+"/pfs-log", b.shbVol.Ping)
	}
	if b.meta != nil {
		srv.RegisterHealth(prefix+"/metastore", b.meta.Ping)
	}
	// The upstream check reads the atomic supervisor pointer on every
	// probe: a broker that starts as a root can later gain a parent via
	// SetUpstream (and vice versa), so registration cannot be conditional
	// on the startup topology. A root (nil supervisor) is healthy.
	srv.RegisterHealth(prefix+"/upstream", func() error {
		sup := b.upSup.Load()
		if sup == nil {
			return nil
		}
		st := sup.Status()
		if st.State != overlay.LinkUp {
			if b.repairMon != nil {
				return fmt.Errorf("upstream link %s for %s (retries=%d, last error: %s; failover armed over %d candidates)",
					st.State, st.DownFor.Round(time.Millisecond), st.Retries, st.LastError, len(b.cfg.Parents))
			}
			return fmt.Errorf("upstream link %s (retries=%d, last error: %s)",
				st.State, st.Retries, st.LastError)
		}
		return nil
	})
	// A failed-over broker is healthy — its link is up, just not to the
	// operator-intended parent — so /healthz stays 200 and reports the
	// substitution as a note instead of a bare 503.
	srv.RegisterNote(prefix+"/upstream", func() string {
		mon := b.repairMon
		if mon == nil {
			return ""
		}
		cur, pri := b.UpstreamAddr(), mon.Primary()
		if pri == "" || cur == "" || cur == pri {
			return ""
		}
		return fmt.Sprintf("failed over to %s (primary %s)", cur, pri)
	})
	return nil
}

// AdminAddr reports the bound admin endpoint address, or "" when none was
// configured.
func (b *Broker) AdminAddr() string {
	if b.admin == nil {
		return ""
	}
	return b.admin.Addr()
}

// openState opens logs, metastore, pubends, and the SHB engine.
func (b *Broker) openState() error {
	cfg := b.cfg
	needsDisk := len(cfg.HostedPubends) > 0 || cfg.EnableSHB
	if needsDisk && cfg.DataDir == "" {
		return errors.New("broker: DataDir required for PHB/SHB roles")
	}
	if needsDisk {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return fmt.Errorf("broker: data dir: %w", err)
		}
	}
	if len(cfg.HostedPubends) > 0 {
		vol, err := logvol.Open(filepath.Join(cfg.DataDir, "pubends.log"), logvol.Options{
			Sync:          cfg.PubendSync,
			GroupMaxBytes: cfg.GroupCommitMaxBytes,
			GroupMaxDelay: cfg.GroupCommitMaxDelay,
		})
		if err != nil {
			return err
		}
		b.peVol = vol
		for _, pc := range cfg.HostedPubends {
			pe, err := pubend.New(pubend.Options{
				ID:               pc.ID,
				Volume:           vol,
				Policy:           pc.Policy,
				SyncEveryPublish: pc.SyncEveryPublish,
				LogLatency:       pc.LogLatency,
			})
			if err != nil {
				return err
			}
			b.pubends[pc.ID] = pe
			b.hostedIDs = append(b.hostedIDs, pc.ID)
		}
	}
	if cfg.EnableSHB {
		if len(cfg.AllPubends) == 0 {
			return errors.New("broker: AllPubends required with EnableSHB")
		}
		vol, err := logvol.Open(filepath.Join(cfg.DataDir, "pfs.log"), logvol.Options{})
		if err != nil {
			return err
		}
		b.shbVol = vol
		meta, err := metastore.Open(filepath.Join(cfg.DataDir, "shb.meta"), metastore.Options{
			Sync:          metastore.SyncNone,
			CommitLatency: cfg.MetaCommitLatency,
		})
		if err != nil {
			return err
		}
		b.meta = meta
		syncEvery := cfg.PFSSyncEvery
		if syncEvery == 0 {
			syncEvery = 200
		}
		p, err := pfs.New(pfs.Options{
			Volume:          vol,
			Meta:            meta,
			SyncEvery:       syncEvery,
			ImpreciseBucket: cfg.PFSImpreciseBucket,
		})
		if err != nil {
			return err
		}
		engine, err := core.New(core.Config{
			Meta:            meta,
			PFS:             p,
			Pubends:         cfg.AllPubends,
			SilenceInterval: cfg.SilenceInterval,
			ReadBufferQ:     cfg.ReadBufferQ,
			EventCacheSize:  cfg.EventCacheSize,
			MatchEngine:     cfg.MatchEngine,
			SubShards:       cfg.SubShards,
			CatchupWeight:   cfg.CatchupWeight,
			SendNack:        b.shbSendNack,
			SendRelease:     b.shbSendRelease,
			Deliver:         b.shbDeliver,
			OnCaughtUp:      cfg.OnCaughtUp,
		})
		if err != nil {
			return err
		}
		b.shb = engine
	}
	return nil
}

func (b *Broker) closeState() {
	if b.shb != nil {
		// Stop the per-shard catchup pumps before the volumes they read
		// from go away.
		b.shb.Close()
	}
	if b.peVol != nil {
		b.peVol.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.shbVol != nil {
		b.shbVol.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.meta != nil {
		b.meta.Close() //nolint:errcheck,gosec // shutdown path
	}
}

// connect starts the supervised upstream link and binds the listener.
func (b *Broker) connect(ctx context.Context) error {
	cfg := b.cfg
	if cfg.UpstreamAddr != "" {
		sup := b.newUpstreamSup(cfg.UpstreamAddr)
		b.pendingSup.Store(sup)
		// StartContext's first attempt is synchronous, preserving the old
		// fail-fast startup: a dead upstream fails New, not some later
		// send. Only after that does the link self-heal in the background.
		if err := sup.StartContext(ctx); err != nil {
			b.pendingSup.Store(nil)
			return fmt.Errorf("broker %s: dial upstream: %w", cfg.Name, err)
		}
		b.upSup.Store(sup)
		b.pendingSup.Store(nil)
	}
	if cfg.ListenAddr != "" {
		closer, err := cfg.Transport.Listen(cfg.ListenAddr, b.accept)
		if err != nil {
			return fmt.Errorf("broker %s: listen: %w", cfg.Name, err)
		}
		b.listener = closer
	}
	return nil
}

// newUpstreamSup builds a supervisor for one upstream link. The OnUp
// closure captures the supervisor itself so upstreamUp can tell whether the
// connecting supervisor is still the broker's current (or pending) one — a
// retired supervisor racing a reconnect during a re-parent must not
// resynchronize state onto the abandoned path.
func (b *Broker) newUpstreamSup(addr string) *overlay.Supervisor {
	var sup *overlay.Supervisor
	sup = overlay.NewSupervisor(overlay.SupervisorConfig{
		Name:        b.cfg.Name + "/upstream",
		Transport:   b.cfg.Transport,
		Addr:        addr,
		DialTimeout: b.cfg.DialTimeout,
		OnUp:        func(conn overlay.Conn) error { return b.upstreamUp(sup, conn) },
	})
	return sup
}

// upstreamUp brings up a freshly dialed upstream connection: handshake,
// dispatch, and state resynchronization. It runs on the supervisor's
// goroutine for every (re)connect, including the synchronous first one.
func (b *Broker) upstreamUp(sup *overlay.Supervisor, conn overlay.Conn) error {
	if b.upSup.Load() != sup && b.pendingSup.Load() != sup {
		return errStaleSupervisor
	}
	if err := conn.Send(&message.Hello{Role: message.RoleBroker, Name: b.cfg.Name}); err != nil {
		return err
	}
	// fromUpstream routes each message to its pubend's shard itself;
	// the upstream dispatch goroutine pushes in receive order, so
	// per-pubend FIFO is preserved shard-side. The supervisor rides along
	// so control messages (the parent's tree-position Hello) can be
	// rejected once this link is retired by a re-parent.
	conn.Start(func(m message.Message) { b.fromUpstream(sup, m) })
	b.resyncUpstream(conn)
	return nil
}

// resyncUpstream replays this broker's upstream-facing soft state onto a
// fresh parent link. The paper's recovery protocol makes the gap itself
// recoverable (knowledge keeps flowing, QGaps get re-nacked), but two
// pieces of state live only in messages that may have died with the old
// link:
//
//   - subscription announcements: the parent's new per-link matcher is
//     empty, which passes everything — until the first SubUpdate makes it
//     non-empty and D→S filtering silently drops every subscription not
//     re-announced. The covering set (local SHB subscriptions plus every
//     downstream announcement, minimized by subsumption) is replayed from
//     the control shard, which owns it.
//   - pending curiosity: spans nacked while the link was dying are
//     recorded as pending, so the consolidators will never re-request
//     them; they are re-nacked here (duplicates are harmless — delivery
//     is governed by the constream cursor, not by what arrives).
//   - release floors: the new parent zero-seeds this link's floor on
//     Hello, but its aggregate only advances once this broker reports. An
//     immediate snapshot of each shard's aggregated release vector pins
//     the subtree's retention on the new path before the old parent's
//     grace-period purge (after a deliberate Leave) can release it.
//
// Sends go directly on conn (not upSend): the supervisor installs the conn
// only after bring-up succeeds, and the Hello above must stay the link's
// first message anyway.
func (b *Broker) resyncUpstream(conn overlay.Conn) {
	if b.shb != nil {
		for pub, spans := range b.shb.PendingCuriosity() {
			//nolint:errcheck,gosec // link death re-enters the supervisor
			conn.Send(&message.Nack{Pubend: pub, Spans: spans})
		}
	}
	b.control().push(func() {
		for _, op := range b.upCover.Announced() {
			//nolint:errcheck,gosec // link death re-enters the supervisor
			conn.Send(&message.SubUpdate{Subscriber: op.ID, Filter: op.Filter})
		}
	})
	for _, sh := range b.shards {
		sh := sh
		sh.push(func() {
			for pub, cache := range sh.caches {
				if pending := cache.cur.Pending(); len(pending) > 0 {
					//nolint:errcheck,gosec // link death re-enters the supervisor
					conn.Send(&message.Nack{Pubend: pub, Spans: pending})
				}
			}
			for pub, per := range sh.relAgg {
				if _, hosted := b.pubends[pub]; hosted {
					continue
				}
				if rel, ld, ok := aggregateRelease(per); ok {
					//nolint:errcheck,gosec // link death re-enters the supervisor
					conn.Send(&message.Release{Pubend: pub, Released: rel, LatestDelivered: ld})
				}
			}
		})
	}
}

// upSend sends m on the upstream link, dropping it when the broker is the
// root or the link is down (the knowledge/NACK recovery protocol
// regenerates anything that matters once the link heals).
func (b *Broker) upSend(m message.Message) {
	if sup := b.upSup.Load(); sup != nil {
		sup.Send(m) //nolint:errcheck,gosec // link death handled by the supervisor
	}
}

// Health reports the state of the broker's supervised links: the
// upstream link (absent for a root) followed, when automatic fail-over is
// configured, by one pseudo-entry per candidate parent named
// "<broker>/candidate/<addr>" whose state reflects the last probe (Up =
// reachable). Callers that only care about real links filter by
// IsCandidateLink.
func (b *Broker) Health() []overlay.LinkStatus {
	var hs []overlay.LinkStatus
	if sup := b.upSup.Load(); sup != nil {
		hs = append(hs, sup.Status())
	}
	if b.repairMon != nil {
		for _, c := range b.repairMon.Candidates() {
			st := overlay.LinkStatus{
				Name:      b.cfg.Name + "/candidate/" + c.Addr,
				Addr:      c.Addr,
				State:     overlay.LinkDown,
				Since:     c.LastProbe,
				LastError: c.LastError,
			}
			if c.Alive {
				st.State = overlay.LinkUp
			}
			hs = append(hs, st)
		}
	}
	return hs
}

// IsCandidateLink reports whether a Health() entry is a candidate-parent
// pseudo-entry rather than a real supervised link.
func IsCandidateLink(st overlay.LinkStatus) bool {
	return strings.Contains(st.Name, "/candidate/")
}

// accept classifies and starts an inbound connection.
func (b *Broker) accept(conn overlay.Conn) {
	link := &downLink{
		conn:    conn,
		matcher: matchidx.MatcherFor(b.cfg.MatchEngine).InstrumentSite("link"),
		key:     fmt.Sprintf("%s#%d", conn.RemoteAddr(), b.linkSeq.Add(1)),
		subs:    make(map[vtime.SubscriberID]struct{}),
	}
	b.control().push(func() { b.links[conn] = link })
	conn.OnClose(func(error) {
		b.control().push(func() { b.dropLink(link) })
	})
	conn.Start(func(m message.Message) {
		b.fromBelow(link, m)
	})
}

// tickLoop drives periodic work: each tick fans one housekeeping task to
// every shard and waits for all of them before the next tick, keeping at
// most one tick in flight per shard (the single-loop broker's semantics,
// just parallelized across shards).
func (b *Broker) tickLoop() {
	defer close(b.tickDone)
	ticker := time.NewTicker(b.cfg.TickInterval)
	defer ticker.Stop()
	// Allocs-per-event sampler state: process-wide mallocs vs events
	// delivered since the previous sample. The ratio is approximate (all
	// broker work allocates against it, not just delivery), which is
	// exactly what makes it a useful live regression signal.
	var (
		sampleTick    int
		lastMallocs   uint64
		lastDelivered int64
	)
	sampleAllocs := func() {
		if b.shb == nil {
			return
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		delivered := b.shb.Stats().EventsDelivered
		if dd := delivered - lastDelivered; dd > 0 && lastMallocs != 0 {
			tAllocsPerEvent.Set(int64((ms.Mallocs - lastMallocs) * 1000 / uint64(dd)))
		}
		lastMallocs = ms.Mallocs
		lastDelivered = delivered
	}
	for {
		select {
		case <-ticker.C:
			if sampleTick++; sampleTick >= allocSampleTicks {
				sampleTick = 0
				sampleAllocs()
			}
			var wg sync.WaitGroup
			for _, sh := range b.shards {
				sh := sh
				wg.Add(1)
				if !sh.push(func() {
					b.tickShard(sh)
					wg.Done()
				}) {
					wg.Done() // shard already shut down
				}
			}
			done := make(chan struct{})
			go func() {
				wg.Wait()
				close(done)
			}()
			select {
			case <-done:
			case <-b.tickStop:
				<-done // all shards drain their queues before closing
				return
			}
		case <-b.tickStop:
			return
		}
	}
}

// Close shuts the broker down hard: no drain, connections and volumes go
// away as fast as the goroutines can be stopped (the alias for code that
// has nothing in flight or doesn't care). Use Shutdown for a drained stop.
func (b *Broker) Close() error {
	b.shutdown()
	return nil
}

// Shutdown stops the broker gracefully: it stops advertising readiness,
// waits for in-flight publishes to reach their durable ack (so no
// publisher holds an accepted-but-unlogged event), then runs the hard
// stop. If ctx expires first the remaining in-flight publishes are
// abandoned to the hard stop and ctx's error is returned — the broker is
// fully stopped either way.
func (b *Broker) Shutdown(ctx context.Context) error {
	if b.admin != nil {
		b.admin.SetReady(false)
	}
	var err error
	for b.pubInflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(time.Millisecond):
			continue
		}
		break
	}
	b.shutdown()
	return err
}

// Crash simulates a broker failure: connections drop and volatile state is
// lost; persistent files remain for a successor started with the same
// Config.
func (b *Broker) Crash() { b.shutdown() }

// shutdown stops ticking, tears down connections on the control shard,
// then closes every shard queue; queued tasks drain before the loops exit
// (taskQueue.pop keeps returning items after close until empty).
func (b *Broker) shutdown() {
	// Stop the repair monitor before taking memberMu: an in-flight
	// repair-driven re-parent completes (or fails against closed) and no
	// further one can start, so the supervisor swap below can't race a
	// monitor installing a fresh link.
	if b.repairMon != nil {
		b.repairMon.Stop()
	}
	// Retire the supervisors under memberMu so a concurrent SetUpstream
	// either completes before the swap or observes closed and refuses.
	b.memberMu.Lock()
	if b.closed.Swap(true) {
		b.memberMu.Unlock()
		return
	}
	oldSup := b.upSup.Swap(nil)
	pending := b.pendingSup.Swap(nil)
	b.memberMu.Unlock()
	close(b.tickStop)
	<-b.tickDone
	if b.admin != nil {
		b.admin.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.listener != nil {
		b.listener.Close() //nolint:errcheck,gosec // shutdown path
	}
	if oldSup != nil {
		oldSup.Stop()
	}
	if pending != nil {
		pending.Stop()
	}
	connsClosed := make(chan struct{})
	if !b.control().push(func() {
		for conn := range b.links {
			conn.Close() //nolint:errcheck,gosec // shutdown path
		}
		close(connsClosed)
	}) {
		close(connsClosed)
	}
	<-connsClosed
	for _, sh := range b.shards {
		sh.tasks.close()
	}
	for _, sh := range b.shards {
		<-sh.done
	}
	b.closeState()
}

// Name reports the broker's configured name.
func (b *Broker) Name() string { return b.cfg.Name }

// Shards reports the number of event-loop shards the broker runs.
func (b *Broker) Shards() int { return len(b.shards) }

// BoundAddr reports the listener's actual bound address (useful with
// ephemeral-port TCP addresses like "127.0.0.1:0"), falling back to the
// configured ListenAddr for transports that don't expose one.
func (b *Broker) BoundAddr() string {
	if ln, ok := b.listener.(net.Listener); ok {
		return ln.Addr().String()
	}
	return b.cfg.ListenAddr
}

// CoverStats reports the covering set's population: how many
// upstream-facing subscriptions this broker tracks (local SHB durables plus
// downstream announcements) and how many it actually announces upstream
// (the minimal covering subset). Blocks briefly on the control shard;
// returns zeros after shutdown.
func (b *Broker) CoverStats() (members, announced int) {
	ch := make(chan [2]int, 1)
	if !b.control().push(func() {
		ch <- [2]int{b.upCover.Len(), b.upCover.AnnouncedLen()}
	}) {
		return 0, 0
	}
	v := <-ch
	return v[0], v[1]
}

// RelayStats reports how many events this broker forwarded as data versus
// downgraded to silence on downstream links because nothing below the link
// subscribed to them — the utilization win of filtering at intermediate
// nodes (section 1).
func (b *Broker) RelayStats() (forwarded, filtered int64) {
	return b.eventsForwarded.Load(), b.eventsFiltered.Load()
}

// SHBStats exposes the core engine statistics (zero value when the broker
// is not an SHB).
func (b *Broker) SHBStats() core.Stats {
	if b.shb == nil {
		return core.Stats{}
	}
	return b.shb.Stats()
}

// LatestDelivered reports the SHB constream cursor for a pubend.
func (b *Broker) LatestDelivered(pub vtime.PubendID) vtime.Timestamp {
	if b.shb == nil {
		return 0
	}
	return b.shb.LatestDelivered(pub)
}

// Released reports the SHB released(p) value.
func (b *Broker) Released(pub vtime.PubendID) vtime.Timestamp {
	if b.shb == nil {
		return 0
	}
	return b.shb.Released(pub)
}

// CatchupCount reports active catchup streams at the SHB.
func (b *Broker) CatchupCount() int {
	if b.shb == nil {
		return 0
	}
	return b.shb.CatchupCount()
}

// Pubend returns a hosted pubend (nil if not hosted) — used by tests and
// the experiment harness to inspect retention.
func (b *Broker) Pubend(id vtime.PubendID) *pubend.Pubend {
	return b.pubends[id]
}

// --- Core engine callbacks ---
//
// The engine is sharded (see core.SHB): SendNack and SendRelease run while
// a per-pubend lock is held; Deliver runs while a subscriber-shard lock is
// held, and is invoked concurrently from the constream fan-out and from the
// per-shard catchup pump goroutines (serialized per subscriber — FIFO order
// is guaranteed per subscriber, not across subscribers). All three must not
// block and must not re-enter the engine; they hop onto the pubend's
// event-loop shard (non-blocking push) or do a non-blocking conn send.
// conn.Send is safe for concurrent use, so Deliver needs no extra hop.

func (b *Broker) shbSendNack(pub vtime.PubendID, spans []tick.Span) {
	sh := b.shardFor(pub)
	sh.push(func() { b.routeNack(sh, nil, pub, spans) })
}

func (b *Broker) shbSendRelease(pub vtime.PubendID, rel, ld vtime.Timestamp) {
	sh := b.shardFor(pub)
	sh.push(func() { b.storeRelease(sh, "self", pub, rel, ld) })
}

func (b *Broker) shbDeliver(sub vtime.SubscriberID, d message.Delivery) {
	v, ok := b.clients.Load(sub)
	if !ok {
		return
	}
	conn, ok := v.(overlay.Conn)
	if !ok {
		return
	}
	//nolint:errcheck,gosec // a failed send means the client link died;
	// its OnClose detaches the subscriber.
	// Pooled envelope + a reference on the event's frame buffer; a wire
	// writer recycles both after framing, an in-process client owns them.
	conn.Send(message.GetDeliver(sub, d))
}
