// Package broker implements the overlay broker node. A broker can play any
// combination of the three roles of the paper:
//
//   - publisher hosting broker (PHB): hosts pubends, logs each published
//     event exactly once, serves recovery nacks from its log, and runs the
//     event retention and release protocol;
//   - intermediate broker: caches knowledge flowing down the tree, filters
//     events per downstream link (D→S when nothing below the link
//     matches), consolidates nacks flowing up, and aggregates release
//     vectors;
//   - subscriber hosting broker (SHB): hosts durable subscribers through
//     the core engine (consolidated stream, catchup streams, PFS).
//
// Brokers form a tree rooted at the PHB (the knowledge graph of section 3).
// Concurrency model: connection handlers and engine callbacks enqueue work
// onto a single broker event loop that owns all routing state; thread-safe
// components (pubends, the core engine, client registry) are called
// directly where no routing state is involved.
package broker

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/overlay"
	"repro/internal/pfs"
	"repro/internal/pubend"
	"repro/internal/telemetry"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// Routing instruments (process-wide; see internal/telemetry).
var (
	tPublishes = telemetry.Default().Counter("gryphon_broker_publishes_total",
		"Events accepted by hosted pubends.")
	tPublishSeconds = telemetry.Default().DurationHistogram("gryphon_broker_publish_seconds",
		"PHB publish latency including the forced log write.", telemetry.FastBuckets)
	tForwarded = telemetry.Default().Counter("gryphon_broker_events_forwarded_total",
		"Events forwarded as data on downstream links.")
	tFiltered = telemetry.Default().Counter("gryphon_broker_events_filtered_total",
		"Events downgraded to silence by per-link subscription filtering.")
	tNacksRouted = telemetry.Default().Counter("gryphon_broker_nacks_routed_total",
		"Nack requests answered or consolidated by this process.")
)

// PubendConfig configures one pubend hosted by a broker.
type PubendConfig struct {
	// ID is the system-wide pubend identifier.
	ID vtime.PubendID
	// Policy is the early-release policy (nil: retain until released).
	Policy pubend.Policy
	// SyncEveryPublish forces an fsync per published event.
	SyncEveryPublish bool
	// LogLatency models the forced-log latency of the paper's PHB disk
	// (44 ms of its 50 ms end-to-end latency) without depending on the
	// local disk.
	LogLatency time.Duration
}

// Config describes one broker.
type Config struct {
	// Name identifies the broker in logs and handshakes.
	Name string
	// DataDir holds the broker's persistent state (event logs, PFS,
	// metastore). Required when the broker hosts pubends or subscribers.
	DataDir string
	// Transport connects this broker to the overlay (required).
	Transport overlay.Transport
	// ListenAddr accepts downstream brokers and clients ("" = no
	// listener; such a broker can still act as a pure client of its
	// upstream, which is not useful — normally set).
	ListenAddr string
	// UpstreamAddr is the parent broker in the tree ("" = root).
	UpstreamAddr string
	// HostedPubends are the pubends this broker hosts (PHB role).
	HostedPubends []PubendConfig
	// AllPubends is the system-wide pubend set (required when EnableSHB).
	AllPubends []vtime.PubendID
	// EnableSHB turns on the subscriber hosting role.
	EnableSHB bool

	// TickInterval drives draining, housekeeping and release
	// aggregation. Zero means 5ms.
	TickInterval time.Duration
	// SilenceInterval, ReadBufferQ, EventCacheSize configure the core
	// engine (zero values = engine defaults).
	SilenceInterval vtime.Timestamp
	ReadBufferQ     int
	EventCacheSize  int
	// PFSSyncEvery syncs the PFS every N writes (0 = engine default 200).
	PFSSyncEvery int
	// PFSImpreciseBucket enables the PFS imprecise mode (0 = precise).
	PFSImpreciseBucket vtime.Timestamp
	// RelayCacheSize bounds the intermediate per-pubend event cache
	// (0 = 65536).
	RelayCacheSize int
	// MetaCommitLatency models the per-commit cost of the SHB database
	// (section 5.2); 0 = none.
	MetaCommitLatency time.Duration
	// OnCaughtUp is forwarded to the core engine (figure 5 metric).
	OnCaughtUp func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration)

	// AdminAddr, when non-empty, binds the admin HTTP endpoint there:
	// /metrics (Prometheus text format over the process-wide telemetry
	// registry), /healthz, /readyz, and /debug/pprof/. Use
	// "127.0.0.1:0" to bind an ephemeral port and read it back through
	// Broker.AdminAddr. Empty means no admin listener and no behavior
	// change.
	AdminAddr string
}

// Broker is one overlay node.
type Broker struct {
	cfg Config

	tasks    *taskQueue
	loopDone chan struct{}
	tickStop chan struct{}
	tickDone chan struct{}
	closed   atomic.Bool

	listener io.Closer
	up       overlay.Conn
	admin    *telemetry.Server

	// Loop-owned routing state (no mutex: only the loop touches it).
	links  map[overlay.Conn]*downLink // every accepted connection
	downs  map[overlay.Conn]*downLink // the downstream-broker subset
	caches map[vtime.PubendID]*relayCache
	relAgg map[vtime.PubendID]map[string]relState // per source key
	tickN  int64

	// clients is read by engine callbacks (Deliver) and written by the
	// loop.
	clients sync.Map // vtime.SubscriberID -> overlay.Conn

	pubends map[vtime.PubendID]*pubend.Pubend
	peVol   *logvol.Volume
	shb     *core.SHB
	shbVol  *logvol.Volume
	meta    *metastore.Store

	// Relay statistics: events forwarded as D vs downgraded to S by
	// per-link subscription filtering (the bandwidth saving of
	// intermediate filtering, section 1).
	eventsForwarded atomic.Int64
	eventsFiltered  atomic.Int64

	// pubRR round-robins publishes without a pubend hint.
	pubRR atomic.Uint64
	// linkSeq uniquifies aggregation source keys for accepted links
	// (transport remote addresses are not guaranteed unique).
	linkSeq atomic.Uint64
	// hostedIDs caches the hosted pubend IDs in config order.
	hostedIDs []vtime.PubendID
}

// relState is one source's contribution to release aggregation.
type relState struct {
	released        vtime.Timestamp
	latestDelivered vtime.Timestamp
	valid           bool
}

// downLink is a downstream broker connection with its subscription matcher
// (for D→S filtering) — or a client connection before classification.
type downLink struct {
	conn    overlay.Conn
	matcher *filter.Matcher
	key     string // aggregation source key
	isDown  bool   // classified as downstream broker
}

// taskQueue is an unbounded queue of loop tasks.
type taskQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []func()
	closed bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *taskQueue) push(fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, fn)
	q.cond.Signal()
}

func (q *taskQueue) pop() (func(), bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	fn := q.items[0]
	q.items = q.items[1:]
	return fn, true
}

func (q *taskQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// New creates and starts a broker: opens persistent state, connects to its
// upstream, starts listening, and begins ticking.
func New(cfg Config) (*Broker, error) {
	if cfg.Transport == nil {
		return nil, errors.New("broker: Transport is required")
	}
	if cfg.TickInterval == 0 {
		cfg.TickInterval = 5 * time.Millisecond
	}
	if cfg.RelayCacheSize == 0 {
		cfg.RelayCacheSize = 65536
	}
	b := &Broker{
		cfg:      cfg,
		tasks:    newTaskQueue(),
		loopDone: make(chan struct{}),
		tickStop: make(chan struct{}),
		tickDone: make(chan struct{}),
		links:    make(map[overlay.Conn]*downLink),
		downs:    make(map[overlay.Conn]*downLink),
		caches:   make(map[vtime.PubendID]*relayCache),
		relAgg:   make(map[vtime.PubendID]map[string]relState),
		pubends:  make(map[vtime.PubendID]*pubend.Pubend),
	}
	if err := b.openState(); err != nil {
		return nil, err
	}
	if err := b.connect(); err != nil {
		b.closeState()
		return nil, err
	}
	if err := b.startAdmin(); err != nil {
		if b.listener != nil {
			b.listener.Close() //nolint:errcheck,gosec // failed-start cleanup
		}
		if b.up != nil {
			b.up.Close() //nolint:errcheck,gosec // failed-start cleanup
		}
		b.closeState()
		return nil, err
	}
	go b.loop()
	go b.tickLoop()
	if b.admin != nil {
		b.admin.SetReady(true)
	}
	return b, nil
}

// startAdmin binds the admin endpoint when AdminAddr is configured and
// registers this broker's component health checks.
func (b *Broker) startAdmin() error {
	if b.cfg.AdminAddr == "" {
		return nil
	}
	srv, err := telemetry.NewServer(b.cfg.AdminAddr, telemetry.Default())
	if err != nil {
		return fmt.Errorf("broker %s: admin: %w", b.cfg.Name, err)
	}
	b.admin = srv
	prefix := "broker/" + b.cfg.Name
	srv.RegisterHealth(prefix, func() error {
		if b.closed.Load() {
			return errors.New("broker closed")
		}
		return nil
	})
	if b.peVol != nil {
		srv.RegisterHealth(prefix+"/pubend-log", b.peVol.Ping)
	}
	if b.shbVol != nil {
		srv.RegisterHealth(prefix+"/pfs-log", b.shbVol.Ping)
	}
	if b.meta != nil {
		srv.RegisterHealth(prefix+"/metastore", b.meta.Ping)
	}
	return nil
}

// AdminAddr reports the bound admin endpoint address, or "" when none was
// configured.
func (b *Broker) AdminAddr() string {
	if b.admin == nil {
		return ""
	}
	return b.admin.Addr()
}

// openState opens logs, metastore, pubends, and the SHB engine.
func (b *Broker) openState() error {
	cfg := b.cfg
	needsDisk := len(cfg.HostedPubends) > 0 || cfg.EnableSHB
	if needsDisk && cfg.DataDir == "" {
		return errors.New("broker: DataDir required for PHB/SHB roles")
	}
	if needsDisk {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return fmt.Errorf("broker: data dir: %w", err)
		}
	}
	if len(cfg.HostedPubends) > 0 {
		vol, err := logvol.Open(filepath.Join(cfg.DataDir, "pubends.log"), logvol.Options{})
		if err != nil {
			return err
		}
		b.peVol = vol
		for _, pc := range cfg.HostedPubends {
			pe, err := pubend.New(pubend.Options{
				ID:               pc.ID,
				Volume:           vol,
				Policy:           pc.Policy,
				SyncEveryPublish: pc.SyncEveryPublish,
				LogLatency:       pc.LogLatency,
			})
			if err != nil {
				return err
			}
			b.pubends[pc.ID] = pe
			b.hostedIDs = append(b.hostedIDs, pc.ID)
		}
	}
	if cfg.EnableSHB {
		if len(cfg.AllPubends) == 0 {
			return errors.New("broker: AllPubends required with EnableSHB")
		}
		vol, err := logvol.Open(filepath.Join(cfg.DataDir, "pfs.log"), logvol.Options{})
		if err != nil {
			return err
		}
		b.shbVol = vol
		meta, err := metastore.Open(filepath.Join(cfg.DataDir, "shb.meta"), metastore.Options{
			Sync:          metastore.SyncNone,
			CommitLatency: cfg.MetaCommitLatency,
		})
		if err != nil {
			return err
		}
		b.meta = meta
		syncEvery := cfg.PFSSyncEvery
		if syncEvery == 0 {
			syncEvery = 200
		}
		p, err := pfs.New(pfs.Options{
			Volume:          vol,
			Meta:            meta,
			SyncEvery:       syncEvery,
			ImpreciseBucket: cfg.PFSImpreciseBucket,
		})
		if err != nil {
			return err
		}
		engine, err := core.New(core.Config{
			Meta:            meta,
			PFS:             p,
			Pubends:         cfg.AllPubends,
			SilenceInterval: cfg.SilenceInterval,
			ReadBufferQ:     cfg.ReadBufferQ,
			EventCacheSize:  cfg.EventCacheSize,
			SendNack:        b.shbSendNack,
			SendRelease:     b.shbSendRelease,
			Deliver:         b.shbDeliver,
			OnCaughtUp:      cfg.OnCaughtUp,
		})
		if err != nil {
			return err
		}
		b.shb = engine
	}
	return nil
}

func (b *Broker) closeState() {
	if b.peVol != nil {
		b.peVol.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.shbVol != nil {
		b.shbVol.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.meta != nil {
		b.meta.Close() //nolint:errcheck,gosec // shutdown path
	}
}

// connect dials upstream and binds the listener.
func (b *Broker) connect() error {
	cfg := b.cfg
	if cfg.UpstreamAddr != "" {
		up, err := cfg.Transport.Dial(cfg.UpstreamAddr)
		if err != nil {
			return fmt.Errorf("broker %s: dial upstream: %w", cfg.Name, err)
		}
		b.up = up
		if err := up.Send(&message.Hello{Role: message.RoleBroker, Name: cfg.Name}); err != nil {
			return err
		}
		up.Start(func(m message.Message) {
			b.tasks.push(func() { b.fromUpstream(m) })
		})
	}
	if cfg.ListenAddr != "" {
		closer, err := cfg.Transport.Listen(cfg.ListenAddr, b.accept)
		if err != nil {
			return fmt.Errorf("broker %s: listen: %w", cfg.Name, err)
		}
		b.listener = closer
	}
	return nil
}

// accept classifies and starts an inbound connection.
func (b *Broker) accept(conn overlay.Conn) {
	link := &downLink{
		conn:    conn,
		matcher: filter.NewMatcher(),
		key:     fmt.Sprintf("%s#%d", conn.RemoteAddr(), b.linkSeq.Add(1)),
	}
	b.tasks.push(func() { b.links[conn] = link })
	conn.OnClose(func() {
		b.tasks.push(func() { b.dropLink(link) })
	})
	conn.Start(func(m message.Message) {
		b.fromBelow(link, m)
	})
}

// loop is the broker's single event loop.
func (b *Broker) loop() {
	defer close(b.loopDone)
	for {
		fn, ok := b.tasks.pop()
		if !ok {
			return
		}
		fn()
	}
}

// tickLoop drives periodic work.
func (b *Broker) tickLoop() {
	defer close(b.tickDone)
	ticker := time.NewTicker(b.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			done := make(chan struct{})
			b.tasks.push(func() {
				b.tick()
				close(done)
			})
			select {
			case <-done:
			case <-b.tickStop:
				return
			}
		case <-b.tickStop:
			return
		}
	}
}

// Close shuts the broker down cleanly, waiting for its goroutines.
func (b *Broker) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	close(b.tickStop)
	<-b.tickDone
	if b.admin != nil {
		b.admin.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.listener != nil {
		b.listener.Close() //nolint:errcheck,gosec // shutdown path
	}
	if b.up != nil {
		b.up.Close() //nolint:errcheck,gosec // shutdown path
	}
	// Drain the loop: push a final task that closes the queue.
	b.tasks.push(func() {
		for conn := range b.links {
			conn.Close() //nolint:errcheck,gosec // shutdown path
		}
		b.tasks.close()
	})
	<-b.loopDone
	b.closeState()
	return nil
}

// Crash simulates a broker failure: connections drop and volatile state is
// lost; persistent files remain for a successor started with the same
// Config.
func (b *Broker) Crash() {
	if b.closed.Swap(true) {
		return
	}
	close(b.tickStop)
	<-b.tickDone
	if b.admin != nil {
		b.admin.Close() //nolint:errcheck,gosec // crash path
	}
	if b.listener != nil {
		b.listener.Close() //nolint:errcheck,gosec // crash path
	}
	if b.up != nil {
		b.up.Close() //nolint:errcheck,gosec // crash path
	}
	b.tasks.push(func() {
		for conn := range b.links {
			conn.Close() //nolint:errcheck,gosec // crash path
		}
		b.tasks.close()
	})
	<-b.loopDone
	b.closeState()
}

// Name reports the broker's configured name.
func (b *Broker) Name() string { return b.cfg.Name }

// RelayStats reports how many events this broker forwarded as data versus
// downgraded to silence on downstream links because nothing below the link
// subscribed to them — the utilization win of filtering at intermediate
// nodes (section 1).
func (b *Broker) RelayStats() (forwarded, filtered int64) {
	return b.eventsForwarded.Load(), b.eventsFiltered.Load()
}

// SHBStats exposes the core engine statistics (zero value when the broker
// is not an SHB).
func (b *Broker) SHBStats() core.Stats {
	if b.shb == nil {
		return core.Stats{}
	}
	return b.shb.Stats()
}

// LatestDelivered reports the SHB constream cursor for a pubend.
func (b *Broker) LatestDelivered(pub vtime.PubendID) vtime.Timestamp {
	if b.shb == nil {
		return 0
	}
	return b.shb.LatestDelivered(pub)
}

// Released reports the SHB released(p) value.
func (b *Broker) Released(pub vtime.PubendID) vtime.Timestamp {
	if b.shb == nil {
		return 0
	}
	return b.shb.Released(pub)
}

// CatchupCount reports active catchup streams at the SHB.
func (b *Broker) CatchupCount() int {
	if b.shb == nil {
		return 0
	}
	return b.shb.CatchupCount()
}

// Pubend returns a hosted pubend (nil if not hosted) — used by tests and
// the experiment harness to inspect retention.
func (b *Broker) Pubend(id vtime.PubendID) *pubend.Pubend {
	return b.pubends[id]
}

// --- Core engine callbacks (must not touch loop-owned state directly) ---

func (b *Broker) shbSendNack(pub vtime.PubendID, spans []tick.Span) {
	b.tasks.push(func() { b.routeNack(nil, pub, spans) })
}

func (b *Broker) shbSendRelease(pub vtime.PubendID, rel, ld vtime.Timestamp) {
	b.tasks.push(func() {
		b.storeRelease("self", pub, rel, ld)
	})
}

func (b *Broker) shbDeliver(sub vtime.SubscriberID, d message.Delivery) {
	v, ok := b.clients.Load(sub)
	if !ok {
		return
	}
	conn, ok := v.(overlay.Conn)
	if !ok {
		return
	}
	//nolint:errcheck,gosec // a failed send means the client link died;
	// its OnClose detaches the subscriber.
	conn.Send(&message.Deliver{Subscriber: sub, Deliveries: []message.Delivery{d}})
}
