package broker

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/overlay"
)

// startRelayThrough starts a pure relay whose upstream link dials through
// the given (typically fault-injecting) transport.
func startRelayThrough(t *testing.T, tr overlay.Transport, name, upstream string) *Broker {
	t.Helper()
	b, err := New(Config{
		Name:         name,
		Transport:    tr,
		ListenAddr:   name,
		UpstreamAddr: upstream,
		DialTimeout:  500 * time.Millisecond,
		TickInterval: testTick,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() }) //nolint:errcheck
	return b
}

// A subscriber is mid-backlog — its SHB replaying a partition gap through
// one relay — when the SHB is re-parented under a different relay. The
// catchup must carry over: the resync on the new path re-announces the
// subscription and re-nacks the pending curiosity intervals, and the
// remaining backlog arrives through the new parent with the exactly-once
// contract intact.
func TestReparentDuringCatchup(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fn := faultnet.New(netw, 11)
	fn.SetLatency(time.Millisecond) // keep the backlog in flight long enough to race
	startBroker(t, netw, Config{
		Name:       "rcphb",
		DataDir:    filepath.Join(t.TempDir(), "rcphb"),
		ListenAddr: "rcphb",
	}, 1, nil)
	startRelayThrough(t, fn, "rcmid1", "rcphb")
	startRelayThrough(t, fn, "rcmid2", "rcphb")
	shb := startSHBThrough(t, fn, "rcshb", "rcmid1", "")
	waitLink(t, shb, "initial link up", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})

	p, err := client.NewPublisher(context.Background(), netw, "rcphb", "rcpub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 911, Filter: `topic = "rc"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "rcshb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "rc", 10)
	got := collectEvents(t, sub, 10)

	// Build the backlog: cut the SHB off its relay and publish into the
	// outage. The PHB logs everything; the SHB accumulates a knowledge gap.
	fn.Partition("rcmid1")
	waitLink(t, shb, "link down after partition", func(s overlay.LinkStatus) bool {
		return s.State != overlay.LinkUp
	})
	want = append(want, pub(t, p, "rc", 150)...)

	// Heal and let the catchup start flowing through mid1 again…
	fn.Heal()
	waitLink(t, shb, "link healed", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})
	got = append(got, collectEvents(t, sub, 30)...)

	// …then yank the SHB under mid2 while the rest of the backlog is still
	// outstanding. The old link to mid1 is only torn down after the new one
	// has resynced (make-before-break).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shb.SetUpstream(ctx, "rcmid2"); err != nil {
		t.Fatalf("SetUpstream: %v", err)
	}
	if addr := shb.UpstreamAddr(); addr != "rcmid2" {
		t.Fatalf("UpstreamAddr = %q, want rcmid2", addr)
	}

	got = append(got, collectEvents(t, sub, 120)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across reparent: gaps=%d violations=%d", gaps, violations)
	}
}

// Two back-to-back re-parents (mid1 → mid2 → PHB) while a publisher
// streams: every hop change happens under live traffic and the subscriber
// must see every event exactly once in order.
func TestDoubleReparentUnderTraffic(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fn := faultnet.New(netw, 13)
	fn.SetLatency(200 * time.Microsecond)
	startBroker(t, netw, Config{
		Name:       "drphb",
		DataDir:    filepath.Join(t.TempDir(), "drphb"),
		ListenAddr: "drphb",
	}, 1, nil)
	startRelayThrough(t, fn, "drmid1", "drphb")
	startRelayThrough(t, fn, "drmid2", "drphb")
	shb := startSHBThrough(t, fn, "drshb", "drmid1", "")
	waitLink(t, shb, "initial link up", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})

	p, err := client.NewPublisher(context.Background(), netw, "drphb", "drpub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 912, Filter: `topic = "dr"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "drshb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	// Stream continuously while the tree is rewired underneath.
	var mu sync.Mutex
	var want []stamp
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := pub(t, p, "dr", 1)
			mu.Lock()
			want = append(want, st...)
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(30 * time.Millisecond)
	for _, next := range []string{"drmid2", "drphb"} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := shb.SetUpstream(ctx, next)
		cancel()
		if err != nil {
			t.Fatalf("SetUpstream(%s): %v", next, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	close(stop)
	<-done
	if addr := shb.UpstreamAddr(); addr != "drphb" {
		t.Fatalf("UpstreamAddr = %q, want drphb", addr)
	}

	mu.Lock()
	total := len(want)
	mu.Unlock()
	got := collectEvents(t, sub, total)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across double reparent: gaps=%d violations=%d", gaps, violations)
	}
}

// DetachUpstream turns a broker into a root; SetUpstream re-joins it.
// Events published while detached must replay after the re-attach.
func TestDetachAndReattach(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startBroker(t, netw, Config{
		Name:       "daphb",
		DataDir:    filepath.Join(t.TempDir(), "daphb"),
		ListenAddr: "daphb",
	}, 1, nil)
	shb := startSHBThrough(t, netw, "dashb", "daphb", "127.0.0.1:0")
	waitLink(t, shb, "initial link up", func(s overlay.LinkStatus) bool {
		return s.State == overlay.LinkUp
	})

	p, err := client.NewPublisher(context.Background(), netw, "daphb", "dapub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 913, Filter: `topic = "da"`, AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "dashb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	want := pub(t, p, "da", 10)
	got := collectEvents(t, sub, 10)

	shb.DetachUpstream()
	if addr := shb.UpstreamAddr(); addr != "" {
		t.Fatalf("UpstreamAddr after detach = %q, want empty", addr)
	}
	if len(shb.Health()) != 0 {
		t.Fatalf("detached broker still reports supervised links: %+v", shb.Health())
	}
	// A detached broker is a healthy root.
	if code, body := adminGet(t, shb, "/healthz"); code != 200 {
		t.Fatalf("/healthz while detached = %d %q, want 200", code, body)
	}

	want = append(want, pub(t, p, "da", 15)...)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shb.SetUpstream(ctx, "daphb"); err != nil {
		t.Fatalf("SetUpstream: %v", err)
	}
	got = append(got, collectEvents(t, sub, 15)...)
	assertTimestamps(t, got, want)
	if _, _, gaps, violations := sub.Stats(); gaps != 0 || violations != 0 {
		t.Fatalf("delivery contract broken across detach/re-attach: gaps=%d violations=%d", gaps, violations)
	}
}

// Shutdown must wait for in-flight publishes to be acked before closing
// the volumes, and respect its context deadline.
func TestGracefulShutdownDrains(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	b, err := New(Config{
		Name:          "gs",
		DataDir:       filepath.Join(t.TempDir(), "gs"),
		Transport:     netw,
		ListenAddr:    "gs",
		HostedPubends: []PubendConfig{{ID: 1}},
		TickInterval:  testTick,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.NewPublisher(context.Background(), netw, "gs", "gspub")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close() //nolint:errcheck
	want := pub(t, p, "gs", 20)
	if len(want) != 20 {
		t.Fatalf("published %d events", len(want))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Idempotent: a hard Close after the graceful drain is a no-op.
	if err := b.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
