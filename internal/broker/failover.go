package broker

// Self-healing fail-over (DESIGN §2.12). The broker carries its advertised
// tree position (repair.TreeInfo) and exchanges it over broker-to-broker
// Hellos: a parent replies to every RoleBroker or RoleProbe Hello with an
// Info-carrying Hello stating its own position, and re-advertises to all
// downstream broker links whenever its position changes, so positions
// flood down the tree. A position is trusted only for the link it was
// learned on — learnTreeInfo is generation-guarded against retired
// supervisors, and a probe reply reflects the candidate's state at probe
// time. The repair.Monitor (started when Config.FailoverAfter and
// Config.Parents are both set) polls the upstream link and drives
// failoverTo — the make-before-break re-parent that, unlike the operator's
// SetUpstream, does not move the preferred primary.

import (
	"context"
	"fmt"

	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/repair"
)

// TreeInfo reports the broker's currently advertised tree position: root
// name, root epoch, and depth below the root. Known is false while the
// broker has an upstream configured but has not yet learned its position
// from it.
func (b *Broker) TreeInfo() repair.TreeInfo { return *b.tree.Load() }

// treeHello builds the position-advertising Hello sent to downstream
// brokers and probes.
func (b *Broker) treeHello() *message.Hello {
	ti := b.TreeInfo()
	return &message.Hello{
		Role:  message.RoleBroker,
		Name:  b.cfg.Name,
		Info:  ti.Known,
		Root:  ti.Root,
		Epoch: ti.Epoch,
		Depth: ti.Depth,
	}
}

// learnTreeInfo ingests the parent's position advertisement: this broker
// sits one hop below whatever the parent advertised. Cascades to the
// downstream links when the position changed. Callers have already
// verified the advertisement arrived on the current (or pending) upstream
// link.
func (b *Broker) learnTreeInfo(h *message.Hello) {
	ni := repair.TreeInfo{}
	if h.Info {
		ni = repair.TreeInfo{Known: true, Root: h.Root, Epoch: h.Epoch, Depth: h.Depth + 1}
	}
	b.treeMu.Lock()
	if h.Epoch > b.epochHigh {
		b.epochHigh = h.Epoch
	}
	changed := ni != *b.tree.Load()
	if changed {
		b.tree.Store(&ni)
	}
	b.treeMu.Unlock()
	if changed {
		b.cascadeTreeInfo()
	}
}

// becomeRoot mints a fresh root position: the epoch advances past every
// epoch this broker has ever seen, so positions learned under the old
// incarnation are recognizably stale by the Adoptable rules.
func (b *Broker) becomeRoot() {
	b.treeMu.Lock()
	b.epochHigh++
	ni := repair.TreeInfo{Known: true, Root: b.cfg.Name, Epoch: b.epochHigh}
	b.tree.Store(&ni)
	b.treeMu.Unlock()
	b.cascadeTreeInfo()
}

// cascadeTreeInfo re-advertises this broker's position to every
// downstream broker link. The Hello is built on the control shard at
// execution time, so back-to-back changes collapse to the latest.
func (b *Broker) cascadeTreeInfo() {
	b.control().push(func() {
		hello := b.treeHello()
		for _, link := range b.downs {
			link.conn.Send(hello) //nolint:errcheck,gosec // dead links drop via OnClose
		}
	})
}

// ProbeParent transiently dials addr, sends a RoleProbe Hello, and
// returns the remote broker's name and advertised tree position from its
// reply. The connection is closed before returning and is never
// registered as a downstream link on the remote side.
func (b *Broker) ProbeParent(ctx context.Context, addr string) (string, repair.TreeInfo, error) {
	conn, err := b.cfg.Transport.DialContext(ctx, addr)
	if err != nil {
		return "", repair.TreeInfo{}, err
	}
	defer conn.Close() //nolint:errcheck,gosec // transient probe
	type reply struct {
		name string
		info repair.TreeInfo
	}
	got := make(chan reply, 1)
	died := make(chan struct{}, 1)
	conn.OnClose(func(error) {
		select {
		case died <- struct{}{}:
		default:
		}
	})
	conn.Start(func(m message.Message) {
		if h, ok := m.(*message.Hello); ok {
			select {
			case got <- reply{h.Name, repair.TreeInfo{
				Known: h.Info, Root: h.Root, Epoch: h.Epoch, Depth: h.Depth,
			}}:
			default:
			}
		}
	})
	if err := conn.Send(&message.Hello{Role: message.RoleProbe, Name: b.cfg.Name}); err != nil {
		return "", repair.TreeInfo{}, err
	}
	select {
	case r := <-got:
		return r.name, r.info, nil
	case <-died:
		return "", repair.TreeInfo{}, fmt.Errorf("broker %s: probe %s: link closed before reply", b.cfg.Name, addr)
	case <-ctx.Done():
		return "", repair.TreeInfo{}, ctx.Err()
	}
}

// failoverTo is the repair monitor's re-parent path: the same
// make-before-break switch as SetUpstream, but the operator-intended
// primary is left alone so PreferPrimary keeps pointing at the parent the
// operator chose.
func (b *Broker) failoverTo(ctx context.Context, addr string) error {
	b.memberMu.Lock()
	defer b.memberMu.Unlock()
	if b.closed.Load() {
		return fmt.Errorf("broker %s: closed", b.cfg.Name)
	}
	return b.setUpstreamLocked(ctx, addr)
}

// Parents reports the candidate-parent states in preference order (nil
// when automatic fail-over is not configured).
func (b *Broker) Parents() []repair.CandidateStatus {
	if b.repairMon == nil {
		return nil
	}
	return b.repairMon.Candidates()
}

// RepairStats reports the automatic repair history (zero value when
// fail-over is not configured).
func (b *Broker) RepairStats() repair.Stats {
	if b.repairMon == nil {
		return repair.Stats{}
	}
	return b.repairMon.Stats()
}

// repairNode adapts *Broker to the repair.Monitor's Node surface.
type repairNode struct{ b *Broker }

func (n repairNode) Name() string         { return n.b.cfg.Name }
func (n repairNode) UpstreamAddr() string { return n.b.UpstreamAddr() }

func (n repairNode) UpstreamStatus() (overlay.LinkStatus, bool) {
	sup := n.b.upSup.Load()
	if sup == nil {
		return overlay.LinkStatus{}, false
	}
	return sup.Status(), true
}

func (n repairNode) Tree() repair.TreeInfo { return n.b.TreeInfo() }

func (n repairNode) Probe(ctx context.Context, addr string) (string, repair.TreeInfo, error) {
	return n.b.ProbeParent(ctx, addr)
}

func (n repairNode) Reparent(ctx context.Context, addr string) error {
	return n.b.failoverTo(ctx, addr)
}
