// Package repair implements the self-healing fail-over policy of the
// broker overlay: each non-root broker carries an ordered list of
// candidate parents, watches its supervised upstream link, and when the
// primary stays down past a threshold re-parents itself to the best live
// candidate through the membership machinery's make-before-break path —
// preferring the original parent back once it returns.
//
// The hard part is staying loop-free when a whole subtree is orphaned
// together: a broker must never adopt a parent from inside its own
// orphaned subtree, and concurrent fail-overs by siblings must converge
// instead of adopting each other. Both are decided locally from the
// tree-position tuple (root name, root epoch, depth) every broker
// advertises in its Hello replies — see Adoptable for the rule and
// DESIGN §2.12 for the argument. The design follows the self-repair
// ideas of "Self-Stabilizing Supervised Publish-Subscribe Systems" and
// VCube-PS: local decisions from neighbor-advertised position, with a
// deterministic tie-break so contested edges resolve one way.
package repair

import (
	"context"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/overlay"
	"repro/internal/telemetry"
)

// Fail-over instruments (process-wide).
var (
	tFailovers = telemetry.Default().Counter("gryphon_failover_total",
		"Automatic upstream fail-overs: repair-driven re-parents away from a down parent.")
	tFailbacks = telemetry.Default().Counter("gryphon_failback_total",
		"Automatic returns to the preferred primary parent after it came back.")
	tRepairSeconds = telemetry.Default().DurationHistogram("gryphon_time_to_repair_seconds",
		"Time from the upstream link going down to a successful automatic re-parent.",
		telemetry.FastBuckets)
)

// TreeInfo is a broker's advertised position in the overlay tree: the
// root it currently hangs from, that root's incarnation epoch, and its
// own hop distance below the root. Known is false while the broker has
// not yet learned its position from its current parent (the tuple is
// only trusted for the link it was learned on — a re-parented broker's
// stale position from a previous parent is not evidence).
type TreeInfo struct {
	Known bool
	Root  string
	Epoch uint64
	Depth uint32
}

// Adoptable decides whether the broker selfName (at position self) may
// safely adopt the broker candName (advertising position cand) as its
// new parent during a fail-over. The rule must hold when self's own
// position is stale — its parent is down, so self and every broker below
// it advertise the positions they held when the outage began:
//
//   - cand must advertise a Known position, and must not be self or
//     claim self as its root (a broker inside self's subtree roots its
//     advertised position at self or deeper).
//   - A candidate under a different root is outside self's tree
//     entirely: safe.
//   - Same root, higher epoch: the root re-minted its epoch after self's
//     info froze, so cand's position is provably fresher than anything
//     in self's orphaned subtree (descendants can only learn a new epoch
//     through self).
//   - Same root and epoch: only a strictly shallower candidate is safe —
//     every descendant of self froze at a strictly greater depth. Equal
//     depth means a sibling that may itself be orphaned and probing us
//     right now; the lexicographic name tie-break lets exactly one
//     direction of the contested edge win, so concurrent sibling
//     fail-overs converge instead of forming a 2-cycle.
//
// Unknown self positions are permissive: a broker that never learned its
// place has no descendants carrying Known positions (they could only
// have learned one through it), so any Known candidate is outside its
// subtree.
func Adoptable(selfName string, self TreeInfo, candName string, cand TreeInfo) bool {
	if !cand.Known || candName == selfName || cand.Root == selfName {
		return false
	}
	if !self.Known {
		return true
	}
	if cand.Root != self.Root {
		return true
	}
	if cand.Epoch != self.Epoch {
		return cand.Epoch > self.Epoch
	}
	if cand.Depth != self.Depth {
		return cand.Depth < self.Depth
	}
	return candName < selfName
}

// AdoptableFailback is the relaxed rule for returning to the preferred
// primary parent: the primary edge is an operator-declared tree edge, so
// an equal-depth primary (common after both ends failed over to the same
// grandparent) is also accepted — the declared topology is acyclic, so
// mutual primary edges cannot exist and the 2-cycle hazard of the
// fail-over tie-break does not apply.
func AdoptableFailback(selfName string, self TreeInfo, candName string, cand TreeInfo) bool {
	if Adoptable(selfName, self, candName, cand) {
		return true
	}
	return cand.Known && candName != selfName && cand.Root != selfName &&
		self.Known && cand.Root == self.Root && cand.Epoch == self.Epoch &&
		cand.Depth <= self.Depth
}

// Node is the broker surface the monitor drives. Implemented by an
// adapter over *broker.Broker (the broker package imports repair, not
// the other way around).
type Node interface {
	// Name is the broker's own name.
	Name() string
	// UpstreamAddr is the current parent's dial address ("" = root).
	UpstreamAddr() string
	// UpstreamStatus snapshots the supervised upstream link; ok is false
	// for a root (nothing to fail over from).
	UpstreamStatus() (st overlay.LinkStatus, ok bool)
	// Tree is the broker's own current position.
	Tree() TreeInfo
	// Probe dials addr transiently and returns the remote broker's name
	// and advertised position (no downstream link is registered).
	Probe(ctx context.Context, addr string) (name string, info TreeInfo, err error)
	// Reparent re-parents the broker under addr make-before-break. It
	// must not change the operator-intended primary.
	Reparent(ctx context.Context, addr string) error
}

// Config configures a Monitor.
type Config struct {
	// Node is the supervised broker (required).
	Node Node
	// Primary is the operator-intended parent address ("" = none); the
	// broker updates it through SetPrimary on operator re-parents.
	Primary string
	// Candidates is the ordered candidate-parent address list (required,
	// non-empty); earlier entries are preferred.
	Candidates []string
	// FailoverAfter is how long the upstream link must stay down before
	// a fail-over is attempted (required > 0).
	FailoverAfter time.Duration
	// Holddown is the minimum spacing between repair-driven re-parents
	// (fail-over or fail-back), damping flaps on a blinking link
	// (0 = 4×FailoverAfter).
	Holddown time.Duration
	// PreferPrimary re-adopts the primary parent once it is reachable
	// and adoptable again (after Holddown).
	PreferPrimary bool
	// Jitter widens the per-outage threshold to FailoverAfter×(1+J·rand)
	// so co-orphaned siblings don't stampede the same candidate at the
	// same instant (0 = 0.5; negative = none).
	Jitter float64
	// Seed seeds the jitter source (0 = FNV hash of the node name, so
	// sibling schedules decorrelate deterministically).
	Seed int64
	// Interval is the watch poll period (0 = FailoverAfter/4, min 1ms).
	Interval time.Duration
	// ProbeTimeout bounds each candidate probe (0 = max(FailoverAfter,
	// 50ms)).
	ProbeTimeout time.Duration
	// ProbeEvery is the background candidate-refresh period keeping
	// Candidates() fresh for health reporting (0 = 8×Interval; negative
	// = never).
	ProbeEvery time.Duration
}

// CandidateStatus is one candidate parent's last-probed state.
type CandidateStatus struct {
	// Addr is the candidate's dial address (as configured).
	Addr string
	// Name is the candidate's broker name ("" until first probed).
	Name string
	// Tree is the candidate's advertised position at the last probe.
	Tree TreeInfo
	// Alive reports whether the last probe succeeded.
	Alive bool
	// LastProbe is when the candidate was last probed (zero = never).
	LastProbe time.Time
	// LastError is the last probe failure ("" when none).
	LastError string
}

// Stats is a snapshot of the monitor's repair history.
type Stats struct {
	// Failovers counts repair-driven re-parents away from a down parent.
	Failovers uint64
	// Failbacks counts returns to the preferred primary.
	Failbacks uint64
	// Repairs holds the time-to-repair of each fail-over (outage start to
	// successful re-parent), most recent last; bounded to the last 256.
	Repairs []time.Duration
}

// Monitor watches one broker's upstream link and drives automatic
// fail-over and fail-back. All probing and re-parenting happens on the
// monitor's own goroutine; the snapshot accessors are safe for
// concurrent use.
type Monitor struct {
	cfg Config
	rng *rand.Rand // loop-owned

	primary atomic.Pointer[string]

	mu      sync.Mutex
	cands   map[string]*CandidateStatus
	order   []string
	repairs []time.Duration

	failovers atomic.Uint64
	failbacks atomic.Uint64

	// Loop-owned fail-over state.
	lastSwitch time.Time
	threshold  time.Duration // jittered per-outage threshold
	armed      bool          // threshold drawn for the current outage

	stop     chan struct{}
	done     chan struct{}
	started  atomic.Bool
	stopOnce sync.Once
}

// NewMonitor builds a monitor; Start runs it.
func NewMonitor(cfg Config) *Monitor {
	if cfg.Holddown <= 0 {
		cfg.Holddown = 4 * cfg.FailoverAfter
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.5
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.FailoverAfter / 4
		if cfg.Interval < time.Millisecond {
			cfg.Interval = time.Millisecond
		}
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.FailoverAfter
		if cfg.ProbeTimeout < 50*time.Millisecond {
			cfg.ProbeTimeout = 50 * time.Millisecond
		}
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 8 * cfg.Interval
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.Node.Name())) //nolint:errcheck,gosec // fnv never fails
		seed = int64(h.Sum64())
		if seed == 0 {
			seed = 1
		}
	}
	m := &Monitor{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)), //nolint:gosec // jitter, not crypto
		cands: make(map[string]*CandidateStatus, len(cfg.Candidates)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, addr := range cfg.Candidates {
		if _, dup := m.cands[addr]; dup {
			continue
		}
		m.cands[addr] = &CandidateStatus{Addr: addr}
		m.order = append(m.order, addr)
	}
	p := cfg.Primary
	m.primary.Store(&p)
	return m
}

// Start launches the watch loop. Safe to call once.
func (m *Monitor) Start() {
	if m.started.Swap(true) {
		return
	}
	go m.run()
}

// Stop halts the loop, waiting out any in-flight probe or re-parent.
// Safe to call more than once, including before Start.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	if m.started.Load() {
		<-m.done
	}
}

// SetPrimary records a new operator-intended parent (operator re-parents
// move the preference; repair-driven moves do not).
func (m *Monitor) SetPrimary(addr string) { m.primary.Store(&addr) }

// Primary reports the operator-intended parent address.
func (m *Monitor) Primary() string { return *m.primary.Load() }

// Candidates snapshots the candidate parents in preference order.
func (m *Monitor) Candidates() []CandidateStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]CandidateStatus, 0, len(m.order))
	for _, addr := range m.order {
		out = append(out, *m.cands[addr])
	}
	return out
}

// Stats snapshots the repair history.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	repairs := append([]time.Duration(nil), m.repairs...)
	m.mu.Unlock()
	return Stats{
		Failovers: m.failovers.Load(),
		Failbacks: m.failbacks.Load(),
		Repairs:   repairs,
	}
}

func (m *Monitor) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	var lastRefresh time.Time
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.tick()
		if m.cfg.ProbeEvery > 0 && time.Since(lastRefresh) >= m.cfg.ProbeEvery {
			m.refreshCandidates()
			lastRefresh = time.Now()
		}
	}
}

// tick is one watch round: arm the jittered threshold on a fresh outage,
// fail over once it is exceeded, or consider failing back while healthy.
func (m *Monitor) tick() {
	st, ok := m.cfg.Node.UpstreamStatus()
	if !ok {
		// Root (operator detached): nothing to fail over from.
		m.armed = false
		return
	}
	if st.State == overlay.LinkUp {
		m.armed = false
		if m.cfg.PreferPrimary {
			m.maybeFailback()
		}
		return
	}
	if !m.armed {
		m.threshold = m.cfg.FailoverAfter +
			time.Duration(m.cfg.Jitter*m.rng.Float64()*float64(m.cfg.FailoverAfter))
		m.armed = true
	}
	if st.DownFor < m.threshold {
		return
	}
	if time.Since(m.lastSwitch) < m.cfg.Holddown {
		return
	}
	m.failover(st)
}

// failover probes the candidates in preference order and re-parents to
// the first live, adoptable one. Runs on the monitor goroutine.
func (m *Monitor) failover(st overlay.LinkStatus) {
	began := time.Now()
	cur := m.cfg.Node.UpstreamAddr()
	selfName := m.cfg.Node.Name()
	self := m.cfg.Node.Tree()
	for _, addr := range m.order {
		if addr == cur {
			continue // the down parent itself
		}
		name, info, err := m.probe(addr)
		if err != nil || !Adoptable(selfName, self, name, info) {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), m.reparentTimeout())
		err = m.cfg.Node.Reparent(ctx, addr)
		cancel()
		if err != nil {
			continue
		}
		m.lastSwitch = time.Now()
		m.armed = false
		m.failovers.Add(1)
		tFailovers.Inc()
		repair := st.DownFor + time.Since(began)
		tRepairSeconds.ObserveDuration(repair)
		m.mu.Lock()
		m.repairs = append(m.repairs, repair)
		if len(m.repairs) > 256 {
			m.repairs = m.repairs[len(m.repairs)-256:]
		}
		m.mu.Unlock()
		return
	}
}

// maybeFailback returns to the primary parent when preferred, reachable,
// and adoptable. Runs on the monitor goroutine while the link is up.
func (m *Monitor) maybeFailback() {
	primary := m.Primary()
	cur := m.cfg.Node.UpstreamAddr()
	if primary == "" || cur == "" || cur == primary {
		return
	}
	if time.Since(m.lastSwitch) < m.cfg.Holddown {
		return
	}
	name, info, err := m.probe(primary)
	if err != nil || !AdoptableFailback(m.cfg.Node.Name(), m.cfg.Node.Tree(), name, info) {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.reparentTimeout())
	err = m.cfg.Node.Reparent(ctx, primary)
	cancel()
	if err != nil {
		return
	}
	m.lastSwitch = time.Now()
	m.failbacks.Add(1)
	tFailbacks.Inc()
}

// probe checks one candidate and records its status for Candidates().
func (m *Monitor) probe(addr string) (string, TreeInfo, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.ProbeTimeout)
	name, info, err := m.cfg.Node.Probe(ctx, addr)
	cancel()
	m.mu.Lock()
	if c := m.cands[addr]; c != nil {
		c.LastProbe = time.Now()
		if err != nil {
			c.Alive = false
			c.LastError = err.Error()
		} else {
			c.Alive = true
			c.LastError = ""
			c.Name = name
			c.Tree = info
		}
	}
	m.mu.Unlock()
	return name, info, err
}

// refreshCandidates probes every candidate so health reporting stays
// fresh even while the upstream link is healthy.
func (m *Monitor) refreshCandidates() {
	for _, addr := range m.order {
		select {
		case <-m.stop:
			return
		default:
		}
		m.probe(addr) //nolint:errcheck,gosec // status recording is the point
	}
}

func (m *Monitor) reparentTimeout() time.Duration {
	if t := 4 * m.cfg.FailoverAfter; t > time.Second {
		return t
	}
	return time.Second
}
