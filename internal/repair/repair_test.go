package repair

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/overlay"
)

func TestAdoptable(t *testing.T) {
	known := func(root string, epoch uint64, depth uint32) TreeInfo {
		return TreeInfo{Known: true, Root: root, Epoch: epoch, Depth: depth}
	}
	self := known("phb", 3, 2) // mid broker, depth 2 under phb@3
	cases := []struct {
		name     string
		selfName string
		self     TreeInfo
		candName string
		cand     TreeInfo
		want     bool
	}{
		{"unknown candidate", "mid1", self, "x", TreeInfo{}, false},
		{"candidate is self", "mid1", self, "mid1", known("phb", 3, 1), false},
		{"candidate rooted at self", "mid1", self, "kid", known("mid1", 5, 1), false},
		{"different root", "mid1", self, "other", known("alt", 1, 9), true},
		{"same root higher epoch", "mid1", self, "cousin", known("phb", 4, 7), true},
		{"same root lower epoch", "mid1", self, "stale", known("phb", 2, 0), false},
		{"same epoch shallower", "mid1", self, "uncle", known("phb", 3, 1), true},
		{"same epoch deeper", "mid1", self, "nephew", known("phb", 3, 3), false},
		{"same depth name wins", "mid2", self, "mid1", known("phb", 3, 2), true},
		{"same depth name loses", "mid1", self, "mid2", known("phb", 3, 2), false},
		{"unknown self adopts anything known", "mid1", TreeInfo{}, "any", known("phb", 1, 9), true},
		{"unknown self rejects unknown", "mid1", TreeInfo{}, "any", TreeInfo{}, false},
		{"unknown self rejects own root claim", "mid1", TreeInfo{}, "kid", known("mid1", 1, 1), false},
	}
	for _, c := range cases {
		if got := Adoptable(c.selfName, c.self, c.candName, c.cand); got != c.want {
			t.Errorf("%s: Adoptable = %v, want %v", c.name, got, c.want)
		}
	}
	// The tie-break must never let both directions of a contested edge
	// pass: for equal positions exactly one of (a adopts b, b adopts a)
	// holds.
	a, b := known("phb", 3, 2), known("phb", 3, 2)
	ab := Adoptable("mida", a, "midb", b)
	ba := Adoptable("midb", b, "mida", a)
	if ab == ba {
		t.Fatalf("tie-break not antisymmetric: a->b=%v b->a=%v", ab, ba)
	}
}

func TestAdoptableFailback(t *testing.T) {
	known := func(root string, epoch uint64, depth uint32) TreeInfo {
		return TreeInfo{Known: true, Root: root, Epoch: epoch, Depth: depth}
	}
	self := known("phb", 3, 2)
	// Equal depth is allowed on the primary edge (declared topology is
	// acyclic) even though plain Adoptable rejects it.
	if Adoptable("mid1", self, "mid2", known("phb", 3, 2)) {
		t.Fatal("plain Adoptable should reject equal depth with losing name")
	}
	if !AdoptableFailback("mid1", self, "mid2", known("phb", 3, 2)) {
		t.Fatal("failback should accept an equal-depth primary")
	}
	// Deeper candidates stay rejected even for failback.
	if AdoptableFailback("mid1", self, "kid", known("phb", 3, 3)) {
		t.Fatal("failback must not adopt a deeper candidate")
	}
	// And the self-subtree guards hold.
	if AdoptableFailback("mid1", self, "kid", known("mid1", 9, 1)) {
		t.Fatal("failback must not adopt a candidate rooted at self")
	}
}

// fakeNode is a scriptable repair.Node for monitor tests.
type fakeNode struct {
	mu        sync.Mutex
	name      string
	upstream  string
	status    overlay.LinkStatus
	hasStatus bool
	tree      TreeInfo
	probes    map[string]probeResult
	reparents []string
	reparent  func(addr string) error
}

type probeResult struct {
	name string
	info TreeInfo
	err  error
}

func (f *fakeNode) Name() string { return f.name }

func (f *fakeNode) UpstreamAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.upstream
}

func (f *fakeNode) UpstreamStatus() (overlay.LinkStatus, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status, f.hasStatus
}

func (f *fakeNode) Tree() TreeInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tree
}

func (f *fakeNode) Probe(_ context.Context, addr string) (string, TreeInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.probes[addr]
	if !ok {
		return "", TreeInfo{}, errors.New("unreachable")
	}
	return r.name, r.info, r.err
}

func (f *fakeNode) Reparent(_ context.Context, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.reparent != nil {
		if err := f.reparent(addr); err != nil {
			return err
		}
	}
	f.reparents = append(f.reparents, addr)
	f.upstream = addr
	f.status = overlay.LinkStatus{State: overlay.LinkUp}
	return nil
}

func (f *fakeNode) setDown(downFor time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.status = overlay.LinkStatus{State: overlay.LinkDown, DownFor: downFor}
}

func (f *fakeNode) reparentLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.reparents...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMonitorFailsOverToFirstAdoptable(t *testing.T) {
	adopt := TreeInfo{Known: true, Root: "phb", Epoch: 1, Depth: 1}
	node := &fakeNode{
		name:      "mid2",
		upstream:  "mid1",
		hasStatus: true,
		tree:      TreeInfo{Known: true, Root: "phb", Epoch: 1, Depth: 2},
		probes: map[string]probeResult{
			// mid1 (the down parent, skipped), dead is unreachable,
			// kid is inside our own subtree, phb is adoptable.
			"dead": {err: errors.New("down")},
			"kid":  {name: "kid", info: TreeInfo{Known: true, Root: "mid2", Epoch: 2, Depth: 1}},
			"phb":  {name: "phb", info: adopt},
		},
	}
	node.setDown(time.Hour) // well past any threshold
	m := NewMonitor(Config{
		Node:          node,
		Primary:       "mid1",
		Candidates:    []string{"mid1", "dead", "kid", "phb"},
		FailoverAfter: 5 * time.Millisecond,
		Interval:      time.Millisecond,
		ProbeEvery:    -1,
	})
	m.Start()
	defer m.Stop()
	waitFor(t, "failover", func() bool { return m.Stats().Failovers == 1 })
	if got := node.reparentLog(); len(got) != 1 || got[0] != "phb" {
		t.Fatalf("reparents = %v, want [phb]", got)
	}
	st := m.Stats()
	if len(st.Repairs) != 1 || st.Repairs[0] < time.Hour {
		t.Fatalf("repairs = %v, want one entry >= outage duration", st.Repairs)
	}
	if m.Primary() != "mid1" {
		t.Fatalf("failover moved the primary to %q", m.Primary())
	}
	// Candidate statuses were recorded by the fail-over probes.
	var sawDead, sawPhb bool
	for _, c := range m.Candidates() {
		switch c.Addr {
		case "dead":
			sawDead = !c.Alive && c.LastError != ""
		case "phb":
			sawPhb = c.Alive && c.Name == "phb"
		}
	}
	if !sawDead || !sawPhb {
		t.Fatalf("candidate statuses not recorded: %+v", m.Candidates())
	}
}

func TestMonitorHolddownDampsFlapping(t *testing.T) {
	adopt := TreeInfo{Known: true, Root: "phb", Epoch: 1, Depth: 1}
	node := &fakeNode{
		name:      "mid2",
		upstream:  "mid1",
		hasStatus: true,
		tree:      TreeInfo{Known: true, Root: "phb", Epoch: 1, Depth: 2},
		probes: map[string]probeResult{
			"alt1": {name: "alt1", info: adopt},
			"alt2": {name: "alt2", info: adopt},
		},
	}
	node.setDown(time.Hour)
	m := NewMonitor(Config{
		Node:          node,
		Candidates:    []string{"alt1", "alt2"},
		FailoverAfter: 2 * time.Millisecond,
		Holddown:      time.Hour,
		Interval:      time.Millisecond,
		ProbeEvery:    -1,
	})
	m.Start()
	defer m.Stop()
	waitFor(t, "first failover", func() bool { return m.Stats().Failovers == 1 })
	// The link "blinks": goes down again immediately. Holddown must hold
	// the fire.
	node.setDown(time.Hour)
	time.Sleep(50 * time.Millisecond)
	if got := m.Stats().Failovers; got != 1 {
		t.Fatalf("failovers = %d within holddown, want 1", got)
	}
}

func TestMonitorFailsBackToPrimary(t *testing.T) {
	node := &fakeNode{
		name:      "mid2",
		upstream:  "alt", // currently failed over
		hasStatus: true,
		status:    overlay.LinkStatus{State: overlay.LinkUp},
		tree:      TreeInfo{Known: true, Root: "phb", Epoch: 1, Depth: 2},
		probes: map[string]probeResult{
			"mid1": {name: "mid1", info: TreeInfo{Known: true, Root: "phb", Epoch: 1, Depth: 1}},
		},
	}
	m := NewMonitor(Config{
		Node:          node,
		Primary:       "mid1",
		Candidates:    []string{"mid1", "alt"},
		FailoverAfter: 5 * time.Millisecond,
		Holddown:      time.Millisecond,
		PreferPrimary: true,
		Interval:      time.Millisecond,
		ProbeEvery:    -1,
	})
	m.Start()
	defer m.Stop()
	waitFor(t, "failback", func() bool { return m.Stats().Failbacks == 1 })
	if got := node.reparentLog(); len(got) != 1 || got[0] != "mid1" {
		t.Fatalf("reparents = %v, want [mid1]", got)
	}
}

func TestMonitorRootDisarms(t *testing.T) {
	node := &fakeNode{name: "root", hasStatus: false}
	m := NewMonitor(Config{
		Node:          node,
		Candidates:    []string{"alt"},
		FailoverAfter: time.Millisecond,
		Interval:      time.Millisecond,
		ProbeEvery:    -1,
	})
	m.Start()
	defer m.Stop()
	time.Sleep(20 * time.Millisecond)
	if got := m.Stats().Failovers; got != 0 {
		t.Fatalf("root failed over %d times", got)
	}
}
