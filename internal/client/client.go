// Package client implements the application-facing libraries: publishers
// and durable subscribers (the subscriber model of section 2).
//
// A durable subscriber owns its checkpoint token (CT): the client library
// updates it as messages are consumed, acknowledges it to the SHB
// periodically, optionally persists it to a file, and presents it on
// reconnection as the resumption point. Keeping the CT at the subscriber —
// rather than inside the messaging system — is the paper's recommended
// model; the jms package provides the server-side-CT alternative.
//
// Both clients can ride a supervised link (AutoReconnect): the connection
// is redialed with capped exponential backoff after involuntary loss, and
// a reconnecting subscriber re-subscribes from its checkpoint token, so
// the SHB's catchup stream resumes exactly-once delivery across the gap.
package client

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// ErrClosed is returned by operations on closed clients.
var ErrClosed = errors.New("client: closed")

// ErrLinkDown is returned by operations attempted while an auto-reconnect
// client's link is down; the supervisor is redialing and the operation can
// be retried.
var ErrLinkDown = errors.New("client: link down (reconnecting)")

// debugViolations prints delivery-contract violations for debugging.
var debugViolations = os.Getenv("CLIENT_DEBUG_VIOLATIONS") == "1"

// ConnState is a client link transition reported through OnConnChange.
type ConnState int

// Connection states reported to OnConnChange callbacks.
const (
	// ConnDown: the link was lost involuntarily (an auto-reconnect client
	// is now redialing in the background).
	ConnDown ConnState = iota
	// ConnUp: the link is established — for subscribers, subscribed and
	// delivering.
	ConnUp
)

// String renders the state for logs.
func (c ConnState) String() string {
	if c == ConnUp {
		return "up"
	}
	return "down"
}

// dialCtx dials addr under ctx, additionally bounding the attempt when
// timeout > 0 (whichever is tighter; zero keeps ctx alone).
func dialCtx(ctx context.Context, t overlay.Transport, addr string, timeout time.Duration) (overlay.Conn, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return t.DialContext(ctx, addr)
}

// PublisherOptions configures optional publisher behavior. The zero value
// reproduces the original client: unbounded dial, no reconnect.
type PublisherOptions struct {
	// DialTimeout bounds the connection attempt (and each supervised
	// reconnect). Zero means no timeout.
	DialTimeout time.Duration
	// AutoReconnect keeps the publisher alive through link failures:
	// publishes in flight when the link dies fail (their ack channels
	// close), but the handle reconnects with backoff and accepts new
	// publishes instead of becoming permanently closed.
	AutoReconnect bool
	// OnConnChange, when set, is called on every link transition.
	OnConnChange func(ConnState)
}

// PublisherOption is one functional option for NewPublisher.
type PublisherOption func(*PublisherOptions)

// WithOptions overlays a whole PublisherOptions struct (the bridge from
// the deprecated struct-options constructors).
func WithOptions(o PublisherOptions) PublisherOption {
	return func(dst *PublisherOptions) { *dst = o }
}

// WithDialTimeout bounds the connection attempt (and each supervised
// reconnect).
func WithDialTimeout(d time.Duration) PublisherOption {
	return func(o *PublisherOptions) { o.DialTimeout = d }
}

// WithAutoReconnect keeps the publisher alive through link failures,
// redialing with capped exponential backoff.
func WithAutoReconnect() PublisherOption {
	return func(o *PublisherOptions) { o.AutoReconnect = true }
}

// WithConnChange observes every link transition.
func WithConnChange(fn func(ConnState)) PublisherOption {
	return func(o *PublisherOptions) { o.OnConnChange = fn }
}

// Publisher publishes events to a publisher hosting broker.
type Publisher struct {
	opts PublisherOptions
	sup  *overlay.Supervisor // non-nil iff AutoReconnect

	mu      sync.Mutex
	conn    overlay.Conn
	next    uint64
	pending map[uint64]chan *message.PublishAck
	closed  bool
}

// NewPublisher connects a publisher to the broker at addr. The initial
// dial is bounded by ctx (in addition to WithDialTimeout, whichever is
// tighter); the first connection attempt is synchronous even with
// WithAutoReconnect, so a dead broker fails here rather than on the first
// publish. With auto-reconnect, attempts after the first are governed by
// the dial timeout alone.
func NewPublisher(ctx context.Context, t overlay.Transport, addr, name string, options ...PublisherOption) (*Publisher, error) {
	var opts PublisherOptions
	for _, apply := range options {
		apply(&opts)
	}
	return newPublisher(ctx, t, addr, name, opts)
}

// NewPublisherOpts connects with struct options and no context.
//
// Deprecated: use NewPublisher with WithOptions (or the individual
// With... options).
func NewPublisherOpts(t overlay.Transport, addr, name string, opts PublisherOptions) (*Publisher, error) {
	return newPublisher(context.Background(), t, addr, name, opts)
}

// NewPublisherContext is NewPublisherOpts with the initial dial bounded
// by ctx.
//
// Deprecated: use NewPublisher with WithOptions.
func NewPublisherContext(ctx context.Context, t overlay.Transport, addr, name string, opts PublisherOptions) (*Publisher, error) {
	return newPublisher(ctx, t, addr, name, opts)
}

func newPublisher(ctx context.Context, t overlay.Transport, addr, name string, opts PublisherOptions) (*Publisher, error) {
	p := &Publisher{opts: opts, pending: make(map[uint64]chan *message.PublishAck)}
	if opts.AutoReconnect {
		sup := overlay.NewSupervisor(overlay.SupervisorConfig{
			Name:        "publisher/" + name,
			Transport:   t,
			Addr:        addr,
			DialTimeout: opts.DialTimeout,
			OnUp: func(conn overlay.Conn) error {
				if err := conn.Send(&message.Hello{Role: message.RolePublisher, Name: name}); err != nil {
					return err
				}
				conn.Start(p.onMessage)
				p.mu.Lock()
				p.conn = conn
				p.mu.Unlock()
				p.notify(ConnUp)
				return nil
			},
			OnDown: func(error) {
				p.dropLink(false)
				p.notify(ConnDown)
			},
		})
		if err := sup.StartContext(ctx); err != nil {
			return nil, fmt.Errorf("publisher dial: %w", err)
		}
		p.sup = sup
		return p, nil
	}
	conn, err := dialCtx(ctx, t, addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("publisher dial: %w", err)
	}
	if err := conn.Send(&message.Hello{Role: message.RolePublisher, Name: name}); err != nil {
		return nil, err
	}
	p.conn = conn
	conn.OnClose(func(error) {
		p.dropLink(true)
		p.notify(ConnDown)
	})
	conn.Start(p.onMessage)
	return p, nil
}

func (p *Publisher) notify(st ConnState) {
	if p.opts.OnConnChange != nil {
		p.opts.OnConnChange(st)
	}
}

func (p *Publisher) onMessage(m message.Message) {
	ack, ok := m.(*message.PublishAck)
	if !ok {
		return
	}
	p.mu.Lock()
	ch := p.pending[ack.Token]
	delete(p.pending, ack.Token)
	p.mu.Unlock()
	if ch != nil {
		ch <- ack
	}
}

// dropLink handles a lost connection: publishes in flight fail (their ack
// channels close — the PHB may or may not have logged them, exactly the
// ambiguity a real crash leaves). terminal additionally closes the handle
// (the non-reconnecting client's old behavior).
func (p *Publisher) dropLink(terminal bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn = nil
	if terminal {
		p.closed = true
	}
	for tok, ch := range p.pending {
		close(ch)
		delete(p.pending, tok)
	}
}

// Publish sends one event and waits until the PHB has logged it (the
// paper's persistent publish). It returns the assigned pubend and
// timestamp.
func (p *Publisher) Publish(attrs message.Event) (vtime.PubendID, vtime.Timestamp, error) {
	ch, err := p.publishAsync(attrs, 0)
	if err != nil {
		return 0, 0, err
	}
	ack, ok := <-ch
	if !ok {
		return 0, 0, ErrClosed
	}
	if ack.Timestamp == 0 {
		return 0, 0, errors.New("client: broker rejected publish (not a PHB?)")
	}
	return ack.Pubend, ack.Timestamp, nil
}

// PublishTo is Publish with an explicit pubend.
func (p *Publisher) PublishTo(pub vtime.PubendID, attrs message.Event) (vtime.Timestamp, error) {
	ch, err := p.publishAsync(attrs, pub)
	if err != nil {
		return 0, err
	}
	ack, ok := <-ch
	if !ok {
		return 0, ErrClosed
	}
	if ack.Timestamp == 0 {
		return 0, errors.New("client: broker rejected publish")
	}
	return ack.Timestamp, nil
}

// PublishAsync sends one event without waiting; the returned channel
// yields the ack (or closes on connection loss). Throughput harnesses use
// it with a window of outstanding publishes.
func (p *Publisher) PublishAsync(attrs message.Event, pub vtime.PubendID) (<-chan *message.PublishAck, error) {
	return p.publishAsync(attrs, pub)
}

func (p *Publisher) publishAsync(attrs message.Event, pub vtime.PubendID) (chan *message.PublishAck, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	conn := p.conn
	if conn == nil {
		p.mu.Unlock()
		return nil, ErrLinkDown
	}
	p.next++
	tok := p.next
	ch := make(chan *message.PublishAck, 1)
	p.pending[tok] = ch
	p.mu.Unlock()

	err := conn.Send(&message.Publish{
		PubendHint: pub,
		Token:      tok,
		Attrs:      attrs.Attrs,
		Payload:    attrs.Payload,
	})
	if err != nil {
		p.mu.Lock()
		delete(p.pending, tok)
		p.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Close disconnects the publisher (and stops its supervisor).
func (p *Publisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conn := p.conn
	p.mu.Unlock()
	if p.sup != nil {
		p.sup.Stop()
		return nil
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// SubscriberOptions configures a durable subscriber.
type SubscriberOptions struct {
	// ID is the durable subscription's system-wide identity (required).
	ID vtime.SubscriberID
	// Filter is the subscription in filter.Parse syntax (required).
	Filter string
	// CTPath, when set, persists the checkpoint token to this file so
	// the subscriber survives its own crashes without gaps.
	CTPath string
	// AckInterval is the checkpoint acknowledgment cadence; zero means
	// 250ms (the paper's released(s) update period).
	AckInterval time.Duration
	// Credits enables flow control: the SHB may have at most this many
	// undelivered catchup events outstanding. Zero disables flow
	// control.
	Credits uint32
	// Buffer is the delivery channel capacity; zero means 8192.
	Buffer int
	// DialTimeout bounds Connect's dial (and each supervised reconnect).
	// Zero means no timeout.
	DialTimeout time.Duration
	// AutoReconnect keeps the subscription attached through link
	// failures: Connect installs a supervisor that redials with capped
	// exponential backoff and re-subscribes from the current checkpoint
	// token, so deliveries resume exactly-once across the outage.
	AutoReconnect bool
	// OnConnChange, when set, is called on every link transition: ConnUp
	// after each successful (re)subscribe, ConnDown on involuntary loss.
	OnConnChange func(ConnState)
}

// Subscriber is a durable subscriber client. Create one with
// NewSubscriber, then Connect/Disconnect it any number of times; the
// checkpoint token carries across connections (and across process
// restarts when CTPath is set).
type Subscriber struct {
	opts SubscriberOptions

	mu        sync.Mutex
	ct        *vtime.CheckpointToken
	everConn  bool
	conn      overlay.Conn
	connected bool
	sup       *overlay.Supervisor // non-nil while AutoReconnect-connected
	consumed  uint32              // deliveries since last credit grant

	deliveries chan message.Delivery
	ackStop    chan struct{}
	ackDone    chan struct{}

	// Stats.
	events    int64
	silences  int64
	gaps      int64
	regressed int64 // protocol violations observed (must stay 0)
}

// NewSubscriber creates a subscriber handle (not yet connected), loading a
// persisted checkpoint token if one exists.
func NewSubscriber(opts SubscriberOptions) (*Subscriber, error) {
	if opts.Filter == "" {
		return nil, errors.New("client: Filter is required")
	}
	if opts.AckInterval == 0 {
		opts.AckInterval = 250 * time.Millisecond
	}
	if opts.Buffer == 0 {
		opts.Buffer = 8192
	}
	s := &Subscriber{
		opts:       opts,
		ct:         vtime.NewCheckpointToken(),
		deliveries: make(chan message.Delivery, opts.Buffer),
	}
	if opts.CTPath != "" {
		if buf, err := os.ReadFile(opts.CTPath); err == nil {
			ct, _, err := vtime.DecodeCheckpointToken(buf)
			if err != nil {
				return nil, fmt.Errorf("client: corrupt checkpoint file: %w", err)
			}
			s.ct = ct
			s.everConn = true
		}
	}
	return s, nil
}

// Connect attaches the subscriber to the SHB at addr, resuming from its
// checkpoint token when it has one. The initial dial is bounded by ctx
// (in addition to DialTimeout, whichever is tighter). With AutoReconnect
// the first attempt is synchronous (a dead broker fails here); after that
// the link is supervised — reconnects governed by DialTimeout alone — and
// re-subscribes itself until Disconnect.
func (s *Subscriber) Connect(ctx context.Context, t overlay.Transport, addr string) error {
	return s.connect(ctx, t, addr)
}

// ConnectContext is Connect.
//
// Deprecated: Connect is context-first now; call it directly.
func (s *Subscriber) ConnectContext(ctx context.Context, t overlay.Transport, addr string) error {
	return s.connect(ctx, t, addr)
}

func (s *Subscriber) connect(ctx context.Context, t overlay.Transport, addr string) error {
	if s.opts.AutoReconnect {
		s.mu.Lock()
		if s.sup != nil {
			s.mu.Unlock()
			return errors.New("client: already connected")
		}
		s.mu.Unlock()
		sup := overlay.NewSupervisor(overlay.SupervisorConfig{
			Name:        fmt.Sprintf("subscriber/%d", s.opts.ID),
			Transport:   t,
			Addr:        addr,
			DialTimeout: s.opts.DialTimeout,
			OnUp:        func(conn overlay.Conn) error { return s.attach(conn, true) },
			OnDown:      func(error) { s.handleDown() },
		})
		if err := sup.StartContext(ctx); err != nil {
			return err
		}
		s.mu.Lock()
		s.sup = sup
		s.mu.Unlock()
		return nil
	}
	conn, err := dialCtx(ctx, t, addr, s.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("subscriber dial: %w", err)
	}
	if err := s.attach(conn, false); err != nil {
		conn.Close() //nolint:errcheck,gosec // failed handshake
		return err
	}
	return nil
}

// attach performs the subscribe handshake on a fresh connection and, on
// success, makes it the current link. When managed, the supervisor owns
// the close hook and the connection's lifecycle; otherwise attach wires
// OnClose itself and the caller closes the conn on error.
func (s *Subscriber) attach(conn overlay.Conn, managed bool) error {
	if err := conn.Send(&message.Hello{Role: message.RoleSubscriber, Name: s.opts.Filter}); err != nil {
		return err
	}
	// Adopt the connection before any traffic flows, and snapshot the
	// checkpoint token in the same critical section: consume() only
	// accepts deliveries from the current connection, so from here on
	// leftovers of a dead link cannot advance the token past the
	// resumption point we present (they would make the server's catchup
	// look like duplicate delivery).
	s.mu.Lock()
	if s.connected {
		s.mu.Unlock()
		return errors.New("client: already connected")
	}
	s.conn = conn
	resume := s.everConn
	ct := s.ct.Clone()
	s.mu.Unlock()
	ackCh := make(chan *message.SubscribeAck, 1)
	if !managed {
		conn.OnClose(func(error) { s.onDisconnected(conn) })
	}
	conn.Start(func(m message.Message) { s.onMessage(conn, m, ackCh) })
	if err := conn.Send(&message.Subscribe{
		Subscriber: s.opts.ID,
		Filter:     s.opts.Filter,
		CT:         ct,
		Resume:     resume,
		Credits:    s.opts.Credits,
	}); err != nil {
		s.disown(conn)
		return err
	}
	select {
	case ack := <-ackCh:
		if ack.Err != "" {
			s.disown(conn)
			return fmt.Errorf("client: subscribe rejected: %s", ack.Err)
		}
		s.mu.Lock()
		if !resume {
			s.ct = ack.CT.Clone()
		}
		s.everConn = true
		s.conn = conn
		s.connected = true
		s.ackStop = make(chan struct{})
		s.ackDone = make(chan struct{})
		go s.ackLoop(conn, s.ackStop, s.ackDone)
		s.mu.Unlock()
		s.notify(ConnUp)
		return nil
	case <-time.After(10 * time.Second):
		s.disown(conn)
		return errors.New("client: subscribe timed out")
	}
}

func (s *Subscriber) notify(st ConnState) {
	if s.opts.OnConnChange != nil {
		s.opts.OnConnChange(st)
	}
}

// disown clears the adopted connection after a failed handshake.
func (s *Subscriber) disown(conn overlay.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == conn {
		s.conn = nil
	}
}

// onMessage handles SHB traffic on the subscriber link.
func (s *Subscriber) onMessage(conn overlay.Conn, m message.Message, ackCh chan *message.SubscribeAck) {
	switch v := m.(type) {
	case *message.SubscribeAck:
		select {
		case ackCh <- v:
		default:
		}
	case *message.Deliver:
		for _, d := range v.Deliveries {
			s.consume(conn, d)
		}
	}
}

// consume applies one delivery: validates the ordering contract, advances
// the checkpoint token, grants credits, and hands the delivery to the
// application. Deliveries from a connection that is no longer current are
// dropped — they are leftovers of a dead link whose content the new
// connection's catchup re-covers.
func (s *Subscriber) consume(conn overlay.Conn, d message.Delivery) {
	s.mu.Lock()
	if s.conn != conn {
		s.mu.Unlock()
		return
	}
	prev := s.ct.Get(d.Pubend)
	violation := false
	switch d.Kind {
	case message.DeliverEvent:
		if d.Timestamp <= prev {
			violation = true
		} else {
			s.events++
			s.ct.Set(d.Pubend, d.Timestamp)
		}
	case message.DeliverSilence:
		if d.Timestamp < prev {
			violation = true
		} else {
			s.silences++
			s.ct.Set(d.Pubend, d.Timestamp)
		}
	case message.DeliverGap:
		s.gaps++
		s.ct.Set(d.Pubend, d.Timestamp)
	}
	if violation {
		s.regressed++
		if debugViolations {
			fmt.Printf("VIOLATION sub=%v kind=%v pub=%v ts=%v prev=%v\n",
				s.opts.ID, d.Kind, d.Pubend, d.Timestamp, prev)
		}
		s.mu.Unlock()
		return
	}
	grantCredits := uint32(0)
	if s.opts.Credits > 0 && d.Kind == message.DeliverEvent {
		s.consumed++
		if s.consumed >= s.opts.Credits/2+1 {
			grantCredits = s.consumed
			s.consumed = 0
		}
	}
	s.mu.Unlock()
	if grantCredits > 0 {
		//nolint:errcheck,gosec // link death handled via OnClose
		conn.Send(&message.Credit{Subscriber: s.opts.ID, Credits: grantCredits})
	}
	if d.Kind == message.DeliverEvent || d.Kind == message.DeliverGap {
		s.deliveries <- d
	}
}

// ackLoop periodically acknowledges the checkpoint token.
func (s *Subscriber) ackLoop(conn overlay.Conn, stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(s.opts.AckInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.Ack() //nolint:errcheck,gosec // transient; retried next tick
		case <-stop:
			return
		}
		_ = conn
	}
}

// Ack immediately acknowledges the current checkpoint token to the SHB and
// persists it when CTPath is configured.
func (s *Subscriber) Ack() error {
	s.mu.Lock()
	conn := s.conn
	connected := s.connected
	ct := s.ct.Clone()
	s.mu.Unlock()
	if s.opts.CTPath != "" {
		if err := atomicWrite(s.opts.CTPath, ct.Encode(nil)); err != nil {
			return err
		}
	}
	if !connected {
		return nil
	}
	return conn.Send(&message.Ack{Subscriber: s.opts.ID, CT: ct})
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Deliveries is the application's consumption channel: event and gap
// deliveries in per-pubend timestamp order.
func (s *Subscriber) Deliveries() <-chan message.Delivery { return s.deliveries }

// ID reports the durable subscription's identity.
func (s *Subscriber) ID() vtime.SubscriberID { return s.opts.ID }

// CT returns a snapshot of the current checkpoint token.
func (s *Subscriber) CT() *vtime.CheckpointToken {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ct.Clone()
}

// Connected reports whether the subscriber currently has a live,
// subscribed link.
func (s *Subscriber) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connected
}

// Stats reports consumption counters: events, silences, gaps, and observed
// ordering violations (always zero when the system is correct).
func (s *Subscriber) Stats() (events, silences, gaps, violations int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events, s.silences, s.gaps, s.regressed
}

// Disconnect detaches from the SHB (orderly), acknowledging first. The
// subscription remains durable; Connect resumes it. An auto-reconnect
// subscriber's supervisor stops redialing.
func (s *Subscriber) Disconnect() error {
	s.Ack() //nolint:errcheck,gosec // best effort before detach
	s.mu.Lock()
	sup := s.sup
	s.sup = nil
	if !s.connected {
		s.mu.Unlock()
		if sup != nil {
			sup.Stop()
			s.detach()
		}
		return nil
	}
	conn := s.conn
	s.connected = false
	s.conn = nil
	stop, done := s.ackStop, s.ackDone
	s.mu.Unlock()
	close(stop)
	<-done
	conn.Send(&message.Detach{Subscriber: s.opts.ID}) //nolint:errcheck,gosec // about to close
	if sup != nil {
		sup.Stop() // closes the conn
		s.detach() // a racing reconnect may have re-attached; clean it up
		return nil
	}
	return conn.Close()
}

// Unsubscribe permanently ends the durable subscription at the SHB: its
// unconsumed backlog is released and any persisted checkpoint file is
// removed. The subscriber must be connected.
func (s *Subscriber) Unsubscribe() error {
	s.mu.Lock()
	if !s.connected {
		s.mu.Unlock()
		return errors.New("client: not connected")
	}
	sup := s.sup
	s.sup = nil
	conn := s.conn
	s.connected = false
	s.conn = nil
	stop, done := s.ackStop, s.ackDone
	s.mu.Unlock()
	close(stop)
	<-done
	if err := conn.Send(&message.Unsubscribe{Subscriber: s.opts.ID}); err != nil {
		if sup != nil {
			sup.Stop()
		} else {
			conn.Close() //nolint:errcheck,gosec // already failing
		}
		return err
	}
	if s.opts.CTPath != "" {
		os.Remove(s.opts.CTPath) //nolint:errcheck,gosec // best-effort cleanup
	}
	s.mu.Lock()
	s.everConn = false
	s.ct = vtime.NewCheckpointToken()
	s.mu.Unlock()
	if sup != nil {
		sup.Stop()
		s.detach()
		return nil
	}
	return conn.Close()
}

// detach tears down the connected state (ack loop, current conn),
// reporting whether it transitioned from connected. Safe when already
// detached.
func (s *Subscriber) detach() bool {
	s.mu.Lock()
	if !s.connected {
		s.mu.Unlock()
		return false
	}
	s.connected = false
	s.conn = nil
	stop, done := s.ackStop, s.ackDone
	s.mu.Unlock()
	close(stop)
	<-done
	return true
}

// handleDown is the supervisor's OnDown: the managed link died.
func (s *Subscriber) handleDown() {
	if s.detach() {
		s.notify(ConnDown)
	}
}

// onDisconnected handles an involuntary connection loss on an unmanaged
// link.
func (s *Subscriber) onDisconnected(conn overlay.Conn) {
	s.mu.Lock()
	stale := s.conn != conn
	s.mu.Unlock()
	if stale {
		return
	}
	if s.detach() {
		s.notify(ConnDown)
	}
}
