package client

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// fakeBroker is a scripted endpoint implementing just enough of the broker
// protocol to exercise the client library's edge cases in isolation (the
// full protocol is covered by the broker integration tests).
type fakeBroker struct {
	mu       sync.Mutex
	conns    []overlay.Conn
	received []message.Message
	// rejectSubscribe, when set, denies subscriptions with this error.
	rejectSubscribe string
	// rejectPublish, when set, answers publishes with a zero timestamp.
	rejectPublish bool
	// silent, when set, never answers Subscribe (for timeout tests).
	silent bool
}

func startFakeBroker(t *testing.T, netw *overlay.InprocNetwork, addr string) *fakeBroker {
	t.Helper()
	fb := &fakeBroker{}
	_, err := netw.Listen(addr, func(conn overlay.Conn) {
		fb.mu.Lock()
		fb.conns = append(fb.conns, conn)
		fb.mu.Unlock()
		conn.Start(func(m message.Message) { fb.onMessage(conn, m) })
	})
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

func (fb *fakeBroker) onMessage(conn overlay.Conn, m message.Message) {
	fb.mu.Lock()
	fb.received = append(fb.received, m)
	reject := fb.rejectSubscribe
	rejectPub := fb.rejectPublish
	silent := fb.silent
	fb.mu.Unlock()
	if silent {
		return
	}
	switch v := m.(type) {
	case *message.Subscribe:
		ack := &message.SubscribeAck{Subscriber: v.Subscriber, CT: vtime.NewCheckpointToken()}
		if reject != "" {
			ack.Err = reject
		} else if !v.Resume {
			ack.CT.Set(1, 100)
		}
		conn.Send(ack) //nolint:errcheck,gosec // test
	case *message.Publish:
		ack := &message.PublishAck{Token: v.Token}
		if !rejectPub {
			ack.Pubend = 1
			ack.Timestamp = 42
		}
		conn.Send(ack) //nolint:errcheck,gosec // test
	}
}

// deliver pushes deliveries to the most recent connection.
func (fb *fakeBroker) deliver(sub vtime.SubscriberID, ds ...message.Delivery) {
	fb.mu.Lock()
	conn := fb.conns[len(fb.conns)-1]
	fb.mu.Unlock()
	conn.Send(&message.Deliver{Subscriber: sub, Deliveries: ds}) //nolint:errcheck,gosec // test
}

func event(ts vtime.Timestamp) message.Delivery {
	return message.Delivery{
		Kind: message.DeliverEvent, Pubend: 1, Timestamp: ts,
		Event: &message.Event{
			Pubend: 1, Timestamp: ts,
			Attrs: filter.Attributes{"x": filter.Int(int64(ts))},
		},
	}
}

func TestSubscriberOptionsValidation(t *testing.T) {
	if _, err := NewSubscriber(SubscriberOptions{ID: 1}); err == nil {
		t.Error("missing filter accepted")
	}
}

func TestSubscriberAdoptsInitialCT(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startFakeBroker(t, netw, "b")
	sub, err := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	if got := sub.CT().Get(1); got != 100 {
		t.Errorf("initial CT = %d, want 100 from SubscribeAck", got)
	}
	if sub.ID() != 1 {
		t.Errorf("ID = %v", sub.ID())
	}
	// Double connect fails.
	if err := sub.Connect(context.Background(), netw, "b"); err == nil {
		t.Error("double connect accepted")
	}
}

func TestSubscriberRejectedSubscribe(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fb := startFakeBroker(t, netw, "b")
	fb.rejectSubscribe = "no room"
	sub, _ := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true"}) //nolint:errcheck
	if err := sub.Connect(context.Background(), netw, "b"); err == nil {
		t.Fatal("rejected subscribe reported success")
	}
	// The handle remains usable: clear the rejection and reconnect.
	fb.mu.Lock()
	fb.rejectSubscribe = ""
	fb.mu.Unlock()
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatalf("reconnect after rejection: %v", err)
	}
	sub.Disconnect() //nolint:errcheck
}

func TestSubscriberOrderingContract(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fb := startFakeBroker(t, netw, "b")
	sub, _ := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true"}) //nolint:errcheck
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	fb.deliver(1, event(200), event(300))
	fb.deliver(1, event(250)) // regression: must be flagged and dropped
	fb.deliver(1, message.Delivery{Kind: message.DeliverSilence, Pubend: 1, Timestamp: 400})
	fb.deliver(1, message.Delivery{Kind: message.DeliverGap, Pubend: 1, Timestamp: 500})

	var got []vtime.Timestamp
	timeout := time.After(5 * time.Second)
	for len(got) < 3 { // 2 events + 1 gap reach the application
		select {
		case d := <-sub.Deliveries():
			got = append(got, d.Timestamp)
		case <-timeout:
			t.Fatalf("timed out with %v", got)
		}
	}
	if got[0] != 200 || got[1] != 300 || got[2] != 500 {
		t.Errorf("application saw %v", got)
	}
	events, silences, gaps, violations := sub.Stats()
	if events != 2 || silences != 1 || gaps != 1 || violations != 1 {
		t.Errorf("stats: events=%d silences=%d gaps=%d violations=%d",
			events, silences, gaps, violations)
	}
	if ct := sub.CT().Get(1); ct != 500 {
		t.Errorf("CT = %d, want 500", ct)
	}
}

func TestSubscriberCTPersistence(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fb := startFakeBroker(t, netw, "b")
	ctPath := filepath.Join(t.TempDir(), "ct")
	sub, err := NewSubscriber(SubscriberOptions{
		ID: 1, Filter: "true", CTPath: ctPath, AckInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	fb.deliver(1, event(777))
	<-sub.Deliveries()
	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: the token is reloaded and Resume is presented.
	sub2, err := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true", CTPath: ctPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub2.CT().Get(1); got != 777 {
		t.Fatalf("persisted CT = %d, want 777", got)
	}
	if err := sub2.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	defer sub2.Disconnect() //nolint:errcheck
	fb.mu.Lock()
	var lastSub *message.Subscribe
	for _, m := range fb.received {
		if s, ok := m.(*message.Subscribe); ok {
			lastSub = s
		}
	}
	fb.mu.Unlock()
	if lastSub == nil || !lastSub.Resume || lastSub.CT.Get(1) != 777 {
		t.Errorf("resume subscribe = %+v", lastSub)
	}
}

func TestSubscriberCorruptCTFile(t *testing.T) {
	ctPath := filepath.Join(t.TempDir(), "ct")
	if err := os.WriteFile(ctPath, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true", CTPath: ctPath}); err == nil {
		t.Error("corrupt CT file accepted")
	}
}

func TestSubscriberStaleConnectionIgnored(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fb := startFakeBroker(t, netw, "b")
	sub, _ := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true"}) //nolint:errcheck
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	fb.mu.Lock()
	oldConn := fb.conns[len(fb.conns)-1]
	fb.mu.Unlock()
	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck
	// A leftover delivery on the old connection must not advance the CT
	// or reach the application.
	oldConn.Send(&message.Deliver{ //nolint:errcheck,gosec // test
		Subscriber: 1, Deliveries: []message.Delivery{event(9999)},
	})
	fb.deliver(1, event(150)) // current connection (initial CT is 100)
	select {
	case d := <-sub.Deliveries():
		if d.Timestamp != 150 {
			t.Fatalf("application saw stale delivery @%d", d.Timestamp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("current-connection delivery lost")
	}
	if ct := sub.CT().Get(1); ct != 150 {
		t.Errorf("CT = %d; stale delivery leaked", ct)
	}
}

func TestPublisherRoundTrip(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startFakeBroker(t, netw, "b")
	pub, err := NewPublisher(context.Background(), netw, "b", "test")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close() //nolint:errcheck
	pe, ts, err := pub.Publish(message.Event{Attrs: filter.Attributes{"a": filter.Int(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if pe != 1 || ts != 42 {
		t.Errorf("publish ack = %v/%v", pe, ts)
	}
}

func TestPublisherRejected(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fb := startFakeBroker(t, netw, "b")
	fb.rejectPublish = true
	pub, err := NewPublisher(context.Background(), netw, "b", "test")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close() //nolint:errcheck
	if _, _, err := pub.Publish(message.Event{}); err == nil {
		t.Error("rejected publish reported success")
	}
	if _, err := pub.PublishTo(3, message.Event{}); err == nil {
		t.Error("rejected PublishTo reported success")
	}
}

func TestPublisherConnectionLossUnblocksWaiters(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	fb := startFakeBroker(t, netw, "b")
	fb.mu.Lock()
	fb.silent = true
	fb.mu.Unlock()
	pub, err := NewPublisher(context.Background(), netw, "b", "test")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, _, err := pub.Publish(message.Event{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fb.mu.Lock()
	conn := fb.conns[len(fb.conns)-1]
	fb.mu.Unlock()
	conn.Close() //nolint:errcheck
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("publish succeeded after connection loss")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked forever after connection loss")
	}
	if err := pub.Close(); err != nil {
		t.Errorf("close after loss: %v", err)
	}
	if _, _, err := pub.Publish(message.Event{}); err == nil {
		t.Error("publish on closed publisher succeeded")
	}
}

func TestSubscriberDisconnectIdempotent(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	startFakeBroker(t, netw, "b")
	sub, _ := NewSubscriber(SubscriberOptions{ID: 1, Filter: "true"}) //nolint:errcheck
	if err := sub.Disconnect(); err != nil {                          // never connected
		t.Errorf("disconnect before connect: %v", err)
	}
	if err := sub.Connect(context.Background(), netw, "b"); err != nil {
		t.Fatal(err)
	}
	if err := sub.Disconnect(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Disconnect(); err != nil {
		t.Errorf("double disconnect: %v", err)
	}
}
