// Package vtime defines virtual time for pubend event streams and the
// checkpoint tokens (vector clocks) durable subscribers use to resume
// delivery after a disconnection.
//
// Each pubend maintains a persistent, totally ordered stream of "time
// ticks". Ticks are fine-grained enough that no two events from the same
// pubend ever share a tick (the paper, section 2). A Timestamp counts
// microseconds of virtual time; the paper's figures report rates in "tick
// milliseconds", which TickMillis converts to.
package vtime

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Timestamp is a point in a pubend's virtual time stream, in microseconds.
// Timestamps are assigned by the pubend and strictly increase per event.
type Timestamp int64

const (
	// ZeroTS is the origin of every pubend stream. No event is ever
	// assigned ZeroTS; it is a valid checkpoint meaning "from the
	// beginning".
	ZeroTS Timestamp = 0

	// MaxTS is the largest representable timestamp, used as an open
	// upper bound for range operations.
	MaxTS Timestamp = 1<<63 - 1

	// TicksPerMilli is the number of Timestamp units per tick
	// millisecond. The paper's plots (figures 6 and 7) measure stream
	// progress in tick milliseconds.
	TicksPerMilli = 1000
)

// TickMillis reports t in whole tick milliseconds, the unit used by the
// paper's latestDelivered/released rate plots.
func (t Timestamp) TickMillis() int64 { return int64(t) / TicksPerMilli }

// Before reports whether t is strictly earlier than u.
func (t Timestamp) Before(u Timestamp) bool { return t < u }

// String formats the timestamp as <millis>.<micros>ms.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%03dms", int64(t)/TicksPerMilli, int64(t)%TicksPerMilli)
}

// MinTS returns the smaller of a and b.
func MinTS(a, b Timestamp) Timestamp {
	if a < b {
		return a
	}
	return b
}

// MaxOfTS returns the larger of a and b.
func MaxOfTS(a, b Timestamp) Timestamp {
	if a > b {
		return a
	}
	return b
}

// PubendID identifies a publishing endpoint. IDs are assigned by cluster
// configuration and are unique system-wide.
type PubendID uint32

// String implements fmt.Stringer.
func (p PubendID) String() string { return fmt.Sprintf("pubend-%d", uint32(p)) }

// SubscriberID identifies a durable subscription, unique system-wide.
type SubscriberID uint32

// String implements fmt.Stringer.
func (s SubscriberID) String() string { return fmt.Sprintf("sub-%d", uint32(s)) }

// CheckpointToken is a vector clock mapping each pubend to the latest
// timestamp the subscriber has consumed (and acknowledged) from that
// pubend's stream. It is the durable subscriber's resumption point: on
// reconnect, delivery resumes strictly after CT[p] for every pubend p.
//
// The zero value is an empty token; Get on a missing pubend returns ZeroTS,
// meaning "from the beginning of that pubend's stream".
type CheckpointToken struct {
	m map[PubendID]Timestamp
}

// NewCheckpointToken returns an empty checkpoint token.
func NewCheckpointToken() *CheckpointToken {
	return &CheckpointToken{m: make(map[PubendID]Timestamp)}
}

// Get returns the checkpoint for pubend p, or ZeroTS if none is recorded.
func (ct *CheckpointToken) Get(p PubendID) Timestamp {
	if ct == nil || ct.m == nil {
		return ZeroTS
	}
	return ct.m[p]
}

// Set records ts as the checkpoint for pubend p. Set never moves a
// checkpoint backwards; callers that need to rewind (for example a
// subscriber that lost its own persistent CT) must build a fresh token.
func (ct *CheckpointToken) Set(p PubendID, ts Timestamp) {
	if ct.m == nil {
		ct.m = make(map[PubendID]Timestamp)
	}
	if ts > ct.m[p] {
		ct.m[p] = ts
	}
}

// ForceSet records ts for pubend p even if it rewinds the token. A
// subscriber reconnecting with an older CT may receive gap messages in lieu
// of events it already acknowledged (paper, section 2).
func (ct *CheckpointToken) ForceSet(p PubendID, ts Timestamp) {
	if ct.m == nil {
		ct.m = make(map[PubendID]Timestamp)
	}
	ct.m[p] = ts
}

// Pubends returns the pubend IDs present in the token, sorted ascending.
func (ct *CheckpointToken) Pubends() []PubendID {
	if ct == nil {
		return nil
	}
	out := make([]PubendID, 0, len(ct.m))
	for p := range ct.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len reports the number of pubend entries.
func (ct *CheckpointToken) Len() int {
	if ct == nil {
		return 0
	}
	return len(ct.m)
}

// Clone returns a deep copy of the token.
func (ct *CheckpointToken) Clone() *CheckpointToken {
	out := &CheckpointToken{m: make(map[PubendID]Timestamp, ct.Len())}
	if ct != nil {
		for p, ts := range ct.m {
			out.m[p] = ts
		}
	}
	return out
}

// Merge folds other into ct, taking the pointwise maximum. Merging is how a
// subscriber combines the checkpoint state of redundant delivery paths.
func (ct *CheckpointToken) Merge(other *CheckpointToken) {
	if other == nil {
		return
	}
	for p, ts := range other.m {
		ct.Set(p, ts)
	}
}

// CoveredBy reports whether every entry of ct is <= the corresponding entry
// in other. An empty token is covered by everything.
func (ct *CheckpointToken) CoveredBy(other *CheckpointToken) bool {
	if ct == nil {
		return true
	}
	for p, ts := range ct.m {
		if ts > other.Get(p) {
			return false
		}
	}
	return true
}

// Equal reports whether the two tokens record identical checkpoints,
// treating missing entries as ZeroTS.
func (ct *CheckpointToken) Equal(other *CheckpointToken) bool {
	return ct.CoveredBy(other) && other.CoveredBy(ct)
}

// String renders the token as {pubend-1:ts, ...} with pubends sorted.
func (ct *CheckpointToken) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range ct.Pubends() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", p, ct.Get(p))
	}
	b.WriteByte('}')
	return b.String()
}

// Encode appends a compact binary form of the token to buf and returns the
// extended slice. Layout: u32 count, then (u32 pubend, i64 ts) pairs sorted
// by pubend so encoding is deterministic.
func (ct *CheckpointToken) Encode(buf []byte) []byte {
	ps := ct.Pubends()
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ps)))
	for _, p := range ps {
		buf = binary.BigEndian.AppendUint32(buf, uint32(p))
		buf = binary.BigEndian.AppendUint64(buf, uint64(ct.Get(p)))
	}
	return buf
}

// DecodeCheckpointToken parses a token encoded by Encode and returns the
// token and the number of bytes consumed.
func DecodeCheckpointToken(buf []byte) (*CheckpointToken, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("checkpoint token: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint32(buf))
	need := 4 + n*12
	if len(buf) < need {
		return nil, 0, fmt.Errorf("checkpoint token: need %d bytes, have %d", need, len(buf))
	}
	ct := NewCheckpointToken()
	off := 4
	for i := 0; i < n; i++ {
		p := PubendID(binary.BigEndian.Uint32(buf[off:]))
		ts := Timestamp(binary.BigEndian.Uint64(buf[off+4:]))
		ct.m[p] = ts
		off += 12
	}
	return ct, off, nil
}
