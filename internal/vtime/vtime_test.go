package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampTickMillis(t *testing.T) {
	tests := []struct {
		name string
		ts   Timestamp
		want int64
	}{
		{"zero", ZeroTS, 0},
		{"sub-milli", Timestamp(999), 0},
		{"exact", Timestamp(5000), 5},
		{"mixed", Timestamp(5750), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.ts.TickMillis(); got != tt.want {
				t.Errorf("TickMillis() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestMinMaxTS(t *testing.T) {
	if got := MinTS(3, 7); got != 3 {
		t.Errorf("MinTS(3,7) = %d", got)
	}
	if got := MaxOfTS(3, 7); got != 7 {
		t.Errorf("MaxOfTS(3,7) = %d", got)
	}
}

func TestCheckpointTokenSetGet(t *testing.T) {
	ct := NewCheckpointToken()
	if got := ct.Get(1); got != ZeroTS {
		t.Fatalf("empty token Get = %v, want ZeroTS", got)
	}
	ct.Set(1, 100)
	ct.Set(2, 50)
	if got := ct.Get(1); got != 100 {
		t.Errorf("Get(1) = %v", got)
	}
	// Set never rewinds.
	ct.Set(1, 60)
	if got := ct.Get(1); got != 100 {
		t.Errorf("Set rewound checkpoint: Get(1) = %v", got)
	}
	// ForceSet does.
	ct.ForceSet(1, 60)
	if got := ct.Get(1); got != 60 {
		t.Errorf("ForceSet(1,60): Get(1) = %v", got)
	}
}

func TestCheckpointTokenZeroValueGet(t *testing.T) {
	var ct CheckpointToken
	if got := ct.Get(9); got != ZeroTS {
		t.Fatalf("zero-value Get = %v", got)
	}
	ct.Set(9, 5)
	if got := ct.Get(9); got != 5 {
		t.Fatalf("zero-value Set/Get = %v", got)
	}
}

func TestCheckpointTokenMerge(t *testing.T) {
	a := NewCheckpointToken()
	a.Set(1, 10)
	a.Set(2, 20)
	b := NewCheckpointToken()
	b.Set(2, 5)
	b.Set(3, 30)
	a.Merge(b)
	want := map[PubendID]Timestamp{1: 10, 2: 20, 3: 30}
	for p, ts := range want {
		if got := a.Get(p); got != ts {
			t.Errorf("after merge Get(%v) = %v, want %v", p, got, ts)
		}
	}
	a.Merge(nil) // must not panic
}

func TestCheckpointTokenCoveredBy(t *testing.T) {
	a := NewCheckpointToken()
	a.Set(1, 10)
	b := NewCheckpointToken()
	b.Set(1, 10)
	b.Set(2, 1)
	if !a.CoveredBy(b) {
		t.Error("a should be covered by b")
	}
	if b.CoveredBy(a) {
		t.Error("b should not be covered by a")
	}
	var nilTok *CheckpointToken
	if !nilTok.CoveredBy(a) {
		t.Error("nil token must be covered by everything")
	}
}

func TestCheckpointTokenClone(t *testing.T) {
	a := NewCheckpointToken()
	a.Set(1, 10)
	c := a.Clone()
	c.Set(1, 99)
	if got := a.Get(1); got != 10 {
		t.Errorf("clone aliased original: Get(1) = %v", got)
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone must equal original")
	}
}

func TestCheckpointTokenEncodeDecode(t *testing.T) {
	a := NewCheckpointToken()
	a.Set(3, 300)
	a.Set(1, 100)
	a.Set(2, 200)
	buf := a.Encode(nil)
	got, n, err := DecodeCheckpointToken(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("decode consumed %d of %d bytes", n, len(buf))
	}
	if !got.Equal(a) {
		t.Errorf("round trip mismatch: got %v want %v", got, a)
	}
}

func TestCheckpointTokenDecodeErrors(t *testing.T) {
	if _, _, err := DecodeCheckpointToken(nil); err == nil {
		t.Error("decoding empty buffer should fail")
	}
	// Claim 5 entries but provide none.
	buf := []byte{0, 0, 0, 5}
	if _, _, err := DecodeCheckpointToken(buf); err == nil {
		t.Error("decoding truncated buffer should fail")
	}
}

func TestCheckpointTokenEncodeDeterministic(t *testing.T) {
	a := NewCheckpointToken()
	for i := PubendID(0); i < 16; i++ {
		a.Set(i, Timestamp(i)*7)
	}
	first := string(a.Encode(nil))
	for i := 0; i < 10; i++ {
		if got := string(a.Encode(nil)); got != first {
			t.Fatal("encoding is not deterministic")
		}
	}
}

// Property: encode/decode round trips for arbitrary tokens.
func TestCheckpointTokenRoundTripQuick(t *testing.T) {
	f := func(entries map[uint32]int64) bool {
		ct := NewCheckpointToken()
		for p, ts := range entries {
			if ts < 0 {
				ts = -ts
			}
			ct.ForceSet(PubendID(p), Timestamp(ts))
		}
		got, _, err := DecodeCheckpointToken(ct.Encode(nil))
		return err == nil && got.Equal(ct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merge is commutative and idempotent with respect to Equal.
func TestCheckpointTokenMergeQuick(t *testing.T) {
	build := func(entries map[uint32]int64) *CheckpointToken {
		ct := NewCheckpointToken()
		for p, ts := range entries {
			if ts < 0 {
				ts = -ts
			}
			ct.ForceSet(PubendID(p), Timestamp(ts))
		}
		return ct
	}
	f := func(ea, eb map[uint32]int64) bool {
		a, b := build(ea), build(eb)
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.Merge(b)
		return again.Equal(ab) && a.CoveredBy(ab) && b.CoveredBy(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockNextStrictlyIncreasing(t *testing.T) {
	c := NewClock()
	prev := ZeroTS - 1
	for i := 0; i < 10000; i++ {
		ts := c.Next()
		if ts <= prev {
			t.Fatalf("Next not strictly increasing: %v after %v", ts, prev)
		}
		prev = ts
	}
}

func TestClockNowMonotone(t *testing.T) {
	c := NewClock()
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now < prev {
			t.Fatalf("Now went backwards: %v after %v", now, prev)
		}
		prev = now
	}
}

func TestClockRestore(t *testing.T) {
	epoch := time.Now()
	fixed := epoch // frozen time source
	c := NewManualClock(epoch, func() time.Time { return fixed })
	c.Restore(500)
	if ts := c.Next(); ts != 501 {
		t.Errorf("Next after Restore(500) = %v, want 501", ts)
	}
	c.Restore(100) // must not rewind
	if ts := c.Next(); ts != 502 {
		t.Errorf("Next after backwards Restore = %v, want 502", ts)
	}
}

func TestClockTracksRealTime(t *testing.T) {
	epoch := time.Now()
	cur := epoch
	c := NewManualClock(epoch, func() time.Time { return cur })
	cur = epoch.Add(3 * time.Millisecond)
	if now := c.Now(); now != 3000 {
		t.Errorf("Now after +3ms = %v, want 3000", now)
	}
	if ts := c.Next(); ts != 3000 {
		t.Errorf("Next = %v, want 3000", ts)
	}
	if ts := c.Next(); ts != 3001 {
		t.Errorf("second Next at same instant = %v, want 3001", ts)
	}
}

func TestClockConcurrentNextUnique(t *testing.T) {
	c := NewClock()
	const workers, per = 8, 2000
	out := make(chan Timestamp, workers*per)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				out <- c.Next()
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	close(out)
	seen := make(map[Timestamp]bool, workers*per)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate timestamp %v issued concurrently", ts)
		}
		seen[ts] = true
	}
}
