package vtime

import (
	"sync"
	"time"
)

// Clock maps wall-clock time onto a pubend's virtual time stream and hands
// out strictly increasing timestamps for published events.
//
// Virtual time advances at one microsecond per real microsecond (so one
// tick millisecond per real millisecond, matching the paper's plots where
// latestDelivered advances at ~1000 tick ms per second of real time). Now
// may be called concurrently; Next serializes so that no two events receive
// the same tick.
type Clock struct {
	mu    sync.Mutex
	epoch time.Time
	last  Timestamp
	now   func() time.Time
}

// NewClock returns a clock whose virtual time starts at ZeroTS "now".
func NewClock() *Clock {
	return NewClockAt(time.Now())
}

// NewClockAt returns a clock anchored at the given wall-clock epoch.
func NewClockAt(epoch time.Time) *Clock {
	return &Clock{epoch: epoch, now: time.Now}
}

// NewManualClock returns a clock driven by the supplied time source instead
// of the system clock; tests use it to make virtual time deterministic.
func NewManualClock(epoch time.Time, now func() time.Time) *Clock {
	return &Clock{epoch: epoch, now: now}
}

// Now reports the current virtual time. It is monotone but not unique: two
// calls may observe the same value.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.observe()
}

// Next returns a timestamp strictly greater than every timestamp previously
// returned by Next, and at least the current virtual time. Pubends call
// Next once per published event.
func (c *Clock) Next() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.observe()
	if ts <= c.last {
		ts = c.last + 1
	}
	c.last = ts
	return ts
}

// Restore advances the clock's floor so that the next timestamp issued is
// strictly greater than ts. Pubends call Restore during crash recovery with
// the last timestamp found in their persistent event log.
func (c *Clock) Restore(ts Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts > c.last {
		c.last = ts
	}
}

func (c *Clock) observe() Timestamp {
	ts := Timestamp(c.now().Sub(c.epoch) / time.Microsecond)
	if ts < c.last {
		ts = c.last
	}
	return ts
}
