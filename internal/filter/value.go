// Package filter implements the content-based subscription language and
// matching engine the pub/sub substrate is built on (the paper builds on
// the Gryphon matching work of Aguilera et al.; this is an independent
// implementation with the same role).
//
// Events carry typed attributes; a subscription is a conjunction of
// predicates over those attributes. The Matcher indexes many subscriptions
// and, given an event, returns the IDs of all matching subscriptions.
package filter

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the dynamic type of a Value.
type ValueKind uint8

// Supported attribute types.
const (
	KindString ValueKind = iota + 1
	KindInt
	KindFloat
	KindBool
)

// String implements fmt.Stringer.
func (k ValueKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a typed attribute value. The zero Value is invalid.
type Value struct {
	kind ValueKind
	str  string
	num  int64 // int value, or bool as 0/1
	f    float64
}

// String returns a Value holding a string.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int returns a Value holding an int64.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float returns a Value holding a float64.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a Value holding a bool.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.num = 1
	}
	return v
}

// Kind reports the value's dynamic type. Zero for the invalid zero Value.
func (v Value) Kind() ValueKind { return v.kind }

// Valid reports whether the value holds one of the supported types.
func (v Value) Valid() bool { return v.kind >= KindString && v.kind <= KindBool }

// Str returns the string payload (empty unless KindString).
func (v Value) Str() string { return v.str }

// IntVal returns the integer payload (zero unless KindInt).
func (v Value) IntVal() int64 { return v.num }

// FloatVal returns the float payload (zero unless KindFloat).
func (v Value) FloatVal() float64 { return v.f }

// BoolVal returns the bool payload (false unless KindBool).
func (v Value) BoolVal() bool { return v.kind == KindBool && v.num == 1 }

// Equal reports whether two values are the same type and payload, with
// int/float compared numerically across kinds.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindString:
			return v.str == o.str
		case KindInt, KindBool:
			return v.num == o.num
		case KindFloat:
			return v.f == o.f
		}
		return false
	}
	// Numeric cross-kind comparison.
	if v.isNumeric() && o.isNumeric() {
		return v.asFloat() == o.asFloat()
	}
	return false
}

// Compare returns -1, 0, or +1 ordering v against o, and ok=false when the
// two values are not comparable (different non-numeric kinds, or bools).
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindString && o.kind == KindString {
		switch {
		case v.str < o.str:
			return -1, true
		case v.str > o.str:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.isNumeric() && o.isNumeric() {
		a, b := v.asFloat(), o.asFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

func (v Value) asFloat() float64 {
	if v.kind == KindFloat {
		return v.f
	}
	return float64(v.num)
}

// Key returns a string usable as an equality-index key: equal values (per
// Equal) of the same kind family map to the same key.
func (v Value) Key() string {
	switch v.kind {
	case KindString:
		return "s:" + v.str
	case KindInt:
		return "n:" + strconv.FormatFloat(float64(v.num), 'g', -1, 64)
	case KindFloat:
		return "n:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.num == 1 {
			return "b:1"
		}
		return "b:0"
	default:
		return "?"
	}
}

// String implements fmt.Stringer, rendering the value as it would appear in
// subscription source text.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.str)
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.num == 1 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Attributes is the typed attribute map carried by every published event.
type Attributes map[string]Value

// Clone returns a deep copy of the attribute map.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
