package filter

import (
	"fmt"
	"strings"
)

// Op is a predicate operator.
type Op uint8

// Predicate operators.
const (
	OpEq     Op = iota + 1 // =
	OpNe                   // !=
	OpLt                   // <
	OpLe                   // <=
	OpGt                   // >
	OpGe                   // >=
	OpPrefix               // string prefix match
	OpExists               // attribute present (any value)
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "prefix"
	case OpExists:
		return "exists"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Predicate is one attribute test. For OpExists the Val field is unused.
type Predicate struct {
	Attr string
	Op   Op
	Val  Value
}

// Eval reports whether the predicate holds over the given attributes.
// A missing attribute fails every predicate except a negated one does NOT
// succeed either: absence means "no information", so only OpExists can
// observe it (and fails).
func (p Predicate) Eval(attrs Attributes) bool {
	v, ok := attrs[p.Attr]
	if !ok {
		return false
	}
	switch p.Op {
	case OpExists:
		return true
	case OpEq:
		return v.Equal(p.Val)
	case OpNe:
		return !v.Equal(p.Val)
	case OpPrefix:
		return v.Kind() == KindString && p.Val.Kind() == KindString &&
			strings.HasPrefix(v.Str(), p.Val.Str())
	}
	cmp, comparable := v.Compare(p.Val)
	if !comparable {
		return false
	}
	switch p.Op {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// String renders the predicate in subscription source syntax.
func (p Predicate) String() string {
	switch p.Op {
	case OpExists:
		return fmt.Sprintf("exists(%s)", p.Attr)
	case OpPrefix:
		return fmt.Sprintf("prefix(%s, %s)", p.Attr, p.Val)
	default:
		return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Val)
	}
}

// Subscription is a conjunction of predicates. The empty subscription
// (no predicates) matches every event.
type Subscription struct {
	preds []Predicate
}

// NewSubscription builds a subscription from predicates. The slice is
// copied.
func NewSubscription(preds ...Predicate) *Subscription {
	cp := make([]Predicate, len(preds))
	copy(cp, preds)
	return &Subscription{preds: cp}
}

// MatchAll returns the subscription that matches every event.
func MatchAll() *Subscription { return &Subscription{} }

// Predicates returns a copy of the predicate list.
func (s *Subscription) Predicates() []Predicate {
	out := make([]Predicate, len(s.preds))
	copy(out, s.preds)
	return out
}

// Matches reports whether every predicate holds over attrs.
func (s *Subscription) Matches(attrs Attributes) bool {
	for _, p := range s.preds {
		if !p.Eval(attrs) {
			return false
		}
	}
	return true
}

// String renders the subscription in source syntax.
func (s *Subscription) String() string {
	if len(s.preds) == 0 {
		return "true"
	}
	parts := make([]string, len(s.preds))
	for i, p := range s.preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}
