package filter

import (
	"strconv"
	"testing"

	"repro/internal/vtime"
)

// BenchmarkMatcherMatch measures matching one event against many indexed
// subscriptions (the per-event cost at the constream).
func BenchmarkMatcherMatch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(strconv.Itoa(n)+"subs", func(b *testing.B) {
			m := NewMatcher()
			for i := 0; i < n; i++ {
				m.Add(vtime.SubscriberID(i),
					MustParse(`group = "g`+strconv.Itoa(i%4)+`" and price > `+strconv.Itoa(i%50)))
			}
			ev := Attributes{"group": String("g1"), "price": Int(30)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := m.Match(ev); len(got) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkParse measures subscription compilation.
func BenchmarkParse(b *testing.B) {
	src := `group = "g1" and price > 10.5 and prefix(symbol, "AC") and exists(account)`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
