package filter

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// Engine is a pluggable matching strategy behind Matcher. The facade owns
// locking, the authoritative id→subscription map, replace-on-Add semantics
// and deterministic output ordering; an Engine only maintains its index
// structures and answers match queries.
//
// Engines are NOT required to be safe for concurrent use — the facade
// serializes writes and allows concurrent reads, so MatchAppend and
// MatchesAny may run concurrently with each other but never with
// Add/Remove. Engines needing per-query scratch must make the read paths
// concurrency-safe themselves (e.g. a sync.Pool of scratch buffers).
type Engine interface {
	// Add indexes sub under id. The facade guarantees id is not
	// currently indexed (it removes first on replacement).
	Add(id vtime.SubscriberID, sub *Subscription)
	// Remove unindexes id. sub is the subscription the facade added it
	// with, so engines need not store their own copy.
	Remove(id vtime.SubscriberID, sub *Subscription)
	// MatchAppend appends the ids of all matching subscriptions to dst
	// (in any order) and reports how many candidate subscriptions were
	// fully evaluated (the selectivity denominator).
	MatchAppend(dst []vtime.SubscriberID, attrs Attributes) ([]vtime.SubscriberID, int)
	// MatchesAny reports whether at least one subscription matches, and
	// how many candidates were evaluated before deciding.
	MatchesAny(attrs Attributes) (bool, int)
}

// Matcher indexes many subscriptions and answers "which subscriptions match
// this event" queries. It is the per-broker matching engine: SHBs run one
// per hosted subscriber set, intermediate brokers run one per downstream
// link for D→S filtering.
//
// The matching strategy is pluggable (see Engine). NewMatcher uses the
// brute-force linear engine — simple, allocation-free, and the test oracle
// for indexed engines; internal/matchidx provides the counting-based
// attribute-indexed engine used by the brokers at scale.
//
// Matcher is safe for concurrent use.
type Matcher struct {
	mu   sync.RWMutex
	subs map[vtime.SubscriberID]*Subscription
	eng  Engine
	ins  *siteInstruments // nil = uninstrumented
}

// NewMatcher returns an empty matcher on the linear brute-force engine.
func NewMatcher() *Matcher { return NewMatcherWith(NewLinearEngine()) }

// NewMatcherWith returns an empty matcher delegating to eng.
func NewMatcherWith(eng Engine) *Matcher {
	return &Matcher{
		subs: make(map[vtime.SubscriberID]*Subscription),
		eng:  eng,
	}
}

// InstrumentSite enables match telemetry on this matcher, labeling the
// process-wide candidate/hit counters and latency histogram with the
// matcher's site (e.g. "shb" for the engine matcher, "link" for per-link
// D→S filters). Returns m for chaining. Matchers sharing a site share
// instruments.
func (m *Matcher) InstrumentSite(site string) *Matcher {
	m.ins = instrumentsFor(site)
	return m
}

// Add registers (or replaces) the subscription for id.
func (m *Matcher) Add(id vtime.SubscriberID, sub *Subscription) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, exists := m.subs[id]; exists {
		m.eng.Remove(id, old)
	}
	m.subs[id] = sub
	m.eng.Add(id, sub)
}

// Remove unregisters the subscription for id. Removing an unknown id is a
// no-op.
func (m *Matcher) Remove(id vtime.SubscriberID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old, ok := m.subs[id]
	if !ok {
		return
	}
	delete(m.subs, id)
	m.eng.Remove(id, old)
}

// Len reports the number of registered subscriptions.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.subs)
}

// Get returns the subscription registered under id, if any.
func (m *Matcher) Get(id vtime.SubscriberID) (*Subscription, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	sub, ok := m.subs[id]
	return sub, ok
}

// IDs returns all registered subscriber IDs, sorted.
func (m *Matcher) IDs() []vtime.SubscriberID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]vtime.SubscriberID, 0, len(m.subs))
	for id := range m.subs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Match returns the IDs of all subscriptions matching attrs, sorted
// ascending (a deterministic order keeps PFS records and tests stable).
func (m *Matcher) Match(attrs Attributes) []vtime.SubscriberID {
	return m.MatchAppend(nil, attrs)
}

// MatchAppend appends the IDs of all subscriptions matching attrs to dst
// and returns the extended slice; the appended region is sorted ascending.
// Passing a reused buffer (dst[:0]) makes per-event matching allocation-free
// on the broker fan-out path.
func (m *Matcher) MatchAppend(dst []vtime.SubscriberID, attrs Attributes) []vtime.SubscriberID {
	var t0 time.Time
	if m.ins != nil {
		t0 = time.Now()
	}
	m.mu.RLock()
	start := len(dst)
	dst, cand := m.eng.MatchAppend(dst, attrs)
	m.mu.RUnlock()
	tail := dst[start:]
	sortIDs(tail)
	if m.ins != nil {
		m.ins.candidates.Add(int64(cand))
		m.ins.hits.Add(int64(len(tail)))
		m.ins.seconds.ObserveDuration(time.Since(t0))
	}
	return dst
}

// sortIDs sorts ids ascending without reflection — sort.Slice's closure and
// reflect-based swapper allocate, which would break the zero-alloc
// MatchAppend contract on the fan-out path.
func sortIDs(ids []vtime.SubscriberID) {
	if len(ids) < 2 {
		return
	}
	if len(ids) <= 32 {
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		return
	}
	// Heapsort: in-place, O(n log n), no closures.
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && ids[child] < ids[child+1] {
				child++
			}
			if ids[root] >= ids[child] {
				return
			}
			ids[root], ids[child] = ids[child], ids[root]
			root = child
		}
	}
	for i := len(ids)/2 - 1; i >= 0; i-- {
		siftDown(i, len(ids))
	}
	for end := len(ids) - 1; end > 0; end-- {
		ids[0], ids[end] = ids[end], ids[0]
		siftDown(0, end)
	}
}

// MatchesAny reports whether at least one registered subscription matches;
// intermediate brokers use it to decide whether to forward an event as D or
// downgrade it to S for a link.
func (m *Matcher) MatchesAny(attrs Attributes) bool {
	var t0 time.Time
	if m.ins != nil {
		t0 = time.Now()
	}
	m.mu.RLock()
	ok, cand := m.eng.MatchesAny(attrs)
	m.mu.RUnlock()
	if m.ins != nil {
		m.ins.candidates.Add(int64(cand))
		if ok {
			m.ins.hits.Inc()
		}
		m.ins.seconds.ObserveDuration(time.Since(t0))
	}
	return ok
}

// --- Site telemetry ---

// siteInstruments are the match-selectivity counters and latency histogram
// for one matcher site. candidates/hits expose the selectivity ratio: a
// healthy index evaluates few candidates per hit, a degenerate one scans
// everything.
type siteInstruments struct {
	candidates *telemetry.Counter
	hits       *telemetry.Counter
	seconds    *telemetry.Histogram
}

var (
	sitesMu sync.Mutex
	sites   = make(map[string]*siteInstruments)
)

func instrumentsFor(site string) *siteInstruments {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	if ins, ok := sites[site]; ok {
		return ins
	}
	label := "{site=\"" + site + "\"}"
	ins := &siteInstruments{
		candidates: telemetry.Default().Counter("gryphon_match_candidates_total"+label,
			"Subscriptions fully evaluated per match query (selectivity denominator)."),
		hits: telemetry.Default().Counter("gryphon_match_hits_total"+label,
			"Subscriptions matched per match query (selectivity numerator)."),
		seconds: telemetry.Default().DurationHistogram("gryphon_match_seconds"+label,
			"Per-event matching latency by matcher site.", telemetry.FastBuckets),
	}
	sites[site] = ins
	return ins
}

// --- Linear engine (the brute-force oracle) ---

// linearEngine is the original matching strategy: each subscription with at
// least one equality predicate is indexed under its first equality
// predicate (attribute, value-key); subscriptions without one go on a
// linear scan list. Matching probes the index once per event attribute and
// then verifies full predicates. It is simple and allocation-free, and
// serves as the correctness oracle for indexed engines.
type linearEngine struct {
	byKey  map[indexKey][]vtime.SubscriberID
	linear []vtime.SubscriberID
	subs   map[vtime.SubscriberID]*Subscription
}

type indexKey struct {
	attr string
	val  string
}

// NewLinearEngine returns the brute-force matching strategy.
func NewLinearEngine() Engine {
	return &linearEngine{
		byKey: make(map[indexKey][]vtime.SubscriberID),
		subs:  make(map[vtime.SubscriberID]*Subscription),
	}
}

func (e *linearEngine) Add(id vtime.SubscriberID, sub *Subscription) {
	e.subs[id] = sub
	if key, ok := equalityKey(sub); ok {
		e.byKey[key] = append(e.byKey[key], id)
		return
	}
	e.linear = append(e.linear, id)
}

func (e *linearEngine) Remove(id vtime.SubscriberID, sub *Subscription) {
	if _, ok := e.subs[id]; !ok {
		return
	}
	delete(e.subs, id)
	if key, hasKey := equalityKey(sub); hasKey {
		e.byKey[key] = removeID(e.byKey[key], id)
		if len(e.byKey[key]) == 0 {
			delete(e.byKey, key)
		}
		return
	}
	e.linear = removeID(e.linear, id)
}

// removeID deletes id from ids by swapping the last element into its place
// — O(1) instead of shifting the whole tail, which matters under
// subscription churn on large buckets. Bucket order becomes arbitrary, but
// match-time output is sorted by the facade, so determinism is preserved.
func removeID(ids []vtime.SubscriberID, id vtime.SubscriberID) []vtime.SubscriberID {
	for i, x := range ids {
		if x == id {
			last := len(ids) - 1
			ids[i] = ids[last]
			return ids[:last]
		}
	}
	return ids
}

// equalityKey returns the index key for the subscription's first equality
// predicate, if any.
func equalityKey(sub *Subscription) (indexKey, bool) {
	for _, p := range sub.preds {
		if p.Op == OpEq {
			return indexKey{attr: p.Attr, val: p.Val.Key()}, true
		}
	}
	return indexKey{}, false
}

func (e *linearEngine) MatchAppend(dst []vtime.SubscriberID, attrs Attributes) ([]vtime.SubscriberID, int) {
	cand := 0
	for attr, val := range attrs {
		for _, id := range e.byKey[indexKey{attr: attr, val: val.Key()}] {
			cand++
			if e.subs[id].Matches(attrs) {
				dst = append(dst, id)
			}
		}
	}
	for _, id := range e.linear {
		cand++
		if e.subs[id].Matches(attrs) {
			dst = append(dst, id)
		}
	}
	return dst, cand
}

func (e *linearEngine) MatchesAny(attrs Attributes) (bool, int) {
	cand := 0
	for attr, val := range attrs {
		for _, id := range e.byKey[indexKey{attr: attr, val: val.Key()}] {
			cand++
			if e.subs[id].Matches(attrs) {
				return true, cand
			}
		}
	}
	for _, id := range e.linear {
		cand++
		if e.subs[id].Matches(attrs) {
			return true, cand
		}
	}
	return false, cand
}
