package filter

import (
	"sort"
	"sync"

	"repro/internal/vtime"
)

// Matcher indexes many subscriptions and answers "which subscriptions match
// this event" queries. It is the per-broker matching engine: SHBs run one
// per hosted subscriber set, intermediate brokers run one per downstream
// link for D→S filtering.
//
// Indexing strategy: each subscription that has at least one equality
// predicate is indexed under its first equality predicate (attribute,
// value-key). Subscriptions without an equality predicate go on a linear
// scan list. Matching an event probes the index once per event attribute
// and then verifies full predicates, so cost is proportional to the number
// of candidate subscriptions rather than all subscriptions — the property
// the Gryphon matching engine provides.
//
// Matcher is safe for concurrent use.
type Matcher struct {
	mu     sync.RWMutex
	byKey  map[indexKey][]vtime.SubscriberID
	linear []vtime.SubscriberID
	subs   map[vtime.SubscriberID]*Subscription
}

type indexKey struct {
	attr string
	val  string
}

// NewMatcher returns an empty matcher.
func NewMatcher() *Matcher {
	return &Matcher{
		byKey: make(map[indexKey][]vtime.SubscriberID),
		subs:  make(map[vtime.SubscriberID]*Subscription),
	}
}

// Add registers (or replaces) the subscription for id.
func (m *Matcher) Add(id vtime.SubscriberID, sub *Subscription) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.subs[id]; exists {
		m.removeLocked(id)
	}
	m.subs[id] = sub
	if key, ok := equalityKey(sub); ok {
		m.byKey[key] = append(m.byKey[key], id)
		return
	}
	m.linear = append(m.linear, id)
}

// Remove unregisters the subscription for id. Removing an unknown id is a
// no-op.
func (m *Matcher) Remove(id vtime.SubscriberID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removeLocked(id)
}

func (m *Matcher) removeLocked(id vtime.SubscriberID) {
	sub, ok := m.subs[id]
	if !ok {
		return
	}
	delete(m.subs, id)
	if key, hasKey := equalityKey(sub); hasKey {
		m.byKey[key] = removeID(m.byKey[key], id)
		if len(m.byKey[key]) == 0 {
			delete(m.byKey, key)
		}
		return
	}
	m.linear = removeID(m.linear, id)
}

func removeID(ids []vtime.SubscriberID, id vtime.SubscriberID) []vtime.SubscriberID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// equalityKey returns the index key for the subscription's first equality
// predicate, if any.
func equalityKey(sub *Subscription) (indexKey, bool) {
	for _, p := range sub.preds {
		if p.Op == OpEq {
			return indexKey{attr: p.Attr, val: p.Val.Key()}, true
		}
	}
	return indexKey{}, false
}

// Len reports the number of registered subscriptions.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.subs)
}

// Get returns the subscription registered under id, if any.
func (m *Matcher) Get(id vtime.SubscriberID) (*Subscription, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	sub, ok := m.subs[id]
	return sub, ok
}

// IDs returns all registered subscriber IDs, sorted.
func (m *Matcher) IDs() []vtime.SubscriberID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]vtime.SubscriberID, 0, len(m.subs))
	for id := range m.subs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Match returns the IDs of all subscriptions matching attrs, sorted
// ascending (a deterministic order keeps PFS records and tests stable).
func (m *Matcher) Match(attrs Attributes) []vtime.SubscriberID {
	return m.MatchAppend(nil, attrs)
}

// MatchAppend appends the IDs of all subscriptions matching attrs to dst
// and returns the extended slice; the appended region is sorted ascending.
// Passing a reused buffer (dst[:0]) makes per-event matching allocation-free
// on the broker fan-out path.
func (m *Matcher) MatchAppend(dst []vtime.SubscriberID, attrs Attributes) []vtime.SubscriberID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	start := len(dst)
	for attr, val := range attrs {
		for _, id := range m.byKey[indexKey{attr: attr, val: val.Key()}] {
			if m.subs[id].Matches(attrs) {
				dst = append(dst, id)
			}
		}
	}
	for _, id := range m.linear {
		if m.subs[id].Matches(attrs) {
			dst = append(dst, id)
		}
	}
	tail := dst[start:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return dst
}

// MatchesAny reports whether at least one registered subscription matches;
// intermediate brokers use it to decide whether to forward an event as D or
// downgrade it to S for a link.
func (m *Matcher) MatchesAny(attrs Attributes) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for attr, val := range attrs {
		for _, id := range m.byKey[indexKey{attr: attr, val: val.Key()}] {
			if m.subs[id].Matches(attrs) {
				return true
			}
		}
	}
	for _, id := range m.linear {
		if m.subs[id].Matches(attrs) {
			return true
		}
	}
	return false
}
