package filter

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse compiles subscription source text into a Subscription.
//
// Grammar (case-insensitive keywords):
//
//	subscription := "true" | clause { "and" clause }
//	clause       := attr op literal
//	              | "prefix" "(" attr "," string ")"
//	              | "exists" "(" attr ")"
//	op           := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//	literal      := string | number | "true" | "false"
//	attr         := identifier (letters, digits, '_', '.')
//
// Examples:
//
//	topic = "trades.NYSE" and price > 10.5
//	prefix(topic, "trades.") and exists(accountId)
func Parse(src string) (*Subscription, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sub, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("parse %q: %w", src, err)
	}
	return sub, nil
}

// MustParse is Parse that panics on error; for tests and static
// subscription tables.
func MustParse(src string) *Subscription {
	sub, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return sub
}

type tokKind uint8

const (
	tokIdent tokKind = iota + 1
	tokString
	tokNumber
	tokOp // = == != < <= > >=
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == '=' || c == '!' || c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("lex: stray '!' at offset %d", i)
			}
			toks = append(toks, token{tokOp, op})
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("lex: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' || c == '+':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' ||
				src[j] == 'e' || src[j] == 'E' || src[j] == '-' || src[j] == '+') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) ||
				unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("lex: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t, ok := p.next()
	if !ok {
		return token{}, fmt.Errorf("expected %s, got end of input", what)
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) parse() (*Subscription, error) {
	if t, ok := p.peek(); ok && t.kind == tokIdent && strings.EqualFold(t.text, "true") {
		// Bare "true" matches everything (only if nothing follows).
		if p.pos+1 == len(p.toks) {
			return MatchAll(), nil
		}
	}
	var preds []Predicate
	for {
		pred, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		t, ok := p.peek()
		if !ok {
			break
		}
		if t.kind != tokIdent || !strings.EqualFold(t.text, "and") {
			return nil, fmt.Errorf("expected 'and', got %q", t.text)
		}
		p.pos++
	}
	return NewSubscription(preds...), nil
}

func (p *parser) parseClause() (Predicate, error) {
	ident, err := p.expect(tokIdent, "attribute or function")
	if err != nil {
		return Predicate{}, err
	}
	switch strings.ToLower(ident.text) {
	case "prefix":
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return Predicate{}, err
		}
		attr, err := p.expect(tokIdent, "attribute")
		if err != nil {
			return Predicate{}, err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return Predicate{}, err
		}
		str, err := p.expect(tokString, "string literal")
		if err != nil {
			return Predicate{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Predicate{}, err
		}
		return Predicate{Attr: attr.text, Op: OpPrefix, Val: String(str.text)}, nil
	case "exists":
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return Predicate{}, err
		}
		attr, err := p.expect(tokIdent, "attribute")
		if err != nil {
			return Predicate{}, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return Predicate{}, err
		}
		return Predicate{Attr: attr.text, Op: OpExists}, nil
	}
	opTok, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return Predicate{}, err
	}
	var op Op
	switch opTok.text {
	case "=", "==":
		op = OpEq
	case "!=":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return Predicate{}, fmt.Errorf("unknown operator %q", opTok.text)
	}
	val, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Attr: ident.text, Op: op, Val: val}, nil
}

func (p *parser) parseLiteral() (Value, error) {
	t, ok := p.next()
	if !ok {
		return Value{}, fmt.Errorf("expected literal, got end of input")
	}
	switch t.kind {
	case tokString:
		return String(t.text), nil
	case tokNumber:
		if !strings.ContainsAny(t.text, ".eE") {
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return Int(i), nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad number %q: %w", t.text, err)
		}
		return Float(f), nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("expected literal, got identifier %q", t.text)
	default:
		return Value{}, fmt.Errorf("expected literal, got %q", t.text)
	}
}
