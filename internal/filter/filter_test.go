package filter

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestValueAccessors(t *testing.T) {
	if v := String("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Error("String value broken")
	}
	if v := Int(42); v.Kind() != KindInt || v.IntVal() != 42 {
		t.Error("Int value broken")
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.FloatVal() != 2.5 {
		t.Error("Float value broken")
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Error("Bool value broken")
	}
	if Bool(false).BoolVal() {
		t.Error("Bool(false) reports true")
	}
	var zero Value
	if zero.Valid() {
		t.Error("zero Value reports valid")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{String("a"), String("a"), true},
		{String("a"), String("b"), false},
		{Int(3), Int(3), true},
		{Int(3), Float(3.0), true},
		{Float(3.5), Int(3), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), false},
		{String("1"), Int(1), false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Equal(tt.a); got != tt.want {
			t.Errorf("Equal not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if cmp, ok := Int(1).Compare(Float(2)); !ok || cmp != -1 {
		t.Errorf("Int/Float compare = %d/%v", cmp, ok)
	}
	if cmp, ok := String("b").Compare(String("a")); !ok || cmp != 1 {
		t.Errorf("string compare = %d/%v", cmp, ok)
	}
	if cmp, ok := String("a").Compare(String("a")); !ok || cmp != 0 {
		t.Errorf("string self-compare = %d/%v", cmp, ok)
	}
	if _, ok := Bool(true).Compare(Bool(false)); ok {
		t.Error("bools should not be comparable")
	}
	if _, ok := String("1").Compare(Int(1)); ok {
		t.Error("string/int should not be comparable")
	}
}

func TestValueKeyConsistentWithEqual(t *testing.T) {
	// Equal values must share a key (so index probes find them).
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3.0) keys differ but values are Equal")
	}
	if String("3").Key() == Int(3).Key() {
		t.Error("string and numeric 3 share a key but are not Equal")
	}
}

func TestPredicateEval(t *testing.T) {
	attrs := Attributes{
		"topic": String("trades.NYSE"),
		"price": Float(10.5),
		"qty":   Int(100),
		"hot":   Bool(true),
	}
	tests := []struct {
		pred Predicate
		want bool
	}{
		{Predicate{"topic", OpEq, String("trades.NYSE")}, true},
		{Predicate{"topic", OpNe, String("trades.LSE")}, true},
		{Predicate{"price", OpGt, Int(10)}, true},
		{Predicate{"price", OpGe, Float(10.5)}, true},
		{Predicate{"price", OpLt, Int(10)}, false},
		{Predicate{"qty", OpLe, Int(100)}, true},
		{Predicate{"topic", OpPrefix, String("trades.")}, true},
		{Predicate{"topic", OpPrefix, String("quotes.")}, false},
		{Predicate{"hot", OpEq, Bool(true)}, true},
		{Predicate{"hot", OpExists, Value{}}, true},
		{Predicate{"missing", OpExists, Value{}}, false},
		{Predicate{"missing", OpNe, String("x")}, false}, // absence fails even !=
		{Predicate{"topic", OpGt, Int(5)}, false},        // incomparable
		{Predicate{"qty", OpPrefix, String("1")}, false}, // prefix on non-string
	}
	for _, tt := range tests {
		if got := tt.pred.Eval(attrs); got != tt.want {
			t.Errorf("%v over attrs = %v, want %v", tt.pred, got, tt.want)
		}
	}
}

func TestSubscriptionMatches(t *testing.T) {
	sub := NewSubscription(
		Predicate{"topic", OpEq, String("t1")},
		Predicate{"price", OpGt, Int(5)},
	)
	if !sub.Matches(Attributes{"topic": String("t1"), "price": Int(6)}) {
		t.Error("conjunction should match")
	}
	if sub.Matches(Attributes{"topic": String("t1"), "price": Int(5)}) {
		t.Error("failed predicate should reject")
	}
	if !MatchAll().Matches(Attributes{}) {
		t.Error("MatchAll should match empty attrs")
	}
	if got := len(sub.Predicates()); got != 2 {
		t.Errorf("Predicates() = %d entries", got)
	}
}

func TestParseBasics(t *testing.T) {
	tests := []struct {
		src   string
		attrs Attributes
		want  bool
	}{
		{`true`, Attributes{}, true},
		{`topic = "a"`, Attributes{"topic": String("a")}, true},
		{`topic = 'a'`, Attributes{"topic": String("a")}, true},
		{`topic == "a"`, Attributes{"topic": String("b")}, false},
		{`price > 10`, Attributes{"price": Int(11)}, true},
		{`price >= 10.5`, Attributes{"price": Float(10.5)}, true},
		{`price < -2`, Attributes{"price": Int(-3)}, true},
		{`qty != 5`, Attributes{"qty": Int(6)}, true},
		{`hot = true`, Attributes{"hot": Bool(true)}, true},
		{`hot = false`, Attributes{"hot": Bool(true)}, false},
		{`prefix(topic, "tr.")`, Attributes{"topic": String("tr.x")}, true},
		{`exists(acct)`, Attributes{"acct": Int(1)}, true},
		{`exists(acct)`, Attributes{}, false},
		{
			`topic = "a" and price > 1 AND qty <= 10`,
			Attributes{"topic": String("a"), "price": Int(2), "qty": Int(10)},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			sub, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got := sub.Matches(tt.attrs); got != tt.want {
				t.Errorf("Matches = %v, want %v (sub %s)", got, tt.want, sub)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`topic`,
		`topic =`,
		`topic = "unterminated`,
		`topic ! "x"`,
		`topic = "a" or price > 1`,
		`prefix(topic "x")`,
		`prefix(topic, 5)`,
		`exists()`,
		`topic = @`,
		`price > abc`,
		`topic = "a" and`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		`topic = "a" and price > 10.5 and exists(acct)`,
		`prefix(topic, "trades.") and qty <= 100`,
		`true`,
	}
	for _, src := range srcs {
		sub := MustParse(src)
		again, err := Parse(sub.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", sub.String(), src, err)
		}
		if again.String() != sub.String() {
			t.Errorf("round trip changed subscription: %q -> %q", sub.String(), again.String())
		}
	}
}

func TestMatcherBasics(t *testing.T) {
	m := NewMatcher()
	m.Add(1, MustParse(`topic = "a"`))
	m.Add(2, MustParse(`topic = "b"`))
	m.Add(3, MustParse(`price > 10`)) // no equality: linear list
	m.Add(4, MustParse(`topic = "a" and price > 10`))

	ev := Attributes{"topic": String("a"), "price": Int(20)}
	got := m.Match(ev)
	want := []vtime.SubscriberID{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Match = %v, want %v", got, want)
		}
	}
	if !m.MatchesAny(ev) {
		t.Error("MatchesAny = false")
	}
	if m.MatchesAny(Attributes{"topic": String("zzz"), "price": Int(1)}) {
		t.Error("MatchesAny matched nothing-subscribed event")
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d", m.Len())
	}
	ids := m.IDs()
	if len(ids) != 4 || ids[0] != 1 || ids[3] != 4 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestMatcherMatchAppend(t *testing.T) {
	m := NewMatcher()
	m.Add(1, MustParse(`topic = "a"`))
	m.Add(2, MustParse(`topic = "b"`))
	m.Add(3, MustParse(`price > 10`))
	m.Add(4, MustParse(`topic = "a" and price > 10`))

	evA := Attributes{"topic": String("a"), "price": Int(20)}
	evB := Attributes{"topic": String("b"), "price": Int(1)}

	// MatchAppend(nil, ...) must equal Match.
	if got, want := m.MatchAppend(nil, evA), m.Match(evA); len(got) != len(want) {
		t.Fatalf("MatchAppend = %v, Match = %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatchAppend = %v, Match = %v", got, want)
			}
		}
	}

	// Reusing the buffer across events must not leak results between
	// calls, and only the appended region is sorted.
	buf := m.MatchAppend(nil, evA)
	buf = m.MatchAppend(buf[:0], evB)
	if len(buf) != 1 || buf[0] != 2 {
		t.Fatalf("reused MatchAppend = %v, want [2]", buf)
	}

	// Appending after a non-empty prefix preserves the prefix.
	prefix := []vtime.SubscriberID{99}
	out := m.MatchAppend(prefix, evA)
	if out[0] != 99 {
		t.Fatalf("MatchAppend clobbered prefix: %v", out)
	}
	if len(out) != 4 || out[1] != 1 || out[2] != 3 || out[3] != 4 {
		t.Fatalf("MatchAppend with prefix = %v, want [99 1 3 4]", out)
	}
}

func TestMatcherRemoveAndReplace(t *testing.T) {
	m := NewMatcher()
	m.Add(1, MustParse(`topic = "a"`))
	m.Add(2, MustParse(`price > 0`))
	m.Remove(1)
	m.Remove(99) // unknown: no-op
	if got := m.Match(Attributes{"topic": String("a"), "price": Int(1)}); len(got) != 1 || got[0] != 2 {
		t.Errorf("Match after remove = %v", got)
	}
	// Replace 2 with an equality subscription.
	m.Add(2, MustParse(`topic = "b"`))
	if got := m.Match(Attributes{"topic": String("a"), "price": Int(1)}); len(got) != 0 {
		t.Errorf("Match after replace = %v", got)
	}
	if got := m.Match(Attributes{"topic": String("b")}); len(got) != 1 || got[0] != 2 {
		t.Errorf("Match of replacement = %v", got)
	}
	m.Remove(2)
	if m.Len() != 0 {
		t.Errorf("Len after removing all = %d", m.Len())
	}
	if _, ok := m.Get(2); ok {
		t.Error("Get after remove found subscription")
	}
}

// Property: Matcher.Match returns exactly the set a brute-force scan does.
func TestMatcherAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	topics := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		m := NewMatcher()
		subs := make(map[vtime.SubscriberID]*Subscription)
		n := rng.Intn(30) + 1
		for i := 0; i < n; i++ {
			id := vtime.SubscriberID(i)
			var sub *Subscription
			switch rng.Intn(3) {
			case 0:
				sub = MustParse(`topic = "` + topics[rng.Intn(len(topics))] + `"`)
			case 1:
				sub = MustParse(`price > ` + strconv.Itoa(rng.Intn(50)))
			default:
				sub = MustParse(`topic = "` + topics[rng.Intn(len(topics))] +
					`" and price <= ` + strconv.Itoa(rng.Intn(50)))
			}
			m.Add(id, sub)
			subs[id] = sub
		}
		for probe := 0; probe < 20; probe++ {
			ev := Attributes{
				"topic": String(topics[rng.Intn(len(topics))]),
				"price": Int(int64(rng.Intn(60))),
			}
			got := m.Match(ev)
			gotSet := make(map[vtime.SubscriberID]bool, len(got))
			for _, id := range got {
				gotSet[id] = true
			}
			for id, sub := range subs {
				if want := sub.Matches(ev); want != gotSet[id] {
					t.Fatalf("trial %d: sub %d (%s) over %v: matcher=%v brute=%v",
						trial, id, sub, ev, gotSet[id], want)
				}
			}
		}
	}
}

// Property: parser never panics on arbitrary input.
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(src string) bool {
		_, _ = Parse(src) //nolint:errcheck // only checking for panics
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAttributesClone(t *testing.T) {
	a := Attributes{"x": Int(1)}
	b := a.Clone()
	b["x"] = Int(2)
	if a["x"].IntVal() != 1 {
		t.Error("Clone aliased the original map")
	}
}
