package experiment

import (
	"testing"
)

// TestSubscriberChurnSmall runs the churn scenario at reduced scale: 2000
// durable subscribers, 4000 events, 400 detach/resume cycles across 4
// workers, catchup draining concurrently with live ingest. The run itself
// asserts the exactly-once contract per subscriber (lost/dup/reordered/gap
// counters must all be zero); the test also sanity-checks that churn
// actually produced catchup work, otherwise the scenario proved nothing.
func TestSubscriberChurnSmall(t *testing.T) {
	res, err := RunSubscriberChurn(t.TempDir(), ChurnParams{
		Subscribers:  2000,
		Groups:       64,
		Events:       4000,
		ChurnWorkers: 4,
		ChurnOps:     400,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Catchups == 0 {
		t.Fatal("churn run produced no catchup streams; scenario is vacuous")
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries")
	}
	t.Logf("delivered=%d catchups=%d liveP99=%v drain=%v", res.Delivered, res.Catchups, res.LiveP99, res.DrainTime)
}

// TestSubscriberChurnSingleShard pins the engine to the single-lock
// configuration: the scheduler and sharding must degrade to the serialized
// baseline without violating the client contract.
func TestSubscriberChurnSingleShard(t *testing.T) {
	res, err := RunSubscriberChurn(t.TempDir(), ChurnParams{
		Subscribers:  500,
		Groups:       32,
		SubShards:    1,
		Events:       2000,
		ChurnWorkers: 2,
		ChurnOps:     100,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubShards != 1 {
		t.Fatalf("SubShards = %d, want 1", res.SubShards)
	}
}

// TestSubscriberChurnShardCount checks the shard-count plumbing end to end
// (an explicit SubShards value is honored verbatim, not clamped to cores).
func TestSubscriberChurnShardCount(t *testing.T) {
	want := 4
	res, err := RunSubscriberChurn(t.TempDir(), ChurnParams{
		Subscribers:  200,
		Groups:       16,
		SubShards:    want,
		Events:       1000,
		ChurnWorkers: 2,
		ChurnOps:     50,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubShards != want {
		t.Fatalf("SubShards = %d, want %d", res.SubShards, want)
	}
}
