package experiment

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/pfs"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// ChurnParams configures the subscriber-churn scenario: a large durable
// subscriber population (the paper's "tens of thousands of subscribers per
// SHB") driven directly against one core engine while churn workers
// disconnect and reconnect subscribers mid-stream. Reconnects resume from
// Zipf-lagged checkpoint tokens, so a heavy tail of subscribers comes back
// far behind latestDelivered and must catch up from the PFS while live
// traffic keeps flowing — the exact contention the sharded engine and its
// catchup scheduler exist to bound.
type ChurnParams struct {
	// Subscribers is the durable population (0 = 50000).
	Subscribers int
	// Groups is the number of filter groups; each subscriber filters one
	// group and each event carries one, so per-event fan-out is
	// Subscribers/Groups (0 = 512).
	Groups int
	// SubShards is the engine's subscriber shard count (0 = engine
	// default, 1 = the single-lock baseline).
	SubShards int
	// CatchupWeight is the catchup scheduler quantum (0 = engine default).
	CatchupWeight int
	// Events published over the run (0 = 20000).
	Events int
	// BatchSize is events per knowledge batch — the live-path unit whose
	// latency is measured (0 = 64).
	BatchSize int
	// ChurnWorkers run disconnect/reconnect storms over disjoint
	// subscriber partitions (0 = 8).
	ChurnWorkers int
	// ChurnOps is the total number of detach+resume cycles (0 = 2000).
	ChurnOps int
	// ZipfS is the Zipf exponent of the per-subscriber ack lag (0 = 1.2;
	// must be > 1).
	ZipfS float64
	// ZipfMaxLag caps the ack lag in ticks (0 = 4096).
	ZipfMaxLag int
	// Seed makes the churn and lag sequences reproducible (0 = 1).
	Seed int64
}

// ChurnResult reports the scenario outcome: live-path knowledge-batch
// latency percentiles observed while catchup streams drained concurrently,
// the post-publish drain time, and the exactly-once violation counters
// (all must be zero).
type ChurnResult struct {
	Subscribers int `json:"subscribers"`
	Groups      int `json:"groups"`
	SubShards   int `json:"subShards"`
	Events      int `json:"events"`
	ChurnOps    int `json:"churnOps"`

	// Delivered counts engine event deliveries (includes catchup
	// redelivery of unacked prefixes, so it exceeds the matched minimum).
	Delivered int64 `json:"delivered"`
	// Catchups is the number of catchup→constream switchovers completed.
	Catchups int64 `json:"catchups"`

	// LiveP50/P99/Max are per-knowledge-batch ingest latencies during the
	// publish phase (the live-path SLO while catchups drain).
	LiveP50 time.Duration `json:"liveP50"`
	LiveP99 time.Duration `json:"liveP99"`
	LiveMax time.Duration `json:"liveMax"`
	// PublishTime is the live phase duration; EventsPerSec is
	// Events/PublishTime.
	PublishTime  time.Duration `json:"publishTime"`
	EventsPerSec float64       `json:"eventsPerSec"`
	// DrainTime is how long the remaining catchup backlog took to drain
	// after the last publish.
	DrainTime time.Duration `json:"drainTime"`

	Lost       int64 `json:"lost"`
	Duplicates int64 `json:"duplicates"`
	Reordered  int64 `json:"reordered"`
	Gaps       int64 `json:"gaps"`
}

// churnSub is the client-side model of one durable subscriber: a cursor
// into its group's event sequence plus its checkpoint state. Deliveries
// arrive under the engine's shard lock while the acker and churn worker
// read from other goroutines, so every access takes mu.
type churnSub struct {
	mu       sync.Mutex
	group    int
	lag      vtime.Timestamp
	lastSeen vtime.Timestamp // delivery cursor (highest delivered ts)
	acked    vtime.Timestamp // checkpoint floor (lags lastSeen by lag)
	cursor   int             // next expected index into groupTS[group]

	dups, reorders, lost, gaps int64
}

// onDeliver validates one delivery against the model. groupTS is the
// ascending event-timestamp list of the subscriber's group.
func (c *churnSub) onDeliver(d message.Delivery, groupTS []vtime.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch d.Kind {
	case message.DeliverEvent:
		ts := d.Timestamp
		if ts <= c.lastSeen {
			if ts == c.lastSeen {
				c.dups++
			} else {
				c.reorders++
			}
			return
		}
		// Everything of the group in (lastSeen, ts) was skipped.
		for c.cursor < len(groupTS) && groupTS[c.cursor] < ts {
			c.lost++
			c.cursor++
		}
		if c.cursor < len(groupTS) && groupTS[c.cursor] == ts {
			c.cursor++
		}
		c.lastSeen = ts
	case message.DeliverSilence, message.DeliverGap:
		if d.Kind == message.DeliverGap {
			c.gaps++
		}
		// No matching events may exist at or below the silence horizon
		// that the cursor has not consumed.
		for c.cursor < len(groupTS) && groupTS[c.cursor] <= d.Timestamp {
			c.lost++
			c.cursor++
		}
		if d.Timestamp > c.lastSeen {
			c.lastSeen = d.Timestamp
		}
	}
}

// reconnect rewinds the model to the resume floor: the engine will
// redeliver everything after acked, which the client (having acked only up
// to there) must accept without counting duplicates.
func (c *churnSub) reconnect(groupTS []vtime.Timestamp) *vtime.CheckpointToken {
	c.mu.Lock()
	defer c.mu.Unlock()
	ct := vtime.NewCheckpointToken()
	ct.Set(churnPubend, c.acked)
	c.lastSeen = c.acked
	c.cursor = sort.Search(len(groupTS), func(i int) bool { return groupTS[i] > c.acked })
	return ct
}

const churnPubend = vtime.PubendID(1)

// RunSubscriberChurn runs the churn scenario against a freshly built engine
// under dir and verifies the exactly-once contract for every subscriber. It
// returns an error if any subscriber lost, duplicated, or reordered an
// event, or saw a spurious gap.
func RunSubscriberChurn(dir string, p ChurnParams) (*ChurnResult, error) {
	if p.Subscribers == 0 {
		p.Subscribers = 50000
	}
	if p.Groups == 0 {
		p.Groups = 512
	}
	if p.Events == 0 {
		p.Events = 20000
	}
	if p.BatchSize == 0 {
		p.BatchSize = 64
	}
	if p.ChurnWorkers == 0 {
		p.ChurnWorkers = 8
	}
	if p.ChurnOps == 0 {
		p.ChurnOps = 2000
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.2
	}
	if p.ZipfMaxLag == 0 {
		p.ZipfMaxLag = 4096
	}
	if p.Seed == 0 {
		p.Seed = 1
	}

	// Pre-generate the event stream: every tick carries one event, groups
	// assigned round-robin, so each subscriber's expected sequence is
	// known exactly.
	payload := make([]byte, PaperPayloadBytes)
	attrs := make([]filter.Attributes, p.Groups)
	for g := range attrs {
		attrs[g] = filter.Attributes{"group": filter.String(groupName(g))}
	}
	events := make([]*message.Event, p.Events)
	groupTS := make([][]vtime.Timestamp, p.Groups)
	for i := range events {
		ts := vtime.Timestamp(i + 1)
		g := i % p.Groups
		events[i] = &message.Event{
			Pubend:    churnPubend,
			Timestamp: ts,
			Attrs:     attrs[g],
			Payload:   payload,
		}
		groupTS[g] = append(groupTS[g], ts)
	}

	rng := rand.New(rand.NewSource(p.Seed)) //nolint:gosec // reproducible workload
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.ZipfMaxLag))
	subs := make([]*churnSub, p.Subscribers)
	for i := range subs {
		subs[i] = &churnSub{group: i % p.Groups, lag: vtime.Timestamp(zipf.Uint64())}
	}

	// Upstream stand-in: nacked spans are recorded and served back as
	// knowledge by the publisher loop (the engine's only serialized entry
	// point per pubend).
	var nackMu sync.Mutex
	var nackSpans []tick.Span

	vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
	if err != nil {
		return nil, err
	}
	defer vol.Close() //nolint:errcheck,gosec // shutdown
	meta, err := metastore.Open(filepath.Join(dir, "meta.wal"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		return nil, err
	}
	defer meta.Close() //nolint:errcheck,gosec // shutdown
	pf, err := pfs.New(pfs.Options{Volume: vol, Meta: meta, SyncEvery: 200})
	if err != nil {
		return nil, err
	}
	shb, err := core.New(core.Config{
		Meta:          meta,
		PFS:           pf,
		Pubends:       []vtime.PubendID{churnPubend},
		SubShards:     p.SubShards,
		CatchupWeight: p.CatchupWeight,
		Deliver: func(id vtime.SubscriberID, d message.Delivery) {
			c := subs[int(id)-1]
			c.onDeliver(d, groupTS[c.group])
		},
		SendNack: func(_ vtime.PubendID, spans []tick.Span) {
			nackMu.Lock()
			nackSpans = append(nackSpans, spans...)
			nackMu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer shb.Close()

	for i := range subs {
		if _, err := shb.Subscribe(&message.Subscribe{
			Subscriber: vtime.SubscriberID(i + 1),
			Filter:     fmt.Sprintf("group = %q", groupName(subs[i].group)),
		}); err != nil {
			return nil, fmt.Errorf("churn subscribe %d: %w", i+1, err)
		}
	}

	// serveNacks replays requested spans as knowledge. Must only run on
	// the publisher goroutine (OnKnowledge is serialized per pubend).
	serveNacks := func() {
		nackMu.Lock()
		spans := nackSpans
		nackSpans = nil
		nackMu.Unlock()
		for _, sp := range spans {
			if sp.Start > vtime.Timestamp(p.Events) || sp.End < 1 {
				continue
			}
			if sp.Start < 1 {
				sp.Start = 1
			}
			end := vtime.MinTS(sp.End, vtime.Timestamp(p.Events))
			know := &message.Knowledge{
				Pubend: churnPubend,
				Events: events[sp.Start-1 : end],
			}
			shb.OnKnowledge(know)
		}
	}

	stop := make(chan struct{})
	var helpers sync.WaitGroup

	// Ticker: housekeeping (floor aggregation, nack flush, silence) runs
	// concurrently with ingest, as the broker loop would drive it.
	helpers.Add(1)
	go func() {
		defer helpers.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				shb.Tick(time.Now()) //nolint:errcheck,gosec // surfaced by final Tick
			}
		}
	}()

	// Acker: continuously advances every subscriber's checkpoint to
	// lastSeen−lag, producing the Zipf-tailed resume floors.
	helpers.Add(1)
	go func() {
		defer helpers.Done()
		for {
			for i, c := range subs {
				if i%1024 == 0 {
					select {
					case <-stop:
						return
					default:
					}
				}
				c.mu.Lock()
				target := c.lastSeen - c.lag
				if target < 0 {
					target = 0
				}
				advanced := target > c.acked
				if advanced {
					c.acked = target
				}
				c.mu.Unlock()
				if advanced {
					ct := vtime.NewCheckpointToken()
					ct.Set(churnPubend, target)
					shb.OnAck(vtime.SubscriberID(i+1), ct)
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Churn workers: each owns a disjoint subscriber partition and runs
	// detach → resume-from-checkpoint cycles for its share of ChurnOps.
	churnErrs := make(chan error, p.ChurnWorkers)
	var churners sync.WaitGroup
	for w := 0; w < p.ChurnWorkers; w++ {
		churners.Add(1)
		go func(w int) {
			defer churners.Done()
			r := rand.New(rand.NewSource(p.Seed + int64(w) + 1)) //nolint:gosec // reproducible
			lo := w * p.Subscribers / p.ChurnWorkers
			hi := (w + 1) * p.Subscribers / p.ChurnWorkers
			ops := p.ChurnOps / p.ChurnWorkers
			for op := 0; op < ops; op++ {
				i := lo + r.Intn(hi-lo)
				id := vtime.SubscriberID(i + 1)
				shb.Detach(id)
				ct := subs[i].reconnect(groupTS[subs[i].group])
				if _, err := shb.Subscribe(&message.Subscribe{
					Subscriber: id,
					Filter:     fmt.Sprintf("group = %q", groupName(subs[i].group)),
					CT:         ct,
					Resume:     true,
				}); err != nil {
					churnErrs <- fmt.Errorf("churn resume %d: %w", id, err)
					return
				}
			}
		}(w)
	}

	// Live phase: publish the whole stream in batches, serving nacks
	// between batches, timing each ingest call.
	liveStart := time.Now()
	samples := make([]time.Duration, 0, p.Events/p.BatchSize+1)
	for i := 0; i < p.Events; i += p.BatchSize {
		serveNacks()
		end := i + p.BatchSize
		if end > p.Events {
			end = p.Events
		}
		know := &message.Knowledge{Pubend: churnPubend, Events: events[i:end]}
		t0 := time.Now()
		shb.OnKnowledge(know)
		samples = append(samples, time.Since(t0))
	}
	publishTime := time.Since(liveStart)

	churners.Wait()
	close(stop)
	helpers.Wait()
	select {
	case err := <-churnErrs:
		return nil, err
	default:
	}

	// Drain phase: keep serving nacks and ticking until every catchup
	// stream has switched over to the constream.
	drainStart := time.Now()
	deadline := drainStart.Add(2 * time.Minute)
	for {
		serveNacks()
		if err := shb.Tick(time.Now()); err != nil {
			return nil, fmt.Errorf("churn tick: %w", err)
		}
		shb.DrainCatchups()
		nackMu.Lock()
		pending := len(nackSpans)
		nackMu.Unlock()
		if shb.CatchupCount() == 0 && pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("churn drain stuck: %d catchups, %d pending nack spans",
				shb.CatchupCount(), pending)
		}
	}
	drainTime := time.Since(drainStart)

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(q float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	stats := shb.Stats()
	res := &ChurnResult{
		Subscribers:  p.Subscribers,
		Groups:       p.Groups,
		SubShards:    shb.SubShardCount(),
		Events:       p.Events,
		ChurnOps:     p.ChurnOps,
		Delivered:    stats.EventsDelivered,
		Catchups:     stats.Switchovers,
		LiveP50:      pct(0.50),
		LiveP99:      pct(0.99),
		LiveMax:      samples[len(samples)-1],
		PublishTime:  publishTime,
		EventsPerSec: float64(p.Events) / publishTime.Seconds(),
		DrainTime:    drainTime,
	}
	// Every subscriber must have consumed its complete group sequence.
	for _, c := range subs {
		c.mu.Lock()
		c.lost += int64(len(groupTS[c.group]) - c.cursor)
		res.Lost += c.lost
		res.Duplicates += c.dups
		res.Reordered += c.reorders
		res.Gaps += c.gaps
		c.mu.Unlock()
	}
	if res.Lost != 0 || res.Duplicates != 0 || res.Reordered != 0 || res.Gaps != 0 {
		return res, fmt.Errorf("churn: exactly-once violated: lost=%d dup=%d reordered=%d gaps=%d",
			res.Lost, res.Duplicates, res.Reordered, res.Gaps)
	}
	return res, nil
}
