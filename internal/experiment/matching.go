package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/filter"
	"repro/internal/matchidx"
	"repro/internal/vtime"
)

// MatchScalingParams configures the matching-engine scaling experiment: the
// linear brute-force engine versus the counting attribute index over the
// same subscription population and event stream.
type MatchScalingParams struct {
	// Sizes are the subscription counts to sweep (required).
	Sizes []int
	// Events is the number of matched events measured per size (0 = 200).
	Events int
	// Seed makes population and event generation reproducible (0 = 1).
	Seed int64
}

// MatchScalingPoint is one size's measurement.
type MatchScalingPoint struct {
	Subs int `json:"subs"`
	// LinearNsPerEvent / IndexedNsPerEvent are mean per-event match
	// latencies (MatchAppend into a reused buffer).
	LinearNsPerEvent  float64 `json:"linearNsPerEvent"`
	IndexedNsPerEvent float64 `json:"indexedNsPerEvent"`
	// SpeedupX is linear/indexed latency.
	SpeedupX float64 `json:"speedupX"`
	// LinearCandidates / IndexedCandidates are mean fully-evaluated
	// subscriptions per event (the selectivity denominator); hits are the
	// mean matches per event.
	LinearCandidates  float64 `json:"linearCandidates"`
	IndexedCandidates float64 `json:"indexedCandidates"`
	Hits              float64 `json:"hits"`
	// IndexedBuildMs is the time to index the whole population.
	IndexedBuildMs float64 `json:"indexedBuildMs"`
}

// MatchScalingResult is the full sweep.
type MatchScalingResult struct {
	Points []MatchScalingPoint `json:"points"`
}

// matchWorkload generates the benchmark's subscription mix: half
// equality-anchored (with a range rider), a quarter pure range windows, and
// the rest prefix and exists/inequality subscriptions — exercising every
// index structure (hash buckets, sorted bounds, tries, presence sets,
// residuals).
func matchWorkload(r *rand.Rand, n int) []*filter.Subscription {
	groups := n / 16
	if groups < 64 {
		groups = 64
	}
	subs := make([]*filter.Subscription, n)
	for i := range subs {
		var src string
		switch {
		case i%4 < 2: // equality + range rider
			src = fmt.Sprintf(`group = "g%d" and price > %d`,
				r.Intn(groups), r.Intn(9000))
		case i%4 == 2: // range window, ~1%% selective
			lo := r.Intn(9900)
			src = fmt.Sprintf(`price >= %d and price < %d`, lo, lo+100)
		case i%8 == 3: // prefix
			src = fmt.Sprintf(`prefix(sym, "S%d") and price <= %d`,
				r.Intn(100), r.Intn(10000))
		default: // exists + inequality residual
			src = fmt.Sprintf(`exists(sym) and region != "r%d" and price > %d`,
				r.Intn(8), 5000+r.Intn(5000))
		}
		subs[i] = filter.MustParse(src)
	}
	return subs
}

func matchEvents(r *rand.Rand, n, groups int) []filter.Attributes {
	evs := make([]filter.Attributes, n)
	for i := range evs {
		evs[i] = filter.Attributes{
			"group":  filter.String(fmt.Sprintf("g%d", r.Intn(groups))),
			"price":  filter.Int(int64(r.Intn(10000))),
			"sym":    filter.String(fmt.Sprintf("S%d%d", r.Intn(100), r.Intn(10))),
			"region": filter.String(fmt.Sprintf("r%d", r.Intn(8))),
		}
	}
	return evs
}

// measureEngine times eng over the event set, returning mean ns/event, mean
// candidates/event, mean hits/event and the concatenated sorted ID sets
// (for cross-engine equivalence checking).
func measureEngine(eng filter.Engine, events []filter.Attributes) (nsPerEvent, cands, hits float64, all [][]vtime.SubscriberID) {
	buf := make([]vtime.SubscriberID, 0, 1024)
	totalCand := 0
	all = make([][]vtime.SubscriberID, len(events))
	start := time.Now()
	for i, ev := range events {
		var c int
		buf, c = eng.MatchAppend(buf[:0], ev)
		totalCand += c
		ids := make([]vtime.SubscriberID, len(buf))
		copy(ids, buf)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		all[i] = ids
		hits += float64(len(ids))
	}
	elapsed := time.Since(start)
	n := float64(len(events))
	return float64(elapsed.Nanoseconds()) / n, float64(totalCand) / n, hits / n, all
}

// RunMatchScaling sweeps subscription counts, measuring linear versus
// indexed matching on an identical population and event stream. Every run
// also cross-checks the two engines event by event, so a divergence fails
// the experiment rather than skewing its numbers.
func RunMatchScaling(p MatchScalingParams) (*MatchScalingResult, error) {
	if len(p.Sizes) == 0 {
		return nil, fmt.Errorf("match scaling: at least one size required")
	}
	if p.Events == 0 {
		p.Events = 200
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	res := &MatchScalingResult{}
	for _, n := range p.Sizes {
		r := rand.New(rand.NewSource(p.Seed))
		subs := matchWorkload(r, n)
		groups := n / 16
		if groups < 64 {
			groups = 64
		}
		events := matchEvents(r, p.Events, groups)

		linear := filter.NewLinearEngine()
		for i, sub := range subs {
			linear.Add(vtime.SubscriberID(i+1), sub)
		}
		buildStart := time.Now()
		indexed := matchidx.New()
		for i, sub := range subs {
			indexed.Add(vtime.SubscriberID(i+1), sub)
		}
		buildMs := float64(time.Since(buildStart).Nanoseconds()) / 1e6

		linNs, linCand, hits, linSets := measureEngine(linear, events)
		idxNs, idxCand, _, idxSets := measureEngine(indexed, events)
		for i := range linSets {
			if len(linSets[i]) != len(idxSets[i]) {
				return nil, fmt.Errorf("match scaling: engines diverge at %d subs, event %d: linear %d ids, indexed %d ids",
					n, i, len(linSets[i]), len(idxSets[i]))
			}
			for j := range linSets[i] {
				if linSets[i][j] != idxSets[i][j] {
					return nil, fmt.Errorf("match scaling: engines diverge at %d subs, event %d, position %d",
						n, i, j)
				}
			}
		}
		res.Points = append(res.Points, MatchScalingPoint{
			Subs:              n,
			LinearNsPerEvent:  linNs,
			IndexedNsPerEvent: idxNs,
			SpeedupX:          linNs / idxNs,
			LinearCandidates:  linCand,
			IndexedCandidates: idxCand,
			Hits:              hits,
			IndexedBuildMs:    buildMs,
		})
	}
	return res, nil
}
