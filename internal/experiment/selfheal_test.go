package experiment

import (
	"testing"
	"time"
)

// Reduced-scale self-healing run: 8 brokers (1 PHB + 3 mids + 4 SHBs),
// three kills of which one is permanent, zero driver re-parents. The full
// acceptance run (12+ brokers, 5 kills) is BenchmarkSelfHealing.
func TestSelfHealingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	res, err := RunSelfHealing(t.TempDir(), SelfHealingParams{
		Mids:           3,
		SHBs:           4,
		Kills:          3,
		PermanentKills: 1,
		Rate:           300,
		Step:           80 * time.Millisecond,
		KillDown:       200 * time.Millisecond,
		FailoverAfter:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("self-healing: %v (%+v)", err, res)
	}
	if res.Brokers != 8 {
		t.Errorf("brokers = %d, want 8", res.Brokers)
	}
	if res.Kills != 3 || res.PermanentKills != 1 || res.Restarts != res.Kills-res.PermanentKills {
		t.Errorf("kill schedule: %+v", res)
	}
	if res.Failovers == 0 || res.Repairs == 0 {
		t.Errorf("no automatic repairs recorded: %+v", res)
	}
	if res.RepairP50Ms <= 0 || res.RepairP99Ms < res.RepairP50Ms {
		t.Errorf("repair percentiles not sane: %+v", res)
	}
	if !res.Healthy || !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
		t.Errorf("invariants: %+v", res)
	}
	if res.Published == 0 {
		t.Errorf("nothing published: %+v", res)
	}
}
