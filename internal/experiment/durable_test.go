package experiment

import (
	"testing"
	"time"
)

func TestRunDurableThroughputShape(t *testing.T) {
	for _, mode := range []string{"always", "group"} {
		res, err := RunDurableThroughput(t.TempDir(), DurableThroughputParams{
			Publishers:    4,
			Events:        30,
			Mode:          mode,
			GroupMaxDelay: 200 * time.Microsecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		total := 4 * 30
		if res.Events != total || res.RecoveredEvents != total {
			t.Fatalf("%s: events=%d recovered=%d, want %d", mode, res.Events, res.RecoveredEvents, total)
		}
		if res.EventsPerSec <= 0 || res.Fsyncs <= 0 {
			t.Fatalf("%s: degenerate result %+v", mode, res)
		}
	}
	if _, err := RunDurableThroughput(t.TempDir(), DurableThroughputParams{Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestDurableThroughputAmortization pins the acceptance property on the
// group path: at several concurrent publishers, group commit issues
// measurably fewer fsyncs per acked event than forced logging.
func TestDurableThroughputAmortization(t *testing.T) {
	group, err := RunDurableThroughput(t.TempDir(), DurableThroughputParams{
		Publishers:    8,
		Events:        40,
		Mode:          "group",
		GroupMaxDelay: 300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if group.FsyncsPerEvent >= 0.75 {
		t.Fatalf("group commit fsyncs/event = %.3f, expected well below 1 (amortization failed)",
			group.FsyncsPerEvent)
	}
}
