package experiment

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// PartitionHealParams configures the partition-and-heal experiment.
type PartitionHealParams struct {
	// Severs is how many times the SHB↔PHB link is cut (0 = 5).
	Severs int
	// Subscribers is the durable subscriber count on the SHB (0 = 4).
	Subscribers int
	// Seed drives the fault injector (0 = 1).
	Seed int64
	// Rate is the publish rate in events/s (0 = 400).
	Rate int
	// HoldDown is how long each partition lasts (0 = 120ms).
	HoldDown time.Duration
	// Between is the healthy interval between severs (0 = 150ms).
	Between time.Duration
}

// PartitionHealResult is the outcome of the partition-and-heal run.
type PartitionHealResult struct {
	Published    int64
	Subscribers  int
	Severs       int           // partitions actually performed
	LinksKilled  int64         // connections the fault injector tore down
	Reconnects   uint64        // supervised upstream re-establishments
	MeanHeal     time.Duration // mean observed partition-lift → link-up time
	MaxHeal      time.Duration
	Gaps         int64 // gap deliveries (lost events) — must be 0
	Violations   int64 // ordering violations — must be 0
	AllDelivered bool  // every subscriber got every event exactly once
}

// RunPartitionHeal severs the SHB↔PHB overlay link repeatedly while a
// publisher streams events, and verifies the paper's §3.3 recovery story
// end to end: the supervised link redials with backoff, the broker resyncs
// its soft state (subscription re-announcement, pending-curiosity
// re-nacks), the knowledge/NACK path replays the partition gap from the
// PHB's log, and every durable subscriber sees every event exactly once in
// timestamp order. Brokers dial through a seeded faultnet decorator;
// clients use the undecorated transport, so only the inter-broker link is
// ever cut.
func RunPartitionHeal(dir string, p PartitionHealParams) (*PartitionHealResult, error) {
	if p.Severs == 0 {
		p.Severs = 5
	}
	if p.Subscribers == 0 {
		p.Subscribers = 4
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Rate == 0 {
		p.Rate = 400
	}
	if p.HoldDown == 0 {
		p.HoldDown = 120 * time.Millisecond
	}
	if p.Between == 0 {
		p.Between = 150 * time.Millisecond
	}

	var fnet *faultnet.Network
	c, err := BuildCluster(dir, Topology{
		SHBs:        1,
		Pubends:     2,
		DialTimeout: 500 * time.Millisecond,
		WrapBrokerTransport: func(t overlay.Transport) overlay.Transport {
			fnet = faultnet.New(t, p.Seed)
			return fnet
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &PartitionHealResult{Subscribers: p.Subscribers}

	type subState struct {
		sub      *client.Subscriber
		received atomic.Int64
	}
	var states []*subState
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < p.Subscribers; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID:          vtime.SubscriberID(i + 1),
			Filter:      `true`,
			AckInterval: 15 * time.Millisecond,
			Buffer:      1 << 15,
		})
		if err != nil {
			return nil, err
		}
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
			return nil, err
		}
		st := &subState{sub: sub}
		states = append(states, st)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case d := <-st.sub.Deliveries():
					if d.Kind == message.DeliverEvent {
						st.received.Add(1)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	// Publisher streams through every partition — its link to the PHB is
	// on the undecorated transport and never cut.
	pubc, err := client.NewPublisher(context.Background(), c.Transport, c.PHBAddr(), "partition")
	if err != nil {
		return nil, err
	}
	defer pubc.Close() //nolint:errcheck
	var published atomic.Int64
	pubStop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		ticker := time.NewTicker(time.Second / time.Duration(p.Rate))
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				seq := published.Add(1)
				//nolint:errcheck,gosec // acks drained lazily
				pubc.PublishAsync(message.Event{
					Attrs:   filter.Attributes{"seq": filter.Int(seq)},
					Payload: []byte("p"),
				}, vtime.PubendID(seq%2+1))
			case <-pubStop:
				return
			}
		}
	}()

	shb := c.SHBBroker(0)
	upstreamUp := func() bool {
		for _, st := range shb.Health() {
			if st.State != overlay.LinkUp {
				return false
			}
		}
		return true
	}

	// Sever loop: partition the PHB address (killing the live supervised
	// link and blocking redials), hold, heal, wait for the supervisor to
	// re-establish, repeat.
	var totalHeal time.Duration
	for i := 0; i < p.Severs; i++ {
		time.Sleep(p.Between)
		fnet.Partition(c.PHBAddr())
		res.Severs++
		time.Sleep(p.HoldDown)
		fnet.Heal()
		healStart := time.Now()
		deadline := time.Now().Add(10 * time.Second)
		for !upstreamUp() {
			if time.Now().After(deadline) {
				return res, fmt.Errorf("experiment: upstream link did not heal after sever %d: %+v",
					i+1, shb.Health())
			}
			time.Sleep(2 * time.Millisecond)
		}
		took := time.Since(healStart)
		totalHeal += took
		if took > res.MaxHeal {
			res.MaxHeal = took
		}
	}
	if res.Severs > 0 {
		res.MeanHeal = totalHeal / time.Duration(res.Severs)
	}

	// Quiesce: stop publishing, then wait until the recovery protocol has
	// replayed every partition gap to every subscriber.
	close(pubStop)
	<-pubDone
	res.Published = published.Load()
	drainDeadline := time.Now().Add(20 * time.Second)
	for {
		allDone := true
		for _, st := range states {
			if st.received.Load() < res.Published {
				allDone = false
				break
			}
		}
		if allDone || time.Now().After(drainDeadline) {
			res.AllDelivered = allDone
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	res.LinksKilled = fnet.Kills()
	for _, st := range shb.Health() {
		res.Reconnects += st.Reconnects
	}
	for _, st := range states {
		events, _, gaps, violations := st.sub.Stats()
		res.Gaps += gaps
		res.Violations += violations
		if events != res.Published {
			res.AllDelivered = false
		}
		st.sub.Disconnect() //nolint:errcheck,gosec // teardown
	}
	if !res.AllDelivered || res.Gaps > 0 || res.Violations > 0 {
		var counts []int64
		for _, st := range states {
			ev, _, _, _ := st.sub.Stats()
			counts = append(counts, ev)
		}
		return res, fmt.Errorf("experiment: partition-heal broke delivery: published=%d received=%v gaps=%d violations=%d",
			res.Published, counts, res.Gaps, res.Violations)
	}
	return res, nil
}
