package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/vtime"
)

// FilteringResult quantifies intermediate-broker filtering (section 1:
// "filtering of events at intermediate nodes ... improves network
// utilization"): the fraction of event transmissions on SHB links that the
// intermediate broker downgraded to silence because nothing below the link
// subscribed to them.
type FilteringResult struct {
	EventsForwarded int64
	EventsFiltered  int64
	SavedFraction   float64 // filtered / (filtered + forwarded)
	Gaps            int64
	Violations      int64
}

// RunFilteringAblation runs a PHB → intermediate → 2-SHB topology where
// each SHB's subscribers want only one of the four groups; three quarters
// of each link's event traffic should be filtered at the intermediate.
func RunFilteringAblation(dir string, measure time.Duration) (*FilteringResult, error) {
	if measure == 0 {
		measure = time.Second
	}
	c, err := BuildCluster(dir, Topology{
		SHBs:         2,
		Intermediate: true,
		Pubends:      PaperGroups,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// SHB 0 hosts group-0 subscribers; SHB 1 hosts group-1.
	var subs []*client.Subscriber
	for i := 0; i < 4; i++ {
		shb := i % 2
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID:          vtime.SubscriberID(i + 1),
			Filter:      GroupFilter(shb),
			AckInterval: 25 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(shb)); err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		go func(s *client.Subscriber) {
			for range s.Deliveries() { //nolint:revive // drain
			}
		}(sub)
	}
	defer func() {
		for _, s := range subs {
			s.Disconnect() //nolint:errcheck,gosec // teardown
		}
	}()

	load, err := StartPublisherLoad(c.Transport, c.PHBAddr(), PaperInputRate, PaperGroups, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	time.Sleep(measure)
	load.Stop()
	time.Sleep(50 * time.Millisecond)

	res := &FilteringResult{}
	mid := c.Mids[len(c.Mids)-1]
	res.EventsForwarded, res.EventsFiltered = mid.RelayStats()
	if total := res.EventsForwarded + res.EventsFiltered; total > 0 {
		res.SavedFraction = float64(res.EventsFiltered) / float64(total)
	}
	for _, s := range subs {
		_, _, gaps, v := s.Stats()
		res.Gaps += gaps
		res.Violations += v
	}
	return res, nil
}

// TortureResult is the outcome of the randomized fault-injection run.
type TortureResult struct {
	Published    int64
	Subscribers  int
	Crashes      int
	Churns       int
	Gaps         int64
	Violations   int64
	AllDelivered bool
}

// TortureParams configures the randomized crash/churn run.
type TortureParams struct {
	Subscribers int           // 0 = 6
	Duration    time.Duration // 0 = 3s of chaos
	Seed        int64
	Rate        int // events/s; 0 = 400
}

// RunTorture hammers a 2-broker system with randomized subscriber churn
// and SHB crash/restarts while publishing continuously, then verifies the
// full exactly-once contract: every subscriber received every event, in
// order, no duplicates, no gaps.
func RunTorture(dir string, p TortureParams) (*TortureResult, error) {
	if p.Subscribers == 0 {
		p.Subscribers = 6
	}
	if p.Duration == 0 {
		p.Duration = 3 * time.Second
	}
	if p.Rate == 0 {
		p.Rate = 400
	}
	c, err := BuildCluster(dir, Topology{SHBs: 1, Pubends: 2})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &TortureResult{Subscribers: p.Subscribers}
	rng := rand.New(rand.NewSource(p.Seed + 99))

	// Subscribers count their deliveries; all subscribe to everything so
	// the final count is exact.
	type subState struct {
		sub      *client.Subscriber
		received atomic.Int64
	}
	var states []*subState
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < p.Subscribers; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID:          vtime.SubscriberID(i + 1),
			Filter:      `true`,
			AckInterval: 15 * time.Millisecond,
			Buffer:      1 << 15,
		})
		if err != nil {
			return nil, err
		}
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
			return nil, err
		}
		st := &subState{sub: sub}
		states = append(states, st)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case d := <-st.sub.Deliveries():
					if d.Kind == message.DeliverEvent {
						st.received.Add(1)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	// Publisher: continuous, never stops during chaos.
	pubc, err := client.NewPublisher(context.Background(), c.Transport, c.PHBAddr(), "torture")
	if err != nil {
		return nil, err
	}
	defer pubc.Close() //nolint:errcheck
	var published atomic.Int64
	pubStop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		ticker := time.NewTicker(time.Second / time.Duration(p.Rate))
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				seq := published.Add(1)
				//nolint:errcheck,gosec // acks drained lazily
				pubc.PublishAsync(message.Event{
					Attrs:   filter.Attributes{"seq": filter.Int(seq)},
					Payload: []byte("t"),
				}, vtime.PubendID(seq%2+1))
			case <-pubStop:
				return
			}
		}
	}()

	// Chaos loop.
	deadline := time.Now().Add(p.Duration)
	for time.Now().Before(deadline) {
		switch rng.Intn(6) {
		case 0: // SHB crash + restart
			c.CrashSHB(0)
			time.Sleep(time.Duration(rng.Intn(100)+20) * time.Millisecond)
			if err := c.RestartSHB(0); err != nil {
				return nil, err
			}
			res.Crashes++
			// Reconnect everyone (their links died with the SHB).
			for _, st := range states {
				reconnect(c, st.sub)
			}
		default: // random subscriber churn
			st := states[rng.Intn(len(states))]
			st.sub.Disconnect() //nolint:errcheck,gosec // chaos
			time.Sleep(time.Duration(rng.Intn(60)+5) * time.Millisecond)
			reconnect(c, st.sub)
			res.Churns++
		}
		time.Sleep(time.Duration(rng.Intn(150)+50) * time.Millisecond)
	}

	// Quiesce: stop publishing, wait for full delivery everywhere.
	close(pubStop)
	<-pubDone
	res.Published = published.Load()
	drainDeadline := time.Now().Add(20 * time.Second)
	for {
		allDone := true
		for _, st := range states {
			if st.received.Load() < res.Published {
				allDone = false
				break
			}
		}
		if allDone || time.Now().After(drainDeadline) {
			res.AllDelivered = allDone
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for _, st := range states {
		events, _, gaps, violations := st.sub.Stats()
		res.Gaps += gaps
		res.Violations += violations
		if events != res.Published {
			res.AllDelivered = false
		}
		st.sub.Disconnect() //nolint:errcheck,gosec // teardown
	}
	if !res.AllDelivered {
		var counts []int64
		for _, st := range states {
			ev, _, _, _ := st.sub.Stats()
			counts = append(counts, ev)
		}
		return res, fmt.Errorf("experiment: torture lost events: published=%d received=%v",
			res.Published, counts)
	}
	return res, nil
}

// reconnect retries until the (possibly restarting) SHB accepts.
func reconnect(c *Cluster, sub *client.Subscriber) {
	for attempt := 0; attempt < 400; attempt++ {
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err == nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
