package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// ShardThroughputParams configures a multi-pubend saturation run used to
// compare the sharded broker event loop against the serialized baseline
// (Shards = 1). Unlike the paced figure-4 workload, every pubend is driven
// as fast as its publish window allows, so broker-side routing is the
// bottleneck and the shard count is the variable under test.
type ShardThroughputParams struct {
	// Pubends hosted by the PHB, each flooded by a dedicated publisher
	// (0 = 4; the paper's pubend count and the minimum for the
	// experiment to exercise cross-shard routing).
	Pubends int
	// Shards is the per-broker event-loop shard count (0 = GOMAXPROCS,
	// 1 = the serialized single-loop baseline).
	Shards int
	// Window is the number of outstanding async publishes each publisher
	// keeps in flight (0 = 64).
	Window int
	// Payload bytes per event (0 = PaperPayloadBytes).
	Payload int
	// Warmup before the measurement window opens (0 = 300ms).
	Warmup time.Duration
	// Measure is the measurement window (0 = 1s).
	Measure time.Duration
	// TCP runs the cluster over loopback TCP, exercising the framed
	// write-coalescing wire path end-to-end.
	TCP bool
	// SHBs downstream of the PHB (0 = 1).
	SHBs int
}

// ShardThroughputResult is one row of the shard-scaling comparison.
type ShardThroughputResult struct {
	Shards  int
	Pubends int
	// PublishRate is acked publishes/s across all pubends during the
	// measurement window; DeliveryRate is events/s delivered across all
	// subscribers.
	PublishRate  float64
	DeliveryRate float64
	Published    int64
	Delivered    int64
	Gaps         int64
	Violations   int64
}

// RunShardThroughput floods every pubend through a windowed async
// publisher while one durable subscriber per pubend drains the matching
// group, and reports aggregate publish and delivery rates. Exactly-once
// invariants (violations, unexpected gaps) are checked as in every other
// experiment: a faster-but-wrong shard configuration must fail, not win.
func RunShardThroughput(dir string, p ShardThroughputParams) (*ShardThroughputResult, error) {
	if p.Pubends == 0 {
		p.Pubends = 4
	}
	if p.Window == 0 {
		p.Window = 64
	}
	if p.Payload == 0 {
		p.Payload = PaperPayloadBytes
	}
	if p.Warmup == 0 {
		p.Warmup = 300 * time.Millisecond
	}
	if p.Measure == 0 {
		p.Measure = time.Second
	}
	shbs := p.SHBs
	if shbs == 0 {
		shbs = 1
	}
	c, err := BuildCluster(dir, Topology{
		SHBs:    shbs,
		Pubends: p.Pubends,
		Tuning:  topology.Tuning{Shards: p.Shards},
		TCP:     p.TCP,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	pool, err := StartSubscriberPool(c, PoolOptions{
		N:      p.Pubends,
		Groups: p.Pubends,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Stop()

	var acked metrics.Counter
	stop := make(chan struct{})
	errs := make(chan error, p.Pubends)
	done := make(chan struct{}, p.Pubends)
	for i := 0; i < p.Pubends; i++ {
		target := vtime.PubendID(i + 1)
		group := groupName(i)
		go func() {
			defer func() { done <- struct{}{} }()
			errs <- floodPubend(c, target, group, p, stop, &acked)
		}()
	}
	stopFlood := func() {
		close(stop)
		for i := 0; i < p.Pubends; i++ {
			<-done
		}
	}

	time.Sleep(p.Warmup)
	ackedBefore := acked.Load()
	recvBefore := pool.Received()
	time.Sleep(p.Measure)
	ackedAfter := acked.Load()
	recvAfter := pool.Received()
	stopFlood()

	for i := 0; i < p.Pubends; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	res := &ShardThroughputResult{
		Shards:       c.PHB.Shards(),
		Pubends:      p.Pubends,
		PublishRate:  float64(ackedAfter-ackedBefore) / p.Measure.Seconds(),
		DeliveryRate: float64(recvAfter-recvBefore) / p.Measure.Seconds(),
		Published:    ackedAfter,
		Delivered:    recvAfter,
		Gaps:         pool.Gaps(),
		Violations:   pool.Violations(),
	}
	if res.Violations != 0 {
		return res, fmt.Errorf("shard throughput: %d ordering violations", res.Violations)
	}
	return res, nil
}

// floodPubend keeps p.Window async publishes outstanding against one
// pubend until stop closes, counting acks. Events carry the pubend's group
// attribute so exactly one pool subscriber matches them.
func floodPubend(c *Cluster, target vtime.PubendID, group string, p ShardThroughputParams, stop chan struct{}, acked *metrics.Counter) error {
	pub, err := client.NewPublisher(context.Background(), c.Transport, c.PHBAddr(), fmt.Sprintf("flood%d", target))
	if err != nil {
		return err
	}
	defer pub.Close() //nolint:errcheck,gosec // shutdown
	payload := make([]byte, p.Payload)
	ev := message.Event{
		Attrs:   filter.Attributes{"group": filter.String(group)},
		Payload: payload,
	}
	inflight := make(chan (<-chan *message.PublishAck), p.Window)
	for {
		select {
		case <-stop:
			// Drain the window so every counted ack corresponds to a
			// logged publish.
			close(inflight)
			for ch := range inflight {
				if _, ok := <-ch; ok {
					acked.Inc()
				}
			}
			return nil
		default:
		}
		ch, err := pub.PublishAsync(ev, target)
		if err != nil {
			return fmt.Errorf("flood pubend %d: %w", target, err)
		}
		select {
		case inflight <- ch:
		default:
			// Window full: wait for the oldest ack before admitting the
			// new publish.
			if _, ok := <-(<-inflight); !ok {
				return fmt.Errorf("flood pubend %d: connection lost", target)
			}
			acked.Inc()
			inflight <- ch
		}
	}
}
