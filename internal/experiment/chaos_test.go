package experiment

import (
	"testing"
	"time"
)

// Reduced-scale topology chaos: 6 brokers (1 PHB + 2 mids + 3 SHBs), two
// crashes and two live re-parents under traffic. The full acceptance run
// (12+ brokers, 5 kills + 5 re-parents) is BenchmarkTopologyChaos.
func TestTopologyChaosSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	res, err := RunTopologyChaos(t.TempDir(), TopologyChaosParams{
		Mids:      2,
		SHBs:      3,
		Kills:     2,
		Reparents: 2,
		Rate:      300,
		Step:      80 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos: %v (%+v)", err, res)
	}
	if res.Brokers != 6 {
		t.Errorf("brokers = %d, want 6", res.Brokers)
	}
	if res.Kills != 2 || res.Reparents != 2 || res.Restarts != res.Kills {
		t.Errorf("mutations: %+v", res)
	}
	if !res.Healthy || !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
		t.Errorf("invariants: %+v", res)
	}
	if res.Published == 0 {
		t.Errorf("nothing published: %+v", res)
	}
}

// The operator-driven chaos must stay green with automatic fail-over
// armed: driver kills/re-parents and self-healing race each other, and
// exactly-once still holds.
func TestTopologyChaosWithFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	res, err := RunTopologyChaos(t.TempDir(), TopologyChaosParams{
		Mids:      2,
		SHBs:      3,
		Kills:     2,
		Reparents: 2,
		Rate:      300,
		Step:      80 * time.Millisecond,
		Failover:  true,
	})
	if err != nil {
		t.Fatalf("chaos with failover: %v (%+v)", err, res)
	}
	if !res.Healthy || !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
		t.Errorf("invariants: %+v", res)
	}
}
