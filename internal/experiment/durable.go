package experiment

// Durable-throughput experiment: how many fully durable publishes per
// second do N concurrent publishers sustain, and how many fsyncs does each
// acked event cost? Compares the per-publish forced log ("always" — the
// paper's one-fsync-per-event PHB regime) against the group-commit
// pipeline ("group"), which batches concurrent appends and issues one
// fsync per batch.

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/pubend"
)

// DurableThroughputParams configures one durable-throughput run.
type DurableThroughputParams struct {
	// Publishers is the number of concurrent publisher goroutines
	// (0 = 8, the acceptance floor for fsync amortization).
	Publishers int
	// Events is the number of events each publisher logs (0 = 200).
	Events int
	// PayloadBytes sizes each event payload (0 = 128).
	PayloadBytes int
	// Mode selects the durability regime: "always" (one fsync per
	// publish) or "group" (group commit). Empty means "group".
	Mode string
	// GroupMaxDelay is the optional linger bound for group mode.
	GroupMaxDelay time.Duration
}

// DurableThroughputResult is the outcome of one run.
type DurableThroughputResult struct {
	Mode           string  `json:"mode"`
	Publishers     int     `json:"publishers"`
	Events         int     `json:"events"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Fsyncs         int64   `json:"fsyncs"`
	FsyncsPerEvent float64 `json:"fsyncs_per_event"`
	// RecoveredEvents is the pubend's event count after a full volume
	// close and reopen: it must equal Events×Publishers, proving no
	// acked publish was lost.
	RecoveredEvents int `json:"recovered_events"`
}

// RunDurableThroughput drives N concurrent publishers through one pubend
// on a freshly created volume (no network: the experiment isolates the
// durable write path), measures throughput and fsyncs/event, then crashes
// the volume shut and recovers it to verify every acked event survived.
func RunDurableThroughput(dir string, p DurableThroughputParams) (*DurableThroughputResult, error) {
	if p.Publishers == 0 {
		p.Publishers = 8
	}
	if p.Events == 0 {
		p.Events = 200
	}
	if p.PayloadBytes == 0 {
		p.PayloadBytes = 128
	}
	if p.Mode == "" {
		p.Mode = "group"
	}

	opts := logvol.Options{GroupMaxDelay: p.GroupMaxDelay}
	var syncEvery bool
	switch p.Mode {
	case "always":
		// True per-append forced logging: every record fsyncs inline
		// before the append returns — the paper's one-fsync-per-event
		// PHB regime, and the baseline group commit is measured against.
		opts.Sync = logvol.SyncAlways
	case "group":
		opts.Sync = logvol.SyncGroup
		syncEvery = true
	default:
		return nil, fmt.Errorf("durable-throughput: unknown mode %q", p.Mode)
	}

	volPath := filepath.Join(dir, "durable-"+p.Mode+".log")
	vol, err := logvol.Open(volPath, opts)
	if err != nil {
		return nil, err
	}
	pe, err := pubend.New(pubend.Options{ID: 1, Volume: vol, SyncEveryPublish: syncEvery})
	if err != nil {
		vol.Close() //nolint:errcheck,gosec // failed setup
		return nil, err
	}

	payload := make([]byte, p.PayloadBytes)
	attrs := filter.Attributes{"topic": filter.String("durability")}
	baseSyncs := vol.Syncs()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	start := time.Now()
	for w := 0; w < p.Publishers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < p.Events; i++ {
				if _, err := pe.Publish(message.Event{Attrs: attrs, Payload: payload}); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		vol.Close() //nolint:errcheck,gosec // failed run
		return nil, firstErr
	}

	total := p.Publishers * p.Events
	fsyncs := vol.Syncs() - baseSyncs
	res := &DurableThroughputResult{
		Mode:           p.Mode,
		Publishers:     p.Publishers,
		Events:         total,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
		EventsPerSec:   float64(total) / elapsed.Seconds(),
		Fsyncs:         fsyncs,
		FsyncsPerEvent: float64(fsyncs) / float64(total),
	}

	// Crash consistency: close, reopen, recover — every acked publish
	// must still be there.
	if err := vol.Close(); err != nil {
		return nil, err
	}
	vol2, err := logvol.Open(volPath, opts)
	if err != nil {
		return nil, err
	}
	defer vol2.Close() //nolint:errcheck
	pe2, err := pubend.New(pubend.Options{ID: 1, Volume: vol2})
	if err != nil {
		return nil, err
	}
	res.RecoveredEvents = pe2.EventCount()
	if res.RecoveredEvents != total {
		return nil, fmt.Errorf("durable-throughput: recovered %d events, published %d (acked event lost)",
			res.RecoveredEvents, total)
	}
	return res, nil
}
