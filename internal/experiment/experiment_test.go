package experiment

import (
	"fmt"
	"testing"
	"time"
)

// The experiment tests run scaled-down versions of every paper experiment
// and assert the qualitative shapes the paper reports, not its absolute
// numbers. The full-size runs live behind cmd/benchrunner and the root
// benchmarks.

func TestRunLatencyShape(t *testing.T) {
	// The paper's forced-log latency (44 ms) against a multi-hop path;
	// scaled-down log latencies drown in timer noise on loopback.
	res, err := RunLatency(t.TempDir(), 3, 30, 44*time.Millisecond, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithLogging.Mean < 44*time.Millisecond {
		t.Errorf("with-logging mean %v below the forced-log latency", res.WithLogging.Mean)
	}
	if res.WithoutLogging.Mean >= res.WithLogging.Mean {
		t.Errorf("logging did not dominate: %v vs %v", res.WithoutLogging.Mean, res.WithLogging.Mean)
	}
	// Paper: 44 of 50 ms (88%) is logging; our scaled version must also
	// be logging-dominated.
	if res.LoggingShareMean < 0.5 {
		t.Errorf("logging share = %.2f, want > 0.5", res.LoggingShareMean)
	}
}

func TestRunScalabilitySingleBroker(t *testing.T) {
	res, err := RunScalability(t.TempDir(), ScalabilityParams{
		SHBs:       0,
		SubsPerSHB: 4,
		Warmup:     300 * time.Millisecond,
		Measure:    700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 subscribers × (800/4) ev/s = 800 ev/s aggregate target.
	target := float64(res.InputRate) * float64(res.Subscribers) / PaperGroups
	if res.AggregateRate < target*0.6 || res.AggregateRate > target*1.4 {
		t.Errorf("aggregate rate %.0f ev/s far from target %.0f", res.AggregateRate, target)
	}
	if res.Violations != 0 || res.Gaps != 0 {
		t.Errorf("violations=%d gaps=%d", res.Violations, res.Gaps)
	}
}

func TestRunScalabilityWithChurn(t *testing.T) {
	res, err := RunScalability(t.TempDir(), ScalabilityParams{
		SHBs:        1,
		SubsPerSHB:  4,
		Warmup:      300 * time.Millisecond,
		Measure:     1200 * time.Millisecond,
		Disconnect:  true,
		ChurnPeriod: 600 * time.Millisecond,
		ChurnDown:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Under moderate churn the paper keeps ≈88% of the no-churn rate;
	// assert we stay within a loose band and lose nothing.
	target := float64(res.InputRate) * float64(res.Subscribers) / PaperGroups
	if res.AggregateRate < target*0.5 {
		t.Errorf("churn rate %.0f ev/s collapsed vs target %.0f", res.AggregateRate, target)
	}
	if res.Violations != 0 || res.Gaps != 0 {
		t.Errorf("violations=%d gaps=%d", res.Violations, res.Gaps)
	}
}

func TestRunCatchupRates(t *testing.T) {
	res, err := RunCatchupRates(t.TempDir(), CatchupRatesParams{
		Subscribers: 4,
		Duration:    2 * time.Second,
		ChurnPeriod: 800 * time.Millisecond,
		ChurnDown:   80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6: latestDelivered advances at ~1000 tick-ms per second of
	// real time, independent of disconnections.
	if res.LDRateMean < 600 || res.LDRateMean > 1400 {
		t.Errorf("latestDelivered rate %.0f tick-ms/s, want ≈1000", res.LDRateMean)
	}
	// Figure 5: reconnecting subscribers complete catchup.
	if len(res.CatchupDurations) == 0 {
		t.Error("no catchup durations recorded")
	}
	if res.Violations != 0 || res.Gaps != 0 {
		t.Errorf("violations=%d gaps=%d", res.Violations, res.Gaps)
	}
}

func TestRunPFSBenchShape(t *testing.T) {
	res, err := RunPFSBench(t.TempDir(), PFSBenchParams{
		Events:      2000,
		Subscribers: 20,
		// default match = 5/event
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 25× less data, >5× faster. The data ratio is determined by
	// the record layout, so it reproduces tightly; the speed ratio is
	// hardware-dependent, so assert it loosely.
	wantData := float64(5*438) / float64(8+16*5+24) // payload+headers vs record+framing
	if res.DataReductionX < wantData*0.5 {
		t.Errorf("data reduction %.1fx, want ≳%.0fx", res.DataReductionX, wantData*0.5)
	}
	if res.SpeedupX < 1.5 {
		t.Errorf("PFS speedup %.1fx, want > 1.5x", res.SpeedupX)
	}
}

func TestRunPFSBenchImprecise(t *testing.T) {
	precise, err := RunPFSBench(t.TempDir(), PFSBenchParams{Events: 1500, Subscribers: 20})
	if err != nil {
		t.Fatal(err)
	}
	imprecise, err := RunPFSBench(t.TempDir(), PFSBenchParams{
		Events: 1500, Subscribers: 20, ImpreciseBucket: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if imprecise.PFSBytes >= precise.PFSBytes {
		t.Errorf("imprecise mode wrote more: %d vs %d bytes", imprecise.PFSBytes, precise.PFSBytes)
	}
}

func TestRunJMSShape(t *testing.T) {
	small, err := RunJMS(t.TempDir(), JMSParams{
		Subscribers: 4, Connections: 4,
		Measure: time.Second, InputRate: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.AggregateRate <= 0 {
		t.Fatalf("no JMS throughput: %+v", small)
	}
	large, err := RunJMS(t.TempDir(), JMSParams{
		Subscribers: 16, Connections: 4,
		Measure: time.Second, InputRate: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Section 5.2's shape: more subscribers batch better, so aggregate
	// auto-ack throughput grows (4K@25 → 7.6K@200 in the paper).
	if large.AggregateRate <= small.AggregateRate {
		t.Errorf("aggregate rate did not grow with subscribers: %.0f vs %.0f",
			large.AggregateRate, small.AggregateRate)
	}
	if large.UpdatesPerTx <= small.UpdatesPerTx {
		t.Errorf("batching factor did not grow: %.1f vs %.1f",
			large.UpdatesPerTx, small.UpdatesPerTx)
	}
}

func TestRunFailoverShape(t *testing.T) {
	res, err := RunFailover(t.TempDir(), FailoverParams{
		Subscribers: 8,
		Machines:    2,
		Down:        300 * time.Millisecond,
		PreRun:      800 * time.Millisecond,
		PostRun:     1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7: after restart the constream recovers at a much higher
	// slope than normal (paper: ≈5×); assert a clear speedup.
	if res.RecoveryLDRate < res.NormalLDRate*1.3 {
		t.Errorf("recovery slope %.0f not above normal %.0f tick-ms/s",
			res.RecoveryLDRate, res.NormalLDRate)
	}
	// All subscribers eventually caught up (4 pubends × 8 subs streams).
	if len(res.CatchupDur) == 0 {
		t.Error("no catchup completions recorded")
	}
	// Nack consolidation kept upstream traffic below the total wanted.
	if res.NackTicksWanted > 0 && res.NackTicksSent > res.NackTicksWanted {
		t.Errorf("consolidation regressed: sent %d > wanted %d",
			res.NackTicksSent, res.NackTicksWanted)
	}
	if res.Violations != 0 || res.Gaps != 0 {
		t.Errorf("violations=%d gaps=%d", res.Violations, res.Gaps)
	}
	if res.LDSeries.Len() == 0 || len(res.MachineRates) != 2 {
		t.Error("missing series")
	}
}

func TestRunEarlyRelease(t *testing.T) {
	res, err := RunEarlyRelease(t.TempDir(), 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.GapsDelivered == 0 {
		t.Error("no gap delivered")
	}
	if res.EventsAfter == 0 {
		t.Error("no live events after gap")
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
}

func TestRunFilteringAblation(t *testing.T) {
	res, err := RunFilteringAblation(t.TempDir(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Each SHB link wants 1 of 4 groups: ~3/4 of event traffic filtered.
	if res.SavedFraction < 0.5 || res.SavedFraction > 0.9 {
		t.Errorf("filtered fraction %.2f, want ≈0.75", res.SavedFraction)
	}
	if res.Violations != 0 || res.Gaps != 0 {
		t.Errorf("violations=%d gaps=%d", res.Violations, res.Gaps)
	}
}

func TestRunTorture(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			res, err := RunTorture(t.TempDir(), TortureParams{
				Subscribers: 5,
				Duration:    2 * time.Second,
				Seed:        seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDelivered || res.Violations != 0 || res.Gaps != 0 {
				t.Fatalf("torture: %+v", res)
			}
			if res.Crashes+res.Churns == 0 {
				t.Error("chaos too tame")
			}
			t.Logf("torture: published=%d crashes=%d churns=%d — exactly-once held",
				res.Published, res.Crashes, res.Churns)
		})
	}
}
