package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// LatencyResult reproduces the paper's end-to-end latency claim (section
// 5, result 1): ~50 ms over a 5-hop broker network, of which ~44 ms is PHB
// event logging.
type LatencyResult struct {
	Hops             int
	Events           int
	WithLogging      LatencyStats // PHB forced-log latency enabled
	WithoutLogging   LatencyStats // pure network/broker path
	LoggingShareMean float64      // fraction of end-to-end mean due to logging
}

// LatencyStats summarizes one latency distribution.
type LatencyStats struct {
	Mean, P50, P95, Max time.Duration
}

func summarize(h *metrics.Histogram) LatencyStats {
	return LatencyStats{
		Mean: h.Mean(),
		P50:  h.Quantile(0.5),
		P95:  h.Quantile(0.95),
		Max:  h.Max(),
	}
}

// RunLatency measures publish→delivery latency over a hops-node chain,
// with and without the PHB's forced-log latency (paper: 44 ms), and with
// linkLatency per overlay hop (paper: the residual ~6 ms over 5 hops).
func RunLatency(dir string, hops, events int, logLatency, linkLatency time.Duration) (*LatencyResult, error) {
	if hops < 2 {
		return nil, fmt.Errorf("experiment: latency needs >= 2 hops, got %d", hops)
	}
	res := &LatencyResult{Hops: hops, Events: events}
	for _, logging := range []bool{true, false} {
		ll := time.Duration(0)
		if logging {
			ll = logLatency
		}
		hist, err := runLatencyOnce(fmt.Sprintf("%s/log-%v", dir, logging), hops, events, ll, linkLatency)
		if err != nil {
			return nil, err
		}
		if logging {
			res.WithLogging = summarize(hist)
		} else {
			res.WithoutLogging = summarize(hist)
		}
	}
	if res.WithLogging.Mean > 0 {
		res.LoggingShareMean = float64(res.WithLogging.Mean-res.WithoutLogging.Mean) /
			float64(res.WithLogging.Mean)
	}
	return res, nil
}

func runLatencyOnce(dir string, hops, events int, logLatency, linkLatency time.Duration) (*metrics.Histogram, error) {
	c, err := BuildCluster(dir, Topology{
		SHBs:              1,
		Chain:             hops - 2,
		Pubends:           1,
		PublishLogLatency: logLatency,
		LinkLatency:       linkLatency,
		TickInterval:      time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: `true`, AckInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
		return nil, err
	}
	defer sub.Disconnect() //nolint:errcheck

	pub, err := client.NewPublisher(context.Background(), c.Transport, c.PHBAddr(), "lat")
	if err != nil {
		return nil, err
	}
	defer pub.Close() //nolint:errcheck

	hist := metrics.NewHistogram().Mirror("gryphon_experiment_e2e_latency_seconds",
		"End-to-end publish-to-deliver latency measured by the experiment harness.",
		telemetry.DefBuckets)
	var mu sync.Mutex
	sent := make(map[int64]time.Time, events)
	done := make(chan struct{})
	go func() {
		defer close(done)
		received := 0
		for received < events {
			d, ok := <-sub.Deliveries()
			if !ok {
				return
			}
			if d.Kind != message.DeliverEvent {
				continue
			}
			now := time.Now()
			seq := d.Event.Attrs["seq"].IntVal()
			mu.Lock()
			if t0, ok := sent[seq]; ok {
				hist.Observe(now.Sub(t0))
				received++
			}
			mu.Unlock()
		}
	}()
	for i := 0; i < events; i++ {
		mu.Lock()
		sent[int64(i)] = time.Now()
		mu.Unlock()
		if _, _, err := pub.Publish(message.Event{
			Attrs:   filter.Attributes{"seq": filter.Int(int64(i))},
			Payload: make([]byte, PaperPayloadBytes),
		}); err != nil {
			return nil, err
		}
		// Modest inter-publish gap so latencies do not queue behind
		// each other (the paper measures at low rate).
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("experiment: latency run timed out (%d/%d)", hist.Count(), events)
	}
	return hist, nil
}

// ScalabilityResult is one bar of figure 4.
type ScalabilityResult struct {
	SHBs          int // 0 = single combined broker
	Subscribers   int
	Disconnect    bool
	InputRate     int     // events/s published
	AggregateRate float64 // events/s delivered across all subscribers
	PerSubRate    float64
	Gaps          int64
	Violations    int64
}

// ScalabilityParams configures a figure-4 run.
type ScalabilityParams struct {
	SHBs         int // 0 = single combined broker
	SubsPerSHB   int
	InputRate    int           // 0 = PaperInputRate
	Warmup       time.Duration // 0 = 500ms
	Measure      time.Duration // 0 = 2s
	Disconnect   bool
	ChurnPeriod  time.Duration // 0 = 3s   (paper: 300s, scaled 1:100)
	ChurnDown    time.Duration // 0 = 50ms (paper: 5s, scaled 1:100)
	Intermediate bool
	TickInterval time.Duration
}

// RunScalability measures aggregate delivery rate for one figure-4
// configuration.
func RunScalability(dir string, p ScalabilityParams) (*ScalabilityResult, error) {
	if p.InputRate == 0 {
		p.InputRate = PaperInputRate
	}
	if p.Warmup == 0 {
		p.Warmup = 500 * time.Millisecond
	}
	if p.Measure == 0 {
		p.Measure = 2 * time.Second
	}
	if p.ChurnPeriod == 0 {
		p.ChurnPeriod = 3 * time.Second
	}
	if p.ChurnDown == 0 {
		p.ChurnDown = 50 * time.Millisecond
	}
	c, err := BuildCluster(dir, Topology{
		SHBs:         p.SHBs,
		Intermediate: p.Intermediate && p.SHBs > 1,
		Pubends:      PaperGroups,
		TickInterval: p.TickInterval,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	nSHB := p.SHBs
	if nSHB == 0 {
		nSHB = 1
	}
	pool, err := StartSubscriberPool(c, PoolOptions{
		N:          p.SubsPerSHB * nSHB,
		Disconnect: p.Disconnect,
		Period:     p.ChurnPeriod,
		Down:       p.ChurnDown,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Stop()

	load, err := StartPublisherLoad(c.Transport, c.PHBAddr(), p.InputRate, PaperGroups, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	defer load.Stop()

	time.Sleep(p.Warmup)
	before := pool.Received()
	time.Sleep(p.Measure)
	after := pool.Received()

	return &ScalabilityResult{
		SHBs:          p.SHBs,
		Subscribers:   p.SubsPerSHB * nSHB,
		Disconnect:    p.Disconnect,
		InputRate:     p.InputRate,
		AggregateRate: float64(after-before) / p.Measure.Seconds(),
		PerSubRate:    float64(after-before) / p.Measure.Seconds() / float64(p.SubsPerSHB*nSHB),
		Gaps:          pool.Gaps(),
		Violations:    pool.Violations(),
	}, nil
}

// CatchupRatesResult backs figures 5 and 6: per-reconnect catchup
// durations, and the advance rates of latestDelivered(p) and released(p)
// in tick-milliseconds per second of real time.
type CatchupRatesResult struct {
	CatchupDurations []time.Duration
	CatchupMean      time.Duration
	CatchupP95       time.Duration
	LDRate           *metrics.Series // figure 6 top
	RelRate          *metrics.Series // figure 6 bottom
	LDRateMean       float64
	RelRateMin       float64
	Gaps             int64
	Violations       int64
}

// CatchupRatesParams configures a figures-5/6 run.
type CatchupRatesParams struct {
	Subscribers int           // 0 = 16
	Duration    time.Duration // 0 = 4s
	ChurnPeriod time.Duration // 0 = 1.5s
	ChurnDown   time.Duration // 0 = 100ms
	Sample      time.Duration // 0 = 100ms
}

// RunCatchupRates runs the 1-PHB/1-SHB disconnection experiment behind
// figures 5 and 6.
func RunCatchupRates(dir string, p CatchupRatesParams) (*CatchupRatesResult, error) {
	if p.Subscribers == 0 {
		p.Subscribers = 16
	}
	if p.Duration == 0 {
		p.Duration = 4 * time.Second
	}
	if p.ChurnPeriod == 0 {
		p.ChurnPeriod = 1500 * time.Millisecond
	}
	if p.ChurnDown == 0 {
		p.ChurnDown = 100 * time.Millisecond
	}
	if p.Sample == 0 {
		p.Sample = 100 * time.Millisecond
	}
	res := &CatchupRatesResult{}
	var mu sync.Mutex
	caught := map[vtime.SubscriberID]time.Duration{}
	c, err := BuildCluster(dir, Topology{
		SHBs:    1,
		Pubends: PaperGroups,
		OnCaughtUp: func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			// A reconnect spawns one catchup stream per pubend;
			// record the slowest per (sub, reconnect) by keeping
			// the max seen since last report.
			if took > caught[sub] {
				caught[sub] = took
			}
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	pool, err := StartSubscriberPool(c, PoolOptions{
		N:          p.Subscribers,
		Disconnect: true,
		Period:     p.ChurnPeriod,
		Down:       p.ChurnDown,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Stop()
	load, err := StartPublisherLoad(c.Transport, c.PHBAddr(), PaperInputRate, PaperGroups, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	defer load.Stop()

	// Sample latestDelivered and released for pubend 1 (as in figure 6,
	// which plots 1 of the 4 pubends).
	start := time.Now()
	shb := c.SHBBroker(0)
	ldCounter, relCounter := &metrics.Counter{}, &metrics.Counter{}
	ldSampler := metrics.NewRateSampler("latestDelivered_tickms_per_s", ldCounter, start)
	relSampler := metrics.NewRateSampler("released_tickms_per_s", relCounter, start)
	deadline := time.Now().Add(p.Duration)
	for time.Now().Before(deadline) {
		time.Sleep(p.Sample)
		ldCounter.Add(shb.LatestDelivered(1).TickMillis() - ldCounter.Load())
		relCounter.Add(shb.Released(1).TickMillis() - relCounter.Load())
		now := time.Now()
		ldSampler.Sample(now)
		relSampler.Sample(now)
		// Harvest completed catchups.
		mu.Lock()
		for sub, took := range caught {
			res.CatchupDurations = append(res.CatchupDurations, took)
			delete(caught, sub)
		}
		mu.Unlock()
	}
	res.LDRate = ldSampler.Series()
	res.RelRate = relSampler.Series()
	res.LDRateMean = res.LDRate.Mean()
	res.RelRateMin = seriesMin(res.RelRate)
	res.Gaps = pool.Gaps()
	res.Violations = pool.Violations()
	if n := len(res.CatchupDurations); n > 0 {
		h := metrics.NewHistogram()
		for _, d := range res.CatchupDurations {
			h.Observe(d)
		}
		res.CatchupMean = h.Mean()
		res.CatchupP95 = h.Quantile(0.95)
	}
	return res, nil
}

func seriesMin(s *metrics.Series) float64 {
	pts := s.Points()
	if len(pts) == 0 {
		return 0
	}
	min := pts[0].V
	for _, p := range pts {
		if p.V < min {
			min = p.V
		}
	}
	return min
}
