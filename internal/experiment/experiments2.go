package experiment

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/jms"
	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/pubend"
	"repro/internal/vtime"
)

// PFSBenchResult is the section 5.1.2 microbenchmark: PFS writes versus
// logging the event once per matching subscriber at the SHB. The paper
// reports the PFS logging 25× less data and finishing over 5× faster.
type PFSBenchResult struct {
	Events         int
	Subscribers    int
	MatchPerEvent  int
	PFSDuration    time.Duration
	EventLogDur    time.Duration
	PFSBytes       int64
	EventLogBytes  int64
	SpeedupX       float64
	DataReductionX float64
	ImpreciseMode  bool
}

// PFSBenchParams configures the microbenchmark. The paper's workload:
// 800 ev/s input, 100 subscribers, 200 ev/s per subscriber (so each event
// matches 25 subscribers), 418-byte events, a sync every 200 events per
// subscriber, 100 s of workload (80000 events).
type PFSBenchParams struct {
	Events          int // 0 = 8000 (10s of paper workload)
	Subscribers     int // 0 = 100
	MatchPerEvent   int // 0 = Subscribers/4
	EventBytes      int // 0 = 418
	SyncEvery       int // 0 = 200
	ImpreciseBucket vtime.Timestamp
}

// RunPFSBench runs the microbenchmark.
func RunPFSBench(dir string, p PFSBenchParams) (*PFSBenchResult, error) {
	if p.Events == 0 {
		p.Events = 8000
	}
	if p.Subscribers == 0 {
		p.Subscribers = 100
	}
	if p.MatchPerEvent == 0 {
		p.MatchPerEvent = p.Subscribers / 4
	}
	if p.EventBytes == 0 {
		p.EventBytes = 418
	}
	if p.SyncEvery == 0 {
		p.SyncEvery = 200
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	res := &PFSBenchResult{
		Events:        p.Events,
		Subscribers:   p.Subscribers,
		MatchPerEvent: p.MatchPerEvent,
		ImpreciseMode: p.ImpreciseBucket > 0,
	}

	// Matching subscribers rotate so every subscriber receives an equal
	// share, as the group workload does.
	matched := func(seq int) []vtime.SubscriberID {
		out := make([]vtime.SubscriberID, p.MatchPerEvent)
		for j := range out {
			out[j] = vtime.SubscriberID((seq*p.MatchPerEvent + j) % p.Subscribers)
		}
		return out
	}

	// --- PFS side ---
	{
		vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
		if err != nil {
			return nil, err
		}
		meta, err := metastore.Open(filepath.Join(dir, "pfs.meta"), metastore.Options{Sync: metastore.SyncNone})
		if err != nil {
			return nil, err
		}
		// The paper syncs per subscriber every 200 events; with every
		// event carrying MatchPerEvent subscribers, the equivalent
		// whole-PFS cadence is one sync per SyncEvery events.
		pf, err := pfs.New(pfs.Options{
			Volume: vol, Meta: meta,
			SyncEvery:       p.SyncEvery,
			ImpreciseBucket: p.ImpreciseBucket,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for seq := 0; seq < p.Events; seq++ {
			ts := vtime.Timestamp(seq + 1)
			if err := pf.Write(1, ts, matched(seq)); err != nil {
				return nil, err
			}
		}
		if err := pf.Sync(); err != nil {
			return nil, err
		}
		res.PFSDuration = time.Since(start)
		res.PFSBytes = vol.BytesAppended()
		vol.Close()  //nolint:errcheck,gosec // bench teardown
		meta.Close() //nolint:errcheck,gosec // bench teardown
	}

	// --- per-subscriber event log side (the obvious solution of
	// section 1: one persistent event log per subscriber) ---
	{
		vol, err := logvol.Open(filepath.Join(dir, "evlog.log"), logvol.Options{})
		if err != nil {
			return nil, err
		}
		streams := make([]*logvol.Stream, p.Subscribers)
		for i := range streams {
			s, err := vol.Stream(fmt.Sprintf("sub/%d", i))
			if err != nil {
				return nil, err
			}
			streams[i] = s
		}
		payload := make([]byte, p.EventBytes)
		appended := make([]int, p.Subscribers)
		start := time.Now()
		for seq := 0; seq < p.Events; seq++ {
			for _, sub := range matched(seq) {
				if _, err := streams[sub].Append(payload); err != nil {
					return nil, err
				}
				appended[sub]++
				if appended[sub]%p.SyncEvery == 0 {
					if err := vol.Sync(); err != nil {
						return nil, err
					}
				}
			}
		}
		if err := vol.Sync(); err != nil {
			return nil, err
		}
		res.EventLogDur = time.Since(start)
		res.EventLogBytes = vol.BytesAppended()
		vol.Close() //nolint:errcheck,gosec // bench teardown
	}

	if res.PFSDuration > 0 {
		res.SpeedupX = float64(res.EventLogDur) / float64(res.PFSDuration)
	}
	if res.PFSBytes > 0 {
		res.DataReductionX = float64(res.EventLogBytes) / float64(res.PFSBytes)
	}
	return res, nil
}

// JMSResult is one row of section 5.2: peak aggregate auto-acknowledge
// rate for a subscriber count and connection count.
type JMSResult struct {
	Subscribers   int
	Connections   int
	AggregateRate float64 // events consumed+committed per second
	DBCommitRate  float64 // database transactions per second
	UpdatesPerTx  float64 // batching factor
}

// JMSParams configures the auto-acknowledge experiment.
type JMSParams struct {
	Subscribers   int           // e.g. 25 or 200
	Connections   int           // paper: 4
	Measure       time.Duration // 0 = 2s
	InputRate     int           // 0 = enough to saturate (4× subscribers × 10)
	CommitLatency time.Duration // 0 = 300µs (DB2 + battery-backed cache)
}

// RunJMS measures JMS auto-acknowledge throughput (section 5.2).
func RunJMS(dir string, p JMSParams) (*JMSResult, error) {
	if p.Measure == 0 {
		p.Measure = 2 * time.Second
	}
	if p.CommitLatency == 0 {
		p.CommitLatency = 300 * time.Microsecond
	}
	if p.InputRate == 0 {
		p.InputRate = PaperInputRate * 4
	}
	c, err := BuildCluster(dir, Topology{SHBs: 1, Pubends: PaperGroups})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// The JMS CT database: a dedicated metastore with the modeled DB2
	// commit latency.
	meta, err := metastore.Open(filepath.Join(dir, "jmsct.meta"), metastore.Options{
		Sync:          metastore.SyncNone,
		CommitLatency: p.CommitLatency,
	})
	if err != nil {
		return nil, err
	}
	defer meta.Close() //nolint:errcheck
	store, err := jms.NewStore(jms.Options{Meta: meta, Connections: p.Connections})
	if err != nil {
		return nil, err
	}
	defer store.Close() //nolint:errcheck

	var consumers []*jms.AutoAckConsumer
	var wg sync.WaitGroup
	for i := 0; i < p.Subscribers; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID:          vtime.SubscriberID(i + 1),
			Filter:      GroupFilter(i % PaperGroups),
			AckInterval: 25 * time.Millisecond,
			Buffer:      1 << 14,
		})
		if err != nil {
			return nil, err
		}
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
			return nil, err
		}
		ac := jms.NewAutoAckConsumer(sub, store)
		consumers = append(consumers, ac)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ac.Run() //nolint:errcheck,gosec // exits on Stop/close
		}()
	}
	load, err := StartPublisherLoad(c.Transport, c.PHBAddr(), p.InputRate, PaperGroups, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	defer load.Stop()

	time.Sleep(500 * time.Millisecond) // warmup
	var before int64
	for _, ac := range consumers {
		before += ac.Consumed()
	}
	commitsBefore := store.Commits()
	updatesBefore := store.Updates()
	time.Sleep(p.Measure)
	var after int64
	for _, ac := range consumers {
		after += ac.Consumed()
	}
	commitsAfter := store.Commits()
	updatesAfter := store.Updates()

	for _, ac := range consumers {
		ac.Stop()
	}
	wg.Wait()

	res := &JMSResult{
		Subscribers:   p.Subscribers,
		Connections:   p.Connections,
		AggregateRate: float64(after-before) / p.Measure.Seconds(),
		DBCommitRate:  float64(commitsAfter-commitsBefore) / p.Measure.Seconds(),
	}
	if d := commitsAfter - commitsBefore; d > 0 {
		res.UpdatesPerTx = float64(updatesAfter-updatesBefore) / float64(d)
	}
	return res, nil
}

// FailoverResult backs figures 7 and 8 and the paper's result 3: SHB
// failure and recovery with every subscriber in catchup simultaneously.
type FailoverResult struct {
	LDSeries  *metrics.Series // latestDelivered(p1), tick ms (figure 7 top)
	RelSeries *metrics.Series // released(p1), tick ms (figure 7 bottom)
	// MachineRates is the per-client-machine delivery rate series
	// (figure 8 top).
	MachineRates []*metrics.Series

	NormalLDRate    float64 // tick-ms/s before the crash
	RecoveryLDRate  float64 // tick-ms/s while the constream nacks (≈5× normal)
	CatchupDur      []time.Duration
	CatchupMean     time.Duration
	NormalRate      float64 // SHB aggregate events/s before crash
	CatchupRate     float64 // SHB aggregate events/s during subscriber catchup
	NackTicksWanted int64
	NackTicksSent   int64
	// CacheHits/CacheMisses over the whole run: catchup event fetches
	// served locally by the SHB cache versus sent upstream — the PHB
	// shielding of figure 8's bottom plot.
	CacheHits   int64
	CacheMisses int64
	Gaps        int64
	Violations  int64
}

// FailoverParams configures the SHB crash experiment; defaults scale the
// paper's 25 s outage to 500 ms.
type FailoverParams struct {
	Subscribers int           // 0 = 40 (paper)
	Machines    int           // 0 = 5 client machines (paper)
	Down        time.Duration // 0 = 500ms (paper: 25s)
	PostRun     time.Duration // 0 = 3s of catchup observation
	PreRun      time.Duration // 0 = 1s of normal running
	Sample      time.Duration // 0 = 100ms
	ReadBufferQ int           // PFS read buffer (paper: 5000)
}

// RunFailover runs the SHB crash-and-recovery experiment.
func RunFailover(dir string, p FailoverParams) (*FailoverResult, error) {
	if p.Subscribers == 0 {
		p.Subscribers = 40
	}
	if p.Machines == 0 {
		p.Machines = 5
	}
	if p.Down == 0 {
		p.Down = 500 * time.Millisecond
	}
	if p.PostRun == 0 {
		p.PostRun = 3 * time.Second
	}
	if p.PreRun == 0 {
		p.PreRun = time.Second
	}
	if p.Sample == 0 {
		p.Sample = 100 * time.Millisecond
	}

	res := &FailoverResult{}
	var mu sync.Mutex
	c, err := BuildCluster(dir, Topology{
		SHBs:        1,
		Pubends:     PaperGroups,
		ReadBufferQ: p.ReadBufferQ,
		OnCaughtUp: func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration) {
			mu.Lock()
			res.CatchupDur = append(res.CatchupDur, took)
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Subscribers spread over "machines": each machine is a delivery
	// counter shared by Subscribers/Machines clients (figure 8 top).
	machines := make([]*metrics.Counter, p.Machines)
	for i := range machines {
		machines[i] = &metrics.Counter{}
	}
	var subs []*client.Subscriber
	var consumeWG sync.WaitGroup
	stopConsume := make(chan struct{})
	for i := 0; i < p.Subscribers; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID:          vtime.SubscriberID(i + 1),
			Filter:      GroupFilter(i % PaperGroups),
			AckInterval: 25 * time.Millisecond,
			Buffer:      1 << 15,
		})
		if err != nil {
			return nil, err
		}
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		counter := machines[i%p.Machines]
		consumeWG.Add(1)
		go func(s *client.Subscriber) {
			defer consumeWG.Done()
			for {
				select {
				case d := <-s.Deliveries():
					if d.Kind == message.DeliverEvent {
						counter.Inc()
					}
				case <-stopConsume:
					return
				}
			}
		}(sub)
	}
	defer func() {
		close(stopConsume)
		consumeWG.Wait()
		for _, s := range subs {
			s.Disconnect() //nolint:errcheck,gosec // teardown
		}
	}()

	load, err := StartPublisherLoad(c.Transport, c.PHBAddr(), PaperInputRate, PaperGroups, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	defer load.Stop()

	// Samplers.
	start := time.Now()
	ldSeries := metrics.NewSeries("latestDelivered_tickms")
	relSeries := metrics.NewSeries("released_tickms")
	var machineSamplers []*metrics.RateSampler
	for i, m := range machines {
		machineSamplers = append(machineSamplers,
			metrics.NewRateSampler(fmt.Sprintf("machine%d_events_per_s", i+1), m, start))
	}
	sampleAll := func() {
		now := time.Now()
		t := now.Sub(start).Seconds()
		shb := c.SHBBroker(0)
		ldSeries.Append(t, float64(shb.LatestDelivered(1).TickMillis()))
		relSeries.Append(t, float64(shb.Released(1).TickMillis()))
		for _, ms := range machineSamplers {
			ms.Sample(now)
		}
	}
	sampleFor := func(d time.Duration) {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			time.Sleep(p.Sample)
			sampleAll()
		}
	}

	// Phase 1: normal running.
	sampleFor(p.PreRun)
	res.NormalLDRate = seriesSlope(ldSeries, p.PreRun.Seconds()/2)
	var preTotal int64
	for _, m := range machines {
		preTotal += m.Load()
	}
	res.NormalRate = float64(preTotal) / time.Since(start).Seconds()

	// Phase 2: crash the SHB. Client connections die with it.
	c.CrashSHB(0)
	crashAt := time.Now()
	sampleFor(p.Down)

	// Phase 3: restart, and delay subscriber reconnection until the
	// constream has recovered to the head of the stream (the paper's
	// deliberate delay separating constream nacking from catchup
	// nacking).
	if err := c.RestartSHB(0); err != nil {
		return nil, err
	}
	recoverStart := time.Now()
	ld0 := c.SHBBroker(0).LatestDelivered(1)
	for {
		time.Sleep(p.Sample / 2)
		sampleAll()
		shb := c.SHBBroker(0)
		lag := c.PHB.Pubend(1).Emitted() - shb.LatestDelivered(1)
		if lag < vtime.Timestamp(50*vtime.TicksPerMilli) {
			break
		}
		if time.Since(recoverStart) > 30*time.Second {
			return nil, fmt.Errorf("experiment: constream recovery stalled (lag %d)", lag)
		}
	}
	// Figure 7's steep segment: tick-ms recovered per second of real
	// time over exactly the restart→caught-up window.
	ld1 := c.SHBBroker(0).LatestDelivered(1)
	if elapsed := time.Since(recoverStart).Seconds(); elapsed > 0 {
		res.RecoveryLDRate = float64(ld1.TickMillis()-ld0.TickMillis()) / elapsed
	}
	_ = crashAt

	// Phase 4: reconnect every subscriber; all enter catchup at once.
	catchupStart := time.Now()
	for _, sub := range subs {
		for attempt := 0; ; attempt++ {
			if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err == nil {
				break
			}
			if attempt > 200 {
				return nil, fmt.Errorf("experiment: reconnect failed")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	var catchTotalBefore int64
	for _, m := range machines {
		catchTotalBefore += m.Load()
	}
	sampleFor(p.PostRun)
	var catchTotalAfter int64
	for _, m := range machines {
		catchTotalAfter += m.Load()
	}
	res.CatchupRate = float64(catchTotalAfter-catchTotalBefore) / p.PostRun.Seconds()
	_ = catchupStart

	res.LDSeries = ldSeries
	res.RelSeries = relSeries
	for _, ms := range machineSamplers {
		res.MachineRates = append(res.MachineRates, ms.Series())
	}
	st := c.SHBBroker(0).SHBStats()
	res.NackTicksWanted = st.NackTicksWanted
	res.NackTicksSent = st.NackTicksSent
	res.CacheHits = st.CacheHits
	res.CacheMisses = st.CacheMisses
	for _, s := range subs {
		_, _, gaps, v := s.Stats()
		res.Gaps += gaps
		res.Violations += v
	}
	if len(res.CatchupDur) > 0 {
		h := metrics.NewHistogram()
		for _, d := range res.CatchupDur {
			h.Observe(d)
		}
		res.CatchupMean = h.Mean()
	}
	return res, nil
}

// seriesSlope estimates the average dV/dt over samples after tMin.
func seriesSlope(s *metrics.Series, tMin float64) float64 {
	return seriesSlopeSince(s, tMin)
}

func seriesSlopeSince(s *metrics.Series, tMin float64) float64 {
	pts := s.Points()
	var first, last *metrics.Point
	for i := range pts {
		if pts[i].T < tMin {
			continue
		}
		if first == nil {
			first = &pts[i]
		}
		last = &pts[i]
	}
	if first == nil || last == nil || last.T <= first.T {
		return 0
	}
	return (last.V - first.V) / (last.T - first.T)
}

// EarlyReleaseResult backs the gap-notification behavior of section 3's
// PHB-controlled policy.
type EarlyReleaseResult struct {
	Published     int64
	GapsDelivered int64
	EventsAfter   int64 // events delivered after the gap (live stream intact)
	Violations    int64
	PubendEvents  int // events still retained at the pubend
}

// RunEarlyRelease demonstrates administratively-bounded retention: a
// misbehaving (long-disconnected) subscriber receives an explicit gap, and
// the pubend's storage is reclaimed despite the outstanding subscription.
func RunEarlyRelease(dir string, retain time.Duration) (*EarlyReleaseResult, error) {
	if retain == 0 {
		retain = 100 * time.Millisecond
	}
	c, err := BuildCluster(dir, Topology{
		SHBs:           1,
		Pubends:        1,
		Policy:         pubend.MaxRetain{Retain: vtime.Timestamp(retain / time.Microsecond)},
		EventCacheSize: 8,
		RelayCacheSize: 8,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	live, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 1, Filter: GroupFilter(0), AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := live.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
		return nil, err
	}
	defer live.Disconnect() //nolint:errcheck
	go func() {
		for range live.Deliveries() { //nolint:revive // drain
		}
	}()

	lagging, err := client.NewSubscriber(client.SubscriberOptions{
		ID: 2, Filter: GroupFilter(0), AckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := lagging.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
		return nil, err
	}
	if err := lagging.Disconnect(); err != nil {
		return nil, err
	}

	load, err := StartPublisherLoad(c.Transport, c.PHBAddr(), 400, 1, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	time.Sleep(2*retain + 200*time.Millisecond)
	load.Stop()
	published := load.Sent()
	time.Sleep(100 * time.Millisecond)

	if err := lagging.Connect(context.Background(), c.Transport, c.SHBAddr(0)); err != nil {
		return nil, err
	}
	defer lagging.Disconnect() //nolint:errcheck
	res := &EarlyReleaseResult{Published: published}
	deadline := time.After(10 * time.Second)
	for res.GapsDelivered == 0 {
		select {
		case d := <-lagging.Deliveries():
			switch d.Kind {
			case message.DeliverGap:
				res.GapsDelivered++
			case message.DeliverEvent:
			}
		case <-deadline:
			return nil, fmt.Errorf("experiment: no gap observed")
		}
	}
	// Live events still flow after the gap.
	load2, err := StartPublisherLoad(c.Transport, c.PHBAddr(), 200, 1, PaperPayloadBytes)
	if err != nil {
		return nil, err
	}
	defer load2.Stop()
	deadline = time.After(10 * time.Second)
	for res.EventsAfter == 0 {
		select {
		case d := <-lagging.Deliveries():
			if d.Kind == message.DeliverEvent {
				res.EventsAfter++
			}
		case <-deadline:
			return nil, fmt.Errorf("experiment: no live delivery after gap")
		}
	}
	_, _, _, v := lagging.Stats()
	res.Violations = v
	res.PubendEvents = c.PHB.Pubend(1).EventCount()
	return res, nil
}
