package experiment

import (
	"runtime"
	"testing"
	"time"
)

// TestShardThroughputSmoke runs the multi-pubend saturation experiment
// over real loopback TCP with both the serialized baseline and the sharded
// configuration, checking correctness (no violations, traffic on every
// path) rather than the speedup ratio, which needs a multi-core box.
func TestShardThroughputSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation experiment")
	}
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"serialized", 1},
		{"sharded", 4},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			res, err := RunShardThroughput(t.TempDir(), ShardThroughputParams{
				Pubends: 4,
				Shards:  cfg.shards,
				Window:  16,
				Warmup:  200 * time.Millisecond,
				Measure: 400 * time.Millisecond,
				TCP:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Shards != cfg.shards {
				t.Errorf("Shards = %d, want %d", res.Shards, cfg.shards)
			}
			if res.Violations != 0 {
				t.Errorf("violations = %d, want 0", res.Violations)
			}
			if res.PublishRate <= 0 || res.DeliveryRate <= 0 {
				t.Errorf("no traffic: publish %.0f/s deliver %.0f/s",
					res.PublishRate, res.DeliveryRate)
			}
			t.Logf("shards=%d (GOMAXPROCS=%d): publish %.0f ev/s, deliver %.0f ev/s, gaps=%d",
				res.Shards, runtime.GOMAXPROCS(0), res.PublishRate, res.DeliveryRate, res.Gaps)
		})
	}
}
