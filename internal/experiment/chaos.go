package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// TopologyChaosParams configures the dynamic-membership chaos experiment.
type TopologyChaosParams struct {
	// Mids is the relay broker count; mid i ≥ 2 hangs under mid i-2, so
	// the tree is both wide and deep (0 = 3).
	Mids int
	// SHBs is the subscriber hosting broker count, spread round-robin
	// across the mids (0 = 8).
	SHBs int
	// Pubends hosted by the root (0 = 2).
	Pubends int
	// Kills is how many random broker crashes (with restart) to apply
	// (0 = 5).
	Kills int
	// Reparents is how many successful SetUpstream re-parents to apply
	// (0 = 5).
	Reparents int
	// SubsPerSHB is the durable subscriber count per SHB (0 = 1).
	SubsPerSHB int
	// Rate is the publish rate in events/s (0 = 500).
	Rate int
	// Seed drives the mutation schedule (0 = 1).
	Seed int64
	// Step is the pause between mutations (0 = 120ms).
	Step time.Duration
	// KillDown is how long a killed broker stays down before its restart
	// (0 = 100ms).
	KillDown time.Duration
	// FaultLatency adds one-way latency to every inter-broker hop through
	// the fault injector (0 = none) — re-parents race real in-flight
	// traffic instead of switching over an instantaneous network.
	FaultLatency time.Duration
	// Failover arms automatic fail-over on every non-root broker
	// (candidate parents + FailoverAfter): the self-healing machinery and
	// the operator-driven mutations then race each other, and both must
	// preserve exactly-once.
	Failover bool
	// FailoverAfter is the unhealthy threshold when Failover is set
	// (0 = 150ms — comfortably past KillDown so restarts usually win the
	// race, with fail-over catching the stragglers).
	FailoverAfter time.Duration
}

// TopologyChaosResult is the outcome of one chaos run.
type TopologyChaosResult struct {
	Brokers      int // total brokers in the tree
	Subscribers  int
	Published    int64
	Kills        int // crashes applied
	Restarts     int // successful restarts after crashes
	Reparents    int // successful SetUpstream re-parents
	Skipped      int // mutations skipped (no legal target / dial raced a kill)
	Gaps         int64
	Violations   int64
	AllDelivered bool
	Healthy      bool // every broker's /healthz OK after the final heal
}

// chaosNode is the driver's model of one broker: its declarative spec (the
// restart recipe — Upstream tracks re-parents so a successor rejoins the
// current tree, not the original one) and the live handle.
type chaosNode struct {
	spec   topology.BrokerSpec
	b      *broker.Broker
	parent string // current parent name ("" = root)
	isSHB  bool
}

// RunTopologyChaos exercises runtime membership end to end: a deep/wide
// broker tree under live durable traffic, with random broker crashes
// (+restarts) and random live re-parents (Broker.SetUpstream) applied by a
// seeded driver. The exactly-once contract must hold through every
// mutation: after the final heal each durable subscriber has every
// published event, in timestamp order, with zero gaps, duplicates or
// reorders, and every broker's /healthz endpoint reports healthy.
//
// Brokers run on the in-process transport (name-based addresses, stable
// across restarts, so orphaned children re-home automatically) wrapped in
// a faultnet decorator for link latency; clients use the raw transport.
func RunTopologyChaos(dir string, p TopologyChaosParams) (*TopologyChaosResult, error) {
	if p.Mids == 0 {
		p.Mids = 3
	}
	if p.SHBs == 0 {
		p.SHBs = 8
	}
	if p.Pubends == 0 {
		p.Pubends = 2
	}
	if p.Kills == 0 {
		p.Kills = 5
	}
	if p.Reparents == 0 {
		p.Reparents = 5
	}
	if p.SubsPerSHB == 0 {
		p.SubsPerSHB = 1
	}
	if p.Rate == 0 {
		p.Rate = 500
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Step == 0 {
		p.Step = 120 * time.Millisecond
	}
	if p.KillDown == 0 {
		p.KillDown = 100 * time.Millisecond
	}
	if p.FailoverAfter == 0 {
		p.FailoverAfter = 150 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(p.Seed)) //nolint:gosec // schedule, not crypto

	rawNet := overlay.NewInprocNetwork(0)
	fnet := faultnet.New(rawNet, p.Seed)
	if p.FaultLatency > 0 {
		fnet.SetLatency(p.FaultLatency)
	}

	allPubends := make([]uint32, p.Pubends)
	for i := range allPubends {
		allPubends[i] = uint32(i + 1)
	}
	tuning := topology.Tuning{Shards: 2, SubShards: 1}
	baseSpec := func(name string) topology.BrokerSpec {
		return topology.BrokerSpec{
			Name:              name,
			Listen:            name, // inproc: the name is the address
			TickMillis:        2,
			DialTimeoutMillis: 500,
			LeaveGraceMillis:  80,
			Admin:             "127.0.0.1:0",
			Tuning:            tuning,
		}
	}

	// arm gives a non-root spec automatic fail-over: every other mid plus
	// the root as candidate parents. The loop-free adoption rule prunes
	// own-subtree candidates at probe time, so listing everyone is safe.
	arm := func(spec *topology.BrokerSpec) {
		if !p.Failover {
			return
		}
		for i := 0; i < p.Mids; i++ {
			if m := fmt.Sprintf("mid%d", i); m != spec.Name {
				spec.Parents = append(spec.Parents, m)
			}
		}
		spec.Parents = append(spec.Parents, "phb")
		spec.FailoverAfterMillis = p.FailoverAfter.Milliseconds()
		spec.PreferPrimary = true
		spec.FailoverSeed = p.Seed
	}

	// Tree: root hosts the pubends; mids 0 and 1 hang off the root, mid
	// i ≥ 2 under mid i-2 (depth grows with width); SHB j under mid
	// j mod Mids.
	nodes := make(map[string]*chaosNode)
	var order []string // start order, parents first
	addNode := func(spec topology.BrokerSpec, isSHB bool) {
		nodes[spec.Name] = &chaosNode{spec: spec, parent: spec.Upstream, isSHB: isSHB}
		order = append(order, spec.Name)
	}
	root := baseSpec("phb")
	root.Pubends = allPubends
	addNode(root, false)
	for i := 0; i < p.Mids; i++ {
		spec := baseSpec(fmt.Sprintf("mid%d", i))
		if i < 2 {
			spec.Upstream = "phb"
		} else {
			spec.Upstream = fmt.Sprintf("mid%d", i-2)
		}
		arm(&spec)
		addNode(spec, false)
	}
	for j := 0; j < p.SHBs; j++ {
		spec := baseSpec(fmt.Sprintf("shb%d", j))
		spec.Upstream = fmt.Sprintf("mid%d", j%p.Mids)
		spec.SHB = true
		spec.AllPubends = allPubends
		arm(&spec)
		addNode(spec, true)
	}

	res := &TopologyChaosResult{Brokers: len(order), Subscribers: p.SHBs * p.SubsPerSHB}
	startNode := func(n *chaosNode) error {
		cfg, err := n.spec.BrokerConfig(dir, fnet)
		if err != nil {
			return err
		}
		b, err := broker.New(cfg)
		if err != nil {
			return err
		}
		n.b = b
		return nil
	}
	defer func() {
		for i := len(order) - 1; i >= 0; i-- {
			if b := nodes[order[i]].b; b != nil {
				b.Close() //nolint:errcheck,gosec // teardown
			}
		}
	}()
	for _, name := range order {
		if err := startNode(nodes[name]); err != nil {
			return nil, fmt.Errorf("experiment: start %s: %w", name, err)
		}
	}

	// Durable subscribers (auto-reconnect: their SHB will crash under
	// them) and per-subscriber delivery counting.
	type subState struct {
		sub      *client.Subscriber
		received atomic.Int64
	}
	var states []*subState
	var wg sync.WaitGroup
	stop := make(chan struct{})
	subID := 0
	for j := 0; j < p.SHBs; j++ {
		for k := 0; k < p.SubsPerSHB; k++ {
			subID++
			sub, err := client.NewSubscriber(client.SubscriberOptions{
				ID:            vtime.SubscriberID(subID),
				Filter:        `true`,
				AckInterval:   15 * time.Millisecond,
				Buffer:        1 << 15,
				AutoReconnect: true,
				DialTimeout:   500 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			if err := sub.Connect(context.Background(), rawNet, fmt.Sprintf("shb%d", j)); err != nil {
				return nil, err
			}
			st := &subState{sub: sub}
			states = append(states, st)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case d := <-st.sub.Deliveries():
						if d.Kind == message.DeliverEvent {
							st.received.Add(1)
						}
					case <-stop:
						return
					}
				}
			}()
		}
	}

	pubc, err := client.NewPublisher(context.Background(), rawNet, "phb", "chaos",
		client.WithAutoReconnect(), client.WithDialTimeout(500*time.Millisecond))
	if err != nil {
		return nil, err
	}
	defer pubc.Close() //nolint:errcheck
	var published atomic.Int64
	pubStop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		ticker := time.NewTicker(time.Second / time.Duration(p.Rate))
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				seq := published.Load() + 1
				//nolint:errcheck,gosec // acks drained lazily; ErrLinkDown
				// during a root blip just skips the tick.
				if _, err := pubc.PublishAsync(message.Event{
					Attrs:   filter.Attributes{"seq": filter.Int(seq)},
					Payload: []byte("c"),
				}, vtime.PubendID(seq%int64(p.Pubends)+1)); err == nil {
					published.Store(seq)
				}
			case <-pubStop:
				return
			}
		}
	}()

	// inSubtree reports whether node name sits in the subtree rooted at
	// root (walking the driver's model of current parents).
	inSubtree := func(name, rootName string) bool {
		for cur := name; cur != ""; cur = nodes[cur].parent {
			if cur == rootName {
				return true
			}
		}
		return false
	}
	alive := func(n *chaosNode) bool { return n.b != nil }

	// Mutation driver: interleave kills and re-parents until both quotas
	// are met. Kills never target the root (the event log must keep
	// accepting publishes); re-parents pick any non-root node and any
	// alive target outside its own subtree.
	mutable := order[1:] // everything but the root
	killsLeft, repsLeft := p.Kills, p.Reparents
	for attempts := 0; (killsLeft > 0 || repsLeft > 0) && attempts < (p.Kills+p.Reparents)*10; attempts++ {
		time.Sleep(p.Step)
		// With fail-over armed, brokers re-parent themselves behind the
		// driver's back; refresh the model so the subtree check (and the
		// restart recipe) sees the tree as it actually is, not as it was
		// last mutated — a stale model could let a re-parent build a loop.
		if p.Failover {
			for _, name := range mutable {
				if n := nodes[name]; n.b != nil {
					if up := n.b.UpstreamAddr(); up != "" {
						n.parent, n.spec.Upstream = up, up
					}
				}
			}
		}
		doKill := killsLeft > 0 && (repsLeft == 0 || rng.Intn(2) == 0)
		if doKill {
			n := nodes[mutable[rng.Intn(len(mutable))]]
			if !alive(n) {
				res.Skipped++
				continue
			}
			n.b.Crash()
			n.b = nil
			res.Kills++
			killsLeft--
			time.Sleep(p.KillDown)
			// Restart from the same spec and data directory; the spec's
			// Upstream tracks re-parents, so the successor rejoins the
			// current tree. Retry briefly: its parent may itself be down.
			deadline := time.Now().Add(10 * time.Second)
			for {
				if err := startNode(n); err == nil {
					res.Restarts++
					break
				}
				if time.Now().After(deadline) {
					return res, fmt.Errorf("experiment: %s did not restart", n.spec.Name)
				}
				time.Sleep(50 * time.Millisecond)
			}
			continue
		}
		// Re-parent: a random alive non-root node moves under a random
		// alive target outside its own subtree.
		n := nodes[mutable[rng.Intn(len(mutable))]]
		t := nodes[order[rng.Intn(len(order))]]
		if !alive(n) || !alive(t) || t.isSHB || n.spec.Name == t.spec.Name ||
			t.spec.Name == n.parent || inSubtree(t.spec.Name, n.spec.Name) {
			res.Skipped++
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := n.b.SetUpstream(ctx, t.spec.Name)
		cancel()
		if err != nil {
			res.Skipped++ // target died under us; the supervisor was never installed
			continue
		}
		n.parent = t.spec.Name
		n.spec.Upstream = t.spec.Name
		res.Reparents++
		repsLeft--
	}
	if killsLeft > 0 || repsLeft > 0 {
		return res, fmt.Errorf("experiment: mutation quota unmet: %d kills, %d reparents left (skipped %d)",
			killsLeft, repsLeft, res.Skipped)
	}

	// Final heal: every broker's supervised links up and /healthz green.
	healDeadline := time.Now().Add(20 * time.Second)
	for {
		healthy := true
		for _, name := range order {
			n := nodes[name]
			if n.b == nil {
				healthy = false
				break
			}
			for _, st := range n.b.Health() {
				// Candidate pseudo-entries are advisory: a candidate that
				// happens to be down does not make this broker unhealthy.
				if broker.IsCandidateLink(st) {
					continue
				}
				if st.State != overlay.LinkUp {
					healthy = false
					break
				}
			}
			if !healthy {
				break
			}
			resp, err := http.Get("http://" + n.b.AdminAddr() + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				healthy = false
			}
			if err == nil {
				resp.Body.Close() //nolint:errcheck,gosec // probe
			}
			if !healthy {
				break
			}
		}
		if healthy {
			res.Healthy = true
			break
		}
		if time.Now().After(healDeadline) {
			return res, fmt.Errorf("experiment: tree did not heal")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Quiesce: stop publishing, then wait until recovery has replayed
	// every event to every subscriber.
	close(pubStop)
	<-pubDone
	res.Published = published.Load()
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		allDone := true
		for _, st := range states {
			if st.received.Load() < res.Published {
				allDone = false
				break
			}
		}
		if allDone || time.Now().After(drainDeadline) {
			res.AllDelivered = allDone
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for _, st := range states {
		events, _, gaps, violations := st.sub.Stats()
		res.Gaps += gaps
		res.Violations += violations
		if events != res.Published {
			res.AllDelivered = false
		}
		st.sub.Disconnect() //nolint:errcheck,gosec // teardown
	}
	if !res.AllDelivered || res.Gaps > 0 || res.Violations > 0 {
		var counts []int64
		for _, st := range states {
			ev, _, _, _ := st.sub.Stats()
			counts = append(counts, ev)
		}
		return res, fmt.Errorf("experiment: topology chaos broke delivery: published=%d received=%v gaps=%d violations=%d",
			res.Published, counts, res.Gaps, res.Violations)
	}
	return res, nil
}
