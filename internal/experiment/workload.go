package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// Paper workload constants (section 5.1): 800 events/s input distributed
// equally over 4 pubends; subscriptions arranged so each subscriber
// receives 200 events/s; 250-byte application payload (418 bytes with
// headers).
const (
	PaperInputRate    = 800
	PaperGroups       = 4
	PaperPayloadBytes = 250
)

// PublisherLoad drives a constant-rate publisher: Rate events/s spread
// round-robin over the pubends, each tagged with a group attribute
// "group" = g<i mod Groups> so that a subscriber of one group receives
// Rate/Groups events/s.
type PublisherLoad struct {
	Rate    int // events per second
	Groups  int
	Payload int

	pub     *client.Publisher
	stop    chan struct{}
	done    chan struct{}
	sent    metrics.Counter
	dropped metrics.Counter
}

// StartPublisherLoad connects a publisher and begins publishing.
func StartPublisherLoad(t overlay.Transport, addr string, rate, groups, payload int) (*PublisherLoad, error) {
	if groups <= 0 {
		groups = PaperGroups
	}
	if payload <= 0 {
		payload = PaperPayloadBytes
	}
	pub, err := client.NewPublisher(context.Background(), t, addr, "load")
	if err != nil {
		return nil, err
	}
	l := &PublisherLoad{
		Rate:    rate,
		Groups:  groups,
		Payload: payload,
		pub:     pub,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go l.run()
	return l, nil
}

func (l *PublisherLoad) run() {
	defer close(l.done)
	payload := make([]byte, l.Payload)
	// Pace against wall time: on every tick, publish the deficit between
	// the target count and what has been sent, so the average rate holds
	// even when individual ticks are late or coalesced.
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	start := time.Now()
	seq := 0
	for {
		select {
		case <-ticker.C:
			want := int(time.Since(start).Seconds() * float64(l.Rate))
			for ; seq < want; seq++ {
				l.publishOne(seq, payload)
			}
		case <-l.stop:
			return
		}
	}
}

func (l *PublisherLoad) publishOne(seq int, payload []byte) {
	group := seq % l.Groups
	attrs := message.Event{
		Attrs: filter.Attributes{
			"group": filter.String(groupName(group)),
			"seq":   filter.Int(int64(seq)),
		},
		Payload: payload,
	}
	// Round-robin pubends explicitly so each pubend carries Rate/Pubends
	// events/s as in the paper.
	_, err := l.pub.PublishAsync(attrs, 0)
	if err != nil {
		l.dropped.Inc()
		return
	}
	l.sent.Inc()
}

// Sent reports the number of events published.
func (l *PublisherLoad) Sent() int64 { return l.sent.Load() }

// Stop halts and disconnects the publisher.
func (l *PublisherLoad) Stop() {
	close(l.stop)
	<-l.done
	l.pub.Close() //nolint:errcheck,gosec // shutdown
}

func groupName(g int) string { return fmt.Sprintf("g%d", g) }

// GroupFilter returns the subscription source for group g.
func GroupFilter(g int) string { return `group = "` + groupName(g) + `"` }

// SubscriberPool runs N durable subscribers against the SHBs of a cluster,
// optionally cycling each through disconnect/reconnect periods, and counts
// aggregate deliveries (the Y axis of figure 4).
type SubscriberPool struct {
	subs    []*client.Subscriber
	shbOf   []int
	cluster *Cluster

	received metrics.Counter
	gapsSeen metrics.Counter

	wg     sync.WaitGroup
	stopCh chan struct{}
	closed atomic.Bool
}

// PoolOptions configures a subscriber pool.
type PoolOptions struct {
	// N subscribers, assigned round-robin to the cluster's SHBs and to
	// subscription groups.
	N int
	// Groups to spread subscriptions over (0 = PaperGroups).
	Groups int
	// Disconnect enables the paper's moderate-churn regime: each
	// subscriber independently disconnects every Period, stays down for
	// Down, then reconnects (paper: 300s / 5s; scale to taste).
	Disconnect bool
	Period     time.Duration
	Down       time.Duration
	// AckInterval for the clients (0 = 25ms, a scaled 250ms).
	AckInterval time.Duration
	// Seed randomizes disconnect phases deterministically.
	Seed int64
	// FirstID numbers subscribers starting here (default 1).
	FirstID int
}

// StartSubscriberPool connects the pool.
func StartSubscriberPool(c *Cluster, opts PoolOptions) (*SubscriberPool, error) {
	if opts.Groups <= 0 {
		opts.Groups = PaperGroups
	}
	if opts.AckInterval == 0 {
		opts.AckInterval = 25 * time.Millisecond
	}
	if opts.FirstID == 0 {
		opts.FirstID = 1
	}
	nSHB := c.topo.SHBs
	if nSHB == 0 {
		nSHB = 1
	}
	p := &SubscriberPool{cluster: c, stopCh: make(chan struct{})}
	for i := 0; i < opts.N; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			ID:          vtime.SubscriberID(opts.FirstID + i),
			Filter:      GroupFilter(i % opts.Groups),
			AckInterval: opts.AckInterval,
			Buffer:      1 << 15,
		})
		if err != nil {
			p.Stop()
			return nil, err
		}
		shb := i % nSHB
		if err := sub.Connect(context.Background(), c.Transport, c.SHBAddr(shb)); err != nil {
			p.Stop()
			return nil, err
		}
		p.subs = append(p.subs, sub)
		p.shbOf = append(p.shbOf, shb)
		p.wg.Add(1)
		go p.consume(sub)
	}
	if opts.Disconnect {
		rng := rand.New(rand.NewSource(opts.Seed + 1))
		for i, sub := range p.subs {
			phase := time.Duration(rng.Int63n(int64(opts.Period)))
			p.wg.Add(1)
			go p.churn(sub, p.shbOf[i], phase, opts.Period, opts.Down)
		}
	}
	return p, nil
}

// consume drains a subscriber's deliveries, counting events and gaps.
func (p *SubscriberPool) consume(sub *client.Subscriber) {
	defer p.wg.Done()
	for {
		select {
		case d := <-sub.Deliveries():
			switch d.Kind {
			case message.DeliverEvent:
				p.received.Inc()
			case message.DeliverGap:
				p.gapsSeen.Inc()
			}
		case <-p.stopCh:
			return
		}
	}
}

// churn cycles one subscriber through disconnect/reconnect.
func (p *SubscriberPool) churn(sub *client.Subscriber, shb int, phase, period, down time.Duration) {
	defer p.wg.Done()
	if !sleepOr(p.stopCh, phase) {
		return
	}
	for {
		if !sleepOr(p.stopCh, period-down) {
			return
		}
		sub.Disconnect() //nolint:errcheck,gosec // churn
		if !sleepOr(p.stopCh, down) {
			return
		}
		// Reconnect, retrying briefly (the SHB may be restarting).
		for attempt := 0; attempt < 100; attempt++ {
			if err := sub.Connect(context.Background(), p.cluster.Transport, p.cluster.SHBAddr(shb)); err == nil {
				break
			}
			if !sleepOr(p.stopCh, 10*time.Millisecond) {
				return
			}
		}
	}
}

// sleepOr sleeps d, returning false if stop closed first.
func sleepOr(stop chan struct{}, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-stop:
		return false
	}
}

// Received reports aggregate event deliveries across the pool.
func (p *SubscriberPool) Received() int64 { return p.received.Load() }

// Gaps reports aggregate gap messages received.
func (p *SubscriberPool) Gaps() int64 { return p.gapsSeen.Load() }

// Violations sums ordering violations across the pool (must be 0).
func (p *SubscriberPool) Violations() int64 {
	var n int64
	for _, sub := range p.subs {
		_, _, _, v := sub.Stats()
		n += v
	}
	return n
}

// ReceivedCounter exposes the aggregate counter for rate sampling.
func (p *SubscriberPool) ReceivedCounter() *metrics.Counter { return &p.received }

// Subscribers returns the pool's clients.
func (p *SubscriberPool) Subscribers() []*client.Subscriber { return p.subs }

// Stop disconnects everything.
func (p *SubscriberPool) Stop() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stopCh)
	p.wg.Wait()
	for _, sub := range p.subs {
		sub.Disconnect() //nolint:errcheck,gosec // shutdown
	}
}
