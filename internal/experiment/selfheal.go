package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// SelfHealingParams configures the automatic fail-over chaos experiment.
type SelfHealingParams struct {
	// Mids is the relay broker count; mid i ≥ 2 hangs under mid i-2, so
	// the tree is both wide and deep (0 = 5).
	Mids int
	// SHBs is the subscriber hosting broker count, spread round-robin
	// across the mids (0 = 6).
	SHBs int
	// Pubends hosted by the root (0 = 2).
	Pubends int
	// Kills is how many interior (mid) broker crashes to apply (0 = 5).
	Kills int
	// PermanentKills is how many of those crashes are permanent — the
	// broker never restarts, so its children MUST repair themselves
	// (0 = 1; must be < Mids).
	PermanentKills int
	// SubsPerSHB is the durable subscriber count per SHB (0 = 1).
	SubsPerSHB int
	// Rate is the publish rate in events/s (0 = 500).
	Rate int
	// Seed drives the kill schedule and the per-broker fail-over jitter
	// (0 = 1).
	Seed int64
	// Step is the pause between kills (0 = 120ms).
	Step time.Duration
	// KillDown is how long a restartable kill stays down before its
	// restart; keep it past FailoverAfter so children actually repair
	// instead of just riding out the blip (0 = 400ms).
	KillDown time.Duration
	// FailoverAfter is each broker's unhealthy threshold before it
	// abandons its parent for a candidate (0 = 120ms).
	FailoverAfter time.Duration
	// FaultLatency adds one-way latency to every inter-broker hop
	// (0 = none).
	FaultLatency time.Duration
}

// SelfHealingResult is the outcome of one self-healing run.
type SelfHealingResult struct {
	Brokers        int // total brokers in the tree
	Subscribers    int
	Published      int64 // events accepted by the root
	Kills          int   // crashes applied (including permanent ones)
	PermanentKills int   // crashes with no restart
	Restarts       int   // successful restarts after restartable crashes
	Failovers      uint64
	Failbacks      uint64
	Repairs        int     // repair-driven re-parents measured
	RepairP50Ms    float64 // time-to-repair p50 (outage start -> new parent live)
	RepairP99Ms    float64
	Gaps           int64
	Violations     int64
	AllDelivered   bool
	Healthy        bool // every surviving broker healed after the chaos
}

// shNode is the driver's model of one broker: the declarative restart
// recipe and the live handle. Unlike the topology-chaos driver the spec's
// Upstream is never rewritten by a re-parent — the driver issues none;
// every repair is the brokers' own.
type shNode struct {
	spec  topology.BrokerSpec
	b     *broker.Broker
	dead  bool // permanently killed: never restarted, skipped by heal checks
	isSHB bool
}

// RunSelfHealing exercises automatic fail-over end to end: a deep/wide
// broker tree under live durable traffic where every non-root broker
// carries an ordered candidate-parent list, and a seeded driver crashes
// interior brokers — at least one permanently. The driver NEVER issues a
// re-parent: orphaned subtrees must notice the dead upstream themselves,
// probe their candidates, and adopt a live parent outside their own
// subtree (make-before-break, loop-free via the root/epoch/depth
// advertisements). The exactly-once contract must hold throughout: after
// the final heal every durable subscriber has every published event in
// timestamp order with zero gaps, duplicates or reorders, and every
// surviving broker reports healthy.
//
// The per-repair outage durations (link-loss to adopted-parent-live) from
// every broker's RepairStats feed the RepairP50Ms/RepairP99Ms result
// fields — the headline time-to-repair numbers.
func RunSelfHealing(dir string, p SelfHealingParams) (*SelfHealingResult, error) {
	if p.Mids == 0 {
		p.Mids = 5
	}
	if p.SHBs == 0 {
		p.SHBs = 6
	}
	if p.Pubends == 0 {
		p.Pubends = 2
	}
	if p.Kills == 0 {
		p.Kills = 5
	}
	if p.PermanentKills == 0 {
		p.PermanentKills = 1
	}
	if p.SubsPerSHB == 0 {
		p.SubsPerSHB = 1
	}
	if p.Rate == 0 {
		p.Rate = 500
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Step == 0 {
		p.Step = 120 * time.Millisecond
	}
	if p.KillDown == 0 {
		p.KillDown = 400 * time.Millisecond
	}
	if p.FailoverAfter == 0 {
		p.FailoverAfter = 120 * time.Millisecond
	}
	if p.PermanentKills > p.Kills {
		return nil, fmt.Errorf("experiment: PermanentKills %d > Kills %d", p.PermanentKills, p.Kills)
	}
	if p.PermanentKills >= p.Mids {
		return nil, fmt.Errorf("experiment: PermanentKills %d must leave a live mid (Mids %d)", p.PermanentKills, p.Mids)
	}
	rng := rand.New(rand.NewSource(p.Seed)) //nolint:gosec // schedule, not crypto

	rawNet := overlay.NewInprocNetwork(0)
	fnet := faultnet.New(rawNet, p.Seed)
	if p.FaultLatency > 0 {
		fnet.SetLatency(p.FaultLatency)
	}

	allPubends := make([]uint32, p.Pubends)
	for i := range allPubends {
		allPubends[i] = uint32(i + 1)
	}
	tuning := topology.Tuning{Shards: 2, SubShards: 1}
	baseSpec := func(name string) topology.BrokerSpec {
		return topology.BrokerSpec{
			Name:              name,
			Listen:            name, // inproc: the name is the address
			TickMillis:        2,
			DialTimeoutMillis: 500,
			LeaveGraceMillis:  80,
			Admin:             "127.0.0.1:0",
			Tuning:            tuning,
		}
	}
	// arm gives a non-root spec its self-healing config: the ordered
	// candidate list plus the fail-over knobs. Candidates prefer relays
	// (keeps the tree deep) and always include the root as the parent of
	// last resort; the loop-free adoption rule prunes own-subtree
	// candidates at probe time, so listing "everyone" is safe.
	midNames := make([]string, p.Mids)
	for i := range midNames {
		midNames[i] = fmt.Sprintf("mid%d", i)
	}
	arm := func(spec *topology.BrokerSpec, preferRoot bool) {
		var cands []string
		if preferRoot {
			cands = append(cands, "phb")
		}
		for _, m := range midNames {
			if m != spec.Name {
				cands = append(cands, m)
			}
		}
		if !preferRoot {
			cands = append(cands, "phb")
		}
		spec.Parents = cands
		spec.FailoverAfterMillis = p.FailoverAfter.Milliseconds()
		spec.PreferPrimary = true
		spec.FailoverSeed = p.Seed
	}

	// Tree: root hosts the pubends; mids 0 and 1 hang off the root, mid
	// i ≥ 2 under mid i-2; SHB j under mid j mod Mids. Mids fail straight
	// to the root (shortest repair path); SHBs try the other relays
	// first.
	nodes := make(map[string]*shNode)
	var order []string // start order, parents first
	addNode := func(spec topology.BrokerSpec, isSHB bool) {
		nodes[spec.Name] = &shNode{spec: spec, isSHB: isSHB}
		order = append(order, spec.Name)
	}
	root := baseSpec("phb")
	root.Pubends = allPubends
	addNode(root, false)
	for i := 0; i < p.Mids; i++ {
		spec := baseSpec(midNames[i])
		if i < 2 {
			spec.Upstream = "phb"
		} else {
			spec.Upstream = fmt.Sprintf("mid%d", i-2)
		}
		arm(&spec, true)
		addNode(spec, false)
	}
	for j := 0; j < p.SHBs; j++ {
		spec := baseSpec(fmt.Sprintf("shb%d", j))
		spec.Upstream = midNames[j%p.Mids]
		spec.SHB = true
		spec.AllPubends = allPubends
		arm(&spec, false)
		addNode(spec, true)
	}

	res := &SelfHealingResult{Brokers: len(order), Subscribers: p.SHBs * p.SubsPerSHB}
	startNode := func(n *shNode) error {
		cfg, err := n.spec.BrokerConfig(dir, fnet)
		if err != nil {
			return err
		}
		b, err := broker.New(cfg)
		if err != nil {
			return err
		}
		n.b = b
		return nil
	}
	defer func() {
		for i := len(order) - 1; i >= 0; i-- {
			if b := nodes[order[i]].b; b != nil {
				b.Close() //nolint:errcheck,gosec // teardown
			}
		}
	}()
	for _, name := range order {
		if err := startNode(nodes[name]); err != nil {
			return nil, fmt.Errorf("experiment: start %s: %w", name, err)
		}
	}

	// Durable subscribers (auto-reconnect: repairs blip the SHB's
	// delivery path) and per-subscriber delivery counting.
	type subState struct {
		sub      *client.Subscriber
		received atomic.Int64
	}
	var states []*subState
	var wg sync.WaitGroup
	stop := make(chan struct{})
	subID := 0
	for j := 0; j < p.SHBs; j++ {
		for k := 0; k < p.SubsPerSHB; k++ {
			subID++
			sub, err := client.NewSubscriber(client.SubscriberOptions{
				ID:            vtime.SubscriberID(subID),
				Filter:        `true`,
				AckInterval:   15 * time.Millisecond,
				Buffer:        1 << 15,
				AutoReconnect: true,
				DialTimeout:   500 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			if err := sub.Connect(context.Background(), rawNet, fmt.Sprintf("shb%d", j)); err != nil {
				return nil, err
			}
			st := &subState{sub: sub}
			states = append(states, st)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case d := <-st.sub.Deliveries():
						if d.Kind == message.DeliverEvent {
							st.received.Add(1)
						}
					case <-stop:
						return
					}
				}
			}()
		}
	}

	pubc, err := client.NewPublisher(context.Background(), rawNet, "phb", "selfheal",
		client.WithAutoReconnect(), client.WithDialTimeout(500*time.Millisecond))
	if err != nil {
		return nil, err
	}
	defer pubc.Close() //nolint:errcheck
	var published atomic.Int64
	pubStop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		ticker := time.NewTicker(time.Second / time.Duration(p.Rate))
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				seq := published.Load() + 1
				//nolint:errcheck,gosec // acks drained lazily; ErrLinkDown
				// during a root blip just skips the tick.
				if _, err := pubc.PublishAsync(message.Event{
					Attrs:   filter.Attributes{"seq": filter.Int(seq)},
					Payload: []byte("s"),
				}, vtime.PubendID(seq%int64(p.Pubends)+1)); err == nil {
					published.Store(seq)
				}
			case <-pubStop:
				return
			}
		}
	}()

	// Kill driver: crash interior (mid) brokers only — the root must keep
	// accepting publishes and the SHBs own the durable state under test.
	// The first PermanentKills crashes never restart; their children have
	// no driver to save them. NO SetUpstream is ever issued here: that is
	// the whole point.
	aliveMids := func() []string {
		var out []string
		for _, m := range midNames {
			if n := nodes[m]; n.b != nil && !n.dead {
				out = append(out, m)
			}
		}
		return out
	}
	permLeft := p.PermanentKills
	for k := 0; k < p.Kills; k++ {
		time.Sleep(p.Step)
		cands := aliveMids()
		if len(cands) == 0 {
			return res, fmt.Errorf("experiment: no live mid left to kill")
		}
		n := nodes[cands[rng.Intn(len(cands))]]
		n.b.Crash()
		n.b = nil
		res.Kills++
		if permLeft > 0 {
			permLeft--
			n.dead = true
			res.PermanentKills++
			continue
		}
		time.Sleep(p.KillDown)
		// Restart from the same spec and data directory. If the spec's
		// parent was permanently killed in the meantime, restart under the
		// root instead — the recipe a deployer's topology would converge
		// to; the live brokers still repaired themselves without help.
		if up := n.spec.Upstream; up != "phb" && nodes[up].dead {
			n.spec.Upstream = "phb"
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := startNode(n); err == nil {
				res.Restarts++
				break
			}
			if time.Now().After(deadline) {
				return res, fmt.Errorf("experiment: %s did not restart", n.spec.Name)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Final heal: every surviving broker's supervised links up (candidate
	// pseudo-entries are advisory — a permanently dead candidate is
	// legitimately down — so they are skipped) and /healthz green.
	healDeadline := time.Now().Add(30 * time.Second)
	for {
		healthy := true
		for _, name := range order {
			n := nodes[name]
			if n.dead {
				continue
			}
			if n.b == nil {
				healthy = false
				break
			}
			for _, st := range n.b.Health() {
				if broker.IsCandidateLink(st) {
					continue
				}
				if st.State != overlay.LinkUp {
					healthy = false
					break
				}
			}
			if !healthy {
				break
			}
			resp, err := http.Get("http://" + n.b.AdminAddr() + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				healthy = false
			}
			if err == nil {
				resp.Body.Close() //nolint:errcheck,gosec // probe
			}
			if !healthy {
				break
			}
		}
		if healthy {
			res.Healthy = true
			break
		}
		if time.Now().After(healDeadline) {
			return res, fmt.Errorf("experiment: tree did not self-heal")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Harvest the repair history: every broker's own fail-over record is
	// the time-to-repair distribution.
	var repairs []time.Duration
	for _, name := range order {
		n := nodes[name]
		if n.b == nil {
			continue
		}
		st := n.b.RepairStats()
		res.Failovers += st.Failovers
		res.Failbacks += st.Failbacks
		repairs = append(repairs, st.Repairs...)
	}
	res.Repairs = len(repairs)
	if len(repairs) > 0 {
		sort.Slice(repairs, func(i, j int) bool { return repairs[i] < repairs[j] })
		pct := func(q float64) float64 {
			i := int(q * float64(len(repairs)-1))
			return float64(repairs[i]) / float64(time.Millisecond)
		}
		res.RepairP50Ms = pct(0.50)
		res.RepairP99Ms = pct(0.99)
	}
	if res.Failovers == 0 {
		return res, fmt.Errorf("experiment: no broker failed over — the permanent kill should have forced at least one repair")
	}

	// Quiesce: stop publishing, then wait until recovery has replayed
	// every event to every subscriber.
	close(pubStop)
	<-pubDone
	res.Published = published.Load()
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		allDone := true
		for _, st := range states {
			if st.received.Load() < res.Published {
				allDone = false
				break
			}
		}
		if allDone || time.Now().After(drainDeadline) {
			res.AllDelivered = allDone
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for _, st := range states {
		events, _, gaps, violations := st.sub.Stats()
		res.Gaps += gaps
		res.Violations += violations
		if events != res.Published {
			res.AllDelivered = false
		}
		st.sub.Disconnect() //nolint:errcheck,gosec // teardown
	}
	if !res.AllDelivered || res.Gaps > 0 || res.Violations > 0 {
		var counts []int64
		for _, st := range states {
			ev, _, _, _ := st.sub.Stats()
			counts = append(counts, ev)
		}
		return res, fmt.Errorf("experiment: self-healing broke delivery: published=%d received=%v gaps=%d violations=%d",
			res.Published, counts, res.Gaps, res.Violations)
	}
	return res, nil
}
