package experiment

import "testing"

// TestPartitionHeal is the acceptance check for the self-healing overlay:
// the SHB↔PHB link is severed five times mid-stream and every durable
// subscriber must still see every event exactly once in timestamp order.
func TestPartitionHeal(t *testing.T) {
	res, err := RunPartitionHeal(t.TempDir(), PartitionHealParams{Severs: 5, Seed: 7})
	if err != nil {
		t.Fatalf("partition-heal: %v (%+v)", err, res)
	}
	if res.Reconnects < uint64(res.Severs) {
		t.Fatalf("expected >= %d supervised reconnects, got %d", res.Severs, res.Reconnects)
	}
	if res.MaxHeal <= 0 {
		t.Fatalf("expected nonzero heal times, got %+v", res)
	}
	if !res.AllDelivered || res.Gaps != 0 || res.Violations != 0 {
		t.Fatalf("delivery contract broken: %+v", res)
	}
}
