// Package experiment builds the paper's evaluation topologies and
// workloads and runs every experiment of section 5, producing the numbers
// and time series behind each figure and table. The cmd/benchrunner binary
// and the repository-root benchmarks are thin wrappers over this package.
//
// Scaling: the paper runs minutes-long experiments on a 6-way SMP cluster;
// this harness runs seconds-long, time-scaled versions on one machine. All
// scale knobs live in Params; the defaults reproduce the paper's shapes
// (who wins, by what factor, where crossovers fall), not its absolute
// numbers.
package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/broker"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Topology describes a broker tree shaped like figure 3's configurations.
type Topology struct {
	// SHBs is the number of subscriber hosting brokers. 0 means the
	// single-broker configuration (PHB+SHB combined).
	SHBs int
	// Intermediate inserts one relay broker between the PHB and the
	// SHBs (the paper's 2-SHB and 4-SHB networks route through the
	// tree; a single intermediate reproduces the shape).
	Intermediate bool
	// Chain inserts N pure relay brokers in a line between the PHB and
	// the single SHB (the 5-hop latency topology). Mutually exclusive
	// with Intermediate; requires SHBs <= 1.
	Chain int
	// Pubends is the number of pubends hosted by the PHB (paper: 4).
	Pubends int
	// Policy is the early-release policy for every pubend (nil: retain
	// until released — the paper disables early release in section 5).
	Policy pubend.Policy
	// PublishLogLatency models the PHB's forced-log latency (E1 uses
	// 44ms; throughput experiments use 0 with group commit).
	PublishLogLatency time.Duration
	// TickInterval for all brokers (0 = 2ms, fast enough for scaled
	// experiments).
	TickInterval time.Duration
	// EventCacheSize for SHB engines (0 = default).
	EventCacheSize int
	// RelayCacheSize bounds intermediate relay caches (0 = default).
	RelayCacheSize int
	// ReadBufferQ for SHB PFS reads (0 = default 5000).
	ReadBufferQ int
	// LinkLatency adds one-way latency to every overlay hop.
	LinkLatency time.Duration
	// MetaCommitLatency models the SHB database commit cost.
	MetaCommitLatency time.Duration
	// OnCaughtUp receives catchup-duration samples from every SHB.
	OnCaughtUp func(sub vtime.SubscriberID, pub vtime.PubendID, took time.Duration)
	// Tuning is the shared performance-knob surface (shards, sub-shards,
	// catchup weight, match engine) — the same type the topology spec and
	// the broker flags consume, so the harness cannot drift from them.
	topology.Tuning
	// TCP runs the cluster over real loopback TCP sockets instead of the
	// in-process transport (the paper's deployment; exercises the framed
	// write-coalescing wire path). LinkLatency is ignored under TCP.
	TCP bool
	// WrapBrokerTransport, when set, decorates the transport handed to
	// brokers — the fault-injection hook: inter-broker links dial through
	// the decorator (and can be severed or partitioned by it), while
	// clients keep using the undecorated Cluster.Transport. Listens pass
	// through the decorator, so clients still reach broker listeners.
	WrapBrokerTransport func(overlay.Transport) overlay.Transport
	// DialTimeout bounds broker upstream dials (initial and supervised
	// reconnects). Zero means no timeout.
	DialTimeout time.Duration
}

// Cluster is a running broker topology.
type Cluster struct {
	Transport overlay.Transport
	PHB       *broker.Broker
	Mids      []*broker.Broker
	SHBs      []*broker.Broker

	topo     Topology
	dir      string
	phbAddr  string
	shbAddrs []string
	brokerT  overlay.Transport // what brokers dial/listen on (= Transport unless wrapped)
}

// AllPubends lists the pubend IDs of the cluster.
func (c *Cluster) AllPubends() []vtime.PubendID {
	out := make([]vtime.PubendID, c.topo.Pubends)
	for i := range out {
		out[i] = vtime.PubendID(i + 1)
	}
	return out
}

// PHBAddr is the publisher connection address.
func (c *Cluster) PHBAddr() string { return c.phbAddr }

// SHBAddr is the subscriber connection address of SHB i (or the combined
// broker in the single-broker topology).
func (c *Cluster) SHBAddr(i int) string {
	if c.topo.SHBs == 0 {
		return c.phbAddr
	}
	return c.shbAddrs[i]
}

// listenAddr picks a broker's bind address: its name on the in-process
// transport, an ephemeral loopback port under TCP (the actual address is
// read back through broker.BoundAddr).
func (c *Cluster) listenAddr(name string) string {
	if c.topo.TCP {
		return "127.0.0.1:0"
	}
	return name
}

// SHBBroker returns the broker behind SHBAddr(i).
func (c *Cluster) SHBBroker(i int) *broker.Broker {
	if c.topo.SHBs == 0 {
		return c.PHB
	}
	return c.SHBs[i]
}

// BuildCluster starts the topology under dir.
func BuildCluster(dir string, topo Topology) (*Cluster, error) {
	if topo.Pubends == 0 {
		topo.Pubends = 4
	}
	if topo.TickInterval == 0 {
		topo.TickInterval = 2 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: dir: %w", err)
	}
	c := &Cluster{
		topo: topo,
		dir:  dir,
	}
	if topo.TCP {
		c.Transport = overlay.TCPTransport{}
	} else {
		c.Transport = overlay.NewInprocNetwork(topo.LinkLatency)
	}
	c.brokerT = c.Transport
	if topo.WrapBrokerTransport != nil {
		c.brokerT = topo.WrapBrokerTransport(c.Transport)
	}
	var hosted []broker.PubendConfig
	for i := 1; i <= topo.Pubends; i++ {
		hosted = append(hosted, broker.PubendConfig{
			ID:         vtime.PubendID(i),
			Policy:     topo.Policy,
			LogLatency: topo.PublishLogLatency,
		})
	}
	common := broker.Config{
		Transport:         c.brokerT,
		DialTimeout:       topo.DialTimeout,
		TickInterval:      topo.TickInterval,
		EventCacheSize:    topo.EventCacheSize,
		RelayCacheSize:    topo.RelayCacheSize,
		ReadBufferQ:       topo.ReadBufferQ,
		MetaCommitLatency: topo.MetaCommitLatency,
		OnCaughtUp:        topo.OnCaughtUp,
	}
	topo.Tuning.Apply(&common)

	phbCfg := common
	phbCfg.Name = "phb"
	phbCfg.DataDir = filepath.Join(dir, "phb")
	phbCfg.ListenAddr = c.listenAddr("phb")
	phbCfg.HostedPubends = hosted
	if topo.SHBs == 0 {
		phbCfg.EnableSHB = true
		phbCfg.AllPubends = c.AllPubends()
	}
	phb, err := broker.New(phbCfg)
	if err != nil {
		return nil, err
	}
	c.PHB = phb
	c.phbAddr = phb.BoundAddr()

	upstream := c.phbAddr
	for i := 0; i < topo.Chain; i++ {
		midCfg := common
		midCfg.Name = fmt.Sprintf("mid%d", i)
		midCfg.ListenAddr = c.listenAddr(midCfg.Name)
		midCfg.UpstreamAddr = upstream
		mid, err := broker.New(midCfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Mids = append(c.Mids, mid)
		upstream = mid.BoundAddr()
	}
	if topo.Intermediate {
		midCfg := common
		midCfg.Name = "mid"
		midCfg.ListenAddr = c.listenAddr("mid")
		midCfg.UpstreamAddr = upstream
		mid, err := broker.New(midCfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Mids = append(c.Mids, mid)
		upstream = mid.BoundAddr()
	}
	for i := 0; i < topo.SHBs; i++ {
		cfg := common
		cfg.Name = fmt.Sprintf("shb%d", i)
		cfg.DataDir = filepath.Join(dir, cfg.Name)
		cfg.ListenAddr = c.listenAddr(cfg.Name)
		cfg.UpstreamAddr = upstream
		cfg.EnableSHB = true
		cfg.AllPubends = c.AllPubends()
		shb, err := broker.New(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.SHBs = append(c.SHBs, shb)
		c.shbAddrs = append(c.shbAddrs, shb.BoundAddr())
	}
	return c, nil
}

// CrashSHB crashes SHB i; RestartSHB brings a successor up from the same
// data directory.
func (c *Cluster) CrashSHB(i int) {
	c.SHBBroker(i).Crash()
}

// RestartSHB restarts a crashed SHB from its persistent state.
func (c *Cluster) RestartSHB(i int) error {
	name := fmt.Sprintf("shb%d", i)
	upstream := c.phbAddr
	if len(c.Mids) > 0 {
		upstream = c.Mids[len(c.Mids)-1].BoundAddr()
	}
	cfg := broker.Config{
		Name:              name,
		DataDir:           filepath.Join(c.dir, name),
		Transport:         c.brokerT,
		DialTimeout:       c.topo.DialTimeout,
		ListenAddr:        c.listenAddr(name),
		UpstreamAddr:      upstream,
		EnableSHB:         true,
		AllPubends:        c.AllPubends(),
		TickInterval:      c.topo.TickInterval,
		EventCacheSize:    c.topo.EventCacheSize,
		RelayCacheSize:    c.topo.RelayCacheSize,
		ReadBufferQ:       c.topo.ReadBufferQ,
		MetaCommitLatency: c.topo.MetaCommitLatency,
		OnCaughtUp:        c.topo.OnCaughtUp,
	}
	c.topo.Tuning.Apply(&cfg)
	nb, err := broker.New(cfg)
	if err != nil {
		return err
	}
	c.SHBs[i] = nb
	c.shbAddrs[i] = nb.BoundAddr()
	return nil
}

// Close shuts every broker down.
func (c *Cluster) Close() {
	for _, shb := range c.SHBs {
		shb.Close() //nolint:errcheck,gosec // shutdown
	}
	for _, mid := range c.Mids {
		mid.Close() //nolint:errcheck,gosec // shutdown
	}
	if c.PHB != nil {
		c.PHB.Close() //nolint:errcheck,gosec // shutdown
	}
}
