// Package faultnet is a fault-injection decorator for overlay transports:
// it wraps any overlay.Transport and makes link failure a first-class,
// scriptable event. Tests and the experiment harness use it to sever
// links on command, partition address sets, kill links on a deterministic
// schedule, delay traffic, and stress double-close paths — all without
// touching the transport underneath.
//
// Determinism contract: all randomness (scheduled-kill trigger points)
// comes from the seed passed to New. Given the same seed and the same
// per-link sequence of Send calls, kills fire at the same messages on
// every run; wall-clock time never feeds a decision. Commands (Partition,
// Sever, Heal) are deterministic by construction — they act when called.
//
// Only dialed connections are decorated and tracked (they carry the dial
// address, which is the targeting key); severing a dialed end kills the
// whole link, so the accept side needs no decoration.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/message"
	"repro/internal/overlay"
)

// ErrInjected is the close reason of links killed by fault injection, and
// the dial error for partitioned addresses.
var ErrInjected = errors.New("faultnet: injected fault")

// killSchedule arms automatic link kills by send count: after a seeded
// random count in [min, max] sends to the address, the link dies; the
// schedule then re-arms for the next connection.
type killSchedule struct {
	min, max  int
	remaining int
}

// Network decorates an inner transport with fault injection. It
// implements overlay.Transport; all control methods are safe for
// concurrent use with dials and sends.
type Network struct {
	inner overlay.Transport

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned map[string]bool
	schedules   map[string]*killSchedule
	conns       map[*conn]struct{}
	latency     time.Duration
	dialDelay   time.Duration
	dupClose    bool

	kills atomic.Int64
}

// New wraps inner. seed drives every random decision (0 means 1).
func New(inner overlay.Transport, seed int64) *Network {
	if seed == 0 {
		seed = 1
	}
	return &Network{
		inner:       inner,
		rng:         rand.New(rand.NewSource(seed)), //nolint:gosec // deterministic injection, not crypto
		partitioned: make(map[string]bool),
		schedules:   make(map[string]*killSchedule),
		conns:       make(map[*conn]struct{}),
	}
}

var _ overlay.Transport = (*Network)(nil)

// Listen implements overlay.Transport (pass-through: faults target dialed
// links, which is both ends of every connection).
func (n *Network) Listen(addr string, accept func(overlay.Conn)) (io.Closer, error) {
	return n.inner.Listen(addr, accept)
}

// Dial implements overlay.Transport.
func (n *Network) Dial(addr string) (overlay.Conn, error) {
	return n.DialContext(context.Background(), addr)
}

// DialContext implements overlay.Transport: dials to partitioned
// addresses fail with ErrInjected; successful dials return a decorated
// connection subject to this network's faults.
func (n *Network) DialContext(ctx context.Context, addr string) (overlay.Conn, error) {
	n.mu.Lock()
	cut := n.partitioned[addr]
	delay := n.dialDelay
	n.mu.Unlock()
	if cut {
		return nil, fmt.Errorf("faultnet: dial %q: %w", addr, ErrInjected)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("faultnet: dial %q: %w", addr, ctx.Err())
		}
	}
	inner, err := n.inner.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := &conn{Conn: inner, net: n, addr: addr}
	n.mu.Lock()
	// A partition raced the dial: kill the fresh link instead of leaking
	// it across the cut.
	if n.partitioned[addr] {
		n.mu.Unlock()
		c.kill()
		return nil, fmt.Errorf("faultnet: dial %q: %w", addr, ErrInjected)
	}
	n.conns[c] = struct{}{}
	n.mu.Unlock()
	return c, nil
}

// Partition makes the addresses unreachable: existing links to them are
// severed and new dials fail until Heal. Severs are counted as kills.
func (n *Network) Partition(addrs ...string) {
	n.mu.Lock()
	for _, a := range addrs {
		n.partitioned[a] = true
	}
	victims := n.victimsLocked(addrs)
	n.mu.Unlock()
	n.killAll(victims)
}

// Heal reverses Partition for the addresses (all of them when none are
// given).
func (n *Network) Heal(addrs ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(addrs) == 0 {
		n.partitioned = make(map[string]bool)
		return
	}
	for _, a := range addrs {
		delete(n.partitioned, a)
	}
}

// Sever kills every live link dialed to addr (redials stay allowed — use
// Partition to block those too). It reports how many links were killed.
func (n *Network) Sever(addr string) int {
	n.mu.Lock()
	victims := n.victimsLocked([]string{addr})
	n.mu.Unlock()
	n.killAll(victims)
	return len(victims)
}

// SeverAll kills every live decorated link.
func (n *Network) SeverAll() int {
	n.mu.Lock()
	victims := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	n.killAll(victims)
	return len(victims)
}

// SeverAfterSends arms a repeating scheduled kill for links dialed to
// addr: after a seeded random number of sends in [minSends, maxSends]
// crosses such a link, it is killed (the triggering message is dropped,
// as a crash mid-send would); the schedule re-arms for the next link.
// minSends == maxSends gives an exact, fully deterministic trigger.
func (n *Network) SeverAfterSends(addr string, minSends, maxSends int) {
	if minSends < 1 {
		minSends = 1
	}
	if maxSends < minSends {
		maxSends = minSends
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	sched := &killSchedule{min: minSends, max: maxSends}
	sched.remaining = n.armLocked(sched)
	n.schedules[addr] = sched
}

// ClearSchedule disarms SeverAfterSends for addr.
func (n *Network) ClearSchedule(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.schedules, addr)
}

// SetLatency injects a fixed delay before every send on decorated links
// (0 disables).
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// SetDialDelay injects a fixed delay into every dial (0 disables);
// DialContext deadlines still apply, so a delay longer than the caller's
// timeout manifests as a dial timeout.
func (n *Network) SetDialDelay(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dialDelay = d
}

// SetDuplicateClose makes every injected kill invoke the victim's Close
// from two goroutines at once, stressing close idempotency the way
// overlapping teardown paths (reader error + supervisor stop) do.
func (n *Network) SetDuplicateClose(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dupClose = on
}

// Kills reports how many links this network has killed (severs,
// partitions, and scheduled kills).
func (n *Network) Kills() int64 { return n.kills.Load() }

// armLocked draws the next scheduled-kill countdown. Caller holds n.mu.
func (n *Network) armLocked(s *killSchedule) int {
	if s.max == s.min {
		return s.min
	}
	return s.min + n.rng.Intn(s.max-s.min+1)
}

// victimsLocked collects live conns dialed to any of addrs. Caller holds
// n.mu.
func (n *Network) victimsLocked(addrs []string) []*conn {
	set := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		set[a] = true
	}
	var victims []*conn
	for c := range n.conns {
		if set[c.addr] {
			victims = append(victims, c)
		}
	}
	return victims
}

func (n *Network) killAll(victims []*conn) {
	for _, c := range victims {
		c.kill()
	}
}

// forget removes a closed conn from tracking.
func (n *Network) forget(c *conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// conn decorates one dialed connection.
type conn struct {
	overlay.Conn
	net      *Network
	addr     string
	injected atomic.Bool
	killOnce sync.Once
}

// Send applies latency and scheduled kills, then forwards to the inner
// link.
func (c *conn) Send(m message.Message) error {
	n := c.net
	n.mu.Lock()
	latency := n.latency
	killNow := false
	if sched, ok := n.schedules[c.addr]; ok {
		sched.remaining--
		if sched.remaining <= 0 {
			killNow = true
			sched.remaining = n.armLocked(sched)
		}
	}
	n.mu.Unlock()
	if killNow {
		// The link dies instead of delivering this message — the view a
		// sender has of a peer that crashed mid-send.
		c.kill()
		return fmt.Errorf("faultnet: send on %q: %w", c.addr, ErrInjected)
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	return c.Conn.Send(m)
}

// OnClose interposes on the close hook so injected kills report
// ErrInjected instead of the inner transport's local-close reason.
func (c *conn) OnClose(fn func(error)) {
	c.Conn.OnClose(func(reason error) {
		if c.injected.Load() {
			reason = ErrInjected
		}
		fn(reason)
	})
}

// Close forwards a deliberate local close (not counted as a kill).
func (c *conn) Close() error {
	c.net.forget(c)
	return c.Conn.Close()
}

// kill tears the link down as an injected fault.
func (c *conn) kill() {
	c.killOnce.Do(func() {
		c.injected.Store(true)
		c.net.kills.Add(1)
		c.net.forget(c)
		n := c.net
		n.mu.Lock()
		dup := n.dupClose
		n.mu.Unlock()
		if dup {
			var wg sync.WaitGroup
			wg.Add(2)
			for i := 0; i < 2; i++ {
				go func() {
					defer wg.Done()
					c.Conn.Close() //nolint:errcheck,gosec // injected teardown
				}()
			}
			wg.Wait()
			return
		}
		c.Conn.Close() //nolint:errcheck,gosec // injected teardown
	})
}
