package faultnet

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

func ack(sub vtime.SubscriberID) *message.Ack {
	ct := vtime.NewCheckpointToken()
	ct.Set(1, vtime.Timestamp(sub))
	return &message.Ack{Subscriber: sub, CT: ct}
}

// listenDiscard binds addr on t and discards inbound messages.
func listenDiscard(tb testing.TB, t overlay.Transport, addr string) {
	tb.Helper()
	if _, err := t.Listen(addr, func(c overlay.Conn) {
		c.Start(func(message.Message) {})
	}); err != nil {
		tb.Fatal(err)
	}
}

func waitCond(tb testing.TB, what string, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	tb.Fatalf("timeout waiting for %s", what)
}

func TestPartitionBlocksDialsAndSeversLinks(t *testing.T) {
	inner := overlay.NewInprocNetwork(0)
	fn := New(inner, 42)
	listenDiscard(t, fn, "srv")

	c, err := fn.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	reason := make(chan error, 1)
	c.OnClose(func(err error) { reason <- err })
	c.Start(func(message.Message) {})

	fn.Partition("srv")

	// The live link dies with the injected reason...
	select {
	case err := <-reason:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("close reason = %v, want ErrInjected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partition did not sever the live link")
	}
	// ...and new dials are refused.
	if _, err := fn.Dial("srv"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial into partition = %v, want ErrInjected", err)
	}
	if got := fn.Kills(); got != 1 {
		t.Fatalf("Kills = %d, want 1", got)
	}

	// Heal restores dialability.
	fn.Heal()
	c2, err := fn.Dial("srv")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c2.Start(func(message.Message) {})
	if err := c2.Send(ack(1)); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	c2.Close() //nolint:errcheck
}

func TestListenPassesThrough(t *testing.T) {
	// Clients on the inner, undecorated transport must still reach
	// listeners registered through the fault network — the experiment
	// harness depends on this split.
	inner := overlay.NewInprocNetwork(0)
	fn := New(inner, 1)
	listenDiscard(t, fn, "broker")
	fn.Partition("broker") // partitions only decorated dials

	c, err := inner.Dial("broker")
	if err != nil {
		t.Fatalf("inner dial bypassing faults: %v", err)
	}
	c.Start(func(message.Message) {})
	if err := c.Send(ack(1)); err != nil {
		t.Fatal(err)
	}
	c.Close() //nolint:errcheck
}

func TestSeverKillsOnlyTargetAddr(t *testing.T) {
	inner := overlay.NewInprocNetwork(0)
	fn := New(inner, 1)
	listenDiscard(t, fn, "a")
	listenDiscard(t, fn, "b")

	ca, err := fn.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := fn.Dial("b")
	if err != nil {
		t.Fatal(err)
	}
	ca.Start(func(message.Message) {})
	cb.Start(func(message.Message) {})

	if got := fn.Sever("a"); got != 1 {
		t.Fatalf("Sever(a) = %d, want 1", got)
	}
	waitCond(t, "link a dead", func() bool { return ca.Send(ack(1)) != nil })
	if err := cb.Send(ack(2)); err != nil {
		t.Fatalf("unrelated link b severed too: %v", err)
	}
	if got := fn.SeverAll(); got != 1 {
		t.Fatalf("SeverAll = %d, want 1 (only b left)", got)
	}
	if got := fn.Kills(); got != 2 {
		t.Fatalf("Kills = %d, want 2", got)
	}
}

// killCounts dials addr repeatedly under an armed schedule and records how
// many sends each connection survived before the injected kill.
func killCounts(tb testing.TB, fn *Network, addr string, links int) []int {
	tb.Helper()
	var out []int
	for i := 0; i < links; i++ {
		c, err := fn.Dial(addr)
		if err != nil {
			tb.Fatal(err)
		}
		c.Start(func(message.Message) {})
		sends := 0
		for {
			if err := c.Send(ack(1)); err != nil {
				if !errors.Is(err, ErrInjected) {
					tb.Fatalf("send died with %v, want ErrInjected", err)
				}
				break
			}
			sends++
			if sends > 10000 {
				tb.Fatal("scheduled kill never fired")
			}
		}
		out = append(out, sends)
	}
	return out
}

func TestSeverAfterSendsIsDeterministic(t *testing.T) {
	run := func(seed int64) []int {
		inner := overlay.NewInprocNetwork(0)
		fn := New(inner, seed)
		listenDiscard(t, fn, "sched")
		fn.SeverAfterSends("sched", 3, 20)
		return killCounts(t, fn, "sched", 5)
	}
	a := run(99)
	b := run(99)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at link %d: %v vs %v", i, a, b)
		}
		if a[i] < 2 || a[i] > 19 {
			// remaining in [3,20] means 2..19 successful sends before
			// the dropped triggering message.
			t.Fatalf("kill point %d outside schedule bounds: %v", a[i], a)
		}
	}
	c := run(100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical kill points: %v", a)
	}
}

func TestSeverAfterSendsExactAndClear(t *testing.T) {
	inner := overlay.NewInprocNetwork(0)
	fn := New(inner, 1)
	listenDiscard(t, fn, "exact")
	fn.SeverAfterSends("exact", 4, 4)
	got := killCounts(t, fn, "exact", 3)
	for i, sends := range got {
		if sends != 3 {
			t.Fatalf("link %d survived %d sends, want exactly 3", i, sends)
		}
	}
	fn.ClearSchedule("exact")
	c, err := fn.Dial("exact")
	if err != nil {
		t.Fatal(err)
	}
	c.Start(func(message.Message) {})
	for i := 0; i < 20; i++ {
		if err := c.Send(ack(1)); err != nil {
			t.Fatalf("send %d after ClearSchedule: %v", i, err)
		}
	}
	c.Close() //nolint:errcheck
}

func TestDuplicateCloseIsSafe(t *testing.T) {
	inner := overlay.NewInprocNetwork(0)
	fn := New(inner, 1)
	fn.SetDuplicateClose(true)
	listenDiscard(t, fn, "dup")
	for i := 0; i < 10; i++ {
		c, err := fn.Dial("dup")
		if err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		c.OnClose(func(error) { close(closed) })
		c.Start(func(message.Message) {})
		fn.Sever("dup")
		select {
		case <-closed:
		case <-time.After(2 * time.Second):
			t.Fatal("duplicate close lost the close notification")
		}
	}
	if got := fn.Kills(); got != 10 {
		t.Fatalf("Kills = %d, want 10", got)
	}
}

func TestDialDelayRespectsContext(t *testing.T) {
	inner := overlay.NewInprocNetwork(0)
	fn := New(inner, 1)
	listenDiscard(t, fn, "slow")
	fn.SetDialDelay(5 * time.Second)
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := fn.DialContext(ctx, "slow"); err == nil {
		t.Fatal("delayed dial beat a shorter context deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial did not honor context cancellation: took %v", elapsed)
	}
	fn.SetDialDelay(0)
	c, err := fn.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	c.Close() //nolint:errcheck
}
