package jms

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/metastore"
	"repro/internal/vtime"
)

func newTestStore(t *testing.T, connections int, latency time.Duration) (*Store, *metastore.Store, string) {
	t.Helper()
	dir := t.TempDir()
	return openStore(t, dir, connections, latency)
}

func openStore(t *testing.T, dir string, connections int, latency time.Duration) (*Store, *metastore.Store, string) {
	t.Helper()
	meta, err := metastore.Open(filepath.Join(dir, "jms.meta"), metastore.Options{
		Sync:          metastore.SyncNone,
		CommitLatency: latency,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(Options{Meta: meta, Connections: connections})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()    //nolint:errcheck
		meta.Close() //nolint:errcheck
	})
	return s, meta, dir
}

func ctAt(pub vtime.PubendID, ts vtime.Timestamp) *vtime.CheckpointToken {
	ct := vtime.NewCheckpointToken()
	ct.Set(pub, ts)
	return ct
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(Options{}); err == nil {
		t.Error("NewStore without Meta succeeded")
	}
}

func TestCommitAndLoad(t *testing.T) {
	s, _, _ := newTestStore(t, 1, 0)
	if err := s.Commit(7, ctAt(1, 100)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(1) != 100 {
		t.Errorf("loaded CT = %v", got)
	}
	// Unknown subscriber: empty token.
	got, err = s.Load(99)
	if err != nil || got.Len() != 0 {
		t.Errorf("Load(99) = %v, %v", got, err)
	}
}

func TestCommitMergesMonotonically(t *testing.T) {
	s, _, _ := newTestStore(t, 1, 0)
	s.Commit(1, ctAt(1, 50))  //nolint:errcheck
	s.Commit(1, ctAt(1, 100)) //nolint:errcheck
	s.Commit(1, ctAt(2, 70))  //nolint:errcheck
	got, err := s.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(1) != 100 || got.Get(2) != 70 {
		t.Errorf("merged CT = %v", got)
	}
}

func TestCommitSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s, meta, _ := openStore(t, dir, 2, 0)
	for i := vtime.SubscriberID(1); i <= 10; i++ {
		if err := s.Commit(i, ctAt(1, vtime.Timestamp(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()    //nolint:errcheck
	meta.Close() //nolint:errcheck

	s2, _, _ := openStore(t, dir, 2, 0)
	for i := vtime.SubscriberID(1); i <= 10; i++ {
		got, err := s2.Load(i)
		if err != nil || got.Get(1) != vtime.Timestamp(i)*10 {
			t.Errorf("recovered CT(%d) = %v, %v", i, got, err)
		}
	}
}

func TestBatchingAmortizesCommits(t *testing.T) {
	// With commit latency, many concurrent auto-acks on one connection
	// must share transactions: commits << updates.
	s, _, _ := newTestStore(t, 1, 2*time.Millisecond)
	const subs, per = 20, 10
	var wg sync.WaitGroup
	for id := 0; id < subs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				if err := s.Commit(vtime.SubscriberID(id), ctAt(1, vtime.Timestamp(i))); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	updates, commits := s.Updates(), s.Commits()
	if updates != subs*per {
		t.Errorf("updates = %d, want %d", updates, subs*per)
	}
	if commits >= updates/2 {
		t.Errorf("batching ineffective: %d commits for %d updates", commits, updates)
	}
}

func TestMoreSubscribersAmortizeBetter(t *testing.T) {
	// Section 5.2's shape: auto-ack throughput is bounded by the
	// database commit rate, so aggregate events/s grows with the number
	// of subscribers (each commit carries more CT updates): 4K ev/s at
	// 25 subscribers vs 7.6K at 200 in the paper. Here: per-subscriber
	// serialized commits, fixed wall-clock budget, compare aggregate
	// updates committed.
	run := func(subs int) float64 {
		s, _, _ := newTestStore(t, 4, time.Millisecond)
		const duration = 60 * time.Millisecond
		deadline := time.Now().Add(duration)
		var wg sync.WaitGroup
		for id := 0; id < subs; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for i := 1; time.Now().Before(deadline); i++ {
					// Auto-ack: serialized per subscriber.
					s.Commit(vtime.SubscriberID(id), ctAt(1, vtime.Timestamp(i))) //nolint:errcheck
				}
			}(id)
		}
		wg.Wait()
		return float64(s.Updates()) / duration.Seconds()
	}
	small := run(5)
	large := run(40)
	if large <= small {
		t.Errorf("aggregate auto-ack rate did not grow with subscriber count: %0.0f/s at 5 subs vs %0.0f/s at 40", small, large)
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	s, _, _ := newTestStore(t, 1, 0)
	s.Close() //nolint:errcheck
	if err := s.Commit(1, ctAt(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("commit after close = %v", err)
	}
}

func TestLoadCorruptCT(t *testing.T) {
	s, meta, _ := newTestStore(t, 1, 0)
	meta.Begin().Put(tableCT, subKey(5), []byte{0, 0}).Commit() //nolint:errcheck
	if _, err := s.Load(5); err == nil {
		t.Error("corrupt CT loaded successfully")
	}
}
