package jms

import (
	"errors"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/message"
)

// AutoAckConsumer drives a durable subscriber in a JMS acknowledgment
// mode. In auto-acknowledge (BatchSize 1, the default) every consumed
// event is followed by a synchronous CT(s) commit through the Store before
// the next event is consumed — the per-event commit regime whose
// throughput section 5.2 measures. A BatchSize of N models JMS
// CLIENT_ACKNOWLEDGE / transacted sessions committing every N messages.
type AutoAckConsumer struct {
	sub   *client.Subscriber
	store *Store
	batch int

	consumed atomic.Int64
	stop     chan struct{}
	done     chan struct{}
}

// NewAutoAckConsumer wraps a connected subscriber in auto-acknowledge mode
// (commit per event). Call Run to start consuming; Stop to halt.
func NewAutoAckConsumer(sub *client.Subscriber, store *Store) *AutoAckConsumer {
	return NewBatchAckConsumer(sub, store, 1)
}

// NewBatchAckConsumer wraps a connected subscriber committing every
// batchSize events (JMS client-acknowledge / transacted consumption).
func NewBatchAckConsumer(sub *client.Subscriber, store *Store, batchSize int) *AutoAckConsumer {
	if batchSize < 1 {
		batchSize = 1
	}
	return &AutoAckConsumer{
		sub:   sub,
		store: store,
		batch: batchSize,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Run consumes deliveries until Stop is called or the store closes,
// committing CT(s) every batch-size events (and once more on shutdown for
// any uncommitted tail).
func (a *AutoAckConsumer) Run() error {
	defer close(a.done)
	pending := 0
	flush := func() error {
		if pending == 0 {
			return nil
		}
		if err := a.store.Commit(a.sub.ID(), a.sub.CT()); err != nil {
			return err
		}
		a.consumed.Add(int64(pending))
		pending = 0
		return nil
	}
	for {
		select {
		case d := <-a.sub.Deliveries():
			if d.Kind != message.DeliverEvent {
				continue
			}
			pending++
			if pending >= a.batch {
				if err := flush(); err != nil {
					if errors.Is(err, ErrClosed) {
						return nil
					}
					return err
				}
			}
		case <-a.stop:
			if err := flush(); err != nil && !errors.Is(err, ErrClosed) {
				return err
			}
			return nil
		}
	}
}

// Consumed reports the number of events consumed-and-committed.
func (a *AutoAckConsumer) Consumed() int64 { return a.consumed.Load() }

// Stop halts Run and waits for it to exit.
func (a *AutoAckConsumer) Stop() {
	close(a.stop)
	<-a.done
}
