// Package jms implements JMS-style durable subscriptions on top of the
// durable-subscription core (paper, section 5.2).
//
// Unlike the native model — where the subscriber owns its checkpoint token
// — the JMS API requires the messaging system to track consumption: the
// SHB maintains CT(s) in persistent storage and commits it whenever the
// subscriber commits. Auto-acknowledge mode is the most severe case: the
// subscriber commits after consuming each event, so CT(s) is updated and
// committed per event, making database commit throughput the bottleneck.
//
// The paper's mitigation is reproduced exactly: CT updates are spread over
// k connections (here: committer workers), each of which "explicitly
// batches all the waiting requests into one database transaction". With a
// battery-backed write cache, commits are cheap but still serialized per
// connection; Options.CommitLatency models that cost.
package jms

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/metastore"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

const tableCT = "jms_ct"

// JMS instruments (process-wide; see internal/telemetry).
var (
	tAckCommits = telemetry.Default().Counter("gryphon_jms_ack_commits_total",
		"Database transactions committing JMS checkpoint tokens.")
	tAckUpdates = telemetry.Default().Counter("gryphon_jms_ack_updates_total",
		"Subscriber CT updates covered by those transactions (batching wins when updates > commits).")
	tAckSeconds = telemetry.Default().DurationHistogram("gryphon_jms_ack_commit_seconds",
		"JMS CT commit transaction latency.", telemetry.FastBuckets)
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("jms: closed")

// Options configures a CT store.
type Options struct {
	// Meta is the backing database (required).
	Meta *metastore.Store
	// Connections is the number of committer workers (the paper's JDBC
	// connections); zero means 1.
	Connections int
}

// Store persistently tracks CT(s) for JMS durable subscribers hosted by an
// SHB. Commit batches all requests waiting on the same connection into one
// transaction.
type Store struct {
	meta    *metastore.Store
	workers []*committer
	wg      sync.WaitGroup
}

// committer is one "database connection": a worker that serializes commits
// and batches concurrent requests.
type committer struct {
	store *Store
	mu    sync.Mutex
	cond  *sync.Cond

	pending map[vtime.SubscriberID]*vtime.CheckpointToken
	// epoch increments at every completed commit; waiters watch it.
	epoch    uint64
	inFlight uint64 // epoch that will cover currently pending requests
	closed   bool

	commits int64
	updates int64
}

// NewStore creates a CT store with its committer workers running.
func NewStore(opts Options) (*Store, error) {
	if opts.Meta == nil {
		return nil, errors.New("jms: Meta is required")
	}
	if opts.Connections <= 0 {
		opts.Connections = 1
	}
	s := &Store{meta: opts.Meta}
	for i := 0; i < opts.Connections; i++ {
		c := &committer{
			store:   s,
			pending: make(map[vtime.SubscriberID]*vtime.CheckpointToken),
		}
		c.cond = sync.NewCond(&c.mu)
		s.workers = append(s.workers, c)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.run()
		}()
	}
	return s, nil
}

// worker returns the committer responsible for a subscriber (requests are
// assigned to connections by subscriber id, as in the paper).
func (s *Store) worker(sub vtime.SubscriberID) *committer {
	return s.workers[int(uint32(sub))%len(s.workers)]
}

// Commit durably records the subscriber's checkpoint token, merging with
// any newer pending update, and returns once a database transaction
// covering it has committed. Concurrent commits on the same connection
// share one transaction.
func (s *Store) Commit(sub vtime.SubscriberID, ct *vtime.CheckpointToken) error {
	c := s.worker(sub)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if cur := c.pending[sub]; cur != nil {
		cur.Merge(ct)
	} else {
		c.pending[sub] = ct.Clone()
	}
	c.updates++
	target := c.inFlight
	c.cond.Broadcast() // wake the worker
	for c.epoch <= target && !c.closed {
		c.cond.Wait()
	}
	closed := c.closed && c.epoch <= target
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return nil
}

// Load returns the persisted checkpoint token for a subscriber (empty when
// none).
func (s *Store) Load(sub vtime.SubscriberID) (*vtime.CheckpointToken, error) {
	buf, ok := s.meta.Get(tableCT, subKey(sub))
	if !ok {
		return vtime.NewCheckpointToken(), nil
	}
	ct, _, err := vtime.DecodeCheckpointToken(buf)
	if err != nil {
		return nil, fmt.Errorf("jms: corrupt CT for %v: %w", sub, err)
	}
	return ct, nil
}

// Commits reports the total number of database transactions issued.
func (s *Store) Commits() int64 {
	var n int64
	for _, c := range s.workers {
		c.mu.Lock()
		n += c.commits
		c.mu.Unlock()
	}
	return n
}

// Updates reports the total number of Commit calls served.
func (s *Store) Updates() int64 {
	var n int64
	for _, c := range s.workers {
		c.mu.Lock()
		n += c.updates
		c.mu.Unlock()
	}
	return n
}

// Close stops the committers, flushing pending updates.
func (s *Store) Close() error {
	for _, c := range s.workers {
		c.mu.Lock()
		c.closed = true
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	s.wg.Wait()
	return nil
}

func subKey(sub vtime.SubscriberID) string {
	return strconv.FormatUint(uint64(sub), 10)
}

// run is the committer loop: wait for pending updates, swap them out,
// commit them as one transaction, advance the epoch.
func (c *committer) run() {
	for {
		c.mu.Lock()
		for len(c.pending) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.pending) == 0 && c.closed {
			c.mu.Unlock()
			return
		}
		batch := c.pending
		c.pending = make(map[vtime.SubscriberID]*vtime.CheckpointToken, len(batch))
		c.inFlight++
		c.mu.Unlock()

		tx := c.store.meta.Begin()
		for sub, ct := range batch {
			// A commit may carry a partial vector; the persisted
			// CT(s) is the monotone merge of everything committed.
			if prev, err := c.store.Load(sub); err == nil {
				ct.Merge(prev)
			}
			tx.Put(tableCT, subKey(sub), ct.Encode(nil))
		}
		commitStart := time.Now()
		err := tx.Commit()
		if err == nil {
			tAckCommits.Inc()
			tAckUpdates.Add(int64(len(batch)))
			tAckSeconds.ObserveDuration(time.Since(commitStart))
		}

		c.mu.Lock()
		if err == nil {
			c.epoch++
			c.commits++
		} else {
			// The metastore only fails commits when it is closed;
			// propagate by closing this connection so waiters err
			// out instead of hanging.
			c.closed = true
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		if err != nil {
			return
		}
	}
}
