package jms

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/overlay"
	"repro/internal/vtime"
)

// miniSHB answers the subscribe handshake and delivers scripted events.
type miniSHB struct {
	mu   sync.Mutex
	conn overlay.Conn
}

func startMiniSHB(t *testing.T, netw *overlay.InprocNetwork) *miniSHB {
	t.Helper()
	m := &miniSHB{}
	_, err := netw.Listen("shb", func(c overlay.Conn) {
		m.mu.Lock()
		m.conn = c
		m.mu.Unlock()
		c.Start(func(msg message.Message) {
			if sub, ok := msg.(*message.Subscribe); ok {
				c.Send(&message.SubscribeAck{ //nolint:errcheck,gosec // test
					Subscriber: sub.Subscriber, CT: vtime.NewCheckpointToken(),
				})
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (m *miniSHB) deliver(sub vtime.SubscriberID, n int, from vtime.Timestamp) {
	m.mu.Lock()
	conn := m.conn
	m.mu.Unlock()
	var ds []message.Delivery
	for i := 0; i < n; i++ {
		ts := from + vtime.Timestamp(i)
		ds = append(ds, message.Delivery{
			Kind: message.DeliverEvent, Pubend: 1, Timestamp: ts,
			Event: &message.Event{Pubend: 1, Timestamp: ts,
				Attrs: filter.Attributes{"n": filter.Int(int64(ts))}},
		})
	}
	conn.Send(&message.Deliver{Subscriber: sub, Deliveries: ds}) //nolint:errcheck,gosec // test
}

func TestAutoAckConsumerCommitsPerEvent(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	shb := startMiniSHB(t, netw)
	store, _, _ := newTestStore(t, 1, 0)
	sub, err := client.NewSubscriber(client.SubscriberOptions{ID: 1, Filter: "true"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	ac := NewAutoAckConsumer(sub, store)
	go ac.Run() //nolint:errcheck
	shb.deliver(1, 10, 100)
	deadline := time.Now().Add(5 * time.Second)
	for ac.Consumed() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ac.Stop()
	if ac.Consumed() != 10 {
		t.Fatalf("consumed %d", ac.Consumed())
	}
	ct, err := store.Load(1)
	if err != nil || ct.Get(1) != 109 {
		t.Fatalf("persisted CT = %v, %v", ct, err)
	}
	// Auto-ack: roughly one update per event (batching may coalesce a
	// few, but updates track events).
	if store.Updates() != 10 {
		t.Errorf("updates = %d, want 10", store.Updates())
	}
}

func TestBatchAckConsumerCommitsPerBatch(t *testing.T) {
	netw := overlay.NewInprocNetwork(0)
	shb := startMiniSHB(t, netw)
	store, _, _ := newTestStore(t, 1, 0)
	sub, err := client.NewSubscriber(client.SubscriberOptions{ID: 2, Filter: "true"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Connect(context.Background(), netw, "shb"); err != nil {
		t.Fatal(err)
	}
	defer sub.Disconnect() //nolint:errcheck

	ac := NewBatchAckConsumer(sub, store, 4)
	go ac.Run()             //nolint:errcheck
	shb.deliver(2, 10, 200) // 2 full batches + 2 leftover
	deadline := time.Now().Add(5 * time.Second)
	for ac.Consumed() < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := store.Updates(); got != 2 {
		t.Errorf("updates before stop = %d, want 2 (one per full batch)", got)
	}
	ac.Stop() // flushes the leftover 2
	if ac.Consumed() != 10 {
		t.Fatalf("consumed %d, want 10 after shutdown flush", ac.Consumed())
	}
	ct, err := store.Load(2)
	if err != nil || ct.Get(1) != 209 {
		t.Fatalf("persisted CT = %v, %v", ct, err)
	}
	if got := store.Updates(); got != 3 {
		t.Errorf("updates = %d, want 3", got)
	}
}
