package ringq

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 1000; i++ {
		r.Push(i)
	}
	for i := 0; i < 1000; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d/%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty ring returned ok")
	}
}

func TestWrapAround(t *testing.T) {
	// Interleave pushes and pops so head circles the backing array many
	// times at a size below the grow threshold.
	var r Ring[int]
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		for i := 0; i < 7; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 7; i++ {
			v, ok := r.Pop()
			if !ok || v != expect {
				t.Fatalf("round %d: pop = %d/%v, want %d", round, v, ok, expect)
			}
			expect++
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after balanced rounds", r.Len())
	}
}

// TestCapacityBoundedAfterBurst is the memory-retention regression test:
// after a large burst drains, the backing array must shrink back instead
// of pinning the burst's high-water mark forever (the old append+shift
// queues kept it for the life of the link).
func TestCapacityBoundedAfterBurst(t *testing.T) {
	const burst = 1 << 17
	var r Ring[int]
	for i := 0; i < burst; i++ {
		r.Push(i)
	}
	if r.Cap() < burst {
		t.Fatalf("cap %d below burst %d", r.Cap(), burst)
	}
	for i := 0; i < burst; i++ {
		if v, ok := r.Pop(); !ok || v != i {
			t.Fatalf("pop %d = %d/%v", i, v, ok)
		}
	}
	if r.Cap() > minCapacity {
		t.Fatalf("cap %d retained after burst drained (want <= %d)", r.Cap(), minCapacity)
	}
	// Same property for the batch drain used by the TCP write coalescer.
	for i := 0; i < burst; i++ {
		r.Push(i)
	}
	out := r.PopAll(nil)
	if len(out) != burst {
		t.Fatalf("PopAll returned %d of %d", len(out), burst)
	}
	if r.Cap() > minCapacity {
		t.Fatalf("cap %d retained after PopAll (want <= %d)", r.Cap(), minCapacity)
	}
}

// TestDrainedSlotsReleased verifies Pop and PopAll nil out slots: pointers
// queued and drained must become collectable even while the Ring value
// stays alive.
func TestDrainedSlotsReleased(t *testing.T) {
	var r Ring[*[1 << 16]byte]
	finalized := make(chan struct{}, 64)
	for i := 0; i < 64; i++ {
		p := new([1 << 16]byte)
		runtime.SetFinalizer(p, func(*[1 << 16]byte) { finalized <- struct{}{} })
		r.Push(p)
	}
	for i := 0; i < 32; i++ {
		r.Pop()
	}
	r.PopAll(nil)
	collected := 0
	for attempt := 0; attempt < 100 && collected < 64; attempt++ {
		runtime.GC()
	drain:
		for {
			select {
			case <-finalized:
				collected++
			default:
				break drain
			}
		}
	}
	if collected < 64 {
		t.Fatalf("only %d/64 drained elements were collected; slots retained", collected)
	}
}

func TestPopAllReusesDst(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 10; i++ {
		r.Push(i)
	}
	dst := make([]int, 0, 32)
	out := r.PopAll(dst)
	if len(out) != 10 || cap(out) != 32 {
		t.Fatalf("PopAll did not reuse dst: len=%d cap=%d", len(out), cap(out))
	}
	if out2 := r.PopAll(out[:0]); len(out2) != 0 {
		t.Fatalf("PopAll on empty ring returned %d items", len(out2))
	}
}

// TestQuickSequences property-tests arbitrary push/pop interleavings
// against a reference slice queue.
func TestQuickSequences(t *testing.T) {
	check := func(ops []uint8) bool {
		var r Ring[uint8]
		var ref []uint8
		for _, op := range ops {
			if op%3 == 0 && len(ref) > 0 {
				want := ref[0]
				ref = ref[1:]
				got, ok := r.Pop()
				if !ok || got != want {
					return false
				}
			} else {
				r.Push(op)
				ref = append(ref, op)
			}
		}
		rest := r.PopAll(nil)
		if len(rest) != len(ref) {
			return false
		}
		for i := range rest {
			if rest[i] != ref[i] {
				return false
			}
		}
		return r.Len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
