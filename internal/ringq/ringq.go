// Package ringq provides the unbounded FIFO ring buffer backing the
// broker's shard task queues and the overlay's per-link send queues.
//
// It replaces the earlier append+shift slice queues, which had two
// pathologies under bursty load: `items = items[1:]` never released the
// backing array's head slots (drained elements stayed reachable until the
// whole array was dropped), and the backing array only ever grew — one
// burst of N messages pinned O(N) memory for the life of the link. The
// ring nils out every drained slot immediately and shrinks its backing
// array once occupancy falls far enough, so steady-state memory tracks the
// live queue depth, not the historical maximum.
//
// Ring is deliberately not goroutine-safe: callers own the locking (the
// broker and overlay wrap it with a mutex + condition variable so pop can
// block), keeping the data structure itself allocation- and branch-lean.
package ringq

// minCapacity is the smallest backing array the ring keeps. Small enough
// that an idle link costs nothing to speak of, large enough that a
// ping-pong workload never resizes.
const minCapacity = 16

// Ring is an unbounded FIFO queue over a circular backing array.
// The zero value is ready to use. Not goroutine-safe.
type Ring[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // number of live elements
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap reports the current backing-array capacity (exposed for the
// memory-retention regression tests).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v at the tail, growing the backing array if full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.resize(max(minCapacity, 2*r.n))
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Pop removes and returns the head element. The drained slot is zeroed so
// the ring never retains a reference to a dequeued element, and the
// backing array shrinks once it is three-quarters empty.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.maybeShrink()
	return v, true
}

// PopAll appends every queued element to dst (reusing its capacity) and
// empties the ring, returning the extended slice. The backing array is
// zeroed and shrunk to the minimum: a drain-all is exactly the point where
// a burst's memory should be handed back.
func (r *Ring[T]) PopAll(dst []T) []T {
	if r.n == 0 {
		return dst
	}
	var zero T
	for i := 0; i < r.n; i++ {
		j := (r.head + i) % len(r.buf)
		dst = append(dst, r.buf[j])
		r.buf[j] = zero
	}
	r.head, r.n = 0, 0
	if len(r.buf) > minCapacity {
		r.buf = make([]T, minCapacity)
	}
	return dst
}

// maybeShrink halves the backing array when the ring is ≤ 1/4 full, down
// to minCapacity. The quarter threshold (vs. half) gives hysteresis so a
// queue oscillating around a power of two does not thrash allocations.
func (r *Ring[T]) maybeShrink() {
	if c := len(r.buf); c > minCapacity && r.n <= c/4 {
		r.resize(max(minCapacity, c/2))
	}
}

// resize moves the live elements into a fresh backing array of capacity c.
func (r *Ring[T]) resize(c int) {
	nb := make([]T, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}
