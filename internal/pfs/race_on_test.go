//go:build race

package pfs

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
