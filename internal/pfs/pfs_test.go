package pfs

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/logvol"
	"repro/internal/metastore"
	"repro/internal/tick"
	"repro/internal/vtime"
)

type fixture struct {
	pfs  *PFS
	vol  *logvol.Volume
	meta *metastore.Store
	dir  string
}

func newFixture(t *testing.T, opts Options) *fixture {
	t.Helper()
	dir := t.TempDir()
	return openFixture(t, dir, opts)
}

func openFixture(t *testing.T, dir string, opts Options) *fixture {
	t.Helper()
	vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := metastore.Open(filepath.Join(dir, "meta.wal"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	opts.Volume = vol
	opts.Meta = meta
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{pfs: p, vol: vol, meta: meta, dir: dir}
	t.Cleanup(func() {
		vol.Close()  //nolint:errcheck
		meta.Close() //nolint:errcheck
	})
	return f
}

// spansToTicks expands spans into a tick set for comparison.
func spansToTicks(spans []tick.Span) map[vtime.Timestamp]bool {
	out := map[vtime.Timestamp]bool{}
	for _, sp := range spans {
		for ts := sp.Start; ts <= sp.End; ts++ {
			out[ts] = true
		}
	}
	return out
}

func TestWriteRequiresOptions(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New without Volume/Meta should fail")
	}
}

func TestWriteReadBasic(t *testing.T) {
	f := newFixture(t, Options{})
	// Figure 2's example: records at ts 1 (s1, s3), 3 (s2), 4 (s1, s3),
	// 5 (s1, s2); ts 2 matches nobody.
	writes := []struct {
		ts   vtime.Timestamp
		subs []vtime.SubscriberID
	}{
		{1, []vtime.SubscriberID{1, 3}},
		{3, []vtime.SubscriberID{2}},
		{4, []vtime.SubscriberID{1, 3}},
		{5, []vtime.SubscriberID{1, 2}},
	}
	for _, w := range writes {
		if err := f.pfs.Write(1, w.ts, w.subs); err != nil {
			t.Fatalf("Write(%d): %v", w.ts, err)
		}
	}
	if got := f.pfs.LastTimestamp(1); got != 5 {
		t.Errorf("LastTimestamp = %d", got)
	}
	if got := f.pfs.RecordCount(1); got != 4 {
		t.Errorf("RecordCount = %d", got)
	}

	// s3 reads [1,10] (from=0): Q at 1 and 4; 6-10 unknown → Q.
	res, err := f.pfs.Read(1, 3, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks := spansToTicks(res.QSpans)
	for _, want := range []vtime.Timestamp{1, 4, 6, 7, 8, 9, 10} {
		if !ticks[want] {
			t.Errorf("s3 missing Q tick %d (spans %v)", want, res.QSpans)
		}
	}
	for _, s := range []vtime.Timestamp{2, 3, 5} {
		if ticks[s] {
			t.Errorf("s3 has spurious Q tick %d", s)
		}
	}
	if !res.Complete || res.KnownUpTo != 10 || res.LostUpTo != 0 {
		t.Errorf("res = %+v", res)
	}

	// s2: Q at 3 and 5 plus unknown tail.
	res, err = f.pfs.Read(1, 2, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks = spansToTicks(res.QSpans)
	if !ticks[3] || !ticks[5] || ticks[1] || ticks[4] {
		t.Errorf("s2 spans wrong: %v", res.QSpans)
	}

	// Unknown subscriber: everything ≤ lastTS is S, tail is Q.
	res, err = f.pfs.Read(1, 99, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks = spansToTicks(res.QSpans)
	for ts := vtime.Timestamp(1); ts <= 5; ts++ {
		if ticks[ts] {
			t.Errorf("unknown sub has Q at %d", ts)
		}
	}
	for ts := vtime.Timestamp(6); ts <= 10; ts++ {
		if !ticks[ts] {
			t.Errorf("unknown sub missing Q at %d", ts)
		}
	}
}

func TestReadWindowing(t *testing.T) {
	f := newFixture(t, Options{})
	for ts := vtime.Timestamp(1); ts <= 100; ts++ {
		if ts%10 == 0 {
			if err := f.pfs.Write(1, ts, []vtime.SubscriberID{7}); err != nil {
				t.Fatal(err)
			}
		} else if err := f.pfs.Write(1, ts, []vtime.SubscriberID{8}); err != nil {
			t.Fatal(err)
		}
	}
	// Read a middle window (25, 75] for sub 7: Q at 30..70 by 10s.
	res, err := f.pfs.Read(1, 7, 25, 75, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks := spansToTicks(res.QSpans)
	want := []vtime.Timestamp{30, 40, 50, 60, 70}
	if len(ticks) != len(want) {
		t.Fatalf("window read spans = %v", res.QSpans)
	}
	for _, ts := range want {
		if !ticks[ts] {
			t.Errorf("missing Q at %d", ts)
		}
	}
	// Empty interval.
	res, err = f.pfs.Read(1, 7, 50, 50, 0)
	if err != nil || len(res.QSpans) != 0 || !res.Complete {
		t.Errorf("empty interval read = %+v, %v", res, err)
	}
}

func TestReadMaxQTruncation(t *testing.T) {
	f := newFixture(t, Options{})
	for ts := vtime.Timestamp(1); ts <= 50; ts++ {
		if err := f.pfs.Write(1, ts, []vtime.SubscriberID{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Adjacent single ticks coalesce into one span, so interleave.
	res, err := f.pfs.Read(1, 1, 0, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QSpans) != 1 || res.QSpans[0] != (tick.Span{Start: 1, End: 50}) {
		t.Fatalf("coalescing failed: %v", res.QSpans)
	}

	// Now a sparse subscriber to exercise truncation.
	f2 := newFixture(t, Options{})
	for i := 0; i < 20; i++ {
		ts := vtime.Timestamp(1 + i*10)
		if err := f2.pfs.Write(1, ts, []vtime.SubscriberID{1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err = f2.pfs.Read(1, 1, 0, 191, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("truncated read reported complete")
	}
	if len(res.QSpans) != 3 {
		t.Fatalf("truncated spans = %v", res.QSpans)
	}
	if res.KnownUpTo != res.QSpans[2].End {
		t.Errorf("KnownUpTo = %d, want %d", res.KnownUpTo, res.QSpans[2].End)
	}
	// Continue from KnownUpTo: eventually cover everything.
	seen := spansToTicks(res.QSpans)
	from := res.KnownUpTo
	for !res.Complete {
		res, err = f2.pfs.Read(1, 1, from, 191, 3)
		if err != nil {
			t.Fatal(err)
		}
		for ts := range spansToTicks(res.QSpans) {
			seen[ts] = true
		}
		from = res.KnownUpTo
	}
	for i := 0; i < 20; i++ {
		if !seen[vtime.Timestamp(1+i*10)] {
			t.Errorf("resumed reads missed tick %d", 1+i*10)
		}
	}
}

func TestWriteMonotonicity(t *testing.T) {
	f := newFixture(t, Options{})
	if err := f.pfs.Write(1, 10, []vtime.SubscriberID{1}); err != nil {
		t.Fatal(err)
	}
	if err := f.pfs.Write(1, 10, []vtime.SubscriberID{1}); err == nil {
		t.Error("duplicate timestamp accepted")
	}
	if err := f.pfs.Write(1, 5, []vtime.SubscriberID{1}); err == nil {
		t.Error("rewinding timestamp accepted")
	}
	// Other pubends are independent.
	if err := f.pfs.Write(2, 5, []vtime.SubscriberID{1}); err != nil {
		t.Errorf("other pubend rejected: %v", err)
	}
	// Empty subscriber list writes nothing.
	if err := f.pfs.Write(1, 11, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.pfs.RecordCount(1); got != 1 {
		t.Errorf("empty write created a record: %d", got)
	}
}

func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	f := openFixture(t, dir, Options{SyncEvery: 5})
	for ts := vtime.Timestamp(1); ts <= 20; ts++ {
		subs := []vtime.SubscriberID{vtime.SubscriberID(ts % 3)}
		if err := f.pfs.Write(1, ts, subs); err != nil {
			t.Fatal(err)
		}
	}
	// Close without a final Sync: metadata checkpoint lags behind.
	f.vol.Close()  //nolint:errcheck
	f.meta.Close() //nolint:errcheck

	f2 := openFixture(t, dir, Options{})
	if got := f2.pfs.LastTimestamp(1); got != 20 {
		t.Errorf("recovered LastTimestamp = %d, want 20", got)
	}
	// Sub 0 matched ts 3,6,9,12,15,18.
	res, err := f2.pfs.Read(1, 0, 0, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks := spansToTicks(res.QSpans)
	for _, want := range []vtime.Timestamp{3, 6, 9, 12, 15, 18} {
		if !ticks[want] {
			t.Errorf("recovered read missing %d (spans %v)", want, res.QSpans)
		}
	}
	if ticks[2] || ticks[4] {
		t.Errorf("recovered read has spurious ticks: %v", res.QSpans)
	}
	// Writes continue with correct backpointers after recovery.
	if err := f2.pfs.Write(1, 21, []vtime.SubscriberID{0}); err != nil {
		t.Fatal(err)
	}
	res, err = f2.pfs.Read(1, 0, 0, 21, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !spansToTicks(res.QSpans)[21] || !spansToTicks(res.QSpans)[18] {
		t.Errorf("chain broken after recovery: %v", res.QSpans)
	}
}

func TestChopProducesLoss(t *testing.T) {
	f := newFixture(t, Options{})
	for ts := vtime.Timestamp(1); ts <= 30; ts++ {
		if err := f.pfs.Write(1, ts, []vtime.SubscriberID{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.pfs.Chop(1, 10); err != nil {
		t.Fatal(err)
	}
	if got := f.pfs.RecordCount(1); got != 20 {
		t.Errorf("RecordCount after chop = %d, want 20", got)
	}
	// A reader starting below the chop sees the loss.
	res, err := f.pfs.Read(1, 1, 0, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostUpTo != 10 {
		t.Errorf("LostUpTo = %d, want 10", res.LostUpTo)
	}
	ticks := spansToTicks(res.QSpans)
	for ts := vtime.Timestamp(1); ts <= 10; ts++ {
		if ticks[ts] {
			t.Errorf("Q tick %d inside lost prefix", ts)
		}
	}
	for ts := vtime.Timestamp(11); ts <= 30; ts++ {
		if !ticks[ts] {
			t.Errorf("missing Q tick %d above loss", ts)
		}
	}
	// A reader starting above the chop is unaffected.
	res, err = f.pfs.Read(1, 1, 15, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostUpTo != 0 {
		t.Errorf("reader above chop got LostUpTo = %d", res.LostUpTo)
	}
	// Backwards chop is a no-op.
	if err := f.pfs.Chop(1, 5); err != nil {
		t.Fatal(err)
	}
	if got := f.pfs.RecordCount(1); got != 20 {
		t.Errorf("backwards chop changed records: %d", got)
	}
}

func TestChopSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	f := openFixture(t, dir, Options{})
	for ts := vtime.Timestamp(1); ts <= 10; ts++ {
		f.pfs.Write(1, ts, []vtime.SubscriberID{1}) //nolint:errcheck
	}
	f.pfs.Chop(1, 4) //nolint:errcheck
	f.pfs.Sync()     //nolint:errcheck
	f.vol.Close()    //nolint:errcheck
	f.meta.Close()   //nolint:errcheck

	f2 := openFixture(t, dir, Options{})
	res, err := f2.pfs.Read(1, 1, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostUpTo != 4 {
		t.Errorf("recovered LostUpTo = %d, want 4", res.LostUpTo)
	}
}

func TestImpreciseMode(t *testing.T) {
	f := newFixture(t, Options{ImpreciseBucket: 10})
	// Sub 1 matches every tick 1..40: only ~4 records written.
	for ts := vtime.Timestamp(1); ts <= 40; ts++ {
		if err := f.pfs.Write(1, ts, []vtime.SubscriberID{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.pfs.RecordCount(1); got != 4 {
		t.Errorf("imprecise mode wrote %d records, want 4", got)
	}
	// Reads stay correct: every matched tick is inside a Q span.
	res, err := f.pfs.Read(1, 1, 0, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks := spansToTicks(res.QSpans)
	for ts := vtime.Timestamp(1); ts <= 40; ts++ {
		if !ticks[ts] {
			t.Errorf("imprecise read missing tick %d (spans %v)", ts, res.QSpans)
		}
	}
}

func TestImpreciseNeverMissesSparseMatches(t *testing.T) {
	f := newFixture(t, Options{ImpreciseBucket: 5})
	matched := []vtime.Timestamp{1, 3, 8, 20, 21, 22, 40}
	for _, ts := range matched {
		if err := f.pfs.Write(1, ts, []vtime.SubscriberID{1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := f.pfs.Read(1, 1, 0, 45, 0)
	if err != nil {
		t.Fatal(err)
	}
	ticks := spansToTicks(res.QSpans)
	for _, ts := range matched {
		if !ticks[ts] {
			t.Errorf("imprecise read missing matched tick %d (spans %v)", ts, res.QSpans)
		}
	}
}

// Model-based check: random writes for several subscribers, then reads at
// random windows must classify every matched tick as Q, never classify a
// matched tick as S, and (precise mode) never classify an unmatched tick
// below lastTS as Q.
func TestReadMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const horizon = 300
	for trial := 0; trial < 10; trial++ {
		f := newFixture(t, Options{})
		matches := map[vtime.SubscriberID]map[vtime.Timestamp]bool{}
		for sub := vtime.SubscriberID(0); sub < 4; sub++ {
			matches[sub] = map[vtime.Timestamp]bool{}
		}
		lastTS := vtime.ZeroTS
		for ts := vtime.Timestamp(1); ts <= horizon; ts++ {
			var subs []vtime.SubscriberID
			for sub := vtime.SubscriberID(0); sub < 4; sub++ {
				if rng.Intn(4) == 0 {
					subs = append(subs, sub)
					matches[sub][ts] = true
				}
			}
			if len(subs) > 0 {
				if err := f.pfs.Write(1, ts, subs); err != nil {
					t.Fatal(err)
				}
				lastTS = ts
			}
		}
		for probe := 0; probe < 30; probe++ {
			sub := vtime.SubscriberID(rng.Intn(4))
			from := vtime.Timestamp(rng.Intn(horizon))
			to := from + vtime.Timestamp(rng.Intn(horizon/2)+1)
			res, err := f.pfs.Read(1, sub, from, to, 0)
			if err != nil {
				t.Fatal(err)
			}
			ticks := spansToTicks(res.QSpans)
			for ts := from + 1; ts <= to; ts++ {
				isQ := ticks[ts]
				matched := matches[sub][ts]
				if matched && !isQ {
					t.Fatalf("trial %d: sub %d tick %d matched but classified S", trial, sub, ts)
				}
				if !matched && isQ && ts <= lastTS {
					t.Fatalf("trial %d: sub %d tick %d unmatched but classified Q (precise mode)", trial, sub, ts)
				}
				if !matched && !isQ && ts > lastTS {
					t.Fatalf("trial %d: sub %d tick %d beyond lastTS classified S", trial, sub, ts)
				}
			}
		}
	}
}

// TestCatchupReadAllocsGate is the allocation regression gate for the
// catchup read path: backpointer-chain walks over a warm decode cache with
// a caller-reused Q-span buffer. The pooled read scratch, the ref-counted
// decode arenas, and ReadAppend's buffer reuse keep a 64-event batch read
// under one allocation; a regression (an unpooled window, a per-record
// slice pair, a rebuilt span slice) adds at least one per batch.
func TestCatchupReadAllocsGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	const (
		batch  = 64
		events = 2048
		runs   = 30
	)
	f := newFixture(t, Options{})
	for ts := vtime.Timestamp(1); ts <= events; ts++ {
		subs := []vtime.SubscriberID{1, 2}
		if ts%2 == 0 {
			subs = subs[:1]
		}
		if err := f.pfs.Write(1, ts, subs); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]tick.Span, 0, 64)
	// Warm up: the first full-range read pages every record into the
	// decode cache and sizes the pooled scratch.
	for from := vtime.Timestamp(0); from < events; from += batch {
		res, err := f.pfs.ReadAppend(1, 1, from, from+batch, 0, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = res.QSpans
	}
	from := vtime.Timestamp(0)
	avg := testing.AllocsPerRun(runs, func() {
		res, err := f.pfs.ReadAppend(1, 1, from, from+batch, 0, dst[:0])
		if err != nil {
			t.Fatal(err)
		}
		dst = res.QSpans
		from += batch
		if from+batch > events {
			from = 0
		}
	})
	t.Logf("catchup read: %.3f allocs per %d-event batch", avg, batch)
	if avg >= 1.0 {
		t.Errorf("catchup batch read allocates %.3f, gate is <1 per %d-event batch", avg, batch)
	}
}
