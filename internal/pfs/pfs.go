// Package pfs implements the Persistent Filtering Subsystem of the paper
// (section 4.2): the SHB-side persistent log of which events matched which
// durable subscribers, written once per matched timestamp and read in large
// batches when a subscriber reconnects, so that catchup never has to
// retrieve and refilter events that did not match.
//
// Storage layout follows the paper exactly. All subscribers of one pubend
// share a single log stream; one record is written per timestamp that is Q
// (matched) for at least one subscriber. A record is
//
//	timestamp (8 bytes) + n × (subscriberID 8 bytes, prevIndex 8 bytes)
//
// i.e. the paper's 8 + 16·n bytes, where prevIndex is the log-volume index
// of the previous record containing that subscriber. The per-subscriber
// backpointer chains make batch reads walk only records relevant to the
// subscriber being caught up.
//
// The PFS keeps lastTimestamp (latest Q tick written) per pubend and
// lastIndex (latest record containing the subscriber) per subscriber in a
// metastore table, checkpointed at every Sync; recovery replays the log
// tail beyond the checkpoint.
package pfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/logvol"
	"repro/internal/message"
	"repro/internal/metastore"
	"repro/internal/telemetry"
	"repro/internal/tick"
	"repro/internal/vtime"
)

// PFS instruments (process-wide; see internal/telemetry).
var (
	tWrites = telemetry.Default().Counter("gryphon_pfs_writes_total",
		"PFS records written (one per timestamp matched by ≥1 subscriber).")
	tWriteBytes = telemetry.Default().Counter("gryphon_pfs_write_bytes_total",
		"PFS record payload bytes written (the paper's 8+16n accounting).")
	tReads = telemetry.Default().Counter("gryphon_pfs_reads_total",
		"PFS batch reads served for catchup streams.")
	tReadWalk = telemetry.Default().Histogram("gryphon_pfs_read_walk_records",
		"Backpointer-chain records walked per PFS batch read.", telemetry.SizeBuckets)
	tCkptFlushes = telemetry.Default().Counter("gryphon_pfs_checkpoint_flushes_total",
		"PFS checkpoint flushes (volume sync + metastore transaction).")
	tCkptErrors = telemetry.Default().Counter("gryphon_pfs_checkpoint_errors_total",
		"PFS background checkpoint flushes that failed.")
	tRangeReads = telemetry.Default().Counter("gryphon_pfs_range_reads_total",
		"Vectored log-volume range reads issued to fill the decode cache.")
	tDecHits = telemetry.Default().Counter("gryphon_pfs_decode_cache_hits_total",
		"Chain-walk records served from the per-pubend decode cache.")
	tDecMisses = telemetry.Default().Counter("gryphon_pfs_decode_cache_misses_total",
		"Chain-walk records that required a log-volume read.")
	tArenaMisses = telemetry.Default().Counter("gryphon_pfs_arena_pool_misses_total",
		"Decode-arena acquisitions that allocated a new slab (pool empty or "+
			"previous slab oversized); steady-state catchup should sit near zero.")
)

const (
	metaTable = "pfs"
	recBase   = 8  // timestamp
	recPerSub = 16 // subscriber id + backpointer

	// tailWindow bounds one vectored range read (bytes); fillSpan is how
	// many record indexes below a missed record the fill tries to cover.
	// With typical records (8+16n payload + 20 framing) one window decodes
	// hundreds of records in a single syscall.
	tailWindow = 256 << 10
	fillSpan   = 512
	// recScratch sizes the single-record read scratch; records larger than
	// this (≈4000 subscribers in one record) fall back to allocating.
	recScratch = 64 << 10
	// recCacheBudget bounds the decode cache per pubend, counted in
	// subscriber entries (~32 bytes each), not records: record cost scales
	// with fan-out.
	recCacheBudget = 1 << 18
)

// readBufs is the pooled per-read scratch set: a single-record buffer, a
// range-read window, and the span-reversal scratch, all pre-sized at pool
// construction so a read never allocates scratch. Concurrent catchup
// pumps each grab one from the pool for the duration of a batch read.
type readBufs struct {
	rec      []byte
	win      []byte
	reversed []tick.Span
}

var readBufPool = sync.Pool{New: func() any {
	return &readBufs{rec: make([]byte, recScratch), win: make([]byte, tailWindow)}
}}

// decArena is a pooled slab backing the subs/prevs slices of every record
// decoded from one fill window. refs counts the resident cache entries
// carved from it plus any chain walk currently reading one of them; the
// slab returns to the pool when the count reaches zero, so a deep catchup
// storm decodes records into recycled memory instead of allocating two
// slices per record (the old decodeRecord behavior). Reuse-after-release
// is impossible by construction: an arena is only reset once no holder of
// any slice carved from it remains.
type decArena struct {
	subs  []vtime.SubscriberID
	prevs []logvol.Index
	refs  atomic.Int32
}

// maxArenaEntries caps recycled slab capacity (~24 B/entry); a slab grown
// by a pathological window is handed to the GC instead of pinned.
const maxArenaEntries = 1 << 16

var arenaPool = sync.Pool{New: func() any {
	tArenaMisses.Inc()
	return new(decArena)
}}

// getArena returns an empty arena holding one base reference (the
// filler's; dropped when the fill completes).
func getArena() *decArena {
	a := arenaPool.Get().(*decArena)
	a.subs = a.subs[:0]
	a.prevs = a.prevs[:0]
	a.refs.Store(1)
	return a
}

func (a *decArena) retain() {
	if a != nil {
		a.refs.Add(1)
	}
}

func (a *decArena) release() {
	if a == nil {
		return
	}
	if a.refs.Add(-1) == 0 && cap(a.subs) <= maxArenaEntries {
		arenaPool.Put(a)
	}
}

// carve extends the arena by n entries and returns the capacity-pinned
// sub-slices. A growth reallocation is safe: slices carved earlier keep
// the orphaned backing array alive, and the refcount still covers them.
func (a *decArena) carve(n int) ([]vtime.SubscriberID, []logvol.Index) {
	base := len(a.subs)
	a.subs = slices.Grow(a.subs, n)[:base+n]
	a.prevs = slices.Grow(a.prevs, n)[:base+n]
	return a.subs[base : base+n : base+n], a.prevs[base : base+n : base+n]
}

// decRec is one decoded PFS record held in the per-pubend decode cache.
// Its subs/prevs slices are carved from a pooled, ref-counted arena (nil
// for cold-path decodes that own their slices); every holder — the cache
// itself, and each chain walk between recCache.get and its release —
// accounts for one arena reference.
type decRec struct {
	ts    vtime.Timestamp
	subs  []vtime.SubscriberID
	prevs []logvol.Index
	arena *decArena
}

// recCache is the per-pubend decoded-record cache: concurrent catchup
// streams walking overlapping backpointer chains (the common case — a churn
// storm reconnects many subscribers at similar lag) share one decode of
// each record instead of re-reading and re-parsing it per subscriber.
type recCache struct {
	mu      sync.Mutex
	recs    map[logvol.Index]*decRec
	entries int // total subscriber entries across cached records
	budget  int
}

func newRecCache(budget int) *recCache {
	return &recCache{recs: make(map[logvol.Index]*decRec), budget: budget}
}

// get returns the cached record at idx with one arena reference held for
// the caller, who must release it (rec.arena.release()) when done with
// the record's slices. Taking the reference under c.mu makes it atomic
// with respect to eviction's release.
func (c *recCache) get(idx logvol.Index) *decRec {
	c.mu.Lock()
	r := c.recs[idx]
	if r != nil {
		r.arena.retain()
	}
	c.mu.Unlock()
	return r
}

// put inserts a record, taking an arena reference for the cache (dropped
// when the entry is evicted, pruned, or loses the insert race).
func (c *recCache) put(idx logvol.Index, r *decRec) {
	c.mu.Lock()
	if _, ok := c.recs[idx]; !ok {
		r.arena.retain()
		c.recs[idx] = r
		c.entries += len(r.subs)
		if c.entries > c.budget {
			c.evictLocked()
		}
	}
	c.mu.Unlock()
}

// evictLocked drops lowest-index entries until half the budget is free;
// catchup walks move toward the tail as release floors advance, so low
// indexes are the coldest. Caller holds c.mu.
func (c *recCache) evictLocked() {
	keys := make([]logvol.Index, 0, len(c.recs))
	for idx := range c.recs {
		keys = append(keys, idx)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, idx := range keys {
		if c.entries <= c.budget/2 {
			break
		}
		r := c.recs[idx]
		c.entries -= len(r.subs)
		delete(c.recs, idx)
		r.arena.release()
	}
}

// pruneBelow drops entries below min (chopped records).
func (c *recCache) pruneBelow(min logvol.Index) {
	c.mu.Lock()
	for idx, r := range c.recs {
		if idx < min {
			c.entries -= len(r.subs)
			delete(c.recs, idx)
			r.arena.release()
		}
	}
	c.mu.Unlock()
}

// Options configures a PFS.
type Options struct {
	// Volume is the shared log volume (required).
	Volume *logvol.Volume
	// Meta is the metastore holding lastTimestamp/lastIndex (required).
	Meta *metastore.Store
	// SyncEvery syncs the volume and checkpoints metadata every N
	// writes per pubend; 0 disables automatic syncs (explicit Sync
	// only). The paper's microbenchmark uses one sync per 200 events.
	SyncEvery int
	// ImpreciseBucket, when positive, enables the paper's imprecise
	// mode: once a record includes a subscriber, further matches for
	// that subscriber within the next ImpreciseBucket ticks are not
	// written; reads expand each recorded tick to a bucket-wide Q span
	// instead. This trades write volume for retrieving and refiltering
	// unnecessary events during catchup.
	ImpreciseBucket vtime.Timestamp
}

// PFS is the persistent filtering subsystem of one SHB. All methods are
// safe for concurrent use; writes for a given pubend must be issued in
// timestamp order (the constream, its only writer, delivers in order).
type PFS struct {
	opts Options

	mu      sync.Mutex
	pubends map[vtime.PubendID]*pubendState

	// Background checkpointing: the write path hands checkpoint snapshots
	// to a flusher goroutine instead of stalling the constream on the
	// volume fsync. Recovery replays the log tail past the checkpoint, so
	// a lagging (or lost) checkpoint costs replay time, never correctness.
	flushing    bool
	pendingSnap ckptSnap
	flushDone   chan struct{} // closed when the current flusher exits
	flushErr    error         // last background flush failure, surfaced by Sync
}

// ckptSnap is one checkpoint snapshot: the per-pubend metadata captured
// under p.mu, flushed to disk without the lock.
type ckptSnap map[vtime.PubendID]pubCkpt

// dirtyIdx is one unpersisted chain-head advance: the new head index plus
// the (cached, immutable) metastore key it is persisted under. Carrying
// the key in the delta lets the background flusher build the checkpoint
// transaction without allocating a key string per subscriber per flush —
// and without touching pubendState off the lock.
type dirtyIdx struct {
	idx logvol.Index
	key string
}

type pubCkpt struct {
	lastTS  vtime.Timestamp
	scanned logvol.Index
	tsKey   string                          // cached keyLastTS(pub)
	scanKey string                          // cached keyScanned(pub)
	lastIdx map[vtime.SubscriberID]dirtyIdx // chain heads advanced since the previous capture
}

// idxMapPool recycles the delta maps that shuttle between the write path
// and the checkpoint flusher.
var idxMapPool = sync.Pool{
	New: func() any { return make(map[vtime.SubscriberID]dirtyIdx, 64) },
}

func getIdxMap() map[vtime.SubscriberID]dirtyIdx {
	return idxMapPool.Get().(map[vtime.SubscriberID]dirtyIdx)
}

func putIdxMap(m map[vtime.SubscriberID]dirtyIdx) {
	clear(m)
	idxMapPool.Put(m)
}

type pubendState struct {
	stream  *logvol.Stream
	lastTS  vtime.Timestamp
	chopTS  vtime.Timestamp // records with ts <= chopTS are discarded (L)
	lastIdx map[vtime.SubscriberID]logvol.Index
	// dirty holds the chain heads advanced since the last checkpoint
	// capture; checkpoints persist only these deltas (the metastore
	// accumulates per-key state, so recovery still sees every head).
	// At churn scale this is the difference between rewriting every
	// subscriber's entry each checkpoint and writing the few that moved.
	dirty map[vtime.SubscriberID]dirtyIdx
	// idxKeys caches each subscriber's metastore key (guarded by p.mu).
	idxKeys map[vtime.SubscriberID]string
	// tsKey/scanKey cache the pubend's own checkpoint keys.
	tsKey   string
	scanKey string
	scanned logvol.Index                           // metadata checkpoint covers indexes <= scanned
	writes  int                                    // writes since last sync
	nextOK  map[vtime.SubscriberID]vtime.Timestamp // imprecise mode gate
	cache   *recCache                              // decoded records shared by concurrent reads
}

// markDirtyLocked records sub's new chain head for the next checkpoint
// delta. Caller holds p.mu.
func (st *pubendState) markDirtyLocked(pub vtime.PubendID, sub vtime.SubscriberID, idx logvol.Index) {
	d, ok := st.dirty[sub]
	if !ok {
		d.key = st.idxKeys[sub]
		if d.key == "" {
			d.key = keyLastIdx(pub, sub)
			st.idxKeys[sub] = d.key
		}
	}
	d.idx = idx
	st.dirty[sub] = d
}

// ReadResult is the outcome of one batch read for a subscriber.
type ReadResult struct {
	// QSpans are the tick spans in (from, upTo] that are Q for the
	// subscriber — events must be retrieved (and, in imprecise mode,
	// refiltered) for them. Ascending and disjoint.
	QSpans []tick.Span
	// LostUpTo is the end of the chopped (early-released) prefix
	// encountered while walking, if any; ticks in (from, LostUpTo] are L
	// and the subscriber must receive a gap. Zero when none.
	LostUpTo vtime.Timestamp
	// KnownUpTo bounds the read's coverage: every tick in
	// (from, KnownUpTo] not inside a QSpan (and above LostUpTo) is S.
	KnownUpTo vtime.Timestamp
	// Complete is false when the read was truncated by maxQ; the caller
	// should read again from KnownUpTo after consuming these spans.
	Complete bool
}

// New creates a PFS over the given volume and metastore, recovering any
// pubend streams already present.
func New(opts Options) (*PFS, error) {
	if opts.Volume == nil || opts.Meta == nil {
		return nil, errors.New("pfs: Volume and Meta are required")
	}
	p := &PFS{opts: opts, pubends: make(map[vtime.PubendID]*pubendState)}
	for _, name := range opts.Volume.StreamNames() {
		var pub uint64
		if n, err := fmt.Sscanf(name, "pfs/%d", &pub); n != 1 || err != nil {
			continue
		}
		if _, err := p.recoverPubend(vtime.PubendID(pub)); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func streamName(pub vtime.PubendID) string { return "pfs/" + strconv.FormatUint(uint64(pub), 10) }

func keyLastTS(pub vtime.PubendID) string { return "lastts/" + strconv.FormatUint(uint64(pub), 10) }

func keyScanned(pub vtime.PubendID) string { return "scan/" + strconv.FormatUint(uint64(pub), 10) }

func keyChopTS(pub vtime.PubendID) string { return "chopts/" + strconv.FormatUint(uint64(pub), 10) }

func keyLastIdx(pub vtime.PubendID, sub vtime.SubscriberID) string {
	return "lastidx/" + strconv.FormatUint(uint64(pub), 10) + "/" +
		strconv.FormatUint(uint64(sub), 10)
}

// state returns (creating if necessary) the per-pubend state; callers hold
// p.mu.
func (p *PFS) state(pub vtime.PubendID) (*pubendState, error) {
	if st, ok := p.pubends[pub]; ok {
		return st, nil
	}
	stream, err := p.opts.Volume.Stream(streamName(pub))
	if err != nil {
		return nil, fmt.Errorf("pfs stream: %w", err)
	}
	st := &pubendState{
		stream:  stream,
		lastIdx: make(map[vtime.SubscriberID]logvol.Index),
		dirty:   getIdxMap(),
		idxKeys: make(map[vtime.SubscriberID]string),
		tsKey:   keyLastTS(pub),
		scanKey: keyScanned(pub),
		nextOK:  make(map[vtime.SubscriberID]vtime.Timestamp),
		cache:   newRecCache(recCacheBudget),
	}
	p.pubends[pub] = st
	return st, nil
}

// recoverPubend rebuilds in-memory metadata for one pubend: metastore
// checkpoint plus a scan of records beyond it.
func (p *PFS) recoverPubend(pub vtime.PubendID) (*pubendState, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, err := p.state(pub)
	if err != nil {
		return nil, err
	}
	meta := p.opts.Meta
	if v, ok := meta.GetUint64(metaTable, keyLastTS(pub)); ok {
		st.lastTS = vtime.Timestamp(v)
	}
	if v, ok := meta.GetUint64(metaTable, keyScanned(pub)); ok {
		st.scanned = logvol.Index(v)
	}
	if v, ok := meta.GetUint64(metaTable, keyChopTS(pub)); ok {
		st.chopTS = vtime.Timestamp(v)
	}
	prefix := "lastidx/" + strconv.FormatUint(uint64(pub), 10) + "/"
	for _, key := range meta.Keys(metaTable) {
		if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		sub, err := strconv.ParseUint(key[len(prefix):], 10, 32)
		if err != nil {
			continue
		}
		if v, ok := meta.GetUint64(metaTable, key); ok {
			st.lastIdx[vtime.SubscriberID(sub)] = logvol.Index(v)
		}
	}
	// Replay the tail past the checkpoint.
	first := st.stream.FirstLiveIndex()
	start := st.scanned + 1
	if first > start {
		start = first
	}
	last := st.stream.LastIndex()
	for idx := start; idx != logvol.NilIndex && idx <= last; idx++ {
		payload, err := st.stream.Read(idx)
		if errors.Is(err, logvol.ErrChopped) || errors.Is(err, logvol.ErrNotFound) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("pfs recover: %w", err)
		}
		ts, subs, _, derr := decodeRecord(payload)
		if derr != nil {
			return nil, fmt.Errorf("pfs recover: %w", derr)
		}
		if ts > st.lastTS {
			st.lastTS = ts
		}
		for _, sub := range subs {
			if idx > st.lastIdx[sub] {
				st.lastIdx[sub] = idx
				// Replayed heads are ahead of the persisted checkpoint;
				// mark them dirty so the next capture (which also advances
				// the persisted scan index past them) re-persists them.
				st.markDirtyLocked(pub, sub, idx)
			}
		}
	}
	return st, nil
}

// Write records that timestamp ts of pubend pub matched exactly the given
// subscribers (the tick is S for everyone else). Writes must be issued in
// increasing timestamp order per pubend; a timestamp at or before the last
// written one is rejected. An empty subscriber list writes nothing (the
// tick is S for all subscribers).
func (p *PFS) Write(pub vtime.PubendID, ts vtime.Timestamp, subs []vtime.SubscriberID) error {
	if len(subs) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st, err := p.state(pub)
	if err != nil {
		return err
	}
	if ts <= st.lastTS {
		return fmt.Errorf("pfs: non-monotonic write ts %d after %d for %s", ts, st.lastTS, pub)
	}
	include := subs
	if p.opts.ImpreciseBucket > 0 {
		include = include[:0:0]
		for _, sub := range subs {
			if ts >= st.nextOK[sub] {
				include = append(include, sub)
			}
		}
		if len(include) == 0 {
			// Covered by earlier bucket-wide Q spans; advance
			// lastTS so reads treat this tick as within coverage.
			st.lastTS = ts
			return nil
		}
	}
	// Encode into a pooled buffer: Append is durable on return (on a
	// group-commit volume it blocks until the covering fsync), so the
	// bytes can be recycled as soon as it comes back — one record encode
	// per matched timestamp without a per-write allocation.
	bufp := message.GetEncodeBuffer()
	payload := binary.BigEndian.AppendUint64((*bufp)[:0], uint64(ts))
	for _, sub := range include {
		payload = binary.BigEndian.AppendUint64(payload, uint64(sub))
		payload = binary.BigEndian.AppendUint64(payload, uint64(st.lastIdx[sub]))
	}
	idx, err := st.stream.Append(payload)
	*bufp = payload[:0]
	message.PutEncodeBuffer(bufp)
	if err != nil {
		return fmt.Errorf("pfs write: %w", err)
	}
	tWrites.Inc()
	tWriteBytes.Add(int64(len(payload)))
	for _, sub := range include {
		st.lastIdx[sub] = idx
		st.markDirtyLocked(pub, sub, idx)
		if p.opts.ImpreciseBucket > 0 {
			st.nextOK[sub] = ts + p.opts.ImpreciseBucket
		}
	}
	st.lastTS = ts
	st.writes++
	if p.opts.SyncEvery > 0 && st.writes >= p.opts.SyncEvery {
		// Hand the checkpoint to the background flusher: the constream
		// (the serialized engine driving Write) must not stall on the
		// checkpoint fsync. The snapshot is captured before the flush's
		// fsync, so a persisted checkpoint only ever describes records
		// the same flush made durable.
		p.scheduleFlushLocked(p.captureLocked())
	}
	return nil
}

// Sync makes all writes durable and checkpoints metadata synchronously; the
// constream calls it at its group-commit points and tests rely on its
// blocking contract. It also surfaces the last background flush error.
func (p *PFS) Sync() error {
	p.mu.Lock()
	snap := p.captureLocked()
	err := p.flushErr
	p.flushErr = nil
	p.mu.Unlock()
	if err != nil {
		// The captured deltas were not persisted; put them back so a
		// later checkpoint carries them (a delta must never be dropped
		// once the scan index can advance past it).
		p.requeueSnap(snap)
		return err
	}
	if err := p.flushSnapshot(snap); err != nil {
		p.requeueSnap(snap)
		return err
	}
	releaseSnap(snap)
	return nil
}

// captureLocked snapshots checkpoint metadata for every pubend with
// unsynced writes and resets their write counters: last timestamp, scan
// index, and the chain-head deltas accumulated since the previous capture
// (the dirty map is handed to the snapshot whole and replaced with a
// pooled empty one — no copying, no per-subscriber work for the clean
// majority). Caller holds p.mu.
func (p *PFS) captureLocked() ckptSnap {
	var snap ckptSnap
	for pub, st := range p.pubends {
		if st.writes == 0 && len(st.dirty) == 0 {
			continue
		}
		if snap == nil {
			snap = make(ckptSnap, 2)
		}
		snap[pub] = pubCkpt{
			lastTS:  st.lastTS,
			scanned: st.stream.LastIndex(),
			tsKey:   st.tsKey,
			scanKey: st.scanKey,
			lastIdx: st.dirty,
		}
		st.dirty = getIdxMap()
		st.writes = 0
	}
	return snap
}

// requeueSnap folds an unflushed snapshot's deltas back into the per-pubend
// dirty state after a failed flush, so the next checkpoint re-persists
// them. Entries dirtied again since the capture win (they are newer).
func (p *PFS) requeueSnap(snap ckptSnap) {
	if len(snap) == 0 {
		return
	}
	p.mu.Lock()
	for pub, c := range snap {
		st, ok := p.pubends[pub]
		if !ok {
			continue
		}
		for sub, d := range c.lastIdx {
			if _, newer := st.dirty[sub]; !newer {
				st.dirty[sub] = d
			}
		}
		if st.writes == 0 && len(st.dirty) > 0 {
			st.writes = 1 // ensure the next capture picks the pubend up
		}
		putIdxMap(c.lastIdx)
	}
	p.mu.Unlock()
}

// releaseSnap recycles a flushed snapshot's delta maps.
func releaseSnap(snap ckptSnap) {
	for _, c := range snap {
		putIdxMap(c.lastIdx)
	}
}

// scheduleFlushLocked hands a snapshot to the background flusher, merging
// it into the pending one (newest wins per pubend and per subscriber) when
// a flush is already in flight. Caller holds p.mu.
func (p *PFS) scheduleFlushLocked(snap ckptSnap) {
	if len(snap) == 0 {
		return
	}
	if p.flushing {
		if p.pendingSnap == nil {
			p.pendingSnap = make(ckptSnap, len(snap))
		}
		for pub, c := range snap {
			pc, ok := p.pendingSnap[pub]
			if !ok {
				p.pendingSnap[pub] = c
				continue
			}
			// Merge the newer deltas over the pending ones; both maps
			// hold only changes, so neither may be discarded outright.
			for sub, d := range c.lastIdx {
				pc.lastIdx[sub] = d
			}
			pc.lastTS, pc.scanned = c.lastTS, c.scanned
			p.pendingSnap[pub] = pc
			putIdxMap(c.lastIdx)
		}
		return
	}
	p.flushing = true
	p.flushDone = make(chan struct{})
	go p.flushLoop(snap, p.flushDone)
}

// flushLoop flushes snapshots until none are pending. Errors are counted
// and kept for the next synchronous Sync; a failed checkpoint only delays
// recovery (longer tail replay), it never loses acknowledged data — its
// deltas are requeued so a later checkpoint persists them.
func (p *PFS) flushLoop(snap ckptSnap, done chan struct{}) {
	defer close(done)
	for {
		if err := p.flushSnapshot(snap); err != nil {
			tCkptErrors.Inc()
			p.mu.Lock()
			p.flushErr = err
			p.mu.Unlock()
			p.requeueSnap(snap)
		} else {
			releaseSnap(snap)
		}
		p.mu.Lock()
		if p.pendingSnap == nil {
			p.flushing = false
			p.mu.Unlock()
			return
		}
		snap = p.pendingSnap
		p.pendingSnap = nil
		p.mu.Unlock()
	}
}

// flushSnapshot makes the snapshot's records durable, then persists the
// checkpoint. The order matters: the volume sync happens after the capture,
// so every index the checkpoint names is on stable storage before the
// metastore commit that records it. Only the chain heads that moved since
// the previous checkpoint are written — the metastore accumulates per-key
// state, so recovery reconstructs the full map from the union of deltas.
func (p *PFS) flushSnapshot(snap ckptSnap) error {
	if err := p.opts.Volume.Sync(); err != nil {
		return fmt.Errorf("pfs sync: %w", err)
	}
	if len(snap) == 0 {
		return nil
	}
	tx := p.opts.Meta.Begin()
	for _, c := range snap {
		tx.PutUint64(metaTable, c.tsKey, uint64(c.lastTS))
		tx.PutUint64(metaTable, c.scanKey, uint64(c.scanned))
		for _, d := range c.lastIdx {
			tx.PutUint64(metaTable, d.key, uint64(d.idx))
		}
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("pfs sync meta: %w", err)
	}
	tCkptFlushes.Inc()
	return nil
}

// WaitFlush blocks until any in-flight background checkpoint flush
// completes; shutdown paths and tests use it.
func (p *PFS) WaitFlush() {
	p.mu.Lock()
	done := p.flushDone
	flushing := p.flushing
	p.mu.Unlock()
	if flushing && done != nil {
		<-done
	}
}

// LastTimestamp reports the latest Q tick written for the pubend.
func (p *PFS) LastTimestamp(pub vtime.PubendID) vtime.Timestamp {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.pubends[pub]; ok {
		return st.lastTS
	}
	return vtime.ZeroTS
}

// Read performs one batch read for a subscriber: the tick knowledge for
// pubend pub in the interval (from, to]. maxQ bounds the number of Q spans
// returned (the paper's read buffer, e.g. 5000); 0 means unlimited.
//
// Per the paper: ticks above lastTimestamp are returned as one Q span
// (safe imprecision — the PFS does not know them yet); ticks between the
// subscriber's last record and lastTimestamp are S; the backpointer chain
// from lastIndex(sub) yields the subscriber's Q ticks further back, with S
// implicit between them.
func (p *PFS) Read(pub vtime.PubendID, sub vtime.SubscriberID, from, to vtime.Timestamp, maxQ int) (ReadResult, error) {
	return p.ReadAppend(pub, sub, from, to, maxQ, nil)
}

// ReadAppend is Read with a caller-supplied Q-span buffer: the result's
// QSpans use dst's backing array (grown as needed), so steady-state
// catchup pumps can reuse one buffer per shard instead of allocating per
// read. dst should be passed with length zero.
func (p *PFS) ReadAppend(pub vtime.PubendID, sub vtime.SubscriberID, from, to vtime.Timestamp, maxQ int, dst []tick.Span) (ReadResult, error) {
	tReads.Inc()
	p.mu.Lock()
	st, ok := p.pubends[pub]
	if !ok {
		p.mu.Unlock()
		// Nothing ever written: everything up to "to" is S as far as
		// the PFS knows; there is no lastTimestamp so the whole range
		// is unknown → one Q span.
		if to <= from {
			return ReadResult{QSpans: dst, KnownUpTo: from, Complete: true}, nil
		}
		return ReadResult{
			QSpans:    append(dst, tick.Span{Start: from + 1, End: to}),
			KnownUpTo: to,
			Complete:  true,
		}, nil
	}
	lastTS := st.lastTS
	chopTS := st.chopTS
	chainHead := st.lastIdx[sub]
	stream := st.stream
	cache := st.cache
	bucket := p.opts.ImpreciseBucket
	p.mu.Unlock()

	if to <= from {
		return ReadResult{QSpans: dst, KnownUpTo: from, Complete: true}, nil
	}

	res := ReadResult{QSpans: dst, Complete: true}
	floor := from
	if chopTS > floor {
		// The early-released prefix overlaps the request: ticks in
		// (from, chopTS] are L and the subscriber must get a gap.
		res.LostUpTo = vtime.MinTS(chopTS, to)
		floor = res.LostUpTo
	}

	// Walk the backpointer chain newest→oldest collecting matched spans
	// inside (floor, min(to, lastTS)]. Records come from the shared decode
	// cache; misses are filled with one vectored range read covering the
	// span of records below the miss, so concurrent catchup streams at
	// similar lag share both the syscalls and the decode work.
	var walked int64
	defer func() { tReadWalk.Observe(walked) }()
	bufs := readBufPool.Get().(*readBufs)
	reversed := bufs.reversed[:0]
	firstLive := stream.FirstLiveIndex()
	ceil := vtime.MinTS(to, lastTS)
	idx := chainHead
	for idx != logvol.NilIndex {
		if firstLive == logvol.NilIndex || idx < firstLive {
			// Chain descends into the chopped prefix; everything
			// below is covered by LostUpTo.
			break
		}
		walked++
		rec := cache.get(idx) // holds one arena ref for this walk
		if rec == nil {
			tDecMisses.Inc()
			var err error
			rec, err = fillRecord(stream, cache, idx, firstLive, bufs)
			if errors.Is(err, logvol.ErrChopped) {
				break
			}
			if err != nil {
				bufs.reversed = reversed[:0]
				readBufPool.Put(bufs)
				return ReadResult{}, fmt.Errorf("pfs read: %w", err)
			}
		} else {
			tDecHits.Inc()
		}
		next := logvol.NilIndex
		for i, s := range rec.subs {
			if s == sub {
				next = rec.prevs[i]
				break
			}
		}
		ts := rec.ts
		// Done with the record's slices: drop the reader hold before any
		// break so a concurrent eviction can recycle the arena.
		rec.arena.release()
		if ts <= floor {
			break
		}
		if ts <= ceil {
			end := ts
			if bucket > 0 {
				end = vtime.MinTS(ts+bucket-1, ceil)
			}
			reversed = append(reversed, tick.Span{Start: ts, End: end})
		}
		idx = next
	}

	// Assemble ascending spans: chain spans then the unknown tail.
	for i := len(reversed) - 1; i >= 0; i-- {
		appendSpan(&res.QSpans, reversed[i])
	}
	bufs.reversed = reversed[:0]
	readBufPool.Put(bufs)
	if lastTS < to {
		// Ticks beyond the PFS's knowledge are Q (paper: "sets all
		// ticks from [lastTimestamp+1, to] in the read buffer to Q").
		start := vtime.MaxOfTS(lastTS, floor) + 1
		if start <= to {
			appendSpan(&res.QSpans, tick.Span{Start: start, End: to})
		}
	}
	res.KnownUpTo = to

	if maxQ > 0 && len(res.QSpans) > maxQ {
		res.QSpans = res.QSpans[:maxQ]
		res.KnownUpTo = res.QSpans[maxQ-1].End
		res.Complete = false
	}
	return res, nil
}

// fillRecord loads the record at idx into the decode cache. It first tries
// one vectored range read starting fillSpan records below idx (clamped to
// the live prefix), decoding every record of the stream it covers — the
// records a descending chain walk will visit next, and that other
// subscribers' walks at similar lag will want too. If the window cannot
// reach idx (fat interleaved records, a torn tail, a concurrent chop), it
// falls back to a precise single-record read, which is also the path that
// surfaces real corruption as an error.
// On success the returned record carries one arena reference held for the
// caller (mirroring recCache.get), released when the caller is done with
// its slices.
func fillRecord(stream *logvol.Stream, cache *recCache, idx, firstLive logvol.Index, bufs *readBufs) (*decRec, error) {
	from := firstLive
	if idx >= firstLive+fillSpan {
		from = idx - fillSpan + 1
	}
	// One arena backs every record decoded from this window; the filler's
	// base reference keeps it alive until the cache (and the returned
	// reader hold) have taken theirs.
	arena := getArena()
	err := stream.ReadRange(from, bufs.win, func(i logvol.Index, payload []byte) bool {
		ts, subs, prevs, derr := decodeRecordArena(arena, payload)
		if derr != nil {
			return false
		}
		cache.put(i, &decRec{ts: ts, subs: subs, prevs: prevs, arena: arena})
		return i < idx
	})
	if err == nil {
		tRangeReads.Inc()
		if rec := cache.get(idx); rec != nil {
			arena.release() // reader hold taken by get; drop filler base
			return rec, nil
		}
	}
	payload, err := stream.ReadInto(idx, bufs.rec)
	if err != nil {
		arena.release()
		return nil, err
	}
	ts, subs, prevs, derr := decodeRecordArena(arena, payload)
	if derr != nil {
		arena.release()
		return nil, derr
	}
	rec := &decRec{ts: ts, subs: subs, prevs: prevs, arena: arena}
	cache.put(idx, rec) // cache takes its own reference
	// The filler base transfers to the caller as the reader hold.
	return rec, nil
}

// appendSpan appends sp, merging with the previous span when adjacent or
// overlapping (bucketed spans may overlap).
func appendSpan(spans *[]tick.Span, sp tick.Span) {
	if n := len(*spans); n > 0 {
		last := &(*spans)[n-1]
		if sp.Start <= last.End+1 {
			if sp.End > last.End {
				last.End = sp.End
			}
			return
		}
	}
	*spans = append(*spans, sp)
}

// Chop discards PFS records with timestamps at or below upTo for the
// pubend; the release protocol calls it as released(p) advances. Reads
// whose chains descend below the chop observe the loss boundary.
func (p *PFS) Chop(pub vtime.PubendID, upTo vtime.Timestamp) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.pubends[pub]
	if !ok {
		return nil
	}
	if upTo <= st.chopTS {
		return nil
	}
	// Scan forward from the first live record to find the chop index.
	var chopIdx logvol.Index
	err := st.stream.ForEach(func(idx logvol.Index, payload []byte) bool {
		ts, _, _, derr := decodeRecord(payload)
		if derr != nil || ts > upTo {
			return false
		}
		chopIdx = idx
		return true
	})
	if err != nil {
		return fmt.Errorf("pfs chop scan: %w", err)
	}
	st.chopTS = upTo
	if err := p.opts.Meta.Begin().
		PutUint64(metaTable, keyChopTS(pub), uint64(upTo)).Commit(); err != nil {
		return fmt.Errorf("pfs chop meta: %w", err)
	}
	if chopIdx == logvol.NilIndex {
		return nil
	}
	if err := st.stream.Chop(chopIdx); err != nil {
		return fmt.Errorf("pfs chop: %w", err)
	}
	st.cache.pruneBelow(chopIdx + 1)
	return nil
}

// RecordCount reports the number of live records for the pubend; tests and
// the microbenchmark use it.
func (p *PFS) RecordCount(pub vtime.PubendID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.pubends[pub]; ok {
		return st.stream.Len()
	}
	return 0
}

// decodeRecord parses a PFS record into its timestamp, subscriber list and
// backpointer list.
func decodeRecord(payload []byte) (vtime.Timestamp, []vtime.SubscriberID, []logvol.Index, error) {
	if len(payload) < recBase || (len(payload)-recBase)%recPerSub != 0 {
		return 0, nil, nil, fmt.Errorf("pfs: malformed record of %d bytes", len(payload))
	}
	ts := vtime.Timestamp(binary.BigEndian.Uint64(payload))
	n := (len(payload) - recBase) / recPerSub
	subs := make([]vtime.SubscriberID, n)
	prevs := make([]logvol.Index, n)
	for i := 0; i < n; i++ {
		off := recBase + i*recPerSub
		subs[i] = vtime.SubscriberID(binary.BigEndian.Uint64(payload[off:]))
		prevs[i] = logvol.Index(binary.BigEndian.Uint64(payload[off+8:]))
	}
	return ts, subs, prevs, nil
}

// decodeRecordArena is decodeRecord with the output slices carved from a
// pooled arena instead of freshly allocated — the hot-path variant used by
// fillRecord (cold paths like Chop and recovery keep the allocating form).
func decodeRecordArena(a *decArena, payload []byte) (vtime.Timestamp, []vtime.SubscriberID, []logvol.Index, error) {
	if len(payload) < recBase || (len(payload)-recBase)%recPerSub != 0 {
		return 0, nil, nil, fmt.Errorf("pfs: malformed record of %d bytes", len(payload))
	}
	ts := vtime.Timestamp(binary.BigEndian.Uint64(payload))
	n := (len(payload) - recBase) / recPerSub
	subs, prevs := a.carve(n)
	for i := 0; i < n; i++ {
		off := recBase + i*recPerSub
		subs[i] = vtime.SubscriberID(binary.BigEndian.Uint64(payload[off:]))
		prevs[i] = logvol.Index(binary.BigEndian.Uint64(payload[off+8:]))
	}
	return ts, subs, prevs, nil
}
