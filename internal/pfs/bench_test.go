package pfs

import (
	"path/filepath"
	"testing"

	"repro/internal/logvol"
	"repro/internal/metastore"
	"repro/internal/vtime"
)

func benchPFS(b *testing.B) *PFS {
	b.Helper()
	dir := b.TempDir()
	vol, err := logvol.Open(filepath.Join(dir, "pfs.log"), logvol.Options{})
	if err != nil {
		b.Fatal(err)
	}
	meta, err := metastore.Open(filepath.Join(dir, "meta.wal"), metastore.Options{Sync: metastore.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		vol.Close()  //nolint:errcheck
		meta.Close() //nolint:errcheck
	})
	p, err := New(Options{Volume: vol, Meta: meta, SyncEvery: 200})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPFSWrite measures the per-matched-timestamp logging cost with
// the paper's 25-subscriber match fanout (one 8+16·25-byte record).
func BenchmarkPFSWrite(b *testing.B) {
	p := benchPFS(b)
	subs := make([]vtime.SubscriberID, 25)
	for i := range subs {
		subs[i] = vtime.SubscriberID(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Write(1, vtime.Timestamp(i+1), subs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPFSBatchRead measures one full backpointer-chain batch read over
// a 10000-tick history (the reconnect path).
func BenchmarkPFSBatchRead(b *testing.B) {
	p := benchPFS(b)
	for ts := vtime.Timestamp(1); ts <= 10000; ts++ {
		if err := p.Write(1, ts, []vtime.SubscriberID{vtime.SubscriberID(ts % 20)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Read(1, 5, 0, 10000, 5000)
		if err != nil || len(res.QSpans) == 0 {
			b.Fatalf("read: %v (%d spans)", err, len(res.QSpans))
		}
	}
}
