package overlay

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/message"
	"repro/internal/telemetry"
)

// Supervision instruments (process-wide; per-link state is labeled by the
// supervisor name).
var (
	tReconnects = telemetry.Default().Counter("gryphon_overlay_reconnects_total",
		"Successful re-establishments of supervised overlay links (excludes the first connect).")
	tDialFailures = telemetry.Default().Counter("gryphon_overlay_dial_failures_total",
		"Failed connection attempts by link supervisors.")
	tHealSeconds = telemetry.Default().DurationHistogram("gryphon_overlay_time_to_heal_seconds",
		"Time from a supervised link going down to its re-establishment.", telemetry.FastBuckets)
)

// LinkState is the supervisor's view of its link.
type LinkState int32

// Link states. A supervisor is born Down, moves to Up after each
// successful dial + bring-up, and sits in Backoff between failed or broken
// attempts.
const (
	LinkDown    LinkState = iota // not connected, no attempt in flight
	LinkBackoff                  // waiting out the backoff delay before redialing
	LinkUp                       // link established and handed to OnUp
)

// String renders the state for health endpoints and logs.
func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkBackoff:
		return "backoff"
	default:
		return "down"
	}
}

// LinkStatus is a snapshot of a supervised link for health reporting.
type LinkStatus struct {
	// Name is the supervisor's configured name.
	Name string
	// Addr is the dial target.
	Addr string
	// State is the current link state.
	State LinkState
	// Retries counts consecutive failed connection attempts since the
	// link was last up (resets to zero on every successful bring-up).
	Retries uint64
	// Reconnects counts successful re-establishments over the
	// supervisor's lifetime (the first connect is not a reconnect).
	Reconnects uint64
	// LastError describes the most recent dial or link failure ("" when
	// the link has never failed).
	LastError string
	// Since is when the link entered its current up/down period.
	Since time.Time
	// DownFor is how long the link has been continuously without a live
	// connection (zero while up). Backoff cycles do not reset it, so it
	// measures the whole outage — the quantity fail-over thresholds
	// compare against.
	DownFor time.Duration
}

// SupervisorConfig configures a supervised link.
type SupervisorConfig struct {
	// Name labels the link in telemetry and health reports (required;
	// e.g. "broker3/upstream").
	Name string
	// Transport and Addr are the dial target (required).
	Transport Transport
	Addr      string
	// DialTimeout bounds each connection attempt. Zero means no timeout
	// (the attempt can block as long as the transport lets it).
	DialTimeout time.Duration
	// BackoffMin is the delay after the first failure (0 = 20ms).
	BackoffMin time.Duration
	// BackoffMax caps the exponential growth (0 = 2s).
	BackoffMax time.Duration
	// Jitter is the fraction of the delay randomized away (0..1, 0 =
	// 0.2): each wait is delay * (1 - Jitter*rand). Jitter draws from a
	// seeded source, so a fixed Seed gives a reproducible schedule.
	Jitter float64
	// Seed seeds the jitter source (0 = 1).
	Seed int64

	// OnUp brings up a freshly dialed connection: handshake, Start, and
	// any state resynchronization. Returning an error counts the attempt
	// as failed (the conn is closed and the supervisor backs off). OnUp
	// must not call Conn.OnClose — the supervisor owns that hook.
	OnUp func(Conn) error
	// OnDown, if set, is told why an established link died (never for
	// failed dial attempts, and not for Stop).
	OnDown func(reason error)
}

// Supervisor maintains one self-healing overlay link: it dials the target,
// hands the live connection to OnUp, watches for the close, and redials
// with capped exponential backoff plus jitter until stopped. The paper's
// recovery protocol (knowledge/curiosity streams and checkpoint tokens)
// makes link death survivable; the supervisor is the piece that turns
// "survivable" into "self-healing" by actually re-establishing the link.
type Supervisor struct {
	cfg SupervisorConfig
	rng *rand.Rand // jitter; guarded by the run loop (single goroutine)

	conn     atomic.Pointer[Conn]
	state    atomic.Int32
	retries  atomic.Uint64
	healed   atomic.Uint64
	lastErr  atomic.Pointer[string]
	since    atomic.Int64 // unix nanos of the last state flip
	downNano atomic.Int64 // unix nanos when the current outage began (0 while up)
	upGauge  *telemetry.Gauge
	started  atomic.Bool
	everUp   bool
	downAt   time.Time // when the link last went down (for time-to-heal)
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	notify   chan error // close reasons from the active conn
}

// NewSupervisor builds a supervisor. Start connects it.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 20 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	if cfg.Jitter <= 0 || cfg.Jitter > 1 {
		cfg.Jitter = 0.2
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Supervisor{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)), //nolint:gosec // jitter, not crypto
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		notify: make(chan error, 1),
		upGauge: telemetry.Default().Gauge(
			fmt.Sprintf("gryphon_overlay_link_up{link=%q}", cfg.Name),
			"Whether a supervised overlay link is established (1) or down/backing off (0)."),
	}
	s.markState(LinkDown)
	return s
}

// Start performs the first connection attempt synchronously — so callers
// keep the fail-fast startup semantics of a plain Dial — and then hands
// the link to the background maintenance loop. On error nothing is
// running and the supervisor may be started again.
func (s *Supervisor) Start() error { return s.StartContext(context.Background()) }

// StartContext is Start with the synchronous first attempt bounded by ctx
// (in addition to DialTimeout, whichever is tighter): the runtime-membership
// paths re-parent live brokers under a caller deadline. Reconnect attempts
// after the first are governed by DialTimeout alone — ctx bounds joining,
// not the link's lifetime.
func (s *Supervisor) StartContext(ctx context.Context) error {
	if err := s.attempt(ctx); err != nil {
		return err
	}
	s.started.Store(true)
	go s.run()
	return nil
}

// StartDeferred skips the synchronous first attempt and lets the
// maintenance loop establish the link in the background (clients that
// tolerate an initially-absent peer).
func (s *Supervisor) StartDeferred() {
	s.started.Store(true)
	go s.run()
}

// Stop tears the supervisor down: no more redials, and the active
// connection (if any) is closed. Safe to call more than once.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	if c := s.Conn(); c != nil {
		c.Close() //nolint:errcheck,gosec // shutdown path
	}
	if s.started.Load() {
		<-s.done
	}
}

// Conn returns the live connection, or nil while the link is down. Sends
// on a conn that dies mid-use fail with ErrClosed; callers treat that the
// same as nil (drop and let the recovery protocol heal the gap).
func (s *Supervisor) Conn() Conn {
	p := s.conn.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Send sends m on the live connection, reporting ErrClosed while the link
// is down (messages are not queued across outages: the knowledge/NACK
// protocol regenerates anything that matters once the link heals).
func (s *Supervisor) Send(m message.Message) error {
	c := s.Conn()
	if c == nil {
		return ErrClosed
	}
	return c.Send(m)
}

// Status snapshots the link for health reporting.
func (s *Supervisor) Status() LinkStatus {
	st := LinkStatus{
		Name:       s.cfg.Name,
		Addr:       s.cfg.Addr,
		State:      LinkState(s.state.Load()),
		Retries:    s.retries.Load(),
		Reconnects: s.healed.Load(),
		Since:      time.Unix(0, s.since.Load()),
	}
	if p := s.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	if dn := s.downNano.Load(); dn != 0 {
		st.DownFor = time.Since(time.Unix(0, dn))
	}
	return st
}

func (s *Supervisor) markState(st LinkState) {
	s.state.Store(int32(st))
	s.since.Store(time.Now().UnixNano())
	if st == LinkUp {
		s.upGauge.Set(1)
		s.downNano.Store(0)
	} else {
		s.upGauge.Set(0)
		// Only the first non-up transition of an outage stamps the start;
		// down→backoff churn keeps the original outage clock running.
		s.downNano.CompareAndSwap(0, time.Now().UnixNano())
	}
}

func (s *Supervisor) recordErr(err error) {
	msg := err.Error()
	s.lastErr.Store(&msg)
}

// Addr reports the supervisor's dial target.
func (s *Supervisor) Addr() string { return s.cfg.Addr }

// attempt runs one dial + bring-up cycle under ctx (tightened by
// DialTimeout when set). On success the conn is installed and its close
// hook wired to the notify channel.
func (s *Supervisor) attempt(ctx context.Context) error {
	cancel := context.CancelFunc(func() {})
	if s.cfg.DialTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DialTimeout)
	}
	conn, err := s.cfg.Transport.DialContext(ctx, s.cfg.Addr)
	cancel()
	if err != nil {
		tDialFailures.Inc()
		s.retries.Add(1)
		s.recordErr(err)
		return err
	}
	// Drain any stale notification from a previous link so the new
	// conn's close is the next thing the loop sees.
	select {
	case <-s.notify:
	default:
	}
	conn.OnClose(func(reason error) {
		select {
		case s.notify <- reason:
		default:
		}
	})
	if up := s.cfg.OnUp; up != nil {
		if err := up(conn); err != nil {
			conn.Close() //nolint:errcheck,gosec // failed bring-up
			tDialFailures.Inc()
			s.retries.Add(1)
			s.recordErr(err)
			return err
		}
	}
	s.conn.Store(&conn)
	s.retries.Store(0)
	if s.everUp {
		s.healed.Add(1)
		tReconnects.Inc()
		tHealSeconds.ObserveDuration(time.Since(s.downAt))
	}
	s.everUp = true
	s.markState(LinkUp)
	return nil
}

// run is the maintenance loop: wait for the active link to die, then
// redial with capped exponential backoff and jitter until it heals or the
// supervisor stops.
func (s *Supervisor) run() {
	defer close(s.done)
	for {
		// Wait for the current link to die (or for Stop).
		if s.Conn() != nil {
			select {
			case reason := <-s.notify:
				s.conn.Store(nil)
				s.downAt = time.Now()
				s.markState(LinkDown)
				if reason != nil {
					s.recordErr(reason)
				}
				select {
				case <-s.stop:
					return
				default:
				}
				if down := s.cfg.OnDown; down != nil {
					down(reason)
				}
			case <-s.stop:
				return
			}
		} else {
			s.downAt = time.Now()
		}
		// Redial until it sticks.
		delay := s.cfg.BackoffMin
		for {
			select {
			case <-s.stop:
				return
			default:
			}
			if s.attempt(context.Background()) == nil {
				break
			}
			s.markState(LinkBackoff)
			wait := time.Duration(float64(delay) * (1 - s.cfg.Jitter*s.rng.Float64()))
			select {
			case <-time.After(wait):
			case <-s.stop:
				return
			}
			delay *= 2
			if delay > s.cfg.BackoffMax {
				delay = s.cfg.BackoffMax
			}
		}
	}
}
