package overlay

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/message"
)

// waitGauge polls the process-wide queue-depth gauge until it reaches want
// or the deadline expires.
func waitGauge(t *testing.T, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if tQueueDepth.Load() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth gauge = %d, want %d", tQueueDepth.Load(), want)
}

func TestInprocSendOnClosedConn(t *testing.T) {
	netw := NewInprocNetwork(0)
	if _, err := netw.Listen("ec", func(c Conn) { c.Start(func(message.Message) {}) }); err != nil {
		t.Fatal(err)
	}
	c, err := netw.Dial("ec")
	if err != nil {
		t.Fatal(err)
	}
	c.Start(func(message.Message) {})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	errsBefore := tSendErrors.Load()
	if err := c.Send(ack(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed inproc conn = %v, want ErrClosed", err)
	}
	if got := tSendErrors.Load() - errsBefore; got != 1 {
		t.Fatalf("send-error counter delta = %d, want 1", got)
	}
}

func TestTCPSendOnClosedConn(t *testing.T) {
	closer, addr, err := ListenAny(func(c Conn) { c.Start(func(message.Message) {}) })
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close() //nolint:errcheck
	c, err := TCPTransport{}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(func(message.Message) {})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(ack(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed TCP conn = %v, want ErrClosed", err)
	}
}

// TestTCPPeerVanishesMidFrame feeds a broker-side conn a frame header that
// promises more bytes than ever arrive, then drops the socket — the way a
// crashing peer looks on the wire. The conn must tear down (OnClose fires)
// rather than block forever in the reader.
func TestTCPPeerVanishesMidFrame(t *testing.T) {
	var serverConn Conn
	accepted := make(chan struct{})
	closed := make(chan struct{})
	closer, addr, err := ListenAny(func(c Conn) {
		serverConn = c
		c.OnClose(func(error) { close(closed) })
		c.Start(func(message.Message) {})
		close(accepted)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close() //nolint:errcheck

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	// Header claims a 100-byte frame; send only 10 and vanish.
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, 100)
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("conn did not tear down after peer vanished mid-frame")
	}
	// Send on the torn-down conn is rejected, and this is reported as a
	// send error, not a silent drop.
	if err := serverConn.Send(ack(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after mid-frame teardown = %v, want ErrClosed", err)
	}
}

// TestTCPOversizedFrameRejected: a header advertising more than the frame
// cap is treated as a protocol violation and the conn tears down.
func TestTCPOversizedFrameRejected(t *testing.T) {
	closed := make(chan struct{})
	accepted := make(chan struct{})
	closer, addr, err := ListenAny(func(c Conn) {
		c.OnClose(func(error) { close(closed) })
		c.Start(func(message.Message) {})
		close(accepted)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close() //nolint:errcheck

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close() //nolint:errcheck
	<-accepted
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, 1<<30) // 1 GiB frame
	if _, err := raw.Write(hdr); err != nil {
		t.Fatal(err)
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("conn did not tear down on oversized frame header")
	}
}

// TestQueueDepthGaugeDrainsOnClose: buffered messages stop counting as
// queued the moment the link closes, even though pop may still drain them.
func TestQueueDepthGaugeDrainsOnClose(t *testing.T) {
	base := tQueueDepth.Load()
	q := newQueue()
	for i := 0; i < 7; i++ {
		if err := q.push(ack(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tQueueDepth.Load() - base; got != 7 {
		t.Fatalf("gauge delta after 7 pushes = %d, want 7", got)
	}
	// A normal pop decrements.
	q.pop()
	if got := tQueueDepth.Load() - base; got != 6 {
		t.Fatalf("gauge delta after pop = %d, want 6", got)
	}
	q.close()
	if got := tQueueDepth.Load() - base; got != 0 {
		t.Fatalf("gauge delta after close = %d, want 0", got)
	}
	// Post-close drain pops must not double-decrement.
	for {
		if _, ok := q.pop(); !ok {
			break
		}
	}
	if got := tQueueDepth.Load() - base; got != 0 {
		t.Fatalf("gauge delta after post-close drain = %d, want 0", got)
	}
}

// TestQueueDepthGaugeDrainsOnConnClose exercises the same invariant
// through a real link: messages buffered behind a never-started receiver
// leave the gauge when the conn closes.
func TestQueueDepthGaugeDrainsOnConnClose(t *testing.T) {
	base := tQueueDepth.Load()
	netw := NewInprocNetwork(0)
	// The accept side never Starts, so client sends stay buffered.
	if _, err := netw.Listen("qd", func(c Conn) {}); err != nil {
		t.Fatal(err)
	}
	c, err := netw.Dial("qd")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Send(ack(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := tQueueDepth.Load() - base; got != 5 {
		t.Fatalf("gauge delta with 5 undispatched sends = %d, want 5", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitGauge(t, base)
}
