package overlay

import (
	"sync"
	"testing"
	"time"

	"repro/internal/message"
	"repro/internal/vtime"
)

// TestPopAllDrainsBatch covers the write coalescer's drain primitive:
// everything queued comes out in one call, in FIFO order, and a closed
// queue with residue still drains before popAll reports closed.
func TestPopAllDrainsBatch(t *testing.T) {
	q := newQueue()
	for i := 1; i <= 5; i++ {
		if err := q.push(ack(vtime.SubscriberID(i))); err != nil {
			t.Fatal(err)
		}
	}
	batch, ok := q.popAll(nil)
	if !ok || len(batch) != 5 {
		t.Fatalf("popAll = %d items / ok=%v, want 5/true", len(batch), ok)
	}
	for i, m := range batch {
		if got := m.(*message.Ack).Subscriber; got != vtime.SubscriberID(i+1) {
			t.Fatalf("batch[%d] = subscriber %d, want %d", i, got, i+1)
		}
	}

	// Residue queued at close time still drains.
	if err := q.push(ack(9)); err != nil {
		t.Fatal(err)
	}
	q.close()
	batch, ok = q.popAll(batch[:0])
	if !ok || len(batch) != 1 || batch[0].(*message.Ack).Subscriber != 9 {
		t.Fatalf("post-close popAll = %d items / ok=%v", len(batch), ok)
	}
	// Closed and empty: reports closed.
	if batch, ok = q.popAll(batch[:0]); ok || len(batch) != 0 {
		t.Fatalf("popAll on closed empty queue = %d items / ok=%v", len(batch), ok)
	}
}

// TestPopAllBlocksUntilPush: an idle link's writer parks in popAll and
// wakes on the first send, so coalescing adds no latency when traffic is
// sparse.
func TestPopAllBlocksUntilPush(t *testing.T) {
	q := newQueue()
	got := make(chan int, 1)
	go func() {
		batch, ok := q.popAll(nil)
		if !ok {
			got <- -1
			return
		}
		got <- len(batch)
	}()
	time.Sleep(5 * time.Millisecond)
	if err := q.push(ack(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("popAll woke with %d items, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("popAll did not wake on push")
	}
	q.close()
}

// TestQueueCapacityBoundedAfterBurst is the overlay half of the
// memory-retention regression: after a large burst drains, the queue's
// backing ring must shrink back instead of pinning the burst's
// high-water mark for the life of the link.
func TestQueueCapacityBoundedAfterBurst(t *testing.T) {
	const burst = 1 << 15
	q := newQueue()
	for i := 0; i < burst; i++ {
		if err := q.push(ack(1)); err != nil {
			t.Fatal(err)
		}
	}
	if q.items.Cap() < burst {
		t.Fatalf("ring cap %d below burst %d", q.items.Cap(), burst)
	}
	batch, ok := q.popAll(nil)
	if !ok || len(batch) != burst {
		t.Fatalf("popAll drained %d of %d", len(batch), burst)
	}
	if c := q.items.Cap(); c > 64 {
		t.Fatalf("ring cap %d retained after burst drained", c)
	}
	q.close()
}

// TestQueueGaugeAccountingRace hammers push/pop/popAll against close under
// the race detector and asserts the queue's net gauge contribution returns
// to zero: the close-time bulk removal and concurrent drains must never
// double-decrement (every decrement is bounded by the queue's live
// `gauged` count, all under the queue mutex).
func TestQueueGaugeAccountingRace(t *testing.T) {
	base := tQueueDepth.Load()
	q := newQueue()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := q.push(ack(1)); err != nil {
					return // queue closed mid-run; expected
				}
			}
		}()
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := q.pop(); !ok {
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var batch []message.Message
		for {
			var ok bool
			if batch, ok = q.popAll(batch[:0]); !ok {
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	wg.Wait()
	// Post-close residue (if the drainers lost the race to close) no longer
	// counts as queued; drain it and re-check nothing double-decrements.
	for {
		if _, ok := q.pop(); !ok {
			break
		}
	}
	if got := tQueueDepth.Load() - base; got != 0 {
		t.Fatalf("net gauge delta after hammer+close = %d, want 0", got)
	}
}

// TestTCPBurstCoalesced pushes a rapid burst through a real TCP link and
// verifies every message arrives intact and in order through the
// coalesced write path, and that the writer recorded its batches.
func TestTCPBurstCoalesced(t *testing.T) {
	batchesBefore := tWriteBatch.Count()
	var msgs collect
	closer, addr, err := ListenAny(func(c Conn) {
		c.Start(msgs.handler)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	c, err := TCPTransport{}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Send(ack(vtime.SubscriberID(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := msgs.waitFor(t, n)
	for i, m := range got {
		if sub := m.(*message.Ack).Subscriber; sub != vtime.SubscriberID(i) {
			t.Fatalf("message %d arrived as subscriber %d: order broken", i, sub)
		}
	}
	if tWriteBatch.Count() == batchesBefore {
		t.Fatal("write-batch histogram recorded no batches")
	}
	c.Close()
}
