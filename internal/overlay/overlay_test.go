package overlay

import (
	"sync"
	"testing"
	"time"

	"repro/internal/message"
	"repro/internal/vtime"
)

// collect gathers messages with a wait helper.
type collect struct {
	mu   sync.Mutex
	msgs []message.Message
}

func (c *collect) handler(m message.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collect) waitFor(t *testing.T, n int) []message.Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := make([]message.Message, len(c.msgs))
			copy(out, c.msgs)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Fatalf("timeout: got %d messages, want %d", len(c.msgs), n)
	return nil
}

func ack(sub vtime.SubscriberID) *message.Ack {
	ct := vtime.NewCheckpointToken()
	ct.Set(1, vtime.Timestamp(sub))
	return &message.Ack{Subscriber: sub, CT: ct}
}

func testBidirectional(t *testing.T, dial func(accept func(Conn)) Conn) {
	t.Helper()
	var serverConn Conn
	var serverMsgs collect
	ready := make(chan struct{})
	client := dial(func(c Conn) {
		serverConn = c
		c.Start(serverMsgs.handler)
		close(ready)
	})
	var clientMsgs collect
	client.Start(clientMsgs.handler)

	const n = 200
	for i := 0; i < n; i++ {
		if err := client.Send(ack(vtime.SubscriberID(i))); err != nil {
			t.Fatalf("client send %d: %v", i, err)
		}
	}
	<-ready
	got := serverMsgs.waitFor(t, n)
	for i, m := range got {
		a, ok := m.(*message.Ack)
		if !ok || a.Subscriber != vtime.SubscriberID(i) {
			t.Fatalf("FIFO violated at %d: %+v", i, m)
		}
	}
	// Server → client direction.
	for i := 0; i < n; i++ {
		if err := serverConn.Send(ack(vtime.SubscriberID(1000 + i))); err != nil {
			t.Fatalf("server send %d: %v", i, err)
		}
	}
	back := clientMsgs.waitFor(t, n)
	for i, m := range back {
		a, ok := m.(*message.Ack)
		if !ok || a.Subscriber != vtime.SubscriberID(1000+i) {
			t.Fatalf("server→client FIFO violated at %d: %+v", i, m)
		}
	}
	if client.RemoteAddr() == "" || serverConn.RemoteAddr() == "" {
		t.Error("empty remote addresses")
	}
	client.Close()     //nolint:errcheck
	serverConn.Close() //nolint:errcheck
}

func TestInprocBidirectionalFIFO(t *testing.T) {
	net := NewInprocNetwork(0)
	closer, err := net.Listen("broker-a", nil)
	if err == nil {
		closer.Close() //nolint:errcheck
	}
	testBidirectional(t, func(accept func(Conn)) Conn {
		if _, err := net.Listen("b1", accept); err != nil {
			t.Fatal(err)
		}
		c, err := net.Dial("b1")
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestTCPBidirectionalFIFO(t *testing.T) {
	testBidirectional(t, func(accept func(Conn)) Conn {
		closer, addr, err := ListenAny(accept)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closer.Close() }) //nolint:errcheck
		c, err := TCPTransport{}.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func TestInprocDialErrors(t *testing.T) {
	net := NewInprocNetwork(0)
	if _, err := net.Dial("nowhere"); err == nil {
		t.Error("dial to unbound address succeeded")
	}
	if _, err := net.Listen("x", func(Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("x", func(Conn) {}); err == nil {
		t.Error("double bind succeeded")
	}
}

func TestInprocListenerClose(t *testing.T) {
	net := NewInprocNetwork(0)
	closer, err := net.Listen("x", func(Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Dial("x"); err == nil {
		t.Error("dial after listener close succeeded")
	}
}

func TestInprocLatency(t *testing.T) {
	net := NewInprocNetwork(5 * time.Millisecond)
	var msgs collect
	if _, err := net.Listen("lat", func(c Conn) { c.Start(msgs.handler) }); err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("lat")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	c.Start(func(message.Message) {})
	start := time.Now()
	c.Send(ack(1)) //nolint:errcheck
	msgs.waitFor(t, 1)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("latency injection too fast: %v", elapsed)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	net := NewInprocNetwork(0)
	if _, err := net.Listen("c", func(c Conn) { c.Start(func(message.Message) {}) }); err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("c")
	if err != nil {
		t.Fatal(err)
	}
	c.Start(func(message.Message) {})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(ack(1)); err == nil {
		t.Error("send after close succeeded")
	}
	// Double close is safe.
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestOnCloseFiresOnPeerClose(t *testing.T) {
	net := NewInprocNetwork(0)
	var serverConn Conn
	if _, err := net.Listen("oc", func(c Conn) {
		serverConn = c
		c.Start(func(message.Message) {})
	}); err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("oc")
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	c.OnClose(func(error) { close(closed) })
	c.Start(func(message.Message) {})
	serverConn.Close() //nolint:errcheck
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("OnClose did not fire on peer close")
	}
	c.Close() //nolint:errcheck
}

func TestTCPOnCloseFiresOnPeerClose(t *testing.T) {
	var serverConn Conn
	accepted := make(chan struct{})
	closer, addr, err := ListenAny(func(c Conn) {
		serverConn = c
		c.Start(func(message.Message) {})
		close(accepted)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close() //nolint:errcheck
	c, err := TCPTransport{}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	c.OnClose(func(error) { close(closed) })
	c.Start(func(message.Message) {})
	<-accepted
	serverConn.Close() //nolint:errcheck
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("OnClose did not fire on TCP peer close")
	}
	c.Close() //nolint:errcheck
}

func TestTCPLargeMessage(t *testing.T) {
	var msgs collect
	closer, addr, err := ListenAny(func(c Conn) { c.Start(msgs.handler) })
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close() //nolint:errcheck
	c, err := TCPTransport{}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	c.Start(func(message.Message) {})

	big := &message.Publish{Payload: make([]byte, 1<<20), Token: 9}
	if err := c.Send(big); err != nil {
		t.Fatal(err)
	}
	got := msgs.waitFor(t, 1)
	p, ok := got[0].(*message.Publish)
	if !ok || len(p.Payload) != 1<<20 || p.Token != 9 {
		t.Fatalf("large message mangled: %T", got[0])
	}
}

func TestQueueSemantics(t *testing.T) {
	q := newQueue()
	if err := q.push(ack(1)); err != nil {
		t.Fatal(err)
	}
	if q.len() != 1 {
		t.Errorf("len = %d", q.len())
	}
	m, ok := q.pop()
	if !ok || m.(*message.Ack).Subscriber != 1 {
		t.Fatalf("pop = %v/%v", m, ok)
	}
	// pop on closed empty queue returns immediately.
	done := make(chan struct{})
	go func() {
		_, ok := q.pop()
		if ok {
			t.Error("pop on closed returned ok")
		}
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	q.close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not unblock on close")
	}
	if err := q.push(ack(2)); err == nil {
		t.Error("push after close succeeded")
	}
}
