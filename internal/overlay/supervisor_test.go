package overlay

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/message"
)

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// supListener is a test peer that tracks accepted conns so they can be
// killed server-side.
type supListener struct {
	mu    sync.Mutex
	conns []Conn
}

func (l *supListener) accept(c Conn) {
	c.Start(func(message.Message) {})
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
}

func (l *supListener) killLatest() {
	l.mu.Lock()
	c := l.conns[len(l.conns)-1]
	l.mu.Unlock()
	c.Close() //nolint:errcheck,gosec // test kill
}

func TestSupervisorStartFailFast(t *testing.T) {
	net := NewInprocNetwork(0)
	s := NewSupervisor(SupervisorConfig{
		Name:      "t/failfast",
		Transport: net,
		Addr:      "nobody-home",
		OnUp:      func(Conn) error { return nil },
	})
	if err := s.Start(); err == nil {
		t.Fatal("Start to a dead address should fail")
	}
	st := s.Status()
	if st.Retries == 0 || st.LastError == "" {
		t.Fatalf("failed attempt not recorded: %+v", st)
	}
	s.Stop() // must not hang: the run loop never started
}

func TestSupervisorReconnectsAndCountsHeals(t *testing.T) {
	net := NewInprocNetwork(0)
	srv := &supListener{}
	closer, err := net.Listen("srv", srv.accept)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close() //nolint:errcheck

	var ups atomic.Int64
	var downReasons []error
	var mu sync.Mutex
	s := NewSupervisor(SupervisorConfig{
		Name:       "t/reconnect",
		Transport:  net,
		Addr:       "srv",
		BackoffMin: time.Millisecond,
		BackoffMax: 5 * time.Millisecond,
		OnUp: func(c Conn) error {
			c.Start(func(message.Message) {})
			ups.Add(1)
			return nil
		},
		OnDown: func(reason error) {
			mu.Lock()
			downReasons = append(downReasons, reason)
			mu.Unlock()
		},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if got := s.Status(); got.State != LinkUp || got.Reconnects != 0 {
		t.Fatalf("after Start: %+v", got)
	}

	const kills = 3
	for i := 0; i < kills; i++ {
		want := int64(i + 2)
		srv.killLatest()
		waitUntil(t, "reconnect", func() bool { return ups.Load() == want })
	}
	waitUntil(t, "status up", func() bool { return s.Status().State == LinkUp })
	st := s.Status()
	if st.Reconnects != kills {
		t.Fatalf("Reconnects = %d, want %d", st.Reconnects, kills)
	}
	if st.Retries != 0 {
		t.Fatalf("Retries should reset on heal: %+v", st)
	}
	mu.Lock()
	nDown := len(downReasons)
	for _, r := range downReasons {
		if !errors.Is(r, ErrPeerClosed) {
			t.Errorf("down reason = %v, want ErrPeerClosed", r)
		}
	}
	mu.Unlock()
	if nDown != kills {
		t.Fatalf("OnDown fired %d times, want %d", nDown, kills)
	}
}

func TestSupervisorBackoffThenHeal(t *testing.T) {
	net := NewInprocNetwork(0)
	srv := &supListener{}
	closer, err := net.Listen("flappy", srv.accept)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSupervisor(SupervisorConfig{
		Name:       "t/backoff",
		Transport:  net,
		Addr:       "flappy",
		BackoffMin: time.Millisecond,
		BackoffMax: 4 * time.Millisecond,
		OnUp: func(c Conn) error {
			c.Start(func(message.Message) {})
			return nil
		},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	// Take the listener away and kill the link: the supervisor must cycle
	// through backoff, accumulate retries, and record the dial error.
	closer.Close() //nolint:errcheck,gosec // test teardown
	srv.killLatest()
	waitUntil(t, "retries accumulate", func() bool {
		st := s.Status()
		return st.State != LinkUp && st.Retries >= 3 && st.LastError != ""
	})
	if s.Conn() != nil {
		t.Fatal("Conn() should be nil while down")
	}
	if err := s.Send(ack(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send while down = %v, want ErrClosed", err)
	}

	// Bring the listener back: the link must heal on its own.
	if _, err := net.Listen("flappy", srv.accept); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "heal", func() bool { return s.Status().State == LinkUp })
	if got := s.Status().Reconnects; got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	if err := s.Send(ack(1)); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
}

func TestSupervisorStartDeferred(t *testing.T) {
	net := NewInprocNetwork(0)
	s := NewSupervisor(SupervisorConfig{
		Name:       "t/deferred",
		Transport:  net,
		Addr:       "late",
		BackoffMin: time.Millisecond,
		BackoffMax: 4 * time.Millisecond,
		OnUp: func(c Conn) error {
			c.Start(func(message.Message) {})
			return nil
		},
	})
	s.StartDeferred()
	defer s.Stop()
	time.Sleep(5 * time.Millisecond) // a few failed attempts
	srv := &supListener{}
	if _, err := net.Listen("late", srv.accept); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "deferred link up", func() bool { return s.Status().State == LinkUp })
}

func TestSupervisorOnUpErrorRetries(t *testing.T) {
	net := NewInprocNetwork(0)
	srv := &supListener{}
	if _, err := net.Listen("picky", srv.accept); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s := NewSupervisor(SupervisorConfig{
		Name:       "t/onup-error",
		Transport:  net,
		Addr:       "picky",
		BackoffMin: time.Millisecond,
		BackoffMax: 4 * time.Millisecond,
		OnUp: func(c Conn) error {
			if calls.Add(1) < 3 {
				return errors.New("not ready")
			}
			c.Start(func(message.Message) {})
			return nil
		},
	})
	// First sync attempt fails bring-up: Start must surface it.
	if err := s.Start(); err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("Start = %v, want bring-up error", err)
	}
	// A deferred start keeps retrying until OnUp succeeds.
	s.StartDeferred()
	defer s.Stop()
	waitUntil(t, "eventual bring-up", func() bool { return s.Status().State == LinkUp })
	if calls.Load() < 3 {
		t.Fatalf("OnUp called %d times, want >= 3", calls.Load())
	}
}

func TestSupervisorDownFor(t *testing.T) {
	net := NewInprocNetwork(0)
	lis := &supListener{}
	closer, err := net.Listen("peer", lis.accept)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSupervisor(SupervisorConfig{
		Name:      "t/downfor",
		Transport: net,
		Addr:      "peer",
		OnUp: func(c Conn) error {
			c.Start(func(message.Message) {})
			return nil
		},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if st := s.Status(); st.State != LinkUp || st.DownFor != 0 {
		t.Fatalf("up status = %+v, want LinkUp with zero DownFor", st)
	}

	// Kill the link server-side: DownFor must start counting from the
	// loss and keep growing across backoff/redial churn until it heals.
	closer.Close() //nolint:errcheck,gosec // keep redials failing so the outage persists
	lis.killLatest()
	waitUntil(t, "link down", func() bool { return s.Status().State != LinkUp })
	early := s.Status().DownFor
	if early <= 0 {
		t.Fatalf("DownFor = %v right after loss, want > 0", early)
	}
	time.Sleep(30 * time.Millisecond)
	later := s.Status().DownFor
	if later < early+20*time.Millisecond {
		t.Fatalf("DownFor did not grow across the outage: %v then %v", early, later)
	}

	if _, err := net.Listen("peer", lis.accept); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "link healed", func() bool { return s.Status().State == LinkUp })
	if st := s.Status(); st.DownFor != 0 {
		t.Fatalf("healed DownFor = %v, want 0", st.DownFor)
	}
}
