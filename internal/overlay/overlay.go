// Package overlay implements the broker overlay network's links: ordered,
// reliable, bidirectional message connections between brokers, and between
// clients and brokers.
//
// Two transports are provided. The in-process transport connects brokers
// living in one OS process through queues (with optional injected latency
// to model network hops); the TCP transport frames the message codec over
// real sockets, matching the paper's deployment ("connections between
// brokers in the overlay network are implemented using TCP").
//
// The last hop from an SHB to a subscriber is a FIFO link, and delivery of
// a message is complete as soon as it is enqueued (paper, section 4.1);
// Conn.Send has exactly those semantics.
package overlay

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/message"
	"repro/internal/ringq"
	"repro/internal/telemetry"
)

// ErrClosed is returned by operations on a closed connection or transport.
var ErrClosed = errors.New("overlay: closed")

// Close reasons reported to OnClose callbacks. A link dies for one of
// three broad causes; supervisors and brokers use the reason to decide
// whether a reconnect is warranted (peer/transport failure) or the
// shutdown was deliberate (local close).
var (
	// ErrLocalClosed: this side called Close.
	ErrLocalClosed = errors.New("overlay: closed locally")
	// ErrPeerClosed: the remote end closed the link (orderly close or
	// vanished peer observed as EOF).
	ErrPeerClosed = errors.New("overlay: closed by peer")
	// ErrProtocol: the link tore down because the peer violated the wire
	// protocol (e.g. an oversized frame header).
	ErrProtocol = errors.New("overlay: protocol violation")
)

// Link instruments (process-wide; see internal/telemetry).
var (
	tMsgsSent = telemetry.Default().Counter("gryphon_overlay_sent_total",
		"Messages enqueued on overlay links.")
	tMsgsRecv = telemetry.Default().Counter("gryphon_overlay_received_total",
		"Messages dispatched to overlay link handlers.")
	tQueueDepth = telemetry.Default().Gauge("gryphon_overlay_queue_depth",
		"Messages currently buffered in overlay link queues.")
	tTCPBytes = telemetry.Default().Counter("gryphon_overlay_tcp_bytes_total",
		"Frame bytes written to TCP overlay sockets.")
	tSendErrors = telemetry.Default().Counter("gryphon_overlay_send_errors_total",
		"Sends rejected because the link was closed.")
	tWriteBatch = telemetry.Default().Histogram("gryphon_overlay_write_batch_size",
		"Messages coalesced into one TCP write.", telemetry.SizeBuckets)
)

// Handler consumes inbound messages from a connection. Handlers run on the
// connection's single dispatch goroutine, so messages from one peer are
// processed in FIFO order.
type Handler func(m message.Message)

// Conn is one end of a bidirectional FIFO link.
type Conn interface {
	// Send enqueues a message; delivery is complete at enqueue time.
	// Send never blocks on the network.
	Send(m message.Message) error
	// Start begins dispatching inbound messages to h. It must be called
	// exactly once; messages received before Start are buffered.
	Start(h Handler)
	// Close tears down the link and waits for its goroutines to exit.
	// The peer's handler observes the close via OnClose.
	Close() error
	// OnClose registers a callback invoked once when the connection
	// shuts down (either side), with the reason: ErrLocalClosed for a
	// deliberate local Close, ErrPeerClosed when the remote end went
	// away, or a transport error (write failure, protocol violation).
	// Must be called before Start.
	OnClose(func(reason error))
	// RemoteAddr describes the peer (diagnostic).
	RemoteAddr() string
}

// Transport creates and accepts connections.
type Transport interface {
	// Listen binds addr and invokes accept for every inbound
	// connection. The returned closer stops listening.
	Listen(addr string, accept func(Conn)) (io.Closer, error)
	// Dial connects to addr with no deadline (DialContext with a
	// background context).
	Dial(addr string) (Conn, error)
	// DialContext connects to addr, honoring ctx cancellation and
	// deadline for the connection attempt itself.
	DialContext(ctx context.Context, addr string) (Conn, error)
}

// queue is an unbounded FIFO of messages with blocking pop, backed by a
// ring buffer so drained slots are released and a burst's backing array
// shrinks back once it drains (the old slice-shift queue pinned its
// high-water mark for the life of the link).
//
// Its occupancy is mirrored into the process-wide queue-depth gauge
// through the `gauged` count: the queue's exact live contribution to the
// gauge, mutated only under mu. Every decrement is bounded by `gauged`,
// so the close-time bulk removal and a concurrent drain can never
// double-decrement — once close zeroes the contribution, later pops see
// gauged == 0 and leave the gauge alone (the remaining items may still
// drain, but they no longer count as queued).
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  ringq.Ring[message.Message]
	closed bool
	gauged int // this queue's live contribution to tQueueDepth
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(m message.Message) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items.Push(m)
	q.gauged++
	tQueueDepth.Inc()
	q.cond.Signal()
	return nil
}

// pop blocks until an item is available or the queue closes (nil, false).
func (q *queue) pop() (message.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	m, ok := q.items.Pop()
	if !ok {
		return nil, false
	}
	if q.gauged > 0 {
		q.gauged--
		tQueueDepth.Dec()
	}
	return m, true
}

// popAll blocks until at least one item is queued or the queue closes,
// then drains everything currently queued into dst (reusing its capacity)
// in one shot. It returns (dst, false) only when the queue is closed and
// empty; a closed queue with residue still drains, so no accepted message
// is silently dropped by the writer.
func (q *queue) popAll(dst []message.Message) ([]message.Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.items.Len() == 0 {
		return dst, false
	}
	before := len(dst)
	dst = q.items.PopAll(dst)
	if n := len(dst) - before; q.gauged > 0 {
		dec := min(n, q.gauged)
		q.gauged -= dec
		tQueueDepth.Add(int64(-dec))
	}
	return dst, true
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	if q.gauged > 0 {
		tQueueDepth.Add(int64(-q.gauged))
		q.gauged = 0
	}
	q.cond.Broadcast()
}

func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// closeHook manages the one-shot OnClose callback shared by both conn
// implementations. The first fire wins: its reason is the one reported.
type closeHook struct {
	mu     sync.Mutex
	fn     func(error)
	done   bool
	reason error
}

func (c *closeHook) set(fn func(error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fn = fn
}

func (c *closeHook) fire(reason error) {
	c.mu.Lock()
	fn := c.fn
	fired := c.done
	c.done = true
	if !fired {
		c.reason = reason
	}
	c.mu.Unlock()
	if !fired && fn != nil {
		fn(reason)
	}
}

// --- In-process transport ---

// InprocNetwork is a registry of in-process listeners. A single
// InprocNetwork models one connected overlay; distinct networks are
// isolated.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]func(Conn)
	latency   time.Duration
}

// NewInprocNetwork returns an empty in-process network. latency, if
// positive, is added to every message delivery (one way), modelling a
// network hop.
func NewInprocNetwork(latency time.Duration) *InprocNetwork {
	return &InprocNetwork{
		listeners: make(map[string]func(Conn)),
		latency:   latency,
	}
}

var _ Transport = (*InprocNetwork)(nil)

// Listen implements Transport.
func (n *InprocNetwork) Listen(addr string, accept func(Conn)) (io.Closer, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("overlay: inproc address %q already bound", addr)
	}
	n.listeners[addr] = accept
	return closerFunc(func() error {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(n.listeners, addr)
		return nil
	}), nil
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// DialContext implements Transport. The in-process dial completes
// immediately, so the context only gates an attempt that is already
// cancelled.
func (n *InprocNetwork) DialContext(ctx context.Context, addr string) (Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("overlay: inproc dial %q: %w", addr, err)
	}
	return n.Dial(addr)
}

// Dial implements Transport.
func (n *InprocNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	accept := n.listeners[addr]
	latency := n.latency
	n.mu.Unlock()
	if accept == nil {
		return nil, fmt.Errorf("overlay: no inproc listener at %q", addr)
	}
	ab, ba := newQueue(), newQueue()
	client := &inprocConn{out: ab, in: ba, latency: latency, addr: addr}
	server := &inprocConn{out: ba, in: ab, latency: latency, addr: "client->" + addr}
	client.peer, server.peer = server, client
	accept(server)
	return client, nil
}

// inprocConn is one side of an in-process link.
type inprocConn struct {
	out     *queue
	in      *queue
	peer    *inprocConn
	latency time.Duration
	addr    string
	hook    closeHook

	startOnce sync.Once
	closeOnce sync.Once
	done      chan struct{}
}

var _ Conn = (*inprocConn)(nil)

func (c *inprocConn) Send(m message.Message) error {
	if err := c.out.push(m); err != nil {
		tSendErrors.Inc()
		return err
	}
	tMsgsSent.Inc()
	return nil
}

func (c *inprocConn) Start(h Handler) {
	c.startOnce.Do(func() {
		c.done = make(chan struct{})
		go func() {
			defer close(c.done)
			for {
				m, ok := c.in.pop()
				if !ok {
					c.hook.fire(ErrPeerClosed)
					return
				}
				if c.latency > 0 {
					time.Sleep(c.latency)
				}
				tMsgsRecv.Inc()
				h(m)
			}
		}()
	})
}

func (c *inprocConn) Close() error {
	c.closeOnce.Do(func() {
		c.out.close()
		c.in.close()
		c.hook.fire(ErrLocalClosed)
	})
	if c.done != nil {
		<-c.done
	}
	return nil
}

func (c *inprocConn) OnClose(fn func(error)) { c.hook.set(fn) }

func (c *inprocConn) RemoteAddr() string { return c.addr }

// --- TCP transport ---

// TCPTransport frames the message codec over TCP sockets.
type TCPTransport struct{}

var _ Transport = TCPTransport{}

// Listen implements Transport.
func (TCPTransport) Listen(addr string, accept func(Conn)) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay listen: %w", err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			accept(newTCPConn(nc))
		}
	}()
	return ln, nil
}

// Dial implements Transport (no deadline; prefer DialContext with a
// timeout for anything that must not hang on an unresponsive network).
func (t TCPTransport) Dial(addr string) (Conn, error) {
	return t.DialContext(context.Background(), addr)
}

// DialContext implements Transport: the connection attempt aborts when ctx
// is cancelled or its deadline passes (net.Dialer.DialContext semantics),
// instead of blocking for the kernel's connect timeout.
func (TCPTransport) DialContext(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("overlay dial: %w", err)
	}
	return newTCPConn(nc), nil
}

// ListenAny binds an ephemeral local TCP port and reports the bound
// address; the experiment harness uses it to build multi-process-like
// topologies on loopback.
func ListenAny(accept func(Conn)) (io.Closer, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", fmt.Errorf("overlay listen: %w", err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			accept(newTCPConn(nc))
		}
	}()
	return ln, ln.Addr().String(), nil
}

// tcpConn pairs an outbound queue + writer goroutine with a reader
// goroutine over one socket.
type tcpConn struct {
	nc   net.Conn
	out  *queue
	hook closeHook

	startOnce  sync.Once
	closeOnce  sync.Once
	writerDone chan struct{}
	readerDone chan struct{}
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(nc net.Conn) *tcpConn {
	c := &tcpConn{
		nc:         nc,
		out:        newQueue(),
		writerDone: make(chan struct{}),
	}
	go c.writer()
	return c
}

// writer coalesces the send queue onto the socket: each iteration drains
// every message queued at that moment, encodes them back-to-back as
// length-prefixed frames into one pooled buffer, and hands the whole batch
// to the kernel in a single Write. Under load the syscall and encode-buffer
// cost is amortized over the batch; an idle link still flushes each message
// immediately (popAll blocks until something is queued).
func (c *tcpConn) writer() {
	defer close(c.writerDone)
	bufp := message.GetEncodeBuffer()
	defer message.PutEncodeBuffer(bufp)
	var batch []message.Message
	for {
		var ok bool
		batch, ok = c.out.popAll(batch[:0])
		if !ok {
			return
		}
		buf := (*bufp)[:0]
		framed := 0
		for i, m := range batch {
			var err error
			if buf, err = message.AppendFramed(buf, m); err == nil {
				framed++
			}
			// The frame bytes are in buf; the message's pooled buffer
			// references (and pooled envelopes) can be recycled now. An
			// encode failure consumes ownership the same way — the sender
			// retained per enqueue, so the release must be unconditional.
			if rel, ok := m.(message.Releasable); ok {
				rel.ReleaseRefs()
			}
			batch[i] = nil // release the message once framed
		}
		*bufp = buf
		if framed == 0 {
			continue
		}
		tWriteBatch.Observe(int64(framed))
		if _, err := c.nc.Write(buf); err != nil {
			c.teardown(fmt.Errorf("overlay write: %w", err))
			return
		}
		tTCPBytes.Add(int64(len(buf)))
	}
}

func (c *tcpConn) Send(m message.Message) error {
	if err := c.out.push(m); err != nil {
		tSendErrors.Inc()
		return err
	}
	tMsgsSent.Inc()
	return nil
}

func (c *tcpConn) Start(h Handler) {
	c.startOnce.Do(func() {
		c.readerDone = make(chan struct{})
		go func() {
			defer close(c.readerDone)
			hdr := make([]byte, 4)
			for {
				if _, err := io.ReadFull(c.nc, hdr); err != nil {
					c.teardown(readReason(err))
					return
				}
				n := binary.BigEndian.Uint32(hdr)
				if n > 64<<20 {
					c.teardown(fmt.Errorf("%w: %d-byte frame header", ErrProtocol, n))
					return
				}
				// Read the body into a pooled, ref-counted buffer and decode
				// once; knowledge frames alias the buffer (DecodeShared).
				// The reader owns the base reference: handlers that keep an
				// event past the h(m) call retain it, and the base is
				// dropped as soon as dispatch returns. With no retainers the
				// buffer is back in the pool before the next frame is read.
				ref := message.AcquireRef(int(n))
				if _, err := io.ReadFull(c.nc, ref.Bytes()); err != nil {
					ref.Release()
					c.teardown(readReason(err))
					return
				}
				m, err := message.DecodeShared(ref)
				if err != nil {
					ref.Release()
					continue // skip unknown/corrupt frames
				}
				tMsgsRecv.Inc()
				h(m)
				ref.Release()
			}
		}()
	})
}

// readReason maps a reader error onto a close reason: a clean EOF is the
// peer closing; anything else is a transport failure (which includes the
// ECONNRESET of a crashed peer).
func readReason(err error) error {
	if errors.Is(err, io.EOF) {
		return ErrPeerClosed
	}
	return fmt.Errorf("overlay read: %w", err)
}

// teardown closes the socket and queue from a goroutine that noticed
// failure, recording why.
func (c *tcpConn) teardown(reason error) {
	c.closeOnce.Do(func() {
		c.out.close()
		c.nc.Close() //nolint:errcheck,gosec // teardown path
		c.hook.fire(reason)
	})
}

func (c *tcpConn) Close() error {
	// Let queued messages drain briefly before closing the socket.
	for i := 0; i < 100 && c.out.len() > 0; i++ {
		time.Sleep(time.Millisecond)
	}
	c.teardown(ErrLocalClosed)
	<-c.writerDone
	if c.readerDone != nil {
		<-c.readerDone
	}
	return nil
}

func (c *tcpConn) OnClose(fn func(error)) { c.hook.set(fn) }

func (c *tcpConn) RemoteAddr() string { return c.nc.RemoteAddr().String() }
