package logvol

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func (v *Volume) setSyncHook(hook func()) {
	v.mu.Lock()
	v.testSyncHook = hook
	v.mu.Unlock()
}

// TestGroupCommitAppendReadBack checks the basic contract: concurrent
// appends on a SyncGroup volume all land, read back intact, and survive a
// reopen.
func TestGroupCommitAppendReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	s, err := v.Stream("events")
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				payload := []byte(fmt.Sprintf("writer-%d-event-%d", w, i))
				if _, err := s.Append(payload); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("append: %v", err)
	}

	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("live records = %d, want %d", got, writers*perWriter)
	}
	var n int
	if err := s.ForEach(func(idx Index, payload []byte) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("ForEach visited %d records, want %d", n, writers*perWriter)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close() //nolint:errcheck
	s2, err := v2.LookupStream("events")
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != writers*perWriter {
		t.Fatalf("after reopen: live records = %d, want %d", got, writers*perWriter)
	}
}

// TestGroupCommitAmortizesFsyncs is the deterministic amortization proof:
// with a slowed fsync and many concurrent durable appenders, the number of
// fsyncs must come out far below the number of appends.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close() //nolint:errcheck
	s, err := v.Stream("events")
	if err != nil {
		t.Fatal(err)
	}
	v.setSyncHook(func() { time.Sleep(2 * time.Millisecond) })

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Append([]byte("payload")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	appends := int64(writers * perWriter)
	syncs := v.Syncs()
	if syncs >= appends/2 {
		t.Fatalf("group commit issued %d fsyncs for %d appends; expected heavy amortization", syncs, appends)
	}
	t.Logf("%d appends, %d fsyncs (%.3f fsyncs/append)", appends, syncs, float64(syncs)/float64(appends))
}

// TestGroupCommitTornTailRecovery simulates a crash after the batch write
// but before its fsync: acked records must survive, the torn tail must be
// dropped, and the recovered volume must accept new appends.
func TestGroupCommitTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.log")
	v, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	s, err := v.Stream("events")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: k acked (durable) records.
	const acked = 10
	for i := 0; i < acked; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	durableSize := v.Size()

	// Phase 2: block the fsync and enqueue more appends. They are written
	// to the file but never acked — the covering fsync cannot complete.
	block := make(chan struct{})
	blocked := make(chan struct{}, 4)
	v.setSyncHook(func() {
		blocked <- struct{}{}
		<-block
	})
	const unacked = 5
	tickets := make([]*Ticket, 0, unacked)
	for i := 0; i < unacked; i++ {
		tickets = append(tickets, s.AppendAsync([]byte(fmt.Sprintf("unacked-%d", i))))
	}
	// Wait until all unacked records are written (size grows) and the
	// commit loop is wedged inside the fsync.
	deadline := time.Now().Add(5 * time.Second)
	for v.Size() <= durableSize {
		if time.Now().After(deadline) {
			t.Fatal("batch write never happened")
		}
		time.Sleep(time.Millisecond)
	}
	<-blocked
	for _, tk := range tickets {
		select {
		case <-tk.Done():
			t.Fatal("append acked before its fsync returned")
		default:
		}
	}

	// Snapshot the file as the "crash image", torn mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) < v.Size() {
		t.Fatalf("crash image %d bytes < volume size %d", len(data), v.Size())
	}
	data = data[:v.Size()-3] // tear the last record
	crashPath := filepath.Join(dir, "crash.log")
	if err := os.WriteFile(crashPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Let the original volume finish cleanly.
	close(block)
	v.setSyncHook(nil)
	for _, tk := range tickets {
		if _, err := tk.Result(); err != nil {
			t.Fatalf("unacked append failed after unblock: %v", err)
		}
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the crash image: all acked records intact, torn tail gone.
	cv, err := Open(crashPath, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer cv.Close() //nolint:errcheck
	cs, err := cv.LookupStream("events")
	if err != nil {
		t.Fatal(err)
	}
	n := cs.Len()
	if n < acked {
		t.Fatalf("recovered %d records, lost acked data (want >= %d)", n, acked)
	}
	if n >= acked+unacked {
		t.Fatalf("recovered %d records, torn tail not dropped (wrote %d)", n, acked+unacked)
	}
	for i := 0; i < acked; i++ {
		payload, err := cs.Read(Index(i + 1))
		if err != nil {
			t.Fatalf("read acked record %d: %v", i+1, err)
		}
		if want := fmt.Sprintf("acked-%d", i); string(payload) != want {
			t.Fatalf("record %d = %q, want %q", i+1, payload, want)
		}
	}
	// The recovered volume must accept appends at the right index.
	idx, err := cs.Append([]byte("post-crash"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != Index(n+1) {
		t.Fatalf("post-crash append got index %d, want %d", idx, n+1)
	}
}

// TestCommitterConcurrentChopClose drives concurrent appenders against
// Chop and a mid-flight Close: nothing may deadlock, every ticket must
// resolve (success or ErrClosed), and the volume must reopen cleanly.
// Run under -race in CI.
func TestCommitterConcurrentChopClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	s, err := v.Stream("events")
	if err != nil {
		t.Fatal(err)
	}

	const writers = 6
	var (
		wg       sync.WaitGroup
		resolved atomic.Int64
		badErr   atomic.Value
	)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk := s.AppendAsync([]byte("concurrent payload"))
				_, err := tk.Result()
				resolved.Add(1)
				if err != nil && !errors.Is(err, ErrClosed) {
					badErr.Store(err)
					return
				}
				if errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
	}
	// Chopper: repeatedly discard the stream prefix while appends fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			last := s.LastIndex()
			if last > 2 {
				if err := s.Chop(last - 2); err != nil && !errors.Is(err, ErrClosed) {
					badErr.Store(err)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	if err := v.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(stop)

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: goroutines did not finish after Close")
	}
	if e := badErr.Load(); e != nil {
		t.Fatalf("unexpected error: %v", e)
	}
	if resolved.Load() == 0 {
		t.Fatal("no appends resolved before close")
	}

	v2, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatalf("reopen after concurrent close: %v", err)
	}
	defer v2.Close() //nolint:errcheck
	s2, err := v2.LookupStream("events")
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.ForEach(func(idx Index, payload []byte) bool {
		if string(payload) != "concurrent payload" {
			t.Errorf("record %d corrupted: %q", idx, payload)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTicketOnDone covers callback delivery both before and after
// resolution, and the sync barrier ordering of Volume.Sync on a group
// volume.
func TestTicketOnDone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close() //nolint:errcheck
	s, err := v.Stream("events")
	if err != nil {
		t.Fatal(err)
	}

	// Callback registered before resolution fires exactly once with the
	// assigned index.
	got := make(chan Index, 1)
	tk := s.AppendAsync([]byte("one"))
	tk.OnDone(func(idx Index, err error) {
		if err != nil {
			t.Errorf("OnDone err: %v", err)
		}
		got <- idx
	})
	select {
	case idx := <-got:
		if idx != 1 {
			t.Fatalf("OnDone idx = %d, want 1", idx)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone callback never fired")
	}

	// Callback registered after resolution runs inline.
	if _, err := tk.Result(); err != nil {
		t.Fatal(err)
	}
	fired := false
	tk.OnDone(func(idx Index, err error) { fired = true })
	if !fired {
		t.Fatal("OnDone after resolution did not run inline")
	}

	// Volume.Sync barriers behind queued appends: every ticket enqueued
	// before the Sync must be resolved once Sync returns.
	tickets := make([]*Ticket, 0, 10)
	for i := 0; i < 10; i++ {
		tickets = append(tickets, s.AppendAsync([]byte("barriered")))
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tickets {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d unresolved after Sync barrier", i)
		}
	}
}

// TestAppendAsyncFallback checks AppendAsync on a non-group volume: it
// degrades to a synchronous append with an already-resolved ticket.
func TestAppendAsyncFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close() //nolint:errcheck
	s, err := v.Stream("events")
	if err != nil {
		t.Fatal(err)
	}
	tk := s.AppendAsync([]byte("sync path"))
	select {
	case <-tk.Done():
	default:
		t.Fatal("fallback ticket not resolved synchronously")
	}
	idx, err := tk.Result()
	if err != nil || idx != 1 {
		t.Fatalf("fallback Result = (%d, %v), want (1, nil)", idx, err)
	}
}
