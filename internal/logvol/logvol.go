// Package logvol implements the Log Volume the paper's Persistent
// Filtering Subsystem is built on (section 4.2, citing the logger-based
// recovery subsystem of Bagchi et al.): multiple append-only log streams
// multiplexed onto a single file, with efficient retrieval of records by
// per-stream index number and a "chop" operation that discards a prefix of
// a stream.
//
// The volume is crash-consistent: records carry CRCs and recovery scans the
// file, dropping a torn tail. Durability is controlled by a SyncPolicy plus
// an explicit Sync for group commit.
package logvol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Volume instruments (process-wide; see internal/telemetry).
var (
	tAppendBytes = telemetry.Default().Counter("gryphon_logvol_append_bytes_total",
		"Bytes appended to log volumes (records plus framing).")
	tAppends = telemetry.Default().Counter("gryphon_logvol_appends_total",
		"Records appended to log volumes.")
	tFsyncs = telemetry.Default().Counter("gryphon_logvol_fsyncs_total",
		"fsync calls issued by log volumes.")
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncExplicit leaves durability to explicit Sync calls (group
	// commit). This models the paper's "sync every N events" regime and
	// the battery-backed write cache of section 5.2.
	SyncExplicit SyncPolicy = iota + 1
	// SyncAlways fsyncs after every append; models per-write forced
	// logging.
	SyncAlways
)

// Index identifies a record within one stream. Indexes are assigned
// monotonically starting at 1; 0 is the nil index ("no record"), which the
// PFS uses as the end-of-chain backpointer.
type Index uint64

// NilIndex is the "no record" sentinel.
const NilIndex Index = 0

// Errors the volume reports.
var (
	ErrNotFound     = errors.New("logvol: record not found")
	ErrChopped      = errors.New("logvol: record chopped")
	ErrClosed       = errors.New("logvol: volume closed")
	ErrCorrupt      = errors.New("logvol: corrupt record")
	ErrNoSuchStream = errors.New("logvol: no such stream")
)

const (
	recHeaderSize = 4 + 8 + 4 // streamID u32, index u64, payload len u32
	recTrailerLen = 4         // crc32
	metaStreamID  = 0
	metaCreate    = byte(1)
	metaChop      = byte(2)
)

// Options configures a volume.
type Options struct {
	// Sync selects the durability policy; zero value means SyncExplicit.
	Sync SyncPolicy
}

// Volume is a single-file log volume. All methods are safe for concurrent
// use.
type Volume struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	policy  SyncPolicy
	closed  bool
	streams map[string]*Stream
	byID    map[uint32]*Stream
	nextID  uint32

	// stats for the paper's PFS-vs-event-log data-volume comparison.
	bytesAppended int64
	syncs         int64
}

// Stream is one log stream within a volume.
type Stream struct {
	vol     *Volume
	id      uint32
	name    string
	next    Index // next index to assign
	minLive Index // all indexes < minLive are chopped
	offsets map[Index]int64
}

// Open opens or creates the volume at path and recovers its streams.
func Open(path string, opts Options) (*Volume, error) {
	if opts.Sync == 0 {
		opts.Sync = SyncExplicit
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logvol open: %w", err)
	}
	v := &Volume{
		f:       f,
		path:    path,
		policy:  opts.Sync,
		streams: make(map[string]*Stream),
		byID:    make(map[uint32]*Stream),
		nextID:  1,
	}
	if err := v.recover(); err != nil {
		f.Close() //nolint:errcheck,gosec // best-effort cleanup on failed open
		return nil, err
	}
	return v, nil
}

// recover scans the file rebuilding stream tables, stopping at the first
// torn or corrupt record (which it truncates away).
func (v *Volume) recover() error {
	info, err := v.f.Stat()
	if err != nil {
		return fmt.Errorf("logvol recover: %w", err)
	}
	fileSize := info.Size()
	var off int64
	hdr := make([]byte, recHeaderSize)
	for off+recHeaderSize+recTrailerLen <= fileSize {
		if _, err := v.f.ReadAt(hdr, off); err != nil {
			break
		}
		streamID := binary.BigEndian.Uint32(hdr)
		index := Index(binary.BigEndian.Uint64(hdr[4:]))
		plen := int64(binary.BigEndian.Uint32(hdr[12:]))
		total := recHeaderSize + plen + recTrailerLen
		if off+total > fileSize || plen > 1<<30 {
			break
		}
		body := make([]byte, plen+recTrailerLen)
		if _, err := v.f.ReadAt(body, off+recHeaderSize); err != nil {
			break
		}
		payload := body[:plen]
		wantCRC := binary.BigEndian.Uint32(body[plen:])
		crc := crc32.NewIEEE()
		crc.Write(hdr)     //nolint:errcheck,gosec // hash writes cannot fail
		crc.Write(payload) //nolint:errcheck,gosec // hash writes cannot fail
		if crc.Sum32() != wantCRC {
			break
		}
		if streamID == metaStreamID {
			v.applyMeta(payload)
		} else if s := v.byID[streamID]; s != nil {
			s.offsets[index] = off
			if index >= s.next {
				s.next = index + 1
			}
		}
		off += total
	}
	// Drop any torn tail so future appends start clean.
	if off < fileSize {
		if err := v.f.Truncate(off); err != nil {
			return fmt.Errorf("logvol recover truncate: %w", err)
		}
	}
	v.size = off
	// Re-apply chop floors (chop meta records may precede data records of
	// lower index written earlier; drop anything below minLive).
	for _, s := range v.byID {
		for idx := range s.offsets {
			if idx < s.minLive {
				delete(s.offsets, idx)
			}
		}
		if s.next < s.minLive {
			s.next = s.minLive
		}
	}
	return nil
}

func (v *Volume) applyMeta(payload []byte) {
	if len(payload) < 1 {
		return
	}
	switch payload[0] {
	case metaCreate:
		if len(payload) < 5 {
			return
		}
		id := binary.BigEndian.Uint32(payload[1:])
		name := string(payload[5:])
		s := &Stream{vol: v, id: id, name: name, next: 1, minLive: 1,
			offsets: make(map[Index]int64)}
		v.streams[name] = s
		v.byID[id] = s
		if id >= v.nextID {
			v.nextID = id + 1
		}
	case metaChop:
		if len(payload) < 13 {
			return
		}
		id := binary.BigEndian.Uint32(payload[1:])
		upTo := Index(binary.BigEndian.Uint64(payload[5:]))
		if s := v.byID[id]; s != nil && upTo+1 > s.minLive {
			s.minLive = upTo + 1
		}
	}
}

// Stream returns the named stream, creating it if needed.
func (v *Volume) Stream(name string) (*Stream, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, ErrClosed
	}
	if s, ok := v.streams[name]; ok {
		return s, nil
	}
	id := v.nextID
	v.nextID++
	payload := make([]byte, 0, 5+len(name))
	payload = append(payload, metaCreate)
	payload = binary.BigEndian.AppendUint32(payload, id)
	payload = append(payload, name...)
	if _, err := v.appendLocked(metaStreamID, 0, payload); err != nil {
		return nil, err
	}
	s := &Stream{vol: v, id: id, name: name, next: 1, minLive: 1,
		offsets: make(map[Index]int64)}
	v.streams[name] = s
	v.byID[id] = s
	return s, nil
}

// LookupStream returns the named stream if it already exists.
func (v *Volume) LookupStream(name string) (*Stream, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, ErrClosed
	}
	s, ok := v.streams[name]
	if !ok {
		return nil, ErrNoSuchStream
	}
	return s, nil
}

// StreamNames returns the names of all streams, sorted.
func (v *Volume) StreamNames() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.streams))
	for name := range v.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// appendLocked writes one record; caller holds v.mu.
func (v *Volume) appendLocked(streamID uint32, index Index, payload []byte) (int64, error) {
	rec := make([]byte, 0, recHeaderSize+len(payload)+recTrailerLen)
	rec = binary.BigEndian.AppendUint32(rec, streamID)
	rec = binary.BigEndian.AppendUint64(rec, uint64(index))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	crc := crc32.NewIEEE()
	crc.Write(rec) //nolint:errcheck,gosec // hash writes cannot fail
	rec = binary.BigEndian.AppendUint32(rec, crc.Sum32())
	off := v.size
	if _, err := v.f.WriteAt(rec, off); err != nil {
		return 0, fmt.Errorf("logvol append: %w", err)
	}
	v.size += int64(len(rec))
	v.bytesAppended += int64(len(rec))
	tAppendBytes.Add(int64(len(rec)))
	tAppends.Inc()
	if v.policy == SyncAlways {
		if err := v.f.Sync(); err != nil {
			return 0, fmt.Errorf("logvol sync: %w", err)
		}
		v.syncs++
		tFsyncs.Inc()
	}
	return off, nil
}

// Sync forces all appended records to stable storage (group commit).
func (v *Volume) Sync() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if err := v.f.Sync(); err != nil {
		return fmt.Errorf("logvol sync: %w", err)
	}
	v.syncs++
	tFsyncs.Inc()
	return nil
}

// BytesAppended reports the total bytes written since open, for the PFS
// data-volume comparisons of section 5.1.2.
func (v *Volume) BytesAppended() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bytesAppended
}

// Syncs reports the number of fsync calls issued since open.
func (v *Volume) Syncs() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.syncs
}

// Ping reports whether the volume is open and serviceable; admin health
// checks call it.
func (v *Volume) Ping() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	return nil
}

// Size reports the current file size in bytes.
func (v *Volume) Size() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.size
}

// Close syncs and closes the volume.
func (v *Volume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	if err := v.f.Sync(); err != nil {
		v.f.Close() //nolint:errcheck,gosec // already failing
		return fmt.Errorf("logvol close sync: %w", err)
	}
	return v.f.Close()
}

// Append adds a record to the stream and returns its index.
func (s *Stream) Append(payload []byte) (Index, error) {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return NilIndex, ErrClosed
	}
	idx := s.next
	off, err := v.appendLocked(s.id, idx, payload)
	if err != nil {
		return NilIndex, err
	}
	s.next++
	s.offsets[idx] = off
	return idx, nil
}

// Read returns the payload of the record at idx.
func (s *Stream) Read(idx Index) ([]byte, error) {
	v := s.vol
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil, ErrClosed
	}
	if idx < s.minLive {
		v.mu.Unlock()
		return nil, fmt.Errorf("%w: stream %q index %d", ErrChopped, s.name, idx)
	}
	off, ok := s.offsets[idx]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: stream %q index %d", ErrNotFound, s.name, idx)
	}
	return s.readAt(off, idx)
}

// readAt reads and validates the record at off (no lock held; the file
// region is immutable once written).
func (s *Stream) readAt(off int64, wantIdx Index) ([]byte, error) {
	hdr := make([]byte, recHeaderSize)
	if _, err := s.vol.f.ReadAt(hdr, off); err != nil {
		return nil, fmt.Errorf("logvol read header: %w", err)
	}
	streamID := binary.BigEndian.Uint32(hdr)
	index := Index(binary.BigEndian.Uint64(hdr[4:]))
	plen := int(binary.BigEndian.Uint32(hdr[12:]))
	if streamID != s.id || index != wantIdx {
		return nil, fmt.Errorf("%w: stream %q index %d points at (%d,%d)",
			ErrCorrupt, s.name, wantIdx, streamID, index)
	}
	body := make([]byte, plen+recTrailerLen)
	if _, err := s.vol.f.ReadAt(body, off+recHeaderSize); err != nil {
		return nil, fmt.Errorf("logvol read body: %w", err)
	}
	payload := body[:plen]
	wantCRC := binary.BigEndian.Uint32(body[plen:])
	crc := crc32.NewIEEE()
	crc.Write(hdr)     //nolint:errcheck,gosec // hash writes cannot fail
	crc.Write(payload) //nolint:errcheck,gosec // hash writes cannot fail
	if crc.Sum32() != wantCRC {
		return nil, fmt.Errorf("%w: stream %q index %d bad crc", ErrCorrupt, s.name, wantIdx)
	}
	return payload, nil
}

// Chop discards every record of the stream with index <= upTo. Reads of
// chopped records return ErrChopped. The space is reclaimed by Compact.
func (s *Stream) Chop(upTo Index) error {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if upTo+1 <= s.minLive {
		return nil
	}
	payload := make([]byte, 0, 13)
	payload = append(payload, metaChop)
	payload = binary.BigEndian.AppendUint32(payload, s.id)
	payload = binary.BigEndian.AppendUint64(payload, uint64(upTo))
	if _, err := v.appendLocked(metaStreamID, 0, payload); err != nil {
		return err
	}
	s.minLive = upTo + 1
	if s.next < s.minLive {
		s.next = s.minLive
	}
	for idx := range s.offsets {
		if idx < s.minLive {
			delete(s.offsets, idx)
		}
	}
	return nil
}

// LastIndex returns the highest assigned index, or NilIndex if the stream
// has no live records.
func (s *Stream) LastIndex() Index {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if s.next <= s.minLive {
		return NilIndex
	}
	return s.next - 1
}

// FirstLiveIndex returns the lowest unchopped index, or NilIndex if none.
func (s *Stream) FirstLiveIndex() Index {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if s.next <= s.minLive {
		return NilIndex
	}
	return s.minLive
}

// Len reports the number of live records.
func (s *Stream) Len() int {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(s.offsets)
}

// Name reports the stream's name.
func (s *Stream) Name() string { return s.name }

// ForEach calls fn for every live record in index order; fn returning
// false stops the scan early.
func (s *Stream) ForEach(fn func(idx Index, payload []byte) bool) error {
	v := s.vol
	v.mu.Lock()
	lo, hi := s.minLive, s.next
	v.mu.Unlock()
	for idx := lo; idx < hi; idx++ {
		payload, err := s.Read(idx)
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrChopped) {
			continue
		}
		if err != nil {
			return err
		}
		if !fn(idx, payload) {
			return nil
		}
	}
	return nil
}

// Compact rewrites the volume file keeping only live records, reclaiming
// space from chopped prefixes. It blocks all other operations while
// running.
func (v *Volume) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	tmpPath := v.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("logvol compact: %w", err)
	}
	defer os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup

	old := v.f
	oldSize, oldBytes, oldSyncs := v.size, v.bytesAppended, v.syncs
	v.f, v.size = tmp, 0

	restore := func() {
		v.f, v.size, v.bytesAppended, v.syncs = old, oldSize, oldBytes, oldSyncs
		tmp.Close() //nolint:errcheck,gosec // best-effort cleanup
	}

	// Rewrite stream creation records and live data.
	type liveRec struct {
		s   *Stream
		idx Index
		off int64
	}
	var live []liveRec
	names := make([]string, 0, len(v.streams))
	for name := range v.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := v.streams[name]
		payload := make([]byte, 0, 5+len(name))
		payload = append(payload, metaCreate)
		payload = binary.BigEndian.AppendUint32(payload, s.id)
		payload = append(payload, name...)
		if _, err := v.appendLocked(metaStreamID, 0, payload); err != nil {
			restore()
			return err
		}
		if s.minLive > 1 {
			chop := make([]byte, 0, 13)
			chop = append(chop, metaChop)
			chop = binary.BigEndian.AppendUint32(chop, s.id)
			chop = binary.BigEndian.AppendUint64(chop, uint64(s.minLive-1))
			if _, err := v.appendLocked(metaStreamID, 0, chop); err != nil {
				restore()
				return err
			}
		}
		for idx, off := range s.offsets {
			live = append(live, liveRec{s: s, idx: idx, off: off})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].off < live[j].off })
	newOffsets := make(map[*Stream]map[Index]int64, len(v.streams))
	for _, lr := range live {
		// Read from the old file, write to the new.
		v.f = old
		payload, err := lr.s.readAt(lr.off, lr.idx)
		v.f = tmp
		if err != nil {
			restore()
			return err
		}
		newOff, err := v.appendLocked(lr.s.id, lr.idx, payload)
		if err != nil {
			restore()
			return err
		}
		if newOffsets[lr.s] == nil {
			newOffsets[lr.s] = make(map[Index]int64)
		}
		newOffsets[lr.s][lr.idx] = newOff
	}
	if err := tmp.Sync(); err != nil {
		restore()
		return fmt.Errorf("logvol compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, v.path); err != nil {
		restore()
		return fmt.Errorf("logvol compact rename: %w", err)
	}
	old.Close() //nolint:errcheck,gosec // replaced file
	for s, m := range newOffsets {
		s.offsets = m
	}
	for _, s := range v.streams {
		if newOffsets[s] == nil {
			s.offsets = make(map[Index]int64)
		}
	}
	return nil
}

var _ io.Closer = (*Volume)(nil)
