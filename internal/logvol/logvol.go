// Package logvol implements the Log Volume the paper's Persistent
// Filtering Subsystem is built on (section 4.2, citing the logger-based
// recovery subsystem of Bagchi et al.): multiple append-only log streams
// multiplexed onto a single file, with efficient retrieval of records by
// per-stream index number and a "chop" operation that discards a prefix of
// a stream.
//
// The volume is crash-consistent: records carry CRCs and recovery scans the
// file, dropping a torn tail. Durability is controlled by a SyncPolicy plus
// an explicit Sync for group commit.
package logvol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Volume instruments (process-wide; see internal/telemetry).
var (
	tAppendBytes = telemetry.Default().Counter("gryphon_logvol_append_bytes_total",
		"Bytes appended to log volumes (records plus framing).")
	tAppends = telemetry.Default().Counter("gryphon_logvol_appends_total",
		"Records appended to log volumes.")
	tFsyncs = telemetry.Default().Counter("gryphon_logvol_fsyncs_total",
		"fsync calls issued by log volumes.")
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy uint8

// Sync policies.
const (
	// SyncExplicit leaves durability to explicit Sync calls (group
	// commit). This models the paper's "sync every N events" regime and
	// the battery-backed write cache of section 5.2.
	SyncExplicit SyncPolicy = iota + 1
	// SyncAlways fsyncs after every append; models per-write forced
	// logging.
	SyncAlways
	// SyncGroup makes every append durable before it is acknowledged, but
	// amortizes the fsync: a per-volume Committer batches concurrent
	// appends and issues one fsync for the whole batch (the group-commit
	// regime of the paper's logger substrate).
	SyncGroup
)

// Index identifies a record within one stream. Indexes are assigned
// monotonically starting at 1; 0 is the nil index ("no record"), which the
// PFS uses as the end-of-chain backpointer.
type Index uint64

// NilIndex is the "no record" sentinel.
const NilIndex Index = 0

// Errors the volume reports.
var (
	ErrNotFound     = errors.New("logvol: record not found")
	ErrChopped      = errors.New("logvol: record chopped")
	ErrClosed       = errors.New("logvol: volume closed")
	ErrCorrupt      = errors.New("logvol: corrupt record")
	ErrNoSuchStream = errors.New("logvol: no such stream")
)

const (
	recHeaderSize = 4 + 8 + 4 // streamID u32, index u64, payload len u32
	recTrailerLen = 4         // crc32
	metaStreamID  = 0
	metaCreate    = byte(1)
	metaChop      = byte(2)
)

// Options configures a volume.
type Options struct {
	// Sync selects the durability policy; zero value means SyncExplicit.
	Sync SyncPolicy
	// GroupMaxBytes caps the payload bytes batched into one group commit
	// (SyncGroup only); zero means 1 MiB.
	GroupMaxBytes int
	// GroupMaxDelay, when nonzero, makes the commit loop linger up to
	// this long after draining an empty-queue batch so concurrent
	// appenders can join it (SyncGroup only). Zero disables lingering;
	// the fsync duration itself is the natural batching window.
	GroupMaxDelay time.Duration
}

// Volume is a single-file log volume. All methods are safe for concurrent
// use.
type Volume struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	size    int64
	policy  SyncPolicy
	closed  bool
	streams map[string]*Stream
	byID    map[uint32]*Stream
	nextID  uint32

	// Group-commit state. seq counts completed writes (under mu); the
	// gate coalesces fsyncs so concurrent Sync callers — and the
	// committer's batches — share one. gen counts file swaps (Compact)
	// so an fsync racing a swap knows its captured descriptor is stale.
	seq       int64
	gen       int
	gate      Gate
	committer *Committer

	// Scratch buffers reused across appends/batches (under mu or owned
	// by the commit loop respectively).
	recBuf   []byte
	batchBuf []byte

	// stats for the paper's PFS-vs-event-log data-volume comparison.
	bytesAppended int64
	syncs         int64

	// testSyncHook, when set, runs inside every file fsync (tests use it
	// to slow or block flushes deterministically).
	testSyncHook func()
}

// Stream is one log stream within a volume.
type Stream struct {
	vol     *Volume
	id      uint32
	name    string
	next    Index // next index to assign
	minLive Index // all indexes < minLive are chopped
	offsets map[Index]int64
}

// Open opens or creates the volume at path and recovers its streams.
func Open(path string, opts Options) (*Volume, error) {
	if opts.Sync == 0 {
		opts.Sync = SyncExplicit
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logvol open: %w", err)
	}
	v := &Volume{
		f:       f,
		path:    path,
		policy:  opts.Sync,
		streams: make(map[string]*Stream),
		byID:    make(map[uint32]*Stream),
		nextID:  1,
	}
	if err := v.recover(); err != nil {
		f.Close() //nolint:errcheck,gosec // best-effort cleanup on failed open
		return nil, err
	}
	if opts.Sync == SyncGroup {
		v.committer = newCommitter(v, opts.GroupMaxBytes, opts.GroupMaxDelay)
	}
	return v, nil
}

// Policy reports the volume's durability policy.
func (v *Volume) Policy() SyncPolicy { return v.policy }

// recover scans the file rebuilding stream tables, stopping at the first
// torn or corrupt record (which it truncates away).
func (v *Volume) recover() error {
	info, err := v.f.Stat()
	if err != nil {
		return fmt.Errorf("logvol recover: %w", err)
	}
	fileSize := info.Size()
	var off int64
	hdr := make([]byte, recHeaderSize)
	for off+recHeaderSize+recTrailerLen <= fileSize {
		if _, err := v.f.ReadAt(hdr, off); err != nil {
			break
		}
		streamID := binary.BigEndian.Uint32(hdr)
		index := Index(binary.BigEndian.Uint64(hdr[4:]))
		plen := int64(binary.BigEndian.Uint32(hdr[12:]))
		total := recHeaderSize + plen + recTrailerLen
		if off+total > fileSize || plen > 1<<30 {
			break
		}
		body := make([]byte, plen+recTrailerLen)
		if _, err := v.f.ReadAt(body, off+recHeaderSize); err != nil {
			break
		}
		payload := body[:plen]
		wantCRC := binary.BigEndian.Uint32(body[plen:])
		crc := crc32.NewIEEE()
		crc.Write(hdr)     //nolint:errcheck,gosec // hash writes cannot fail
		crc.Write(payload) //nolint:errcheck,gosec // hash writes cannot fail
		if crc.Sum32() != wantCRC {
			break
		}
		if streamID == metaStreamID {
			v.applyMeta(payload)
		} else if s := v.byID[streamID]; s != nil {
			s.offsets[index] = off
			if index >= s.next {
				s.next = index + 1
			}
		}
		off += total
	}
	// Drop any torn tail so future appends start clean.
	if off < fileSize {
		if err := v.f.Truncate(off); err != nil {
			return fmt.Errorf("logvol recover truncate: %w", err)
		}
	}
	v.size = off
	// Re-apply chop floors (chop meta records may precede data records of
	// lower index written earlier; drop anything below minLive).
	for _, s := range v.byID {
		for idx := range s.offsets {
			if idx < s.minLive {
				delete(s.offsets, idx)
			}
		}
		if s.next < s.minLive {
			s.next = s.minLive
		}
	}
	return nil
}

func (v *Volume) applyMeta(payload []byte) {
	if len(payload) < 1 {
		return
	}
	switch payload[0] {
	case metaCreate:
		if len(payload) < 5 {
			return
		}
		id := binary.BigEndian.Uint32(payload[1:])
		name := string(payload[5:])
		s := &Stream{vol: v, id: id, name: name, next: 1, minLive: 1,
			offsets: make(map[Index]int64)}
		v.streams[name] = s
		v.byID[id] = s
		if id >= v.nextID {
			v.nextID = id + 1
		}
	case metaChop:
		if len(payload) < 13 {
			return
		}
		id := binary.BigEndian.Uint32(payload[1:])
		upTo := Index(binary.BigEndian.Uint64(payload[5:]))
		if s := v.byID[id]; s != nil && upTo+1 > s.minLive {
			s.minLive = upTo + 1
		}
	}
}

// Stream returns the named stream, creating it if needed.
func (v *Volume) Stream(name string) (*Stream, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, ErrClosed
	}
	if s, ok := v.streams[name]; ok {
		return s, nil
	}
	id := v.nextID
	v.nextID++
	payload := make([]byte, 0, 5+len(name))
	payload = append(payload, metaCreate)
	payload = binary.BigEndian.AppendUint32(payload, id)
	payload = append(payload, name...)
	if _, err := v.appendLocked(metaStreamID, 0, payload); err != nil {
		return nil, err
	}
	s := &Stream{vol: v, id: id, name: name, next: 1, minLive: 1,
		offsets: make(map[Index]int64)}
	v.streams[name] = s
	v.byID[id] = s
	return s, nil
}

// LookupStream returns the named stream if it already exists.
func (v *Volume) LookupStream(name string) (*Stream, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, ErrClosed
	}
	s, ok := v.streams[name]
	if !ok {
		return nil, ErrNoSuchStream
	}
	return s, nil
}

// StreamNames returns the names of all streams, sorted.
func (v *Volume) StreamNames() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.streams))
	for name := range v.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// maxRetainedBuf caps the scratch buffers kept across appends/batches.
const maxRetainedBuf = 1 << 20

// appendRecord encodes one framed record (header, payload, CRC) onto buf.
func appendRecord(buf []byte, streamID uint32, index Index, payload []byte) []byte {
	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, streamID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(index))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.NewIEEE()
	crc.Write(buf[start:]) //nolint:errcheck,gosec // hash writes cannot fail
	return binary.BigEndian.AppendUint32(buf, crc.Sum32())
}

func wrapErr(op string, err error) error {
	return fmt.Errorf("%s: %w", op, err)
}

// appendLocked writes one record; caller holds v.mu.
func (v *Volume) appendLocked(streamID uint32, index Index, payload []byte) (int64, error) {
	rec := appendRecord(v.recBuf[:0], streamID, index, payload)
	off := v.size
	if _, err := v.f.WriteAt(rec, off); err != nil {
		return 0, wrapErr("logvol append", err)
	}
	v.size += int64(len(rec))
	v.bytesAppended += int64(len(rec))
	v.seq++
	tAppendBytes.Add(int64(len(rec)))
	tAppends.Inc()
	if cap(rec) <= maxRetainedBuf {
		v.recBuf = rec[:0]
	}
	if v.policy == SyncAlways {
		if err := v.syncFileLocked(); err != nil {
			return 0, wrapErr("logvol sync", err)
		}
		v.gate.Cover(v.seq)
	}
	return off, nil
}

// syncFileLocked fsyncs the current file; caller holds v.mu.
func (v *Volume) syncFileLocked() error {
	if hook := v.testSyncHook; hook != nil {
		hook()
	}
	if err := v.f.Sync(); err != nil {
		return err
	}
	v.syncs++
	tFsyncs.Inc()
	return nil
}

// curSeq reports the current write sequence (gate "top" callback).
func (v *Volume) curSeq() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.seq
}

// fsyncFile performs one fsync of the volume file for the gate. The
// descriptor and generation are captured under v.mu but the fsync itself
// runs unlocked so appends keep flowing while the disk flushes. If the file
// was swapped mid-flight (Compact), the swap already synced the replacement
// file, so a stale-generation flush error is not a durability failure.
func (v *Volume) fsyncFile() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	f, gen, hook := v.f, v.gen, v.testSyncHook
	v.mu.Unlock()

	if hook != nil {
		hook()
	}
	err := f.Sync()

	v.mu.Lock()
	defer v.mu.Unlock()
	if err != nil {
		if v.closed || v.gen != gen {
			// The file was closed or replaced under us; the data either
			// reached disk via the close/compact sync or the volume is
			// gone entirely.
			if v.closed {
				return ErrClosed
			}
			return nil
		}
		return err
	}
	v.syncs++
	tFsyncs.Inc()
	return nil
}

// Sync forces all appended records to stable storage. Concurrent callers
// share fsyncs through the volume gate (group commit): a caller whose
// writes are already covered by an in-flight or completed flush returns
// without touching the disk.
func (v *Volume) Sync() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	if c := v.committer; c != nil {
		// Barrier through the commit queue so appends enqueued before
		// this call are covered too.
		v.mu.Unlock()
		_, err := c.enqueue(nil, nil).Result()
		if err != nil {
			return wrapErr("logvol sync", err)
		}
		return nil
	}
	seq := v.seq
	v.mu.Unlock()
	issued, err := v.gate.Sync(seq, v.curSeq, v.fsyncFile)
	if err != nil {
		return wrapErr("logvol sync", err)
	}
	if !issued {
		tSyncsAmortized.Inc()
	}
	return nil
}

// BytesAppended reports the total bytes written since open, for the PFS
// data-volume comparisons of section 5.1.2.
func (v *Volume) BytesAppended() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.bytesAppended
}

// Syncs reports the number of fsync calls issued since open.
func (v *Volume) Syncs() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.syncs
}

// Ping reports whether the volume is open and serviceable; admin health
// checks call it.
func (v *Volume) Ping() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	return nil
}

// Size reports the current file size in bytes.
func (v *Volume) Size() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.size
}

// Close flushes any queued group commits, syncs, and closes the volume.
func (v *Volume) Close() error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil
	}
	c := v.committer
	v.committer = nil
	v.mu.Unlock()
	if c != nil {
		// Drain the commit queue before marking closed so every queued
		// append either lands durably or resolves with its write error.
		c.shutdown()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	if err := v.f.Sync(); err != nil {
		v.f.Close() //nolint:errcheck,gosec // already failing
		return fmt.Errorf("logvol close sync: %w", err)
	}
	return v.f.Close()
}

// Append adds a record to the stream and returns its index. On a SyncGroup
// volume the call is durable on return: it rides the group-commit batch and
// blocks until the covering fsync completes.
func (s *Stream) Append(payload []byte) (Index, error) {
	v := s.vol
	v.mu.Lock()
	if c := v.committer; c != nil && !v.closed {
		v.mu.Unlock()
		return c.enqueue(s, payload).Result()
	}
	defer v.mu.Unlock()
	if v.closed {
		return NilIndex, ErrClosed
	}
	idx := s.next
	off, err := v.appendLocked(s.id, idx, payload)
	if err != nil {
		return NilIndex, err
	}
	s.next++
	s.offsets[idx] = off
	return idx, nil
}

// AppendAsync adds a record without blocking on durability, returning a
// Ticket that resolves once the record is on stable storage (its index) or
// failed (error). On a SyncGroup volume the append joins the group-commit
// batch; on other policies it degrades to a synchronous Append and returns
// an already-resolved ticket. The payload must not be modified until the
// ticket resolves.
func (s *Stream) AppendAsync(payload []byte) *Ticket {
	v := s.vol
	v.mu.Lock()
	if c := v.committer; c != nil && !v.closed {
		v.mu.Unlock()
		return c.enqueue(s, payload)
	}
	v.mu.Unlock()
	idx, err := s.Append(payload)
	return completedTicket(idx, err)
}

// Read returns the payload of the record at idx.
func (s *Stream) Read(idx Index) ([]byte, error) {
	return s.ReadInto(idx, nil)
}

// ReadInto is Read with a caller-supplied scratch buffer: the returned
// payload aliases buf (grown as needed), so hot read loops can reuse one
// buffer instead of allocating header+body per record. The payload is only
// valid until the next use of buf; callers that retain it must copy.
func (s *Stream) ReadInto(idx Index, buf []byte) ([]byte, error) {
	v := s.vol
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil, ErrClosed
	}
	if idx < s.minLive {
		v.mu.Unlock()
		return nil, fmt.Errorf("%w: stream %q index %d", ErrChopped, s.name, idx)
	}
	off, ok := s.offsets[idx]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: stream %q index %d", ErrNotFound, s.name, idx)
	}
	return s.readAtInto(off, idx, buf)
}

// readAtInto reads and validates the record at off into buf (no lock held;
// the file region is immutable once written). The returned payload aliases
// buf when it fits.
func (s *Stream) readAtInto(off int64, wantIdx Index, buf []byte) ([]byte, error) {
	if cap(buf) < recHeaderSize {
		buf = make([]byte, recHeaderSize, recHeaderSize+recTrailerLen+512)
	}
	hdr := buf[:recHeaderSize]
	if _, err := s.vol.f.ReadAt(hdr, off); err != nil {
		return nil, fmt.Errorf("logvol read header: %w", err)
	}
	streamID := binary.BigEndian.Uint32(hdr)
	index := Index(binary.BigEndian.Uint64(hdr[4:]))
	plen := int(binary.BigEndian.Uint32(hdr[12:]))
	if streamID != s.id || index != wantIdx {
		return nil, fmt.Errorf("%w: stream %q index %d points at (%d,%d)",
			ErrCorrupt, s.name, wantIdx, streamID, index)
	}
	total := recHeaderSize + plen + recTrailerLen
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		buf = grown
	}
	buf = buf[:total]
	body := buf[recHeaderSize:]
	if _, err := s.vol.f.ReadAt(body, off+recHeaderSize); err != nil {
		return nil, fmt.Errorf("logvol read body: %w", err)
	}
	payload := body[:plen]
	wantCRC := binary.BigEndian.Uint32(body[plen:])
	if crc32.ChecksumIEEE(buf[:recHeaderSize+plen]) != wantCRC {
		return nil, fmt.Errorf("%w: stream %q index %d bad crc", ErrCorrupt, s.name, wantIdx)
	}
	return payload, nil
}

// ReadRange performs one vectored read of the file region starting at the
// record with index from, then walks the multiplexed records it contains in
// file order, invoking visit for every valid record of THIS stream with
// index >= from. Records of other streams (and the meta stream) inside the
// window are skipped. visit returning false stops the scan; payloads alias
// buf and are only valid inside the callback.
//
// The scan is opportunistic: it stops silently at the first record that
// does not fit the window or fails validation (a window cut mid-record, a
// torn tail). Callers needing a specific record must fall back to ReadInto,
// which reports real corruption as an error. Catchup batch reads use this
// to fill a decode cache with one syscall instead of one read per record.
func (s *Stream) ReadRange(from Index, buf []byte, visit func(idx Index, payload []byte) bool) error {
	v := s.vol
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	if from < s.minLive {
		v.mu.Unlock()
		return fmt.Errorf("%w: stream %q index %d", ErrChopped, s.name, from)
	}
	off, ok := s.offsets[from]
	end := v.size
	id := s.id
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: stream %q index %d", ErrNotFound, s.name, from)
	}
	if avail := end - off; int64(len(buf)) > avail {
		buf = buf[:avail]
	}
	n, err := s.vol.f.ReadAt(buf, off)
	if n <= 0 && err != nil {
		return fmt.Errorf("logvol read range: %w", err)
	}
	buf = buf[:n]
	for pos := 0; pos+recHeaderSize+recTrailerLen <= len(buf); {
		streamID := binary.BigEndian.Uint32(buf[pos:])
		index := Index(binary.BigEndian.Uint64(buf[pos+4:]))
		plen := int(binary.BigEndian.Uint32(buf[pos+12:]))
		total := recHeaderSize + plen + recTrailerLen
		if plen < 0 || pos+total > len(buf) {
			break // record extends past the window (or torn tail)
		}
		payload := buf[pos+recHeaderSize : pos+recHeaderSize+plen]
		wantCRC := binary.BigEndian.Uint32(buf[pos+recHeaderSize+plen:])
		if crc32.ChecksumIEEE(buf[pos:pos+recHeaderSize+plen]) != wantCRC {
			break // torn/corrupt record: stop the opportunistic scan
		}
		if streamID == id && index >= from {
			if !visit(index, payload) {
				return nil
			}
		}
		pos += total
	}
	return nil
}

// Chop discards every record of the stream with index <= upTo. Reads of
// chopped records return ErrChopped. The space is reclaimed by Compact.
func (s *Stream) Chop(upTo Index) error {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	if upTo+1 <= s.minLive {
		return nil
	}
	payload := make([]byte, 0, 13)
	payload = append(payload, metaChop)
	payload = binary.BigEndian.AppendUint32(payload, s.id)
	payload = binary.BigEndian.AppendUint64(payload, uint64(upTo))
	if _, err := v.appendLocked(metaStreamID, 0, payload); err != nil {
		return err
	}
	s.minLive = upTo + 1
	if s.next < s.minLive {
		s.next = s.minLive
	}
	for idx := range s.offsets {
		if idx < s.minLive {
			delete(s.offsets, idx)
		}
	}
	return nil
}

// LastIndex returns the highest assigned index, or NilIndex if the stream
// has no live records.
func (s *Stream) LastIndex() Index {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if s.next <= s.minLive {
		return NilIndex
	}
	return s.next - 1
}

// FirstLiveIndex returns the lowest unchopped index, or NilIndex if none.
func (s *Stream) FirstLiveIndex() Index {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	if s.next <= s.minLive {
		return NilIndex
	}
	return s.minLive
}

// Len reports the number of live records.
func (s *Stream) Len() int {
	v := s.vol
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(s.offsets)
}

// Name reports the stream's name.
func (s *Stream) Name() string { return s.name }

// ForEach calls fn for every live record in index order; fn returning
// false stops the scan early.
func (s *Stream) ForEach(fn func(idx Index, payload []byte) bool) error {
	v := s.vol
	v.mu.Lock()
	lo, hi := s.minLive, s.next
	v.mu.Unlock()
	for idx := lo; idx < hi; idx++ {
		payload, err := s.Read(idx)
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrChopped) {
			continue
		}
		if err != nil {
			return err
		}
		if !fn(idx, payload) {
			return nil
		}
	}
	return nil
}

// Compact rewrites the volume file keeping only live records, reclaiming
// space from chopped prefixes. It blocks all other operations while
// running.
func (v *Volume) Compact() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrClosed
	}
	tmpPath := v.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("logvol compact: %w", err)
	}
	defer os.Remove(tmpPath) //nolint:errcheck // best-effort cleanup

	old := v.f
	oldSize, oldBytes, oldSyncs := v.size, v.bytesAppended, v.syncs
	v.f, v.size = tmp, 0

	restore := func() {
		v.f, v.size, v.bytesAppended, v.syncs = old, oldSize, oldBytes, oldSyncs
		tmp.Close() //nolint:errcheck,gosec // best-effort cleanup
	}

	// Rewrite stream creation records and live data.
	type liveRec struct {
		s   *Stream
		idx Index
		off int64
	}
	var live []liveRec
	names := make([]string, 0, len(v.streams))
	for name := range v.streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := v.streams[name]
		payload := make([]byte, 0, 5+len(name))
		payload = append(payload, metaCreate)
		payload = binary.BigEndian.AppendUint32(payload, s.id)
		payload = append(payload, name...)
		if _, err := v.appendLocked(metaStreamID, 0, payload); err != nil {
			restore()
			return err
		}
		if s.minLive > 1 {
			chop := make([]byte, 0, 13)
			chop = append(chop, metaChop)
			chop = binary.BigEndian.AppendUint32(chop, s.id)
			chop = binary.BigEndian.AppendUint64(chop, uint64(s.minLive-1))
			if _, err := v.appendLocked(metaStreamID, 0, chop); err != nil {
				restore()
				return err
			}
		}
		for idx, off := range s.offsets {
			live = append(live, liveRec{s: s, idx: idx, off: off})
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].off < live[j].off })
	newOffsets := make(map[*Stream]map[Index]int64, len(v.streams))
	for _, lr := range live {
		// Read from the old file, write to the new.
		v.f = old
		payload, err := lr.s.readAtInto(lr.off, lr.idx, nil)
		v.f = tmp
		if err != nil {
			restore()
			return err
		}
		newOff, err := v.appendLocked(lr.s.id, lr.idx, payload)
		if err != nil {
			restore()
			return err
		}
		if newOffsets[lr.s] == nil {
			newOffsets[lr.s] = make(map[Index]int64)
		}
		newOffsets[lr.s][lr.idx] = newOff
	}
	if err := tmp.Sync(); err != nil {
		restore()
		return fmt.Errorf("logvol compact sync: %w", err)
	}
	if err := os.Rename(tmpPath, v.path); err != nil {
		restore()
		return fmt.Errorf("logvol compact rename: %w", err)
	}
	old.Close() //nolint:errcheck,gosec // replaced file
	// The replacement file was fully synced above: bump the generation so
	// an in-flight gate fsync of the old descriptor knows it is stale, and
	// mark everything written so far as covered.
	v.gen++
	v.seq++
	v.gate.Cover(v.seq)
	for s, m := range newOffsets {
		s.offsets = m
	}
	for _, s := range v.streams {
		if newOffsets[s] == nil {
			s.offsets = make(map[Index]int64)
		}
	}
	return nil
}

var _ io.Closer = (*Volume)(nil)
