package logvol

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Group-commit instruments (process-wide; see internal/telemetry).
var (
	tCommitBatch = telemetry.Default().Histogram("gryphon_logvol_commit_batch_size",
		"Records written per group-commit batch (one fsync each).", telemetry.SizeBuckets)
	tCommitWait = telemetry.Default().DurationHistogram("gryphon_logvol_commit_wait_seconds",
		"Time from append enqueue to durable completion under group commit.",
		telemetry.FastBuckets)
	tGroupCommits = telemetry.Default().Counter("gryphon_logvol_group_commits_total",
		"Group-commit batches flushed.")
	tSyncsAmortized = telemetry.Default().Counter("gryphon_logvol_fsyncs_amortized_total",
		"Sync requests satisfied by an fsync issued on behalf of another request.")
)

// Gate coalesces fsync requests over one monotonically written file:
// writers obtain a sequence number per write, and Sync guarantees an fsync
// covering that sequence has completed, letting concurrent callers share a
// single fsync (classic group commit). The volume Committer, explicit
// Volume.Sync callers, and the metastore WAL all ride the same gate logic.
//
// The zero Gate is ready to use.
type Gate struct {
	mu      sync.Mutex
	flushed int64         // highest sequence covered by a completed sync
	busy    bool          // a sync is in flight
	done    chan struct{} // closed when the in-flight sync finishes
}

// Sync ensures an fsync covering seq has completed. top reports the current
// written sequence (called without the gate lock, just before the fsync, so
// the flush covers everything written up to that instant); fsync performs
// the actual synchronization. The returned bool reports whether this call
// issued the fsync itself — false means it was amortized onto another
// caller's flush. Callers whose sync fails observe the error; waiters simply
// retry leadership, so one failed leader does not poison the gate.
func (g *Gate) Sync(seq int64, top func() int64, fsync func() error) (bool, error) {
	g.mu.Lock()
	for {
		if g.flushed >= seq {
			g.mu.Unlock()
			return false, nil
		}
		if !g.busy {
			break
		}
		ch := g.done
		g.mu.Unlock()
		<-ch
		g.mu.Lock()
	}
	g.busy = true
	g.done = make(chan struct{})
	g.mu.Unlock()

	target := top()
	err := fsync()

	g.mu.Lock()
	if err == nil && target > g.flushed {
		g.flushed = target
	}
	close(g.done)
	g.busy = false
	g.mu.Unlock()
	return true, err
}

// Cover marks sequences up to seq as flushed without an fsync; callers use
// it after a synchronization that happened outside the gate (a SyncAlways
// append, a compaction that rewrote and synced the whole file).
func (g *Gate) Cover(seq int64) {
	g.mu.Lock()
	if seq > g.flushed {
		g.flushed = seq
	}
	g.mu.Unlock()
}

// Ticket is the completion handle of one asynchronous append (or sync
// barrier): it resolves once the record is on stable storage — the covering
// fsync has returned — or with the append's error.
type Ticket struct {
	done chan struct{}
	enq  time.Time

	mu        sync.Mutex
	idx       Index
	err       error
	completed bool
	cb        func(Index, error)
}

// Done returns a channel closed when the ticket resolves. The channel is
// closed by the commit loop itself (never by a callback), so waiting on it
// while holding locks that completion callbacks also take cannot deadlock.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Result blocks until the ticket resolves and returns the assigned index
// and error.
func (t *Ticket) Result() (Index, error) {
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.idx, t.err
}

// OnDone registers fn to run when the ticket resolves (immediately, on the
// caller's goroutine, if it already has). Callbacks run on the committer's
// dispatch goroutine — off the commit loop, so they may block on locks the
// enqueueing code holds while waiting on other tickets. Only one callback
// may be registered.
func (t *Ticket) OnDone(fn func(Index, error)) {
	t.mu.Lock()
	if t.completed {
		idx, err := t.idx, t.err
		t.mu.Unlock()
		fn(idx, err)
		return
	}
	t.cb = fn
	t.mu.Unlock()
}

// resolve publishes the outcome and closes the done channel; the registered
// callback, if any, is handed to dispatch (the committer's dispatcher, or a
// run-inline func for tickets completed synchronously).
func (t *Ticket) resolve(idx Index, err error, dispatch func(func())) {
	t.mu.Lock()
	t.idx, t.err = idx, err
	t.completed = true
	cb := t.cb
	t.cb = nil
	close(t.done)
	t.mu.Unlock()
	if cb != nil {
		dispatch(func() { cb(idx, err) })
	}
}

func runInline(fn func()) { fn() }

// completedTicket returns an already-resolved ticket (non-group fallbacks,
// enqueue-after-close failures).
func completedTicket(idx Index, err error) *Ticket {
	t := &Ticket{done: make(chan struct{})}
	t.idx, t.err, t.completed = idx, err, true
	close(t.done)
	return t
}

// commitReq is one queued unit of group-commit work: an append (stream set)
// or a pure sync barrier (stream nil).
type commitReq struct {
	s       *Stream
	payload []byte
	t       *Ticket
}

// Committer is the per-volume group-commit loop: appenders enqueue
// (payload, ticket) pairs, and a single goroutine drains the queue, writes
// every pending append back-to-back with one WriteAt, issues one fsync for
// the whole batch through the volume's gate, and then resolves every
// waiter — so N concurrent durable appenders pay ~1/N of an fsync each.
// Batches are bounded by maxBytes and an optional linger delay.
type Committer struct {
	v        *Volume
	maxBytes int
	maxDelay time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []commitReq
	pending int // queued payload bytes
	closed  bool
	done    chan struct{}

	// Completion callbacks run on a dedicated dispatcher, never on the
	// commit loop: a callback may take a lock held by code that is
	// blocked waiting on another ticket's Done channel, and the commit
	// loop must stay free to resolve that ticket.
	cbMu   sync.Mutex
	cbCond *sync.Cond
	cbq    []func()
	cbDone chan struct{}
}

const defaultGroupMaxBytes = 1 << 20

func newCommitter(v *Volume, maxBytes int, maxDelay time.Duration) *Committer {
	if maxBytes <= 0 {
		maxBytes = defaultGroupMaxBytes
	}
	c := &Committer{
		v:        v,
		maxBytes: maxBytes,
		maxDelay: maxDelay,
		done:     make(chan struct{}),
		cbDone:   make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.cbCond = sync.NewCond(&c.cbMu)
	go c.loop()
	go c.dispatchLoop()
	return c
}

// enqueue queues one append (or, with s == nil, a sync barrier). The
// payload must stay untouched until the ticket resolves.
func (c *Committer) enqueue(s *Stream, payload []byte) *Ticket {
	t := &Ticket{done: make(chan struct{}), enq: time.Now()}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		t.resolve(NilIndex, ErrClosed, runInline)
		return t
	}
	c.queue = append(c.queue, commitReq{s: s, payload: payload, t: t})
	c.pending += len(payload)
	c.cond.Signal()
	c.mu.Unlock()
	return t
}

// dispatch hands a completion callback to the dispatcher goroutine.
func (c *Committer) dispatch(fn func()) {
	c.cbMu.Lock()
	c.cbq = append(c.cbq, fn)
	c.cbCond.Signal()
	c.cbMu.Unlock()
}

func (c *Committer) dispatchLoop() {
	defer close(c.cbDone)
	for {
		c.cbMu.Lock()
		for len(c.cbq) == 0 {
			if c.loopExited() {
				c.cbMu.Unlock()
				return
			}
			c.cbCond.Wait()
		}
		q := c.cbq
		c.cbq = nil
		c.cbMu.Unlock()
		for _, fn := range q {
			fn()
		}
	}
}

// loopExited reports whether the commit loop has finished; it closes
// c.done and broadcasts cbCond (under cbMu) on exit, so the dispatcher
// cannot miss the transition.
func (c *Committer) loopExited() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// loop drains batches until the committer closes and the queue empties.
func (c *Committer) loop() {
	defer func() {
		close(c.done)
		// Wake the dispatcher so it can observe shutdown.
		c.cbMu.Lock()
		c.cbCond.Broadcast()
		c.cbMu.Unlock()
	}()
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.closed {
			c.mu.Unlock()
			return
		}
		batch, rest := splitBatch(c.queue, c.maxBytes)
		c.queue = rest
		c.pending = 0
		for _, r := range rest {
			c.pending += len(r.payload)
		}
		closing := c.closed
		c.mu.Unlock()

		if c.maxDelay > 0 && !closing && len(rest) == 0 {
			// Linger: give concurrent appenders a bounded window to join
			// this batch (the fsync itself is the other, implicit,
			// batching window).
			time.Sleep(c.maxDelay)
			c.mu.Lock()
			joined, rest2 := splitBatch(c.queue, c.maxBytes-batchBytes(batch))
			c.queue = rest2
			c.pending = 0
			for _, r := range rest2 {
				c.pending += len(r.payload)
			}
			c.mu.Unlock()
			batch = append(batch, joined...)
		}
		c.commit(batch)
	}
}

func batchBytes(batch []commitReq) int {
	n := 0
	for _, r := range batch {
		n += len(r.payload)
	}
	return n
}

// splitBatch takes the longest queue prefix within maxBytes (always at
// least one request, so an oversized record still commits alone).
func splitBatch(queue []commitReq, maxBytes int) (batch, rest []commitReq) {
	bytes := 0
	for i, r := range queue {
		bytes += len(r.payload)
		if i > 0 && bytes > maxBytes {
			return queue[:i], queue[i:]
		}
	}
	return queue, nil
}

// commit writes one batch back-to-back, fsyncs once through the volume
// gate, and resolves every waiter. Acks happen strictly after the covering
// fsync returns — the crash-consistency invariant of the pipeline.
func (c *Committer) commit(batch []commitReq) {
	v := c.v
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		for _, r := range batch {
			r.t.resolve(NilIndex, ErrClosed, c.dispatch)
		}
		return
	}
	// Encode the whole batch into one contiguous buffer: one WriteAt per
	// batch, not per record. Index assignment is tentative until the
	// write succeeds; nothing in the stream tables mutates before then.
	type placed struct {
		req int
		s   *Stream
		idx Index
		off int64
	}
	var (
		buf     = v.batchBuf[:0]
		places  []placed
		next    map[*Stream]Index
		base    = v.size
		appends int64
	)
	for i := range batch {
		r := &batch[i]
		if r.s == nil {
			continue
		}
		if next == nil {
			next = make(map[*Stream]Index, 4)
		}
		idx, ok := next[r.s]
		if !ok {
			idx = r.s.next
		}
		next[r.s] = idx + 1
		places = append(places, placed{req: i, s: r.s, idx: idx, off: base + int64(len(buf))})
		buf = appendRecord(buf, r.s.id, idx, r.payload)
		appends++
	}
	if len(buf) > 0 {
		if _, err := v.f.WriteAt(buf, base); err != nil {
			v.mu.Unlock()
			werr := wrapErr("logvol append", err)
			for _, r := range batch {
				r.t.resolve(NilIndex, werr, c.dispatch)
			}
			return
		}
		v.size += int64(len(buf))
		v.bytesAppended += int64(len(buf))
		v.seq++
		tAppendBytes.Add(int64(len(buf)))
		tAppends.Add(appends)
		for _, p := range places {
			p.s.next = p.idx + 1
			p.s.offsets[p.idx] = p.off
		}
	}
	seq := v.seq
	if cap(buf) <= maxRetainedBuf {
		v.batchBuf = buf[:0]
	}
	v.mu.Unlock()

	issued, err := v.gate.Sync(seq, v.curSeq, v.fsyncFile)
	if err == nil && !issued {
		tSyncsAmortized.Inc()
	}
	tGroupCommits.Inc()
	tCommitBatch.Observe(appends)

	now := time.Now()
	for i := range batch {
		r := &batch[i]
		if !r.enqZero() {
			tCommitWait.ObserveDuration(now.Sub(r.t.enq))
		}
		if r.s == nil {
			r.t.resolve(NilIndex, err, c.dispatch)
			continue
		}
		if err != nil {
			// The write happened but durability failed: the record may
			// or may not survive a crash, so the append must not be
			// acked as durable.
			r.t.resolve(NilIndex, err, c.dispatch)
			continue
		}
		var idx Index
		for _, p := range places {
			if p.req == i {
				idx = p.idx
				break
			}
		}
		r.t.resolve(idx, nil, c.dispatch)
	}
}

func (r *commitReq) enqZero() bool { return r.t.enq.IsZero() }

// shutdown stops accepting new work (late enqueuers get ErrClosed), flushes
// everything already queued, and waits for both goroutines to exit.
func (c *Committer) shutdown() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
	<-c.cbDone
}
