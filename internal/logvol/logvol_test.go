package logvol

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTestVolume(t *testing.T, opts Options) (*Volume, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { v.Close() }) //nolint:errcheck
	return v, path
}

func TestAppendRead(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	s, err := v.Stream("s1")
	if err != nil {
		t.Fatal(err)
	}
	var idxs []Index
	for i := 0; i < 100; i++ {
		idx, err := s.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		idxs = append(idxs, idx)
	}
	if idxs[0] != 1 {
		t.Errorf("first index = %d, want 1", idxs[0])
	}
	for i, idx := range idxs {
		if idx != Index(i+1) {
			t.Fatalf("indexes not monotonic: %v", idxs[:i+1])
		}
	}
	for i, idx := range idxs {
		got, err := s.Read(idx)
		if err != nil {
			t.Fatalf("Read(%d): %v", idx, err)
		}
		if want := fmt.Sprintf("record-%d", i); string(got) != want {
			t.Errorf("Read(%d) = %q, want %q", idx, got, want)
		}
	}
	if s.LastIndex() != 100 || s.FirstLiveIndex() != 1 || s.Len() != 100 {
		t.Errorf("Last/First/Len = %d/%d/%d", s.LastIndex(), s.FirstLiveIndex(), s.Len())
	}
}

func TestMultipleStreamsInterleaved(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	a, _ := v.Stream("a") //nolint:errcheck
	b, _ := v.Stream("b") //nolint:errcheck
	for i := 0; i < 50; i++ {
		if _, err := a.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append([]byte{byte(i), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Indexes are per stream.
	if a.LastIndex() != 50 || b.LastIndex() != 50 {
		t.Errorf("per-stream indexes leaked: a=%d b=%d", a.LastIndex(), b.LastIndex())
	}
	got, err := b.Read(7)
	if err != nil || len(got) != 2 {
		t.Errorf("b.Read(7) = %v, %v", got, err)
	}
	names := v.StreamNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("StreamNames = %v", names)
	}
}

func TestStreamReturnsExisting(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	a1, _ := v.Stream("a") //nolint:errcheck
	a2, _ := v.Stream("a") //nolint:errcheck
	if a1 != a2 {
		t.Error("Stream created a duplicate")
	}
	if _, err := v.LookupStream("missing"); !errors.Is(err, ErrNoSuchStream) {
		t.Errorf("LookupStream(missing) = %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	s, _ := v.Stream("s") //nolint:errcheck
	if _, err := s.Read(1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read of unwritten index = %v, want ErrNotFound", err)
	}
	idx, _ := s.Append([]byte("x")) //nolint:errcheck
	if err := s.Chop(idx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(idx); !errors.Is(err, ErrChopped) {
		t.Errorf("Read of chopped index = %v, want ErrChopped", err)
	}
}

func TestChop(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	s, _ := v.Stream("s") //nolint:errcheck
	for i := 0; i < 10; i++ {
		s.Append([]byte{byte(i)}) //nolint:errcheck
	}
	if err := s.Chop(4); err != nil {
		t.Fatal(err)
	}
	if s.FirstLiveIndex() != 5 || s.LastIndex() != 10 || s.Len() != 6 {
		t.Errorf("after chop: first=%d last=%d len=%d", s.FirstLiveIndex(), s.LastIndex(), s.Len())
	}
	// Chopping backwards is a no-op.
	if err := s.Chop(2); err != nil {
		t.Fatal(err)
	}
	if s.FirstLiveIndex() != 5 {
		t.Error("backwards chop moved the floor")
	}
	// Appends continue with the next index.
	idx, _ := s.Append([]byte("new")) //nolint:errcheck
	if idx != 11 {
		t.Errorf("append after chop = %d, want 11", idx)
	}
	// Chop everything.
	if err := s.Chop(11); err != nil {
		t.Fatal(err)
	}
	if s.LastIndex() != NilIndex || s.FirstLiveIndex() != NilIndex || s.Len() != 0 {
		t.Errorf("fully chopped stream: last=%d first=%d len=%d",
			s.LastIndex(), s.FirstLiveIndex(), s.Len())
	}
	idx, _ = s.Append([]byte("after")) //nolint:errcheck
	if idx != 12 {
		t.Errorf("append after full chop = %d, want 12", idx)
	}
}

func TestRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := v.Stream("a") //nolint:errcheck
	b, _ := v.Stream("b") //nolint:errcheck
	for i := 0; i < 20; i++ {
		a.Append([]byte(fmt.Sprintf("a%d", i))) //nolint:errcheck
		b.Append([]byte(fmt.Sprintf("b%d", i))) //nolint:errcheck
	}
	a.Chop(5) //nolint:errcheck
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	defer v2.Close() //nolint:errcheck
	a2, err := v2.LookupStream("a")
	if err != nil {
		t.Fatalf("stream a lost: %v", err)
	}
	b2, err := v2.LookupStream("b")
	if err != nil {
		t.Fatalf("stream b lost: %v", err)
	}
	if a2.FirstLiveIndex() != 6 || a2.LastIndex() != 20 {
		t.Errorf("a recovered first=%d last=%d", a2.FirstLiveIndex(), a2.LastIndex())
	}
	got, err := a2.Read(10)
	if err != nil || string(got) != "a9" {
		t.Errorf("a.Read(10) = %q, %v", got, err)
	}
	if _, err := a2.Read(3); !errors.Is(err, ErrChopped) {
		t.Errorf("chop not recovered: %v", err)
	}
	if b2.LastIndex() != 20 {
		t.Errorf("b recovered last=%d", b2.LastIndex())
	}
	// Indexes continue after recovery.
	idx, _ := a2.Append([]byte("post")) //nolint:errcheck
	if idx != 21 {
		t.Errorf("append after recovery = %d, want 21", idx)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := v.Stream("s") //nolint:errcheck
	for i := 0; i < 10; i++ {
		s.Append([]byte(fmt.Sprintf("rec-%d", i))) //nolint:errcheck
	}
	v.Close() //nolint:errcheck

	// Tear the last record.
	info, _ := os.Stat(path) //nolint:errcheck
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	v2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("re-open torn: %v", err)
	}
	defer v2.Close() //nolint:errcheck
	s2, err := v2.LookupStream("s")
	if err != nil {
		t.Fatal(err)
	}
	if s2.LastIndex() != 9 {
		t.Errorf("torn tail not dropped: last=%d, want 9", s2.LastIndex())
	}
	// The torn index is reassigned on the next append.
	idx, _ := s2.Append([]byte("replacement")) //nolint:errcheck
	if idx != 10 {
		t.Errorf("append after tear = %d, want 10", idx)
	}
	got, err := s2.Read(10)
	if err != nil || string(got) != "replacement" {
		t.Errorf("Read(10) = %q, %v", got, err)
	}
}

func TestRecoveryCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.log")
	v, _ := Open(path, Options{}) //nolint:errcheck
	s, _ := v.Stream("s")         //nolint:errcheck
	s.Append([]byte("first"))     //nolint:errcheck
	off := v.Size()
	s.Append([]byte("second")) //nolint:errcheck
	s.Append([]byte("third"))  //nolint:errcheck
	v.Close()                  //nolint:errcheck

	// Flip a byte inside the second record's payload.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, off+recHeaderSize); err != nil {
		t.Fatal(err)
	}
	f.Close() //nolint:errcheck

	v2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()              //nolint:errcheck
	s2, _ := v2.LookupStream("s") //nolint:errcheck
	if s2.LastIndex() != 1 {
		t.Errorf("scan did not stop at corruption: last=%d", s2.LastIndex())
	}
}

func TestForEach(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	s, _ := v.Stream("s") //nolint:errcheck
	for i := 0; i < 10; i++ {
		s.Append([]byte{byte(i)}) //nolint:errcheck
	}
	s.Chop(3) //nolint:errcheck
	var seen []Index
	err := s.ForEach(func(idx Index, payload []byte) bool {
		seen = append(seen, idx)
		if payload[0] != byte(idx-1) {
			t.Errorf("payload mismatch at %d", idx)
		}
		return idx < 8 // stop early
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Index{4, 5, 6, 7, 8}
	if len(seen) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", seen, want)
		}
	}
}

func TestCompact(t *testing.T) {
	v, path := openTestVolume(t, Options{})
	a, _ := v.Stream("a") //nolint:errcheck
	b, _ := v.Stream("b") //nolint:errcheck
	for i := 0; i < 200; i++ {
		a.Append(make([]byte, 100)) //nolint:errcheck
		b.Append([]byte{byte(i)})   //nolint:errcheck
	}
	a.Chop(190) //nolint:errcheck
	sizeBefore := v.Size()
	if err := v.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if v.Size() >= sizeBefore {
		t.Errorf("compaction did not shrink: %d -> %d", sizeBefore, v.Size())
	}
	// All live data still readable.
	got, err := a.Read(195)
	if err != nil || len(got) != 100 {
		t.Errorf("a.Read(195) after compact: %v, %v", len(got), err)
	}
	if _, err := a.Read(10); !errors.Is(err, ErrChopped) {
		t.Errorf("chopped record readable after compact: %v", err)
	}
	for i := 1; i <= 200; i++ {
		got, err := b.Read(Index(i))
		if err != nil || got[0] != byte(i-1) {
			t.Fatalf("b.Read(%d) after compact: %v, %v", i, got, err)
		}
	}
	// Volume survives close/re-open after compaction.
	v.Close() //nolint:errcheck
	v2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()              //nolint:errcheck
	a2, _ := v2.LookupStream("a") //nolint:errcheck
	if a2.FirstLiveIndex() != 191 || a2.LastIndex() != 200 {
		t.Errorf("post-compact recovery: first=%d last=%d", a2.FirstLiveIndex(), a2.LastIndex())
	}
	// Appends continue correctly.
	idx, _ := a2.Append([]byte("x")) //nolint:errcheck
	if idx != 201 {
		t.Errorf("append after compact+recover = %d", idx)
	}
}

func TestSyncPolicies(t *testing.T) {
	v, _ := openTestVolume(t, Options{Sync: SyncAlways})
	s, _ := v.Stream("s") //nolint:errcheck
	for i := 0; i < 5; i++ {
		s.Append([]byte("x")) //nolint:errcheck
	}
	// 5 appends + 1 stream-creation meta record.
	if got := v.Syncs(); got != 6 {
		t.Errorf("SyncAlways issued %d syncs, want 6", got)
	}

	v2, _ := openTestVolume(t, Options{Sync: SyncExplicit})
	s2, _ := v2.Stream("s") //nolint:errcheck
	for i := 0; i < 5; i++ {
		s2.Append([]byte("x")) //nolint:errcheck
	}
	if got := v2.Syncs(); got != 0 {
		t.Errorf("SyncExplicit issued %d syncs before Sync()", got)
	}
	if err := v2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := v2.Syncs(); got != 1 {
		t.Errorf("explicit Sync counted %d", got)
	}
}

func TestClosedVolume(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	s, _ := v.Stream("s") //nolint:errcheck
	s.Append([]byte("x")) //nolint:errcheck
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := s.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Errorf("append on closed = %v", err)
	}
	if _, err := s.Read(1); !errors.Is(err, ErrClosed) {
		t.Errorf("read on closed = %v", err)
	}
	if _, err := v.Stream("t"); !errors.Is(err, ErrClosed) {
		t.Errorf("stream on closed = %v", err)
	}
	if err := v.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("sync on closed = %v", err)
	}
}

func TestBytesAppendedTracksGrowth(t *testing.T) {
	v, _ := openTestVolume(t, Options{})
	s, _ := v.Stream("s") //nolint:errcheck
	before := v.BytesAppended()
	s.Append(make([]byte, 1000)) //nolint:errcheck
	grew := v.BytesAppended() - before
	if grew < 1000 || grew > 1100 {
		t.Errorf("BytesAppended grew by %d for a 1000B payload", grew)
	}
}

// Randomized crash-recovery property: after appending and chopping randomly
// then re-opening (possibly with a torn tail), every record the volume
// claims to have is intact and every chopped record is gone.
func TestRandomizedRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		path := filepath.Join(t.TempDir(), "vol.log")
		v, err := Open(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		type model struct {
			records map[Index][]byte
			minLive Index
		}
		streams := map[string]*model{}
		for op := 0; op < 100; op++ {
			name := fmt.Sprintf("s%d", rng.Intn(3))
			s, err := v.Stream(name)
			if err != nil {
				t.Fatal(err)
			}
			m := streams[name]
			if m == nil {
				m = &model{records: map[Index][]byte{}, minLive: 1}
				streams[name] = m
			}
			if rng.Intn(10) == 0 && s.LastIndex() != NilIndex {
				upTo := s.FirstLiveIndex() + Index(rng.Intn(int(s.Len())))
				if err := s.Chop(upTo); err != nil {
					t.Fatal(err)
				}
				if upTo+1 > m.minLive {
					m.minLive = upTo + 1
				}
				continue
			}
			payload := make([]byte, rng.Intn(50)+1)
			rng.Read(payload)
			idx, err := s.Append(payload)
			if err != nil {
				t.Fatal(err)
			}
			m.records[idx] = payload
		}
		v.Close() //nolint:errcheck

		v2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("trial %d re-open: %v", trial, err)
		}
		for name, m := range streams {
			s, err := v2.LookupStream(name)
			if err != nil {
				t.Fatalf("trial %d stream %s: %v", trial, name, err)
			}
			for idx, want := range m.records {
				got, err := s.Read(idx)
				if idx < m.minLive {
					if !errors.Is(err, ErrChopped) {
						t.Fatalf("trial %d %s[%d]: want ErrChopped, got %v", trial, name, idx, err)
					}
					continue
				}
				if err != nil || string(got) != string(want) {
					t.Fatalf("trial %d %s[%d]: %v", trial, name, idx, err)
				}
			}
		}
		v2.Close() //nolint:errcheck
	}
}

// TestTornTailPartialWriteSweep simulates a crash at every possible byte
// boundary inside the final append (the fault-injection view of a torn
// write: the kernel persisted an arbitrary prefix of the record). Whatever
// the cut point, recovery must keep every earlier record intact, drop only
// the torn one, and leave the volume appendable.
func TestTornTailPartialWriteSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.log")
	v, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := v.Stream("s") //nolint:errcheck
	const intact = 7
	for i := 0; i < intact; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("torn-record-payload")); err != nil {
		t.Fatal(err)
	}
	v.Close() //nolint:errcheck
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := before.Size(); cut < after.Size(); cut++ {
		tornPath := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(tornPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tv, err := Open(tornPath, Options{})
		if err != nil {
			t.Fatalf("cut %d: re-open: %v", cut, err)
		}
		ts, err := tv.LookupStream("s")
		if err != nil {
			t.Fatalf("cut %d: stream lost: %v", cut, err)
		}
		if ts.LastIndex() != intact {
			t.Fatalf("cut %d: last=%d, want %d", cut, ts.LastIndex(), intact)
		}
		for i := 0; i < intact; i++ {
			got, err := ts.Read(Index(i + 1))
			if err != nil || string(got) != fmt.Sprintf("rec-%d", i) {
				t.Fatalf("cut %d: Read(%d) = %q, %v", cut, i+1, got, err)
			}
		}
		idx, err := ts.Append([]byte("post-recovery"))
		if err != nil || idx != intact+1 {
			t.Fatalf("cut %d: append after recovery = %d, %v", cut, idx, err)
		}
		tv.Close() //nolint:errcheck
	}
}
