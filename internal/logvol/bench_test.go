package logvol

import (
	"path/filepath"
	"testing"
)

// BenchmarkAppend measures raw log-volume append throughput at the paper's
// 418-byte event size.
func BenchmarkAppend(b *testing.B) {
	vol, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer vol.Close() //nolint:errcheck
	s, err := vol.Stream("bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 418)
	b.SetBytes(418)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadByIndex measures random record retrieval (the nack-service
// path).
func BenchmarkReadByIndex(b *testing.B) {
	vol, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer vol.Close() //nolint:errcheck
	s, err := vol.Stream("bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 418)
	const n = 4096
	for i := 0; i < n; i++ {
		if _, err := s.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(Index(i%n) + 1); err != nil {
			b.Fatal(err)
		}
	}
}
