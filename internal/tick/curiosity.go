package tick

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// Span is a closed interval [Start, End] of timestamps with no kind
// attached; curiosity streams track spans of ticks that have been nacked.
type Span struct {
	Start vtime.Timestamp
	End   vtime.Timestamp
}

// Empty reports whether the span covers no ticks.
func (s Span) Empty() bool { return s.End < s.Start }

// Len reports the number of ticks covered.
func (s Span) Len() int64 {
	if s.Empty() {
		return 0
	}
	return int64(s.End-s.Start) + 1
}

// String implements fmt.Stringer.
func (s Span) String() string { return fmt.Sprintf("[%d,%d]", s.Start, s.End) }

// Curiosity is a curiosity stream: the set of tick spans this node has
// requested (nacked) from upstream but not yet received knowledge for.
//
// Its central operation, Add, returns only the portions of a requested span
// that were not already pending. Forwarding just those portions upstream is
// the nack consolidation of the paper (section 3): when many downstream
// consumers miss the same ticks, the upstream node sees a single request.
//
// Curiosity is not safe for concurrent use; owners serialize access.
type Curiosity struct {
	pending []Span // sorted by Start, disjoint, coalesced
}

// NewCuriosity returns an empty curiosity stream.
func NewCuriosity() *Curiosity {
	return &Curiosity{}
}

// Add records that ticks [start, end] are wanted and returns the sub-spans
// that were not already pending (possibly none). Only the returned spans
// need to be nacked upstream.
func (c *Curiosity) Add(start, end vtime.Timestamp) []Span {
	if end < start {
		return nil
	}
	var fresh []Span
	i := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].End >= start })
	cur := start
	for cur <= end {
		if i >= len(c.pending) || c.pending[i].Start > end {
			fresh = append(fresh, Span{Start: cur, End: end})
			break
		}
		p := c.pending[i]
		if p.Start > cur {
			fresh = append(fresh, Span{Start: cur, End: p.Start - 1})
		}
		cur = p.End + 1
		i++
	}
	if len(fresh) > 0 {
		c.merge(start, end)
	}
	return fresh
}

// merge inserts [start,end] into pending, coalescing overlaps and
// adjacencies.
func (c *Curiosity) merge(start, end vtime.Timestamp) {
	// Find all spans overlapping or adjacent to [start-1, end+1].
	lo := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].End >= start-1 })
	hi := lo
	for hi < len(c.pending) && c.pending[hi].Start <= end+1 {
		if c.pending[hi].Start < start {
			start = c.pending[hi].Start
		}
		if c.pending[hi].End > end {
			end = c.pending[hi].End
		}
		hi++
	}
	merged := Span{Start: start, End: end}
	out := make([]Span, 0, len(c.pending)-(hi-lo)+1)
	out = append(out, c.pending[:lo]...)
	out = append(out, merged)
	out = append(out, c.pending[hi:]...)
	c.pending = out
}

// Satisfy removes [start, end] from the pending set: knowledge for those
// ticks has arrived. Spans partially covered are clipped.
func (c *Curiosity) Satisfy(start, end vtime.Timestamp) {
	if end < start || len(c.pending) == 0 {
		return
	}
	// A span that straddles [start, end] splits in two, so this cannot
	// filter in place: the write index would overtake the read index.
	out := make([]Span, 0, len(c.pending)+1)
	for _, p := range c.pending {
		if p.End < start || p.Start > end {
			out = append(out, p)
			continue
		}
		if p.Start < start {
			out = append(out, Span{Start: p.Start, End: start - 1})
		}
		if p.End > end {
			out = append(out, Span{Start: end + 1, End: p.End})
		}
	}
	c.pending = out
}

// SatisfyBelow removes everything at or below ts; used when the loss
// horizon advances past pending requests (they can never be answered with
// S/D knowledge anymore).
func (c *Curiosity) SatisfyBelow(ts vtime.Timestamp) {
	c.Satisfy(vtime.ZeroTS, ts)
}

// Pending returns a copy of the outstanding spans in time order.
func (c *Curiosity) Pending() []Span {
	out := make([]Span, len(c.pending))
	copy(out, c.pending)
	return out
}

// PendingTicks reports the total number of outstanding ticks.
func (c *Curiosity) PendingTicks() int64 {
	var n int64
	for _, p := range c.pending {
		n += p.Len()
	}
	return n
}

// IsPending reports whether ts is inside an outstanding span.
func (c *Curiosity) IsPending(ts vtime.Timestamp) bool {
	i := sort.Search(len(c.pending), func(i int) bool { return c.pending[i].End >= ts })
	return i < len(c.pending) && c.pending[i].Start <= ts
}

// String implements fmt.Stringer.
func (c *Curiosity) String() string {
	var b strings.Builder
	b.WriteString("curiosity{")
	for i, p := range c.pending {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// checkInvariants validates internal structure; tests call it.
func (c *Curiosity) checkInvariants() error {
	for i, p := range c.pending {
		if p.Empty() {
			return fmt.Errorf("span %d empty: %v", i, p)
		}
		if i > 0 && p.Start <= c.pending[i-1].End+1 {
			return fmt.Errorf("span %d overlaps/adjacent to predecessor: %v after %v", i, p, c.pending[i-1])
		}
	}
	return nil
}
