package tick

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vtime"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Q, "Q"}, {S, "S"}, {D, "D"}, {L, "L"}, {Kind(0), "Kind(0)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
	if Kind(0).Valid() || Kind(9).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if !Q.Valid() || !L.Valid() {
		t.Error("valid kinds reported invalid")
	}
}

func TestRangeBasics(t *testing.T) {
	r := Range{Start: 5, End: 9, Kind: D}
	if r.Empty() {
		t.Error("non-empty range reported empty")
	}
	if got := r.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	if !r.Contains(5) || !r.Contains(9) || r.Contains(4) || r.Contains(10) {
		t.Error("Contains boundary behavior wrong")
	}
	empty := Range{Start: 9, End: 5}
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("inverted range should be empty with zero length")
	}
}

func TestStreamInitialState(t *testing.T) {
	s := NewStream(100)
	if s.Base() != 100 || s.LossHorizon() != 100 {
		t.Fatalf("base/loss = %d/%d, want 100/100", s.Base(), s.LossHorizon())
	}
	if got := s.Kind(100); got != L {
		t.Errorf("Kind(base) = %v, want L", got)
	}
	if got := s.Kind(101); got != Q {
		t.Errorf("Kind(base+1) = %v, want Q", got)
	}
	if dh := s.DoubtHorizon(); dh != 100 {
		t.Errorf("DoubtHorizon = %d, want 100", dh)
	}
}

func TestStreamApplyAndKind(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 1, End: 4, Kind: S})
	s.Apply(Range{Start: 5, End: 5, Kind: D})
	s.Apply(Range{Start: 6, End: 10, Kind: S})
	for ts, want := range map[vtime.Timestamp]Kind{
		1: S, 4: S, 5: D, 6: S, 10: S, 11: Q,
	} {
		if got := s.Kind(ts); got != want {
			t.Errorf("Kind(%d) = %v, want %v", ts, got, want)
		}
	}
	if dh := s.DoubtHorizon(); dh != 10 {
		t.Errorf("DoubtHorizon = %d, want 10", dh)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDoubtHorizonStopsAtGap(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 1, End: 3, Kind: S})
	s.Apply(Range{Start: 5, End: 8, Kind: S}) // 4 stays Q
	if dh := s.DoubtHorizon(); dh != 3 {
		t.Errorf("DoubtHorizon = %d, want 3", dh)
	}
	s.Apply(Range{Start: 4, End: 4, Kind: D})
	if dh := s.DoubtHorizon(); dh != 8 {
		t.Errorf("DoubtHorizon after filling gap = %d, want 8", dh)
	}
}

func TestStreamKnowledgeOnlyIncreases(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 5, End: 5, Kind: D})
	s.Apply(Range{Start: 1, End: 10, Kind: S}) // conflicting at 5
	if got := s.Kind(5); got != D {
		t.Errorf("D downgraded to %v", got)
	}
	if s.Conflicts() == 0 {
		t.Error("conflict not counted")
	}
	// Q apply carries nothing.
	s.Apply(Range{Start: 20, End: 30, Kind: Q})
	if got := s.Kind(25); got != Q {
		t.Errorf("Q apply changed tick to %v", got)
	}
}

func TestStreamLossPrefix(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 1, End: 10, Kind: S})
	s.Apply(Range{Start: 11, End: 11, Kind: D})
	s.SetLoss(5)
	if got := s.Kind(3); got != L {
		t.Errorf("Kind(3) after loss = %v, want L", got)
	}
	if got := s.Kind(6); got != S {
		t.Errorf("Kind(6) = %v, want S", got)
	}
	// L range applied through Apply behaves like SetLoss.
	s.Apply(Range{Start: 2, End: 8, Kind: L})
	if s.LossHorizon() != 8 {
		t.Errorf("loss horizon = %d, want 8", s.LossHorizon())
	}
	if got := s.Kind(11); got != D {
		t.Errorf("Kind(11) = %v, want D", got)
	}
	// Lowering loss is a no-op.
	s.SetLoss(2)
	if s.LossHorizon() != 8 {
		t.Errorf("loss horizon rewound to %d", s.LossHorizon())
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamAdvance(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 1, End: 10, Kind: S})
	s.Advance(5)
	if s.Base() != 5 {
		t.Fatalf("base = %d", s.Base())
	}
	if got := s.Kind(5); got != L {
		t.Errorf("Kind(5) = %v, want L (consumed)", got)
	}
	if got := s.Kind(6); got != S {
		t.Errorf("Kind(6) = %v, want S", got)
	}
	s.Advance(3) // backwards: no-op
	if s.Base() != 5 {
		t.Errorf("Advance rewound base to %d", s.Base())
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamQGaps(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 3, End: 4, Kind: S})
	s.Apply(Range{Start: 8, End: 9, Kind: D})
	gaps := s.QGaps(0, 12, 0)
	want := []Range{
		{Start: 1, End: 2, Kind: Q},
		{Start: 5, End: 7, Kind: Q},
		{Start: 10, End: 12, Kind: Q},
	}
	if len(gaps) != len(want) {
		t.Fatalf("QGaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	first, ok := s.FirstQGap(0, 12)
	if !ok || first != want[0] {
		t.Errorf("FirstQGap = %v/%v", first, ok)
	}
	limited := s.QGaps(0, 12, 2)
	if len(limited) != 2 {
		t.Errorf("QGaps with max=2 returned %d gaps", len(limited))
	}
	if _, ok := s.FirstQGap(2, 4); ok {
		t.Error("FirstQGap over known region should report none")
	}
}

func TestStreamDTicks(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 1, End: 10, Kind: S})
	s.Apply(Range{Start: 11, End: 12, Kind: D})
	s.Apply(Range{Start: 13, End: 20, Kind: S})
	s.Apply(Range{Start: 21, End: 21, Kind: D})
	got := s.DTicks(0, 21)
	want := []vtime.Timestamp{11, 12, 21}
	if len(got) != len(want) {
		t.Fatalf("DTicks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DTicks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := s.DTicks(11, 20); len(got) != 1 || got[0] != 12 {
		t.Errorf("DTicks(11,20) = %v, want [12]", got)
	}
}

func TestStreamRangesCoverEverything(t *testing.T) {
	s := NewStream(0)
	s.SetLoss(2)
	s.Apply(Range{Start: 4, End: 6, Kind: S})
	s.Apply(Range{Start: 7, End: 7, Kind: D})
	rs := s.Ranges(0, 10)
	// Expect [1,2]L [3,3]Q [4,6]S [7,7]D [8,10]Q.
	want := []Range{
		{1, 2, L}, {3, 3, Q}, {4, 6, S}, {7, 7, D}, {8, 10, Q},
	}
	if len(rs) != len(want) {
		t.Fatalf("Ranges = %v, want %v", rs, want)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("range %d = %v, want %v", i, rs[i], want[i])
		}
	}
	known := s.KnownRanges(0, 10)
	for _, r := range known {
		if r.Kind == Q {
			t.Errorf("KnownRanges contains Q range %v", r)
		}
	}
	if len(known) != 3 {
		t.Errorf("KnownRanges = %v, want 3 ranges", known)
	}
}

func TestStreamCoalescing(t *testing.T) {
	s := NewStream(0)
	for ts := vtime.Timestamp(1); ts <= 1000; ts++ {
		s.Apply(Range{Start: ts, End: ts, Kind: S})
	}
	if got := s.RunCount(); got != 1 {
		t.Errorf("1000 adjacent S ticks coalesced into %d runs, want 1", got)
	}
	// Insert in the middle of two separated runs and bridge them.
	s2 := NewStream(0)
	s2.Apply(Range{Start: 1, End: 3, Kind: S})
	s2.Apply(Range{Start: 7, End: 9, Kind: S})
	s2.Apply(Range{Start: 4, End: 6, Kind: S})
	if got := s2.RunCount(); got != 1 {
		t.Errorf("bridged runs = %d, want 1", got)
	}
	if err := s2.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamApplyIgnoresInvalid(t *testing.T) {
	s := NewStream(0)
	s.Apply(Range{Start: 10, End: 5, Kind: S}) // empty
	s.Apply(Range{Start: 1, End: 5, Kind: Kind(0)})
	if s.RunCount() != 0 {
		t.Error("invalid ranges modified the stream")
	}
}

// referenceStream is a naive map-based model of a knowledge stream used to
// cross-check Stream under randomized operations.
type referenceStream struct {
	base, loss vtime.Timestamp
	kinds      map[vtime.Timestamp]Kind
}

func newReference(base vtime.Timestamp) *referenceStream {
	return &referenceStream{base: base, loss: base, kinds: map[vtime.Timestamp]Kind{}}
}

func (r *referenceStream) apply(rg Range) {
	if rg.Empty() || !rg.Kind.Valid() || rg.Kind == Q {
		return
	}
	if rg.Kind == L {
		if rg.End > r.loss {
			r.loss = rg.End
		}
		return
	}
	for ts := rg.Start; ts <= rg.End; ts++ {
		if _, known := r.kinds[ts]; !known {
			r.kinds[ts] = rg.Kind
		}
	}
}

func (r *referenceStream) kind(ts vtime.Timestamp) Kind {
	if ts <= r.base || ts <= r.loss {
		return L
	}
	if k, ok := r.kinds[ts]; ok {
		return k
	}
	return Q
}

func (r *referenceStream) doubtHorizon() vtime.Timestamp {
	h := r.base
	if r.loss > h {
		h = r.loss
	}
	for r.kind(h+1) != Q {
		h++
	}
	return h
}

func TestStreamMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const horizon = 200
	for trial := 0; trial < 200; trial++ {
		s := NewStream(0)
		ref := newReference(0)
		for op := 0; op < 60; op++ {
			start := vtime.Timestamp(rng.Intn(horizon)) + 1
			end := start + vtime.Timestamp(rng.Intn(10))
			kind := []Kind{S, S, S, D, L}[rng.Intn(5)]
			if kind == L {
				// L is a prefix: anchor at 1.
				end = vtime.Timestamp(rng.Intn(horizon / 4))
				start = 1
				if end < 1 {
					continue
				}
			}
			rg := Range{Start: start, End: end, Kind: kind}
			s.Apply(rg)
			ref.apply(rg)
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v (%s)", trial, err, s)
		}
		for ts := vtime.Timestamp(1); ts <= horizon+12; ts++ {
			if got, want := s.Kind(ts), ref.kind(ts); got != want {
				t.Fatalf("trial %d: Kind(%d) = %v, want %v (%s)", trial, ts, got, want, s)
			}
		}
		if got, want := s.DoubtHorizon(), ref.doubtHorizon(); got != want {
			t.Fatalf("trial %d: DoubtHorizon = %d, want %d", trial, got, want)
		}
		// Ranges must tile (0, horizon] exactly and agree with Kind.
		prev := vtime.Timestamp(0)
		for _, r := range s.Ranges(0, horizon) {
			if r.Start != prev+1 {
				t.Fatalf("trial %d: Ranges not contiguous at %v", trial, r)
			}
			for ts := r.Start; ts <= r.End; ts++ {
				if s.Kind(ts) != r.Kind {
					t.Fatalf("trial %d: Ranges kind mismatch at %d", trial, ts)
				}
			}
			prev = r.End
		}
		if prev != horizon {
			t.Fatalf("trial %d: Ranges end at %d, want %d", trial, prev, horizon)
		}
	}
}

// Property: applying the same knowledge twice is idempotent.
func TestStreamApplyIdempotentQuick(t *testing.T) {
	f := func(startRaw, lenRaw uint16, kindRaw uint8) bool {
		start := vtime.Timestamp(startRaw%500) + 1
		end := start + vtime.Timestamp(lenRaw%20)
		kind := []Kind{S, D}[kindRaw%2]
		s := NewStream(0)
		s.Apply(Range{Start: start, End: end, Kind: kind})
		before := s.String()
		s.Apply(Range{Start: start, End: end, Kind: kind})
		return s.String() == before && s.Conflicts() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCuriosityAddConsolidates(t *testing.T) {
	c := NewCuriosity()
	fresh := c.Add(10, 20)
	if len(fresh) != 1 || fresh[0] != (Span{10, 20}) {
		t.Fatalf("first Add returned %v", fresh)
	}
	// Fully covered: nothing fresh.
	if fresh := c.Add(12, 18); fresh != nil {
		t.Errorf("covered Add returned %v", fresh)
	}
	// Partial overlap on both sides.
	fresh = c.Add(5, 25)
	want := []Span{{5, 9}, {21, 25}}
	if len(fresh) != 2 || fresh[0] != want[0] || fresh[1] != want[1] {
		t.Errorf("overlapping Add returned %v, want %v", fresh, want)
	}
	if got := c.PendingTicks(); got != 21 {
		t.Errorf("PendingTicks = %d, want 21", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCuriosityAddBridgesSpans(t *testing.T) {
	c := NewCuriosity()
	c.Add(1, 3)
	c.Add(7, 9)
	fresh := c.Add(2, 8)
	want := []Span{{4, 6}}
	if len(fresh) != 1 || fresh[0] != want[0] {
		t.Fatalf("bridge Add returned %v, want %v", fresh, want)
	}
	p := c.Pending()
	if len(p) != 1 || p[0] != (Span{1, 9}) {
		t.Errorf("Pending = %v, want [1,9]", p)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCuriositySatisfy(t *testing.T) {
	c := NewCuriosity()
	c.Add(1, 10)
	c.Satisfy(4, 6)
	p := c.Pending()
	if len(p) != 2 || p[0] != (Span{1, 3}) || p[1] != (Span{7, 10}) {
		t.Fatalf("Pending after split = %v", p)
	}
	if c.IsPending(5) {
		t.Error("satisfied tick still pending")
	}
	if !c.IsPending(3) || !c.IsPending(7) {
		t.Error("unsatisfied ticks not pending")
	}
	c.SatisfyBelow(8)
	p = c.Pending()
	if len(p) != 1 || p[0] != (Span{9, 10}) {
		t.Fatalf("Pending after SatisfyBelow = %v", p)
	}
	c.Satisfy(9, 10)
	if len(c.Pending()) != 0 {
		t.Error("Pending not empty after full satisfy")
	}
	c.Satisfy(1, 5) // on empty: no-op
}

func TestCuriosityEmptyAdd(t *testing.T) {
	c := NewCuriosity()
	if fresh := c.Add(5, 4); fresh != nil {
		t.Errorf("inverted Add returned %v", fresh)
	}
	if c.IsPending(5) {
		t.Error("empty curiosity reports pending")
	}
}

// Property: after any sequence of Add/Satisfy, IsPending agrees with a
// naive set model, and Add returns exactly the ticks newly pending.
func TestCuriosityMatchesSetModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const horizon = 150
	for trial := 0; trial < 300; trial++ {
		c := NewCuriosity()
		model := map[vtime.Timestamp]bool{}
		for op := 0; op < 40; op++ {
			start := vtime.Timestamp(rng.Intn(horizon))
			end := start + vtime.Timestamp(rng.Intn(12))
			if rng.Intn(3) == 0 {
				c.Satisfy(start, end)
				for ts := start; ts <= end; ts++ {
					delete(model, ts)
				}
				continue
			}
			fresh := c.Add(start, end)
			freshSet := map[vtime.Timestamp]bool{}
			for _, sp := range fresh {
				for ts := sp.Start; ts <= sp.End; ts++ {
					freshSet[ts] = true
				}
			}
			for ts := start; ts <= end; ts++ {
				if model[ts] == freshSet[ts] {
					t.Fatalf("trial %d: tick %d pending=%v but fresh=%v",
						trial, ts, model[ts], freshSet[ts])
				}
				model[ts] = true
			}
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatalf("trial %d: %v (%s)", trial, err, c)
		}
		for ts := vtime.Timestamp(0); ts <= horizon+12; ts++ {
			if got := c.IsPending(ts); got != model[ts] {
				t.Fatalf("trial %d: IsPending(%d) = %v, want %v", trial, ts, got, model[ts])
			}
		}
	}
}
