// Package tick implements the knowledge and curiosity streams that carry
// per-pubend delivery state through the broker overlay (paper, section 3).
//
// A knowledge stream assigns one of four tick kinds to every point of a
// pubend's virtual time line:
//
//   - Q (unknown): this node does not yet know what happened at the tick.
//   - S (silence): no event at the tick, or it was filtered upstream and is
//     not relevant to anything downstream of this node.
//   - D (data): an event published by an application.
//   - L (lost): the pubend discarded whether the tick was S or D
//     (early release). L ticks always form a prefix of the stream.
//
// Knowledge only increases: Q may become S, D, or L, and any tick may be
// swallowed by the advancing L prefix; no other transitions occur.
//
// A curiosity stream tracks the time ranges this node has nacked upstream,
// so that overlapping requests from multiple downstream consumers are
// consolidated into a single upstream nack.
package tick

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vtime"
)

// Kind is the knowledge state of one tick.
type Kind uint8

// Tick kinds. The zero value is invalid so that uninitialized kinds are
// caught early.
const (
	Q Kind = iota + 1 // unknown
	S                 // silence
	D                 // data (an event)
	L                 // lost (early-released)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Q:
		return "Q"
	case S:
		return "S"
	case D:
		return "D"
	case L:
		return "L"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the four defined kinds.
func (k Kind) Valid() bool { return k >= Q && k <= L }

// Range is a contiguous run of ticks [Start, End] (inclusive on both ends)
// that all share the same kind.
type Range struct {
	Start vtime.Timestamp
	End   vtime.Timestamp
	Kind  Kind
}

// Empty reports whether the range covers no ticks.
func (r Range) Empty() bool { return r.End < r.Start }

// Len reports the number of ticks covered.
func (r Range) Len() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.End-r.Start) + 1
}

// Contains reports whether ts falls inside the range.
func (r Range) Contains(ts vtime.Timestamp) bool { return ts >= r.Start && ts <= r.End }

// String implements fmt.Stringer.
func (r Range) String() string {
	return fmt.Sprintf("[%d,%d]%s", r.Start, r.End, r.Kind)
}

// run is an interior S or D range. Runs are kept sorted by Start, disjoint,
// and coalesced (no two adjacent runs share a kind).
type run struct {
	start, end vtime.Timestamp
	kind       Kind
}

// Stream is a knowledge stream for a single pubend as seen by one node.
//
// The stream describes ticks strictly greater than its base; everything at
// or before the base has been consumed (delivered and acknowledged, or
// otherwise settled) and carries no information. Ticks in (base, loss] are
// L. Remaining ticks are S or D where a run records them and Q otherwise.
//
// Stream is not safe for concurrent use; owners serialize access.
type Stream struct {
	base vtime.Timestamp // ticks <= base are consumed
	loss vtime.Timestamp // ticks in (base, loss] are L; loss <= base means none
	runs []run

	// conflicts counts Apply calls that tried to overwrite S with D or
	// vice versa. A correct overlay never produces these; the counter
	// makes protocol bugs observable without corrupting knowledge.
	conflicts uint64
}

// NewStream returns a knowledge stream whose consumed prefix ends at base.
// All ticks after base start as Q.
func NewStream(base vtime.Timestamp) *Stream {
	return &Stream{base: base, loss: base}
}

// Base reports the consumed horizon: ticks at or before it are settled.
func (s *Stream) Base() vtime.Timestamp { return s.base }

// LossHorizon reports the end of the L prefix. If no ticks are lost it
// equals Base().
func (s *Stream) LossHorizon() vtime.Timestamp { return s.loss }

// Conflicts reports how many conflicting knowledge updates were ignored.
func (s *Stream) Conflicts() uint64 { return s.conflicts }

// Advance raises the consumed horizon to newBase, dropping all information
// at or before it. Advancing backwards is a no-op.
func (s *Stream) Advance(newBase vtime.Timestamp) {
	if newBase <= s.base {
		return
	}
	s.base = newBase
	if s.loss < newBase {
		s.loss = newBase
	}
	s.trimPrefix()
}

// SetLoss raises the loss horizon: all ticks in (Base, upTo] become L.
// The paper's release protocol guarantees upTo never exceeds what connected
// non-catchup subscribers have been delivered, but the stream itself
// accepts any horizon. Lowering the horizon is a no-op.
func (s *Stream) SetLoss(upTo vtime.Timestamp) {
	if upTo <= s.loss {
		return
	}
	s.loss = upTo
	s.trimPrefix()
}

// trimPrefix drops or clips runs at or below max(base, loss).
func (s *Stream) trimPrefix() {
	floor := s.base
	if s.loss > floor {
		floor = s.loss
	}
	i := 0
	for i < len(s.runs) && s.runs[i].end <= floor {
		i++
	}
	if i > 0 {
		s.runs = append(s.runs[:0], s.runs[i:]...)
	}
	if len(s.runs) > 0 && s.runs[0].start <= floor {
		s.runs[0].start = floor + 1
	}
}

// Kind reports the knowledge state of a single tick. Ticks at or before
// the base report L (they are in the settled past and no longer carry
// information).
func (s *Stream) Kind(ts vtime.Timestamp) Kind {
	if ts <= s.base || ts <= s.loss {
		return L
	}
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].end >= ts })
	if i < len(s.runs) && s.runs[i].start <= ts {
		return s.runs[i].kind
	}
	return Q
}

// Apply folds one knowledge range into the stream, honoring the
// "knowledge only increases" rule:
//
//   - L ranges raise the loss horizon to their end (L is always a prefix at
//     its source, so any L range implies everything before it is also L).
//   - S and D ranges fill Q ticks. Ticks already known as S or D keep
//     their kind; a disagreement increments the conflict counter.
//   - Q ranges are ignored: Q carries no knowledge.
func (s *Stream) Apply(r Range) {
	if r.Empty() || !r.Kind.Valid() {
		return
	}
	switch r.Kind {
	case Q:
		return
	case L:
		s.SetLoss(r.End)
		return
	}
	floor := s.base
	if s.loss > floor {
		floor = s.loss
	}
	if r.Start <= floor {
		r.Start = floor + 1
	}
	if r.Empty() {
		return
	}
	s.fill(r.Start, r.End, r.Kind)
}

// fill writes kind into every Q tick of [start, end], leaving known ticks
// untouched and counting conflicts.
func (s *Stream) fill(start, end vtime.Timestamp, kind Kind) {
	// Locate the first run that could overlap or follow start.
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].end >= start })
	cur := start
	for cur <= end {
		if i >= len(s.runs) || s.runs[i].start > end {
			// Everything from cur to end is Q: insert one run.
			s.insertRun(i, cur, end, kind)
			break
		}
		r := s.runs[i]
		if r.start > cur {
			// Q gap before the next run.
			gapEnd := vtime.MinTS(end, r.start-1)
			s.insertRun(i, cur, gapEnd, kind)
			// insertRun may have coalesced neighbors; re-locate.
			i = s.findRunIndex(gapEnd + 1)
			cur = gapEnd + 1
			continue
		}
		// Overlapping an existing run.
		if r.kind != kind {
			s.conflicts++
		}
		cur = r.end + 1
		i++
	}
}

// findRunIndex returns the index of the first run whose end >= ts.
func (s *Stream) findRunIndex(ts vtime.Timestamp) int {
	return sort.Search(len(s.runs), func(i int) bool { return s.runs[i].end >= ts })
}

// insertRun inserts [start,end]kind at position i, coalescing with
// neighbors of the same kind.
func (s *Stream) insertRun(i int, start, end vtime.Timestamp, kind Kind) {
	// Coalesce left.
	if i > 0 && s.runs[i-1].kind == kind && s.runs[i-1].end+1 == start {
		s.runs[i-1].end = end
		// Coalesce the merged run with the right neighbor too.
		if i < len(s.runs) && s.runs[i].kind == kind && s.runs[i].start == end+1 {
			s.runs[i-1].end = s.runs[i].end
			s.runs = append(s.runs[:i], s.runs[i+1:]...)
		}
		return
	}
	// Coalesce right.
	if i < len(s.runs) && s.runs[i].kind == kind && s.runs[i].start == end+1 {
		s.runs[i].start = start
		return
	}
	s.runs = append(s.runs, run{})
	copy(s.runs[i+1:], s.runs[i:])
	s.runs[i] = run{start: start, end: end, kind: kind}
}

// DoubtHorizon reports the highest timestamp h such that no tick in
// (Base, h] is Q. Events up to the doubt horizon can be delivered in
// sequence (paper, section 4.1). If the tick immediately after the base is
// Q, the horizon equals the base.
func (s *Stream) DoubtHorizon() vtime.Timestamp {
	h := s.base
	if s.loss > h {
		h = s.loss
	}
	i := s.findRunIndex(h + 1)
	for i < len(s.runs) && s.runs[i].start == h+1 {
		h = s.runs[i].end
		i++
	}
	return h
}

// FirstQGap returns the first maximal range of Q ticks inside (from, to],
// or ok=false if there is none. Nack generation uses it to request the
// earliest missing knowledge.
func (s *Stream) FirstQGap(from, to vtime.Timestamp) (Range, bool) {
	gaps := s.QGaps(from, to, 1)
	if len(gaps) == 0 {
		return Range{}, false
	}
	return gaps[0], true
}

// QGaps returns up to max maximal Q ranges inside (from, to], in time
// order. max <= 0 means no limit.
func (s *Stream) QGaps(from, to vtime.Timestamp, max int) []Range {
	floor := s.base
	if s.loss > floor {
		floor = s.loss
	}
	if from < floor {
		from = floor
	}
	if to <= from {
		return nil
	}
	var out []Range
	cur := from + 1
	i := s.findRunIndex(cur)
	for cur <= to {
		if max > 0 && len(out) == max {
			break
		}
		if i >= len(s.runs) || s.runs[i].start > to {
			out = append(out, Range{Start: cur, End: to, Kind: Q})
			break
		}
		r := s.runs[i]
		if r.start > cur {
			out = append(out, Range{Start: cur, End: r.start - 1, Kind: Q})
		}
		cur = r.end + 1
		i++
	}
	return out
}

// DTicks returns the timestamps of all D ticks in (from, to], in order.
func (s *Stream) DTicks(from, to vtime.Timestamp) []vtime.Timestamp {
	return s.DTicksAppend(nil, from, to)
}

// DTicksAppend appends the D ticks in (from, to] to dst and returns the
// extended slice. Callers on the hot delivery path pass a reusable buffer
// (dst[:0]) so steady-state constream advancement allocates nothing.
func (s *Stream) DTicksAppend(dst []vtime.Timestamp, from, to vtime.Timestamp) []vtime.Timestamp {
	out := dst
	i := s.findRunIndex(from + 1)
	for ; i < len(s.runs) && s.runs[i].start <= to; i++ {
		r := s.runs[i]
		if r.kind != D {
			continue
		}
		lo := vtime.MaxOfTS(r.start, from+1)
		hi := vtime.MinTS(r.end, to)
		for ts := lo; ts <= hi; ts++ {
			out = append(out, ts)
		}
	}
	return out
}

// Ranges materializes the complete knowledge of (from, to] as contiguous
// ranges covering every tick, including Q and L ranges. Used to encode
// knowledge messages for downstream links.
func (s *Stream) Ranges(from, to vtime.Timestamp) []Range {
	if to <= from {
		return nil
	}
	var out []Range
	cur := from + 1
	floor := s.base
	if s.loss > floor {
		floor = s.loss
	}
	if cur <= floor {
		end := vtime.MinTS(floor, to)
		out = append(out, Range{Start: cur, End: end, Kind: L})
		cur = end + 1
	}
	i := s.findRunIndex(cur)
	for cur <= to {
		if i >= len(s.runs) || s.runs[i].start > to {
			out = append(out, Range{Start: cur, End: to, Kind: Q})
			break
		}
		r := s.runs[i]
		if r.start > cur {
			out = append(out, Range{Start: cur, End: r.start - 1, Kind: Q})
		}
		end := vtime.MinTS(r.end, to)
		start := vtime.MaxOfTS(r.start, cur)
		if end >= start {
			out = append(out, Range{Start: start, End: end, Kind: r.kind})
		}
		cur = end + 1
		i++
	}
	return out
}

// KnownRanges is like Ranges but omits Q ranges; it is the set of ranges
// that actually carry knowledge and is what brokers propagate downstream.
func (s *Stream) KnownRanges(from, to vtime.Timestamp) []Range {
	all := s.Ranges(from, to)
	out := all[:0]
	for _, r := range all {
		if r.Kind != Q {
			out = append(out, r)
		}
	}
	return out
}

// RunCount reports the number of interior S/D runs; useful for asserting
// that coalescing keeps the structure compact.
func (s *Stream) RunCount() int { return len(s.runs) }

// String renders the stream compactly for debugging.
func (s *Stream) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "base=%d loss=%d", s.base, s.loss)
	for _, r := range s.runs {
		fmt.Fprintf(&b, " [%d,%d]%s", r.start, r.end, r.kind)
	}
	return b.String()
}

// checkInvariants validates internal structure; tests call it after
// mutation sequences.
func (s *Stream) checkInvariants() error {
	floor := s.base
	if s.loss > floor {
		floor = s.loss
	}
	prevEnd := floor
	var prevKind Kind
	for i, r := range s.runs {
		if r.start > r.end {
			return fmt.Errorf("run %d inverted: %v", i, r)
		}
		if r.start <= prevEnd {
			return fmt.Errorf("run %d overlaps or touches floor/previous: %v (prevEnd %d)", i, r, prevEnd)
		}
		if r.kind != S && r.kind != D {
			return fmt.Errorf("run %d has interior kind %v", i, r.kind)
		}
		if i > 0 && r.start == prevEnd+1 && r.kind == prevKind {
			return fmt.Errorf("run %d not coalesced with predecessor", i)
		}
		prevEnd, prevKind = r.end, r.kind
	}
	return nil
}
