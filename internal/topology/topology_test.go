package topology

import (
	"flag"
	"reflect"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/logvol"
	"repro/internal/overlay"
)

func fullSpec() *Spec {
	return &Spec{
		DataDir: "/tmp/topo",
		Brokers: []BrokerSpec{
			{
				Name: "phb", Listen: "127.0.0.1:0", Pubends: []uint32{1, 2},
				MaxRetainMillis: 500, SyncPublish: true, PubendSync: "group",
				GroupLingerMillis: 2, GroupCommitMaxBytes: 4096,
				TickMillis: 3, SilenceIntervalTicks: 1000,
				DialTimeoutMillis: 250, LeaveGraceMillis: 50,
				MetaCommitLatencyMillis: 1, ReadBufferQ: 100,
				EventCacheSize: 2048, RelayCacheSize: 8192, PFSSyncEvery: 10,
				PFSImpreciseBucketTicks: 64, Admin: "127.0.0.1:0",
				Tuning: Tuning{Shards: 2, SubShards: 3, CatchupWeight: 128, MatchEngine: "linear"},
			},
			{Name: "mid", Listen: "127.0.0.1:0", Upstream: "phb"},
			{Name: "edge", Listen: "127.0.0.1:0", Upstream: "mid", SHB: true, AllPubends: []uint32{1, 2}},
		},
		Mutations: []Mutation{
			{AtMillis: 100, Op: "kill", Broker: "mid"},
			{AtMillis: 200, Op: "reparent", Broker: "edge", Upstream: "phb"},
			{AtMillis: 300, Op: "restart", Broker: "mid"},
			{AtMillis: 400, Op: "detach", Broker: "mid"},
			{AtMillis: 500, Op: "add", Spec: &BrokerSpec{Name: "late", Listen: "127.0.0.1:0", Upstream: "phb"}},
		},
	}
}

// The spec must survive Marshal → Parse unchanged: every field the JSON
// surface claims to carry is actually carried.
func TestSpecRoundTrip(t *testing.T) {
	in := fullSpec()
	raw, err := in.Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	out, err := Parse(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in.Version = Version // Marshal stamps it
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"future version": `{"version": 99, "brokers": [{"name": "a", "listen": ":0"}]}`,
		"unknown field":  `{"brokers": [{"name": "a", "listen": ":0", "sahrds": 4}]}`,
		"no brokers":     `{"brokers": []}`,
		"dup name":       `{"brokers": [{"name": "a", "listen": ":0"}, {"name": "a", "listen": ":0"}]}`,
		"shb sans all":   `{"brokers": [{"name": "a", "listen": ":0", "shb": true}]}`,
		"bad sync":       `{"brokers": [{"name": "a", "listen": ":0", "pubendSync": "never"}]}`,
		"bad mutation":   `{"brokers": [{"name": "a", "listen": ":0"}], "mutations": [{"op": "explode"}]}`,
		"unknown target": `{"brokers": [{"name": "a", "listen": ":0"}], "mutations": [{"op": "kill", "broker": "b"}]}`,
		"add sans spec":  `{"brokers": [{"name": "a", "listen": ":0"}], "mutations": [{"op": "add"}]}`,
	}
	for name, raw := range cases {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Version 0 (bare hand-written files) reads as the current version.
	s, err := Parse([]byte(`{"brokers": [{"name": "a", "listen": ":0"}]}`))
	if err != nil {
		t.Fatalf("version 0: %v", err)
	}
	if s.Version != Version {
		t.Fatalf("version 0 normalized to %d, want %d", s.Version, Version)
	}
}

func TestBrokerConfig(t *testing.T) {
	tr := overlay.NewInprocNetwork(0)
	cfg, err := fullSpec().Brokers[0].BrokerConfig("/tmp/topo", tr)
	if err != nil {
		t.Fatalf("BrokerConfig: %v", err)
	}
	if cfg.DataDir != "/tmp/topo/phb" {
		t.Errorf("DataDir = %q", cfg.DataDir)
	}
	if cfg.TickInterval != 3*time.Millisecond || cfg.DialTimeout != 250*time.Millisecond ||
		cfg.LeaveGrace != 50*time.Millisecond || cfg.GroupCommitMaxDelay != 2*time.Millisecond {
		t.Errorf("durations: %+v", cfg)
	}
	if cfg.PubendSync != logvol.SyncGroup {
		t.Errorf("PubendSync = %v", cfg.PubendSync)
	}
	if len(cfg.HostedPubends) != 2 || !cfg.HostedPubends[0].SyncEveryPublish || cfg.HostedPubends[0].Policy == nil {
		t.Errorf("HostedPubends = %+v", cfg.HostedPubends)
	}
	if cfg.Shards != 2 || cfg.SubShards != 3 || cfg.CatchupWeight != 128 || cfg.MatchEngine != "linear" {
		t.Errorf("tuning: %+v", cfg)
	}
}

func TestFlagsSpec(t *testing.T) {
	fs := flag.NewFlagSet("broker", flag.ContinueOnError)
	f := RegisterFlags(fs)
	err := fs.Parse([]string{
		"-name", "edge1", "-listen", ":7071", "-upstream", "phb:7070",
		"-shb", "-all-pubends", "1, 2", "-tick", "2ms", "-max-retain", "1s",
		"-pubend-sync", "group", "-group-linger", "3ms", "-shards", "4",
		"-dial-timeout", "500ms", "-leave-grace", "100ms",
	})
	if err != nil {
		t.Fatalf("parse flags: %v", err)
	}
	spec, err := f.Spec()
	if err != nil {
		t.Fatalf("Spec: %v", err)
	}
	want := BrokerSpec{
		Name: "edge1", Listen: ":7071", Upstream: "phb:7070",
		SHB: true, AllPubends: []uint32{1, 2},
		MaxRetainMillis: 1000, PubendSync: "group", GroupLingerMillis: 3,
		TickMillis: 2, DialTimeoutMillis: 500, LeaveGraceMillis: 100,
		Tuning: Tuning{Shards: 4, MatchEngine: "indexed"},
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("spec mismatch:\n got: %+v\nwant: %+v", spec, want)
	}
}

// TestSpecCoversBrokerConfig is the spec lint: every broker.Config field
// must have an entry in ConfigFieldMap (a new Config knob cannot ship
// without deciding its spec surface), and the map must not name fields
// Config no longer has.
func TestSpecCoversBrokerConfig(t *testing.T) {
	cfgT := reflect.TypeOf(broker.Config{})
	fields := make(map[string]bool, cfgT.NumField())
	for i := 0; i < cfgT.NumField(); i++ {
		name := cfgT.Field(i).Name
		fields[name] = true
		if _, ok := ConfigFieldMap[name]; !ok {
			t.Errorf("broker.Config.%s has no topology.Spec mapping — add the field to BrokerSpec (or mark it \"(runtime)\") and record it in ConfigFieldMap", name)
		}
	}
	for name := range ConfigFieldMap {
		if !fields[name] {
			t.Errorf("ConfigFieldMap names %q, which broker.Config no longer has — delete the stale entry", name)
		}
	}
	// Every non-runtime mapping must correspond to a real JSON key of the
	// spec surface, so the map cannot rot into prose.
	keys := map[string]bool{"name": true} // Spec-level dataDir handled below
	collect := func(t reflect.Type) {
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Anonymous {
				continue
			}
			tag := f.Tag.Get("json")
			if comma := len(tag); comma > 0 {
				for j, r := range tag {
					if r == ',' {
						comma = j
						break
					}
				}
				keys[tag[:comma]] = true
			}
		}
	}
	collect(reflect.TypeOf(BrokerSpec{}))
	collect(reflect.TypeOf(Tuning{}))
	collect(reflect.TypeOf(Spec{}))
	for field, surface := range ConfigFieldMap {
		if surface == "(runtime)" {
			continue
		}
		for _, part := range splitSurface(surface) {
			if !keys[part] {
				t.Errorf("ConfigFieldMap[%q] references %q, which is not a JSON key of the spec", field, part)
			}
		}
	}
}

// splitSurface extracts the JSON key tokens of a ConfigFieldMap value
// (e.g. "dataDir (Spec) + name" → ["dataDir", "name"]).
func splitSurface(s string) []string {
	var out []string
	cur := ""
	flush := func() {
		if cur != "" && cur != "(Spec)" && cur != "+" {
			out = append(out, cur)
		}
		cur = ""
	}
	for _, r := range s {
		if r == ' ' {
			flush()
			continue
		}
		cur += string(r)
	}
	flush()
	return out
}
