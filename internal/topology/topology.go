// Package topology is the single configuration surface for broker trees:
// one spec type consumed by cmd/broker (flags), cmd/cluster (JSON file +
// timed mutations), and the experiment harness. Before this package the
// three surfaces drifted independently — every new broker knob had to be
// added to the root facade config, the cluster JSON schema, and the
// per-knob flags by hand, and each grew its own defaults. Now broker.Config
// is produced in exactly one place (BrokerSpec.BrokerConfig), and the
// mapping from every Config field to its spec surface is recorded in
// ConfigFieldMap and enforced by a reflection test, so an unmapped field
// fails CI instead of silently diverging.
//
// The spec is versioned: Version 1 is the current schema (0 is accepted as
// 1 for bare hand-written files); unknown versions and unknown JSON fields
// are rejected, so typos fail loudly.
package topology

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/logvol"
	"repro/internal/overlay"
	"repro/internal/pubend"
	"repro/internal/vtime"
)

// Version is the current spec schema version.
const Version = 1

// Tuning is the performance-knob subset shared by every consumer: the
// experiment harness embeds it directly (instead of mirroring each field),
// and BrokerSpec embeds it for the JSON/flag surfaces.
type Tuning struct {
	// Shards is the broker event-loop shard count (0 = GOMAXPROCS,
	// 1 = the serialized single-loop broker).
	Shards int `json:"shards,omitempty"`
	// SubShards is the SHB subscriber shard count (0 = engine default
	// min(GOMAXPROCS, 8), 1 = the single-lock engine).
	SubShards int `json:"subShards,omitempty"`
	// CatchupWeight is the catchup scheduler quantum: events one catchup
	// stream may deliver per round before yielding to live traffic
	// (0 = engine default 256).
	CatchupWeight int `json:"catchupWeight,omitempty"`
	// MatchEngine selects the subscription matching engine: "" or
	// "indexed" for the counting attribute index, "linear" for the
	// brute-force scan.
	MatchEngine string `json:"matchEngine,omitempty"`
}

// Apply copies the tuning knobs onto a broker config.
func (t Tuning) Apply(cfg *broker.Config) {
	cfg.Shards = t.Shards
	cfg.SubShards = t.SubShards
	cfg.CatchupWeight = t.CatchupWeight
	cfg.MatchEngine = t.MatchEngine
}

// BrokerSpec describes one broker of a topology. Its zero value plus Name
// and Listen is a valid relay; timing knobs are integers in the unit their
// name states (JSON has no duration type).
type BrokerSpec struct {
	// Name identifies the broker (required, unique within a Spec); it is
	// also the broker's data subdirectory and, on the in-process
	// transport, its listen address.
	Name string `json:"name"`
	// Listen is the bind address (required; "127.0.0.1:0" for an
	// ephemeral TCP port, the broker name under the in-process transport).
	Listen string `json:"listen"`
	// Upstream is the parent: another broker's Name (resolved to its
	// bound address by the cluster driver) or a literal dial address.
	// Empty means root.
	Upstream string `json:"upstream,omitempty"`
	// Pubends are hosted pubend IDs (PHB role).
	Pubends []uint32 `json:"pubends,omitempty"`
	// SHB hosts durable subscribers; requires AllPubends.
	SHB bool `json:"shb,omitempty"`
	// AllPubends is the system-wide pubend ID set (required with SHB).
	AllPubends []uint32 `json:"allPubends,omitempty"`
	// MaxRetainMillis enables the early-release policy on hosted pubends
	// (virtual milliseconds; 0 = retain until released).
	MaxRetainMillis int64 `json:"maxRetainMillis,omitempty"`
	// SyncPublish fsyncs the event log on every publish.
	SyncPublish bool `json:"syncPublish,omitempty"`
	// PubendSync is the event-log durability policy: "" or "explicit",
	// "group" (batch concurrent publishes under one fsync), "always".
	PubendSync string `json:"pubendSync,omitempty"`
	// GroupLingerMillis is the group-commit linger window.
	GroupLingerMillis int64 `json:"groupLingerMillis,omitempty"`
	// GroupCommitMaxBytes caps payload bytes per group-commit batch.
	GroupCommitMaxBytes int `json:"groupCommitMaxBytes,omitempty"`
	// TickMillis overrides the housekeeping interval.
	TickMillis int64 `json:"tickMillis,omitempty"`
	// SilenceIntervalTicks is the SHB silence cadence in virtual ticks.
	SilenceIntervalTicks int64 `json:"silenceIntervalTicks,omitempty"`
	// DialTimeoutMillis bounds upstream dials (0 = unbounded).
	DialTimeoutMillis int64 `json:"dialTimeoutMillis,omitempty"`
	// LeaveGraceMillis is how long a parent retains a deliberately
	// departed child's soft state (0 = broker default 250ms).
	LeaveGraceMillis int64 `json:"leaveGraceMillis,omitempty"`
	// MetaCommitLatencyMillis models the SHB database commit cost.
	MetaCommitLatencyMillis int64 `json:"metaCommitLatencyMillis,omitempty"`
	// ReadBufferQ is the SHB PFS read buffer (0 = engine default).
	ReadBufferQ int `json:"readBufferQ,omitempty"`
	// EventCacheSize is the SHB engine event cache (0 = engine default).
	EventCacheSize int `json:"eventCacheSize,omitempty"`
	// RelayCacheSize bounds intermediate relay caches (0 = 65536).
	RelayCacheSize int `json:"relayCacheSize,omitempty"`
	// PFSSyncEvery syncs the PFS every N writes (0 = engine default).
	PFSSyncEvery int `json:"pfsSyncEvery,omitempty"`
	// PFSImpreciseBucketTicks enables the PFS imprecise mode (0 =
	// precise).
	PFSImpreciseBucketTicks int64 `json:"pfsImpreciseBucketTicks,omitempty"`
	// Admin is the admin HTTP address for /metrics, /healthz,
	// /debug/pprof ("" = disabled).
	Admin string `json:"admin,omitempty"`
	// Parents are candidate parents for automatic fail-over, in
	// preference order: broker Names (resolved to bound addresses by the
	// cluster driver) or literal dial addresses. Requires Upstream.
	Parents []string `json:"parents,omitempty"`
	// FailoverAfterMillis arms automatic fail-over: how long the upstream
	// link must stay down before a candidate parent is adopted (0 =
	// disabled).
	FailoverAfterMillis int64 `json:"failoverAfterMillis,omitempty"`
	// FailoverHolddownMillis is the minimum spacing between automatic
	// re-parents (0 = 4× failoverAfterMillis).
	FailoverHolddownMillis int64 `json:"failoverHolddownMillis,omitempty"`
	// PreferPrimary returns the broker to its declared upstream when that
	// parent comes back after a fail-over.
	PreferPrimary bool `json:"preferPrimary,omitempty"`
	// FailoverSeed seeds the fail-over jitter deterministically (0 =
	// derived from the broker name).
	FailoverSeed int64 `json:"failoverSeed,omitempty"`

	Tuning
}

// Mutation is one timed topology change applied by the cluster driver
// (tentpole: runtime membership). Ops:
//
//   - "add": start Spec (required) at AtMillis; Upstream on the spec may
//     name a running broker.
//   - "kill": Crash the named Broker (persistent state survives).
//     Permanent marks the kill as final: the broker may not be
//     restarted later in the schedule, so its subtree must repair
//     around it for good.
//   - "restart": start the named Broker again from its original spec and
//     data directory.
//   - "reparent": SetUpstream the named Broker to Upstream (a broker name
//     or a literal address).
//   - "detach": DetachUpstream the named Broker (it becomes a root).
type Mutation struct {
	// AtMillis is when the mutation fires, relative to driver start.
	AtMillis int64 `json:"atMillis"`
	// Op is the mutation kind (see above).
	Op string `json:"op"`
	// Broker names the target (all ops except add).
	Broker string `json:"broker,omitempty"`
	// Upstream is the new parent for reparent (broker name or address).
	Upstream string `json:"upstream,omitempty"`
	// Spec is the broker to start (add only).
	Spec *BrokerSpec `json:"spec,omitempty"`
	// Permanent marks a kill as non-restartable (kill only): the
	// schedule may never restart this broker afterwards.
	Permanent bool `json:"permanent,omitempty"`
}

// Spec is a whole topology: brokers in start order (parents first) plus
// optional timed mutations.
type Spec struct {
	// Version is the schema version (0 is read as 1).
	Version int `json:"version,omitempty"`
	// DataDir is the root data directory; each broker uses DataDir/Name.
	DataDir string `json:"dataDir,omitempty"`
	// Brokers start in order.
	Brokers []BrokerSpec `json:"brokers"`
	// Mutations are applied by the cluster driver after startup.
	Mutations []Mutation `json:"mutations,omitempty"`
}

// Parse decodes and validates a spec. Unknown fields and unknown versions
// are errors.
func Parse(raw []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("topology: parse: %w", err)
	}
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Version != Version {
		return nil, fmt.Errorf("topology: unsupported spec version %d (this build reads %d)", s.Version, Version)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal encodes the spec (always stamping the current version).
func (s *Spec) Marshal() ([]byte, error) {
	cp := *s
	cp.Version = Version
	return json.MarshalIndent(&cp, "", "  ")
}

// Validate checks cross-field invariants.
func (s *Spec) Validate() error {
	if len(s.Brokers) == 0 {
		return fmt.Errorf("topology: no brokers")
	}
	names := make(map[string]bool, len(s.Brokers))
	for i := range s.Brokers {
		bs := &s.Brokers[i]
		if err := bs.validate(); err != nil {
			return err
		}
		if names[bs.Name] {
			return fmt.Errorf("topology: duplicate broker name %q", bs.Name)
		}
		names[bs.Name] = true
	}
	// Candidate parents may name brokers that an "add" mutation brings up
	// later, so collect every declared name before cross-checking.
	allNames := make(map[string]bool, len(names))
	for n := range names {
		allNames[n] = true
	}
	for _, m := range s.Mutations {
		if m.Op == "add" && m.Spec != nil && m.Spec.Name != "" {
			allNames[m.Spec.Name] = true
		}
	}
	for i := range s.Brokers {
		if err := s.Brokers[i].validateParents(allNames); err != nil {
			return err
		}
	}
	dead := make(map[string]bool) // permanently killed so far in schedule order
	for i, m := range s.Mutations {
		switch m.Op {
		case "add":
			if m.Spec == nil {
				return fmt.Errorf("topology: mutation %d: add needs a spec", i)
			}
			if err := m.Spec.validate(); err != nil {
				return fmt.Errorf("topology: mutation %d: %w", i, err)
			}
			if names[m.Spec.Name] {
				return fmt.Errorf("topology: mutation %d: add reuses broker name %q", i, m.Spec.Name)
			}
			names[m.Spec.Name] = true
			if err := m.Spec.validateParents(allNames); err != nil {
				return fmt.Errorf("topology: mutation %d: %w", i, err)
			}
		case "kill":
			if !names[m.Broker] {
				return fmt.Errorf("topology: mutation %d: kill targets unknown broker %q", i, m.Broker)
			}
			if m.Permanent {
				dead[m.Broker] = true
			}
		case "restart":
			if !names[m.Broker] {
				return fmt.Errorf("topology: mutation %d: restart targets unknown broker %q", i, m.Broker)
			}
			if dead[m.Broker] {
				return fmt.Errorf("topology: mutation %d: restart of %q after a permanent kill", i, m.Broker)
			}
		case "detach":
			if !names[m.Broker] {
				return fmt.Errorf("topology: mutation %d: %s targets unknown broker %q", i, m.Op, m.Broker)
			}
		case "reparent":
			if !names[m.Broker] {
				return fmt.Errorf("topology: mutation %d: reparent targets unknown broker %q", i, m.Broker)
			}
			if m.Upstream == "" {
				return fmt.Errorf("topology: mutation %d: reparent needs an upstream", i)
			}
		default:
			return fmt.Errorf("topology: mutation %d: unknown op %q", i, m.Op)
		}
		if m.Permanent && m.Op != "kill" {
			return fmt.Errorf("topology: mutation %d: permanent is only valid on kill", i)
		}
	}
	return nil
}

func (bs *BrokerSpec) validate() error {
	if bs.Name == "" || bs.Listen == "" {
		return fmt.Errorf("topology: broker name and listen are required")
	}
	if bs.SHB && len(bs.AllPubends) == 0 {
		return fmt.Errorf("topology: broker %q: shb requires allPubends", bs.Name)
	}
	if _, err := syncPolicy(bs.PubendSync); err != nil {
		return fmt.Errorf("topology: broker %q: %w", bs.Name, err)
	}
	if len(bs.Parents) > 0 && bs.Upstream == "" {
		return fmt.Errorf("topology: broker %q: parents require an upstream (a root has nothing to fail over from)", bs.Name)
	}
	return nil
}

// validateParents cross-checks the candidate-parent list against the set
// of every declared broker name (initial brokers plus add mutations).
// Entries containing ":" are literal dial addresses and pass through, the
// same convention the cluster driver uses to resolve Upstream.
func (bs *BrokerSpec) validateParents(declared map[string]bool) error {
	for _, p := range bs.Parents {
		if p == bs.Name {
			return fmt.Errorf("topology: broker %q: parents lists the broker itself", bs.Name)
		}
		if !strings.Contains(p, ":") && !declared[p] {
			return fmt.Errorf("topology: broker %q: parent candidate %q is not a declared broker", bs.Name, p)
		}
	}
	return nil
}

func syncPolicy(s string) (logvol.SyncPolicy, error) {
	switch s {
	case "", "explicit":
		return logvol.SyncExplicit, nil
	case "group":
		return logvol.SyncGroup, nil
	case "always":
		return logvol.SyncAlways, nil
	default:
		return 0, fmt.Errorf("unknown pubendSync policy %q (want explicit, group, or always)", s)
	}
}

// BrokerConfig materializes the runtime config: everything declarative
// comes from the spec; the transport (and through it the network) is the
// caller's. The broker's data directory is dataDir/Name.
func (bs BrokerSpec) BrokerConfig(dataDir string, t overlay.Transport) (broker.Config, error) {
	if err := bs.validate(); err != nil {
		return broker.Config{}, err
	}
	policy, err := syncPolicy(bs.PubendSync)
	if err != nil {
		return broker.Config{}, err
	}
	cfg := broker.Config{
		Name:                bs.Name,
		Transport:           t,
		ListenAddr:          bs.Listen,
		UpstreamAddr:        bs.Upstream,
		EnableSHB:           bs.SHB,
		TickInterval:        time.Duration(bs.TickMillis) * time.Millisecond,
		SilenceInterval:     vtime.Timestamp(bs.SilenceIntervalTicks),
		DialTimeout:         time.Duration(bs.DialTimeoutMillis) * time.Millisecond,
		LeaveGrace:          time.Duration(bs.LeaveGraceMillis) * time.Millisecond,
		MetaCommitLatency:   time.Duration(bs.MetaCommitLatencyMillis) * time.Millisecond,
		ReadBufferQ:         bs.ReadBufferQ,
		EventCacheSize:      bs.EventCacheSize,
		RelayCacheSize:      bs.RelayCacheSize,
		PFSSyncEvery:        bs.PFSSyncEvery,
		PFSImpreciseBucket:  vtime.Timestamp(bs.PFSImpreciseBucketTicks),
		PubendSync:          policy,
		GroupCommitMaxBytes: bs.GroupCommitMaxBytes,
		GroupCommitMaxDelay: time.Duration(bs.GroupLingerMillis) * time.Millisecond,
		AdminAddr:           bs.Admin,
		Parents:             append([]string(nil), bs.Parents...),
		FailoverAfter:       time.Duration(bs.FailoverAfterMillis) * time.Millisecond,
		FailoverHolddown:    time.Duration(bs.FailoverHolddownMillis) * time.Millisecond,
		PreferPrimary:       bs.PreferPrimary,
		FailoverSeed:        bs.FailoverSeed,
	}
	bs.Tuning.Apply(&cfg)
	if dataDir != "" {
		cfg.DataDir = joinPath(dataDir, bs.Name)
	}
	var retain pubend.Policy
	if bs.MaxRetainMillis > 0 {
		retain = pubend.MaxRetain{Retain: vtime.Timestamp(bs.MaxRetainMillis) * vtime.TicksPerMilli}
	}
	for _, id := range bs.Pubends {
		cfg.HostedPubends = append(cfg.HostedPubends, broker.PubendConfig{
			ID:               vtime.PubendID(id),
			Policy:           retain,
			SyncEveryPublish: bs.SyncPublish,
		})
	}
	for _, id := range bs.AllPubends {
		cfg.AllPubends = append(cfg.AllPubends, vtime.PubendID(id))
	}
	return cfg, nil
}

// joinPath is filepath.Join without the import knot (specs never contain
// ".." cleanup cases worth preserving).
func joinPath(dir, name string) string {
	if dir == "" {
		return name
	}
	return dir + "/" + name
}

// ConfigFieldMap records, for every broker.Config field, which spec surface
// sets it — the explicit flag/JSON mapping the spec lint enforces. Fields
// marked "(runtime)" are process-level wiring that a declarative spec
// cannot carry (function values, the transport); the others name the
// BrokerSpec/Spec JSON key (which is also the basis of the flag name in
// cmd/broker: camelCase key → kebab-case flag).
var ConfigFieldMap = map[string]string{
	"Name":                "name",
	"DataDir":             "dataDir (Spec) + name",
	"Transport":           "(runtime)",
	"ListenAddr":          "listen",
	"UpstreamAddr":        "upstream",
	"DialTimeout":         "dialTimeoutMillis",
	"LeaveGrace":          "leaveGraceMillis",
	"HostedPubends":       "pubends + maxRetainMillis + syncPublish",
	"AllPubends":          "allPubends",
	"EnableSHB":           "shb",
	"TickInterval":        "tickMillis",
	"SilenceInterval":     "silenceIntervalTicks",
	"ReadBufferQ":         "readBufferQ",
	"EventCacheSize":      "eventCacheSize",
	"PFSSyncEvery":        "pfsSyncEvery",
	"PFSImpreciseBucket":  "pfsImpreciseBucketTicks",
	"RelayCacheSize":      "relayCacheSize",
	"MatchEngine":         "matchEngine",
	"SubShards":           "subShards",
	"CatchupWeight":       "catchupWeight",
	"MetaCommitLatency":   "metaCommitLatencyMillis",
	"OnCaughtUp":          "(runtime)",
	"Shards":              "shards",
	"PubendSync":          "pubendSync",
	"GroupCommitMaxBytes": "groupCommitMaxBytes",
	"GroupCommitMaxDelay": "groupLingerMillis",
	"AdminAddr":           "admin",
	"Parents":             "parents",
	"FailoverAfter":       "failoverAfterMillis",
	"FailoverHolddown":    "failoverHolddownMillis",
	"PreferPrimary":       "preferPrimary",
	"FailoverSeed":        "failoverSeed",
}
