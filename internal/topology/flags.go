package topology

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Flags binds the single-broker flag surface of cmd/broker onto a
// BrokerSpec: every flag is the kebab-case form of the spec's JSON key, so
// the two surfaces cannot drift. Duration-valued flags are kept as real
// durations for ergonomics and folded into the spec's integer-millisecond
// fields by Spec().
type Flags struct {
	// DataDir is the -data flag (the Spec-level dataDir; the broker's own
	// directory is DataDir/name, as everywhere else).
	DataDir string

	spec             BrokerSpec
	pubends          string
	allPubends       string
	parents          string
	tick             time.Duration
	maxRetain        time.Duration
	groupLinger      time.Duration
	dialTimeout      time.Duration
	leaveGrace       time.Duration
	failoverAfter    time.Duration
	failoverHolddown time.Duration
}

// RegisterFlags installs the broker flags on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.spec.Name, "name", "broker", "broker name")
	fs.StringVar(&f.spec.Listen, "listen", ":7070", "TCP listen address")
	fs.StringVar(&f.spec.Upstream, "upstream", "", "parent broker address (empty = root)")
	fs.StringVar(&f.DataDir, "data", "", "data directory (required for -pubends / -shb; broker state lands in <data>/<name>)")
	fs.StringVar(&f.pubends, "pubends", "", "comma-separated pubend IDs hosted here (PHB role)")
	fs.BoolVar(&f.spec.SHB, "shb", false, "host durable subscribers (SHB role)")
	fs.StringVar(&f.allPubends, "all-pubends", "", "comma-separated system-wide pubend IDs (required with -shb)")
	fs.DurationVar(&f.tick, "tick", 5*time.Millisecond, "housekeeping interval")
	fs.DurationVar(&f.maxRetain, "max-retain", 0, "early-release retention bound (0 = retain until released)")
	fs.BoolVar(&f.spec.SyncPublish, "sync-publish", false, "fsync the event log on every publish")
	fs.StringVar(&f.spec.PubendSync, "pubend-sync", "explicit", "pubend log durability: explicit (fsync only on request), group (batch concurrent publishes under one fsync), or always (fsync every append)")
	fs.DurationVar(&f.groupLinger, "group-linger", 0, "max time a group commit waits for more publishes before fsyncing (0 = none; millisecond granularity)")
	fs.StringVar(&f.spec.Admin, "admin", "", "admin HTTP address for /metrics, /healthz, /debug/pprof (empty = disabled)")
	fs.IntVar(&f.spec.Shards, "shards", 0, "event-loop shard count (0 = GOMAXPROCS, 1 = serialized)")
	fs.StringVar(&f.spec.MatchEngine, "match-engine", "indexed", "subscription matching engine: indexed (counting attribute index) or linear (brute-force scan)")
	fs.IntVar(&f.spec.SubShards, "sub-shards", 0, "SHB subscriber shard count (0 = min(GOMAXPROCS, 8), 1 = single-lock engine)")
	fs.IntVar(&f.spec.CatchupWeight, "catchup-weight", 0, "catchup scheduler quantum: events one catchup stream may deliver per round before yielding to live traffic (0 = 256)")
	fs.DurationVar(&f.dialTimeout, "dial-timeout", 0, "upstream dial bound, initial and supervised reconnects (0 = unbounded)")
	fs.DurationVar(&f.leaveGrace, "leave-grace", 0, "how long to retain a deliberately departed child's soft state (0 = 250ms)")
	fs.StringVar(&f.parents, "parents", "", "comma-separated candidate parent addresses for automatic fail-over, in preference order (requires -upstream and -failover-after)")
	fs.DurationVar(&f.failoverAfter, "failover-after", 0, "how long the upstream link must stay down before failing over to a candidate parent (0 = disabled)")
	fs.DurationVar(&f.failoverHolddown, "failover-holddown", 0, "minimum spacing between automatic re-parents (0 = 4x failover-after)")
	fs.BoolVar(&f.spec.PreferPrimary, "prefer-primary", false, "return to the declared upstream when it comes back after a fail-over")
	fs.Int64Var(&f.spec.FailoverSeed, "failover-seed", 0, "deterministic fail-over jitter seed (0 = derived from the broker name)")
	return f
}

// Spec folds the parsed flags into a validated BrokerSpec.
func (f *Flags) Spec() (BrokerSpec, error) {
	spec := f.spec
	spec.TickMillis = f.tick.Milliseconds()
	spec.MaxRetainMillis = f.maxRetain.Milliseconds()
	spec.GroupLingerMillis = f.groupLinger.Milliseconds()
	spec.DialTimeoutMillis = f.dialTimeout.Milliseconds()
	spec.LeaveGraceMillis = f.leaveGrace.Milliseconds()
	spec.FailoverAfterMillis = f.failoverAfter.Milliseconds()
	spec.FailoverHolddownMillis = f.failoverHolddown.Milliseconds()
	if f.parents != "" {
		for _, p := range strings.Split(f.parents, ",") {
			if p = strings.TrimSpace(p); p != "" {
				spec.Parents = append(spec.Parents, p)
			}
		}
	}
	var err error
	if spec.Pubends, err = ParsePubendIDs(f.pubends); err != nil {
		return BrokerSpec{}, fmt.Errorf("-pubends: %w", err)
	}
	if spec.AllPubends, err = ParsePubendIDs(f.allPubends); err != nil {
		return BrokerSpec{}, fmt.Errorf("-all-pubends: %w", err)
	}
	if err := spec.validate(); err != nil {
		return BrokerSpec{}, err
	}
	return spec, nil
}

// ParsePubendIDs parses a comma-separated pubend ID list ("" = none).
func ParsePubendIDs(s string) ([]uint32, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad pubend id %q: %w", part, err)
		}
		out = append(out, uint32(id))
	}
	return out, nil
}
