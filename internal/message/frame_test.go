package message

import (
	"encoding/binary"
	"testing"

	"repro/internal/vtime"
)

// TestAppendFramedBatch frames several messages back-to-back the way the
// TCP write coalescer does and re-parses them frame by frame.
func TestAppendFramedBatch(t *testing.T) {
	bufp := GetEncodeBuffer()
	defer PutEncodeBuffer(bufp)
	buf := (*bufp)[:0]
	var err error
	for i := 1; i <= 4; i++ {
		ct := vtime.NewCheckpointToken()
		ct.Set(1, vtime.Timestamp(i))
		if buf, err = AppendFramed(buf, &Ack{Subscriber: vtime.SubscriberID(i), CT: ct}); err != nil {
			t.Fatal(err)
		}
	}
	*bufp = buf
	for i := 1; i <= 4; i++ {
		if len(buf) < FrameHeaderLen {
			t.Fatalf("frame %d: only %d bytes left", i, len(buf))
		}
		n := binary.BigEndian.Uint32(buf)
		body := buf[FrameHeaderLen : FrameHeaderLen+int(n)]
		m, err := Decode(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := m.(*Ack).Subscriber; got != vtime.SubscriberID(i) {
			t.Fatalf("frame %d decoded as subscriber %d", i, got)
		}
		buf = buf[FrameHeaderLen+int(n):]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after last frame", len(buf))
	}
}

// TestEncodeBufferPoolReuse: pooled buffers come back empty and oversized
// buffers are dropped rather than pinned by the pool.
func TestEncodeBufferPoolReuse(t *testing.T) {
	p := GetEncodeBuffer()
	*p = append(*p, 1, 2, 3)
	PutEncodeBuffer(p)
	q := GetEncodeBuffer()
	if len(*q) != 0 {
		t.Fatalf("pooled buffer returned with len %d", len(*q))
	}
	PutEncodeBuffer(q)

	big := make([]byte, 0, maxPooledBuf+1)
	PutEncodeBuffer(&big) // must not panic; silently dropped
	PutEncodeBuffer(nil)  // tolerated
}
