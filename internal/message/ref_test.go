package message

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/filter"
	"repro/internal/vtime"
)

func TestRefLifecycle(t *testing.T) {
	SetRefAccounting(true)
	defer SetRefAccounting(false)
	start := OutstandingRefs()

	r := AcquireRef(100)
	if len(r.Bytes()) != 100 {
		t.Fatalf("acquired %d bytes, want 100", len(r.Bytes()))
	}
	if got := OutstandingRefs() - start; got != 1 {
		t.Fatalf("outstanding after acquire: %d, want 1", got)
	}
	gen := r.Generation()
	r.Retain()
	r.Release()
	if r.Generation() != gen {
		t.Fatal("generation changed while references remain")
	}
	r.Release() // final: recycles
	if r.Generation() == gen {
		t.Fatal("generation unchanged after final release")
	}
	if got := OutstandingRefs() - start; got != 0 {
		t.Fatalf("outstanding after drain: %d, want 0", got)
	}

	// Oversized buffers are refcounted but never pooled.
	big := AcquireRef(maxPooledBuf + 1)
	if len(big.Bytes()) != maxPooledBuf+1 {
		t.Fatalf("oversized acquire returned %d bytes", len(big.Bytes()))
	}
	big.Release()
	if got := OutstandingRefs() - start; got != 0 {
		t.Fatalf("outstanding after oversized drain: %d, want 0", got)
	}

	// Nil refs are inert: events decoded by copy take this path.
	var nilRef *Ref
	nilRef.Retain()
	nilRef.Release()
}

func TestRefAccountingPanics(t *testing.T) {
	SetRefAccounting(true)
	defer SetRefAccounting(false)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic under accounting", name)
			}
		}()
		f()
	}

	r := AcquireRef(8)
	r.Release()
	mustPanic("double release", func() { r.refs.Store(0); r.Release() })
	mustPanic("retain after free", func() { r.refs.Store(0); r.Retain() })
	// Repair the counter so the pooled Ref is reusable.
	r.refs.Store(0)
}

// refBackedKnowledge encodes a Knowledge frame and decodes it through the
// shared-buffer path, returning the decoded message and its backing Ref
// (one reference, owned by the caller).
func refBackedKnowledge(t *testing.T, m *Knowledge) (*Knowledge, *Ref) {
	t.Helper()
	enc, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	ref := AcquireRef(len(enc))
	copy(ref.Bytes(), enc)
	got, err := DecodeShared(ref)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := got.(*Knowledge)
	if !ok {
		t.Fatalf("decoded %T, want *Knowledge", got)
	}
	return k, ref
}

// TestDecodeSharedAliasesKnowledgePayloads verifies the decode-once
// contract: events decoded from a shared frame buffer alias it (no payload
// copy), carry the Ref for retention, and Clone is the copying escape
// hatch that detaches from the buffer's lifetime.
func TestDecodeSharedAliasesKnowledgePayloads(t *testing.T) {
	m := &Knowledge{Pubend: 7, Events: []*Event{sampleEvent(), sampleEvent()}}
	m.Events[1].Payload = []byte("second payload")
	k, ref := refBackedKnowledge(t, m)
	defer ref.Release()

	if len(k.Events) != 2 {
		t.Fatalf("decoded %d events, want 2", len(k.Events))
	}
	for i, ev := range k.Events {
		if !eventsEqual(ev, m.Events[i]) {
			t.Fatalf("event %d corrupted by aliasing decode", i)
		}
		if ev.ref != ref {
			t.Fatalf("event %d does not carry the frame ref", i)
		}
	}
	// Prove the alias: corrupting the frame buffer must show through the
	// event payloads, and a Clone taken beforehand must not care.
	clone := k.Events[0].Clone()
	if clone.ref != nil {
		t.Fatal("clone kept the frame ref; must own its bytes")
	}
	want := append([]byte(nil), k.Events[0].Payload...)
	for i := range ref.Bytes() {
		ref.Bytes()[i] ^= 0xff
	}
	if bytes.Equal(k.Events[0].Payload, want) {
		t.Fatal("payload did not alias the frame buffer")
	}
	if !bytes.Equal(clone.Payload, want) {
		t.Fatal("clone payload followed the frame buffer; copy expected")
	}
}

// TestDecodeSharedNonKnowledgeCopies pins the aliasing boundary: only
// knowledge frames (broker-to-broker fan-out) decode zero-copy; client-
// bound frames keep copy semantics so client code may hold payloads
// indefinitely without a refcount protocol.
func TestDecodeSharedNonKnowledgeCopies(t *testing.T) {
	m := &Deliver{Deliveries: []Delivery{{Kind: DeliverEvent, Event: sampleEvent()}}}
	enc, err := Encode(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	ref := AcquireRef(len(enc))
	copy(ref.Bytes(), enc)
	got, err := DecodeShared(ref)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got.(*Deliver)
	if !ok {
		t.Fatalf("decoded %T, want *Deliver", got)
	}
	ev := d.Deliveries[0].Event
	if ev.ref != nil {
		t.Fatal("client-bound event carries a frame ref; must be a copy")
	}
	want := append([]byte(nil), ev.Payload...)
	for i := range ref.Bytes() {
		ref.Bytes()[i] ^= 0xff
	}
	if !bytes.Equal(ev.Payload, want) {
		t.Fatal("client-bound payload aliased the frame buffer")
	}
	ref.Release()
}

// TestWireDecodeAllocsGate is the allocation regression gate for the
// broker-ingress decode path: one knowledge frame of 64 events decoded
// through the shared buffer. Payload bytes no longer allocate (they alias
// the frame Ref); what remains is the per-event Event struct, attribute
// map, and string header costs. Reintroducing a payload copy adds a full
// allocation per event and trips the gate.
func TestWireDecodeAllocsGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	const batch = 64
	know := &Knowledge{Pubend: 1}
	payload := make([]byte, 512)
	for i := 0; i < batch; i++ {
		know.Events = append(know.Events, &Event{
			Pubend:    1,
			Timestamp: vtime.Timestamp(i + 1),
			Attrs:     filter.Attributes{"group": filter.String("g0")},
			Payload:   payload,
		})
	}
	enc, err := Encode(nil, know)
	if err != nil {
		t.Fatal(err)
	}
	ref := AcquireRef(len(enc))
	copy(ref.Bytes(), enc)
	avg := testing.AllocsPerRun(30, func() {
		if _, err := DecodeShared(ref); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := avg / batch
	t.Logf("wire decode: %.2f allocs/event (batch %d, 512 B payloads)", perEvent, batch)
	// Measured ~5 allocs/event (Event struct, attrs map, attr string keys
	// and values); a payload copy or per-event slice header regression
	// adds at least one more and must trip the gate.
	const maxAllocsPerEvent = 6.0
	if perEvent > maxAllocsPerEvent {
		t.Errorf("wire decode allocates %.2f/event, gate is %.1f", perEvent, maxAllocsPerEvent)
	}
	ref.Release()
}

// TestRefConcurrentRetainRelease hammers one Ref's count from many
// goroutines mimicking the real holder mix (cache pins, queued writer
// frames, relay entries) and asserts the buffer survives to a clean drain.
// Run under -race this doubles as the memory-model check for the
// retain/release fast paths.
func TestRefConcurrentRetainRelease(t *testing.T) {
	SetRefAccounting(true)
	defer SetRefAccounting(false)
	start := OutstandingRefs()
	const (
		workers = 8
		rounds  = 2000
	)
	for iter := 0; iter < 20; iter++ {
		r := AcquireRef(64)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			r.Retain() // worker's base reference, held until it exits
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					r.Retain()
					_ = r.Bytes()[0]
					r.Release()
				}
				r.Release()
			}()
		}
		wg.Wait()
		r.Release() // acquirer's reference: final
	}
	if got := OutstandingRefs() - start; got != 0 {
		t.Fatalf("outstanding after concurrent drain: %d, want 0", got)
	}
}
