//go:build race

package message

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
